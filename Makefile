# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race cover bench bench-figs bench-ablations figs serve clean

# Port for `make serve` (override: make serve PORT=9000).
PORT ?= 8080

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./internal/...

# One benchmark per paper figure (reduced scale; see cmd/paperfigs for
# the full-scale sweep).
bench-figs:
	$(GO) test -run xxx -bench Fig -benchtime 1x .

bench-ablations:
	$(GO) test -run xxx -bench Ablation -benchtime 1x .

bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 1x . | tee bench_output.txt

# Build and launch the simulation service (see doc/SERVICE.md).
serve:
	$(GO) build -o dramstacksd ./cmd/dramstacksd
	./dramstacksd -addr :$(PORT)

# Regenerate every figure's data at full scale into results/.
figs:
	$(GO) run ./cmd/paperfigs -fig all -out results

clean:
	rm -rf results bench_output.txt test_output.txt dramstacksd
