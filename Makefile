# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race cover bench bench-check bench-figs bench-ablations bench-go figs serve vet fuzz clean

# Port for `make serve` (override: make serve PORT=9000).
PORT ?= 8080

# Budget per fuzz target for `make fuzz` (override: make fuzz FUZZTIME=5m).
FUZZTIME ?= 30s

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Short race pass over everything, plus the full fast-forward
# equivalence tests so the sim hot loop is race-checked end to end.
race:
	$(GO) test -race -short ./...
	$(GO) test -race -count=1 -run 'Golden|FastForward' ./internal/sim/

cover:
	$(GO) test -cover ./internal/...

# One benchmark per paper figure (reduced scale; see cmd/paperfigs for
# the full-scale sweep).
bench-figs:
	$(GO) test -run xxx -bench Fig -benchtime 1x .

bench-ablations:
	$(GO) test -run xxx -bench Ablation -benchtime 1x .

# Reproducible harness (cmd/simbench): regenerates the committed
# baseline the CI perf gate compares against. See doc/PERF.md for the
# update policy before committing a new BENCH_9.json. (BENCH_3.json and
# BENCH_7.json are kept as historical baselines: pre-event-wheel and
# pre-batching respectively.)
bench:
	$(GO) run ./cmd/simbench -count 3 -benchtime 1x -out BENCH_9.json

# Compare a fresh measurement against the committed baseline the way CI
# does (exit 1 on a >10% geomean throughput regression, a >10% geomean
# allocs_per_op regression, or a >10% per-case regression in any
# saturated synth/* or qos/* scenario — the hot paths this repo
# optimizes must not regress individually behind a green geomean).
bench-check:
	$(GO) run ./cmd/simbench -count 3 -benchtime 1x -out BENCH_PR.json
	$(GO) run ./cmd/benchdiff -threshold 0.10 -alloc-threshold 0.10 \
		-case-threshold 'synth/*=0.10' -case-threshold 'qos/*=0.10' \
		BENCH_9.json BENCH_PR.json

# The original go-test benchmarks (one per paper figure/table).
bench-go:
	$(GO) test -run xxx -bench . -benchmem -benchtime 1x . | tee bench_output.txt

# Build the repo's own analyzer suite (cmd/dramvet) and run it through
# the standard vet driver, exactly like CI. See doc/LINTING.md.
# DRAMVET_LOCKORDER_OUT makes the lockorder pass regenerate the
# committed lock-order artifact while it vets internal/service. `go vet`
# caches per-package results, but the cache only hits when neither the
# tool nor the package changed — exactly the runs where the artifact
# content could not have changed either.
vet:
	$(GO) build -o dramvet ./cmd/dramvet
	DRAMVET_LOCKORDER_OUT=$(CURDIR)/doc/LOCKORDER.md $(GO) vet -vettool=$(CURDIR)/dramvet ./...

# Run the fuzz targets for FUZZTIME each: the strict spec decoder
# (canonical-encoding fixed point, hash determinism), journal recovery
# (corruption is never fatal, torn tails are sealed), and the dramvet
# //dramvet:allow directive parser (no suppression is silently dropped).
fuzz:
	$(GO) test ./internal/exp/ -run FuzzDecodeSpec -fuzz FuzzDecodeSpec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/service/ -run FuzzJournalReplay -fuzz FuzzJournalReplay -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analysis/ -run FuzzAllowDirective -fuzz FuzzAllowDirective -fuzztime $(FUZZTIME)

# Build and launch the simulation service (see doc/SERVICE.md).
serve:
	$(GO) build -o dramstacksd ./cmd/dramstacksd
	./dramstacksd -addr :$(PORT)

# Regenerate every figure's data at full scale into results/.
figs:
	$(GO) run ./cmd/paperfigs -fig all -out results

clean:
	rm -rf results bench_output.txt test_output.txt dramstacksd dramvet BENCH_PR.json
