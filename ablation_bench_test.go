// Ablation benchmarks for the design choices DESIGN.md calls out: the
// constraint-scope attribution rule, the closed-page lookahead
// threshold, the prefetcher depth, and the machine extensions beyond the
// paper's configuration (dual rank, multiple channels). Each reports the
// stack components the choice moves.
package dramstacks

import (
	"fmt"
	"testing"

	"dramstacks/internal/cache"
	"dramstacks/internal/cpu"
	"dramstacks/internal/dram"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/prefetch"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

func runCfg(b *testing.B, cfg sim.Config, pat workload.Pattern, stores float64) *sim.Result {
	b.Helper()
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		sys, err := sim.NewFromConfig(cfg, sim.SyntheticSources(pat, cfg.Cores, stores))
		if err != nil {
			b.Fatal(err)
		}
		res = sys.Run()
		if len(res.Violations) > 0 {
			b.Fatalf("timing violation: %v", res.Violations[0])
		}
	}
	return res
}

// BenchmarkAblation_ConstraintScope compares the paper-calibrated scoped
// constraints attribution (a tCCD_L-bound bank charges its whole group)
// against flat per-bank attribution, on the workload where it matters
// most: the single sequential stream whose bank group is the bottleneck.
func BenchmarkAblation_ConstraintScope(b *testing.B) {
	for _, flat := range []bool{false, true} {
		name := "scoped"
		if flat {
			name = "flat"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.Default(1)
			cfg.Ctrl.FlatConstraints = flat
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 20
			res := runCfg(b, cfg, workload.Sequential, 0)
			g := res.BWGBps()
			b.ReportMetric(g[stacks.BWConstraints], "GB/s-constraints")
			b.ReportMetric(g[stacks.BWBankIdle], "GB/s-bankidle")
			b.ReportMetric(res.AchievedGBps(), "GB/s")
		})
	}
}

// BenchmarkAblation_ClosedKeepOpen sweeps the closed-page lookahead
// threshold (how many queued same-row requests keep a page open) on the
// sequential two-core case that calibrated it.
func BenchmarkAblation_ClosedKeepOpen(b *testing.B) {
	for _, keep := range []int{1, 3, 5, 8} {
		b.Run(fmt.Sprintf("keep%d", keep), func(b *testing.B) {
			cfg := sim.Default(2)
			cfg.Ctrl.Policy = memctrl.ClosedPage
			cfg.Ctrl.ClosedKeepOpen = keep
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 20
			res := runCfg(b, cfg, workload.Sequential, 0)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(100*res.CtrlStats.PageHitRate(), "%pagehit")
			b.ReportMetric(res.LatNS()[stacks.LatQueue], "lat-ns-queue")
		})
	}
}

// BenchmarkAblation_PrefetchDepth sweeps the L2 streamer depth: too
// shallow starves the sequential stream, too deep floods the queues.
func BenchmarkAblation_PrefetchDepth(b *testing.B) {
	for _, depth := range []int{0, 8, 20, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			cfg := sim.Default(2)
			cfg.Hier.Prefetch = prefetch.Config{Streams: 16, Depth: depth, Degree: 2}
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 20
			res := runCfg(b, cfg, workload.Sequential, 0)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(float64(res.HierStats.PrefetchesToMem), "prefetches")
		})
	}
}

// BenchmarkAblation_DualRank compares the paper's single-rank module
// against a dual-rank module (32 banks, same peak): the extra bank
// parallelism absorbs page misses of the random pattern.
func BenchmarkAblation_DualRank(b *testing.B) {
	ranks := map[string]func() (dram.Geometry, dram.Timing){
		"1rank": dram.DDR4_2400,
		"2rank": dram.DDR4_2400_DualRank,
	}
	for _, name := range []string{"1rank", "2rank"} {
		b.Run(name, func(b *testing.B) {
			geo, tim := ranks[name]()
			cfg := sim.Default(8)
			cfg.Geom = geo
			cfg.Tim = tim
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 19
			res := runCfg(b, cfg, workload.Random, 0)
			g := res.BWGBps()
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(g[stacks.BWBankIdle], "GB/s-bankidle")
			b.ReportMetric(g[stacks.BWConstraints], "GB/s-constraints")
		})
	}
}

// BenchmarkAblation_Channels scales the channel count: aggregated stacks
// (paper §IV: per-controller stacks summed afterwards) and total
// bandwidth for a saturating 8-core stream.
func BenchmarkAblation_Channels(b *testing.B) {
	for _, ch := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dch", ch), func(b *testing.B) {
			cfg := sim.Default(8)
			cfg.Channels = ch
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 20
			res := runCfg(b, cfg, workload.Sequential, 0)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(res.PeakGBps(), "GB/s-peak")
			b.ReportMetric(res.BWGBps()[stacks.BWIdle], "GB/s-idle")
		})
	}
}

// BenchmarkAblation_LLCSize varies the shared LLC (the paper holds it at
// 11 MB across core counts precisely because it changes DRAM traffic).
func BenchmarkAblation_LLCSize(b *testing.B) {
	for _, mb := range []int{2, 11, 32} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			ways := 16
			if mb == 11 {
				ways = 11 // keep the set count a power of two
			}
			cfg := sim.Default(4)
			cfg.Hier.LLC = cache.Config{
				Name: "LLC", SizeBytes: mb << 20, Ways: ways, LineBytes: 64, Latency: 44,
			}
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 20
			res := runCfg(b, cfg, workload.Random, 0.2)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(float64(res.CtrlStats.IssuedWrites), "dram-writes")
		})
	}
}

// BenchmarkAblation_SpeedGrade compares DDR4-2400 against DDR4-3200 on
// the 8-core random pattern: peak rises 33% but the page-miss-dominated
// pattern gains less, and the stack shows why (tRCD/tRP are constant in
// nanoseconds, so the pre/act components grow in relative cycles).
func BenchmarkAblation_SpeedGrade(b *testing.B) {
	grades := map[string]func() (dram.Geometry, dram.Timing){
		"ddr4-2400": dram.DDR4_2400,
		"ddr4-3200": dram.DDR4_3200,
	}
	for _, name := range []string{"ddr4-2400", "ddr4-3200"} {
		b.Run(name, func(b *testing.B) {
			geo, tim := grades[name]()
			cfg := sim.Default(8)
			cfg.Geom = geo
			cfg.Tim = tim
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 19
			res := runCfg(b, cfg, workload.Random, 0)
			g := res.BWGBps()
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(res.PeakGBps(), "GB/s-peak")
			b.ReportMetric(g[stacks.BWPrecharge]+g[stacks.BWActivate], "GB/s-preact")
			b.ReportMetric(res.Lat.AvgTotalNS(geo), "lat-ns")
		})
	}
}

// BenchmarkAblation_Scheduler compares FR-FCFS against strict FCFS on a
// store-heavy sequential stream whose read and writeback rows conflict:
// first-ready scheduling batches each row's hits.
func BenchmarkAblation_Scheduler(b *testing.B) {
	for _, sched := range []memctrl.Scheduler{memctrl.FRFCFS, memctrl.FCFS} {
		b.Run(sched.String(), func(b *testing.B) {
			cfg := sim.Default(1)
			cfg.Ctrl.Sched = sched
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 20
			res := runCfg(b, cfg, workload.Sequential, 0.5)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(100*res.CtrlStats.PageHitRate(), "%pagehit")
			b.ReportMetric(res.Lat.AvgTotalNS(res.Cfg.Geom), "lat-ns")
		})
	}
}

// BenchmarkAblation_CoreModel compares the Skylake-like out-of-order
// core against a small in-order-like core: the random pattern's request
// rate collapses when misses cannot overlap, and the bandwidth stack's
// idle component shows it.
func BenchmarkAblation_CoreModel(b *testing.B) {
	cores := map[string]cpu.Config{
		"ooo-4w-224rob": cpu.DefaultConfig(),
		"inorder-2w":    cpu.InOrderConfig(),
	}
	for _, name := range []string{"ooo-4w-224rob", "inorder-2w"} {
		b.Run(name, func(b *testing.B) {
			cfg := sim.Default(4)
			cfg.Core = cores[name]
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 19
			res := runCfg(b, cfg, workload.Random, 0)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(res.BWGBps()[stacks.BWIdle], "GB/s-idle")
		})
	}
}

// BenchmarkAblation_StridedPattern shows the strided pattern between the
// two extremes: no spatial reuse like random, but page hits and
// predictability like sequential.
func BenchmarkAblation_StridedPattern(b *testing.B) {
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Strided, workload.Random} {
		b.Run(pat.String(), func(b *testing.B) {
			cfg := sim.Default(2)
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 19
			res := runCfg(b, cfg, pat, 0)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(100*res.CtrlStats.PageHitRate(), "%pagehit")
		})
	}
}

// BenchmarkAblation_DDR5 compares one DDR5-4800 subchannel against the
// DDR4-2400 channel at the same 19.2 GB/s peak: more banks and smaller
// pages help the random pattern, longer bursts change the constraint
// structure for the sequential one.
func BenchmarkAblation_DDR5(b *testing.B) {
	gens := map[string]func() (dram.Geometry, dram.Timing){
		"ddr4-2400": dram.DDR4_2400,
		"ddr5-4800": dram.DDR5_4800,
	}
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, name := range []string{"ddr4-2400", "ddr5-4800"} {
			b.Run(fmt.Sprintf("%s-%s", pat, name), func(b *testing.B) {
				geo, tim := gens[name]()
				cfg := sim.Default(8)
				cfg.Geom = geo
				cfg.Tim = tim
				cfg.CPUMult = 2 // 2.4 GHz DRAM clock: narrower CPU ratio
				cfg.MaxMemCycles = benchSynthBudget
				cfg.PrewarmOps = 1 << 19
				res := runCfg(b, cfg, pat, 0)
				g := res.BWGBps()
				b.ReportMetric(res.AchievedGBps(), "GB/s")
				b.ReportMetric(g[stacks.BWPrecharge]+g[stacks.BWActivate], "GB/s-preact")
				b.ReportMetric(g[stacks.BWConstraints], "GB/s-constraints")
			})
		}
	}
}

// BenchmarkStream runs the four STREAM kernels on 4 cores: the canonical
// bandwidth microbenchmarks, each a different read:write mix.
func BenchmarkStream(b *testing.B) {
	for _, kind := range []workload.StreamKind{
		workload.StreamCopy, workload.StreamScale, workload.StreamAdd, workload.StreamTriad,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				cfg := sim.Default(4)
				cfg.MaxMemCycles = benchSynthBudget
				cfg.PrewarmOps = 1 << 19
				sys, err := sim.NewFromConfig(cfg, workload.StreamSources(kind, 4))
				if err != nil {
					b.Fatal(err)
				}
				res = sys.Run()
				if len(res.Violations) > 0 {
					b.Fatal(res.Violations[0])
				}
			}
			g := res.BWGBps()
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(g[stacks.BWRead], "GB/s-read")
			b.ReportMetric(g[stacks.BWWrite], "GB/s-write")
		})
	}
}

// BenchmarkAblation_RefreshGranularity compares normal (1x) refresh with
// DDR4's fine-granularity 2x/4x modes: shorter, more frequent tRFC
// windows trade a little average bandwidth for much better tail latency
// (the histogram's p99), which the latency stacks' refresh component and
// the percentile telemetry expose together.
func BenchmarkAblation_RefreshGranularity(b *testing.B) {
	modes := []struct {
		name string
		div  int     // tREFI divisor
		rfc  float64 // tRFC scale (FGR does not halve cleanly)
	}{
		{"refresh-1x", 1, 1.0},
		{"refresh-2x", 2, 0.62},
		{"refresh-4x", 4, 0.42},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			geo, tim := dram.DDR4_2400()
			tim.REFI /= m.div
			tim.RFC = int(float64(tim.RFC) * m.rfc)
			cfg := sim.Default(4)
			cfg.Geom = geo
			cfg.Tim = tim
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 19
			res := runCfg(b, cfg, workload.Random, 0)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(res.BWGBps()[stacks.BWRefresh], "GB/s-refresh")
			b.ReportMetric(geo.CyclesToNS(res.LatHist.Quantile(0.99)), "p99-ns")
			b.ReportMetric(res.LatNS()[stacks.LatRefresh], "lat-ns-refresh")
		})
	}
}

// BenchmarkAblation_XORMapping compares the three mappings on the
// bank-conflict case (sequential with 50% stores): XOR hashing recovers
// the conflict loss like cache-line interleaving, but keeps the page
// locality interleaving gives up.
func BenchmarkAblation_XORMapping(b *testing.B) {
	for _, m := range []sim.Mapping{sim.MapDefault, sim.MapInterleaved, sim.MapXOR} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := sim.Default(1)
			cfg.Map = m
			cfg.MaxMemCycles = benchSynthBudget
			cfg.PrewarmOps = 1 << 20
			res := runCfg(b, cfg, workload.Sequential, 0.5)
			b.ReportMetric(res.AchievedGBps(), "GB/s")
			b.ReportMetric(100*res.CtrlStats.PageHitRate(), "%pagehit")
			b.ReportMetric(res.Lat.AvgTotalNS(res.Cfg.Geom), "lat-ns")
		})
	}
}
