// Package dramstacks reproduces "DRAM Bandwidth and Latency Stacks:
// Visualizing DRAM Bottlenecks" (Eyerman, Heirman, Hur — ISPASS 2022) as
// a Go library: a DDR4 device timing model, an FR-FCFS memory
// controller, an out-of-order multicore model with a three-level cache
// hierarchy, the GAP graph benchmark kernels, and — the paper's
// contribution — bandwidth stacks, latency stacks and the stack-based
// bandwidth extrapolation method.
//
// Start with examples/quickstart, or run the paper's evaluation with
// cmd/paperfigs. The benchmark harness in bench_test.go regenerates the
// data behind every figure:
//
//	go test -bench=Fig -benchmem
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison.
package dramstacks
