// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. The interesting output is the custom metrics (GB/s,
// latency-ns, error percentages), which mirror what the corresponding
// figure plots; reduced cycle budgets and graph scales keep a full
// -bench=. run in minutes. cmd/paperfigs runs the same experiments at
// full scale.
package dramstacks

import (
	"fmt"
	"testing"

	"dramstacks/internal/addrmap"
	"dramstacks/internal/dram"
	"dramstacks/internal/exp"
	"dramstacks/internal/extrapolate"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

const (
	benchSynthBudget = int64(200_000)
	benchGapBudget   = int64(400_000)
	benchGapScale    = 15
)

func reportBW(b *testing.B, res *sim.Result) {
	b.Helper()
	g := res.BWGBps()
	b.ReportMetric(res.AchievedGBps(), "GB/s")
	b.ReportMetric(g[stacks.BWConstraints], "GB/s-constraints")
	b.ReportMetric(g[stacks.BWBankIdle], "GB/s-bankidle")
	b.ReportMetric(g[stacks.BWIdle], "GB/s-idle")
	b.ReportMetric(res.Lat.AvgTotalNS(res.Cfg.Geom), "lat-ns")
	b.ReportMetric(res.LatNS()[stacks.LatQueue], "lat-ns-queue")
}

func runSynthBench(b *testing.B, spec exp.SynthSpec) {
	b.Helper()
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.RunSynth(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportBW(b, res)
}

// BenchmarkFig2_ReadOnlyScaling regenerates Fig. 2: bandwidth and
// latency stacks for the read-only sequential and random patterns on
// 1 to 8 cores.
func BenchmarkFig2_ReadOnlyScaling(b *testing.B) {
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, cores := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s-%dc", pat, cores), func(b *testing.B) {
				runSynthBench(b, exp.SynthSpec{
					Pattern: pat, Cores: cores,
					Budget: benchSynthBudget, Prewarm: 1 << 20,
				})
			})
		}
	}
}

// BenchmarkFig3_StoreFraction regenerates Fig. 3: the store-fraction
// sweep on one core.
func BenchmarkFig3_StoreFraction(b *testing.B) {
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, w := range []float64{0, 0.1, 0.2, 0.5} {
			b.Run(fmt.Sprintf("%s-w%d", pat, int(w*100)), func(b *testing.B) {
				runSynthBench(b, exp.SynthSpec{
					Pattern: pat, Cores: 1, StoreFrac: w,
					Budget: benchSynthBudget, Prewarm: 1 << 20,
				})
			})
		}
	}
}

// BenchmarkFig4_PagePolicy regenerates Fig. 4: open versus closed page
// policy on two cores.
func BenchmarkFig4_PagePolicy(b *testing.B) {
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, pol := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.ClosedPage} {
			b.Run(fmt.Sprintf("%s-%s", pat, pol), func(b *testing.B) {
				runSynthBench(b, exp.SynthSpec{
					Pattern: pat, Cores: 2, Policy: pol,
					Budget: benchSynthBudget, Prewarm: 1 << 20,
				})
			})
		}
	}
}

// BenchmarkFig5_AddressDecode covers Fig. 5 (the indexing schemes): the
// decode/encode hot path of both mappings.
func BenchmarkFig5_AddressDecode(b *testing.B) {
	geo, _ := dram.DDR4_2400()
	for _, m := range []addrmap.Mapper{
		addrmap.MustDefault(geo, 1),
		addrmap.MustInterleaved(geo, 1),
	} {
		b.Run(m.Name(), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				loc := m.Decode(uint64(i) * 64)
				sink += loc.Bank
			}
			_ = sink
		})
	}
}

// BenchmarkFig6_BankIndexing regenerates Fig. 6: default versus
// cache-line-interleaved indexing on the two bank-conflict cases.
func BenchmarkFig6_BankIndexing(b *testing.B) {
	for _, m := range []sim.Mapping{sim.MapDefault, sim.MapInterleaved} {
		b.Run("seq-w50-1c-open-"+m.String(), func(b *testing.B) {
			runSynthBench(b, exp.SynthSpec{
				Pattern: workload.Sequential, Cores: 1, StoreFrac: 0.5, Map: m,
				Budget: benchSynthBudget, Prewarm: 1 << 20,
			})
		})
	}
	for _, m := range []sim.Mapping{sim.MapDefault, sim.MapInterleaved} {
		b.Run("seq-w0-2c-closed-"+m.String(), func(b *testing.B) {
			runSynthBench(b, exp.SynthSpec{
				Pattern: workload.Sequential, Cores: 2, Policy: memctrl.ClosedPage, Map: m,
				Budget: benchSynthBudget, Prewarm: 1 << 20,
			})
		})
	}
}

// BenchmarkFig7_BfsThroughTime regenerates Fig. 7: through-time cycle,
// bandwidth and latency stacks for bfs on 8 cores.
func BenchmarkFig7_BfsThroughTime(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		spec := exp.DefaultGap("bfs", 8)
		spec.Scale = benchGapScale
		spec.Budget = benchGapBudget
		spec.Sample = benchGapBudget / 16
		var err error
		res, err = exp.RunGap(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportBW(b, res)
	b.ReportMetric(float64(len(res.BWSamples)), "samples")
	// Phase behavior: report the spread of through-time bandwidth.
	lo, hi := 1e18, 0.0
	for _, s := range res.BWSamples {
		v := s.BW.AchievedGBps(res.Cfg.Geom)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	b.ReportMetric(lo, "GB/s-min-phase")
	b.ReportMetric(hi, "GB/s-max-phase")
}

// BenchmarkFig8_GapVariants regenerates Fig. 8: the latency stacks of
// bfs (def / interleaved / 128-entry write queue) and tc (def /
// interleaved).
func BenchmarkFig8_GapVariants(b *testing.B) {
	variants := []struct {
		name string
		spec func() exp.GapSpec
	}{
		{"bfs-8c-def", func() exp.GapSpec { return exp.DefaultGap("bfs", 8) }},
		{"bfs-8c-int", func() exp.GapSpec {
			s := exp.DefaultGap("bfs", 8)
			s.Map = sim.MapInterleaved
			return s
		}},
		{"bfs-8c-wq128", func() exp.GapSpec {
			s := exp.DefaultGap("bfs", 8)
			s.WriteQueue = 128
			return s
		}},
		{"tc-1c-def", func() exp.GapSpec {
			s := exp.DefaultGap("tc", 1)
			s.Policy = memctrl.ClosedPage
			return s
		}},
		{"tc-1c-int", func() exp.GapSpec {
			s := exp.DefaultGap("tc", 1)
			s.Policy = memctrl.ClosedPage
			s.Map = sim.MapInterleaved
			return s
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				spec := v.spec()
				spec.Scale = benchGapScale
				spec.Budget = benchGapBudget
				var err error
				res, err = exp.RunGap(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			l := res.LatNS()
			b.ReportMetric(res.Lat.AvgTotalNS(res.Cfg.Geom), "lat-ns")
			b.ReportMetric(l[stacks.LatQueue], "lat-ns-queue")
			b.ReportMetric(l[stacks.LatWriteBurst], "lat-ns-writeburst")
			b.ReportMetric(l[stacks.LatPreAct], "lat-ns-actpre")
		})
	}
}

// BenchmarkFig9_Extrapolation regenerates Fig. 9: measured 8-core
// bandwidth versus the naive and stack-based extrapolations from the
// 1-core run, for every GAP benchmark.
func BenchmarkFig9_Extrapolation(b *testing.B) {
	for _, bench := range []string{"bc", "bfs", "cc", "pr", "sssp", "tc"} {
		b.Run(bench, func(b *testing.B) {
			var p extrapolate.Prediction
			for i := 0; i < b.N; i++ {
				one := exp.DefaultGap(bench, 1)
				one.Scale = benchGapScale
				one.Budget = benchGapBudget * 4
				one.Sample = benchGapBudget / 8
				r1, err := exp.RunGap(one)
				if err != nil {
					b.Fatal(err)
				}
				eight := exp.DefaultGap(bench, 8)
				eight.Scale = benchGapScale
				eight.Budget = benchGapBudget
				r8, err := exp.RunGap(eight)
				if err != nil {
					b.Fatal(err)
				}
				geo := r1.Cfg.Geom
				p = extrapolate.Prediction{
					Name:     bench,
					Measured: r8.AchievedGBps(),
					Naive:    extrapolate.NaiveSamples(r1.BWSamples, 8, geo),
					Stack:    extrapolate.StackSamples(r1.BWSamples, 8, geo),
				}
			}
			b.ReportMetric(p.Measured, "GB/s-measured")
			b.ReportMetric(p.Naive, "GB/s-naive")
			b.ReportMetric(p.Stack, "GB/s-stack")
			b.ReportMetric(100*p.NaiveErr(), "%err-naive")
			b.ReportMetric(100*p.StackErr(), "%err-stack")
		})
	}
}

// BenchmarkDeviceIssue measures the DRAM device hot path (legality check
// plus issue) in isolation.
func BenchmarkDeviceIssue(b *testing.B) {
	geo, tim := dram.DDR4_2400()
	dev := dram.NewDevice(geo, tim)
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := dram.Loc{Group: i % 4, Bank: (i / 4) % 4, Row: i % 1024}
		act := dram.Command{Kind: dram.CmdACT, Loc: loc}
		at, ok := dev.EarliestIssue(act, now)
		if !ok {
			b.Fatal("ACT blocked")
		}
		dev.Sync(at)
		dev.Issue(act, at)
		loc.Row = dev.OpenRow(loc, at)
		rda := dram.Command{Kind: dram.CmdRDA, Loc: loc}
		at2, ok := dev.EarliestIssue(rda, at)
		if !ok {
			b.Fatal("RDA blocked")
		}
		dev.Sync(at2)
		dev.Issue(rda, at2)
		now = at2
	}
}

// BenchmarkControllerTick measures the full memory-controller cycle cost
// under a saturating stream — the per-cycle price of stack accounting.
func BenchmarkControllerTick(b *testing.B) {
	geo, tim := dram.DDR4_2400()
	dev := dram.NewDevice(geo, tim)
	ctrl := memctrl.MustNew(dev, addrmap.MustDefault(geo, 1), memctrl.DefaultConfig())
	next := uint64(0)
	inflight := 0
	b.ResetTimer()
	for now := int64(0); now < int64(b.N); now++ {
		for inflight < 32 {
			if _, ok := ctrl.EnqueueRead(now, next, func(*memctrl.Request, int64) { inflight-- }, nil); !ok {
				break
			}
			inflight++
			next += 64
		}
		ctrl.Tick(now)
	}
	b.ReportMetric(ctrl.BandwidthStack().AchievedGBps(geo), "GB/s")
}

// BenchmarkBandwidthAccountant measures the accounting itself: the cost
// the paper's mechanism adds per memory cycle.
func BenchmarkBandwidthAccountant(b *testing.B) {
	a := stacks.NewBandwidthAccountant(16)
	views := []stacks.CycleView{
		{Data: dram.DataRead},
		{PreMask: 0x3, ActMask: 0x8, BlockedMask: 0xF0, Pending: true},
		{Refreshing: true},
		{Pending: true, ChannelBlocked: true},
		{},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Account(views[i%len(views)])
	}
	if err := a.Stack().CheckSum(); err != nil {
		b.Fatal(err)
	}
}
