package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRebuildsStackFromTrace(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "t.trace")
	trace := `0 ACT 0 0 0 3 0
16 RD 0 0 0 3 0
22 RD 0 0 0 3 1
9360 PREA 0 0 0 0 0
9380 REF 0 0 0 0 0
`
	if err := os.WriteFile(in, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, 12_000, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, false); err == nil || !strings.Contains(err.Error(), "-in") {
		t.Errorf("missing file err = %v", err)
	}
	if err := run("/nonexistent/file", 0, false); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trace")
	os.WriteFile(bad, []byte("garbage\n"), 0o644)
	if err := run(bad, 0, false); err == nil {
		t.Error("garbage trace accepted")
	}
	// Illegal (out of order) trace fails reconstruction.
	ooo := filepath.Join(dir, "ooo.trace")
	os.WriteFile(ooo, []byte("10 ACT 0 0 0 1 0\n5 PRE 0 0 0 1 0\n"), 0o644)
	if err := run(ooo, 0, false); err == nil {
		t.Error("out-of-order trace accepted")
	}
}
