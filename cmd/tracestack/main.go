// Command tracestack builds a DRAM bandwidth stack offline from a
// command trace (paper §IV: stacks can be constructed from a trace
// collected on hardware or from a DRAM simulator, without rerunning the
// simulation).
//
//	dramstacks -workload seq -cores 2 -trace seq.trace
//	tracestack -in seq.trace -cycles 150000
package main

import (
	"flag"
	"fmt"
	"os"

	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
	"dramstacks/internal/trace"
	"dramstacks/internal/viz"
)

func main() {
	var (
		in     = flag.String("in", "", "trace file (one '<cycle> <kind> <rank> <group> <bank> <row> <col>' per line)")
		cycles = flag.Int64("cycles", 0, "total cycles the trace window covers (0 = until the device drains)")
		verify = flag.Bool("verify", true, "also re-check the trace against the JEDEC timing rules")
	)
	flag.Parse()
	if err := run(*in, *cycles, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "tracestack:", err)
		os.Exit(1)
	}
}

func run(in string, cycles int64, verify bool) error {
	if in == "" {
		return fmt.Errorf("missing -in trace file")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	geo, tim := dram.DDR4_2400()

	if verify {
		v := dram.NewVerifier(geo, tim)
		for _, e := range events {
			v.Check(e.Cycle, e.Cmd)
		}
		if vs := v.Violations(); len(vs) > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d timing violations, first: %v\n", len(vs), vs[0])
		} else {
			fmt.Printf("%d commands verified: no timing violations\n", v.Checked())
		}
	}

	s, err := trace.BuildBandwidthStack(events, geo, tim, cycles)
	if err != nil {
		return err
	}
	if err := s.CheckSum(); err != nil {
		return err
	}
	fmt.Printf("reconstructed from %d commands over %d cycles\n\n", len(events), s.TotalCycles)
	viz.BandwidthChart(os.Stdout, []string{in}, []stacks.BandwidthStack{s}, geo)
	return nil
}
