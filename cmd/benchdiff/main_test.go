package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dramstacks/internal/benchfmt"
)

func writeBench(t *testing.T, dir, name string, f benchfmt.File) string {
	t.Helper()
	data, err := benchfmt.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchFile(rates map[string]float64) benchfmt.File {
	f := benchfmt.File{Version: benchfmt.Version}
	for name, rate := range rates {
		f.Benchmarks = append(f.Benchmarks, benchfmt.Benchmark{
			Name: name, Mode: "fast", CyclesPerSec: rate, AllocsPerOp: 100,
		})
	}
	return f
}

// allocFile is benchFile with per-case allocation readings, for
// exercising the allocs_per_op ratchet.
func allocFile(cases map[string]uint64) benchfmt.File {
	f := benchfmt.File{Version: benchfmt.Version}
	for name, allocs := range cases {
		f.Benchmarks = append(f.Benchmarks, benchfmt.Benchmark{
			Name: name, Mode: "fast", CyclesPerSec: 100, AllocsPerOp: allocs,
		})
	}
	return f
}

func TestRunPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{"a": 100, "b": 100}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{"a": 95, "b": 100}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("output lacks PASS:\n%s", out.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{"a": 100}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{"a": 80}))
	var out bytes.Buffer
	err := run(oldP, newP, 0.10, 0.10, nil, false, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("err = %v, want regression failure", err)
	}
}

// TestRunSkipsZeroBaseline is the regression test for the gate-poisoning
// bug: a zero baseline reading used to drive the geomean to +Inf (or
// NaN), which either masked real regressions or tripped the gate on
// healthy changes. It must now be skipped with the rest gated normally.
func TestRunSkipsZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{"poison": 0, "a": 100, "b": 100}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{"poison": 100, "a": 100, "b": 100}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "skipped") || !strings.Contains(s, "over 2 cases") {
		t.Fatalf("expected poison case skipped and 2 gated cases:\n%s", s)
	}
}

// TestRunTreatsNewCasesAsNew covers the suite-growth path: benchmark
// names absent from the committed baseline (e.g. freshly added DRAM
// standard scenarios) are reported as new and excluded from the
// geomean, and the gate still passes on the common cases.
func TestRunTreatsNewCasesAsNew(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{
		"synth/seq-1c": 100, "synth/seq-8c": 100}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{
		"synth/seq-1c": 100, "synth/seq-8c": 100,
		"std/ddr5-seq-4c": 50, "std/hbm2-seq-4c": 60}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err != nil {
		t.Fatalf("run errored on baseline-absent cases: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "over 2 cases") {
		t.Fatalf("new cases leaked into the gate:\n%s", s)
	}
	for _, name := range []string{"std/ddr5-seq-4c", "std/hbm2-seq-4c"} {
		if !strings.Contains(s, name) || !strings.Contains(s, "new case") {
			t.Fatalf("new case %s not reported:\n%s", name, s)
		}
	}
}

func TestRunErrsWhenAllSkipped(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{"a": 0}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{"a": 100}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err == nil {
		t.Fatalf("run passed with nothing sound to gate on:\n%s", out.String())
	}
}

// TestRunFailsOnAllocRegression covers the allocation ratchet: a run
// whose throughput holds steady but whose allocs_per_op grows past the
// threshold must fail, so the event-wheel's allocation-free steady
// state cannot silently erode.
func TestRunFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", allocFile(map[string]uint64{"a": 100, "b": 100}))
	newP := writeBench(t, dir, "new.json", allocFile(map[string]uint64{"a": 130, "b": 100}))
	var out bytes.Buffer
	err := run(oldP, newP, 0.10, 0.10, nil, false, &out)
	if err == nil || !strings.Contains(err.Error(), "allocs_per_op grew") {
		t.Fatalf("err = %v, want allocation ratchet failure\n%s", err, out.String())
	}
}

func TestRunPassesWithinAllocThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", allocFile(map[string]uint64{"a": 100, "b": 100}))
	newP := writeBench(t, dir, "new.json", allocFile(map[string]uint64{"a": 105, "b": 100}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "allocs_per_op ratio") {
		t.Fatalf("output lacks the ratchet summary:\n%s", out.String())
	}
}

// TestRunSkipsMissingAllocReading: a case with no allocation figure on
// one side (e.g. a hand-repaired baseline) skips the ratchet with a
// warning but still enters the throughput gate.
func TestRunSkipsMissingAllocReading(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", allocFile(map[string]uint64{"noalloc": 0, "a": 100}))
	newP := writeBench(t, dir, "new.json", allocFile(map[string]uint64{"noalloc": 500, "a": 100}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "allocs_per_op ratio over 1 cases") {
		t.Fatalf("expected the ratchet to gate on 1 case:\n%s", s)
	}
}

func TestRunErrsWhenAllAllocsSkipped(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", allocFile(map[string]uint64{"a": 0, "b": 0}))
	newP := writeBench(t, dir, "new.json", allocFile(map[string]uint64{"a": 10, "b": 10}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err == nil {
		t.Fatalf("run passed with nothing sound to ratchet on:\n%s", out.String())
	}
}

func TestRunErrsOnDisjointFiles(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{"a": 100}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{"b": 100}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err == nil {
		t.Fatal("run passed with no common cases")
	}
}

// TestRunFailsOnMissingBaselineCase covers the coverage ratchet: a
// baseline case absent from the new run (a deleted or silently
// not-running benchmark) fails the comparison even when every common
// case is healthy, so the gate cannot shrink unnoticed.
func TestRunFailsOnMissingBaselineCase(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{"a": 100, "gone": 100}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{"a": 100}))
	var out bytes.Buffer
	err := run(oldP, newP, 0.10, 0.10, nil, false, &out)
	if err == nil || !strings.Contains(err.Error(), "gone/fast") {
		t.Fatalf("err = %v, want missing-baseline-case failure naming gone/fast\n%s", err, out.String())
	}
	if !strings.Contains(err.Error(), "-allow-missing") {
		t.Fatalf("err = %v, want the escape hatch named", err)
	}
}

// TestRunAllowMissingEscape: -allow-missing waives the coverage ratchet
// for intentional case removals; the remaining cases still gate.
func TestRunAllowMissingEscape(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{"a": 100, "gone": 100}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{"a": 100}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, true, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("output lacks PASS:\n%s", out.String())
	}
	// The escape does not waive real regressions.
	newP = writeBench(t, dir, "new2.json", benchFile(map[string]float64{"a": 50}))
	if err := run(oldP, newP, 0.10, 0.10, nil, true, &out); err == nil {
		t.Fatal("-allow-missing waived a throughput regression")
	}
}

func TestRunErrsOnBadFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeBench(t, dir, "good.json", benchFile(map[string]float64{"a": 1}))
	var out bytes.Buffer
	if err := run(bad, good, 0.10, 0.10, nil, false, &out); err == nil {
		t.Fatal("run accepted an unsupported file version")
	}
	if err := run(good, filepath.Join(dir, "missing.json"), 0.10, 0.10, nil, false, &out); err == nil {
		t.Fatal("run accepted a missing file")
	}
}

// TestRunSkipsBadNewReadings is the symmetric half of the
// zero-baseline fix: a case present in both runs whose *new*
// measurement is zero or negative produces a 0/-Inf ratio that used to
// poison the geomean just like a bad baseline did. (NaN/Inf readings
// cannot appear in a file at all — encoding/json rejects them at write
// time — so the sick values a file can actually carry are zero and
// negative.) Each bad reading must be skipped with a warning while the
// healthy cases gate normally.
func TestRunSkipsBadNewReadings(t *testing.T) {
	cases := []struct {
		name string
		new  float64
	}{
		{"zero-new", 0},
		{"negative-new", -100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{
				tc.name: 100, "a": 100, "b": 100}))
			newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{
				tc.name: tc.new, "a": 100, "b": 100}))
			var out bytes.Buffer
			if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
			s := out.String()
			if !strings.Contains(s, "skipped") || !strings.Contains(s, "over 2 cases") {
				t.Fatalf("expected %s skipped and 2 gated cases:\n%s", tc.name, s)
			}
			if !strings.Contains(s, "PASS") {
				t.Fatalf("healthy cases did not pass:\n%s", s)
			}
		})
	}
}

// TestRunReportsSpeedupPairs: speedup_vs_slow prints only for rows
// where both files carry it; a side that omitted the field (slow rows,
// slowtick-built harness) reads "-" and never fails the gate.
func TestRunReportsSpeedupPairs(t *testing.T) {
	dir := t.TempDir()
	mk := func(speedups map[string]float64) benchfmt.File {
		f := benchfmt.File{Version: benchfmt.Version}
		for name, sp := range speedups {
			f.Benchmarks = append(f.Benchmarks, benchfmt.Benchmark{
				Name: name, Mode: "fast", CyclesPerSec: 100, AllocsPerOp: 10,
				SpeedupVsSlow: sp,
			})
		}
		return f
	}
	oldP := writeBench(t, dir, "old.json", mk(map[string]float64{"pair": 2, "lost": 2}))
	newP := writeBench(t, dir, "new.json", mk(map[string]float64{"pair": 3, "lost": 0}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "2.00x>3.00x") {
		t.Fatalf("comparable speedup pair not reported:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "lost/fast") && !strings.HasSuffix(strings.TrimRight(line, " "), "-") {
			t.Fatalf("one-sided speedup not shown as not-comparable: %q", line)
		}
	}
}

// TestRunCaseThreshold exercises the per-case gate: a regression in a
// gated case fails even when the suite geomean is comfortably green,
// and a glob that matches nothing is itself a failure.
func TestRunCaseThreshold(t *testing.T) {
	dir := t.TempDir()
	// synth/seq drops 20% but three other cases improve enough that
	// the 10% geomean gate alone would pass.
	oldP := writeBench(t, dir, "old.json", benchFile(map[string]float64{
		"synth/seq": 100, "a": 100, "b": 100, "c": 100,
	}))
	newP := writeBench(t, dir, "new.json", benchFile(map[string]float64{
		"synth/seq": 80, "a": 120, "b": 120, "c": 120,
	}))
	tests := []struct {
		name    string
		gates   caseGates
		wantErr string
	}{
		{name: "no-gates-geomean-passes", gates: nil},
		{name: "gated-case-regresses", gates: caseGates{{Glob: "synth/*", Threshold: 0.10}},
			wantErr: "synth/seq/fast throughput"},
		{name: "gated-case-within-threshold", gates: caseGates{{Glob: "synth/*", Threshold: 0.25}}},
		{name: "glob-matches-nothing", gates: caseGates{{Glob: "qos/*", Threshold: 0.10}},
			wantErr: "matched no compared case"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(oldP, newP, 0.10, 0.10, tc.gates, false, &out)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("run: %v\n%s", err, out.String())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunCaseThresholdAllocRatchet checks the per-case allocation side:
// an alloc growth in a gated case fails even though the geomean alloc
// ratchet across all cases stays under its threshold.
func TestRunCaseThresholdAllocRatchet(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", allocFile(map[string]uint64{
		"synth/seq": 100, "a": 100, "b": 100, "c": 100,
	}))
	newP := writeBench(t, dir, "new.json", allocFile(map[string]uint64{
		"synth/seq": 130, "a": 100, "b": 100, "c": 100,
	}))
	var out bytes.Buffer
	if err := run(oldP, newP, 0.10, 0.10, nil, false, &out); err != nil {
		t.Fatalf("geomean-only run should pass: %v\n%s", err, out.String())
	}
	err := run(oldP, newP, 0.10, 0.10, caseGates{{Glob: "synth/*", Threshold: 0.10}}, false, &out)
	if err == nil || !strings.Contains(err.Error(), "allocs_per_op") {
		t.Fatalf("err = %v, want per-case alloc failure", err)
	}
}
