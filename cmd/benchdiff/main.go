// Command benchdiff compares two simbench result files (see
// cmd/simbench and doc/PERF.md) and fails — exit status 1 — when the
// geometric mean of the per-case throughput ratios regresses by more
// than the threshold. CI runs it on every pull request:
//
//	benchdiff -threshold 0.10 BENCH_3.json BENCH_PR.json
//
// Cases are matched by name and mode; cases present in only one file
// are reported but do not affect the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
)

// Benchmark mirrors cmd/simbench's output schema (the fields the
// comparison needs).
type Benchmark struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"`
	NsPerOp      int64   `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
}

// File mirrors cmd/simbench's output schema.
type File struct {
	Version    int         `json:"version"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func load(path string) (map[string]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported version %d", path, f.Version)
	}
	out := make(map[string]Benchmark, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name+"/"+b.Mode] = b
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	threshold := flag.Float64("threshold", 0.10,
		"maximum allowed geomean throughput regression (0.10 = 10%)")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: benchdiff [-threshold 0.10] OLD.json NEW.json")
	}
	oldB, err := load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	newB, err := load(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}

	keys := make([]string, 0, len(oldB))
	for k := range oldB {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var logSum float64
	matched := 0
	fmt.Printf("%-28s %14s %14s %8s\n", "case", "old cyc/s", "new cyc/s", "ratio")
	for _, k := range keys {
		o := oldB[k]
		n, ok := newB[k]
		if !ok {
			fmt.Printf("%-28s %14.4g %14s %8s\n", k, o.CyclesPerSec, "missing", "-")
			continue
		}
		ratio := n.CyclesPerSec / o.CyclesPerSec
		fmt.Printf("%-28s %14.4g %14.4g %7.3fx\n", k, o.CyclesPerSec, n.CyclesPerSec, ratio)
		logSum += math.Log(ratio)
		matched++
	}
	for k := range newB {
		if _, ok := oldB[k]; !ok {
			fmt.Printf("%-28s %14s %14.4g %8s\n", k, "new case", newB[k].CyclesPerSec, "-")
		}
	}
	if matched == 0 {
		log.Fatal("no cases in common; nothing to gate on")
	}

	geomean := math.Exp(logSum / float64(matched))
	fmt.Printf("\ngeomean throughput ratio over %d cases: %.3fx (gate: >= %.3fx)\n",
		matched, geomean, 1-*threshold)
	if geomean < 1-*threshold {
		log.Fatalf("FAIL: throughput regressed %.1f%% (threshold %.0f%%)",
			100*(1-geomean), 100**threshold)
	}
	fmt.Println("PASS")
}
