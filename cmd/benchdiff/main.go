// Command benchdiff compares two simbench result files (see
// cmd/simbench and doc/PERF.md) and fails — exit status 1 — when the
// geometric mean of the per-case throughput ratios regresses by more
// than the threshold, or when the geomean allocs_per_op ratio grows by
// more than the allocation threshold (the allocation ratchet). CI runs
// it on every pull request:
//
//	benchdiff -threshold 0.10 -alloc-threshold 0.10 \
//	    -case-threshold 'synth/*=0.10' -case-threshold 'qos/*=0.10' \
//	    BENCH_9.json BENCH_PR.json
//
// Cases are matched by name and mode. A baseline case missing from the
// new run fails the comparison: a deleted or silently-not-running
// benchmark would otherwise shrink the gate's coverage without anyone
// noticing. Pass -allow-missing when the deletion is intentional (and
// refresh the baseline in the same change). Cases only in the new run
// are reported but do not affect either gate — they read as "needs a
// baseline refresh" — and cases with a non-finite ratio (a zero or NaN
// reading on either side) are skipped with a warning rather than
// poisoning the geomean. The same rule applies per-gate: a case with no
// allocation reading skips the ratchet but still enters the throughput
// gate. If every common case is skipped for a gate, the comparison
// errors out: a gate with no sound input must not pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path"
	"strconv"
	"strings"

	"dramstacks/internal/benchfmt"
)

// caseGate is one -case-threshold rule: cases whose key matches the
// glob are gated individually, not just through the geomean. The
// saturated scenarios get one so a targeted regression in the hot path
// cannot hide behind improvements elsewhere in the suite.
type caseGate struct {
	Glob      string
	Threshold float64
}

// caseGates collects repeated -case-threshold GLOB=FRAC flags.
type caseGates []caseGate

func (g *caseGates) String() string {
	var parts []string
	for _, c := range *g {
		parts = append(parts, fmt.Sprintf("%s=%g", c.Glob, c.Threshold))
	}
	return strings.Join(parts, ",")
}

func (g *caseGates) Set(v string) error {
	glob, frac, ok := strings.Cut(v, "=")
	if !ok || glob == "" {
		return fmt.Errorf("want GLOB=FRAC, got %q", v)
	}
	if _, err := path.Match(glob, "probe"); err != nil {
		return fmt.Errorf("bad glob %q: %v", glob, err)
	}
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil || f < 0 || f >= 1 {
		return fmt.Errorf("threshold in %q must be a fraction in [0,1)", v)
	}
	*g = append(*g, caseGate{Glob: glob, Threshold: f})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	threshold := flag.Float64("threshold", 0.10,
		"maximum allowed geomean throughput regression (0.10 = 10%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.10,
		"maximum allowed geomean allocs_per_op growth (0.10 = 10%)")
	allowMissing := flag.Bool("allow-missing", false,
		"tolerate baseline cases missing from the new run (intentional case removals)")
	var gates caseGates
	flag.Var(&gates, "case-threshold",
		"per-case gate GLOB=FRAC (repeatable): every case matching GLOB must individually stay within FRAC on throughput and allocs_per_op")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: benchdiff [-threshold 0.10] [-alloc-threshold 0.10] [-case-threshold GLOB=FRAC] [-allow-missing] OLD.json NEW.json")
	}
	if err := run(flag.Arg(0), flag.Arg(1), *threshold, *allocThreshold, gates, *allowMissing, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run loads, compares and gates; every failure mode (unreadable file,
// no common cases, all-skipped, regression past either threshold)
// comes back as an error so main can exit non-zero.
func run(oldPath, newPath string, threshold, allocThreshold float64, gates caseGates, allowMissing bool, w io.Writer) error {
	oldF, err := benchfmt.Load(oldPath)
	if err != nil {
		return err
	}
	newF, err := benchfmt.Load(newPath)
	if err != nil {
		return err
	}
	cmp, err := benchfmt.Compare(oldF, newF)
	oldOnly := report(w, cmp)
	if err != nil {
		return err
	}
	if len(oldOnly) > 0 && !allowMissing {
		return fmt.Errorf("FAIL: %d baseline case(s) missing from the new run: %s (pass -allow-missing if the removal is intentional)",
			len(oldOnly), strings.Join(oldOnly, ", "))
	}
	if bad := checkCaseGates(cmp, gates); len(bad) > 0 {
		return fmt.Errorf("FAIL: per-case gate: %s", strings.Join(bad, "; "))
	}

	fmt.Fprintf(w, "\ngeomean throughput ratio over %d cases: %.3fx (gate: >= %.3fx)\n",
		cmp.Matched, cmp.Geomean, 1-threshold)
	if cmp.Geomean < 1-threshold {
		return fmt.Errorf("FAIL: throughput regressed %.1f%% (threshold %.0f%%)",
			100*(1-cmp.Geomean), 100*threshold)
	}
	if cmp.AllocMatched == 0 {
		return fmt.Errorf("all common cases lack an allocs_per_op reading; nothing sound to ratchet on")
	}
	fmt.Fprintf(w, "geomean allocs_per_op ratio over %d cases: %.3fx (ratchet: <= %.3fx)\n",
		cmp.AllocMatched, cmp.AllocGeomean, 1+allocThreshold)
	if cmp.AllocGeomean > 1+allocThreshold {
		return fmt.Errorf("FAIL: allocs_per_op grew %.1f%% (threshold %.0f%%)",
			100*(cmp.AllocGeomean-1), 100*allocThreshold)
	}
	fmt.Fprintln(w, "PASS")
	return nil
}

// checkCaseGates applies every -case-threshold rule to the matched
// rows and returns one message per violation. Only cases with a sound
// reading participate: a skipped throughput or allocation reading is
// already warned about by the table, and the per-case gate should not
// double-fail on it. A glob that matches no case is itself an error —
// a renamed scenario would otherwise silently drop its gate.
func checkCaseGates(cmp benchfmt.Comparison, gates caseGates) (bad []string) {
	for _, g := range gates {
		matched := false
		for _, r := range cmp.Rows {
			// Row keys are "name/mode" ("synth/seq-1c/fast"). The glob
			// is matched against the name alone as well as the full key,
			// so "synth/*" gates both modes of every synth scenario.
			name := r.Key
			if i := strings.LastIndexByte(name, '/'); i >= 0 {
				name = name[:i]
			}
			okName, _ := path.Match(g.Glob, name)
			okKey, _ := path.Match(g.Glob, r.Key)
			if !okName && !okKey {
				continue
			}
			if r.Status != benchfmt.Compared {
				continue
			}
			matched = true
			if r.Ratio < 1-g.Threshold {
				bad = append(bad, fmt.Sprintf("%s throughput %.3fx below %.3fx", r.Key, r.Ratio, 1-g.Threshold))
			}
			if r.AllocStatus == benchfmt.Compared && r.AllocRatio > 1+g.Threshold {
				bad = append(bad, fmt.Sprintf("%s allocs_per_op %.3fx above %.3fx", r.Key, r.AllocRatio, 1+g.Threshold))
			}
		}
		if !matched {
			bad = append(bad, fmt.Sprintf("-case-threshold %s=%g matched no compared case", g.Glob, g.Threshold))
		}
	}
	return bad
}

// report prints the per-case table and returns the baseline cases the
// new run is missing, for the caller's missing-case gate.
func report(w io.Writer, cmp benchfmt.Comparison) (oldOnly []string) {
	fmt.Fprintf(w, "%-28s %14s %14s %8s %9s %13s\n", "case", "old cyc/s", "new cyc/s", "ratio", "allocs", "wheel-speedup")
	var newOnly []string
	for _, r := range cmp.Rows {
		// speedup_vs_slow is informational: it only prints when both
		// sides measured a fast/slow pair, and it never gates (a
		// slowtick build legitimately omits it).
		speedup := "-"
		if r.SpeedupComparable() {
			speedup = fmt.Sprintf("%.2fx>%.2fx", r.OldSpeedup, r.NewSpeedup)
		}
		allocs := "-"
		switch r.AllocStatus {
		case benchfmt.Compared:
			allocs = fmt.Sprintf("%.3fx", r.AllocRatio)
		case benchfmt.Skipped:
			allocs = "skipped"
			log.Printf("warning: %s has no allocs_per_op reading (old %d, new %d); excluded from the ratchet",
				r.Key, r.OldAllocs, r.NewAllocs)
		}
		switch r.Status {
		case benchfmt.Compared:
			fmt.Fprintf(w, "%-28s %14.4g %14.4g %7.3fx %9s %13s\n", r.Key, r.Old, r.New, r.Ratio, allocs, speedup)
		case benchfmt.Skipped:
			fmt.Fprintf(w, "%-28s %14.4g %14.4g %8s %9s %13s\n", r.Key, r.Old, r.New, "skipped", allocs, speedup)
			log.Printf("warning: %s has a non-finite throughput ratio (old %g, new %g); excluded from the geomean",
				r.Key, r.Old, r.New)
		case benchfmt.OldOnly:
			fmt.Fprintf(w, "%-28s %14.4g %14s %8s %9s\n", r.Key, r.Old, "missing", "-", "-")
			oldOnly = append(oldOnly, r.Key)
		case benchfmt.NewOnly:
			fmt.Fprintf(w, "%-28s %14s %14.4g %8s %9s\n", r.Key, "new case", r.New, "-", "-")
			newOnly = append(newOnly, r.Key)
		}
	}
	// A case with no baseline reading cannot regress; name it loudly so
	// a fresh benchmark suite entry (say, a new DRAM standard scenario)
	// reads as "needs a baseline refresh", not as a silent pass.
	if len(newOnly) > 0 {
		log.Printf("note: %d case(s) not in the baseline, excluded from the gate: %s",
			len(newOnly), strings.Join(newOnly, ", "))
	}
	return oldOnly
}
