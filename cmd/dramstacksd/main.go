// Command dramstacksd serves DRAM bandwidth/latency-stack simulations
// over HTTP: experiment specs are submitted as jobs (POST /v1/jobs) or
// whole parameter grids as sweeps (POST /v1/sweeps), run on a bounded
// worker pool behind a FIFO queue, deduplicated through a
// content-addressed result cache, and observable via /metrics. With
// -data the full job/sweep state is journaled to disk and recovered on
// restart. See doc/SERVICE.md for the API reference.
//
// Usage:
//
//	dramstacksd -addr :8080
//	dramstacksd -addr 127.0.0.1:9000 -workers 4 -queue 128 -cache-mb 256 -data /var/lib/dramstacksd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ handlers, gated by -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"dramstacks/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS-1)")
		queue   = flag.Int("queue", 64, "job queue depth before submissions get 429")
		cacheMB = flag.Int64("cache-mb", 64, "result cache budget in MiB")
		dataDir = flag.String("data", "", "durable state directory (empty = in-memory only; see doc/SERVICE.md)")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling a live service; keep off in untrusted networks)")
		verbose = flag.Bool("v", false, "debug logging")
	)
	flag.Parse()
	if err := serve(*addr, *workers, *queue, *cacheMB, *dataDir, *pprofOn, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "dramstacksd:", err)
		os.Exit(1)
	}
}

func serve(addr string, workers, queue int, cacheMB int64, dataDir string, pprofOn, verbose bool) error {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	svc, err := service.New(service.Config{
		Workers:    workers,
		QueueDepth: queue,
		CacheBytes: cacheMB << 20,
		DataDir:    dataDir,
		Logger:     logger,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	handler := svc.Handler()
	if pprofOn {
		// net/http/pprof registers on http.DefaultServeMux in its
		// init; route /debug/pprof/ there, everything else to the API.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests (with
	// a deadline: long-lived NDJSON streams must not hold the process
	// open forever), then checkpoint and stop the service via svc.Close.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The drain deadline passed with connections still open
			// (typically an in-flight sample/result stream): surface it
			// and force-close the stragglers so svc.Close can checkpoint.
			logger.Error("graceful drain incomplete; forcing close", "err", err)
			if cerr := srv.Close(); cerr != nil {
				logger.Error("force close failed", "err", cerr)
			}
		}
	}()

	// The resolved address matters when -addr picks port 0 (tests).
	logger.Info("dramstacksd listening", "addr", ln.Addr().String(),
		"workers", workers, "queue", queue, "cache_mb", cacheMB, "data", dataDir)
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	return nil
}
