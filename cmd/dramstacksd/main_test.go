package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dramstacks/internal/exp"
	"dramstacks/internal/service"
	"dramstacks/pkg/client"
)

// buildDaemon compiles the dramstacksd binary into a temp dir once per
// test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dramstacksd")
	cmd := exec.Command("go", "build", "-o", bin, "dramstacks/cmd/dramstacksd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building dramstacksd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on an ephemeral port and returns the
// resolved listen address parsed from its startup log line.
func startDaemon(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dataDir, "-workers", "1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "dramstacksd listening") {
				continue
			}
			for _, f := range strings.Fields(line) {
				if a, ok := strings.CutPrefix(f, "addr="); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
		// Keep draining so the child never blocks on a full pipe.
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon did not log its listen address in time")
		return nil, ""
	}
}

// TestCrashRecoveryEndToEnd is the acceptance test for durability at
// the process level: SIGKILL the daemon mid-sweep, restart it on the
// same data dir, and require that every point of the finished sweep is
// byte-identical to an uninterrupted in-process run of the same spec.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped with -short")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	retry := client.RetryPolicy{MaxAttempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const sweepDoc = `{"base": {"workload": "seq,random", "cores": 2}, "axes": {"cycles": [20000, 2000000, 4000000]}}`

	// The uninterrupted reference: the simulator is deterministic, so an
	// in-process run of each expanded point yields the exact document the
	// recovered service must serve.
	sw, err := exp.ParseSweep([]byte(sweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte, len(points)) // spec hash → result doc
	for _, p := range points {
		res, err := exp.RunSpec(ctx, p.Spec, exp.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := exp.ResultJSON(p.Spec, res)
		if err != nil {
			t.Fatal(err)
		}
		want[p.Hash] = doc
	}

	cmd, addr := startDaemon(t, bin, dataDir)
	c := client.New("http://"+addr, client.Options{Retry: retry})
	sub, err := c.SubmitSweep(ctx, []byte(sweepDoc))
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal(err)
	}

	// Let at least the first point complete, then pull the plug.
	for {
		st, err := c.Sweep(ctx, sub.ID)
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal(err)
		}
		if st.Completed >= 1 {
			break
		}
		if err := sleepCtx(ctx, 10*time.Millisecond); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal(err)
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no checkpoint, no cleanup
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart over the same data dir (fresh port) and let the recovered
	// sweep run to completion.
	cmd2, addr2 := startDaemon(t, bin, dataDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	c2 := client.New("http://"+addr2, client.Options{Retry: retry})

	got := map[string][]byte{}
	n, err := c2.SweepResults(ctx, sub.ID, func(l service.SweepResultLine) error {
		if l.State != service.StateDone {
			t.Errorf("point %d recovered as %s (%s)", l.Index, l.State, l.Error)
		}
		got[l.SpecHash] = append([]byte(nil), l.Result...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(points) {
		t.Fatalf("recovered sweep streamed %d lines, want %d", n, len(points))
	}

	for hash, wantDoc := range want {
		// The NDJSON line embeds the result compacted; compare compact
		// forms, then fetch the raw document for byte-level identity.
		var buf bytes.Buffer
		if err := json.Compact(&buf, wantDoc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[hash], buf.Bytes()) {
			t.Errorf("sweep line for %s differs from uninterrupted run:\nwant %s\ngot  %s", hash, buf.Bytes(), got[hash])
		}
	}

	// Byte-level identity of the full documents via the job endpoints.
	st, err := c2.Sweep(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Completed != len(points) {
		t.Fatalf("recovered sweep = %s (%d/%d points)", st.State, st.Completed, len(points))
	}
	for _, job := range st.Jobs {
		doc, err := c2.Stacks(ctx, job.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if wantDoc, ok := want[job.SpecHash]; !ok || !bytes.Equal(doc, wantDoc) {
			t.Errorf("stacks of %s differ from uninterrupted run:\nwant %s\ngot  %s", job.JobID, wantDoc, doc)
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
