package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dramstacks/internal/analysis"
)

func TestAllAnalyzersRegistered(t *testing.T) {
	want := []string{"canonhash", "detrange", "errenvelope", "lockhold", "nowallclock", "poolescape"}
	if len(Analyzers) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(Analyzers), len(want))
	}
	names := make(map[string]bool)
	for _, a := range Analyzers {
		names[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("analyzer %s is not registered", n)
		}
	}
	if err := analysis.Validate(Analyzers); err != nil {
		t.Fatal(err)
	}
}

// TestVetToolProtocol builds the tool and runs it through the real
// `go vet -vettool` protocol over the deterministic core and the
// service, which doubles as the enforcement that the tree stays clean.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the tree; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "dramvet")
	build := exec.Command("go", "build", "-o", bin, "dramstacks/cmd/dramvet")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dramvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/exp/...", "./internal/service/...", "./internal/stacks/...")
	vet.Dir = "../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=dramvet found violations: %v\n%s", err, out)
	}
	// -V=full must print a version line in the form vet expects.
	ver := exec.Command(bin, "-V=full")
	out, err := ver.Output()
	if err != nil {
		t.Fatalf("dramvet -V=full: %v", err)
	}
	if !strings.Contains(string(out), "buildID=") {
		t.Fatalf("dramvet -V=full output %q lacks a buildID", out)
	}
}
