// Dramvet is the repository's custom vet suite: a multichecker that
// mechanically enforces the simulator's determinism, hashing, and
// locking invariants. It speaks the standard vettool protocol, so local
// and CI invocations are identical:
//
//	go build -o bin/dramvet ./cmd/dramvet
//	go vet -vettool=bin/dramvet ./...
//
// (or `make vet`). See doc/LINTING.md for what each analyzer guards and
// the //dramvet:allow escape hatch.
package main

import (
	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/passes/canonhash"
	"dramstacks/internal/analysis/passes/detrange"
	"dramstacks/internal/analysis/passes/errenvelope"
	"dramstacks/internal/analysis/passes/goroleak"
	"dramstacks/internal/analysis/passes/lockhold"
	"dramstacks/internal/analysis/passes/lockorder"
	"dramstacks/internal/analysis/passes/nowallclock"
	"dramstacks/internal/analysis/passes/poolescape"
	"dramstacks/internal/analysis/unit"
)

// Analyzers is the full dramvet suite, exported for the registration
// smoke test.
var Analyzers = []*analysis.Analyzer{
	canonhash.Analyzer,
	detrange.Analyzer,
	errenvelope.Analyzer,
	goroleak.Analyzer,
	lockhold.Analyzer,
	lockorder.Analyzer,
	nowallclock.Analyzer,
	poolescape.Analyzer,
}

func main() {
	unit.Main(Analyzers...)
}
