// Command paperfigs regenerates the data behind every figure of the
// paper's evaluation (Figs. 2-4 and 6-9; Fig. 5 is the address-mapping
// definition, printed for reference). Results are printed as ASCII
// charts and, when -out is given, written as CSV files.
//
//	paperfigs -fig all -out results
//	paperfigs -fig 7 -budget 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dramstacks/internal/addrmap"
	"dramstacks/internal/dram"
	"dramstacks/internal/exp"
	"dramstacks/internal/extrapolate"
	"dramstacks/internal/viz"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 2,3,4,5,6,7,8,9 or all")
		budget    = flag.Int64("budget", 400_000, "memory-cycle budget per synthetic run")
		gapBudget = flag.Int64("gap-budget", 1_500_000, "memory-cycle budget per GAP run")
		out       = flag.String("out", "", "directory for CSV output (optional)")
	)
	flag.Parse()
	if err := run(*fig, *budget, *gapBudget, *out); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run(fig string, budget, gapBudget int64, out string) error {
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}
	want := func(f string) bool { return fig == "all" || fig == f }
	geo, _ := dram.DDR4_2400()

	section := func(title string) {
		fmt.Printf("\n===== %s =====\n", title)
	}
	writeSVG := func(name string, render func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(out, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return render(f)
	}
	chartRows := func(name string, rows []exp.Row) error {
		labels, bw, lat := exp.Stacks(rows)
		viz.BandwidthChart(os.Stdout, labels, bw, geo)
		fmt.Println()
		viz.LatencyChart(os.Stdout, labels, lat, geo)
		if out == "" {
			return nil
		}
		if err := writeSVG(name+"_bw.svg", func(f *os.File) error {
			return viz.BandwidthSVG(f, labels, bw, geo)
		}); err != nil {
			return err
		}
		if err := writeSVG(name+"_lat.svg", func(f *os.File) error {
			return viz.LatencySVG(f, labels, lat, geo)
		}); err != nil {
			return err
		}
		jf, err := os.Create(filepath.Join(out, name+".json"))
		if err != nil {
			return err
		}
		if err := exp.WriteRowsJSON(jf, rows); err != nil {
			jf.Close()
			return err
		}
		jf.Close()
		f, err := os.Create(filepath.Join(out, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprint(f, "label,achieved_gbs")
		for c := 0; c < len(bw[0].Cycles); c++ {
			fmt.Fprintf(f, ",bw_%d", c)
		}
		fmt.Fprintln(f)
		for i := range rows {
			g := bw[i].GBps(geo)
			fmt.Fprintf(f, "%s,%.4f", strings.ReplaceAll(labels[i], ",", " "), bw[i].AchievedGBps(geo))
			for _, v := range g {
				fmt.Fprintf(f, ",%.4f", v)
			}
			fmt.Fprintln(f)
		}
		return nil
	}

	start := time.Now()
	if want("2") {
		section("Fig. 2: read-only scaling, sequential vs random, 1-8 cores")
		rows, err := exp.Fig2(budget)
		if err != nil {
			return err
		}
		if err := chartRows("fig2", rows); err != nil {
			return err
		}
	}
	if want("3") {
		section("Fig. 3: store-fraction sweep on 1 core")
		rows, err := exp.Fig3(budget)
		if err != nil {
			return err
		}
		if err := chartRows("fig3", rows); err != nil {
			return err
		}
	}
	if want("4") {
		section("Fig. 4: open vs closed page policy, 2 cores")
		rows, err := exp.Fig4(budget)
		if err != nil {
			return err
		}
		if err := chartRows("fig4", rows); err != nil {
			return err
		}
	}
	if want("5") {
		section("Fig. 5: address indexing schemes")
		fmt.Println(addrmap.MustDefault(geo, 1))
		fmt.Println(addrmap.MustInterleaved(geo, 1))
	}
	if want("6") {
		section("Fig. 6: default vs cache-line-interleaved indexing")
		rows, err := exp.Fig6(budget)
		if err != nil {
			return err
		}
		if err := chartRows("fig6", rows); err != nil {
			return err
		}
	}
	if want("7") {
		section("Fig. 7: through-time stacks for bfs on 8 cores")
		res, err := exp.Fig7(gapBudget, gapBudget/48)
		if err != nil {
			return err
		}
		fmt.Printf("bfs 8c: %.2f GB/s over %.3f ms (%d samples)\n",
			res.AchievedGBps(), res.RuntimeMS(), len(res.BWSamples))
		if out != "" {
			f, err := os.Create(filepath.Join(out, "fig7_bw_lat.csv"))
			if err != nil {
				return err
			}
			if err := viz.SamplesCSV(f, res.BWSamples, geo); err != nil {
				f.Close()
				return err
			}
			f.Close()
			f, err = os.Create(filepath.Join(out, "fig7_cycles.csv"))
			if err != nil {
				return err
			}
			if err := viz.CycleSamplesCSV(f, res.CycleSamples, res.Cfg.SampleInterval, geo); err != nil {
				f.Close()
				return err
			}
			f.Close()
			if err := writeSVG("fig7_bw.svg", func(f *os.File) error {
				return viz.ThroughTimeSVG(f, res.BWSamples, geo)
			}); err != nil {
				return err
			}
			if err := writeSVG("fig7_cycles.svg", func(f *os.File) error {
				return viz.CycleSamplesSVG(f, res.CycleSamples, res.Cfg.SampleInterval, geo)
			}); err != nil {
				return err
			}
		}
		// Show the phase behavior as through-time achieved bandwidth.
		viz.ThroughTime(os.Stdout, res.BWSamples, geo)
	}
	if want("8") {
		section("Fig. 8: latency stacks for bfs/tc variants")
		rows, err := exp.Fig8(gapBudget)
		if err != nil {
			return err
		}
		labels, _, lat := exp.Stacks(rows)
		viz.LatencyChart(os.Stdout, labels, lat, geo)
		if out != "" {
			if err := writeSVG("fig8_lat.svg", func(f *os.File) error {
				return viz.LatencySVG(f, labels, lat, geo)
			}); err != nil {
				return err
			}
		}
	}
	if want("9") {
		section("Fig. 9: bandwidth extrapolation 1c -> 8c, naive vs stack")
		preds, err := exp.Fig9(gapBudget, gapBudget/32)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
			"bench", "8c meas.", "naive", "stack", "naiveErr", "stackErr")
		for _, p := range preds {
			fmt.Printf("%-8s %10.2f %10.2f %10.2f %9.1f%% %9.1f%%\n",
				p.Name, p.Measured, p.Naive, p.Stack, 100*p.NaiveErr(), 100*p.StackErr())
		}
		nv, st, err := extrapolate.MeanErrors(preds)
		if err != nil {
			return err
		}
		fmt.Printf("mean error: naive %.1f%%, stack-based %.1f%% (paper: 27%% vs 8%%)\n",
			100*nv, 100*st)
		if out != "" {
			f, err := os.Create(filepath.Join(out, "fig9.csv"))
			if err != nil {
				return err
			}
			fmt.Fprintln(f, "bench,measured_8c,naive,stack,naive_err,stack_err")
			for _, p := range preds {
				fmt.Fprintf(f, "%s,%.4f,%.4f,%.4f,%.4f,%.4f\n",
					p.Name, p.Measured, p.Naive, p.Stack, p.NaiveErr(), p.StackErr())
			}
			f.Close()
		}
	}
	fmt.Printf("\ndone in %.1fs\n", time.Since(start).Seconds())
	return nil
}
