package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunFig5 exercises the cheapest figure path (no simulation) plus
// the flag plumbing.
func TestRunFig5(t *testing.T) {
	if err := run("5", 10_000, 10_000, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunFig4WithOutput runs one real (tiny) figure sweep and checks the
// CSV lands in the output directory.
func TestRunFig4WithOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short")
	}
	dir := t.TempDir()
	if err := run("4", 30_000, 30_000, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("fig4.csv empty")
	}
}
