package main

// Paper-calibration gate: regenerate the stack shapes behind paper
// Figs. 4, 7 and 9 at a reduced (CI-sized) budget and assert each key
// component share stays inside a tolerance band around the paper's
// qualitative shape. The bands are wide enough to absorb the budget
// reduction and scheduler-neutral refactors, and tight enough that a
// mis-calibrated timing model, a broken page policy, or an accounting
// leak moves a share outside them. CI runs these in the dedicated
// calibration job (full, not -short); on failure the regenerated figure
// data is uploaded as an artifact for side-by-side comparison —
// set CALIB_ARTIFACT_DIR to collect it.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dramstacks/internal/exp"
	"dramstacks/internal/stacks"
)

// Calibration budgets: big enough for the shapes to settle, small
// enough for a CI job. The synthetic figures settle fast; the GAP
// figures need room for their phase behavior.
const (
	calibSynthBudget = 150_000
	calibGapBudget   = 600_000
)

// band is an inclusive tolerance band on a component's share of its
// stack (fractions of 1).
type band struct{ lo, hi float64 }

func (b band) contains(v float64) bool { return v >= b.lo && v <= b.hi }

// bwShares reduces a bandwidth stack to per-component fractions of the
// accounted channel cycles.
func bwShares(s stacks.BandwidthStack) map[string]float64 {
	out := make(map[string]float64, stacks.NumBWComponents)
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		out[c.String()] = s.Cycles[c] / float64(s.TotalCycles)
	}
	return out
}

// latShares reduces a latency stack to per-component fractions of the
// average read latency.
func latShares(s stacks.LatencyStack) map[string]float64 {
	total := 0.0
	for _, v := range s.SumCycles {
		total += v
	}
	out := make(map[string]float64, stacks.NumLatComponents)
	for c := stacks.LatComponent(0); c < stacks.NumLatComponents; c++ {
		out[c.String()] = s.SumCycles[c] / total
	}
	return out
}

// checkShares returns one violation line per component whose share
// falls outside its band. Components without a band are unconstrained.
func checkShares(label string, shares map[string]float64, bounds map[string]band) []string {
	var out []string
	for comp, b := range bounds {
		v, ok := shares[comp]
		if !ok {
			out = append(out, fmt.Sprintf("%s: component %q missing from the stack", label, comp))
			continue
		}
		if !b.contains(v) {
			out = append(out, fmt.Sprintf("%s: %s share %.4f outside calibration band [%.4f, %.4f]",
				label, comp, v, b.lo, b.hi))
		}
	}
	return out
}

// writeCalibArtifact drops regenerated figure data where the CI
// calibration job picks it up on failure (CALIB_ARTIFACT_DIR; no-op
// when unset, e.g. local runs).
func writeCalibArtifact(t *testing.T, name string, v any) {
	t.Helper()
	dir := os.Getenv("CALIB_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("calibration artifact dir: %v", err)
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Logf("calibration artifact %s: %v", name, err)
		return
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Logf("calibration artifact %s: %v", name, err)
	}
}

// fig4Bounds is the calibration envelope for the page-policy figure
// (paper Fig. 4, two cores): sequential streams keep most channel
// cycles in data transfer under open pages and pay a visible
// activate/precharge overhead under closed pages; random traffic is
// latency-bound, its banks idling between dependent misses with little
// data transfer under either policy.
var fig4Bounds = map[string]map[string]band{
	"sequential open": {
		"read":      {0.45, 0.85},
		"precharge": {0, 0.02},
		"activate":  {0, 0.02},
		"refresh":   {0.02, 0.08},
	},
	"sequential closed": {
		"read":      {0.20, 0.55},
		"precharge": {0.01, 0.10},
		"activate":  {0.01, 0.10},
		"bank_idle": {0.25, 0.65},
	},
	"random open": {
		"read":      {0.05, 0.35},
		"bank_idle": {0.40, 0.85},
	},
	"random closed": {
		"read":      {0.05, 0.35},
		"bank_idle": {0.40, 0.85},
	},
}

func TestCalibrationFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration skipped in -short")
	}
	rows, err := exp.Fig4(calibSynthBudget)
	if err != nil {
		t.Fatal(err)
	}
	all := map[string]map[string]float64{}
	var violations []string
	for _, r := range rows {
		shares := bwShares(r.Res.BW)
		all[r.Label] = shares
		t.Logf("%s: %v", r.Label, shares)
		bounds, ok := fig4Bounds[r.Label]
		if !ok {
			t.Errorf("no calibration bounds for Fig. 4 row %q", r.Label)
			continue
		}
		violations = append(violations, checkShares(r.Label, shares, bounds)...)
	}
	// The figure's headline contrast must also hold: closed pages cost
	// the sequential stream data-transfer share.
	if seqOpen, seqClosed := all["sequential open"], all["sequential closed"]; seqOpen != nil && seqClosed != nil {
		if seqOpen["read"] <= seqClosed["read"] {
			violations = append(violations, fmt.Sprintf(
				"sequential read share open %.4f <= closed %.4f: page policy lost its effect",
				seqOpen["read"], seqClosed["read"]))
		}
	}
	if len(violations) > 0 {
		writeCalibArtifact(t, "fig4_shares.json", all)
		for _, v := range violations {
			t.Error(v)
		}
	}
}

// fig7Bounds is the calibration envelope for the bfs through-time
// figure (paper Fig. 7, 8 cores): bfs saturates the channel in its
// frontier phases, so read transfer holds a substantial share and the
// average read latency is dominated by queueing, not the DRAM core.
var fig7Bounds = struct {
	bw, lat map[string]band
}{
	bw: map[string]band{
		"read": {0.25, 0.85},
		"idle": {0, 0.50},
	},
	lat: map[string]band{
		"queue": {0.35, 0.98},
	},
}

func TestCalibrationFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration skipped in -short")
	}
	res, err := exp.Fig7(calibGapBudget, calibGapBudget/48)
	if err != nil {
		t.Fatal(err)
	}
	bw, lat := bwShares(res.BW), latShares(res.Lat)
	t.Logf("bfs 8c bandwidth: %v", bw)
	t.Logf("bfs 8c latency: %v", lat)
	violations := append(
		checkShares("bfs 8c bandwidth", bw, fig7Bounds.bw),
		checkShares("bfs 8c latency", lat, fig7Bounds.lat)...)
	if len(res.BWSamples) < 10 {
		violations = append(violations, fmt.Sprintf(
			"bfs 8c: only %d through-time samples, want >= 10", len(res.BWSamples)))
	}
	if len(violations) > 0 {
		writeCalibArtifact(t, "fig7_shares.json", map[string]any{"bw": bw, "lat": lat})
		for _, v := range violations {
			t.Error(v)
		}
	}
}

func TestCalibrationFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration skipped in -short")
	}
	preds, err := exp.Fig9(calibGapBudget, calibGapBudget/64)
	if err != nil {
		t.Fatal(err)
	}
	var naive, stack float64
	for _, p := range preds {
		naive += p.NaiveErr()
		stack += p.StackErr()
	}
	naive /= float64(len(preds))
	stack /= float64(len(preds))
	t.Logf("mean extrapolation error: naive %.1f%%, stack %.1f%%", 100*naive, 100*stack)
	var violations []string
	// The paper's headline (27% naive vs 8% stack-based at full budget):
	// the stack-based extrapolation must at least halve the naive error,
	// and hold an absolute bound fitted to this CI budget (measured
	// ~0.22 against naive ~0.79; the full-budget figure reaches 0.15).
	if stack >= naive*0.6 {
		violations = append(violations, fmt.Sprintf(
			"stack-based extrapolation error %.3f not clearly better than naive %.3f", stack, naive))
	}
	if stack > 0.30 {
		violations = append(violations, fmt.Sprintf(
			"stack-based extrapolation error %.3f above the 0.30 calibration bound", stack))
	}
	if len(violations) > 0 {
		writeCalibArtifact(t, "fig9_predictions.json", preds)
		for _, v := range violations {
			t.Error(v)
		}
	}
}

// TestCalibrationGateTrips feeds the Fig. 4 checker a stack whose read
// share is perturbed beyond tolerance and requires the gate to trip:
// the calibration job demonstrably fails on a mis-calibrated shape, so
// a quietly drifting simulator cannot pass it.
func TestCalibrationGateTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration skipped in -short")
	}
	rows, err := exp.Fig4(calibSynthBudget)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Label != "sequential open" {
			continue
		}
		shares := bwShares(r.Res.BW)
		if v := checkShares(r.Label, shares, fig4Bounds[r.Label]); len(v) > 0 {
			t.Fatalf("calibrated shape already out of band: %v", v)
		}
		// Shift half the read share into idle — the kind of drift a
		// broken scheduler or leaked accounting would produce.
		perturbed := make(map[string]float64, len(shares))
		for k, v := range shares {
			perturbed[k] = v
		}
		perturbed["idle"] += perturbed["read"] / 2
		perturbed["read"] /= 2
		if v := checkShares(r.Label, perturbed, fig4Bounds[r.Label]); len(v) == 0 {
			t.Errorf("gate did not trip on a perturbed read share (%.3f -> %.3f)",
				shares["read"], perturbed["read"])
		}
		return
	}
	t.Fatal("Fig. 4 rows carry no 'sequential open' case")
}
