package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dramstacks/internal/exp"
)

func TestRunSyntheticWorkloads(t *testing.T) {
	for _, wl := range []string{"seq", "random", "strided", "triad"} {
		if err := run(wl, "", 1, 1, 0, "", "def", "", 20_000, 0, 17, 0, "", "", "", false); err != nil {
			t.Errorf("%s: %v", wl, err)
		}
	}
}

func TestRunGapWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("gap run skipped in -short")
	}
	if err := run("bfs", "", 2, 1, 0, "", "def", "", 30_000, 0, 12, 0, "", "", "", false); err != nil {
		t.Errorf("bfs: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		err  string
		call func() error
	}{
		{"bad workload", "unknown workload", func() error {
			return run("nope", "", 1, 1, 0, "", "def", "", 1000, 0, 17, 0, "", "", "", false)
		}},
		{"bad mapping", "unknown mapping", func() error {
			return run("seq", "", 1, 1, 0, "", "zigzag", "", 1000, 0, 17, 0, "", "", "", false)
		}},
		{"bad policy", "unknown policy", func() error {
			return run("seq", "", 1, 1, 0, "lukewarm", "def", "", 1000, 0, 17, 0, "", "", "", false)
		}},
		{"trace without file", "-in", func() error {
			return run("trace", "", 1, 1, 0, "", "def", "", 1000, 0, 17, 0, "", "", "", false)
		}},
		{"csv without sample", "-csv needs -sample", func() error {
			return run("seq", "", 1, 1, 0, "", "def", "", 1000, 0, 17, 0, "", "out.csv", "", false)
		}},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil || !strings.Contains(err.Error(), tc.err) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.err)
		}
	}
}

// TestRunJSONOutput checks -json emits the dramstacksd wire format with
// the spec hash stamped in.
func TestRunJSONOutput(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("seq", "", 1, 1, 0, "", "def", "", 20_000, 0, 17, 0, "", "", "", true)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	var row exp.RowJSON
	if err := json.Unmarshal(out, &row); err != nil {
		t.Fatalf("stdout is not one JSON document: %v\n%s", err, out)
	}
	spec := exp.Spec{Workload: "seq", Cores: 1, Channels: 1, Budget: 20_000, Scale: 17}
	wantHash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if row.SpecHash != wantHash {
		t.Errorf("spec_hash = %q, want %q", row.SpecHash, wantHash)
	}
	if row.MemCycles != 20_000 {
		t.Errorf("mem_cycles = %d, want 20000", row.MemCycles)
	}
}

func TestRunWithTraceAndCSVOutputs(t *testing.T) {
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "cmds.trace")
	csvOut := filepath.Join(dir, "samples.csv")
	if err := run("seq", "", 1, 1, 0, "", "def", "", 30_000, 10_000, 17, 0, "", csvOut, traceOut, false); err != nil {
		t.Fatal(err)
	}
	tr, err := os.ReadFile(traceOut)
	if err != nil || len(tr) == 0 {
		t.Errorf("trace file missing or empty: %v", err)
	}
	if !strings.Contains(string(tr), "ACT") || !strings.Contains(string(tr), "RD") {
		t.Error("trace file lacks commands")
	}
	csv, err := os.ReadFile(csvOut)
	if err != nil || !strings.HasPrefix(string(csv), "start_cycle,") {
		t.Errorf("csv file wrong: %v", err)
	}
}

func TestRunTracePlayerWorkload(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "app.trace")
	var b strings.Builder
	for i := 0; i < 64; i++ {
		b.WriteString("R ")
		b.WriteString(strings.TrimSpace((" " + hex(uint64(i*64)))))
		b.WriteString(" 8\n")
	}
	if err := os.WriteFile(in, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("trace", in, 1, 1, 0, "", "def", "", 20_000, 0, 17, 0, "", "", "", false); err != nil {
		t.Errorf("trace workload: %v", err)
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	var out []byte
	for v > 0 {
		out = append([]byte{digits[v&15]}, out...)
		v >>= 4
	}
	return "0x" + string(out)
}
