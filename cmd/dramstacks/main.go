// Command dramstacks runs one workload on the simulated machine and
// prints its DRAM bandwidth, latency and cycle stacks.
//
// Usage examples:
//
//	dramstacks -workload seq -cores 4
//	dramstacks -workload random -cores 8 -stores 0.2 -policy closed
//	dramstacks -workload bfs -cores 8 -scale 16 -cycles 1000000
//	dramstacks -workload seq -cores 2 -map int -trace seq2.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dramstacks/internal/cpu"
	"dramstacks/internal/cyclestack"
	"dramstacks/internal/exp"
	"dramstacks/internal/gap"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/power"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/trace"
	"dramstacks/internal/viz"
	"dramstacks/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "seq", "seq, random, strided, a STREAM kernel (copy scale add triad), a GAP kernel (bc bfs cc pr sssp tc), 'trace' with -in, or a comma mix of synthetic/STREAM kinds assigned to cores round-robin (e.g. seq,random)")
		inFile    = flag.String("in", "", "application memory trace for -workload trace (lines: 'R <addr> [work]', 'W <addr> [work]', 'B [0|1]')")
		cores     = flag.Int("cores", 1, "number of cores (1-8 in the paper)")
		channels  = flag.Int("channels", 1, "memory channels (the paper uses 1)")
		stores    = flag.Float64("stores", 0, "store fraction for synthetic workloads (0..1)")
		policy    = flag.String("policy", "", "page policy: open or closed (default: open; GAP kernels default closed, tc open)")
		mapping   = flag.String("map", "def", "address mapping: def (Fig 5a), int (cache-line interleaved, Fig 5b), or xor (permutation bank hashing)")
		cycles    = flag.Int64("cycles", 500_000, "memory-cycle budget (0 = run workload to completion)")
		sample    = flag.Int64("sample", 0, "through-time sample interval in memory cycles (0 = off)")
		scale     = flag.Int("scale", 17, "Kronecker graph scale for GAP kernels")
		wq        = flag.Int("wq", 0, "write queue capacity override (paper wq128 variant)")
		csvOut    = flag.String("csv", "", "write through-time samples as CSV to this file (needs -sample)")
		traceFile = flag.String("trace", "", "record the DRAM command trace to this file")
	)
	flag.Parse()
	if err := run(*wl, *inFile, *cores, *channels, *stores, *policy, *mapping, *cycles, *sample, *scale, *wq, *csvOut, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, "dramstacks:", err)
		os.Exit(1)
	}
}

func run(wl, inFile string, cores, channels int, stores float64, policy, mapping string,
	cycles, sample int64, scale, wq int, csvOut, traceFile string) error {
	m := sim.MapDefault
	switch mapping {
	case "def":
	case "int":
		m = sim.MapInterleaved
	case "xor":
		m = sim.MapXOR
	default:
		return fmt.Errorf("unknown mapping %q (want def, int or xor)", mapping)
	}

	if strings.Contains(wl, ",") {
		return runMix(wl, cores, channels, policy, m, cycles, sample, csvOut, traceFile)
	}
	var res *simResult
	switch wl {
	case "trace":
		if inFile == "" {
			return fmt.Errorf("-workload trace needs -in <file>")
		}
		f, err := os.Open(inFile)
		if err != nil {
			return err
		}
		base, err := workload.ParseTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg := sim.Default(cores)
		cfg.Channels = channels
		cfg.Map = m
		if policy == "closed" {
			cfg.Ctrl.Policy = memctrl.ClosedPage
		}
		cfg.MaxMemCycles = cycles
		cfg.SampleInterval = sample
		var rec trace.Recorder
		if traceFile != "" {
			cfg.Trace = rec.Hook()
		}
		// Each core replays the trace from its own copy.
		var sources []cpu.Source
		for i := 0; i < cores; i++ {
			p := *base
			p.Loop = true
			sources = append(sources, &p)
		}
		sys, err := sim.New(cfg, sources)
		if err != nil {
			return err
		}
		r := sys.Run()
		if len(r.Violations) > 0 {
			return fmt.Errorf("DRAM timing violations: %v", r.Violations[0])
		}
		res = &simResult{r, fmt.Sprintf("trace %dc", cores), rec.Events()}
	case "copy", "scale", "add", "triad":
		kinds := map[string]workload.StreamKind{
			"copy": workload.StreamCopy, "scale": workload.StreamScale,
			"add": workload.StreamAdd, "triad": workload.StreamTriad,
		}
		cfg := sim.Default(cores)
		cfg.Channels = channels
		cfg.Map = m
		if policy == "closed" {
			cfg.Ctrl.Policy = memctrl.ClosedPage
		}
		cfg.MaxMemCycles = cycles
		cfg.PrewarmOps = 1 << 20
		cfg.SampleInterval = sample
		var rec trace.Recorder
		if traceFile != "" {
			cfg.Trace = rec.Hook()
		}
		sys, err := sim.New(cfg, workload.StreamSources(kinds[wl], cores))
		if err != nil {
			return err
		}
		r := sys.Run()
		if len(r.Violations) > 0 {
			return fmt.Errorf("DRAM timing violations: %v", r.Violations[0])
		}
		res = &simResult{r, fmt.Sprintf("stream-%s %dc", wl, cores), rec.Events()}
	case "seq", "random", "strided":
		pat := workload.Sequential
		switch wl {
		case "random":
			pat = workload.Random
		case "strided":
			pat = workload.Strided
		}
		pol := memctrl.OpenPage
		if policy == "closed" {
			pol = memctrl.ClosedPage
		} else if policy != "" && policy != "open" {
			return fmt.Errorf("unknown policy %q", policy)
		}
		spec := exp.SynthSpec{
			Pattern: pat, Cores: cores, Channels: channels, StoreFrac: stores,
			Map: m, Policy: pol, Budget: cycles, Prewarm: 1 << 20, Sample: sample,
		}
		var rec trace.Recorder
		if traceFile != "" {
			spec.Trace = rec.Hook()
		}
		r, err := exp.RunSynth(spec)
		if err != nil {
			return err
		}
		res = &simResult{r, fmt.Sprintf("%s %dc", pat, cores), rec.Events()}
	default:
		found := false
		for _, b := range gap.Benchmarks() {
			if b == wl {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown workload %q (want seq, random, or one of %v)", wl, gap.Benchmarks())
		}
		spec := exp.DefaultGap(wl, cores)
		spec.Scale = scale
		spec.Map = m
		spec.Budget = cycles
		spec.Sample = sample
		spec.WriteQueue = wq
		if policy == "open" {
			spec.Policy = memctrl.OpenPage
		} else if policy == "closed" {
			spec.Policy = memctrl.ClosedPage
		}
		var rec trace.Recorder
		if traceFile != "" {
			spec.Trace = rec.Hook()
		}
		r, err := exp.RunGap(spec)
		if err != nil {
			return err
		}
		res = &simResult{r, fmt.Sprintf("%s %dc", wl, cores), rec.Events()}
	}
	return report(res, csvOut, traceFile)
}

// runMix builds a heterogeneous system: the comma-separated workload
// kinds are assigned to cores round-robin, each with a private region.
func runMix(wl string, cores, channels int, policy string, m sim.Mapping,
	cycles, sample int64, csvOut, traceFile string) error {
	kinds := strings.Split(wl, ",")
	cfg := sim.Default(cores)
	cfg.Channels = channels
	cfg.Map = m
	if policy == "closed" {
		cfg.Ctrl.Policy = memctrl.ClosedPage
	}
	cfg.MaxMemCycles = cycles
	cfg.SampleInterval = sample
	var rec trace.Recorder
	if traceFile != "" {
		cfg.Trace = rec.Hook()
	}
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		kind := strings.TrimSpace(kinds[i%len(kinds)])
		base := uint64(i)*(512<<20) + uint64(i)*8192
		switch kind {
		case "seq":
			wc := workload.DefaultSequential()
			wc.BaseAddr = base
			wc.Seed = int64(i + 1)
			sources = append(sources, workload.MustSynthetic(wc))
		case "random":
			wc := workload.DefaultRandom()
			wc.BaseAddr = base
			wc.Seed = int64(i + 1)
			sources = append(sources, workload.MustSynthetic(wc))
		case "strided":
			wc := workload.DefaultStrided()
			wc.BaseAddr = base
			wc.Seed = int64(i + 1)
			sources = append(sources, workload.MustSynthetic(wc))
		case "copy", "scale", "add", "triad":
			sc := workload.DefaultStream(map[string]workload.StreamKind{
				"copy": workload.StreamCopy, "scale": workload.StreamScale,
				"add": workload.StreamAdd, "triad": workload.StreamTriad,
			}[kind])
			sc.BaseAddr = base
			sources = append(sources, workload.MustStream(sc))
		default:
			return fmt.Errorf("unknown mix component %q (synthetic and STREAM kinds only)", kind)
		}
	}
	sys, err := sim.New(cfg, sources)
	if err != nil {
		return err
	}
	r := sys.Run()
	if len(r.Violations) > 0 {
		return fmt.Errorf("DRAM timing violations: %v", r.Violations[0])
	}
	return report(&simResult{r, fmt.Sprintf("mix(%s) %dc", wl, cores), rec.Events()}, csvOut, traceFile)
}

type simResult struct {
	r      *sim.Result
	label  string
	events []trace.Event
}

func report(res *simResult, csvOut, traceFile string) error {
	r := res.r
	geo := r.Cfg.Geom

	fmt.Printf("simulated %d memory cycles (%.3f ms), %d instructions retired, %d channel(s)\n",
		r.MemCycles, r.RuntimeMS(), r.TotalRetired(), r.Channels)
	fmt.Printf("page hit rate %.1f%%, %d refreshes, %d reads / %d writes to DRAM\n",
		100*r.CtrlStats.PageHitRate(), r.CtrlStats.Refreshes,
		r.CtrlStats.IssuedReads, r.CtrlStats.IssuedWrites)
	if rep, err := power.DDR4().Estimate(r.DevStats, r.MemCycles, geo); err == nil {
		fmt.Println(rep)
	}
	if h := r.LatHist; h.Count() > 0 {
		fmt.Printf("read latency: mean %.1f ns, p50 <= %.1f, p95 <= %.1f, p99 <= %.1f, max %.1f\n",
			geo.CyclesToNS(1)*h.Mean(),
			geo.CyclesToNS(h.Quantile(0.50)), geo.CyclesToNS(h.Quantile(0.95)),
			geo.CyclesToNS(h.Quantile(0.99)), geo.CyclesToNS(h.Max()))
	}
	fmt.Println()

	viz.BandwidthChart(os.Stdout, []string{res.label}, []stacks.BandwidthStack{r.BW}, geo)
	if r.Channels > 1 {
		fmt.Printf("(per-channel average; total across %d channels: %.2f of %.1f GB/s)\n",
			r.Channels, r.AchievedGBps(), r.PeakGBps())
	}
	fmt.Println()
	viz.LatencyChart(os.Stdout, []string{res.label}, []stacks.LatencyStack{r.Lat}, geo)
	fmt.Println()
	var agg cyclestack.Stack
	labels := []string{}
	var perCore []cyclestack.Stack
	for i, cs := range r.CycleStacks {
		agg.Add(cs)
		perCore = append(perCore, cs)
		labels = append(labels, fmt.Sprintf("core %d", i))
	}
	viz.CycleChart(os.Stdout, append(labels, "all cores"), append(perCore, agg))

	if advice := stacks.Diagnose(r.BW, r.Lat, geo); len(advice) > 0 {
		fmt.Println("\ndiagnosis (paper §IV/§V interpretation):")
		for _, a := range advice {
			fmt.Printf("  %s\n", a)
		}
	}

	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := viz.SamplesCSV(f, r.BWSamples, geo); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d through-time samples to %s\n", len(r.BWSamples), csvOut)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, res.events); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d DRAM commands to %s (rebuild the stack offline with cmd/tracestack)\n",
			len(res.events), traceFile)
	}
	if len(r.Violations) > 0 {
		return fmt.Errorf("DRAM timing violations detected: %v", r.Violations[0])
	}
	return nil
}
