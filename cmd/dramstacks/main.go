// Command dramstacks runs one workload on the simulated machine and
// prints its DRAM bandwidth, latency and cycle stacks.
//
// Usage examples:
//
//	dramstacks -workload seq -cores 4
//	dramstacks -workload seq -cores 4 -standard ddr5-4800
//	dramstacks -list-standards
//	dramstacks -workload random -cores 8 -stores 0.2 -policy closed
//	dramstacks -workload bfs -cores 8 -scale 16 -cycles 1000000
//	dramstacks -workload seq -cores 2 -map int -trace seq2.trace
//	dramstacks -workload seq -cores 4 -json
//	dramstacks -sweep examples/sweeps/fig4.json
//	dramstacks -sweep sweep.json -workers 4 -json > sweep.out.json
//
// Except for -workload trace (which replays a local file), experiments
// are described by the shared spec layer in internal/exp, the same path
// the dramstacksd service runs, so -json output is byte-identical to
// the service's result for the same spec.
//
// With -sweep the single-experiment flags are ignored: the sweep file's
// base spec plus axis lists expand into a deduplicated grid of specs run
// across a bounded worker pool. The aggregate comes out as a table
// (default), one JSON document (-json), or CSV rows (-csv).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"dramstacks/internal/cpu"
	"dramstacks/internal/cyclestack"
	"dramstacks/internal/dram"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/exp"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/power"
	"dramstacks/internal/qos"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/trace"
	"dramstacks/internal/viz"
	"dramstacks/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "seq", "seq, random, strided, a STREAM kernel (copy scale add triad), a GAP kernel (bc bfs cc pr sssp tc), 'trace' with -in, or a comma mix of synthetic/STREAM kinds assigned to cores round-robin (e.g. seq,random)")
		inFile    = flag.String("in", "", "application memory trace for -workload trace (lines: 'R <addr> [work]', 'W <addr> [work]', 'B [0|1]')")
		cores     = flag.Int("cores", 1, "number of cores (1-8 in the paper)")
		channels  = flag.Int("channels", 1, "memory channels (the paper uses 1)")
		stores    = flag.Float64("stores", 0, "store fraction for synthetic workloads (0..1)")
		policy    = flag.String("policy", "", "page policy: open or closed (default: open; GAP kernels default closed, tc open)")
		mapping   = flag.String("map", "def", "address mapping: def (Fig 5a), int (cache-line interleaved, Fig 5b), or xor (permutation bank hashing)")
		stdName   = flag.String("standard", "", "DRAM standard preset (default ddr4-2400; see -list-standards)")
		listStds  = flag.Bool("list-standards", false, "print the registered DRAM standards with derived peak bandwidth, geometry and key timings, then exit")
		cycles    = flag.Int64("cycles", 500_000, "memory-cycle budget (0 = run workload to completion)")
		sample    = flag.Int64("sample", 0, "through-time sample interval in memory cycles (0 = off)")
		scale     = flag.Int("scale", 17, "Kronecker graph scale for GAP kernels")
		wq        = flag.Int("wq", 0, "write queue capacity override (paper wq128 variant)")
		qosSpec   = flag.String("qos", "", "multi-tenant QoS policy: comma-separated 'win=N' (regulation window, mem cycles), 'cap=SRC:N' (per-window column-command budget), 'rt=SRC' (real-time priority), 'aging=N' directives, e.g. 'win=2048,cap=1:16,rt=0'; splits the stacks per source")
		csvOut    = flag.String("csv", "", "write through-time samples as CSV to this file (needs -sample)")
		traceFile = flag.String("trace", "", "record the DRAM command trace to this file")
		jsonOut   = flag.Bool("json", false, "print the result as JSON (the dramstacksd wire format) instead of charts")
		sweepFile = flag.String("sweep", "", "run a sweep file (base spec + axis lists) instead of a single experiment; see doc/SERVICE.md for the schema")
		workers   = flag.Int("workers", 0, "sweep worker-pool size (default GOMAXPROCS)")
		keepGoing = flag.Bool("keep-going", false, "with -sweep, run remaining points after one fails instead of cancelling the rest")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *listStds {
		printStandards(os.Stdout)
		return
	}

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dramstacks:", err)
		os.Exit(1)
	}
	if *sweepFile != "" {
		err = runSweep(*sweepFile, *workers, *keepGoing, *csvOut, *jsonOut)
	} else {
		err = run(*wl, *inFile, *cores, *channels, *stores, *policy, *mapping, *stdName, *cycles, *sample, *scale, *wq, *qosSpec, *csvOut, *traceFile, *jsonOut)
	}
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dramstacks:", err)
		os.Exit(1)
	}
}

// startProfiles enables the requested pprof outputs and returns the
// cleanup that flushes them; the caller runs it before exiting on error
// too, so a profile of a failed run still comes out usable (see
// doc/PERF.md for the profiling walkthrough).
func startProfiles(cpuProf, memProf string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuProf != "" {
		cpuFile, err = os.Create(cpuProf)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memProf == "" {
			return
		}
		f, err := os.Create(memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dramstacks:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dramstacks:", err)
		}
	}, nil
}

// runSweep expands a sweep file and runs every point across the pool,
// streaming per-point progress to stderr and the aggregate to stdout.
func runSweep(sweepFile string, workers int, keepGoing bool, csvOut string, jsonOut bool) error {
	data, err := os.ReadFile(sweepFile)
	if err != nil {
		return err
	}
	sw, err := exp.ParseSweep(data)
	if err != nil {
		return err
	}
	opt := exp.SweepOptions{
		Workers:   workers,
		KeepGoing: keepGoing,
		OnPoint: func(pr exp.PointResult, done, total int) {
			status := "ok"
			switch {
			case pr.Err != nil:
				status = "error: " + pr.Err.Error()
			case pr.Res != nil && pr.Res.Cancelled:
				status = "cancelled (partial)"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s\n", done, total, pr.Point.Label(), status)
		},
	}
	res, err := exp.RunSweep(context.Background(), sw, opt)
	if err != nil {
		return err
	}
	switch {
	case jsonOut:
		doc, err := res.ToJSON()
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	case csvOut != "":
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d sweep points to %s\n", len(res.Points), csvOut)
		return nil
	default:
		return res.WriteTable(os.Stdout)
	}
}

func run(wl, inFile string, cores, channels int, stores float64, policy, mapping, stdName string,
	cycles, sample int64, scale, wq int, qosSpec, csvOut, traceFile string, jsonOut bool) error {
	if csvOut != "" && sample <= 0 {
		return fmt.Errorf("-csv needs -sample > 0: without sampling no through-time samples are recorded and the CSV would hold only a header")
	}

	var rec trace.Recorder
	var hook func(cycle int64, cmd dram.Command)
	if traceFile != "" {
		hook = rec.Hook()
	}

	if wl == "trace" {
		std, err := standard.Lookup(stdName)
		if err != nil {
			return err
		}
		res, err := runTrace(inFile, cores, channels, policy, mapping, std, cycles, sample, qosSpec, hook)
		if err != nil {
			return err
		}
		return report(&simResult{res, fmt.Sprintf("trace %dc", cores), rec.Events()}, nil, std, csvOut, traceFile, jsonOut)
	}

	spec := exp.Spec{
		Workload: wl, Cores: cores, Channels: channels, Stores: stores,
		Policy: policy, Mapping: mapping, Standard: stdName,
		Budget: cycles, Sample: sample,
		Scale: scale, WriteQueue: wq, QoS: qosSpec,
	}
	if cycles == 0 {
		spec.Budget = exp.BudgetUnlimited
	}
	res, err := exp.RunSpec(context.Background(), spec, exp.RunOptions{Trace: hook})
	if err != nil {
		return err
	}
	std, err := exp.SpecStandard(spec)
	if err != nil {
		return err
	}
	return report(&simResult{res, spec.Label(), rec.Events()}, &spec, std, csvOut, traceFile, jsonOut)
}

// runTrace replays an application memory trace on every core (the one
// workload kind that needs a local file and therefore stays outside the
// shared spec layer).
func runTrace(inFile string, cores, channels int, policy, mapping string, std standard.Standard,
	cycles, sample int64, qosSpec string, hook func(int64, dram.Command)) (*sim.Result, error) {
	m := sim.MapDefault
	switch mapping {
	case "def":
	case "int":
		m = sim.MapInterleaved
	case "xor":
		m = sim.MapXOR
	default:
		return nil, fmt.Errorf("unknown mapping %q (want def, int or xor)", mapping)
	}
	if inFile == "" {
		return nil, fmt.Errorf("-workload trace needs -in <file>")
	}
	q, err := qos.Parse(qosSpec, cores)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(inFile)
	if err != nil {
		return nil, err
	}
	base, err := workload.ParseTrace(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	// Each core replays the trace from its own copy.
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		p := *base
		p.Loop = true
		sources = append(sources, &p)
	}
	sys, err := sim.New(std,
		sim.WithSources(sources...),
		sim.WithChannels(channels),
		sim.WithMapping(m),
		sim.WithCtrl(func(c *memctrl.Config) {
			if policy == "closed" {
				c.Policy = memctrl.ClosedPage
			}
		}),
		sim.WithMaxMemCycles(cycles),
		sim.WithSampleInterval(sample),
		sim.WithQoS(q),
		sim.WithTrace(hook))
	if err != nil {
		return nil, err
	}
	r := sys.Run()
	if len(r.Violations) > 0 {
		return nil, fmt.Errorf("DRAM timing violations: %v", r.Violations[0])
	}
	return r, nil
}

// printStandards renders the registry as a table: one row per preset
// with its derived peak bandwidth, clock, geometry and key timings.
func printStandards(w io.Writer) {
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tFAMILY\tCLOCK\tPEAK/CHANNEL\tGEOMETRY\tPAGE\tKEY TIMINGS\tDESCRIPTION")
	for _, std := range standard.All() {
		g, t := std.Geometry, std.Timing
		geom := fmt.Sprintf("%dr x %dbg x %db, %dB bus x%d", g.Ranks, g.Groups, g.Banks, g.BusBytes, g.DataRate)
		if std.SubChannels > 1 {
			geom = fmt.Sprintf("%dpc x %s", std.SubChannels, geom)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d MHz\t%.1f GB/s\t%s\t%s\tCL%d RCD%d RP%d RAS%d FAW%d RFC%d\t%s\n",
			std.Name, std.Family, g.ClockMHz, std.PeakBandwidthGBs(), geom,
			pageSize(g.RowBytes()), t.CL, t.RCD, t.RP, t.RAS, t.FAW, t.RFC,
			std.Description)
	}
	tw.Flush()
}

func pageSize(bytes int) string {
	if bytes >= 1024 && bytes%1024 == 0 {
		return fmt.Sprintf("%d KB", bytes/1024)
	}
	return fmt.Sprintf("%d B", bytes)
}

type simResult struct {
	r      *sim.Result
	label  string
	events []trace.Event
}

func report(res *simResult, spec *exp.Spec, std standard.Standard, csvOut, traceFile string, jsonOut bool) error {
	r := res.r
	geo := r.Cfg.Geom

	// Side files go first so the messages below can report them; with
	// -json the notes move to stderr to keep stdout a single document.
	notes := os.Stdout
	if jsonOut {
		notes = os.Stderr
	}
	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		if err := viz.SamplesCSV(f, r.BWSamples, geo); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(notes, "wrote %d through-time samples to %s\n", len(r.BWSamples), csvOut)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := trace.Write(f, res.events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(notes, "wrote %d DRAM commands to %s (rebuild the stack offline with cmd/tracestack)\n",
			len(res.events), traceFile)
	}

	if jsonOut {
		var doc []byte
		var err error
		if spec != nil {
			doc, err = exp.ResultJSON(*spec, r)
		} else {
			doc, err = exp.ResultJSONRow(res.label, r)
		}
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(doc)
		return err
	}

	fmt.Printf("simulated %d memory cycles (%.3f ms) on %s, %d instructions retired, %d device(s)\n",
		r.MemCycles, r.RuntimeMS(), std.Name, r.TotalRetired(), r.Channels)
	fmt.Printf("page hit rate %.1f%%, %d refreshes, %d reads / %d writes to DRAM\n",
		100*r.CtrlStats.PageHitRate(), r.CtrlStats.Refreshes,
		r.CtrlStats.IssuedReads, r.CtrlStats.IssuedWrites)
	// The IDD-derived energy model is calibrated for DDR4 devices only;
	// other families would get numbers with DDR4 currents behind them.
	if std.Family == "DDR4" {
		if rep, err := power.DDR4().Estimate(r.DevStats, r.MemCycles, geo); err == nil {
			fmt.Println(rep)
		}
	}
	if h := r.LatHist; h.Count() > 0 {
		fmt.Printf("read latency: mean %.1f ns, p50 <= %.1f, p95 <= %.1f, p99 <= %.1f, max %.1f\n",
			geo.CyclesToNS(1)*h.Mean(),
			geo.CyclesToNS(h.Quantile(0.50)), geo.CyclesToNS(h.Quantile(0.95)),
			geo.CyclesToNS(h.Quantile(0.99)), geo.CyclesToNS(h.Max()))
	}
	fmt.Println()

	viz.BandwidthChart(os.Stdout, []string{res.label}, []stacks.BandwidthStack{r.BW}, geo)
	if r.Channels > 1 {
		fmt.Printf("(per-channel average; total across %d channels: %.2f of %.1f GB/s)\n",
			r.Channels, r.AchievedGBps(), r.PeakGBps())
	}
	fmt.Println()
	viz.LatencyChart(os.Stdout, []string{res.label}, []stacks.LatencyStack{r.Lat}, geo)
	fmt.Println()
	var agg cyclestack.Stack
	labels := []string{}
	var perCore []cyclestack.Stack
	for i, cs := range r.CycleStacks {
		agg.Add(cs)
		perCore = append(perCore, cs)
		labels = append(labels, fmt.Sprintf("core %d", i))
	}
	viz.CycleChart(os.Stdout, append(labels, "all cores"), append(perCore, agg))

	if advice := stacks.Diagnose(r.BW, r.Lat, geo); len(advice) > 0 {
		fmt.Println("\ndiagnosis (paper §IV/§V interpretation):")
		for _, a := range advice {
			fmt.Printf("  %s\n", a)
		}
	}
	return nil
}
