// Command simbench is the repository's reproducible benchmark harness:
// it times a fixed set of synthetic and GAP simulations and writes the
// results as JSON (see doc/PERF.md). CI runs it on every pull request
// and gates on the geomean simulation throughput against the committed
// baseline (BENCH_9.json) via cmd/benchdiff.
//
// Each case is timed in both the fast-forwarding production loop and,
// for the low-utilisation cases, the reference per-cycle loop
// (-tags=slowtick semantics via sim.SlowTick), so the speedup the
// fast-forward path delivers is itself a tracked number.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dramstacks/internal/benchfmt"
	"dramstacks/internal/cpu"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/exp"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/qos"
	"dramstacks/internal/sim"
	"dramstacks/internal/workload"
)

// benchCase is one workload to measure. run executes a single
// simulation and returns how many memory cycles it covered. speedup
// cases are additionally measured with the reference per-cycle loop to
// report the event-wheel speedup — the low-utilisation cases where
// fast-forwarding dominates, and the saturated/mixed cases where it
// must at least not hurt.
type benchCase struct {
	name    string
	speedup bool
	run     func() (int64, error)
}

func lowUtilSources(cores, workPerOp, branchEvery int, mispredict float64) []cpu.Source {
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		sources = append(sources, workload.MustSynthetic(workload.SyntheticConfig{
			Pattern:        workload.Sequential,
			WorkPerOp:      workPerOp,
			FootprintBytes: 1 << 14, // cache resident: almost no DRAM traffic
			StrideBytes:    64,
			BranchEvery:    branchEvery,
			MispredictRate: mispredict,
			BaseAddr:       uint64(i) * (256 << 20),
			Seed:           int64(i + 1),
		}))
	}
	return sources
}

func runLowUtil(cores, workPerOp, branchEvery int, mispredict float64, budget int64) (int64, error) {
	sys, err := sim.New(standard.Default(),
		sim.WithSources(lowUtilSources(cores, workPerOp, branchEvery, mispredict)...),
		sim.WithMaxMemCycles(budget),
		sim.WithPrewarmOps(1<<12))
	if err != nil {
		return 0, err
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		return 0, fmt.Errorf("timing violation: %v", res.Violations[0])
	}
	return res.MemCycles, nil
}

// runStandard times a DRAM-bound sequential run on a non-default
// standard from the registry: each preset exercises its own timing set
// (and, for HBM2, the pseudo-channel device fan-out) in the hot path.
func runStandard(name string, cores int, budget int64) (int64, error) {
	sys, err := sim.New(standard.MustLookup(name),
		sim.WithSources(sim.SyntheticSources(workload.Sequential, cores, 0.2)...),
		sim.WithMaxMemCycles(budget),
		sim.WithPrewarmOps(1<<20))
	if err != nil {
		return 0, err
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		return 0, fmt.Errorf("timing violation: %v", res.Violations[0])
	}
	return res.MemCycles, nil
}

func runSynth(spec exp.SynthSpec) (int64, error) {
	res, err := exp.RunSynth(spec)
	if err != nil {
		return 0, err
	}
	return res.MemCycles, nil
}

// runMixed simulates a heterogeneous multicore: half the cores run a
// compute-heavy stream, half a branchy mispredicting one, and all of
// them touch a DRAM-sized footprint so the channel sees real traffic.
// The per-core event scheduling has to juggle cores whose next events
// land on different cycles — the adversarial case for the sprint loop.
func runMixed(cores int, budget int64) (int64, error) {
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		cfg := workload.SyntheticConfig{
			Pattern:        workload.Sequential,
			WorkPerOp:      60,
			FootprintBytes: 64 << 20, // larger than LLC: real DRAM traffic
			StrideBytes:    64,
			BaseAddr:       uint64(i) * (256 << 20),
			Seed:           int64(i + 1),
		}
		if i%2 == 1 {
			cfg.WorkPerOp = 0
			cfg.BranchEvery = 3
			cfg.MispredictRate = 0.5
		}
		sources = append(sources, workload.MustSynthetic(cfg))
	}
	sys, err := sim.New(standard.Default(),
		sim.WithSources(sources...),
		sim.WithMaxMemCycles(budget),
		sim.WithPrewarmOps(1<<12))
	if err != nil {
		return 0, err
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		return 0, fmt.Errorf("timing violation: %v", res.Violations[0])
	}
	return res.MemCycles, nil
}

// runQoS times the multi-tenant QoS controller: core 0 runs the
// latency-critical pointer chase with real-time priority, the rest run
// bandwidth hogs — regulated (per-window budgets) or tracking-only —
// exercising the budget bookkeeping, the held-read release path and the
// priority ladder in the scheduler hot path, plus the per-source stack
// accounting either way.
func runQoS(cores int, regulated bool, budget int64) (int64, error) {
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		cfg := workload.DefaultBWHog()
		if i == 0 {
			cfg = workload.DefaultLatCrit()
		}
		cfg.BaseAddr = uint64(i) * (256 << 20)
		cfg.Seed = int64(i + 1)
		sources = append(sources, workload.MustSynthetic(cfg))
	}
	q := qos.Config{
		Sources: cores,
		Budget:  make([]int, cores),
		RT:      make([]bool, cores),
	}
	if regulated {
		q.Window = 2048
		q.RT[0] = true
		for i := 1; i < cores; i++ {
			q.Budget[i] = 16
		}
	}
	sys, err := sim.New(standard.Default(),
		sim.WithSources(sources...),
		sim.WithQoS(q),
		sim.WithMaxMemCycles(budget),
		sim.WithPrewarmOps(1<<20))
	if err != nil {
		return 0, err
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		return 0, fmt.Errorf("timing violation: %v", res.Violations[0])
	}
	return res.MemCycles, nil
}

func cases() []benchCase {
	return []benchCase{
		// Low-utilisation single-core workloads: the fast-forward
		// target. Cache-resident, so the memory system idles and the
		// fast loop skips almost everything.
		{"lowutil/compute-1c", true, func() (int64, error) {
			return runLowUtil(1, 60, 0, 0, 400_000)
		}},
		{"lowutil/branch-1c", true, func() (int64, error) {
			return runLowUtil(1, 0, 3, 0.5, 400_000)
		}},
		{"lowutil/compute-4c", true, func() (int64, error) {
			return runLowUtil(4, 60, 0, 0, 200_000)
		}},
		// Paper synthetic patterns (Fig. 2 corners): DRAM-bound, little
		// to skip — these track the cost of the per-cycle hot path. The
		// saturated 8-core cases are measured in both modes so the
		// event-wheel's high-utilisation speedup is itself gated.
		{"synth/seq-1c", false, func() (int64, error) {
			return runSynth(exp.SynthSpec{Pattern: workload.Sequential, Cores: 1,
				Budget: 200_000, Prewarm: 1 << 20})
		}},
		{"synth/seq-8c", true, func() (int64, error) {
			return runSynth(exp.SynthSpec{Pattern: workload.Sequential, Cores: 8,
				Budget: 100_000, Prewarm: 1 << 20})
		}},
		{"synth/random-1c", true, func() (int64, error) {
			return runSynth(exp.SynthSpec{Pattern: workload.Random, Cores: 1,
				Budget: 200_000, Prewarm: 1 << 20})
		}},
		{"synth/random-8c", true, func() (int64, error) {
			return runSynth(exp.SynthSpec{Pattern: workload.Random, Cores: 8,
				Budget: 100_000, Prewarm: 1 << 20})
		}},
		// Mixed compute + branch multicore with DRAM traffic: cores with
		// unaligned next-event cycles, the adversarial case for the
		// per-core sprint scheduling.
		{"mixed/compute-branch-4c", true, func() (int64, error) {
			return runMixed(4, 100_000)
		}},
		// Multi-tenant QoS: the regulated case pays for budget metering,
		// the held-read queue walk and the priority ladder; the
		// tracking-only case isolates the per-source attribution cost.
		// Both are measured in the reference loop too, so QoS overhead in
		// either loop shows up in the gate.
		{"qos/regulated-4c", true, func() (int64, error) {
			return runQoS(4, true, 100_000)
		}},
		{"qos/track-4c", true, func() (int64, error) {
			return runQoS(4, false, 100_000)
		}},
		// Non-default DRAM standards: one DRAM-bound scenario per
		// registry preset beyond the DDR4-2400 baseline, so a timing
		// or topology change in any preset shows up in the gate.
		{"std/ddr5-seq-4c", false, func() (int64, error) {
			return runStandard("ddr5-4800", 4, 100_000)
		}},
		{"std/lpddr5-seq-2c", false, func() (int64, error) {
			return runStandard("lpddr5-6400", 2, 100_000)
		}},
		{"std/hbm2-seq-4c", false, func() (int64, error) {
			return runStandard("hbm2-2000", 4, 100_000)
		}},
		// GAP kernels at reduced scale: realistic phase behavior.
		{"gap/bfs-4c", false, func() (int64, error) {
			spec := exp.DefaultGap("bfs", 4)
			spec.Scale = 15
			spec.Budget = 200_000
			res, err := exp.RunGap(spec)
			if err != nil {
				return 0, err
			}
			return res.MemCycles, nil
		}},
		{"gap/tc-1c", false, func() (int64, error) {
			spec := exp.DefaultGap("tc", 1)
			spec.Scale = 15
			spec.Policy = memctrl.ClosedPage
			spec.Budget = 200_000
			res, err := exp.RunGap(spec)
			if err != nil {
				return 0, err
			}
			return res.MemCycles, nil
		}},
	}
}

// measure times iters back-to-back runs of c once and returns the
// aggregate view of that measurement.
func measure(c benchCase, iters int) (benchfmt.Benchmark, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var cycles int64
	for i := 0; i < iters; i++ {
		mc, err := c.run()
		if err != nil {
			return benchfmt.Benchmark{}, fmt.Errorf("%s: %w", c.name, err)
		}
		cycles += mc
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	if dur <= 0 {
		dur = time.Nanosecond
	}
	return benchfmt.Benchmark{
		Name:         c.name,
		Iters:        iters,
		NsPerOp:      dur.Nanoseconds() / int64(iters),
		MemCycles:    cycles / int64(iters),
		CyclesPerSec: float64(cycles) / dur.Seconds(),
		AllocsPerOp:  (after.Mallocs - before.Mallocs) / uint64(iters),
		BytesPerOp:   (after.TotalAlloc - before.TotalAlloc) / uint64(iters),
	}, nil
}

// best runs count measurements and keeps the highest-throughput one
// (minimum wall time), the conventional way to suppress scheduler noise
// in regression gates.
func best(c benchCase, count, iters int, verbose bool) (benchfmt.Benchmark, error) {
	var b benchfmt.Benchmark
	for i := 0; i < count; i++ {
		m, err := measure(c, iters)
		if err != nil {
			return benchfmt.Benchmark{}, err
		}
		if verbose {
			log.Printf("  run %d/%d: %s %.3g cycles/sec", i+1, count, c.name, m.CyclesPerSec)
		}
		if i == 0 || m.CyclesPerSec > b.CyclesPerSec {
			b = m
		}
	}
	return b, nil
}

// parseBenchtime accepts go-test style "3x" as well as a bare count.
func parseBenchtime(s string) (int, error) {
	s = strings.TrimSuffix(s, "x")
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("invalid -benchtime %q (want e.g. 1x)", s)
	}
	return n, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("simbench: ")
	var (
		count     = flag.Int("count", 1, "measurements per case (best is kept)")
		benchtime = flag.String("benchtime", "1x", "iterations per measurement, go-test style (e.g. 3x)")
		pattern   = flag.String("run", "", "regexp selecting case names (default all)")
		out       = flag.String("out", "", "output JSON file (default stdout)")
		verbose   = flag.Bool("v", false, "log every measurement")
	)
	flag.Parse()

	iters, err := parseBenchtime(*benchtime)
	if err != nil {
		log.Fatal(err)
	}
	var re *regexp.Regexp
	if *pattern != "" {
		if re, err = regexp.Compile(*pattern); err != nil {
			log.Fatalf("invalid -run: %v", err)
		}
	}

	// In a -tags=slowtick build the production loop IS the reference
	// loop: a fast/slow comparison would measure the slow loop against
	// itself and record a meaningless speedup of ~1.0. Measure the modes
	// anyway (the gate still wants both rows) but omit speedup_vs_slow.
	slowBuild := sim.SlowTick

	file := benchfmt.File{
		Version:   benchfmt.Version,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Count:     *count,
		Benchtime: iters,
	}
	for _, c := range cases() {
		if re != nil && !re.MatchString(c.name) {
			continue
		}
		// Untimed warmup run: populates the exp graph cache and the
		// runtime's lazily grown structures.
		if _, err := c.run(); err != nil {
			log.Fatalf("%s: warmup: %v", c.name, err)
		}

		fast, err := best(c, *count, iters, *verbose)
		if err != nil {
			log.Fatal(err)
		}
		fast.Mode = "fast"
		if c.speedup {
			sim.SlowTick = true
			slow, err := best(c, *count, iters, *verbose)
			sim.SlowTick = slowBuild
			if err != nil {
				log.Fatal(err)
			}
			slow.Mode = "slow"
			if !slowBuild {
				fast.SpeedupVsSlow = fast.CyclesPerSec / slow.CyclesPerSec
			}
			file.Benchmarks = append(file.Benchmarks, fast, slow)
			if slowBuild {
				log.Printf("%-20s %12.4g cycles/sec  %8.2f ms/op  (slowtick build: no speedup)",
					c.name, fast.CyclesPerSec, float64(fast.NsPerOp)/1e6)
			} else {
				log.Printf("%-20s %12.4g cycles/sec  %8.2f ms/op  speedup %.2fx",
					c.name, fast.CyclesPerSec, float64(fast.NsPerOp)/1e6, fast.SpeedupVsSlow)
			}
		} else {
			file.Benchmarks = append(file.Benchmarks, fast)
			log.Printf("%-20s %12.4g cycles/sec  %8.2f ms/op",
				c.name, fast.CyclesPerSec, float64(fast.NsPerOp)/1e6)
		}
	}

	var fastRates []float64
	for _, b := range file.Benchmarks {
		if b.Mode == "fast" {
			fastRates = append(fastRates, b.CyclesPerSec)
		}
	}
	file.GeomeanCyclesPerSec = benchfmt.Geomean(fastRates)
	log.Printf("geomean (fast) %.4g cycles/sec over %d cases",
		file.GeomeanCyclesPerSec, len(fastRates))

	enc, err := benchfmt.Encode(file)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
