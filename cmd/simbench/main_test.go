package main

import (
	"math"
	"testing"

	"dramstacks/internal/benchfmt"
)

func TestParseBenchtime(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"1x", 1, true},
		{"3x", 3, true},
		{"10", 10, true}, // bare count accepted
		{"0x", 0, false},
		{"-1x", 0, false},
		{"", 0, false},
		{"3s", 0, false}, // durations are not supported
	} {
		got, err := parseBenchtime(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("parseBenchtime(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseBenchtime(%q) = %d, want error", tc.in, got)
		}
	}
}

// TestMeasureCountsCyclesAndIters checks the aggregate arithmetic with
// a deterministic fake case: no simulator, just a fixed cycle count.
func TestMeasureCountsCyclesAndIters(t *testing.T) {
	calls := 0
	c := benchCase{name: "fake", run: func() (int64, error) {
		calls++
		return 1000, nil
	}}
	b, err := measure(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || b.Iters != 4 || b.MemCycles != 1000 {
		t.Fatalf("calls=%d b=%+v, want 4 iters of 1000 cycles each", calls, b)
	}
	if b.CyclesPerSec <= 0 || math.IsInf(b.CyclesPerSec, 0) {
		t.Fatalf("CyclesPerSec = %v, want finite positive", b.CyclesPerSec)
	}
}

func TestMeasurePropagatesCaseError(t *testing.T) {
	c := benchCase{name: "boom", run: func() (int64, error) {
		return 0, errTest
	}}
	if _, err := measure(c, 1); err == nil {
		t.Fatal("measure swallowed the case error")
	}
}

var errTest = errFake("fake failure")

type errFake string

func (e errFake) Error() string { return string(e) }

// TestBenchOutputRoundTripsThroughBenchdiff is the cross-tool contract:
// a file produced the way simbench produces it must load and
// self-compare cleanly through the benchfmt logic cmd/benchdiff gates
// with, at geomean exactly 1.0.
func TestBenchOutputRoundTripsThroughBenchdiff(t *testing.T) {
	fake := []benchCase{
		{name: "fake/a", run: func() (int64, error) { return 1000, nil }},
		{name: "fake/b", run: func() (int64, error) { return 2000, nil }},
	}
	file := benchfmt.File{Version: benchfmt.Version, Count: 1, Benchtime: 2}
	var rates []float64
	for _, c := range fake {
		b, err := best(c, 1, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		b.Mode = "fast"
		file.Benchmarks = append(file.Benchmarks, b)
		rates = append(rates, b.CyclesPerSec)
	}
	file.GeomeanCyclesPerSec = benchfmt.Geomean(rates)

	data, err := benchfmt.Encode(file)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := benchfmt.Decode(data)
	if err != nil {
		t.Fatalf("benchdiff-side decode rejected simbench output: %v", err)
	}
	cmp, err := benchfmt.Compare(loaded, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Matched != 2 || math.Abs(cmp.Geomean-1) > 1e-12 {
		t.Fatalf("self-comparison: matched %d geomean %v, want 2 and 1.0", cmp.Matched, cmp.Geomean)
	}
}

// TestRealCaseProducesComparableOutput runs the cheapest real benchmark
// case once to prove the measured path emits gate-able numbers.
func TestRealCaseProducesComparableOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation; skipped with -short")
	}
	var target *benchCase
	for _, c := range cases() {
		if c.name == "lowutil/compute-1c" {
			cc := c
			target = &cc
			break
		}
	}
	if target == nil {
		t.Fatal("case lowutil/compute-1c disappeared from the suite")
	}
	b, err := measure(*target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.CyclesPerSec <= 0 || b.MemCycles <= 0 {
		t.Fatalf("measured %+v, want positive throughput", b)
	}
}
