// Package client is a Go client for the dramstacksd /v1 API
// (doc/SERVICE.md). It wraps the raw HTTP endpoints with
// context-aware retries — exponential backoff with jitter on 429,
// 5xx and connection errors — and resumable NDJSON result streaming,
// so a sweep consumer rides through a service restart without losing
// or double-counting lines.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"dramstacks/internal/dram/standard"
	"dramstacks/internal/exp"
	"dramstacks/internal/service"
)

// RetryPolicy shapes the client's backoff on retryable failures
// (connection errors, 429 Too Many Requests, and 5xx responses).
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per request (default 8).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms); each retry
	// doubles it up to MaxDelay (default 5s), then equal-jitters: the
	// actual sleep is uniform in [delay/2, delay]. A Retry-After header
	// overrides the computed delay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// delay computes the sleep before retry attempt (1-based, i.e. after
// the attempt-th failure).
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = p.MaxDelay
	}
	// Equal jitter: half deterministic, half uniform, so synchronized
	// clients (a sweep fan-out hitting one restarting server) spread out.
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// APIError is a non-2xx response decoded from the service's unified
// error envelope {"error": {"code": ..., "message": ...}}.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // envelope code, e.g. "invalid_spec", "queue_full"
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dramstacksd: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// Options configures New.
type Options struct {
	// HTTPClient overrides http.DefaultClient (tests, custom transports).
	HTTPClient *http.Client
	// Retry shapes the backoff; the zero value means the defaults
	// documented on RetryPolicy.
	Retry RetryPolicy
}

// Client talks to one dramstacksd instance.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	rng   *rand.Rand
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base:  baseURL,
		http:  hc,
		retry: opts.Retry.withDefaults(),
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// retryable reports whether a response status warrants another try.
// 429 is backpressure (the queue is full), 5xx is a server-side fault;
// both are expected to clear. 4xx other than 429 is the caller's bug
// and retrying would just repeat it.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// do issues one request with retries. body is re-sent from scratch on
// every attempt (it is a byte slice, not a stream). On 2xx it returns
// the response body; otherwise the decoded *APIError of the final
// attempt, or the final connection error.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		data, retryAfter, err := c.once(ctx, method, path, body)
		if err == nil {
			return data, nil
		}
		lastErr = err
		var apiErr *APIError
		if errors.As(err, &apiErr) && !retryable(apiErr.Status) {
			return nil, err
		}
		if attempt >= c.retry.MaxAttempts {
			return nil, fmt.Errorf("after %d attempts: %w", attempt, lastErr)
		}
		d := c.retry.delay(attempt, c.rng)
		if retryAfter > d {
			d = retryAfter
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// once issues a single attempt, returning the body on 2xx, and any
// Retry-After hint alongside the error otherwise.
func (c *Client) once(ctx context.Context, method, path string, body []byte) ([]byte, time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, err // connection-level: always retryable
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return data, 0, nil
	}
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return nil, retryAfter, decodeError(resp.StatusCode, data)
}

func decodeError(status int, body []byte) error {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		return &APIError{Status: status, Code: "http_error",
			Message: fmt.Sprintf("unexpected response: %s", bytes.TrimSpace(body))}
	}
	return &APIError{Status: status, Code: env.Error.Code, Message: env.Error.Message}
}

// SubmitJob submits one experiment spec (POST /v1/jobs). Queue-full
// 429s are retried with backoff; the returned response may be a cache
// hit (Cached) or coalesced onto an identical in-flight job (Deduped).
func (c *Client) SubmitJob(ctx context.Context, spec exp.Spec) (service.SubmitResponse, error) {
	body, err := spec.Canonical()
	if err != nil {
		return service.SubmitResponse{}, err
	}
	return postJSON[service.SubmitResponse](c, ctx, "/v1/jobs", body)
}

// Job fetches a job's status (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (service.StatusJSON, error) {
	return getJSON[service.StatusJSON](c, ctx, "/v1/jobs/"+url.PathEscape(id))
}

// Jobs lists every job the server knows, oldest first (GET /v1/jobs).
func (c *Client) Jobs(ctx context.Context) ([]service.StatusJSON, error) {
	return getJSON[[]service.StatusJSON](c, ctx, "/v1/jobs")
}

// WaitJob polls until the job reaches a terminal state.
func (c *Client) WaitJob(ctx context.Context, id string) (service.StatusJSON, error) {
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Stacks fetches a done job's result document verbatim
// (GET /v1/jobs/{id}/stacks) — the bytes are exactly what the
// deterministic simulator produced for the spec.
func (c *Client) Stacks(ctx context.Context, id string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/stacks", nil)
}

// CancelJob cancels a queued or running job (DELETE /v1/jobs/{id}).
func (c *Client) CancelJob(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil)
	return err
}

// Standards fetches the DRAM standard registry (GET /v1/standards):
// every preset a spec's "standard" field accepts, with its derived
// parameters, sorted by name.
func (c *Client) Standards(ctx context.Context) ([]standard.Info, error) {
	return getJSON[[]standard.Info](c, ctx, "/v1/standards")
}

// Health probes the liveness endpoint (GET /healthz). It returns nil
// when the service answers, so a deploy script or readiness gate can
// reuse the client's backoff instead of hand-rolling a poll loop.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	return err
}

// Samples streams a job's through-time samples as they are produced
// (GET /v1/jobs/{id}/samples), calling fn once per sample in order,
// and returns the number of samples delivered. The stream follows the
// run live until the job reaches a terminal state. Like SweepResults,
// a dropped connection — including a service restart — reconnects with
// ?from=<samples delivered>, so fn never sees a sample twice and never
// misses one. The job must have been submitted with "sample" > 0.
func (c *Client) Samples(ctx context.Context, id string, fn func(exp.SampleJSON) error) (int, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/samples"
	terminal := func() (bool, error) {
		st, err := c.Job(ctx, id)
		if err != nil {
			return false, err
		}
		return st.State.Terminal(), nil
	}
	return followStream(c, ctx, path, terminal, fn)
}

// Sweeps lists every sweep, oldest first (GET /v1/sweeps).
func (c *Client) Sweeps(ctx context.Context) ([]service.SweepStatusJSON, error) {
	return getJSON[[]service.SweepStatusJSON](c, ctx, "/v1/sweeps")
}

// SubmitSweep submits a raw sweep document (POST /v1/sweeps).
func (c *Client) SubmitSweep(ctx context.Context, doc []byte) (service.SweepStatusJSON, error) {
	return postJSON[service.SweepStatusJSON](c, ctx, "/v1/sweeps", doc)
}

// Sweep fetches a sweep's status (GET /v1/sweeps/{id}).
func (c *Client) Sweep(ctx context.Context, id string) (service.SweepStatusJSON, error) {
	return getJSON[service.SweepStatusJSON](c, ctx, "/v1/sweeps/"+url.PathEscape(id))
}

// CancelSweep cancels every non-terminal point (DELETE /v1/sweeps/{id}).
func (c *Client) CancelSweep(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodDelete, "/v1/sweeps/"+url.PathEscape(id), nil)
	return err
}

// SweepResults streams a sweep's NDJSON result lines
// (GET /v1/sweeps/{id}/results), calling fn once per line in point
// order, and returns the total number of lines delivered. The stream
// follows the sweep live until every point is terminal. If the
// connection drops mid-stream — including a service restart — it
// reconnects with ?from=<lines delivered so far>, so fn never sees a
// line twice and never misses one.
func (c *Client) SweepResults(ctx context.Context, id string, fn func(service.SweepResultLine) error) (int, error) {
	path := "/v1/sweeps/" + url.PathEscape(id) + "/results"
	terminal := func() (bool, error) {
		st, err := c.Sweep(ctx, id)
		if err != nil {
			return false, err
		}
		return st.State != "running", nil
	}
	return followStream(c, ctx, path, terminal, fn)
}

// followStream consumes the resumable NDJSON endpoint at path, calling
// fn once per decoded line, until the watched entity is terminal. A
// dropped connection reconnects with ?from=<lines delivered>. A clean
// EOF is trusted only once terminal() confirms it: a restarting server
// can end a chunked response cleanly.
func followStream[T any](c *Client, ctx context.Context, path string, terminal func() (bool, error), fn func(T) error) (int, error) {
	delivered := 0
	for attempt := 1; ; {
		n, err := streamLines(c, ctx, path, delivered, fn)
		delivered += n
		if err == nil {
			done, terr := terminal()
			if terr != nil {
				return delivered, terr
			}
			if done {
				return delivered, nil
			}
			err = errors.New("stream ended while the run was still live")
		}
		if ctx.Err() != nil {
			return delivered, ctx.Err()
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !retryable(apiErr.Status) {
			return delivered, err
		}
		if n > 0 {
			attempt = 1 // progress resets the backoff clock
		}
		if attempt >= c.retry.MaxAttempts {
			return delivered, fmt.Errorf("after %d attempts: %w", attempt, err)
		}
		d := c.retry.delay(attempt, c.rng)
		attempt++
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return delivered, ctx.Err()
		}
	}
}

// streamLines reads one connection's worth of NDJSON lines starting at
// offset from, returning how many lines it delivered.
func streamLines[T any](c *Client, ctx context.Context, path string, from int, fn func(T) error) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+path+"?from="+strconv.Itoa(from), nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return 0, decodeError(resp.StatusCode, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	n := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var out T
		if err := json.Unmarshal(line, &out); err != nil {
			return n, fmt.Errorf("bad stream line: %w", err)
		}
		if err := fn(out); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

func postJSON[T any](c *Client, ctx context.Context, path string, body []byte) (T, error) {
	var out T
	data, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return out, err
	}
	return out, json.Unmarshal(data, &out)
}

func getJSON[T any](c *Client, ctx context.Context, path string) (T, error) {
	var out T
	data, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return out, err
	}
	return out, json.Unmarshal(data, &out)
}
