package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dramstacks/internal/dram/standard"
	"dramstacks/internal/exp"
	"dramstacks/internal/service"
)

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testSpec(t *testing.T) exp.Spec {
	t.Helper()
	spec, err := exp.DecodeSpec([]byte(`{"workload":"seq","cores":1,"cycles":20000}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec.Normalized()
}

// startService runs a real dramstacksd over httptest.
func startService(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestSubmitWaitStacks(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 2})
	c := New(ts.URL, Options{Retry: fastRetry()})
	ctx := context.Background()

	sub, err := c.SubmitJob(ctx, testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitJob(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	result, err := c.Stacks(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if h, err := exp.ResultSpecHash(result); err != nil || h != sub.SpecHash {
		t.Fatalf("result hash %q err %v, want %q", h, err, sub.SpecHash)
	}
}

func TestStandards(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 1})
	c := New(ts.URL, Options{Retry: fastRetry()})

	infos, err := c.Standards(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := standard.Names()
	if len(infos) != len(want) {
		t.Fatalf("%d standards, registry has %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.Name != want[i] {
			t.Errorf("standards[%d] = %q, want %q", i, info.Name, want[i])
		}
		if info.PeakGBs <= 0 {
			t.Errorf("%s peak = %g, want positive", info.Name, info.PeakGBs)
		}
	}
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"queue_full","message":"full"}}`)
			return
		}
		fmt.Fprint(w, `{"id":"job-000001","spec_hash":"h","state":"queued"}`)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{Retry: fastRetry()})
	sub, err := c.SubmitJob(context.Background(), testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "job-000001" || calls.Load() != 3 {
		t.Fatalf("sub=%+v calls=%d, want success on 3rd call", sub, calls.Load())
	}
}

func TestRetryOnConnectionError(t *testing.T) {
	// A listener that closes its first accepted connection without a
	// response, then serves normally.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"job-000002","spec_hash":"h","state":"queued"}`)
	})}
	var dropped atomic.Bool
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Close() // simulate a reset before any bytes
		dropped.Store(true)
		srv.Serve(ln)
	}()
	defer srv.Close()

	c := New("http://"+ln.Addr().String(), Options{Retry: fastRetry()})
	sub, err := c.SubmitJob(context.Background(), testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "job-000002" || !dropped.Load() {
		t.Fatalf("sub=%+v dropped=%v", sub, dropped.Load())
	}
}

func TestNoRetryOnInvalidSpec(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"invalid_spec","message":"no"}}`)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{Retry: fastRetry()})
	_, err := c.SubmitJob(context.Background(), testSpec(t))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "invalid_spec" {
		t.Fatalf("err = %v, want invalid_spec APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want exactly 1 (4xx is not retryable)", calls.Load())
	}
}

func TestSweepResultsEndToEnd(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 2})
	c := New(ts.URL, Options{Retry: fastRetry()})
	ctx := context.Background()

	sw, err := c.SubmitSweep(ctx, []byte(`{"base": {"workload": "seq", "cycles": 20000}, "axes": {"cores": [1, 2]}}`))
	if err != nil {
		t.Fatal(err)
	}
	var lines []service.SweepResultLine
	n, err := c.SweepResults(ctx, sw.ID, func(l service.SweepResultLine) error {
		lines = append(lines, l)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(lines) != 2 {
		t.Fatalf("streamed %d lines (%d collected), want 2", n, len(lines))
	}
	for i, l := range lines {
		if l.Index != i || l.State != service.StateDone || len(l.Result) == 0 {
			t.Errorf("line %d = %+v, want done with result", i, l)
		}
	}
}

// flakyStream proxies to a backend but kills the response after one
// NDJSON line on the first ?from=0 request, forcing the client to
// resume with ?from=1.
func TestSweepResultsResumeAfterDrop(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 2})

	var cut atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequest(r.Method, ts.URL+r.URL.String(), r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		if r.URL.Path == "/v1/sweeps/sweep-000001/results" && cut.CompareAndSwap(false, true) {
			// Forward exactly one line, then cut the connection mid-stream.
			line, _ := bufio.NewReader(resp.Body).ReadBytes('\n')
			w.Write(line)
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, _ := hj.Hijack()
				conn.Close()
				return
			}
			return
		}
		io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	c := New(proxy.URL, Options{Retry: fastRetry()})
	ctx := context.Background()
	sw, err := c.SubmitSweep(ctx, []byte(`{"base": {"workload": "seq", "cycles": 20000}, "axes": {"cores": [1, 2]}}`))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	n, err := c.SweepResults(ctx, sw.ID, func(l service.SweepResultLine) error {
		seen[l.Index]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Load() {
		t.Fatal("proxy never cut the stream; test is vacuous")
	}
	if n != 2 || seen[0] != 1 || seen[1] != 1 {
		t.Fatalf("streamed %d lines, seen=%v; want each of 2 lines exactly once", n, seen)
	}
}

// TestClientRidesThroughRestart is the acceptance check for the client
// half of durability: submit against a durable service, restart it on
// the same address and data dir mid-conversation, and observe the job's
// result with plain client calls — the retry loop absorbs the outage.
func TestClientRidesThroughRestart(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	newService := func() *service.Server {
		s, err := service.New(service.Config{Workers: 2, DataDir: dir, Logger: quietLogger()})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := newService()
	srv1 := &http.Server{Handler: s1.Handler()}
	go srv1.Serve(ln)

	c := New("http://"+addr, Options{Retry: RetryPolicy{
		MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := c.SubmitJob(ctx, testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	want, err := c.Stacks(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Restart: graceful stop, new listener on the same port.
	srv1.Close()
	s1.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newService()
	srv2 := &http.Server{Handler: s2.Handler()}
	go srv2.Serve(ln2)
	t.Cleanup(func() {
		srv2.Close()
		s2.Close()
	})

	got, err := c.Stacks(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("stacks changed across restart:\npre  %s\npost %s", want, got)
	}
}

func TestJobsAndSweepsLists(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 2})
	c := New(ts.URL, Options{Retry: fastRetry()})
	ctx := context.Background()

	sub, err := c.SubmitJob(ctx, testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	sw, err := c.SubmitSweep(ctx, []byte(`{"base": {"workload": "seq", "cycles": 20000}, "axes": {"cores": [1, 2]}}`))
	if err != nil {
		t.Fatal(err)
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range jobs {
		if j.ID == sub.ID {
			found = true
			if j.State != service.StateDone {
				t.Errorf("listed job %s state = %s, want done", j.ID, j.State)
			}
		}
	}
	if !found {
		t.Fatalf("Jobs() = %d entries, none with id %s", len(jobs), sub.ID)
	}

	sweeps, err := c.Sweeps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, s := range sweeps {
		found = found || s.ID == sw.ID
	}
	if !found {
		t.Fatalf("Sweeps() = %d entries, none with id %s", len(sweeps), sw.ID)
	}
}

func TestHealth(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 1})
	c := New(ts.URL, Options{Retry: fastRetry()})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health() = %v, want nil", err)
	}

	down := New("http://127.0.0.1:1", Options{Retry: RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}})
	if err := down.Health(context.Background()); err == nil {
		t.Fatal("Health() against a closed port = nil, want error")
	}
}

func TestSamplesStream(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 2})
	c := New(ts.URL, Options{Retry: fastRetry()})
	ctx := context.Background()

	spec, err := exp.DecodeSpec([]byte(`{"workload":"seq","cores":1,"cycles":20000,"sample":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.SubmitJob(ctx, spec.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	var got []exp.SampleJSON
	n, err := c.Samples(ctx, sub.ID, func(s exp.SampleJSON) error {
		got = append(got, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || len(got) != n {
		t.Fatalf("streamed %d samples (%d collected), want > 0", n, len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].EndCycle <= got[i-1].EndCycle {
			t.Fatalf("samples out of order: end_cycle %d after %d", got[i].EndCycle, got[i-1].EndCycle)
		}
	}

	// A job submitted without sampling reports conflict, not retry-loop.
	plain, err := c.SubmitJob(ctx, testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Samples(ctx, plain.ID, func(exp.SampleJSON) error { return nil }); err == nil {
		t.Fatal("Samples() on a sampling-off job = nil, want error")
	}
}
