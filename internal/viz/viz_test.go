package viz

import (
	"strings"
	"testing"

	"dramstacks/internal/cyclestack"
	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

func geo() dram.Geometry {
	g, _ := dram.DDR4_2400()
	return g
}

func sampleBW() stacks.BandwidthStack {
	a := stacks.NewBandwidthAccountant(16)
	for i := 0; i < 500; i++ {
		a.Account(stacks.CycleView{Data: dram.DataRead})
	}
	for i := 0; i < 100; i++ {
		a.Account(stacks.CycleView{Data: dram.DataWrite})
	}
	for i := 0; i < 50; i++ {
		a.Account(stacks.CycleView{Refreshing: true})
	}
	for i := 0; i < 350; i++ {
		a.Account(stacks.CycleView{})
	}
	return a.Stack()
}

func sampleLat() stacks.LatencyStack {
	a := stacks.NewLatencyAccountant()
	var r stacks.ReadLatency
	r.Components[stacks.LatBaseCtrl] = 30
	r.Components[stacks.LatBaseDRAM] = 20
	r.Components[stacks.LatQueue] = 50
	r.Total = 100
	a.AddRead(r)
	return a.Stack()
}

func TestBandwidthChart(t *testing.T) {
	var b strings.Builder
	BandwidthChart(&b, []string{"seq 1c"}, []stacks.BandwidthStack{sampleBW()}, geo())
	out := b.String()
	for _, want := range []string{"peak 19.2", "seq 1c", "RRRR", "read", "bank_idle", "achieved"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Bars are equal width between the pipes.
	lines := strings.Split(out, "\n")
	barw := -1
	for _, l := range lines {
		if i := strings.IndexByte(l, '|'); i >= 0 {
			j := strings.LastIndexByte(l, '|')
			if barw == -1 {
				barw = j - i
			} else if j-i != barw {
				t.Errorf("inconsistent bar width in %q", l)
			}
		}
	}
}

func TestLatencyChart(t *testing.T) {
	var b strings.Builder
	LatencyChart(&b, []string{"random"}, []stacks.LatencyStack{sampleLat()}, geo())
	out := b.String()
	for _, want := range []string{"random", "qqq", "base-cntlr", "queue", "ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestCycleChart(t *testing.T) {
	a := cyclestack.NewAccountant()
	for i := 0; i < 60; i++ {
		a.AddCycle(cyclestack.Base)
	}
	for i := 0; i < 40; i++ {
		a.AddCycle(cyclestack.Idle)
	}
	var b strings.Builder
	CycleChart(&b, []string{"core0"}, []cyclestack.Stack{a.Stack()})
	out := b.String()
	if !strings.Contains(out, "BBB") || !strings.Contains(out, "...") {
		t.Errorf("cycle chart bars missing:\n%s", out)
	}
}

func TestSamplesCSV(t *testing.T) {
	var b strings.Builder
	s := stacks.Sample{Start: 0, End: 1000, BW: sampleBW(), Lat: sampleLat()}
	if err := SamplesCSV(&b, []stacks.Sample{s}, geo()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "start_cycle,end_cycle,time_ms,bw_read") {
		t.Errorf("header = %q", lines[0])
	}
	if cols, want := strings.Count(lines[1], ",")+1, strings.Count(lines[0], ",")+1; cols != want {
		t.Errorf("row has %d columns, header %d", cols, want)
	}
}

func TestCycleSamplesCSV(t *testing.T) {
	a := cyclestack.NewAccountant()
	a.AddCycle(cyclestack.Base)
	var b strings.Builder
	if err := CycleSamplesCSV(&b, []cyclestack.Stack{a.Stack()}, 1000, geo()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dram-queue") || !strings.Contains(b.String(), "1.0000") {
		t.Errorf("cycle csv wrong:\n%s", b.String())
	}
}

func TestThroughTime(t *testing.T) {
	var b strings.Builder
	s1 := stacks.Sample{Start: 0, End: 1000, BW: sampleBW()}
	s2 := stacks.Sample{Start: 1000, End: 2000} // empty: skipped
	ThroughTime(&b, []stacks.Sample{s1, s2}, geo())
	out := b.String()
	if !strings.Contains(out, "through-time") || !strings.Contains(out, "#") {
		t.Errorf("through-time output wrong:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 { // header + one sample
		t.Errorf("expected one sample line, got:\n%s", out)
	}
}
