// Package viz renders bandwidth, latency and cycle stacks as ASCII bar
// charts and tables, and exports through-time samples as CSV — the
// textual equivalents of the paper's stacked-bar figures.
package viz

import (
	"fmt"
	"io"
	"strings"

	"dramstacks/internal/cyclestack"
	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// bwGlyphs maps each bandwidth component to its bar character, bottom of
// the stack first (the paper's plotting order: achieved bandwidth at the
// bottom, idle on top).
var bwOrder = []stacks.BWComponent{
	stacks.BWRead, stacks.BWWrite, stacks.BWRefresh, stacks.BWConstraints,
	stacks.BWBankIdle, stacks.BWPrecharge, stacks.BWActivate, stacks.BWIdle,
}

var bwGlyph = map[stacks.BWComponent]byte{
	stacks.BWRead:        'R',
	stacks.BWWrite:       'W',
	stacks.BWRefresh:     'f',
	stacks.BWConstraints: 'c',
	stacks.BWBankIdle:    'b',
	stacks.BWPrecharge:   'p',
	stacks.BWActivate:    'a',
	stacks.BWIdle:        '.',
}

var latOrder = []stacks.LatComponent{
	stacks.LatBaseCtrl, stacks.LatBaseDRAM, stacks.LatPreAct,
	stacks.LatRefresh, stacks.LatWriteBurst, stacks.LatQueue,
}

var latGlyph = map[stacks.LatComponent]byte{
	stacks.LatBaseCtrl:   'B',
	stacks.LatBaseDRAM:   'D',
	stacks.LatPreAct:     'a',
	stacks.LatRefresh:    'f',
	stacks.LatWriteBurst: 'w',
	stacks.LatQueue:      'q',
}

var cycleGlyph = map[cyclestack.Component]byte{
	cyclestack.Base:        'B',
	cyclestack.Branch:      'j',
	cyclestack.Dcache:      'd',
	cyclestack.DramLatency: 'L',
	cyclestack.DramQueue:   'Q',
	cyclestack.Idle:        '.',
}

// bar renders parts (which sum to total) as a width-character bar.
func bar(parts []float64, glyphs []byte, total float64, width int) string {
	if total <= 0 {
		return strings.Repeat(" ", width)
	}
	var b strings.Builder
	used := 0
	for i, p := range parts {
		n := int(p/total*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		b.Write(bytesRepeat(glyphs[i], n))
		used += n
	}
	if used < width {
		b.Write(bytesRepeat(' ', width-used))
	}
	return b.String()
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// BandwidthChart renders labeled bandwidth stacks as bars against the
// peak bandwidth, plus a numeric table.
func BandwidthChart(w io.Writer, labels []string, list []stacks.BandwidthStack, geo dram.Geometry) {
	peak := geo.PeakBandwidthGBs()
	fmt.Fprintf(w, "bandwidth stacks (GB/s, peak %.1f)\n", peak)
	fmt.Fprintf(w, "legend: R=read W=write f=refresh c=constraints b=bank_idle p=precharge a=activate .=idle\n")
	width := 64
	for i, s := range list {
		g := s.GBps(geo)
		parts := make([]float64, len(bwOrder))
		glyphs := make([]byte, len(bwOrder))
		for j, c := range bwOrder {
			parts[j] = g[c]
			glyphs[j] = bwGlyph[c]
		}
		fmt.Fprintf(w, "%-18s |%s| %5.2f achieved\n",
			labels[i], bar(parts, glyphs, peak, width), s.AchievedGBps(geo))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "")
	for _, c := range bwOrder {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for i, s := range list {
		g := s.GBps(geo)
		fmt.Fprintf(w, "%-18s", labels[i])
		for _, c := range bwOrder {
			fmt.Fprintf(w, " %10.3f", g[c])
		}
		fmt.Fprintln(w)
	}
}

// LatencyChart renders labeled latency stacks scaled to the largest
// total, plus a numeric table.
func LatencyChart(w io.Writer, labels []string, list []stacks.LatencyStack, geo dram.Geometry) {
	var maxNS float64
	for _, s := range list {
		if v := s.AvgTotalNS(geo); v > maxNS {
			maxNS = v
		}
	}
	fmt.Fprintf(w, "latency stacks (avg ns per read)\n")
	fmt.Fprintf(w, "legend: B=base-cntlr D=base-dram a=act/pre f=refresh w=writeburst q=queue\n")
	width := 64
	for i, s := range list {
		ns := s.AvgNS(geo)
		parts := make([]float64, len(latOrder))
		glyphs := make([]byte, len(latOrder))
		for j, c := range latOrder {
			parts[j] = ns[c]
			glyphs[j] = latGlyph[c]
		}
		fmt.Fprintf(w, "%-18s |%s| %6.1f ns\n",
			labels[i], bar(parts, glyphs, maxNS, width), s.AvgTotalNS(geo))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "")
	for _, c := range latOrder {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for i, s := range list {
		ns := s.AvgNS(geo)
		fmt.Fprintf(w, "%-18s", labels[i])
		for _, c := range latOrder {
			fmt.Fprintf(w, " %10.2f", ns[c])
		}
		fmt.Fprintln(w)
	}
}

// CycleChart renders cycle stacks as fraction-of-time bars.
func CycleChart(w io.Writer, labels []string, list []cyclestack.Stack) {
	fmt.Fprintf(w, "cycle stacks (fraction of core cycles)\n")
	fmt.Fprintf(w, "legend: B=base j=branch d=dcache L=dram-latency Q=dram-queue .=idle\n")
	width := 64
	for i, s := range list {
		f := s.Fractions()
		parts := make([]float64, cyclestack.NumComponents)
		glyphs := make([]byte, cyclestack.NumComponents)
		for c := cyclestack.Component(0); c < cyclestack.NumComponents; c++ {
			parts[c] = f[c]
			glyphs[c] = cycleGlyph[c]
		}
		fmt.Fprintf(w, "%-18s |%s|\n", labels[i], bar(parts, glyphs, 1, width))
	}
}

// SamplesCSV exports through-time bandwidth and latency samples: one row
// per sample with the per-component GB/s and avg-ns values (the data
// behind the paper's Fig. 7 middle and bottom plots).
func SamplesCSV(w io.Writer, samples []stacks.Sample, geo dram.Geometry) error {
	if _, err := fmt.Fprint(w, "start_cycle,end_cycle,time_ms"); err != nil {
		return err
	}
	for _, c := range bwOrder {
		fmt.Fprintf(w, ",bw_%s", c)
	}
	for _, c := range latOrder {
		fmt.Fprintf(w, ",lat_%s", strings.ReplaceAll(c.String(), "/", "_"))
	}
	fmt.Fprintln(w)
	for _, s := range samples {
		fmt.Fprintf(w, "%d,%d,%.4f", s.Start, s.End, geo.CyclesToNS(s.End)/1e6)
		g := s.BW.GBps(geo)
		for _, c := range bwOrder {
			fmt.Fprintf(w, ",%.4f", g[c])
		}
		ns := s.Lat.AvgNS(geo)
		for _, c := range latOrder {
			fmt.Fprintf(w, ",%.3f", ns[c])
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// CycleSamplesCSV exports through-time cycle-stack samples as component
// fractions (the paper's Fig. 7 top plot).
func CycleSamplesCSV(w io.Writer, samples []cyclestack.Stack, interval int64, geo dram.Geometry) error {
	if _, err := fmt.Fprint(w, "sample,time_ms"); err != nil {
		return err
	}
	for c := cyclestack.Component(0); c < cyclestack.NumComponents; c++ {
		fmt.Fprintf(w, ",%s", c)
	}
	fmt.Fprintln(w)
	for i, s := range samples {
		f := s.Fractions()
		fmt.Fprintf(w, "%d,%.4f", i, geo.CyclesToNS(int64(i+1)*interval)/1e6)
		for c := cyclestack.Component(0); c < cyclestack.NumComponents; c++ {
			fmt.Fprintf(w, ",%.4f", f[c])
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ThroughTime renders a through-time sample series as one line per
// sample: achieved bandwidth bar plus the dominant loss component — a
// terminal rendition of the paper's Fig. 7 middle plot.
func ThroughTime(w io.Writer, samples []stacks.Sample, geo dram.Geometry) {
	peak := geo.PeakBandwidthGBs()
	fmt.Fprintf(w, "through-time bandwidth (GB/s of %.1f peak; # achieved, label = dominant loss)\n", peak)
	width := 50
	for _, s := range samples {
		if s.BW.TotalCycles == 0 {
			continue
		}
		g := s.BW.GBps(geo)
		ach := g[stacks.BWRead] + g[stacks.BWWrite]
		// Dominant non-achieved component.
		var domC stacks.BWComponent
		var domV float64
		for _, c := range bwOrder[2:] { // skip read/write
			if g[c] > domV {
				domV = g[c]
				domC = c
			}
		}
		n := int(ach / peak * float64(width))
		if n > width {
			n = width
		}
		fmt.Fprintf(w, "%8.3fms %5.2f |%-*s| %s %.1f\n",
			geo.CyclesToNS(s.End)/1e6, ach, width, strings.Repeat("#", n), domC, domV)
	}
}
