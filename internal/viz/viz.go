// Package viz renders bandwidth, latency and cycle stacks as ASCII bar
// charts and tables, and exports through-time samples as CSV — the
// textual equivalents of the paper's stacked-bar figures.
package viz

import (
	"fmt"
	"io"
	"strings"

	"dramstacks/internal/cyclestack"
	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// bwGlyphs maps each bandwidth component to its bar character, bottom of
// the stack first (the paper's plotting order: achieved bandwidth at the
// bottom, idle on top).
var bwOrder = []stacks.BWComponent{
	stacks.BWRead, stacks.BWWrite, stacks.BWRefresh, stacks.BWConstraints,
	stacks.BWBankIdle, stacks.BWPrecharge, stacks.BWActivate, stacks.BWIdle,
}

// bwOrderQoS additionally plots the QoS regulation component, stacked
// just below idle: bandwidth deliberately withheld, not lost to timing.
var bwOrderQoS = []stacks.BWComponent{
	stacks.BWRead, stacks.BWWrite, stacks.BWRefresh, stacks.BWConstraints,
	stacks.BWBankIdle, stacks.BWPrecharge, stacks.BWActivate,
	stacks.BWRegulation, stacks.BWIdle,
}

// bwOrderFor picks the plotting order: the regulation component joins
// only when some stack carries it, so every chart, table and CSV of a
// QoS-less run keeps its exact legacy shape.
func bwOrderFor(list []stacks.BandwidthStack) []stacks.BWComponent {
	for _, s := range list {
		if s.Cycles[stacks.BWRegulation] != 0 {
			return bwOrderQoS
		}
	}
	return bwOrder
}

var bwGlyph = map[stacks.BWComponent]byte{
	stacks.BWRead:        'R',
	stacks.BWWrite:       'W',
	stacks.BWRefresh:     'f',
	stacks.BWConstraints: 'c',
	stacks.BWBankIdle:    'b',
	stacks.BWPrecharge:   'p',
	stacks.BWActivate:    'a',
	stacks.BWRegulation:  'g',
	stacks.BWIdle:        '.',
}

var latOrder = []stacks.LatComponent{
	stacks.LatBaseCtrl, stacks.LatBaseDRAM, stacks.LatPreAct,
	stacks.LatRefresh, stacks.LatWriteBurst, stacks.LatQueue,
}

// latOrderQoS additionally plots time reads spent held by regulation,
// next to (but distinct from) ordinary queueing.
var latOrderQoS = []stacks.LatComponent{
	stacks.LatBaseCtrl, stacks.LatBaseDRAM, stacks.LatPreAct,
	stacks.LatRefresh, stacks.LatWriteBurst, stacks.LatQueue,
	stacks.LatRegulated,
}

func latOrderFor(list []stacks.LatencyStack) []stacks.LatComponent {
	for _, s := range list {
		if s.SumCycles[stacks.LatRegulated] != 0 {
			return latOrderQoS
		}
	}
	return latOrder
}

var latGlyph = map[stacks.LatComponent]byte{
	stacks.LatBaseCtrl:   'B',
	stacks.LatBaseDRAM:   'D',
	stacks.LatPreAct:     'a',
	stacks.LatRefresh:    'f',
	stacks.LatWriteBurst: 'w',
	stacks.LatQueue:      'q',
	stacks.LatRegulated:  'g',
}

// cycleOrder plots the components with regulated stall time between the
// other DRAM stalls and idle (the enum appends DramRegulated last to
// keep legacy component indices stable).
var cycleOrder = []cyclestack.Component{
	cyclestack.Base, cyclestack.Branch, cyclestack.Dcache,
	cyclestack.DramLatency, cyclestack.DramQueue,
	cyclestack.DramRegulated, cyclestack.Idle,
}

// cycleOrderLegacy omits the regulated component; legends and SVG output
// of QoS-less runs keep their exact legacy shape.
var cycleOrderLegacy = []cyclestack.Component{
	cyclestack.Base, cyclestack.Branch, cyclestack.Dcache,
	cyclestack.DramLatency, cyclestack.DramQueue, cyclestack.Idle,
}

func cycleOrderFor(list []cyclestack.Stack) []cyclestack.Component {
	for _, s := range list {
		if s.Cycles[cyclestack.DramRegulated] != 0 {
			return cycleOrder
		}
	}
	return cycleOrderLegacy
}

var cycleGlyph = map[cyclestack.Component]byte{
	cyclestack.Base:          'B',
	cyclestack.Branch:        'j',
	cyclestack.Dcache:        'd',
	cyclestack.DramLatency:   'L',
	cyclestack.DramQueue:     'Q',
	cyclestack.DramRegulated: 'g',
	cyclestack.Idle:          '.',
}

// bar renders parts (which sum to total) as a width-character bar.
func bar(parts []float64, glyphs []byte, total float64, width int) string {
	if total <= 0 {
		return strings.Repeat(" ", width)
	}
	var b strings.Builder
	used := 0
	for i, p := range parts {
		n := int(p/total*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		b.Write(bytesRepeat(glyphs[i], n))
		used += n
	}
	if used < width {
		b.Write(bytesRepeat(' ', width-used))
	}
	return b.String()
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// BandwidthChart renders labeled bandwidth stacks as bars against the
// peak bandwidth, plus a numeric table.
func BandwidthChart(w io.Writer, labels []string, list []stacks.BandwidthStack, geo dram.Geometry) {
	order := bwOrderFor(list)
	peak := geo.PeakBandwidthGBs()
	fmt.Fprintf(w, "bandwidth stacks (GB/s, peak %.1f)\n", peak)
	legend := "legend: R=read W=write f=refresh c=constraints b=bank_idle p=precharge a=activate .=idle"
	if len(order) > len(bwOrder) {
		legend = "legend: R=read W=write f=refresh c=constraints b=bank_idle p=precharge a=activate g=regulation .=idle"
	}
	fmt.Fprintf(w, "%s\n", legend)
	width := 64
	for i, s := range list {
		g := s.GBps(geo)
		parts := make([]float64, len(order))
		glyphs := make([]byte, len(order))
		for j, c := range order {
			parts[j] = g[c]
			glyphs[j] = bwGlyph[c]
		}
		fmt.Fprintf(w, "%-18s |%s| %5.2f achieved\n",
			labels[i], bar(parts, glyphs, peak, width), s.AchievedGBps(geo))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "")
	for _, c := range order {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for i, s := range list {
		g := s.GBps(geo)
		fmt.Fprintf(w, "%-18s", labels[i])
		for _, c := range order {
			fmt.Fprintf(w, " %10.3f", g[c])
		}
		fmt.Fprintln(w)
	}
}

// LatencyChart renders labeled latency stacks scaled to the largest
// total, plus a numeric table.
func LatencyChart(w io.Writer, labels []string, list []stacks.LatencyStack, geo dram.Geometry) {
	var maxNS float64
	for _, s := range list {
		if v := s.AvgTotalNS(geo); v > maxNS {
			maxNS = v
		}
	}
	order := latOrderFor(list)
	fmt.Fprintf(w, "latency stacks (avg ns per read)\n")
	legend := "legend: B=base-cntlr D=base-dram a=act/pre f=refresh w=writeburst q=queue"
	if len(order) > len(latOrder) {
		legend = "legend: B=base-cntlr D=base-dram a=act/pre f=refresh w=writeburst q=queue g=regulated"
	}
	fmt.Fprintf(w, "%s\n", legend)
	width := 64
	for i, s := range list {
		ns := s.AvgNS(geo)
		parts := make([]float64, len(order))
		glyphs := make([]byte, len(order))
		for j, c := range order {
			parts[j] = ns[c]
			glyphs[j] = latGlyph[c]
		}
		fmt.Fprintf(w, "%-18s |%s| %6.1f ns\n",
			labels[i], bar(parts, glyphs, maxNS, width), s.AvgTotalNS(geo))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "")
	for _, c := range order {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for i, s := range list {
		ns := s.AvgNS(geo)
		fmt.Fprintf(w, "%-18s", labels[i])
		for _, c := range order {
			fmt.Fprintf(w, " %10.2f", ns[c])
		}
		fmt.Fprintln(w)
	}
}

// CycleChart renders cycle stacks as fraction-of-time bars.
func CycleChart(w io.Writer, labels []string, list []cyclestack.Stack) {
	order := cycleOrderFor(list)
	fmt.Fprintf(w, "cycle stacks (fraction of core cycles)\n")
	legend := "legend: B=base j=branch d=dcache L=dram-latency Q=dram-queue .=idle"
	if len(order) > len(cycleOrderLegacy) {
		legend = "legend: B=base j=branch d=dcache L=dram-latency Q=dram-queue g=dram-regulated .=idle"
	}
	fmt.Fprintf(w, "%s\n", legend)
	width := 64
	for i, s := range list {
		f := s.Fractions()
		parts := make([]float64, len(order))
		glyphs := make([]byte, len(order))
		for j, c := range order {
			parts[j] = f[c]
			glyphs[j] = cycleGlyph[c]
		}
		fmt.Fprintf(w, "%-18s |%s|\n", labels[i], bar(parts, glyphs, 1, width))
	}
}

// SamplesCSV exports through-time bandwidth and latency samples: one row
// per sample with the per-component GB/s and avg-ns values (the data
// behind the paper's Fig. 7 middle and bottom plots).
func SamplesCSV(w io.Writer, samples []stacks.Sample, geo dram.Geometry) error {
	bwo, lato := sampleOrders(samples)
	if _, err := fmt.Fprint(w, "start_cycle,end_cycle,time_ms"); err != nil {
		return err
	}
	for _, c := range bwo {
		fmt.Fprintf(w, ",bw_%s", c)
	}
	for _, c := range lato {
		fmt.Fprintf(w, ",lat_%s", strings.ReplaceAll(c.String(), "/", "_"))
	}
	fmt.Fprintln(w)
	for _, s := range samples {
		fmt.Fprintf(w, "%d,%d,%.4f", s.Start, s.End, geo.CyclesToNS(s.End)/1e6)
		g := s.BW.GBps(geo)
		for _, c := range bwo {
			fmt.Fprintf(w, ",%.4f", g[c])
		}
		ns := s.Lat.AvgNS(geo)
		for _, c := range lato {
			fmt.Fprintf(w, ",%.3f", ns[c])
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// sampleOrders picks the component orders for a through-time series:
// regulation columns appear only when some sample carries them, keeping
// legacy CSV headers and charts byte-identical.
func sampleOrders(samples []stacks.Sample) ([]stacks.BWComponent, []stacks.LatComponent) {
	bwo, lato := bwOrder, latOrder
	for _, s := range samples {
		if s.BW.Cycles[stacks.BWRegulation] != 0 {
			bwo = bwOrderQoS
		}
		if s.Lat.SumCycles[stacks.LatRegulated] != 0 {
			lato = latOrderQoS
		}
	}
	return bwo, lato
}

// CycleSamplesCSV exports through-time cycle-stack samples as component
// fractions (the paper's Fig. 7 top plot).
func CycleSamplesCSV(w io.Writer, samples []cyclestack.Stack, interval int64, geo dram.Geometry) error {
	if _, err := fmt.Fprint(w, "sample,time_ms"); err != nil {
		return err
	}
	for c := cyclestack.Component(0); c < cyclestack.NumComponents; c++ {
		fmt.Fprintf(w, ",%s", c)
	}
	fmt.Fprintln(w)
	for i, s := range samples {
		f := s.Fractions()
		fmt.Fprintf(w, "%d,%.4f", i, geo.CyclesToNS(int64(i+1)*interval)/1e6)
		for c := cyclestack.Component(0); c < cyclestack.NumComponents; c++ {
			fmt.Fprintf(w, ",%.4f", f[c])
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ThroughTime renders a through-time sample series as one line per
// sample: achieved bandwidth bar plus the dominant loss component — a
// terminal rendition of the paper's Fig. 7 middle plot.
func ThroughTime(w io.Writer, samples []stacks.Sample, geo dram.Geometry) {
	bwo, _ := sampleOrders(samples)
	peak := geo.PeakBandwidthGBs()
	fmt.Fprintf(w, "through-time bandwidth (GB/s of %.1f peak; # achieved, label = dominant loss)\n", peak)
	width := 50
	for _, s := range samples {
		if s.BW.TotalCycles == 0 {
			continue
		}
		g := s.BW.GBps(geo)
		ach := g[stacks.BWRead] + g[stacks.BWWrite]
		// Dominant non-achieved component.
		var domC stacks.BWComponent
		var domV float64
		for _, c := range bwo[2:] { // skip read/write
			if g[c] > domV {
				domV = g[c]
				domC = c
			}
		}
		n := int(ach / peak * float64(width))
		if n > width {
			n = width
		}
		fmt.Fprintf(w, "%8.3fms %5.2f |%-*s| %s %.1f\n",
			geo.CyclesToNS(s.End)/1e6, ach, width, strings.Repeat("#", n), domC, domV)
	}
}
