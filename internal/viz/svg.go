package viz

import (
	"fmt"
	"io"
	"strings"

	"dramstacks/internal/cyclestack"
	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// Colors follow the paper's figures: warm colors for useful bandwidth,
// cool/grey tones for the losses.
var bwColor = map[stacks.BWComponent]string{
	stacks.BWRead:        "#1f77b4",
	stacks.BWWrite:       "#aec7e8",
	stacks.BWRefresh:     "#7f7f7f",
	stacks.BWConstraints: "#d62728",
	stacks.BWBankIdle:    "#ff9896",
	stacks.BWPrecharge:   "#2ca02c",
	stacks.BWActivate:    "#98df8a",
	stacks.BWRegulation:  "#ff7f0e",
	stacks.BWIdle:        "#e7e7e7",
}

var latColor = map[stacks.LatComponent]string{
	stacks.LatBaseCtrl:   "#1f77b4",
	stacks.LatBaseDRAM:   "#aec7e8",
	stacks.LatPreAct:     "#2ca02c",
	stacks.LatRefresh:    "#7f7f7f",
	stacks.LatWriteBurst: "#9467bd",
	stacks.LatQueue:      "#d62728",
	stacks.LatRegulated:  "#ff7f0e",
}

var cycleColor = map[cyclestack.Component]string{
	cyclestack.Base:          "#2ca02c",
	cyclestack.Branch:        "#9467bd",
	cyclestack.Dcache:        "#ff7f0e",
	cyclestack.DramLatency:   "#1f77b4",
	cyclestack.DramQueue:     "#d62728",
	cyclestack.DramRegulated: "#ffbb78",
	cyclestack.Idle:          "#e7e7e7",
}

// svgCanvas accumulates SVG elements with a fixed chart layout.
type svgCanvas struct {
	b             strings.Builder
	width, height int
}

func newCanvas(width, height int) *svgCanvas {
	c := &svgCanvas{width: width, height: height}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n",
		width, height)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	return c
}

func (c *svgCanvas) rect(x, y, w, h float64, fill string) {
	if h <= 0 || w <= 0 {
		return
	}
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="none"/>`+"\n",
		x, y, w, h, fill)
}

func (c *svgCanvas) text(x, y float64, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" text-anchor="%s">%s</text>`+"\n", x, y, anchor, escape(s))
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, stroke string) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
		x1, y1, x2, y2, stroke)
}

func (c *svgCanvas) done(w io.Writer) error {
	c.b.WriteString("</svg>\n")
	_, err := io.WriteString(w, c.b.String())
	return err
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

// chartLayout computes the shared stacked-bar-chart geometry.
type chartLayout struct {
	left, top, bottom float64
	plotW, plotH      float64
	barW, gap         float64
}

func layoutFor(n int) (chartLayout, int, int) {
	l := chartLayout{left: 55, top: 30, bottom: 60}
	l.barW, l.gap = 46, 18
	l.plotW = float64(n)*(l.barW+l.gap) + l.gap
	l.plotH = 220
	width := int(l.left + l.plotW + 160) // room for the legend
	height := int(l.top + l.plotH + l.bottom)
	return l, width, height
}

func (l chartLayout) barX(i int) float64 { return l.left + l.gap + float64(i)*(l.barW+l.gap) }

// yAxis draws the axis with five ticks up to max.
func yAxis(c *svgCanvas, l chartLayout, max float64, unit string) {
	c.line(l.left, l.top, l.left, l.top+l.plotH, "#333")
	c.line(l.left, l.top+l.plotH, l.left+l.plotW, l.top+l.plotH, "#333")
	for i := 0; i <= 4; i++ {
		v := max * float64(i) / 4
		y := l.top + l.plotH*(1-float64(i)/4)
		c.line(l.left-4, y, l.left, y, "#333")
		c.text(l.left-7, y+4, "end", fmt.Sprintf("%.1f", v))
	}
	c.text(l.left-40, l.top-12, "start", unit)
}

func legend(c *svgCanvas, l chartLayout, names []string, colors []string) {
	x := l.left + l.plotW + 15
	for i := range names {
		y := l.top + float64(i)*18
		c.rect(x, y, 12, 12, colors[i])
		c.text(x+17, y+10, "start", names[i])
	}
}

func barLabel(c *svgCanvas, l chartLayout, i int, label string) {
	// Two-line labels: split on the first space past the midpoint.
	x := l.barX(i) + l.barW/2
	y := l.top + l.plotH + 14
	words := strings.Fields(label)
	if len(words) <= 1 || len(label) <= 9 {
		c.text(x, y, "middle", label)
		return
	}
	mid := (len(words) + 1) / 2
	c.text(x, y, "middle", strings.Join(words[:mid], " "))
	c.text(x, y+13, "middle", strings.Join(words[mid:], " "))
}

// BandwidthSVG writes a stacked-bar bandwidth chart in the paper's Fig. 2
// style: one bar per configuration, components bottom-up from achieved
// read bandwidth to idle, the bar total equal to the peak bandwidth.
func BandwidthSVG(w io.Writer, labels []string, list []stacks.BandwidthStack, geo dram.Geometry) error {
	l, width, height := layoutFor(len(list))
	c := newCanvas(width, height)
	order := bwOrderFor(list)
	peak := geo.PeakBandwidthGBs()
	yAxis(c, l, peak, "GB/s")
	for i, s := range list {
		g := s.GBps(geo)
		y := l.top + l.plotH
		for _, comp := range order {
			h := g[comp] / peak * l.plotH
			y -= h
			c.rect(l.barX(i), y, l.barW, h, bwColor[comp])
		}
		barLabel(c, l, i, labels[i])
	}
	names := make([]string, len(order))
	colors := make([]string, len(order))
	for i, comp := range order {
		names[i] = comp.String()
		colors[i] = bwColor[comp]
	}
	legend(c, l, names, colors)
	return c.done(w)
}

// LatencySVG writes a stacked-bar latency chart (paper Fig. 2 bottom
// style): bars scaled to the largest average latency.
func LatencySVG(w io.Writer, labels []string, list []stacks.LatencyStack, geo dram.Geometry) error {
	l, width, height := layoutFor(len(list))
	c := newCanvas(width, height)
	var max float64
	for _, s := range list {
		if v := s.AvgTotalNS(geo); v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	order := latOrderFor(list)
	yAxis(c, l, max, "ns")
	for i, s := range list {
		ns := s.AvgNS(geo)
		y := l.top + l.plotH
		for _, comp := range order {
			h := ns[comp] / max * l.plotH
			y -= h
			c.rect(l.barX(i), y, l.barW, h, latColor[comp])
		}
		barLabel(c, l, i, labels[i])
	}
	names := make([]string, len(order))
	colors := make([]string, len(order))
	for i, comp := range order {
		names[i] = comp.String()
		colors[i] = latColor[comp]
	}
	legend(c, l, names, colors)
	return c.done(w)
}

// ThroughTimeSVG writes the paper's Fig. 7 middle panel: a stacked area
// (rendered as abutting per-sample bars) of the bandwidth components over
// time.
func ThroughTimeSVG(w io.Writer, samples []stacks.Sample, geo dram.Geometry) error {
	n := len(samples)
	if n == 0 {
		n = 1
	}
	l := chartLayout{left: 55, top: 30, bottom: 45, plotH: 220}
	l.barW = 640.0 / float64(n)
	l.gap = 0
	l.plotW = l.barW * float64(n)
	width := int(l.left + l.plotW + 160)
	height := int(l.top + l.plotH + l.bottom)
	c := newCanvas(width, height)
	order, _ := sampleOrders(samples)
	peak := geo.PeakBandwidthGBs()
	yAxis(c, l, peak, "GB/s")
	for i, s := range samples {
		if s.BW.TotalCycles == 0 {
			continue
		}
		g := s.BW.GBps(geo)
		x := l.left + float64(i)*l.barW
		y := l.top + l.plotH
		for _, comp := range order {
			h := g[comp] / peak * l.plotH
			y -= h
			c.rect(x, y, l.barW+0.5, h, bwColor[comp])
		}
	}
	if len(samples) > 0 {
		c.text(l.left, l.top+l.plotH+16, "start", "0 ms")
		end := geo.CyclesToNS(samples[len(samples)-1].End) / 1e6
		c.text(l.left+l.plotW, l.top+l.plotH+16, "end", fmt.Sprintf("%.2f ms", end))
	}
	names := make([]string, len(order))
	colors := make([]string, len(order))
	for i, comp := range order {
		names[i] = comp.String()
		colors[i] = bwColor[comp]
	}
	legend(c, l, names, colors)
	return c.done(w)
}

// CycleSamplesSVG writes the paper's Fig. 7 top panel: stacked cycle
// components over time as fractions of core time.
func CycleSamplesSVG(w io.Writer, samples []cyclestack.Stack, interval int64, geo dram.Geometry) error {
	n := len(samples)
	if n == 0 {
		n = 1
	}
	l := chartLayout{left: 55, top: 30, bottom: 45, plotH: 220}
	l.barW = 640.0 / float64(n)
	l.plotW = l.barW * float64(n)
	width := int(l.left + l.plotW + 160)
	height := int(l.top + l.plotH + l.bottom)
	c := newCanvas(width, height)
	yAxis(c, l, 1, "fraction")
	order := cycleOrderFor(samples)
	for i, s := range samples {
		f := s.Fractions()
		x := l.left + float64(i)*l.barW
		y := l.top + l.plotH
		for _, comp := range order {
			h := f[comp] * l.plotH
			y -= h
			c.rect(x, y, l.barW+0.5, h, cycleColor[comp])
		}
	}
	if len(samples) > 0 {
		c.text(l.left, l.top+l.plotH+16, "start", "0 ms")
		end := geo.CyclesToNS(int64(len(samples))*interval) / 1e6
		c.text(l.left+l.plotW, l.top+l.plotH+16, "end", fmt.Sprintf("%.2f ms", end))
	}
	names := make([]string, len(order))
	colors := make([]string, len(order))
	for i, comp := range order {
		names[i] = comp.String()
		colors[i] = cycleColor[comp]
	}
	legend(c, l, names, colors)
	return c.done(w)
}
