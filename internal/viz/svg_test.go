package viz

import (
	"strings"
	"testing"

	"dramstacks/internal/cyclestack"
	"dramstacks/internal/stacks"
)

func TestBandwidthSVG(t *testing.T) {
	var b strings.Builder
	err := BandwidthSVG(&b, []string{"seq 1c", "random 8c"},
		[]stacks.BandwidthStack{sampleBW(), sampleBW()}, geo())
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "GB/s", "seq 1c", "random 8c",
		bwColor[stacks.BWRead], bwColor[stacks.BWIdle], "read", "bank_idle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// Two bars of stacked rects: plenty of rect elements.
	if n := strings.Count(out, "<rect"); n < 8 {
		t.Errorf("only %d rects", n)
	}
}

func TestLatencySVG(t *testing.T) {
	var b strings.Builder
	if err := LatencySVG(&b, []string{"x"}, []stacks.LatencyStack{sampleLat()}, geo()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "ns", "queue", latColor[stacks.LatQueue]} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// Empty stack list must not panic and still produce a document.
	var e strings.Builder
	if err := LatencySVG(&e, nil, nil, geo()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "</svg>") {
		t.Error("empty chart not closed")
	}
}

func TestThroughTimeSVG(t *testing.T) {
	var b strings.Builder
	samples := []stacks.Sample{
		{Start: 0, End: 1000, BW: sampleBW()},
		{Start: 1000, End: 2000, BW: sampleBW()},
		{Start: 2000, End: 3000}, // empty sample skipped
	}
	if err := ThroughTimeSVG(&b, samples, geo()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0 ms") || !strings.Contains(out, "ms") {
		t.Error("time axis labels missing")
	}
}

func TestCycleSamplesSVG(t *testing.T) {
	a := cyclestack.NewAccountant()
	for i := 0; i < 7; i++ {
		a.AddCycle(cyclestack.Base)
	}
	for i := 0; i < 3; i++ {
		a.AddCycle(cyclestack.DramQueue)
	}
	var b strings.Builder
	if err := CycleSamplesSVG(&b, []cyclestack.Stack{a.Stack(), a.Stack()}, 1000, geo()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"dram-queue", cycleColor[cyclestack.Base], "fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	var b strings.Builder
	if err := BandwidthSVG(&b, []string{"<evil> & co"},
		[]stacks.BandwidthStack{sampleBW()}, geo()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<evil>") {
		t.Error("label not escaped")
	}
	if !strings.Contains(b.String(), "&lt;evil&gt;") {
		t.Error("escaped label missing")
	}
}
