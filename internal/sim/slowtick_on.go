//go:build slowtick

package sim

// defaultSlowTick selects the reference per-cycle loop because the build
// used -tags=slowtick.
const defaultSlowTick = true
