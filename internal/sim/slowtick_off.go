//go:build !slowtick

package sim

// defaultSlowTick selects the fast-forwarding loop by default; build with
// -tags=slowtick to default to the reference per-cycle loop instead.
const defaultSlowTick = false
