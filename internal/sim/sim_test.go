package sim

import (
	"testing"

	"dramstacks/internal/cpu"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.CPUMult = 0 },
		func(c *Config) { c.Hier.Cores = 2 },
		func(c *Config) { c.MaxMemCycles = -1 },
		func(c *Config) { c.WarmupMemCycles = c.MaxMemCycles },
		func(c *Config) { c.Core.Width = 0 },
	}
	for i, mutate := range bad {
		cfg := Default(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewFromConfig(Default(2), []cpu.Source{&workload.Slice{}}); err == nil {
		t.Error("source count mismatch accepted")
	}
}

func TestFiniteWorkloadRunsToCompletion(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 0 // run until done
	wc := workload.DefaultSequential()
	wc.Ops = 2000
	sys, err := NewFromConfig(cfg, []cpu.Source{workload.MustSynthetic(wc)})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.CoreStats[0].Loads+res.CoreStats[0].Stores != 2000 {
		t.Errorf("memory ops = %d, want 2000",
			res.CoreStats[0].Loads+res.CoreStats[0].Stores)
	}
	if res.TotalRetired() == 0 || res.MemCycles == 0 {
		t.Error("nothing simulated")
	}
	if err := res.BW.CheckSum(); err != nil {
		t.Error(err)
	}
	for _, cs := range res.CycleStacks {
		if err := cs.CheckSum(); err != nil {
			t.Error(err)
		}
	}
}

func TestStackInvariantsFullSystem(t *testing.T) {
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		res := runSyn2(t, pat, 2, 0.2, MapDefault, memctrl.OpenPage, 120_000)
		if res.BW.TotalCycles != 120_000 {
			t.Errorf("%v: accounted %d cycles, want 120000", pat, res.BW.TotalCycles)
		}
		if err := res.BW.CheckSum(); err != nil {
			t.Errorf("%v: %v", pat, err)
		}
		if res.Lat.Reads == 0 {
			t.Errorf("%v: no reads recorded", pat)
		}
	}
}

// TestPaperShapeFig2 asserts the qualitative Fig. 2 findings on reduced
// cycle budgets: proportional sequential scaling into saturation, high
// sequential page-hit rate, near-zero random page-hit rate, and sublinear
// random scaling limited by bank conflicts rather than chip idleness.
func TestPaperShapeFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test skipped in -short")
	}
	budget := int64(250_000)

	seq1 := runSyn2(t, workload.Sequential, 1, 0, MapDefault, memctrl.OpenPage, budget)
	seq2 := runSyn2(t, workload.Sequential, 2, 0, MapDefault, memctrl.OpenPage, budget)
	seq8 := runSyn2(t, workload.Sequential, 8, 0, MapDefault, memctrl.OpenPage, budget)

	b1, b2, b8 := seq1.AchievedGBps(), seq2.AchievedGBps(), seq8.AchievedGBps()
	if b1 < 4 || b1 > 9 {
		t.Errorf("seq 1c = %v GB/s, want 4..9 (paper: 6.4)", b1)
	}
	if r := b2 / b1; r < 1.7 || r > 2.2 {
		t.Errorf("seq 2c/1c = %v, want about 2", r)
	}
	if b8 < 15.5 {
		t.Errorf("seq 8c = %v GB/s, want saturation above 15.5", b8)
	}
	if hr := seq1.CtrlStats.PageHitRate(); hr < 0.97 {
		t.Errorf("seq page hit rate = %v, want > 0.97 (paper: 99%%)", hr)
	}
	// At saturation there is no idle left and queueing dominates latency.
	g8 := seq8.BWGBps()
	if g8[stacks.BWIdle] > 0.5 {
		t.Errorf("seq 8c idle = %v GB/s, want about 0", g8[stacks.BWIdle])
	}
	l8 := seq8.LatNS()
	if l8[stacks.LatQueue] < l8[stacks.LatBaseCtrl]+l8[stacks.LatBaseDRAM] {
		t.Errorf("seq 8c queue latency %v should dominate base %v",
			l8[stacks.LatQueue], l8[stacks.LatBaseCtrl]+l8[stacks.LatBaseDRAM])
	}

	rnd1 := runSyn2(t, workload.Random, 1, 0, MapDefault, memctrl.OpenPage, budget)
	rnd8 := runSyn2(t, workload.Random, 8, 0, MapDefault, memctrl.OpenPage, budget)
	if hr := rnd1.CtrlStats.PageHitRate(); hr > 0.05 {
		t.Errorf("random page hit rate = %v, want about 0", hr)
	}
	r1, r8 := rnd1.AchievedGBps(), rnd8.AchievedGBps()
	if r1 > b1/2 {
		t.Errorf("random 1c = %v GB/s should be well below sequential %v", r1, b1)
	}
	if scale := r8 / r1; scale < 4 || scale > 7.5 {
		t.Errorf("random 8c/1c = %v, want sublinear 4..7.5 (paper: 6.4)", scale)
	}
	// Paper: at 8 cores random, no idle component; pre/act visible.
	gr8 := rnd8.BWGBps()
	if gr8[stacks.BWIdle] > 0.5 {
		t.Errorf("random 8c idle = %v, want about 0", gr8[stacks.BWIdle])
	}
	if gr8[stacks.BWPrecharge]+gr8[stacks.BWActivate] < 1 {
		t.Errorf("random 8c pre+act = %v, want visible (> 1 GB/s)",
			gr8[stacks.BWPrecharge]+gr8[stacks.BWActivate])
	}
	// Random latency is dominated by pre/act at low load (page misses).
	lr1 := rnd1.LatNS()
	if lr1[stacks.LatPreAct] < 15 {
		t.Errorf("random 1c act/pre latency = %v ns, want > 15 (tRP+tRCD = 26.7)",
			lr1[stacks.LatPreAct])
	}
}

// TestPaperShapeFig3 asserts the Fig. 3 direction: stores help the random
// pattern monotonically; on the sequential pattern they cost read
// bandwidth and create writeburst latency.
func TestPaperShapeFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test skipped in -short")
	}
	budget := int64(250_000)
	r0 := runSyn2(t, workload.Random, 1, 0, MapDefault, memctrl.OpenPage, budget)
	r5 := runSyn2(t, workload.Random, 1, 0.5, MapDefault, memctrl.OpenPage, budget)
	if r5.AchievedGBps() <= r0.AchievedGBps() {
		t.Errorf("random w50 = %v GB/s not above w0 = %v",
			r5.AchievedGBps(), r0.AchievedGBps())
	}
	if r5.BWGBps()[stacks.BWWrite] <= 0 {
		t.Error("random w50 has no write bandwidth")
	}

	s0 := runSyn2(t, workload.Sequential, 1, 0, MapDefault, memctrl.OpenPage, budget)
	s5 := runSyn2(t, workload.Sequential, 1, 0.5, MapDefault, memctrl.OpenPage, budget)
	if s5.BWGBps()[stacks.BWRead] >= s0.BWGBps()[stacks.BWRead] {
		t.Errorf("seq w50 read BW %v not below w0 %v",
			s5.BWGBps()[stacks.BWRead], s0.BWGBps()[stacks.BWRead])
	}
	l5 := s5.LatNS()
	if l5[stacks.LatWriteBurst] < 2 {
		t.Errorf("seq w50 writeburst latency = %v ns, want visible", l5[stacks.LatWriteBurst])
	}
	if s5.Lat.AvgTotalNS(s5.Cfg.Geom) <= s0.Lat.AvgTotalNS(s0.Cfg.Geom) {
		t.Error("seq w50 latency not above w0")
	}
}

// TestPaperShapeFig4 asserts the Fig. 4 direction: the closed page policy
// hurts the sequential pattern (queueing, not pre/act, grows) and helps
// the random pattern (pre/act latency roughly halves).
func TestPaperShapeFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test skipped in -short")
	}
	budget := int64(250_000)
	so := runSyn2(t, workload.Sequential, 2, 0, MapDefault, memctrl.OpenPage, budget)
	sc := runSyn2(t, workload.Sequential, 2, 0, MapDefault, memctrl.ClosedPage, budget)
	if sc.AchievedGBps() >= so.AchievedGBps() {
		t.Errorf("seq closed %v GB/s not below open %v", sc.AchievedGBps(), so.AchievedGBps())
	}
	lo, lc := so.LatNS(), sc.LatNS()
	if lc[stacks.LatQueue] <= lo[stacks.LatQueue] {
		t.Error("seq closed queue latency not above open")
	}
	qGrow := lc[stacks.LatQueue] - lo[stacks.LatQueue]
	paGrow := lc[stacks.LatPreAct] - lo[stacks.LatPreAct]
	if qGrow <= paGrow {
		t.Errorf("seq closed: queue growth %v should exceed pre/act growth %v (paper §VII-C)",
			qGrow, paGrow)
	}

	ro := runSyn2(t, workload.Random, 2, 0, MapDefault, memctrl.OpenPage, budget)
	rc := runSyn2(t, workload.Random, 2, 0, MapDefault, memctrl.ClosedPage, budget)
	if rc.AchievedGBps() <= ro.AchievedGBps() {
		t.Errorf("random closed %v GB/s not above open %v", rc.AchievedGBps(), ro.AchievedGBps())
	}
	lro, lrc := ro.LatNS(), rc.LatNS()
	if lrc[stacks.LatPreAct] >= lro[stacks.LatPreAct]*0.7 {
		t.Errorf("random closed act/pre = %v ns, want well below open %v (precharge hidden)",
			lrc[stacks.LatPreAct], lro[stacks.LatPreAct])
	}
}

// TestPaperShapeFig6 asserts the Fig. 6 direction: cache-line interleaving
// raises bandwidth and cuts queue+writeburst latency at the cost of
// pre/act for the two bank-conflict cases.
func TestPaperShapeFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test skipped in -short")
	}
	budget := int64(250_000)
	def := runSyn2(t, workload.Sequential, 1, 0.5, MapDefault, memctrl.OpenPage, budget)
	inter := runSyn2(t, workload.Sequential, 1, 0.5, MapInterleaved, memctrl.OpenPage, budget)
	if inter.AchievedGBps() <= def.AchievedGBps() {
		t.Errorf("seq w50 int %v GB/s not above def %v",
			inter.AchievedGBps(), def.AchievedGBps())
	}
	ld, li := def.LatNS(), inter.LatNS()
	if li[stacks.LatQueue]+li[stacks.LatWriteBurst] >= ld[stacks.LatQueue]+ld[stacks.LatWriteBurst] {
		t.Error("interleaving did not reduce queue+writeburst latency")
	}
	if li[stacks.LatPreAct] <= ld[stacks.LatPreAct] {
		t.Error("interleaving did not increase pre/act latency (page locality lost)")
	}

	d2 := runSyn2(t, workload.Sequential, 2, 0, MapDefault, memctrl.ClosedPage, budget)
	i2 := runSyn2(t, workload.Sequential, 2, 0, MapInterleaved, memctrl.ClosedPage, budget)
	if i2.AchievedGBps() <= d2.AchievedGBps() {
		t.Errorf("seq 2c closed int %v GB/s not above def %v",
			i2.AchievedGBps(), d2.AchievedGBps())
	}
}

func TestThroughTimeSamplesCoverRun(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 100_000
	cfg.SampleInterval = 20_000
	wc := workload.DefaultSequential()
	sys, err := NewFromConfig(cfg, []cpu.Source{workload.MustSynthetic(wc)})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.BWSamples) != 5 {
		t.Fatalf("bw samples = %d, want 5", len(res.BWSamples))
	}
	var covered int64
	for _, s := range res.BWSamples {
		covered += s.BW.TotalCycles
		if err := s.BW.CheckSum(); err != nil {
			t.Error(err)
		}
	}
	if covered != 100_000 {
		t.Errorf("samples cover %d cycles, want 100000", covered)
	}
	if len(res.CycleSamples) != 5 {
		t.Errorf("cycle samples = %d, want 5", len(res.CycleSamples))
	}
}

func TestWarmupExcludedFromStacks(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 60_000
	cfg.WarmupMemCycles = 20_000
	sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.BW.TotalCycles != 40_000 {
		t.Errorf("post-warmup stack covers %d cycles, want 40000", res.BW.TotalCycles)
	}
	if err := res.BW.CheckSum(); err != nil {
		t.Error(err)
	}
}

func TestPrewarmFillsCaches(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 50_000
	cfg.PrewarmOps = 1 << 19
	sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	// With warmed caches and 50% stores, dirty evictions reach DRAM
	// immediately.
	if res.CtrlStats.IssuedWrites == 0 {
		t.Error("no DRAM writes despite warmed dirty working set")
	}
}
