package sim

import "flag"

var calib = flag.Bool("calib", false, "print calibration stacks")
