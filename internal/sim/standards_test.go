package sim

import (
	"reflect"
	"testing"

	"dramstacks/internal/cache"
	"dramstacks/internal/cpu"
	"dramstacks/internal/dram"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/workload"
)

// Every registered standard must run a real workload through the full
// machine with the command-legality verifier on, produce zero timing
// violations, and keep the stack invariants — whatever its bank, group
// or (pseudo-)channel counts. This is the registry-wide legality gate
// the ISSUE asks for: a preset that passes Timing.Validate but encodes
// an inconsistent rule set would surface here.
func TestEveryStandardRunsVerified(t *testing.T) {
	for _, std := range standard.All() {
		std := std
		t.Run(std.Name, func(t *testing.T) {
			const budget = 60_000
			cfg := DefaultFor(std, 2)
			cfg.MaxMemCycles = budget
			cfg.PrewarmOps = 1 << 18
			if !cfg.Verify {
				t.Fatal("DefaultFor disabled the verifier")
			}
			sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 2, 0.2))
			if err != nil {
				t.Fatal(err)
			}
			res := sys.Run()
			if len(res.Violations) > 0 {
				t.Fatalf("timing violation: %v", res.Violations[0])
			}

			devices := std.SubChannels
			if res.Channels != devices {
				t.Fatalf("devices = %d, want %d", res.Channels, devices)
			}
			if res.BW.TotalCycles != int64(devices)*budget {
				t.Errorf("stack covers %d cycles, want %d", res.BW.TotalCycles, int64(devices)*budget)
			}
			if err := res.BW.CheckSum(); err != nil {
				t.Errorf("bandwidth stack broken: %v", err)
			}
			if res.BW.Banks != std.Geometry.TotalBanks() {
				t.Errorf("stack banks = %d, want the per-device %d", res.BW.Banks, std.Geometry.TotalBanks())
			}
			if got, peak := res.AchievedGBps(), res.PeakGBps(); got <= 0 || got > peak+1e-9 {
				t.Errorf("achieved %.3f GB/s outside (0, peak %.3f]", got, peak)
			}
			// The GB/s conversion must sum to the standard's peak across
			// all devices, however many there are.
			var total float64
			for _, v := range res.BWGBps() {
				total += v
			}
			if want := std.Geometry.PeakBandwidthGBs() * float64(devices); total-want > 1e-6 || want-total > 1e-6 {
				t.Errorf("components sum to %.4f GB/s, want peak %.4f", total, want)
			}
			if res.CtrlStats.IssuedReads == 0 {
				t.Error("no reads issued")
			}
		})
	}
}

// DDR4-2400 routed through the registry (the new sim.Default path) must
// reproduce the seed's hand-built configuration exactly — same Config,
// and a field-by-field identical Result.
func TestRegistryDDR4MatchesSeedConfig(t *testing.T) {
	// The seed's sim.Default, inlined: the literal the registry replaced.
	seedDefault := func(cores int) Config {
		geo, tim := dram.DDR4_2400()
		return Config{
			Cores:        cores,
			CPUMult:      3,
			Core:         cpu.DefaultConfig(),
			Hier:         cache.DefaultHierConfig(cores),
			Ctrl:         memctrl.DefaultConfig(),
			Geom:         geo,
			Tim:          tim,
			MaxMemCycles: 2_000_000,
			Verify:       true,
		}
	}
	if got, want := Default(2), seedDefault(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry default config diverged:\n got %+v\nwant %+v", got, want)
	}

	run := func(cfg Config) *Result {
		cfg.MaxMemCycles = 40_000
		cfg.SampleInterval = 10_000
		cfg.PrewarmOps = 1 << 18
		sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 2, 0.2))
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	reg := run(Default(2))
	seed := run(seedDefault(2))

	// Field-by-field: every reported quantity must match exactly.
	if reg.MemCycles != seed.MemCycles {
		t.Errorf("MemCycles %d != %d", reg.MemCycles, seed.MemCycles)
	}
	if reg.Channels != seed.Channels {
		t.Errorf("Channels %d != %d", reg.Channels, seed.Channels)
	}
	if reg.BW != seed.BW {
		t.Errorf("BW stack diverged:\n got %+v\nwant %+v", reg.BW, seed.BW)
	}
	if reg.Lat != seed.Lat {
		t.Errorf("Lat stack diverged:\n got %+v\nwant %+v", reg.Lat, seed.Lat)
	}
	if reg.CtrlStats != seed.CtrlStats {
		t.Errorf("CtrlStats diverged:\n got %+v\nwant %+v", reg.CtrlStats, seed.CtrlStats)
	}
	if reg.DevStats != seed.DevStats {
		t.Errorf("DevStats diverged:\n got %+v\nwant %+v", reg.DevStats, seed.DevStats)
	}
	if reg.LLCStats != seed.LLCStats {
		t.Errorf("LLCStats diverged:\n got %+v\nwant %+v", reg.LLCStats, seed.LLCStats)
	}
	if reg.HierStats != seed.HierStats {
		t.Errorf("HierStats diverged:\n got %+v\nwant %+v", reg.HierStats, seed.HierStats)
	}
	if !reflect.DeepEqual(reg.CoreStats, seed.CoreStats) {
		t.Errorf("CoreStats diverged")
	}
	if !reflect.DeepEqual(reg.CycleStacks, seed.CycleStacks) {
		t.Errorf("CycleStacks diverged")
	}
	if !reflect.DeepEqual(reg.BWSamples, seed.BWSamples) {
		t.Errorf("BWSamples diverged")
	}
	if !reflect.DeepEqual(reg.LatHist, seed.LatHist) {
		t.Errorf("LatHist diverged")
	}
	if !reflect.DeepEqual(reg, seed) {
		t.Error("Result diverged outside the fields above")
	}
}

// HBM2's pseudo-channels must behave as two independently timed devices
// per addressed channel: doubled device count, doubled peak, and traffic
// on both pseudo-channels (the pc bit is the lowest channel bit, so
// consecutive lines alternate).
func TestHBMPseudoChannels(t *testing.T) {
	std := standard.MustLookup("hbm2-2000")
	cfg := DefaultFor(std, 4)
	cfg.Channels = 2
	cfg.MaxMemCycles = 60_000
	cfg.PrewarmOps = 1 << 18
	if cfg.SubChannels != 2 {
		t.Fatalf("SubChannels = %d, want 2", cfg.SubChannels)
	}
	sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		t.Fatalf("timing violation: %v", res.Violations[0])
	}
	if res.Channels != 4 {
		t.Fatalf("devices = %d, want 4 (2 channels x 2 pseudo-channels)", res.Channels)
	}
	if got, want := res.PeakGBps(), 4*16.0; got != want {
		t.Errorf("peak = %g GB/s, want %g", got, want)
	}
	if len(res.PerChannelStats) != 4 {
		t.Fatalf("per-device stats: %d entries", len(res.PerChannelStats))
	}
	for pc, st := range res.PerChannelStats {
		if st.IssuedReads == 0 {
			t.Errorf("pseudo-channel %d starved", pc)
		}
	}
}

func TestSubChannelValidation(t *testing.T) {
	cfg := Default(1)
	cfg.SubChannels = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative sub-channels accepted")
	}
	cfg.SubChannels = 5
	if err := cfg.Validate(); err == nil {
		t.Error("too many sub-channels accepted")
	}
	cfg.SubChannels = 4
	cfg.Channels = 8
	if err := cfg.Validate(); err == nil {
		t.Error("32 devices accepted, want at most 16")
	}
	cfg.Channels = 4
	if err := cfg.Validate(); err != nil {
		t.Errorf("16 devices rejected: %v", err)
	}
}
