package sim

import (
	"testing"

	"dramstacks/internal/workload"
)

// TestTwoChannelsDoubleSequentialBandwidth: a saturating multi-core
// sequential workload on two channels should push well past one
// channel's peak, and the aggregate stack must keep its invariants.
func TestTwoChannelsDoubleSequentialBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system test skipped in -short")
	}
	run := func(channels int) *Result {
		cfg := Default(8)
		cfg.Channels = channels
		cfg.MaxMemCycles = 200_000
		cfg.PrewarmOps = 1 << 20
		sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 8, 0))
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		if len(res.Violations) > 0 {
			t.Fatalf("%d channels: %v", channels, res.Violations[0])
		}
		return res
	}
	one := run(1)
	two := run(2)

	if two.Channels != 2 || one.Channels != 1 {
		t.Fatalf("channel counts = %d/%d", one.Channels, two.Channels)
	}
	if two.PeakGBps() != 2*one.PeakGBps() {
		t.Errorf("peak = %v, want double %v", two.PeakGBps(), one.PeakGBps())
	}
	b1, b2 := one.AchievedGBps(), two.AchievedGBps()
	if b2 < b1*1.4 {
		t.Errorf("two channels = %.2f GB/s, want well above one channel's %.2f", b2, b1)
	}
	if b2 > one.PeakGBps()+1e-9 && b2 <= two.PeakGBps() {
		// Exceeded a single channel's physical limit: conclusive.
	} else if b2 <= one.PeakGBps() {
		t.Logf("note: 2-channel bandwidth %.2f below single-channel peak (core-bound workload)", b2)
	}

	// Aggregate stack invariants: total cycles = channels × window.
	if two.BW.TotalCycles != 2*200_000 {
		t.Errorf("aggregate cycles = %d, want %d", two.BW.TotalCycles, 2*200_000)
	}
	if err := two.BW.CheckSum(); err != nil {
		t.Error(err)
	}
	if len(two.PerChannelBW) != 2 || len(two.PerChannelStats) != 2 {
		t.Fatalf("per-channel breakdown missing: %d/%d",
			len(two.PerChannelBW), len(two.PerChannelStats))
	}
	// Per-channel stacks sum to the aggregate.
	var sum float64
	for _, ch := range two.PerChannelBW {
		if err := ch.CheckSum(); err != nil {
			t.Error(err)
		}
		sum += ch.AchievedGBps(two.Cfg.Geom)
	}
	if diff := sum - b2; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-channel sum %.4f != aggregate %.4f", sum, b2)
	}
	// With line interleaving, traffic splits roughly evenly.
	r0 := two.PerChannelStats[0].IssuedReads
	r1 := two.PerChannelStats[1].IssuedReads
	if r0 == 0 || r1 == 0 {
		t.Fatalf("channel starved: %d/%d reads", r0, r1)
	}
	ratio := float64(r0) / float64(r1)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("channel imbalance: %d vs %d reads", r0, r1)
	}
	// The BW components sum to the doubled peak.
	g := two.BWGBps()
	var total float64
	for _, v := range g {
		total += v
	}
	if d := total - two.PeakGBps(); d > 1e-6 || d < -1e-6 {
		t.Errorf("components sum to %.4f, want %.4f", total, two.PeakGBps())
	}
}

func TestMultiChannelSamplesAggregate(t *testing.T) {
	cfg := Default(2)
	cfg.Channels = 2
	cfg.MaxMemCycles = 60_000
	cfg.SampleInterval = 20_000
	sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.BWSamples) != 3 {
		t.Fatalf("samples = %d, want 3", len(res.BWSamples))
	}
	for _, s := range res.BWSamples {
		if s.BW.TotalCycles != 2*20_000 {
			t.Errorf("sample covers %d cycles, want 40000 (2 channels)", s.BW.TotalCycles)
		}
		if err := s.BW.CheckSum(); err != nil {
			t.Error(err)
		}
	}
}

func TestChannelsValidation(t *testing.T) {
	cfg := Default(1)
	cfg.Channels = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative channels accepted")
	}
	cfg.Channels = 9
	if err := cfg.Validate(); err == nil {
		t.Error("too many channels accepted")
	}
}
