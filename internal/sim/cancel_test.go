package sim

import (
	"context"
	"testing"
	"time"

	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

// TestRunContextCancel proves a cancelled run returns promptly with a
// partial, warmup-consistent result: the budget is far larger than what
// could simulate within the test deadline, the stacks cover only the
// post-warmup cycles actually executed, and the bandwidth-stack invariant
// (components sum to total cycles) still holds.
func TestRunContextCancel(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 1 << 40 // would take hours; cancellation must cut it short
	cfg.WarmupMemCycles = 5_000
	cfg.SampleInterval = 10_000
	sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 1, 0))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)

	start := time.Now()
	resCh := make(chan *Result, 1)
	go func() { resCh <- sys.RunContext(ctx) }()
	var res *Result
	select {
	case res = <-resCh:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return within 30s")
	}
	elapsed := time.Since(start)

	if !res.Cancelled {
		t.Error("Result.Cancelled = false, want true")
	}
	if res.MemCycles >= cfg.MaxMemCycles {
		t.Errorf("run consumed the whole %d-cycle budget", cfg.MaxMemCycles)
	}
	if res.MemCycles <= cfg.WarmupMemCycles {
		t.Errorf("run stopped inside warmup after %d cycles", res.MemCycles)
	}
	// Warmup consistency: the reported stack covers exactly the
	// post-warmup interval and still satisfies the sum invariant.
	if got, want := res.BW.TotalCycles, res.MemCycles-cfg.WarmupMemCycles; got != want {
		t.Errorf("BW.TotalCycles = %d, want %d (MemCycles - warmup)", got, want)
	}
	if err := res.BW.CheckSum(); err != nil {
		t.Errorf("partial bandwidth stack inconsistent: %v", err)
	}
	if len(res.BWSamples) == 0 {
		t.Error("no through-time samples despite SampleInterval")
	}
	t.Logf("cancelled after %d mem cycles in %v", res.MemCycles, elapsed)
}

// TestRunContextNilDoneFinishes checks the uncancellable context path is
// unaffected: Run (background context) completes on the cycle budget.
func TestRunContextCompletesOnBudget(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 20_000
	sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Cancelled {
		t.Error("uncancelled run reports Cancelled")
	}
	if res.MemCycles != cfg.MaxMemCycles {
		t.Errorf("MemCycles = %d, want %d", res.MemCycles, cfg.MaxMemCycles)
	}
}

// TestOnSampleStreams checks the live sample hook sees every sample the
// final result carries, in order.
func TestOnSampleStreams(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 50_000
	cfg.SampleInterval = 10_000
	var live []int64
	cfg.OnSample = func(s stacks.Sample) { live = append(live, s.End) }
	sys, err := NewFromConfig(cfg, SyntheticSources(workload.Sequential, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(live) != len(res.BWSamples) {
		t.Fatalf("OnSample saw %d samples, result has %d", len(live), len(res.BWSamples))
	}
	for i, s := range res.BWSamples {
		if live[i] != s.End {
			t.Errorf("sample %d: streamed End %d, result End %d", i, live[i], s.End)
		}
	}
}
