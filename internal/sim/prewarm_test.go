package sim

import (
	"reflect"
	"runtime"
	"testing"

	"dramstacks/internal/cpu"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/workload"
)

// plainSource hides the NextBatch fast path, forcing prewarm's serial
// round-robin loop (and per-item Next draining) for the wrapped source.
type plainSource struct{ src cpu.Source }

func (p plainSource) Next() (cpu.Instr, bool) { return p.src.Next() }

// prewarmSources is a store-heavy multi-core mix with DRAM-sized
// footprints: every warm op runs the full install cascade and the dirty
// evictions exercise the recorded-LLC writeback ordering.
func prewarmSources(wrap bool) []cpu.Source {
	var out []cpu.Source
	for c := 0; c < 4; c++ {
		cfg := workload.SyntheticConfig{
			Pattern:        workload.Random,
			StoreFrac:      0.3,
			WorkPerOp:      5,
			FootprintBytes: 1 << 22,
			StrideBytes:    64,
			Chains:         2,
			BaseAddr:       uint64(c) * (256 << 20),
			Seed:           int64(c + 7),
		}
		if c%2 == 1 {
			cfg.Pattern = workload.Sequential
			cfg.Chains = 0
		}
		var src cpu.Source = workload.MustSynthetic(cfg)
		if wrap {
			src = plainSource{src}
		}
		out = append(out, src)
	}
	return out
}

// TestPrewarmParallelMatchesSerial pins the concurrent warm path: the
// per-core private warming plus ordered LLC replay must leave the
// machine in exactly the state the serial round-robin loop produces, so
// a full run from either warm start yields field-identical Results.
// GOMAXPROCS is raised so the parallel path is taken even on a
// single-processor host (where prewarm otherwise stays serial), and the
// serial reference is forced by hiding the sources' batch interface.
func TestPrewarmParallelMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	run := func(wrap bool) *Result {
		cfg := Default(4)
		cfg.MaxMemCycles = 20_000
		cfg.SampleInterval = 3_000
		cfg.PrewarmOps = 1 << 14
		sys, err := NewFromConfig(cfg, prewarmSources(wrap))
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		res.Cfg.OnSample = nil
		res.Cfg.Trace = nil
		return res
	}
	parallel := run(false)
	serial := run(true)
	if !reflect.DeepEqual(parallel, serial) {
		ft, pv, sv := reflect.TypeOf(*parallel), reflect.ValueOf(*parallel), reflect.ValueOf(*serial)
		for i := 0; i < ft.NumField(); i++ {
			if !reflect.DeepEqual(pv.Field(i).Interface(), sv.Field(i).Interface()) {
				t.Errorf("Result.%s differs between parallel and serial prewarm", ft.Field(i).Name)
			}
		}
	}
}

// TestPrewarmQuotaExactWithBatching: the buffered feed must warm exactly
// PrewarmOps memory operations per core even when the quota is not a
// multiple of the batch size — the refill guard falls back to per-item
// draining near the quota so no generated item is ever dropped. The
// emitted count is quota plus the core's first unwarmed instructions
// only after the timed run consumes them, so it is checked before Run.
func TestPrewarmQuotaExactWithBatching(t *testing.T) {
	for _, quota := range []int64{1, 63, 64, 65, 129} {
		srcs := []cpu.Source{workload.MustSynthetic(workload.SyntheticConfig{
			Pattern:        workload.Sequential,
			FootprintBytes: 1 << 20,
			StrideBytes:    64,
			Seed:           3,
		})}
		cfg := DefaultFor(standard.Default(), 1)
		cfg.MaxMemCycles = 100
		cfg.PrewarmOps = quota
		sys, err := NewFromConfig(cfg, srcs)
		if err != nil {
			t.Fatal(err)
		}
		syn := srcs[0].(*workload.Synthetic)
		if got := syn.Emitted(); got != quota {
			t.Errorf("quota %d: %d ops emitted after prewarm", quota, got)
		}
		_ = sys
	}
}
