package sim

import (
	"fmt"
	"testing"

	"dramstacks/internal/cpu"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

// TestCalibrationReport is a development aid: run with
//
//	go test ./internal/sim -run Calibration -v -calib
//
// to print the Fig. 2 style stacks for tuning. Skipped by default.
func TestCalibrationReport(t *testing.T) {
	if !*calib {
		t.Skip("pass -calib to print calibration stacks")
	}
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, cores := range []int{1, 2, 4, 8} {
			res := runSynthetic(t, pat, cores, 0, MapDefault, 0, 500_000)
			g := res.BWGBps()
			l := res.LatNS()
			fmt.Printf("%-10s %dc: ach=%5.2f GB/s [rd=%5.2f wr=%5.2f ref=%4.2f pre=%4.2f act=%4.2f cons=%4.2f bidle=%5.2f idle=%5.2f] hit=%4.1f%%\n",
				pat, cores, res.AchievedGBps(),
				g[stacks.BWRead], g[stacks.BWWrite], g[stacks.BWRefresh],
				g[stacks.BWPrecharge], g[stacks.BWActivate], g[stacks.BWConstraints],
				g[stacks.BWBankIdle], g[stacks.BWIdle],
				100*res.CtrlStats.PageHitRate())
			fmt.Printf("             lat=%6.1f ns [ctrl=%4.1f dram=%4.1f preact=%5.1f ref=%4.1f wb=%4.1f q=%6.1f] reads=%d\n",
				res.Lat.AvgTotalNS(res.Cfg.Geom),
				l[stacks.LatBaseCtrl], l[stacks.LatBaseDRAM], l[stacks.LatPreAct],
				l[stacks.LatRefresh], l[stacks.LatWriteBurst], l[stacks.LatQueue],
				res.Lat.Reads)
		}
	}
}

func runSynthetic(t *testing.T, pat workload.Pattern, cores int, storeFrac float64, m Mapping, warmup, budget int64) *Result {
	t.Helper()
	cfg := Default(cores)
	cfg.Map = m
	cfg.MaxMemCycles = budget
	cfg.WarmupMemCycles = warmup
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		var wc workload.SyntheticConfig
		if pat == workload.Sequential {
			wc = workload.DefaultSequential()
		} else {
			wc = workload.DefaultRandom()
		}
		wc.StoreFrac = storeFrac
		// Distinct regions, staggered by one DRAM page so concurrent
		// streams start in different bank groups.
		wc.BaseAddr = uint64(i)*(256<<20) + uint64(i)*8192
		wc.Seed = int64(i + 1)
		sources = append(sources, workload.MustSynthetic(wc))
	}
	sys, err := NewFromConfig(cfg, sources)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		t.Fatalf("timing violations: %v", res.Violations[0])
	}
	return res
}
