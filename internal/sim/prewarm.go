package sim

import (
	"runtime"
	"sync"

	"dramstacks/internal/cache"
	"dramstacks/internal/cpu"
)

// warmBatch is the per-source buffer size used while draining
// batch-capable sources during functional warming.
const warmBatch = 64

// warmFeed drains one source for prewarm. Sources that support batch
// generation are pulled through a small buffer: the consumption order
// is unchanged — only the generation is amortized, which the
// cpu.BatchSource purity contract makes invisible. A refill is only
// taken while the source is at least a full batch short of its warm
// quota, so every generated item is consumed before the quota check can
// retire the source.
type warmFeed struct {
	src    cpu.Source
	bs     cpu.BatchSource // nil: no batch fast path, use src.Next
	items  []cpu.Instr
	pos, n int
	warmed int64 // memory operations warmed so far
	quota  int64 // PrewarmOps
}

func (f *warmFeed) next() (cpu.Instr, bool) {
	if f.bs == nil {
		return f.src.Next()
	}
	if f.pos >= f.n {
		if f.warmed+warmBatch > f.quota {
			return f.src.Next()
		}
		f.n = f.bs.NextBatch(f.items)
		f.pos = 0
		if f.n == 0 {
			return cpu.Instr{}, false
		}
	}
	ins := f.items[f.pos]
	f.pos++
	return ins, true
}

// prewarm consumes the head of each stream functionally so the caches
// start in steady state; the cores continue from where warming stopped.
// Sources are drained round-robin so barrier-synchronized workloads
// (package gap) make progress; stall items are skipped.
func (s *System) prewarm(sources []cpu.Source) {
	feeds := make([]warmFeed, len(sources))
	allBatch := len(sources) > 0
	for i, src := range sources {
		feeds[i] = warmFeed{src: src, quota: s.cfg.PrewarmOps}
		if bs, ok := src.(cpu.BatchSource); ok {
			feeds[i].bs = bs
			feeds[i].items = make([]cpu.Instr, warmBatch)
		} else {
			allBatch = false
		}
	}
	// Batch sources are pure: each core's stream is a function of its
	// own consumption count, with no cross-source barriers (the gap
	// barrier sources deliberately stay batch-free). The private cache
	// levels never observe the shared LLC, so with every source pure the
	// per-core warm work can run concurrently and only the LLC's
	// operation stream needs the global round-robin order — see
	// prewarmParallel. The split only pays when it can actually run
	// concurrently, so one core — or a single-processor host — keeps
	// the serial loop and its zero recording overhead.
	if allBatch && len(sources) > 1 && runtime.GOMAXPROCS(0) > 1 {
		s.prewarmParallel(feeds)
		return
	}
	exhausted := make([]bool, len(feeds))
	active := len(feeds)
	for active > 0 {
		progress := false
		for i := range feeds {
			f := &feeds[i]
			if exhausted[i] || f.warmed >= f.quota {
				if !exhausted[i] {
					exhausted[i] = true
					active--
				}
				continue
			}
			ins, ok := f.next()
			if !ok {
				exhausted[i] = true
				active--
				continue
			}
			switch ins.Kind {
			case cpu.KindLoad:
				s.hier.Warm(i, ins.Addr, false)
				f.warmed++
				progress = true
			case cpu.KindStore:
				s.hier.Warm(i, ins.Addr, true)
				f.warmed++
				progress = true
			case cpu.KindStall:
				// Barrier wait: progress only if someone else moves.
			default:
				progress = true // compute/branch item consumed
			}
		}
		if !progress {
			// Every remaining source is stalled at a barrier that a
			// finished source will never release: stop warming here.
			return
		}
	}
}

// warmChunk is the number of items each core advances per parallel
// warming phase; it bounds the recorded-LLC-operation memory.
const warmChunk = 1 << 14

// prewarmParallel is prewarm for the all-batch-source case: the
// private-level warm of every core runs in its own goroutine (disjoint
// state: the core's caches, feed and RNG), recording the shared-LLC
// operations each item emits; the LLC stream is then replayed serially
// in exactly the order the round-robin loop performs it. Because every
// active source consumes one item per round, an item's global position
// is (item index, core index) — the replay merges the per-core records
// by that key, so the final hierarchy state is identical to the serial
// loop's. Work proceeds in fixed-size chunks to bound record memory;
// cores remain item-aligned at chunk boundaries because a worker exits
// a chunk early only when its feed is done for good.
func (s *System) prewarmParallel(feeds []warmFeed) {
	type record struct {
		ops   []cache.LLCOp
		items []int32 // item index of each recorded op, ascending
		done  bool
	}
	recs := make([]record, len(feeds))
	cur := make([]int, len(feeds))
	live := len(feeds)
	var wg sync.WaitGroup
	for live > 0 {
		for i := range feeds {
			if recs[i].done {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				f, r := &feeds[i], &recs[i]
				if r.ops == nil {
					r.ops = make([]cache.LLCOp, 0, warmChunk)
					r.items = make([]int32, 0, warmChunk)
				}
				r.ops, r.items = r.ops[:0], r.items[:0]
				for j := int32(0); j < warmChunk; j++ {
					if f.warmed >= f.quota {
						r.done = true
						return
					}
					ins, ok := f.next()
					if !ok {
						r.done = true
						return
					}
					if ins.Kind != cpu.KindLoad && ins.Kind != cpu.KindStore {
						continue
					}
					before := len(r.ops)
					r.ops = s.hier.WarmPrivate(i, ins.Addr, ins.Kind == cpu.KindStore, r.ops)
					for range r.ops[before:] {
						r.items = append(r.items, j)
					}
					f.warmed++
				}
			}(i)
		}
		wg.Wait()
		for j := int32(0); j < warmChunk; j++ {
			remaining := false
			for i := range recs {
				r := &recs[i]
				c := cur[i]
				for c < len(r.items) && r.items[c] == j {
					s.hier.WarmLLC(r.ops[c])
					c++
				}
				cur[i] = c
				if c < len(r.items) {
					remaining = true
				}
			}
			if !remaining {
				break
			}
		}
		live = 0
		for i := range recs {
			cur[i] = 0
			if !recs[i].done {
				live++
			}
		}
	}
}
