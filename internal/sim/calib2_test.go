package sim

import (
	"fmt"
	"testing"

	"dramstacks/internal/memctrl"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

func printRes(tag string, res *Result) {
	g := res.BWGBps()
	l := res.LatNS()
	fmt.Printf("%-24s ach=%5.2f [rd=%5.2f wr=%5.2f ref=%4.2f pre=%4.2f act=%4.2f cons=%4.2f bidle=%5.2f idle=%5.2f] hit=%4.1f%%\n",
		tag, res.AchievedGBps(),
		g[stacks.BWRead], g[stacks.BWWrite], g[stacks.BWRefresh],
		g[stacks.BWPrecharge], g[stacks.BWActivate], g[stacks.BWConstraints],
		g[stacks.BWBankIdle], g[stacks.BWIdle], 100*res.CtrlStats.PageHitRate())
	fmt.Printf("%-24s lat=%6.1f [ctrl=%4.1f dram=%4.1f preact=%5.1f ref=%4.1f wb=%5.1f q=%6.1f]\n",
		"", res.Lat.AvgTotalNS(res.Cfg.Geom),
		l[stacks.LatBaseCtrl], l[stacks.LatBaseDRAM], l[stacks.LatPreAct],
		l[stacks.LatRefresh], l[stacks.LatWriteBurst], l[stacks.LatQueue])
}

// runSyn2 runs a fully parameterized synthetic experiment.
func runSyn2(t *testing.T, pat workload.Pattern, cores int, storeFrac float64,
	m Mapping, policy memctrl.PagePolicy, budget int64) *Result {
	t.Helper()
	cfg := Default(cores)
	cfg.Map = m
	cfg.Ctrl.Policy = policy
	cfg.MaxMemCycles = budget
	cfg.PrewarmOps = 1 << 20
	sources := SyntheticSources(pat, cores, storeFrac)
	sys, err := NewFromConfig(cfg, sources)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		t.Fatalf("timing violations: %v", res.Violations[0])
	}
	return res
}

func TestCalibrationStoresAndPolicy(t *testing.T) {
	if !*calib {
		t.Skip("pass -calib to print calibration stacks")
	}
	fmt.Println("--- Fig 3: store fraction sweep, 1 core ---")
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, w := range []float64{0, 0.1, 0.2, 0.5} {
			res := runSyn2(t, pat, 1, w, MapDefault, memctrl.OpenPage, 400_000)
			printRes(fmt.Sprintf("%s w%d 1c", pat, int(w*100)), res)
		}
	}
	fmt.Println("--- Fig 4: page policy, 2 cores, read-only ---")
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, pol := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.ClosedPage} {
			res := runSyn2(t, pat, 2, 0, MapDefault, pol, 400_000)
			printRes(fmt.Sprintf("%s %s 2c", pat, pol), res)
		}
	}
	fmt.Println("--- Fig 6: indexing, two bank-conflict cases ---")
	for _, m := range []Mapping{MapDefault, MapInterleaved} {
		res := runSyn2(t, workload.Sequential, 1, 0.5, m, memctrl.OpenPage, 400_000)
		printRes(fmt.Sprintf("seq w50 1c open %s", m), res)
	}
	for _, m := range []Mapping{MapDefault, MapInterleaved} {
		res := runSyn2(t, workload.Sequential, 2, 0, m, memctrl.ClosedPage, 400_000)
		printRes(fmt.Sprintf("seq w0 2c closed %s", m), res)
	}
}
