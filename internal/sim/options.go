package sim

import (
	"fmt"

	"dramstacks/internal/cache"
	"dramstacks/internal/cpu"
	"dramstacks/internal/dram"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/qos"
	"dramstacks/internal/stacks"
)

// Observer receives progress callbacks from a running System. It is the
// single observation surface of a run: through-time samples as they are
// cut, periodic progress, and early-stop notification. Implementations
// embed BaseObserver and override what they need.
//
// Callbacks run synchronously on the simulation goroutine; long work
// belongs on the observer's side of a channel.
type Observer interface {
	// Sample receives each through-time sample (aggregated over all
	// channels) as soon as it is cut. Requires a positive sample
	// interval.
	Sample(s stacks.Sample)
	// Progress reports the simulated memory cycle after new samples
	// were published and once more when the run ends. budget is the
	// configured MaxMemCycles (0 = run to completion).
	Progress(memCycle, budget int64)
	// Cancelled reports that RunContext stopped early because its
	// context was cancelled, with the last simulated memory cycle.
	Cancelled(memCycle int64)
}

// BaseObserver is a no-op Observer for embedding.
type BaseObserver struct{}

// Sample implements Observer.
func (BaseObserver) Sample(stacks.Sample) {}

// Progress implements Observer.
func (BaseObserver) Progress(int64, int64) {}

// Cancelled implements Observer.
func (BaseObserver) Cancelled(int64) {}

// sampleFunc adapts a plain function to a sample-only Observer.
type sampleFunc struct {
	BaseObserver
	fn func(stacks.Sample)
}

func (s sampleFunc) Sample(sm stacks.Sample) { s.fn(sm) }

// builder accumulates options for New.
type builder struct {
	cfg       Config
	cfgSet    bool
	sources   []cpu.Source
	observers []Observer
	mutators  []func(*Config)
}

// Option configures a System assembled by New.
type Option func(*builder)

// WithSources sets the per-core instruction sources. The number of
// sources determines the core count (unless overridden by WithCores or
// WithConfig).
func WithSources(srcs ...cpu.Source) Option {
	return func(b *builder) { b.sources = srcs }
}

// WithConfig replaces the DefaultFor-derived base configuration
// entirely. It exists as the bridge for spec-driven callers that
// assemble a Config elsewhere; later options still apply on top.
func WithConfig(cfg Config) Option {
	return func(b *builder) { b.cfg, b.cfgSet = cfg, true }
}

// WithCores sets the core count, resizing the cache hierarchy to match.
// The source count must still match at New time.
func WithCores(n int) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) {
			c.Cores = n
			c.Hier = cache.DefaultHierConfig(n)
		})
	}
}

// WithChannels sets the number of memory channels.
func WithChannels(n int) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.Channels = n })
	}
}

// WithMapping selects the address-indexing scheme.
func WithMapping(m Mapping) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.Map = m })
	}
}

// WithMaxMemCycles bounds the run (0 = run until the workload
// finishes).
func WithMaxMemCycles(n int64) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.MaxMemCycles = n })
	}
}

// WithWarmupMemCycles excludes the first n memory cycles from the
// reported stacks.
func WithWarmupMemCycles(n int64) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.WarmupMemCycles = n })
	}
}

// WithSampleInterval cuts through-time samples every n memory cycles
// (0 disables).
func WithSampleInterval(n int64) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.SampleInterval = n })
	}
}

// WithPrewarmOps functionally pre-warms the caches with n memory
// operations per core before timing starts.
func WithPrewarmOps(n int64) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.PrewarmOps = n })
	}
}

// WithVerify enables or disables the independent DRAM timing verifier.
func WithVerify(v bool) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.Verify = v })
	}
}

// WithTrace streams every issued DRAM command to fn.
func WithTrace(fn func(cycle int64, cmd dram.Command)) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.Trace = fn })
	}
}

// WithCore replaces the core configuration.
func WithCore(cc cpu.Config) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.Core = cc })
	}
}

// WithCtrl applies f to the memory-controller configuration (page
// policy, queue capacities, watermarks, ...).
func WithCtrl(f func(*memctrl.Config)) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { f(&c.Ctrl) })
	}
}

// WithQoS installs a multi-tenant QoS policy on every memory
// controller: per-source stack attribution, and optionally bandwidth
// budgets and a real-time priority tier. Sources are core indices. The
// zero Config leaves the controllers byte-identical to a run without
// QoS.
func WithQoS(q qos.Config) Option {
	return func(b *builder) {
		b.mutators = append(b.mutators, func(c *Config) { c.Ctrl.QoS = q })
	}
}

// WithObserver attaches an Observer to the run. Multiple observers are
// notified in registration order.
func WithObserver(o Observer) Option {
	return func(b *builder) { b.observers = append(b.observers, o) }
}

// WithSampleFunc attaches a sample-only observer; a convenience for the
// common streaming case.
func WithSampleFunc(fn func(stacks.Sample)) Option {
	return func(b *builder) { b.observers = append(b.observers, sampleFunc{fn: fn}) }
}

// New assembles the paper's machine for the given DRAM standard: the
// standard supplies geometry, timing and pseudo-channel topology, the
// options supply the workload sources and any deviations from the
// paper's defaults. It replaces Config field-literal construction:
//
//	sys, err := sim.New(standard.Default(),
//	    sim.WithSources(srcs...),
//	    sim.WithMaxMemCycles(400_000),
//	    sim.WithObserver(obs))
//
// The base configuration is DefaultFor(std, len(sources)); options
// apply in order on top of it.
func New(std standard.Standard, opts ...Option) (*System, error) {
	b := &builder{}
	for _, o := range opts {
		o(b)
	}
	cfg := b.cfg
	if !b.cfgSet {
		cfg = DefaultFor(std, len(b.sources))
	}
	for _, m := range b.mutators {
		m(&cfg)
	}
	if len(b.sources) == 0 {
		return nil, fmt.Errorf("sim: New requires WithSources")
	}
	s, err := newSystem(cfg, b.sources)
	if err != nil {
		return nil, err
	}
	s.observers = b.observers
	return s, nil
}
