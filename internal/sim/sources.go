package sim

import (
	"dramstacks/internal/cpu"
	"dramstacks/internal/workload"
)

// SyntheticSources builds the per-core instruction streams for the
// paper's synthetic experiments: each core works a private region of the
// pattern (the paper's cores "access different parts of the sequential
// pattern"), staggered by one DRAM page so concurrent streams start in
// different bank groups.
func SyntheticSources(pat workload.Pattern, cores int, storeFrac float64) []cpu.Source {
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		var wc workload.SyntheticConfig
		switch pat {
		case workload.Sequential:
			wc = workload.DefaultSequential()
		case workload.Strided:
			wc = workload.DefaultStrided()
		default:
			wc = workload.DefaultRandom()
		}
		wc.StoreFrac = storeFrac
		wc.BaseAddr = uint64(i)*(256<<20) + uint64(i)*8192
		wc.Seed = int64(i + 1)
		sources = append(sources, workload.MustSynthetic(wc))
	}
	return sources
}
