package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dramstacks/internal/cpu"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/qos"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

// randSpec is one randomly drawn simulation configuration. Everything
// is derived deterministically from the test's seeded generator, so a
// failure reproduces by index.
type randSpec struct {
	name    string
	cfg     Config
	seed    int64 // per-spec workload seed
	cores   int
	pattern workload.Pattern
	// per-core workload shape, drawn per spec
	footprint int
	workPerOp int
	chains    int
	branch    int
	mispred   float64
	ops       int64 // >0: finite workload, run to completion
}

// drawSpec samples one spec from the cross product the issue names —
// standards × cores × page policy — plus the workload and observation
// axes the golden tests cover by hand (patterns, footprints, branch
// behavior, warmup, sampling, finite runs, channel counts).
func drawSpec(rng *rand.Rand, i int) randSpec {
	names := standard.Names()
	stdName := names[rng.Intn(len(names))]
	std := standard.MustLookup(stdName)

	sp := randSpec{
		seed:      rng.Int63n(1 << 30),
		cores:     1 + rng.Intn(4),
		pattern:   workload.Sequential,
		footprint: 1 << 14, // cache resident
		workPerOp: rng.Intn(61),
	}
	if rng.Intn(2) == 0 {
		sp.pattern = workload.Random
		sp.chains = 1 + rng.Intn(4)
	}
	switch rng.Intn(3) {
	case 1:
		sp.footprint = 1 << 20 // LLC-sized: boundary traffic
	case 2:
		sp.footprint = 1 << 26 // DRAM-sized: saturating traffic
	}
	if rng.Intn(2) == 0 {
		sp.branch = 2 + rng.Intn(7)
		sp.mispred = float64(rng.Intn(11)) / 20 // 0 .. 0.5
	}

	cfg := DefaultFor(std, sp.cores)
	if rng.Intn(2) == 0 {
		cfg.Ctrl.Policy = memctrl.ClosedPage
	}
	if std.SubChannels <= 1 && rng.Intn(3) == 0 {
		cfg.Channels = 2
	}
	cfg.MaxMemCycles = 6_000 + rng.Int63n(10_000)
	if rng.Intn(4) == 0 {
		cfg.WarmupMemCycles = cfg.MaxMemCycles / int64(2+rng.Intn(3))
	}
	if rng.Intn(2) == 0 {
		cfg.SampleInterval = cfg.MaxMemCycles / int64(3+rng.Intn(5))
		if rng.Intn(2) == 0 {
			cfg.OnSample = func(stacks.Sample) {} // replaced per run by goldenCompare
		}
	}
	if rng.Intn(4) == 0 {
		cfg.PrewarmOps = 1 << 12
	}
	// QoS policies join the randomized space: tracking-only, regulated,
	// prioritized and combined configurations must keep the two loops
	// field-identical, including the per-source stacks and the held-read
	// release schedule at window boundaries.
	if rng.Intn(3) == 0 {
		q := qos.Config{
			Sources: sp.cores,
			Window:  512 + rng.Int63n(4096),
			Budget:  make([]int, sp.cores),
			RT:      make([]bool, sp.cores),
		}
		for c := 0; c < sp.cores; c++ {
			if rng.Intn(2) == 0 {
				q.Budget[c] = 1 + rng.Intn(64)
			}
			q.RT[c] = rng.Intn(4) == 0
		}
		if rng.Intn(4) == 0 {
			q.Aging = 1_000 + rng.Int63n(8_000)
		}
		if err := q.Validate(); err != nil {
			panic(err) // generator bug, not a simulator property
		}
		cfg.Ctrl.QoS = q
	}
	// Occasionally run a finite workload to completion instead, covering
	// the done() exit and the post-drain idle tail.
	if sp.cores <= 2 && rng.Intn(5) == 0 {
		sp.ops = 300 + rng.Int63n(1_200)
		cfg.MaxMemCycles = 0
	}
	sp.cfg = cfg
	sp.name = fmt.Sprintf("%03d-%s-%dc-%s-%s", i, stdName, sp.cores,
		sp.pattern, cfg.Ctrl.Policy)
	if cfg.Ctrl.QoS.Enabled() {
		sp.name += "-qos"
	}
	return sp
}

// sources builds a fresh, identical source set for the spec; every
// call returns streams with the same seeds, as goldenCompare requires.
func (sp randSpec) sources() []cpu.Source {
	var out []cpu.Source
	for c := 0; c < sp.cores; c++ {
		out = append(out, workload.MustSynthetic(workload.SyntheticConfig{
			Pattern:        sp.pattern,
			WorkPerOp:      sp.workPerOp,
			Chains:         sp.chains,
			FootprintBytes: uint64(sp.footprint),
			StrideBytes:    64,
			BranchEvery:    sp.branch,
			MispredictRate: sp.mispred,
			Ops:            sp.ops,
			BaseAddr:       uint64(c) * (256 << 20),
			Seed:           sp.seed + int64(c),
		}))
	}
	return out
}

// TestGoldenRandomizedSpecs upgrades the hand-picked golden-equivalence
// cases into a generative oracle: ~50 seeded random specs across the
// registry's standards, core counts and page policies must produce
// field-identical Results (and sample streams) in the event-wheel loop
// and the reference per-cycle loop. The generator is seeded, so every
// run checks the same 50 specs and a failure names the one to replay.
// The CI race job runs this under -race via the Golden pattern.
func TestGoldenRandomizedSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized golden specs skipped in -short")
	}
	rng := rand.New(rand.NewSource(0x5eed7))
	for i := 0; i < 50; i++ {
		sp := drawSpec(rng, i)
		t.Run(sp.name, func(t *testing.T) {
			goldenCompare(t, sp.name, sp.cfg, sp.sources)
		})
	}
}

// drawHostileSpec samples configurations built to break the batching
// fast paths at their seams: op budgets that end a stream mid-batch or
// leave a 1-instruction tail, branch cadences coprime to the batch
// size, prime sample intervals that land cuts inside fast-forward and
// replay spans, and prewarm quotas that straddle a refill boundary.
func drawHostileSpec(rng *rand.Rand, i int) randSpec {
	// Around the 64-instruction batch: exact multiples, one-off
	// stragglers, and streams shorter than a single batch.
	hostileOps := []int64{1, 2, 63, 64, 65, 127, 128, 129, 191, 257, 321, 1025}
	// Primes (and near-primes) well below MaxMemCycles: cuts land inside
	// idle skips and controller replay spans rather than on their edges.
	hostileIntervals := []int64{61, 127, 251, 509, 1021, 2039}

	sp := randSpec{
		seed:      rng.Int63n(1 << 30),
		cores:     1 + rng.Intn(3),
		pattern:   workload.Sequential,
		footprint: 1 << 20,
		workPerOp: rng.Intn(21),
	}
	if rng.Intn(2) == 0 {
		sp.pattern = workload.Random
		sp.chains = 1 + rng.Intn(3)
	}
	if rng.Intn(2) == 0 {
		sp.footprint = 1 << 26 // DRAM-sized: saturating traffic
	}
	// Branch cadence coprime to the batch size, so KindBranch items
	// drift across batch boundaries instead of repeating in phase.
	if rng.Intn(2) == 0 {
		sp.branch = []int{3, 5, 7, 9, 11, 13}[rng.Intn(6)]
		sp.mispred = float64(1+rng.Intn(10)) / 20
	}

	cfg := DefaultFor(standard.Default(), sp.cores)
	cfg.MaxMemCycles = 6_000 + rng.Int63n(6_000)
	cfg.SampleInterval = hostileIntervals[rng.Intn(len(hostileIntervals))]
	switch rng.Intn(3) {
	case 0:
		// Mid-batch Done: the finite stream ends inside a batch (or as a
		// 1-instruction tail), and the run drains to completion.
		sp.ops = hostileOps[rng.Intn(len(hostileOps))]
		cfg.MaxMemCycles = 0
	case 1:
		// Prewarm quota straddling a refill: the feed must hand back
		// exactly quota items even when that retires it mid-batch.
		cfg.PrewarmOps = []int64{1, 63, 64, 65, 127, 129}[rng.Intn(6)]
	}
	if rng.Intn(4) == 0 {
		cfg.WarmupMemCycles = cfg.MaxMemCycles / 3
	}
	sp.cfg = cfg
	sp.name = fmt.Sprintf("hostile-%03d-%dc-%s-ops%d-si%d", i, sp.cores,
		sp.pattern, sp.ops, cfg.SampleInterval)
	return sp
}

// TestGoldenBatchHostileSpecs points the two-loop oracle at the batching
// seams: every spec from drawHostileSpec must still produce
// field-identical Results and sample streams in the event-wheel loop
// and the reference per-cycle loop. The CI race job runs this under
// -race via the Golden pattern.
func TestGoldenBatchHostileSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("batch-hostile golden specs skipped in -short")
	}
	rng := rand.New(rand.NewSource(0xba7c4))
	for i := 0; i < 16; i++ {
		sp := drawHostileSpec(rng, i)
		t.Run(sp.name, func(t *testing.T) {
			goldenCompare(t, sp.name, sp.cfg, sp.sources)
		})
	}
}

// TestSampleIntervalInvariance pins the sampler-cut behavior at
// fast-forward boundaries: cutting through-time samples is observation,
// so the simulated outcome — every Result field except the sample
// streams themselves — must be bit-identical whatever SampleInterval
// is, including intervals that land a cut exactly on the final cycle
// of an idle skip or replay span. A drifting stack or statistic under a
// changed interval would mean a span was split differently by the cut
// (the off-by-one this test exists to catch).
func TestSampleIntervalInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("sample-interval invariance skipped in -short")
	}
	rng := rand.New(rand.NewSource(0x5a41e))
	for i := 0; i < 10; i++ {
		sp := drawSpec(rng, i)
		sp.cfg.OnSample = nil
		run := func(interval int64) *Result {
			c := sp.cfg
			c.SampleInterval = interval
			sys, err := NewFromConfig(c, sp.sources())
			if err != nil {
				t.Fatalf("%s: %v", sp.name, err)
			}
			res := sys.Run()
			// Strip everything observation-only before comparing.
			res.Cfg = Config{}
			res.BWSamples = nil
			res.CycleSamples = nil
			return res
		}
		base := run(0)
		cycles := base.MemCycles
		intervals := []int64{1 + rng.Int63n(97), 509}
		if cycles > 1 {
			// An interval dividing the run puts a cut on the very last
			// cycle; an interval of cycles-1 puts one right before it.
			intervals = append(intervals, cycles, cycles-1, cycles/2)
		}
		for _, iv := range intervals {
			if iv <= 0 {
				continue
			}
			got := run(iv)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s: Result changed when sampling every %d cycles", sp.name, iv)
			}
		}
	}
}
