package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"dramstacks/internal/cpu"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/qos"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

// randSpec is one randomly drawn simulation configuration. Everything
// is derived deterministically from the test's seeded generator, so a
// failure reproduces by index.
type randSpec struct {
	name    string
	cfg     Config
	seed    int64 // per-spec workload seed
	cores   int
	pattern workload.Pattern
	// per-core workload shape, drawn per spec
	footprint int
	workPerOp int
	chains    int
	branch    int
	mispred   float64
	ops       int64 // >0: finite workload, run to completion
}

// drawSpec samples one spec from the cross product the issue names —
// standards × cores × page policy — plus the workload and observation
// axes the golden tests cover by hand (patterns, footprints, branch
// behavior, warmup, sampling, finite runs, channel counts).
func drawSpec(rng *rand.Rand, i int) randSpec {
	names := standard.Names()
	stdName := names[rng.Intn(len(names))]
	std := standard.MustLookup(stdName)

	sp := randSpec{
		seed:      rng.Int63n(1 << 30),
		cores:     1 + rng.Intn(4),
		pattern:   workload.Sequential,
		footprint: 1 << 14, // cache resident
		workPerOp: rng.Intn(61),
	}
	if rng.Intn(2) == 0 {
		sp.pattern = workload.Random
		sp.chains = 1 + rng.Intn(4)
	}
	switch rng.Intn(3) {
	case 1:
		sp.footprint = 1 << 20 // LLC-sized: boundary traffic
	case 2:
		sp.footprint = 1 << 26 // DRAM-sized: saturating traffic
	}
	if rng.Intn(2) == 0 {
		sp.branch = 2 + rng.Intn(7)
		sp.mispred = float64(rng.Intn(11)) / 20 // 0 .. 0.5
	}

	cfg := DefaultFor(std, sp.cores)
	if rng.Intn(2) == 0 {
		cfg.Ctrl.Policy = memctrl.ClosedPage
	}
	if std.SubChannels <= 1 && rng.Intn(3) == 0 {
		cfg.Channels = 2
	}
	cfg.MaxMemCycles = 6_000 + rng.Int63n(10_000)
	if rng.Intn(4) == 0 {
		cfg.WarmupMemCycles = cfg.MaxMemCycles / int64(2+rng.Intn(3))
	}
	if rng.Intn(2) == 0 {
		cfg.SampleInterval = cfg.MaxMemCycles / int64(3+rng.Intn(5))
		if rng.Intn(2) == 0 {
			cfg.OnSample = func(stacks.Sample) {} // replaced per run by goldenCompare
		}
	}
	if rng.Intn(4) == 0 {
		cfg.PrewarmOps = 1 << 12
	}
	// QoS policies join the randomized space: tracking-only, regulated,
	// prioritized and combined configurations must keep the two loops
	// field-identical, including the per-source stacks and the held-read
	// release schedule at window boundaries.
	if rng.Intn(3) == 0 {
		q := qos.Config{
			Sources: sp.cores,
			Window:  512 + rng.Int63n(4096),
			Budget:  make([]int, sp.cores),
			RT:      make([]bool, sp.cores),
		}
		for c := 0; c < sp.cores; c++ {
			if rng.Intn(2) == 0 {
				q.Budget[c] = 1 + rng.Intn(64)
			}
			q.RT[c] = rng.Intn(4) == 0
		}
		if rng.Intn(4) == 0 {
			q.Aging = 1_000 + rng.Int63n(8_000)
		}
		if err := q.Validate(); err != nil {
			panic(err) // generator bug, not a simulator property
		}
		cfg.Ctrl.QoS = q
	}
	// Occasionally run a finite workload to completion instead, covering
	// the done() exit and the post-drain idle tail.
	if sp.cores <= 2 && rng.Intn(5) == 0 {
		sp.ops = 300 + rng.Int63n(1_200)
		cfg.MaxMemCycles = 0
	}
	sp.cfg = cfg
	sp.name = fmt.Sprintf("%03d-%s-%dc-%s-%s", i, stdName, sp.cores,
		sp.pattern, cfg.Ctrl.Policy)
	if cfg.Ctrl.QoS.Enabled() {
		sp.name += "-qos"
	}
	return sp
}

// sources builds a fresh, identical source set for the spec; every
// call returns streams with the same seeds, as goldenCompare requires.
func (sp randSpec) sources() []cpu.Source {
	var out []cpu.Source
	for c := 0; c < sp.cores; c++ {
		out = append(out, workload.MustSynthetic(workload.SyntheticConfig{
			Pattern:        sp.pattern,
			WorkPerOp:      sp.workPerOp,
			Chains:         sp.chains,
			FootprintBytes: uint64(sp.footprint),
			StrideBytes:    64,
			BranchEvery:    sp.branch,
			MispredictRate: sp.mispred,
			Ops:            sp.ops,
			BaseAddr:       uint64(c) * (256 << 20),
			Seed:           sp.seed + int64(c),
		}))
	}
	return out
}

// TestGoldenRandomizedSpecs upgrades the hand-picked golden-equivalence
// cases into a generative oracle: ~50 seeded random specs across the
// registry's standards, core counts and page policies must produce
// field-identical Results (and sample streams) in the event-wheel loop
// and the reference per-cycle loop. The generator is seeded, so every
// run checks the same 50 specs and a failure names the one to replay.
// The CI race job runs this under -race via the Golden pattern.
func TestGoldenRandomizedSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized golden specs skipped in -short")
	}
	rng := rand.New(rand.NewSource(0x5eed7))
	for i := 0; i < 50; i++ {
		sp := drawSpec(rng, i)
		t.Run(sp.name, func(t *testing.T) {
			goldenCompare(t, sp.name, sp.cfg, sp.sources)
		})
	}
}
