package sim

import (
	"testing"

	"dramstacks/internal/cpu"
	"dramstacks/internal/cyclestack"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

// bankHammer emits loads that ping-pong between two rows of one bank —
// the worst case for an open-page controller (every access conflicts).
type bankHammer struct {
	lcg uint64
}

func (b *bankHammer) Next() (cpu.Instr, bool) {
	// Rows of bank 0 are 128 KB apart in the default mapping (the 8 KB
	// page times 16 banks). Random row over a 4096-row (32 MB, beyond
	// the LLC) region of the single bank, random column: every DRAM
	// access conflicts with whatever row the bank has open.
	b.lcg = b.lcg*6364136223846793005 + 1442695040888963407
	row := (b.lcg >> 40) % 4096
	col := (b.lcg >> 33) % 128
	return cpu.Instr{Work: 4, Kind: cpu.KindLoad, Addr: row*128*1024 + col*64}, true
}

// TestBankHammerStress: all cores fight over one bank with conflicting
// rows. The system must not deadlock or starve, the stacks must keep
// their invariants, and the signature must be the paper's bank-conflict
// one: a large bank-idle component with high queueing latency.
func TestBankHammerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	cfg := Default(4)
	cfg.MaxMemCycles = 150_000
	var sources []cpu.Source
	for i := 0; i < 4; i++ {
		sources = append(sources, &bankHammer{lcg: uint64(i + 1)})
	}
	sys, err := NewFromConfig(cfg, sources)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		t.Fatalf("timing violation: %v", res.Violations[0])
	}
	if err := res.BW.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if res.CtrlStats.IssuedReads == 0 {
		t.Fatal("hammer starved completely")
	}
	// Random rows of one bank: page hits collapse...
	if hr := res.CtrlStats.PageHitRate(); hr > 0.3 {
		t.Errorf("page hit rate = %v, want low under random-row hammering", hr)
	}
	// ...and the conflict signature appears: with a single busy bank,
	// bank-idle is the dominant lost-bandwidth component.
	g := res.BWGBps()
	if g[stacks.BWBankIdle] < 4 {
		t.Errorf("bank-idle = %v GB/s, want the dominant loss", g[stacks.BWBankIdle])
	}
	l := res.LatNS()
	if l[stacks.LatPreAct]+l[stacks.LatQueue] < 20 {
		t.Errorf("pre/act+queue latency = %v ns, want large under conflicts",
			l[stacks.LatPreAct]+l[stacks.LatQueue])
	}
}

// TestTinyQueuesNoDeadlock: pathologically small controller queues with
// heavy multi-core traffic must only throttle, never wedge.
func TestTinyQueuesNoDeadlock(t *testing.T) {
	cfg := Default(4)
	cfg.Ctrl.ReadQueueCap = 4
	cfg.Ctrl.WriteQueueCap = 4
	cfg.Ctrl.WriteHi = 3
	cfg.Ctrl.WriteLo = 1
	cfg.MaxMemCycles = 80_000
	cfg.PrewarmOps = 1 << 19 // dirty working set: evictions write back
	sys, err := NewFromConfig(cfg, SyntheticSources(workload.Random, 4, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		t.Fatalf("timing violation: %v", res.Violations[0])
	}
	if res.CtrlStats.IssuedReads == 0 || res.CtrlStats.IssuedWrites == 0 {
		t.Errorf("tiny queues starved: %d reads / %d writes",
			res.CtrlStats.IssuedReads, res.CtrlStats.IssuedWrites)
	}
	if err := res.BW.CheckSum(); err != nil {
		t.Error(err)
	}
}

// TestSingleLineHammer: every core loads the same line over and over —
// after the first fill everything hits in L1 and DRAM goes idle.
func TestSingleLineHammer(t *testing.T) {
	cfg := Default(2)
	cfg.MaxMemCycles = 30_000
	src := func() cpu.Source {
		return &workload.Slice{Instrs: repeatLoad(0x1000, 5000)}
	}
	sys, err := NewFromConfig(cfg, []cpu.Source{src(), src()})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.CtrlStats.IssuedReads > 4 {
		t.Errorf("issued %d DRAM reads for one hot line, want ~1", res.CtrlStats.IssuedReads)
	}
	if idle := res.BW.Fraction(stacks.BWIdle); idle < 0.9 {
		t.Errorf("idle fraction = %v, want nearly all", idle)
	}
}

func repeatLoad(addr uint64, n int) []cpu.Instr {
	out := make([]cpu.Instr, n)
	for i := range out {
		out[i] = cpu.Instr{Work: 2, Kind: cpu.KindLoad, Addr: addr}
	}
	return out
}

// TestStreamTriadShape: triad's DRAM traffic is 3:1 reads to writes
// (two source arrays plus the destination's read-for-ownership versus
// its writeback), and the write bandwidth is substantial.
func TestStreamTriadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system test skipped in -short")
	}
	cfg := Default(4)
	cfg.MaxMemCycles = 150_000
	cfg.PrewarmOps = 1 << 19
	sys, err := NewFromConfig(cfg, workload.StreamSources(workload.StreamTriad, 4))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		t.Fatal(res.Violations[0])
	}
	r, w := res.CtrlStats.IssuedReads, res.CtrlStats.IssuedWrites
	if w == 0 {
		t.Fatal("triad produced no DRAM writes")
	}
	ratio := float64(r) / float64(w)
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("read:write = %.2f, want about 3 (b, c, RFO(a) : writeback(a))", ratio)
	}
	if res.BWGBps()[stacks.BWWrite] < 1 {
		t.Errorf("write bandwidth = %v GB/s, want substantial", res.BWGBps()[stacks.BWWrite])
	}
}

// TestInterferenceShowsInVictimCycleStack: a pointer-chasing "victim"
// core running alone has almost pure dram-latency stalls; adding three
// streaming aggressor cores pushes its stalls into dram-queue — the
// per-core cycle stacks attribute the interference to queueing, which is
// how the paper's stacks separate "memory is slow" from "memory is
// contended".
func TestInterferenceShowsInVictimCycleStack(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system test skipped in -short")
	}
	victim := func() cpu.Source {
		wc := workload.DefaultRandom()
		wc.BaseAddr = 0
		return workload.MustSynthetic(wc)
	}
	queueShare := func(sources []cpu.Source) float64 {
		cfg := Default(len(sources))
		cfg.MaxMemCycles = 150_000
		sys, err := NewFromConfig(cfg, sources)
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		if len(res.Violations) > 0 {
			t.Fatal(res.Violations[0])
		}
		cs := res.CycleStacks[0] // the victim is always core 0
		dram := cs.Cycles[cyclestack.DramLatency] + cs.Cycles[cyclestack.DramQueue]
		if dram == 0 {
			t.Fatal("victim had no dram stalls")
		}
		return cs.Cycles[cyclestack.DramQueue] / dram
	}

	alone := queueShare([]cpu.Source{victim()})

	mixed := []cpu.Source{victim()}
	for i := 1; i < 4; i++ {
		wc := workload.DefaultSequential()
		wc.BaseAddr = uint64(i)*(512<<20) + uint64(i)*8192
		wc.Seed = int64(i)
		mixed = append(mixed, workload.MustSynthetic(wc))
	}
	contended := queueShare(mixed)

	if alone > 0.25 {
		t.Errorf("victim alone has queue share %.2f, want small", alone)
	}
	if contended < alone+0.1 {
		t.Errorf("contended queue share %.2f not clearly above alone %.2f", contended, alone)
	}
}
