// Package sim assembles the full simulated machine of the paper's §VI:
// 1–8 out-of-order cores with private L1/L2 caches and a shared LLC,
// attached to a DDR4-2400 memory controller with FR-FCFS scheduling,
// while the bandwidth, latency and cycle stacks are collected.
//
// The master clock is the memory clock (1.2 GHz); cores run CPUMult CPU
// cycles per memory cycle (3, i.e. 3.6 GHz).
package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"dramstacks/internal/addrmap"
	"dramstacks/internal/cache"
	"dramstacks/internal/cpu"
	"dramstacks/internal/cyclestack"
	"dramstacks/internal/dram"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/sched"
	"dramstacks/internal/stacks"
)

// Mapping selects the address-indexing scheme (paper Fig. 5).
type Mapping uint8

const (
	// MapDefault is the page-local scheme of Fig. 5(a).
	MapDefault Mapping = iota
	// MapInterleaved is the cache-line-interleaved scheme of Fig. 5(b).
	MapInterleaved
	// MapXOR is the default scheme with permutation-based (XOR) bank
	// hashing: same-bank row conflicts spread over the banks while page
	// locality is preserved.
	MapXOR
)

// String names the mapping as in Fig. 6 ("def" / "int"), plus "xor".
func (m Mapping) String() string {
	switch m {
	case MapInterleaved:
		return "int"
	case MapXOR:
		return "xor"
	default:
		return "def"
	}
}

// Config describes a full-system experiment.
//
// Constructing a Config by field literal is deprecated for callers
// outside this package: assemble systems with New(standard, ...Option)
// instead, which starts from DefaultFor and applies options. The struct
// remains exported (and DefaultFor remains the base-configuration
// helper) so existing spec-driven code keeps working via WithConfig.
type Config struct {
	Cores   int
	CPUMult int // CPU cycles per memory cycle
	// Channels is the number of memory channels, each with its own
	// controller and stack accounting (0 means 1). With more than one
	// channel, consecutive cache lines interleave across channels and
	// the per-controller stacks are aggregated in the Result, as the
	// paper describes (§IV).
	Channels int
	// SubChannels is the number of independently timed sub-devices (HBM
	// pseudo-channels) behind each addressed channel (0 means 1). Each
	// sub-channel gets its own controller, device and stacks, exactly
	// like a channel; the sub-channel select bit sits directly above the
	// cache-line offset in the address map. Standards set this via
	// DefaultFor (2 for hbm2-2000, 1 otherwise).
	SubChannels int

	Core cpu.Config
	Hier cache.HierConfig
	Ctrl memctrl.Config

	Geom dram.Geometry
	Tim  dram.Timing
	Map  Mapping

	// PrewarmOps functionally pre-warms the caches with this many memory
	// operations per core from the head of its instruction stream before
	// timing starts (no statistics, no DRAM traffic). Without it, runs
	// shorter than an LLC fill see no steady-state writebacks.
	PrewarmOps int64
	// MaxMemCycles stops the run (0 = run until the workload finishes).
	MaxMemCycles int64
	// WarmupMemCycles are excluded from the reported stacks.
	WarmupMemCycles int64
	// SampleInterval cuts through-time samples every so many memory
	// cycles (0 disables).
	SampleInterval int64
	// Verify replays every DRAM command through the independent timing
	// verifier (cheap; recommended in tests and experiments).
	Verify bool
	// Trace, if non-nil, receives every issued DRAM command (e.g. a
	// trace.Recorder hook for offline stack construction).
	Trace func(cycle int64, cmd dram.Command)
	// OnSample, if non-nil, receives each through-time sample (aggregated
	// over all channels) as soon as it is cut, so long-running consumers
	// (e.g. the dramstacksd service) can stream progress while the
	// simulation is still executing. Requires SampleInterval > 0.
	//
	// Deprecated: attach an Observer (WithObserver / WithSampleFunc)
	// instead; OnSample remains as a shim for existing callers.
	OnSample func(s stacks.Sample)
}

// Default returns the paper's machine configuration for the given core
// count, with a cycle budget the caller usually overrides. The memory
// is the default standard from the registry (ddr4-2400, the exact
// configuration the paper evaluates).
func Default(cores int) Config {
	return DefaultFor(standard.Default(), cores)
}

// DefaultFor returns the paper's machine configuration for the given
// core count attached to the given DRAM standard: the standard supplies
// geometry, timing and pseudo-channel topology; everything CPU-side
// stays the paper's machine.
func DefaultFor(std standard.Standard, cores int) Config {
	cfg := Config{
		Cores:        cores,
		CPUMult:      3,
		Core:         cpu.DefaultConfig(),
		Hier:         cache.DefaultHierConfig(cores),
		Ctrl:         memctrl.DefaultConfig(),
		Geom:         std.Geometry,
		Tim:          std.Timing,
		MaxMemCycles: 2_000_000,
		Verify:       true,
	}
	if std.SubChannels > 1 {
		cfg.SubChannels = std.SubChannels
	}
	return cfg
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: cores must be positive, got %d", c.Cores)
	}
	if c.CPUMult <= 0 {
		return fmt.Errorf("sim: CPU multiplier must be positive, got %d", c.CPUMult)
	}
	if c.Hier.Cores != c.Cores {
		return fmt.Errorf("sim: hierarchy configured for %d cores, system has %d", c.Hier.Cores, c.Cores)
	}
	if c.Channels < 0 || c.Channels > 8 {
		return fmt.Errorf("sim: channels must be in 0..8, got %d", c.Channels)
	}
	if c.SubChannels < 0 || c.SubChannels > 4 {
		return fmt.Errorf("sim: sub-channels must be in 0..4, got %d", c.SubChannels)
	}
	if d := c.devices(); d > 16 {
		return fmt.Errorf("sim: channels x sub-channels must be at most 16 devices, got %d", d)
	}
	if c.MaxMemCycles < 0 || c.WarmupMemCycles < 0 {
		return fmt.Errorf("sim: negative cycle budget")
	}
	if c.MaxMemCycles > 0 && c.WarmupMemCycles >= c.MaxMemCycles {
		return fmt.Errorf("sim: warmup %d must be below the cycle budget %d",
			c.WarmupMemCycles, c.MaxMemCycles)
	}
	return c.Core.Validate()
}

// devices returns the number of independently timed memory devices the
// configuration instantiates: channels × sub-channels (zeros mean 1).
func (c Config) devices() int {
	ch := c.Channels
	if ch == 0 {
		ch = 1
	}
	sub := c.SubChannels
	if sub == 0 {
		sub = 1
	}
	return ch * sub
}

// System is an assembled machine ready to Run.
type System struct {
	cfg      Config
	channels int
	devs     []*dram.Device
	ctrls    []*memctrl.Controller
	hier     *cache.Hierarchy
	cores    []*cpu.Core
	mapper   addrmap.Mapper

	verifiers  []*dram.Verifier
	violations []dram.Violation

	memCycle int64

	// Idle-cycle fast-forwarding state (unused when slow is set).
	// Controllers are ticked lazily: ctrlTicked is the last memory cycle
	// each controller has simulated, ctrlNext the next cycle it must
	// simulate for real (everything in between is provably idle and is
	// replayed in closed form by catchUpCtrl). slow selects the
	// per-cycle reference loop (the -tags=slowtick default).
	ctrlTicked []int64
	ctrlNext   []int64
	slow       bool

	// Sprint scratch (see sprint): per-core next-event cycle and the
	// first CPU cycle each core has not yet simulated or replayed.
	coreNext []int64
	coreFrom []int64

	// wheel is the event scheduler of the fast loop: controller actors
	// (IDs 0..channels-1) carry each controller's next real tick cycle
	// (including its refresh deadline when idle), and one actor each for
	// the budget, warmup and sampler boundaries. The main loop pops due
	// controllers per cycle and jumps straight to wheel.Earliest() when
	// every core and the cache hierarchy are provably inert.
	wheel *sched.Wheel

	// readDone is the single pre-bound read-completion callback shared
	// by every memory request (the per-request waiter travels in
	// Request.Meta), so enqueuing allocates no closures.
	readDone func(*memctrl.Request, int64)

	// memActive flags that a request reached a memory controller since
	// it was last cleared; the sprint loop uses it to detect that the
	// memory system woke up and per-cycle controller phases are needed
	// again.
	memActive bool

	observers []Observer

	cycleSamples []cyclestack.Stack
	lastCycle    cyclestack.Stack
	nextCut      int64
	published    int // per-channel samples already delivered to OnSample
	cancelled    bool

	warmBW     []stacks.BandwidthStack
	warmLat    []stacks.LatencyStack
	warmSrcBW  [][]stacks.SourceStack
	warmSrcLat [][]stacks.LatencyStack
	warmed     bool
}

// NewFromConfig assembles a system from a fully built Config running
// the given per-core instruction sources (len(sources) must equal
// cfg.Cores).
//
// Deprecated: use New(standard, WithSources(...), ...) — or, for
// spec-driven callers that already hold a Config, New(standard,
// WithConfig(cfg), WithSources(...)).
func NewFromConfig(cfg Config, sources []cpu.Source) (*System, error) {
	return newSystem(cfg, sources)
}

// newSystem assembles a system; New and NewFromConfig front it.
func newSystem(cfg Config, sources []cpu.Source) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d sources for %d cores", len(sources), cfg.Cores)
	}

	channels := cfg.devices()
	sub := cfg.SubChannels
	if sub == 0 {
		sub = 1
	}
	mapper, err := addrmap.Select(cfg.Geom, sub, cfg.Channels, cfg.Map.String())
	if err != nil {
		return nil, err
	}

	s := &System{cfg: cfg, channels: channels, mapper: mapper}
	for ch := 0; ch < channels; ch++ {
		dev := dram.NewDevice(cfg.Geom, cfg.Tim)
		s.devs = append(s.devs, dev)
		var ver *dram.Verifier
		if cfg.Verify {
			ver = dram.NewVerifier(cfg.Geom, cfg.Tim)
		}
		s.verifiers = append(s.verifiers, ver)
		if cfg.Verify || cfg.Trace != nil {
			dev.Trace = func(cycle int64, cmd dram.Command) {
				if ver != nil {
					if vs := ver.Check(cycle, cmd); vs != nil {
						s.violations = append(s.violations, vs...)
					}
				}
				if cfg.Trace != nil {
					cfg.Trace(cycle, cmd)
				}
			}
		}
		ctrlCfg := cfg.Ctrl
		ctrlCfg.SampleInterval = cfg.SampleInterval
		// The simulator never retains a *Request past its completion
		// callback, so the controllers recycle request objects.
		ctrlCfg.Recycle = true
		ctrl, err := memctrl.New(dev, mapper, ctrlCfg)
		if err != nil {
			return nil, err
		}
		s.ctrls = append(s.ctrls, ctrl)
	}
	s.slow = SlowTick
	s.ctrlTicked = make([]int64, channels)
	s.ctrlNext = make([]int64, channels)
	s.coreNext = make([]int64, cfg.Cores)
	s.coreFrom = make([]int64, cfg.Cores)
	s.wheel = sched.New()
	for ch := range s.ctrlTicked {
		s.ctrlTicked[ch] = -1
		s.wheel.Schedule(ch, 0)
	}
	if cfg.MaxMemCycles > 0 {
		s.wheel.Schedule(s.budgetActor(), cfg.MaxMemCycles)
	}
	if cfg.WarmupMemCycles > 0 {
		s.wheel.Schedule(s.warmupActor(), cfg.WarmupMemCycles)
	}
	if cfg.SampleInterval > 0 {
		s.wheel.Schedule(s.samplerActor(), cfg.SampleInterval)
	}
	s.readDone = func(r *memctrl.Request, at int64) {
		r.Meta.(cache.Waiter).MemDone(at*int64(s.cfg.CPUMult), r.QueueFraction(), r.RegFraction())
	}
	s.hier, err = cache.NewHierarchy(cfg.Hier, (*memPort)(s))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Cores; i++ {
		s.cores = append(s.cores, cpu.New(i, cfg.Core, s.hier, sources[i]))
	}
	if cfg.PrewarmOps > 0 {
		s.prewarm(sources)
	}
	return s, nil
}

// Boundary actor IDs in the event wheel (after the controller actors).
func (s *System) budgetActor() int  { return s.channels }
func (s *System) warmupActor() int  { return s.channels + 1 }
func (s *System) samplerActor() int { return s.channels + 2 }

// memPort adapts the memory controller to the cache hierarchy's CPU-cycle
// view of time.
type memPort System

var _ cache.MemPort = (*memPort)(nil)

// route returns the channel index owning addr.
func (s *System) route(addr uint64) int {
	if s.channels == 1 {
		return 0
	}
	return s.mapper.Decode(addr).Channel
}

// enqueueTarget catches the addressed controller up to the cycle just
// before the current one (requests at cycle m arrive after Tick(m-1) and
// before Tick(m)) and marks it due for a real tick this cycle.
func (s *System) enqueueTarget(addr uint64) *memctrl.Controller {
	ch := s.route(addr)
	if !s.slow {
		s.catchUpCtrl(ch, s.memCycle-1)
		if s.ctrlNext[ch] > s.memCycle {
			s.ctrlNext[ch] = s.memCycle
			s.wheel.Schedule(ch, s.memCycle)
		}
	}
	return s.ctrls[ch]
}

// Read implements cache.MemPort. The waiter rides in Request.Meta and
// the completion path goes through the system's single pre-bound
// callback, so a read enqueues without allocating.
func (p *memPort) Read(nowCPU int64, addr uint64, src int, w cache.Waiter) bool {
	s := (*System)(p)
	s.memActive = true
	_, ok := s.enqueueTarget(addr).EnqueueReadFrom(s.memCycle, addr, src, s.readDone, w)
	return ok
}

// Write implements cache.MemPort.
func (p *memPort) Write(nowCPU int64, addr uint64, src int) bool {
	s := (*System)(p)
	s.memActive = true
	_, ok := s.enqueueTarget(addr).EnqueueWriteFrom(s.memCycle, addr, src, nil, nil)
	return ok
}

// Controller exposes the memory controller of channel 0 (for extra
// statistics in single-channel experiments).
func (s *System) Controller() *memctrl.Controller { return s.ctrls[0] }

// Hierarchy exposes the cache hierarchy.
func (s *System) Hierarchy() *cache.Hierarchy { return s.hier }

// Run simulates until the cycle budget is exhausted or every core's
// stream has committed and the memory system has drained.
func (s *System) Run() *Result { return s.RunContext(context.Background()) }

// cancelCheckMask controls how often RunContext polls the context: every
// 1024 memory cycles (~0.85 µs simulated), cheap enough to be invisible
// in profiles while bounding cancellation latency.
const cancelCheckMask = 1<<10 - 1

// SlowTick, when true, makes systems created afterwards use the reference
// per-cycle loop instead of idle-cycle fast-forwarding. It defaults to
// false; building with -tags=slowtick flips the default. Both loops
// produce byte-identical results — the slow loop exists as the golden
// reference for the equivalence tests and for debugging.
var SlowTick = defaultSlowTick

// RunContext simulates like Run but additionally polls ctx every few
// memory cycles. When ctx is cancelled the run stops promptly and
// returns the partial result accumulated so far (with Cancelled set);
// warmup subtraction and through-time sampling behave exactly as on a
// normal early stop, so the partial stacks remain internally consistent.
//
// The loop fast-forwards across provably idle cycles instead of ticking
// every component every DRAM cycle (see doc/PERF.md): idle memory
// controllers are ticked lazily and their idle gaps replayed in closed
// form, and when additionally every core is in a provably repetitive
// state with nothing in flight, whole memory cycles are skipped in bulk.
// Every stack, sample and statistic stays byte-identical to the
// reference per-cycle loop (build with -tags=slowtick, or set SlowTick,
// to run it).
func (s *System) RunContext(ctx context.Context) *Result {
	if s.slow {
		return s.runSlow(ctx)
	}
	done := ctx.Done()
simLoop:
	for {
		if s.sprintable() {
			s.sprint()
		} else {
			m := s.memCycle
			// Sleep is only reachable with a demand miss in flight, so
			// TrySleep is skipped entirely on miss-free cycles.
			canSleep := s.hier.OutstandingMisses() > 0
			for c := 0; c < s.cfg.CPUMult; c++ {
				cpuNow := m*int64(s.cfg.CPUMult) + int64(c)
				for _, core := range s.cores {
					// A core sleeping through a DRAM stall is not ticked;
					// when a memory completion has arrived for it, the
					// skipped stall cycles are replayed in closed form and
					// it resumes here.
					if core.Asleep() {
						if !core.NeedsWake() {
							continue
						}
						core.Resume(cpuNow)
					}
					core.CPUCycle(cpuNow)
					if canSleep {
						core.TrySleep(cpuNow)
					}
				}
				s.hier.Tick(cpuNow)
			}
		}
		m := s.memCycle
		s.wheel.Advance(m)
		for mask := s.wheel.PopDue(); mask != 0; {
			a := bits.TrailingZeros64(mask)
			mask &^= 1 << uint(a)
			if a < s.channels {
				s.catchUpCtrl(a, m)
			}
			// Boundary actors (budget/warmup/sampler) are pure jump
			// clamps; the bookkeeping below observes their cycles.
		}
		s.memCycle++

		// Post-cycle bookkeeping; repeats after a bulk skip so every
		// boundary (warmup, sample cut, budget) is observed at exactly
		// the cycle the per-cycle loop would observe it.
		for {
			if s.cfg.WarmupMemCycles > 0 && !s.warmed && s.memCycle >= s.cfg.WarmupMemCycles {
				s.catchUpAll(s.memCycle - 1)
				s.snapWarm()
				s.wheel.Cancel(s.warmupActor())
			}
			if s.cfg.SampleInterval > 0 && s.memCycle-s.nextCut >= s.cfg.SampleInterval {
				s.catchUpAll(s.memCycle - 1)
				s.cutCycleSample()
				s.publishSamples()
				s.wheel.Schedule(s.samplerActor(), s.nextCut+s.cfg.SampleInterval)
			}
			if s.cfg.MaxMemCycles > 0 && s.memCycle >= s.cfg.MaxMemCycles {
				break simLoop
			}
			if done != nil && s.memCycle&cancelCheckMask == 0 {
				select {
				case <-done:
					s.cancelled = true
				default:
				}
				if s.cancelled {
					break simLoop
				}
			}
			if s.done() {
				break simLoop
			}
			skip := s.skipWindow()
			if skip <= s.memCycle {
				break
			}
			from := s.memCycle * int64(s.cfg.CPUMult)
			n := (skip - s.memCycle) * int64(s.cfg.CPUMult)
			for _, core := range s.cores {
				core.FastForward(from, n)
			}
			s.memCycle = skip
		}
	}
	s.catchUpAll(s.memCycle - 1)
	for _, ctrl := range s.ctrls {
		ctrl.FinishSampling()
	}
	s.finishCycleSample()
	s.publishSamples()
	s.notifyDone()
	return s.result()
}

// catchUpCtrl brings controller ch up to date through memory cycle
// target: quiet gaps (cycles before the controller's next real event,
// pure refresh waits followed by idle) are replayed in closed form,
// everything else is ticked normally. Replaying later is byte-identical
// to ticking inline because no requests arrived in between (enqueues
// catch the controller up first), so the controller's evolution over the
// gap is closed.
func (s *System) catchUpCtrl(ch int, target int64) {
	ticked := false
	for s.ctrlTicked[ch] < target {
		t := s.ctrlTicked[ch] + 1
		if next := s.ctrlNext[ch]; t < next {
			end := target
			if next-1 < end {
				end = next - 1
			}
			s.ctrls[ch].FastForwardQuiet(t, end)
			s.ctrlTicked[ch] = end
		} else {
			s.ctrls[ch].Tick(t)
			s.ctrlTicked[ch] = t
			s.ctrlNext[ch] = s.ctrls[ch].NextEventCycle(t)
			ticked = true
		}
	}
	if ticked {
		s.wheel.Schedule(ch, s.ctrlNext[ch])
	}
}

// catchUpAll brings every controller up to date through memory cycle
// target (before anything reads controller-side stacks or samples).
func (s *System) catchUpAll(target int64) {
	for ch := range s.ctrls {
		s.catchUpCtrl(ch, target)
	}
}

// sprintable reports whether the CPU side can run in the sprint loop:
// every memory controller is provably idle until after the next memory
// cycle (the wheel's earliest event — controller work, refresh deadline
// or a warmup/sample/budget boundary — is at least two cycles out) and
// no core is sleeping. Controllers with queued or in-flight requests
// always have their next event at the very next cycle, so a far
// earliest event implies an empty memory system, which in turn implies
// no outstanding misses and no sleeping core to resume.
func (s *System) sprintable() bool {
	if s.wheel.Earliest() <= s.memCycle+1 {
		return false
	}
	for _, core := range s.cores {
		if core.Asleep() {
			return false
		}
	}
	return true
}

// sprint simulates CPU subcycles in a tight loop while the memory
// system is empty: no controller phases, no sleep checks, no per-cycle
// bookkeeping — just core cycles, cache ticks and closed-form
// fast-forwarding at CPU-cycle granularity. It runs until the wheel's
// next event is due, or until a core request reaches a controller
// (memActive), and returns with s.memCycle at the last cycle whose
// subcycles were simulated; the caller proceeds with that cycle's
// controller phase and bookkeeping. Everything it does is byte-
// identical to the per-cycle loop: skipped cycles satisfy the cores'
// NextEventCycle contracts, and the memory cycles it covers have empty
// controller phases by the wheel invariant.
func (s *System) sprint() {
	limit := s.wheel.Earliest() - 1 // cycles m..limit have empty ctrl phases
	mult := int64(s.cfg.CPUMult)
	cpu := s.memCycle * mult
	end := (limit + 1) * mult // first CPU cycle past the sprintable range
	// Stale activity from before this sprint is already handled:
	// sprintable proved every controller idle. Only a wake-up during
	// the sprint matters below.
	s.memActive = false
	nxt, from := s.coreNext, s.coreFrom
	for i, core := range s.cores {
		nxt[i] = core.NextEventCycle(cpu)
		from[i] = cpu
	}
	for {
		// Earliest cycle any core must simulate for real. Cores are
		// independent between memory interactions, so each one is ticked
		// only on its own event cycles; the provably repetitive stretch
		// since from[i] is replayed in closed form right before, and a
		// core with no due event just accrues owed cycles.
		e := int64(math.MaxInt64)
		for _, t := range nxt {
			if t < e {
				e = t
			}
		}
		if e == math.MaxInt64 && !s.hier.Pending() {
			// Every core has committed its stream (NextEventCycle is
			// MaxInt64 only for a Done core) with nothing left in the
			// memory system: the reference loop exits at the next
			// memory-cycle boundary, not at the next wheel event, so
			// finish this memory cycle and let the caller's done() check
			// end the run on exactly the same cycle.
			b := (cpu + mult - 1) / mult * mult
			for i, core := range s.cores {
				if d := b - from[i]; d > 0 {
					core.FastForward(from[i], d)
				}
			}
			s.memCycle = b/mult - 1
			return
		}
		if e > cpu {
			j := e
			if j > end {
				j = end
			}
			if s.hier.Pending() {
				// A writeback backlog still needs its per-cycle retry;
				// core cycles stay owed.
				for cpu < j && !s.memActive {
					s.memCycle = cpu / mult
					s.hier.Tick(cpu)
					cpu++
				}
			} else {
				cpu = j
			}
		}
		if !s.memActive {
			if cpu >= end {
				for i, core := range s.cores {
					if d := end - from[i]; d > 0 {
						core.FastForward(from[i], d)
					}
				}
				s.memCycle = limit
				return
			}
			if e <= cpu {
				// Real cycle for the due cores: memPort timestamps
				// enqueues with s.memCycle, so keep it current.
				s.memCycle = cpu / mult
				for i, core := range s.cores {
					if nxt[i] > cpu {
						continue
					}
					if d := cpu - from[i]; d > 0 {
						core.FastForward(from[i], d)
					}
					core.CPUCycle(cpu)
					from[i] = cpu + 1
					nxt[i] = core.NextEventCycle(cpu + 1)
				}
				s.hier.Tick(cpu)
				cpu++
			}
		}
		if s.memActive {
			// A request reached a controller: replay every core's owed
			// cycles and finish this memory cycle's remaining subcycles,
			// so the caller can run its controller phase exactly like
			// the per-cycle loop.
			for i, core := range s.cores {
				if d := cpu - from[i]; d > 0 {
					core.FastForward(from[i], d)
				}
			}
			for cpu%mult != 0 {
				for _, core := range s.cores {
					core.CPUCycle(cpu)
				}
				s.hier.Tick(cpu)
				cpu++
			}
			s.memActive = false
			return
		}
	}
}

// skipWindow returns the first memory cycle at or after the current one
// that must be simulated cycle by cycle. A return greater than
// s.memCycle means every cycle in between is provably inert on all
// sides: every channel is idle (no queued, in-flight or refresh-pending
// work), the cache hierarchy has nothing in flight, and every core is in
// a provably repetitive state — those cycles are charged in closed form
// and skipped. The window is clamped to the next warmup, sample, budget
// and core-resume boundary so bookkeeping fires on exactly the same
// cycles as the per-cycle loop.
func (s *System) skipWindow() int64 {
	// Ordered cheapest-reject first: on a busy memory system the first
	// channel check exits, keeping the fast loop's per-cycle overhead
	// near zero when there is nothing to skip.
	m := s.memCycle
	limit := int64(0)
	for ch := range s.ctrls {
		next := s.ctrlNext[ch]
		if next <= m {
			return m
		}
		if limit == 0 || next < limit {
			limit = next
		}
	}
	mult := int64(s.cfg.CPUMult)
	cpuNow := m * mult
	for _, core := range s.cores {
		e := core.NextEventCycle(cpuNow)
		if e <= cpuNow {
			return m
		}
		if mem := e / mult; mem < limit {
			limit = mem
		}
	}
	if s.hier.Pending() {
		return m
	}
	if s.cfg.MaxMemCycles > 0 && s.cfg.MaxMemCycles < limit {
		limit = s.cfg.MaxMemCycles
	}
	if s.cfg.WarmupMemCycles > 0 && !s.warmed && s.cfg.WarmupMemCycles < limit {
		limit = s.cfg.WarmupMemCycles
	}
	if s.cfg.SampleInterval > 0 {
		if b := s.nextCut + s.cfg.SampleInterval; b < limit {
			limit = b
		}
	}
	if limit < m {
		return m
	}
	return limit
}

// runSlow is the reference per-cycle loop: every component ticks on
// every DRAM cycle, exactly as the seed implementation did. It is the
// default under -tags=slowtick and the baseline the golden-equivalence
// tests compare the fast-forwarding loop against.
func (s *System) runSlow(ctx context.Context) *Result {
	done := ctx.Done()
	for {
		m := s.memCycle
		for c := 0; c < s.cfg.CPUMult; c++ {
			cpuNow := m*int64(s.cfg.CPUMult) + int64(c)
			for _, core := range s.cores {
				core.CPUCycle(cpuNow)
			}
			s.hier.Tick(cpuNow)
		}
		for _, ctrl := range s.ctrls {
			ctrl.Tick(m)
		}
		s.memCycle++

		if s.cfg.WarmupMemCycles > 0 && !s.warmed && s.memCycle >= s.cfg.WarmupMemCycles {
			s.snapWarm()
		}
		if s.cfg.SampleInterval > 0 && s.memCycle-s.nextCut >= s.cfg.SampleInterval {
			s.cutCycleSample()
			s.publishSamples()
		}
		if s.cfg.MaxMemCycles > 0 && s.memCycle >= s.cfg.MaxMemCycles {
			break
		}
		if done != nil && s.memCycle&cancelCheckMask == 0 {
			select {
			case <-done:
				s.cancelled = true
			default:
			}
			if s.cancelled {
				break
			}
		}
		if s.done() {
			break
		}
	}
	for _, ctrl := range s.ctrls {
		ctrl.FinishSampling()
	}
	s.finishCycleSample()
	s.publishSamples()
	s.notifyDone()
	return s.result()
}

// publishSamples delivers any newly cut per-channel samples to the
// observers (and the deprecated OnSample hook), aggregated across
// channels (all channels sample on the same cycle grid, so index i
// lines up), then reports progress to the observers.
func (s *System) publishSamples() {
	if s.cfg.OnSample == nil && len(s.observers) == 0 {
		return
	}
	n := len(s.ctrls[0].Samples())
	for _, ctrl := range s.ctrls[1:] {
		if k := len(ctrl.Samples()); k < n {
			n = k
		}
	}
	published := n > s.published
	for i := s.published; i < n; i++ {
		merged := s.ctrls[0].Samples()[i]
		for _, ctrl := range s.ctrls[1:] {
			sc := ctrl.Samples()[i]
			merged.BW.Add(sc.BW)
			merged.Lat.Add(sc.Lat)
		}
		if s.cfg.OnSample != nil {
			s.cfg.OnSample(merged)
		}
		for _, o := range s.observers {
			o.Sample(merged)
		}
	}
	s.published = n
	if published {
		for _, o := range s.observers {
			o.Progress(s.memCycle, s.cfg.MaxMemCycles)
		}
	}
}

// notifyDone tells the observers the run ended: Cancelled first when the
// context stopped it early, then a final Progress with the last
// simulated memory cycle.
func (s *System) notifyDone() {
	for _, o := range s.observers {
		if s.cancelled {
			o.Cancelled(s.memCycle)
		}
		o.Progress(s.memCycle, s.cfg.MaxMemCycles)
	}
}

func (s *System) done() bool {
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	for _, ctrl := range s.ctrls {
		if ctrl.Pending() {
			return false
		}
	}
	return !s.hier.Pending()
}

func (s *System) aggregateCycleStack() cyclestack.Stack {
	var agg cyclestack.Stack
	for _, c := range s.cores {
		agg.Add(c.Stack())
	}
	return agg
}

// syncSleepers replays sleeping cores' skipped stall cycles up to the
// current simulation time, so cycle stacks can be read mid-sleep. A
// no-op for awake cores.
func (s *System) syncSleepers() {
	upto := s.memCycle * int64(s.cfg.CPUMult)
	for _, c := range s.cores {
		c.SyncSleep(upto)
	}
}

func (s *System) cutCycleSample() {
	s.syncSleepers()
	cur := s.aggregateCycleStack()
	s.cycleSamples = append(s.cycleSamples, cur.Sub(s.lastCycle))
	s.lastCycle = cur
	s.nextCut = s.memCycle
}

func (s *System) finishCycleSample() {
	if s.cfg.SampleInterval <= 0 || s.memCycle == s.nextCut {
		return
	}
	s.cutCycleSample()
}

// snapWarm records every controller's stacks at the warmup boundary so
// the reported stacks cover only the post-warmup interval. Per-source
// splits are snapshotted alongside (nil entries without a QoS policy).
func (s *System) snapWarm() {
	for _, ctrl := range s.ctrls {
		s.warmBW = append(s.warmBW, ctrl.BandwidthStack())
		s.warmLat = append(s.warmLat, ctrl.LatencyStack())
		s.warmSrcBW = append(s.warmSrcBW, ctrl.SourceStacks())
		s.warmSrcLat = append(s.warmSrcLat, ctrl.SourceLatencyStacks())
	}
	s.warmed = true
}

// Result carries everything an experiment reports.
type Result struct {
	Cfg Config
	// Channels is the number of independently timed memory devices the
	// run instantiated: addressed channels × sub-channels, so an HBM
	// pseudo-channel counts like a channel here (it has its own
	// controller, stacks and peak bandwidth contribution).
	Channels  int
	MemCycles int64
	// Cancelled reports that RunContext stopped early because its
	// context was cancelled; the stacks cover only the cycles simulated.
	Cancelled bool

	// BW and Lat cover the post-warmup interval, aggregated over all
	// channels (BW keeps the "components sum to total cycles" semantics;
	// the GB/s conversions below scale to the total peak bandwidth).
	BW  stacks.BandwidthStack
	Lat stacks.LatencyStack

	// PerChannelBW and PerChannelStats break the aggregate down per
	// memory controller (paper §IV: stacks per controller, aggregated
	// afterwards).
	PerChannelBW    []stacks.BandwidthStack
	PerChannelStats []memctrl.Stats

	// PerSourceBW and PerSourceLat split the post-warmup stacks by QoS
	// source (rows 0..n-1 for the sources, a final stacks.SourceShared
	// row for unattributed cycles), aggregated over channels. Both are
	// nil unless a QoS policy was configured; the rows sum to BW / Lat
	// cycle-exactly.
	PerSourceBW  []stacks.SourceStack
	PerSourceLat []stacks.LatencyStack

	// Through-time samples (whole run, including warmup), aggregated
	// over channels.
	BWSamples    []stacks.Sample
	CycleSamples []cyclestack.Stack

	// LatHist is the distribution of total read latencies over all
	// channels (whole run, including warmup).
	LatHist stacks.LatencyHistogram

	CycleStacks []cyclestack.Stack // per core, whole run
	CoreStats   []cpu.Stats
	CtrlStats   memctrl.Stats // summed over channels
	DevStats    dram.Stats    // summed over channels
	LLCStats    cache.LevelStats
	HierStats   cache.HierStats

	Violations []dram.Violation
}

func (s *System) result() *Result {
	s.syncSleepers()
	r := &Result{
		Cfg:          s.cfg,
		Channels:     s.channels,
		MemCycles:    s.memCycle,
		Cancelled:    s.cancelled,
		LLCStats:     s.hier.LLCStats(),
		HierStats:    s.hier.Stats(),
		Violations:   s.violations,
		CycleSamples: s.cycleSamples,
	}
	for ch, ctrl := range s.ctrls {
		bw := ctrl.BandwidthStack()
		lat := ctrl.LatencyStack()
		if s.warmed {
			bw = bw.Sub(s.warmBW[ch])
			lat = lat.Sub(s.warmLat[ch])
		}
		r.PerChannelBW = append(r.PerChannelBW, bw)
		r.PerChannelStats = append(r.PerChannelStats, ctrl.Stats())
		if srcBW := ctrl.SourceStacks(); srcBW != nil {
			srcLat := ctrl.SourceLatencyStacks()
			if s.warmed {
				for i := range srcBW {
					srcBW[i] = srcBW[i].Sub(s.warmSrcBW[ch][i])
					srcLat[i] = srcLat[i].Sub(s.warmSrcLat[ch][i])
				}
			}
			if r.PerSourceBW == nil {
				r.PerSourceBW, r.PerSourceLat = srcBW, srcLat
			} else {
				for i := range srcBW {
					r.PerSourceBW[i].Add(srcBW[i])
					r.PerSourceLat[i].Add(srcLat[i])
				}
			}
		}
		r.BW.Add(bw)
		r.Lat.Add(lat)
		addCtrlStats(&r.CtrlStats, ctrl.Stats())
		addDevStats(&r.DevStats, s.devs[ch].Stats())
		r.LatHist.Merge(ctrl.LatencyHistogram())
		r.BWSamples = mergeSamples(r.BWSamples, ctrl.Samples())
	}
	r.BW.Banks = s.cfg.Geom.TotalBanks()
	for _, c := range s.cores {
		r.CycleStacks = append(r.CycleStacks, c.Stack())
		r.CoreStats = append(r.CoreStats, c.Stats())
	}
	return r
}

func addCtrlStats(dst *memctrl.Stats, src memctrl.Stats) {
	dst.EnqueuedReads += src.EnqueuedReads
	dst.EnqueuedWrites += src.EnqueuedWrites
	dst.ForwardedReads += src.ForwardedReads
	dst.CoalescedWrites += src.CoalescedWrites
	dst.IssuedReads += src.IssuedReads
	dst.IssuedWrites += src.IssuedWrites
	dst.Refreshes += src.Refreshes
	dst.PageHits += src.PageHits
	dst.PageEmpty += src.PageEmpty
	dst.PageMiss += src.PageMiss
	dst.DrainEntries += src.DrainEntries
	dst.ReadQueueCycles += src.ReadQueueCycles
	dst.WriteQueueCycles += src.WriteQueueCycles
	dst.Cycles += src.Cycles
	if src.MaxReadQueue > dst.MaxReadQueue {
		dst.MaxReadQueue = src.MaxReadQueue
	}
	if src.MaxWriteQueue > dst.MaxWriteQueue {
		dst.MaxWriteQueue = src.MaxWriteQueue
	}
	for i := range src.BankAccesses {
		dst.BankAccesses[i] += src.BankAccesses[i]
	}
}

func addDevStats(dst *dram.Stats, src dram.Stats) {
	dst.ACT += src.ACT
	dst.PRE += src.PRE
	dst.AutoPRE += src.AutoPRE
	dst.RD += src.RD
	dst.WR += src.WR
	dst.REF += src.REF
}

// mergeSamples adds per-channel sample series element-wise (all channels
// sample on the same cycle grid).
func mergeSamples(dst, src []stacks.Sample) []stacks.Sample {
	if dst == nil {
		return append(dst, src...)
	}
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i].BW.Add(src[i].BW)
		dst[i].Lat.Add(src[i].Lat)
	}
	return dst
}

// PeakGBps returns the total peak bandwidth across all channels.
func (r *Result) PeakGBps() float64 {
	return r.Cfg.Geom.PeakBandwidthGBs() * float64(r.Channels)
}

// AchievedGBps returns the post-warmup achieved bandwidth summed over
// all channels.
func (r *Result) AchievedGBps() float64 {
	return r.BW.AchievedGBps(r.Cfg.Geom) * float64(r.Channels)
}

// BWGBps returns the post-warmup bandwidth stack in GB/s, scaled so the
// components sum to the total (all-channel) peak bandwidth.
func (r *Result) BWGBps() [stacks.NumBWComponents]float64 {
	g := r.BW.GBps(r.Cfg.Geom)
	for c := range g {
		g[c] *= float64(r.Channels)
	}
	return g
}

// LatNS returns the post-warmup average latency stack in ns.
func (r *Result) LatNS() [stacks.NumLatComponents]float64 { return r.Lat.AvgNS(r.Cfg.Geom) }

// TotalRetired sums committed uops over all cores.
func (r *Result) TotalRetired() int64 {
	var t int64
	for _, cs := range r.CoreStats {
		t += cs.Retired
	}
	return t
}

// RuntimeMS returns the simulated wall-clock time in milliseconds.
func (r *Result) RuntimeMS() float64 {
	return r.Cfg.Geom.CyclesToNS(r.MemCycles) / 1e6
}
