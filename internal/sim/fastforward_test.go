package sim

import (
	"reflect"
	"testing"

	"dramstacks/internal/cpu"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

// goldenCompare runs the same configuration through the fast-forwarding
// loop and the reference per-cycle loop and requires byte-identical
// results: every stack, sample, histogram and statistic. mk must return a
// fresh, identical source set on each call.
func goldenCompare(t *testing.T, name string, cfg Config, mk func() []cpu.Source) {
	t.Helper()

	var fastSamples, slowSamples []stacks.Sample
	run := func(slow bool, sink *[]stacks.Sample) *Result {
		c := cfg
		if c.OnSample != nil {
			c.OnSample = func(s stacks.Sample) { *sink = append(*sink, s) }
		}
		sys, err := NewFromConfig(c, mk())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sys.slow = slow
		res := sys.Run()
		// Function fields never compare equal; everything else must.
		res.Cfg.OnSample = nil
		res.Cfg.Trace = nil
		return res
	}
	fast := run(false, &fastSamples)
	slow := run(true, &slowSamples)

	if !reflect.DeepEqual(fastSamples, slowSamples) {
		t.Errorf("%s: published sample streams differ (fast %d, slow %d)",
			name, len(fastSamples), len(slowSamples))
	}
	if reflect.DeepEqual(fast, slow) {
		return
	}
	ft, fv, sv := reflect.TypeOf(*fast), reflect.ValueOf(*fast), reflect.ValueOf(*slow)
	for i := 0; i < ft.NumField(); i++ {
		if !reflect.DeepEqual(fv.Field(i).Interface(), sv.Field(i).Interface()) {
			t.Errorf("%s: Result.%s differs:\n fast: %+v\n slow: %+v",
				name, ft.Field(i).Name, fv.Field(i).Interface(), sv.Field(i).Interface())
		}
	}
}

// cacheResident returns sources whose footprint fits in the caches: after
// prewarm the cores run without DRAM traffic, so nearly every memory
// cycle is provably idle and the fast loop spends the run fast-forwarding
// across refresh deadlines.
func cacheResident(cores int, workPerOp int, branchEvery int, mispredict float64) func() []cpu.Source {
	return func() []cpu.Source {
		var sources []cpu.Source
		for i := 0; i < cores; i++ {
			sources = append(sources, workload.MustSynthetic(workload.SyntheticConfig{
				Pattern:        workload.Sequential,
				WorkPerOp:      workPerOp,
				FootprintBytes: 1 << 14,
				StrideBytes:    64,
				BranchEvery:    branchEvery,
				MispredictRate: mispredict,
				BaseAddr:       uint64(i) * (256 << 20),
				Seed:           int64(i + 1),
			}))
		}
		return sources
	}
}

// TestGoldenLowUtilIdle is the primary fast-forward exercise: a
// cache-resident compute-bound core leaves the controller idle for
// essentially the whole run, so the fast loop covers it with bulk idle
// accounting punctuated only by refresh ticks — across warmup and sample
// boundaries.
func TestGoldenLowUtilIdle(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 80_000
	cfg.WarmupMemCycles = 15_000
	cfg.SampleInterval = 10_000
	cfg.PrewarmOps = 1 << 12
	goldenCompare(t, "low-util idle", cfg, cacheResident(1, 60, 0, 0))
}

// TestGoldenBranchBubble adds frequent branch mispredictions with nothing
// in flight, the state the whole-system skip fast-forwards as pipeline
// refill (Branch) cycles.
func TestGoldenBranchBubble(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 60_000
	cfg.SampleInterval = 7_000
	cfg.PrewarmOps = 1 << 12
	goldenCompare(t, "branch bubble", cfg, cacheResident(1, 0, 3, 0.5))
}

// TestGoldenDrainToDone runs a finite DRAM-bound workload to completion
// (MaxMemCycles = 0), covering the done() exit and the post-drain idle
// tail under fast-forwarding.
func TestGoldenDrainToDone(t *testing.T) {
	cfg := Default(1)
	cfg.MaxMemCycles = 0
	cfg.SampleInterval = 5_000
	mk := func() []cpu.Source {
		wc := workload.DefaultSequential()
		wc.Ops = 1_500
		return []cpu.Source{workload.MustSynthetic(wc)}
	}
	goldenCompare(t, "drain to done", cfg, mk)
}

// TestGoldenMultichannelSampling drives two channels from two cores with
// warmup, periodic samples and a live OnSample subscriber; per-channel
// lazy catch-up must keep every published sample byte-identical.
func TestGoldenMultichannelSampling(t *testing.T) {
	cfg := Default(2)
	cfg.Channels = 2
	cfg.MaxMemCycles = 100_000
	cfg.WarmupMemCycles = 20_000
	cfg.SampleInterval = 10_000
	cfg.PrewarmOps = 1 << 12
	cfg.OnSample = func(stacks.Sample) {} // replaced per run by goldenCompare
	mk := func() []cpu.Source { return SyntheticSources(workload.Random, 2, 0.2) }
	goldenCompare(t, "multichannel sampling", cfg, mk)
}

// TestGoldenPatternPolicyMatrix sweeps the paper's Fig. 2/4 axes
// (sequential/random crossed with open/closed page policy) on a reduced
// budget; DRAM-bound phases interleave with idle gaps on the low-MLP
// random pattern.
func TestGoldenPatternPolicyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix skipped in -short")
	}
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, pol := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.ClosedPage} {
			cfg := Default(1)
			cfg.Ctrl.Policy = pol
			cfg.MaxMemCycles = 60_000
			cfg.SampleInterval = 15_000
			cfg.PrewarmOps = 1 << 16
			pat := pat
			mk := func() []cpu.Source { return SyntheticSources(pat, 1, 0) }
			goldenCompare(t, pat.String()+"/"+pol.String(), cfg, mk)
		}
	}
}
