package exp

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func mustHash(t *testing.T, s Spec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatalf("Hash(%+v): %v", s, err)
	}
	return h
}

// TestSpecHashFieldOrderIndependent decodes the same spec from JSON with
// different field orders and checks the hashes agree.
func TestSpecHashFieldOrderIndependent(t *testing.T) {
	docs := []string{
		`{"workload":"random","cores":4,"stores":0.2,"cycles":100000}`,
		`{"cycles":100000,"stores":0.2,"cores":4,"workload":"random"}`,
		`{"stores":0.2,"workload":"random","cycles":100000,"cores":4}`,
	}
	var want string
	for i, doc := range docs {
		var s Spec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Fatal(err)
		}
		h := mustHash(t, s)
		if i == 0 {
			want = h
		} else if h != want {
			t.Errorf("doc %d: hash %s, want %s", i, h, want)
		}
	}
}

// TestSpecHashDefaultElision checks that eliding a default and spelling
// it out produce identical hashes, and that irrelevant fields (GAP scale
// on a synthetic workload) do not perturb the hash.
func TestSpecHashDefaultElision(t *testing.T) {
	base := mustHash(t, Spec{Workload: "seq"})
	same := []Spec{
		{}, // workload defaults to seq
		{Workload: "seq", Version: SpecVersion},
		{Workload: "seq", Cores: 1, Channels: 1, Mapping: "def", Policy: "open", Budget: DefaultBudget},
		{Workload: " seq ", Scale: 17},     // whitespace + irrelevant scale
		{Workload: "seq", WriteQueue: 128}, // wq applies to GAP only
	}
	for i, s := range same {
		if h := mustHash(t, s); h != base {
			t.Errorf("spec %d (%+v): hash %s, want %s", i, s, h, base)
		}
	}
	diff := []Spec{
		{Workload: "seq", Cores: 2},
		{Workload: "random"},
		{Workload: "seq", Stores: 0.1},
		{Workload: "seq", Budget: BudgetUnlimited},
		{Workload: "seq", Sample: 1000},
		{Workload: "seq", Mapping: "int"},
		{Workload: "seq", Policy: "closed"},
	}
	for i, s := range diff {
		if h := mustHash(t, s); h == base {
			t.Errorf("spec %d (%+v): hash collides with default seq", i, s)
		}
	}
}

// TestSpecGapDefaults checks GAP policy resolution: bfs defaults closed,
// tc defaults open, and spelling the default out matches the elision.
func TestSpecGapDefaults(t *testing.T) {
	if mustHash(t, Spec{Workload: "bfs"}) != mustHash(t, Spec{Workload: "bfs", Policy: "closed", Scale: 17}) {
		t.Error("bfs default-policy hash mismatch")
	}
	if mustHash(t, Spec{Workload: "tc"}) != mustHash(t, Spec{Workload: "tc", Policy: "open"}) {
		t.Error("tc default-policy hash mismatch")
	}
	if mustHash(t, Spec{Workload: "bfs"}) == mustHash(t, Spec{Workload: "bfs", Policy: "open"}) {
		t.Error("bfs open vs closed should differ")
	}
}

// TestSpecCanonicalIsSortedAndStable pins the canonical encoding format.
func TestSpecCanonicalIsSortedAndStable(t *testing.T) {
	c, err := Spec{Workload: "seq"}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"channels":1,"cores":1,"cycles":500000,"map":"def","policy":"open","sample":0,"scale":0,"stores":0,"version":1,"workload":"seq","wq":0}`
	if string(c) != want {
		t.Errorf("canonical = %s\nwant        %s", c, want)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		spec Spec
		err  string
	}{
		{Spec{Workload: "nope"}, "unknown workload"},
		{Spec{Workload: "trace"}, "unknown workload"},
		{Spec{Workload: "seq,nope"}, "unknown mix component"},
		{Spec{Workload: "seq", Cores: 9}, "cores"},
		{Spec{Workload: "seq", Channels: 9}, "channels"},
		{Spec{Workload: "seq", Stores: 1.5}, "store fraction"},
		{Spec{Workload: "seq", Version: 2}, "unsupported spec version"},
		{Spec{Workload: "seq", Policy: "lukewarm"}, "unknown policy"},
		{Spec{Workload: "seq", Mapping: "zigzag"}, "unknown mapping"},
		{Spec{Workload: "seq", Sample: -1}, "sample interval"},
		{Spec{Workload: "bfs", Scale: 30}, "scale"},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Hash(); err == nil || !strings.Contains(err.Error(), tc.err) {
			t.Errorf("%+v: err = %v, want mention of %q", tc.spec, err, tc.err)
		}
	}
}

// TestRunSpecMatchesRunSynth checks the shared spec path reproduces the
// figure harness path exactly for a synthetic workload.
func TestRunSpecMatchesRunSynth(t *testing.T) {
	spec := Spec{Workload: "seq", Cores: 2, Budget: 20_000}
	got, err := RunSpec(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunSynth(SynthSpec{
		Pattern: synthPattern("seq"), Cores: 2, Channels: 1,
		Budget: 20_000, Prewarm: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.MemCycles != want.MemCycles {
		t.Errorf("MemCycles %d != %d", got.MemCycles, want.MemCycles)
	}
	if got.BW != want.BW {
		t.Errorf("bandwidth stacks differ:\n got %+v\nwant %+v", got.BW, want.BW)
	}
	if got.CtrlStats != want.CtrlStats {
		t.Errorf("controller stats differ")
	}
}

// TestRunSpecMix smoke-tests the mix path through the shared spec layer.
func TestRunSpecMix(t *testing.T) {
	res, err := RunSpec(context.Background(), Spec{Workload: "seq,random", Cores: 2, Budget: 10_000}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemCycles != 10_000 {
		t.Errorf("MemCycles = %d, want 10000", res.MemCycles)
	}
}

// TestResultJSONStampsSpecHash checks result provenance.
func TestResultJSONStampsSpecHash(t *testing.T) {
	spec := Spec{Workload: "seq", Budget: 10_000}
	res, err := RunSpec(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ResultJSON(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	var row RowJSON
	if err := json.Unmarshal(out, &row); err != nil {
		t.Fatal(err)
	}
	if want := mustHash(t, spec); row.SpecHash != want {
		t.Errorf("spec_hash = %q, want %q", row.SpecHash, want)
	}
	if row.Label != spec.Label() {
		t.Errorf("label = %q, want %q", row.Label, spec.Label())
	}
}
