package exp

import (
	"strings"
	"testing"
)

func expandHashes(t *testing.T, doc string) []string {
	t.Helper()
	sw, err := ParseSweep([]byte(doc))
	if err != nil {
		t.Fatalf("ParseSweep: %v", err)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	hashes := make([]string, len(points))
	for i, p := range points {
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
		hashes[i] = p.Hash
	}
	return hashes
}

// TestSweepExpandDeterministic expands the same sweep from differently
// ordered JSON documents and expects identical ordered spec-hash lists.
func TestSweepExpandDeterministic(t *testing.T) {
	docs := []string{
		`{"version":1,"base":{"workload":"seq","cycles":20000},"axes":{"cores":[1,2,4,8],"stores":[0,0.5]}}`,
		`{"axes":{"stores":[0,0.5],"cores":[1,2,4,8]},"base":{"cycles":20000,"workload":"seq"}}`,
	}
	want := expandHashes(t, docs[0])
	if len(want) != 8 {
		t.Fatalf("expanded to %d points, want 8", len(want))
	}
	for _, doc := range docs {
		for trial := 0; trial < 3; trial++ {
			got := expandHashes(t, doc)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("expansion differs:\n got %v\nwant %v", got, want)
			}
		}
	}
}

// TestSweepExpandOrderAndDedup checks the sorted-axis, last-fastest
// expansion order and that normalization-equivalent points collapse: a
// scale axis is irrelevant to synthetic workloads, so seq points with
// different scales dedup to one.
func TestSweepExpandOrderAndDedup(t *testing.T) {
	doc := `{"base":{"cycles":20000},"axes":{"workload":["bfs","seq"],"scale":[12,13],"cores":[1,2]}}`
	sw, err := ParseSweep([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Axes sorted: cores, scale, workload (workload varies fastest).
	// Per core count: bfs@12, seq@12, bfs@13, seq@13→dup of seq@12.
	// 2 cores × 3 unique = 6 points.
	if len(points) != 6 {
		t.Fatalf("expanded to %d points, want 6 after dedup", len(points))
	}
	wantLabels := []string{
		"cores=1 scale=12 workload=bfs",
		"cores=1 scale=12 workload=seq",
		"cores=1 scale=13 workload=bfs",
		"cores=2 scale=12 workload=bfs",
		"cores=2 scale=12 workload=seq",
		"cores=2 scale=13 workload=bfs",
	}
	for i, p := range points {
		if p.Label() != wantLabels[i] {
			t.Errorf("point %d label %q, want %q", i, p.Label(), wantLabels[i])
		}
	}
}

func TestParseSweepRejects(t *testing.T) {
	cases := []struct {
		doc string
		err string
	}{
		{`{"bases":{"workload":"seq"}}`, `unknown sweep field "bases" (did you mean "base"`},
		{`{"version":2,"base":{"workload":"seq"}}`, "unsupported sweep version 2"},
		{`{"base":{"core":4}}`, `unknown spec field "core" (did you mean "cores"`},
		{`{"base":{"workload":"seq"},"axes":{"core":[1,2]}}`, `unknown sweep axis field "core" (did you mean "cores"`},
		{`{"base":{"workload":"seq"},"axes":{"version":[1]}}`, `unknown sweep axis field "version"`},
		{`{"base":{"workload":"seq"},"axes":{"cores":[]}}`, `axis "cores" has no values`},
		{`{"base":{"workload":"seq"},"axes":{"cores":["two"]}}`, `axis "cores"`},
		{`{"base":{"workload":"seq"},"axes":{"stores":["much"]}}`, `axis "stores"`},
		{`{"base":{"workload":"seq"},"axes":{"workload":[7]}}`, `axis "workload" wants string values`},
		{`{"base":{"workload":"nope"},"axes":{"cores":[1]}}`, "unknown workload"},
		{`not json`, "invalid sweep JSON"},
	}
	for _, tc := range cases {
		sw, err := ParseSweep([]byte(tc.doc))
		if err == nil {
			_, err = sw.Expand()
		}
		if err == nil || !strings.Contains(err.Error(), tc.err) {
			t.Errorf("ParseSweep(%s): err = %v, want mention of %q", tc.doc, err, tc.err)
		}
	}
}

// TestDecodeSpecUnknownField checks the strict spec decoder names the
// offending field instead of silently ignoring it.
func TestDecodeSpecUnknownField(t *testing.T) {
	_, err := DecodeSpec([]byte(`{"workload":"seq","core":4}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	for _, want := range []string{`"core"`, `did you mean "cores"`, "known fields:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if _, err := DecodeSpec([]byte(`{"workload":"seq","version":1,"cores":2}`)); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if _, err := DecodeSpec([]byte(`{"totally_unrelated":1}`)); err == nil ||
		!strings.Contains(err.Error(), `"totally_unrelated"`) ||
		strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off field should not get a suggestion: %v", err)
	}
}

// TestSweepVersionRoundTrip checks the version field is accepted both
// elided and explicit, and that explicit version 1 does not perturb the
// expansion.
func TestSweepVersionRoundTrip(t *testing.T) {
	a := expandHashes(t, `{"base":{"workload":"seq"},"axes":{"cores":[1,2]}}`)
	b := expandHashes(t, `{"version":1,"base":{"workload":"seq","version":1},"axes":{"cores":[1,2]}}`)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("explicit version changes hashes:\n%v\n%v", a, b)
	}
}
