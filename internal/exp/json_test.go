package exp

import (
	"context"
	"strings"
	"testing"
)

// TestCanonicalDecodeRoundTrip pins the property the durability layer
// leans on: the canonical encoding a journal stores decodes back to a
// spec with the same hash, so a recovered job is the same experiment.
func TestCanonicalDecodeRoundTrip(t *testing.T) {
	for _, raw := range []string{
		`{"workload":"seq","cores":1,"cycles":20000}`,
		`{"workload":"seq,random","cores":2,"cycles":50000,"policy":"closed"}`,
		`{"workload":"bfs","cores":4,"cycles":20000,"scale":15}`,
		`{"workload":"random","cores":8,"cycles":30000,"sample":5000}`,
	} {
		spec, err := DecodeSpec([]byte(raw))
		if err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		spec = spec.Normalized()
		wantHash, err := spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		canon, err := spec.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSpec(canon)
		if err != nil {
			t.Fatalf("canonical form of %s does not decode: %v\n%s", raw, err, canon)
		}
		gotHash, err := back.Normalized().Hash()
		if err != nil {
			t.Fatal(err)
		}
		if gotHash != wantHash {
			t.Errorf("%s: hash changed across canonical round trip: %s → %s", raw, wantHash, gotHash)
		}
	}
}

func TestResultSpecHash(t *testing.T) {
	spec, err := DecodeSpec([]byte(`{"workload":"seq","cores":1,"cycles":20000}`))
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Normalized()
	res, err := RunSpec(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ResultJSON(spec, res)
	if err != nil {
		t.Fatal(err)
	}

	h, err := ResultSpecHash(doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != want {
		t.Errorf("ResultSpecHash = %s, want %s", h, want)
	}

	if _, err := ResultSpecHash([]byte(`not json`)); err == nil {
		t.Error("ResultSpecHash accepted garbage")
	}
	if _, err := ResultSpecHash([]byte(`{"label":"x"}`)); err == nil {
		t.Error("ResultSpecHash accepted a document with no spec_hash")
	}
	// A tampered document still parses but must not match the spec.
	tampered := strings.Replace(string(doc), want, strings.Repeat("0", len(want)), 1)
	if h, err := ResultSpecHash([]byte(tampered)); err != nil || h == want {
		t.Errorf("tampered document: hash %q err %v, want a different hash", h, err)
	}
}
