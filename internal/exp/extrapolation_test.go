package exp

import (
	"testing"

	"dramstacks/internal/extrapolate"
	"dramstacks/internal/workload"
)

// TestExtrapolationFactorSweep validates the stack-based method beyond
// the paper's 1→8 setting: predictions from a 1-core run for 2 and 4
// cores must track the measured bandwidth and beat or match the naive
// method while any scaling headroom remains.
func TestExtrapolationFactorSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("extrapolation sweep skipped in -short")
	}
	budget := int64(250_000)
	run := func(cores int) ( /*measured*/ float64, []float64) {
		res, err := RunSynth(SynthSpec{
			Pattern: workload.Random, Cores: cores,
			Budget: budget, Prewarm: 1 << 19, Sample: budget / 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		var preds []float64
		geo := res.Cfg.Geom
		for _, f := range []float64{2, 4} {
			preds = append(preds, extrapolate.StackSamples(res.BWSamples, f, geo))
		}
		return res.AchievedGBps(), preds
	}

	base, preds := run(1)
	if base <= 0 {
		t.Fatal("1-core run achieved nothing")
	}
	for i, cores := range []int{2, 4} {
		measured, _ := run(cores)
		pred := preds[i]
		err := relErr(pred, measured)
		t.Logf("random 1c->%dc: measured %.2f, stack %.2f (%.1f%% error)",
			cores, measured, pred, 100*err)
		if err > 0.30 {
			t.Errorf("1c->%dc stack prediction off by %.1f%% (measured %.2f, predicted %.2f)",
				cores, 100*err, measured, pred)
		}
	}
}

func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	e := (pred - meas) / meas
	if e < 0 {
		return -e
	}
	return e
}

// TestNaiveVsStackOnSaturatingWorkload: for a workload that saturates
// (sequential at 8 cores), the naive method predicts the refresh-capped
// peak while the stack method accounts for constraint growth and lands
// lower — the paper's central argument.
func TestNaiveVsStackOnSaturatingWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("extrapolation test skipped in -short")
	}
	budget := int64(250_000)
	one, err := RunSynth(SynthSpec{
		Pattern: workload.Sequential, Cores: 1,
		Budget: budget, Prewarm: 1 << 20, Sample: budget / 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunSynth(SynthSpec{
		Pattern: workload.Sequential, Cores: 8,
		Budget: budget, Prewarm: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	geo := one.Cfg.Geom
	naive := extrapolate.NaiveSamples(one.BWSamples, 8, geo)
	stack := extrapolate.StackSamples(one.BWSamples, 8, geo)
	measured := eight.AchievedGBps()

	if stack > naive+1e-9 {
		t.Errorf("stack %.2f above naive %.2f", stack, naive)
	}
	if se, ne := relErr(stack, measured), relErr(naive, measured); se > ne+0.02 {
		t.Errorf("stack error %.1f%% worse than naive %.1f%% on the saturating case",
			100*se, 100*ne)
	}
	t.Logf("seq 1c->8c: measured %.2f, naive %.2f, stack %.2f",
		measured, naive, stack)
}
