package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dramstacks/internal/sim"
)

// TestSweepJSONFastSlowIdentical is the end-to-end golden-equivalence
// gate for idle-cycle fast-forwarding: the full Fig. 2/Fig. 4 grid
// (sequential/random × 1..8 cores × open/closed pages, reduced budget)
// must serialize to byte-identical SweepJSON — spec hashes, stacks,
// through-time samples and extrapolations — whether the simulator runs
// the fast-forwarding loop or the reference per-cycle loop.
func TestSweepJSONFastSlowIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid equivalence sweep skipped in -short")
	}
	sw := Sweep{
		Base: Spec{Workload: "seq", Budget: 30_000, Sample: 10_000},
		Axes: map[string][]any{
			"workload": {"seq", "random"},
			"cores":    {1, 2, 4, 8},
			"policy":   {"open", "closed"},
		},
	}
	run := func(slow bool) []byte {
		t.Helper()
		was := sim.SlowTick
		sim.SlowTick = slow
		defer func() { sim.SlowTick = was }()
		res, err := RunSweep(context.Background(), sw, SweepOptions{})
		if err != nil {
			t.Fatalf("slow=%v: %v", slow, err)
		}
		doc, err := res.ToJSON()
		if err != nil {
			t.Fatalf("slow=%v: %v", slow, err)
		}
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("slow=%v: %v", slow, err)
		}
		return data
	}
	fast := run(false)
	slow := run(true)
	if bytes.Equal(fast, slow) {
		return
	}
	i := 0
	for i < len(fast) && i < len(slow) && fast[i] == slow[i] {
		i++
	}
	lo, hi := i-80, i+80
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) []byte {
		if hi > len(b) {
			return b[lo:]
		}
		return b[lo:hi]
	}
	t.Errorf("SweepJSON differs at byte %d:\n fast: ...%s...\n slow: ...%s...",
		i, clip(fast), clip(slow))
}
