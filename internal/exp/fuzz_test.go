package exp

import (
	"bytes"
	"testing"
)

// FuzzDecodeSpec drives arbitrary bytes through the strict spec decoder
// and, for every accepted document, checks the invariants the content
// cache and the durable store depend on:
//
//   - DecodeSpec never panics;
//   - an accepted, valid spec has a canonical encoding, and that
//     encoding is a fixed point (decode(canonical) re-canonicalizes to
//     byte-identical output);
//   - Hash is deterministic and survives the canonical round trip.
func FuzzDecodeSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"workload":"seq","cores":1,"cycles":20000}`,
		`{"workload":"seq","version":1,"cores":2}`,
		`{"workload":"rand","cores":4,"channels":2,"stores":0.25}`,
		`{"workload":"seq","policy":"fr-fcfs","map":"rbc","wq":8}`,
		`{"workload":"seq","core":4}`,
		`{"totally_unrelated":1}`,
		`{"workload":"seq","cycles":1e30}`,
		`[1,2,3]`,
		`"spec"`,
		`{"workload":`,
		"{\"workload\":\"seq\",\n\"cores\":3}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		norm := spec.Normalized()
		if norm.Validate() != nil {
			return
		}
		canon, err := norm.Canonical()
		if err != nil {
			t.Fatalf("valid spec has no canonical encoding: %v", err)
		}
		h1, err := norm.Hash()
		if err != nil {
			t.Fatalf("valid spec has no hash: %v", err)
		}
		h2, _ := norm.Hash()
		if h1 != h2 {
			t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
		}

		again, err := DecodeSpec(canon)
		if err != nil {
			t.Fatalf("canonical encoding rejected by DecodeSpec: %v\n%s", err, canon)
		}
		canon2, err := again.Normalized().Canonical()
		if err != nil {
			t.Fatalf("re-canonicalizing decoded canonical form: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding is not a fixed point:\n  first:  %s\n  second: %s", canon, canon2)
		}
		h3, _ := again.Normalized().Hash()
		if h3 != h1 {
			t.Fatalf("hash changed across canonical round trip: %s vs %s", h1, h3)
		}
	})
}
