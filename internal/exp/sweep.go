package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sweep describes a family of experiments: a base spec plus axes, each
// axis a spec field name mapped to the values it takes. Expansion forms
// the cartesian product of the axes over the base — the paper's
// synthetic grids (Figs. 4-6) and the 1→8-core extrapolation study are
// each one Sweep. The JSON form is
//
//	{
//	  "version": 1,
//	  "base": {"workload": "seq", "cycles": 100000},
//	  "axes": {"cores": [1, 2, 4, 8], "stores": [0, 0.5]}
//	}
type Sweep struct {
	// Version is the sweep-schema version (0 or SpecVersion).
	Version int `json:"version,omitempty"`
	// Base is the spec every point starts from; axis values overwrite
	// its fields.
	Base Spec `json:"base"`
	// Axes maps spec field names to the values the field sweeps over.
	// Values are strings for string fields and numbers for numeric ones
	// (json.Number after ParseSweep; int/int64/float64 work too when a
	// Sweep is built in code).
	Axes map[string][]any `json:"axes"`
}

// sweepFields is the accepted top-level sweep JSON schema.
var sweepFields = map[string]bool{
	"version": true,
	"base":    true,
	"axes":    true,
}

// sweepableFields are the spec fields an axis may vary: everything but
// the schema version.
var sweepableFields = func() map[string]bool {
	m := make(map[string]bool, len(specFields))
	for f := range specFields {
		if f != "version" {
			m[f] = true
		}
	}
	return m
}()

// ParseSweep strictly decodes a sweep document: unknown fields at the
// top level, in the base spec, and among the axis names are rejected
// with field-naming errors; the version must be one this build speaks.
func ParseSweep(data []byte) (Sweep, error) {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return Sweep{}, fmt.Errorf("exp: invalid sweep JSON: %v", err)
	}
	if err := checkFields("sweep", doc, sweepFields); err != nil {
		return Sweep{}, err
	}
	var sw Sweep
	if raw, ok := doc["version"]; ok {
		if err := json.Unmarshal(raw, &sw.Version); err != nil {
			return Sweep{}, fmt.Errorf("exp: invalid sweep version: %v", err)
		}
	}
	if sw.Version != 0 && sw.Version != SpecVersion {
		return Sweep{}, fmt.Errorf("exp: unsupported sweep version %d (this build speaks version %d)", sw.Version, SpecVersion)
	}
	if raw, ok := doc["base"]; ok {
		base, err := DecodeSpec(raw)
		if err != nil {
			return Sweep{}, err
		}
		sw.Base = base
	}
	if raw, ok := doc["axes"]; ok {
		// UseNumber keeps axis values as their JSON literals, so the
		// axis label of 0.5 is "0.5", not "0.500000".
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&sw.Axes); err != nil {
			return Sweep{}, fmt.Errorf("exp: invalid sweep axes: %v", err)
		}
	}
	return sw, nil
}

// AxisNames returns the sweep's axis names in the deterministic
// (sorted) expansion order.
func (sw Sweep) AxisNames() []string {
	names := make([]string, 0, len(sw.Axes))
	for n := range sw.Axes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Point is one expanded sweep point: a normalized, validated spec plus
// the axis values that produced it.
type Point struct {
	// Index is the point's position in the deterministic expansion
	// order (after dedup).
	Index int
	// Spec is the normalized point spec.
	Spec Spec
	// Hash is Spec.Hash(): the point's content address.
	Hash string
	// Axes maps each axis name to this point's value, rendered as its
	// JSON literal.
	Axes map[string]string
}

// Label renders the point's varying coordinates ("cores=4 stores=0.5"),
// axes in sorted order; a zero-axis sweep point falls back to the spec
// label.
func (p Point) Label() string {
	if len(p.Axes) == 0 {
		return p.Spec.Label()
	}
	names := make([]string, 0, len(p.Axes))
	for n := range p.Axes {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + p.Axes[n]
	}
	return strings.Join(parts, " ")
}

// Expand materializes the sweep into its ordered list of points: the
// cartesian product of the axes (sorted by name, last axis varying
// fastest) over the base spec, each normalized and validated, deduped
// by spec hash (normalization can collapse points — e.g. a "scale" axis
// is irrelevant to synthetic workloads). The result is deterministic:
// the same sweep document always expands to the same ordered hash list.
func (sw Sweep) Expand() ([]Point, error) {
	if sw.Version != 0 && sw.Version != SpecVersion {
		return nil, fmt.Errorf("exp: unsupported sweep version %d (this build speaks version %d)", sw.Version, SpecVersion)
	}
	names := sw.AxisNames()
	for _, n := range names {
		if !sweepableFields[n] {
			return nil, unknownFieldError("sweep axis", n, sweepableFields)
		}
		if len(sw.Axes[n]) == 0 {
			return nil, fmt.Errorf("exp: sweep axis %q has no values", n)
		}
	}
	total := 1
	for _, n := range names {
		total *= len(sw.Axes[n])
	}

	seen := make(map[string]bool, total)
	points := make([]Point, 0, total)
	for i := 0; i < total; i++ {
		spec := sw.Base
		axes := make(map[string]string, len(names))
		// Mixed-radix decode of i, last axis fastest.
		rem := i
		for a := len(names) - 1; a >= 0; a-- {
			vals := sw.Axes[names[a]]
			v := vals[rem%len(vals)]
			rem /= len(vals)
			if err := setSpecField(&spec, names[a], v); err != nil {
				return nil, err
			}
			axes[names[a]] = axisLabel(v)
		}
		n := spec.Normalized()
		hash, err := n.Hash()
		if err != nil {
			return nil, fmt.Errorf("exp: sweep point %s: %w", Point{Axes: axes}.Label(), err)
		}
		if seen[hash] {
			continue
		}
		seen[hash] = true
		points = append(points, Point{Index: len(points), Spec: n, Hash: hash, Axes: axes})
	}
	return points, nil
}

// SweepHash is the content address of the whole expanded sweep: the hex
// SHA-256 over the ordered point hashes. Two sweep documents that
// expand to the same experiment family hash identically.
func SweepHash(points []Point) string {
	h := sha256.New()
	for _, p := range points {
		h.Write([]byte(p.Hash))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// axisLabel renders an axis value the way it was written in the sweep
// document.
func axisLabel(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case json.Number:
		return t.String()
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// setSpecField overwrites one spec field by its JSON name with an axis
// value, enforcing the field's type.
func setSpecField(s *Spec, name string, v any) error {
	switch name {
	case "workload", "policy", "map", "standard", "qos":
		str, ok := v.(string)
		if !ok {
			return fmt.Errorf("exp: sweep axis %q wants string values, got %v", name, v)
		}
		switch name {
		case "workload":
			s.Workload = str
		case "policy":
			s.Policy = str
		case "map":
			s.Mapping = str
		case "standard":
			s.Standard = str
		case "qos":
			s.QoS = str
		}
		return nil
	case "stores":
		f, err := axisFloat(v)
		if err != nil {
			return fmt.Errorf("exp: sweep axis %q: %v", name, err)
		}
		s.Stores = f
		return nil
	case "cores", "channels", "cycles", "sample", "scale", "wq":
		i, err := axisInt(v)
		if err != nil {
			return fmt.Errorf("exp: sweep axis %q: %v", name, err)
		}
		switch name {
		case "cores":
			s.Cores = int(i)
		case "channels":
			s.Channels = int(i)
		case "cycles":
			s.Budget = i
		case "sample":
			s.Sample = i
		case "scale":
			s.Scale = int(i)
		case "wq":
			s.WriteQueue = int(i)
		}
		return nil
	default:
		return unknownFieldError("sweep axis", name, sweepableFields)
	}
}

func axisFloat(v any) (float64, error) {
	switch t := v.(type) {
	case json.Number:
		return t.Float64()
	case float64:
		return t, nil
	case int:
		return float64(t), nil
	case int64:
		return float64(t), nil
	default:
		return 0, fmt.Errorf("want a number, got %v", v)
	}
}

func axisInt(v any) (int64, error) {
	switch t := v.(type) {
	case json.Number:
		return t.Int64()
	case int:
		return int64(t), nil
	case int64:
		return t, nil
	case float64:
		if t != math.Trunc(t) {
			return 0, fmt.Errorf("want an integer, got %v", t)
		}
		return int64(t), nil
	default:
		return 0, fmt.Errorf("want an integer, got %v", v)
	}
}
