package exp

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"dramstacks/internal/stacks"
)

// TestSpecQoSHash checks that the qos field enters the spec hash only
// when set: a spec without it keeps its pre-QoS content address, and
// equivalent qos strings (directive order, whitespace) normalize to the
// same hash.
func TestSpecQoSHash(t *testing.T) {
	base := mustHash(t, Spec{Workload: "seq", Cores: 2})
	if h := mustHash(t, Spec{Workload: "seq", Cores: 2, QoS: "  "}); h != base {
		t.Errorf("whitespace qos perturbed the hash: %s != %s", h, base)
	}
	qosHash := mustHash(t, Spec{Workload: "seq", Cores: 2, QoS: "win=1024,cap=1:16,rt=0"})
	if qosHash == base {
		t.Error("qos policy did not change the spec hash")
	}
	// Directive order is canonicalized by Normalized.
	if h := mustHash(t, Spec{Workload: "seq", Cores: 2, QoS: "rt=0,cap=1:16,win=1024"}); h != qosHash {
		t.Errorf("reordered qos directives hash differently: %s != %s", h, qosHash)
	}
}

// TestSpecQoSCanonicalElision checks the canonical encoding carries no
// "qos" key unless a policy is set, so every pre-QoS document and cached
// result keeps its bytes.
func TestSpecQoSCanonicalElision(t *testing.T) {
	c, err := Spec{Workload: "seq", Cores: 2}.Normalized().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(c), "qos") {
		t.Errorf("canonical encoding of a QoS-less spec mentions qos: %s", c)
	}
	c, err = Spec{Workload: "seq", Cores: 2, QoS: "rt=0"}.Normalized().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(c), `"qos":"rt=0"`) {
		t.Errorf("canonical encoding lost the qos policy: %s", c)
	}
}

// TestSpecQoSValidate checks malformed policies are named errors.
func TestSpecQoSValidate(t *testing.T) {
	bad := []Spec{
		{Workload: "seq", Cores: 2, QoS: "cap=5:8"},  // source out of range
		{Workload: "seq", Cores: 2, QoS: "frobnify"}, // unknown directive
		{Workload: "seq", Cores: 2, QoS: "cap=0:-1"}, // negative budget
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%q) accepted a malformed policy", s.QoS)
		}
	}
}

// TestSweepQoSAxis sweeps the qos axis and checks the unregulated point
// collapses to the legacy hash while the regulated one diverges.
func TestSweepQoSAxis(t *testing.T) {
	sw := Sweep{
		Base: Spec{Workload: "latcrit,bwhog", Cores: 2, Budget: 50_000},
		Axes: map[string][]any{"qos": {"", "win=2048,cap=1:16,rt=0"}},
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("expanded %d points, want 2", len(points))
	}
	legacy := mustHash(t, sw.Base)
	if points[0].Spec.QoS != "" || points[0].Hash != legacy {
		t.Errorf("unregulated point %+v does not match the legacy spec hash", points[0])
	}
	if points[1].Hash == legacy {
		t.Error("regulated point collapsed onto the legacy hash")
	}
}

// TestRunSpecQoS runs the latency-critical + bandwidth-hog tenant mix
// regulated and unregulated through the shared spec layer, and checks the
// regulated result carries conserved per-source stacks with a visible
// regulation share, which survives into the JSON document.
func TestRunSpecQoS(t *testing.T) {
	if testing.Short() {
		t.Skip("QoS spec run skipped in -short")
	}
	base := Spec{Workload: "latcrit,bwhog", Cores: 2, Budget: 60_000}
	free, err := RunSpec(context.Background(), base, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if free.PerSourceBW != nil {
		t.Error("unregulated run grew per-source stacks")
	}
	if got := free.BW.Cycles[stacks.BWRegulation]; got != 0 {
		t.Errorf("unregulated run spent %v cycles regulated", got)
	}

	reg := base
	reg.QoS = "win=2048,cap=1:4,rt=0"
	res, err := RunSpec(context.Background(), reg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BW.Cycles[stacks.BWRegulation] == 0 {
		t.Error("regulated run shows no regulation component")
	}
	if len(res.PerSourceBW) != 3 { // 2 tenants + shared
		t.Fatalf("per-source rows = %d, want 3", len(res.PerSourceBW))
	}
	banks := float64(res.BW.Banks)
	var sumFull, sumShared [stacks.NumBWComponents]int64
	for _, row := range res.PerSourceBW {
		for c := 0; c < int(stacks.NumBWComponents); c++ {
			sumFull[c] += row.Full[c]
			sumShared[c] += row.Shared[c]
		}
	}
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		got := float64(sumFull[c]) + float64(sumShared[c])/banks
		if got != res.BW.Cycles[c] {
			t.Errorf("component %s: per-source rows sum to %v, aggregate %v", c, got, res.BW.Cycles[c])
		}
	}
	var latSum stacks.LatencyStack
	for _, row := range res.PerSourceLat {
		latSum.Add(row)
	}
	if latSum != res.Lat {
		t.Errorf("per-source latency rows sum to %+v, aggregate %+v", latSum, res.Lat)
	}

	out, err := ResultJSON(reg, res)
	if err != nil {
		t.Fatal(err)
	}
	var row RowJSON
	if err := json.Unmarshal(out, &row); err != nil {
		t.Fatal(err)
	}
	if len(row.PerSource) != 3 {
		t.Fatalf("JSON per_source rows = %d, want 3", len(row.PerSource))
	}
	if row.PerSource[2].Source != stacks.SourceShared {
		t.Errorf("last JSON row source = %d, want %d", row.PerSource[2].Source, stacks.SourceShared)
	}
	if _, ok := row.BandwidthGBps[stacks.BWRegulation.String()]; !ok {
		t.Error("regulated JSON document elided the regulation component")
	}

	// And the unregulated document stays in the legacy shape.
	freeOut, err := ResultJSON(base, free)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(freeOut), "per_source") ||
		strings.Contains(string(freeOut), stacks.BWRegulation.String()) {
		t.Errorf("unregulated document grew QoS keys:\n%s", freeOut)
	}
}
