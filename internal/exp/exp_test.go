package exp

import (
	"encoding/json"
	"strings"
	"testing"

	"dramstacks/internal/extrapolate"
	"dramstacks/internal/gap"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/workload"
)

func TestRunSynthBasics(t *testing.T) {
	res, err := RunSynth(SynthSpec{
		Pattern: workload.Sequential, Cores: 1, Budget: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedGBps() <= 0 {
		t.Error("no bandwidth achieved")
	}
	if err := res.BW.CheckSum(); err != nil {
		t.Error(err)
	}
}

func TestFig2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short")
	}
	rows, err := Fig2(80_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	labels, bw, lat := Stacks(rows)
	if labels[0] != "sequential 1c" || labels[7] != "random 8c" {
		t.Errorf("labels wrong: %v", labels)
	}
	for i := range bw {
		if err := bw[i].CheckSum(); err != nil {
			t.Errorf("%s: %v", labels[i], err)
		}
		if lat[i].Reads == 0 {
			t.Errorf("%s: no reads", labels[i])
		}
	}
	// Scaling within each pattern is monotone.
	for _, base := range []int{0, 4} {
		for i := base + 1; i < base+4; i++ {
			if rows[i].Res.AchievedGBps() <= rows[i-1].Res.AchievedGBps() {
				t.Errorf("%s (%.2f) not above %s (%.2f)",
					rows[i].Label, rows[i].Res.AchievedGBps(),
					rows[i-1].Label, rows[i-1].Res.AchievedGBps())
			}
		}
	}
}

func TestRunGapVariantsAndSamples(t *testing.T) {
	spec := DefaultGap("bfs", 2)
	spec.Scale = 12
	spec.Budget = 120_000
	spec.Sample = 20_000
	res, err := RunGap(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BWSamples) == 0 || len(res.CycleSamples) == 0 {
		t.Error("through-time samples missing")
	}
	if res.CtrlStats.IssuedReads == 0 {
		t.Error("bfs generated no DRAM reads")
	}
	// Write-queue override is applied.
	spec.WriteQueue = 128
	if _, err := RunGap(spec); err != nil {
		t.Fatalf("wq128 variant: %v", err)
	}
	// Unknown benchmark reports a helpful error.
	bad := spec
	bad.Bench = "nope"
	if _, err := RunGap(bad); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestDefaultGapPolicies(t *testing.T) {
	if DefaultGap("bfs", 8).Policy != memctrl.ClosedPage {
		t.Error("bfs should default to the closed page policy")
	}
	if DefaultGap("tc", 1).Policy != memctrl.OpenPage {
		t.Error("tc should default to the open page policy (paper §VIII)")
	}
}

func TestFig9SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("extrapolation sweep skipped in -short")
	}
	// Shrink the study so it runs in test time: patch specs via the
	// building blocks instead of Fig9 itself.
	var preds []struct {
		bench                  string
		measured, naive, stack float64
	}
	for _, bench := range gap.Benchmarks() {
		one := DefaultGap(bench, 1)
		one.Scale = 13
		one.Budget = 600_000
		one.Sample = 50_000
		r1, err := RunGap(one)
		if err != nil {
			t.Fatalf("%s 1c: %v", bench, err)
		}
		eight := DefaultGap(bench, 8)
		eight.Scale = 13
		eight.Budget = 200_000
		r8, err := RunGap(eight)
		if err != nil {
			t.Fatalf("%s 8c: %v", bench, err)
		}
		geo := r1.Cfg.Geom
		p := struct {
			bench                  string
			measured, naive, stack float64
		}{bench, r8.AchievedGBps(), 0, 0}
		p.naive = extrapolate.NaiveSamples(r1.BWSamples, 8, geo)
		p.stack = extrapolate.StackSamples(r1.BWSamples, 8, geo)
		preds = append(preds, p)
	}
	for _, p := range preds {
		if p.measured <= 0 {
			t.Errorf("%s: measured 8c bandwidth is zero", p.bench)
		}
		if p.naive <= 0 || p.stack <= 0 {
			t.Errorf("%s: predictions missing: naive %v stack %v", p.bench, p.naive, p.stack)
		}
		if p.stack > 19.3 || p.naive > 19.3 {
			t.Errorf("%s: prediction exceeds peak: naive %v stack %v", p.bench, p.naive, p.stack)
		}
		// The stack method never predicts above naive: overheads only
		// shrink the achievable share.
		if p.stack > p.naive+1e-9 {
			t.Errorf("%s: stack %v above naive %v", p.bench, p.stack, p.naive)
		}
	}
}

func TestFigFunctionsSmallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps skipped in -short")
	}
	figs := []struct {
		name string
		run  func() (int, error)
		want int
	}{
		{"fig3", func() (int, error) { rows, err := Fig3(50_000); return len(rows), err }, 8},
		{"fig4", func() (int, error) { rows, err := Fig4(50_000); return len(rows), err }, 4},
		{"fig6", func() (int, error) { rows, err := Fig6(50_000); return len(rows), err }, 4},
	}
	for _, f := range figs {
		n, err := f.run()
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if n != f.want {
			t.Errorf("%s rows = %d, want %d", f.name, n, f.want)
		}
	}
}

func TestFig7And8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps skipped in -short")
	}
	// Shrink via the same code path paperfigs uses, but at test scale:
	// override the default spec through RunGap directly for fig-7-like
	// sampling, then check Fig8's row structure via its variants at the
	// default scale constants (budget-capped).
	spec := DefaultGap("bfs", 4)
	spec.Scale = 12
	spec.Budget = 100_000
	spec.Sample = 10_000
	res, err := RunGap(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BWSamples) < 3 {
		t.Errorf("fig7-style sampling produced %d samples", len(res.BWSamples))
	}
	for _, s := range res.BWSamples {
		if err := s.BW.CheckSum(); err != nil {
			t.Error(err)
		}
	}
}

func TestSynthSpecChannels(t *testing.T) {
	res, err := RunSynth(SynthSpec{
		Pattern: workload.Sequential, Cores: 2, Channels: 2, Budget: 40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Channels != 2 || len(res.PerChannelBW) != 2 {
		t.Errorf("channels = %d / %d per-channel stacks", res.Channels, len(res.PerChannelBW))
	}
}

func TestRunStream(t *testing.T) {
	res, err := RunStream(StreamSpec{
		Kind: workload.StreamTriad, Cores: 2, Budget: 50_000, Prewarm: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedGBps() <= 0 {
		t.Error("stream achieved nothing")
	}
	if res.CtrlStats.IssuedWrites == 0 {
		t.Error("triad produced no writes")
	}
}

func TestWriteRowsJSON(t *testing.T) {
	res, err := RunSynth(SynthSpec{Pattern: workload.Sequential, Cores: 1, Budget: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteRowsJSON(&b, []Row{{"seq 1c", res}}); err != nil {
		t.Fatal(err)
	}
	var rows []RowJSON
	if err := json.Unmarshal([]byte(b.String()), &rows); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if len(rows) != 1 || rows[0].Label != "seq 1c" {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.AchievedGBps <= 0 || r.PeakGBps != 19.2 || r.MemCycles != 30_000 {
		t.Errorf("headline fields wrong: %+v", r)
	}
	var sum float64
	for _, v := range r.BandwidthGBps {
		sum += v
	}
	if sum < 19.19 || sum > 19.21 {
		t.Errorf("bandwidth components sum to %v, want peak", sum)
	}
	if _, ok := r.LatencyNS["queue"]; !ok {
		t.Error("latency components missing queue")
	}
}
