package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dramstacks/internal/dram"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
)

// RowJSON is the machine-readable form of one experiment row: the
// bandwidth and latency stacks plus the headline statistics, for
// downstream tooling (plotting, regression tracking).
type RowJSON struct {
	Label string `json:"label"`
	// SpecHash is the content address of the experiment spec that
	// produced this row (set by ResultJSON; empty for figure rows that
	// are not spec-driven).
	SpecHash string `json:"spec_hash,omitempty"`
	// Cancelled marks a partial result from a run stopped early.
	Cancelled bool `json:"cancelled,omitempty"`

	Channels     int     `json:"channels"`
	MemCycles    int64   `json:"mem_cycles"`
	RuntimeMS    float64 `json:"runtime_ms"`
	PeakGBps     float64 `json:"peak_gbps"`
	AchievedGBps float64 `json:"achieved_gbps"`

	BandwidthGBps map[string]float64 `json:"bandwidth_gbps"`
	LatencyNS     map[string]float64 `json:"latency_ns"`
	AvgLatencyNS  float64            `json:"avg_latency_ns"`
	P99LatencyNS  float64            `json:"p99_latency_ns"`

	PageHitRate float64 `json:"page_hit_rate"`
	DRAMReads   int64   `json:"dram_reads"`
	DRAMWrites  int64   `json:"dram_writes"`
	Refreshes   int64   `json:"refreshes"`
}

// ToJSON converts a result into its serializable form.
func ToJSON(label string, res *sim.Result) RowJSON {
	geo := res.Cfg.Geom
	bw := map[string]float64{}
	g := res.BWGBps()
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		bw[c.String()] = g[c]
	}
	lat := map[string]float64{}
	l := res.LatNS()
	for c := stacks.LatComponent(0); c < stacks.NumLatComponents; c++ {
		lat[c.String()] = l[c]
	}
	return RowJSON{
		Label:         label,
		Channels:      res.Channels,
		MemCycles:     res.MemCycles,
		RuntimeMS:     res.RuntimeMS(),
		PeakGBps:      res.PeakGBps(),
		AchievedGBps:  res.AchievedGBps(),
		BandwidthGBps: bw,
		LatencyNS:     lat,
		AvgLatencyNS:  res.Lat.AvgTotalNS(geo),
		P99LatencyNS:  geo.CyclesToNS(res.LatHist.Quantile(0.99)),
		PageHitRate:   res.CtrlStats.PageHitRate(),
		DRAMReads:     res.CtrlStats.IssuedReads,
		DRAMWrites:    res.CtrlStats.IssuedWrites,
		Refreshes:     res.CtrlStats.Refreshes,
	}
}

// ResultJSON renders one spec-driven result as indented JSON with the
// spec hash stamped in, the exact document the dramstacksd service
// serves and cmd/dramstacks -json prints (byte-identical for identical
// specs, since the simulator is deterministic).
func ResultJSON(spec Spec, res *sim.Result) ([]byte, error) {
	h, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	row := ToJSON(spec.Label(), res)
	row.SpecHash = h
	return encodeRow(row, res)
}

// ResultJSONRow renders a result without spec provenance (used by
// cmd/dramstacks for trace replays, which have no portable spec).
func ResultJSONRow(label string, res *sim.Result) ([]byte, error) {
	return encodeRow(ToJSON(label, res), res)
}

func encodeRow(row RowJSON, res *sim.Result) ([]byte, error) {
	row.Cancelled = res.Cancelled
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(row); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ResultSpecHash extracts the spec_hash stamped into a result document
// by ResultJSON, without decoding the rest. The dramstacksd durability
// layer uses it to validate recovered results: a journaled result whose
// embedded hash disagrees with its record is corrupt and must be
// re-simulated rather than served.
func ResultSpecHash(result []byte) (string, error) {
	var doc struct {
		SpecHash string `json:"spec_hash"`
	}
	if err := json.Unmarshal(result, &doc); err != nil {
		return "", fmt.Errorf("exp: undecodable result document: %w", err)
	}
	if doc.SpecHash == "" {
		return "", errors.New("exp: result document carries no spec_hash")
	}
	return doc.SpecHash, nil
}

// SampleJSON is the machine-readable form of one through-time sample
// (one NDJSON line of the service's /samples stream).
type SampleJSON struct {
	StartCycle    int64              `json:"start_cycle"`
	EndCycle      int64              `json:"end_cycle"`
	TimeMS        float64            `json:"time_ms"`
	BandwidthGBps map[string]float64 `json:"bandwidth_gbps"`
	LatencyNS     map[string]float64 `json:"latency_ns"`
}

// SampleToJSON converts one through-time sample using the geometry's
// cycle-to-time conversions.
func SampleToJSON(s stacks.Sample, geo dram.Geometry) SampleJSON {
	bw := map[string]float64{}
	g := s.BW.GBps(geo)
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		bw[c.String()] = g[c]
	}
	lat := map[string]float64{}
	l := s.Lat.AvgNS(geo)
	for c := stacks.LatComponent(0); c < stacks.NumLatComponents; c++ {
		lat[c.String()] = l[c]
	}
	return SampleJSON{
		StartCycle:    s.Start,
		EndCycle:      s.End,
		TimeMS:        geo.CyclesToNS(s.End) / 1e6,
		BandwidthGBps: bw,
		LatencyNS:     lat,
	}
}

// WriteRowsJSON serializes experiment rows as an indented JSON array.
func WriteRowsJSON(w io.Writer, rows []Row) error {
	out := make([]RowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, ToJSON(r.Label, r.Res))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
