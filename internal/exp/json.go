package exp

import (
	"encoding/json"
	"io"

	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
)

// RowJSON is the machine-readable form of one experiment row: the
// bandwidth and latency stacks plus the headline statistics, for
// downstream tooling (plotting, regression tracking).
type RowJSON struct {
	Label string `json:"label"`

	Channels     int     `json:"channels"`
	MemCycles    int64   `json:"mem_cycles"`
	RuntimeMS    float64 `json:"runtime_ms"`
	PeakGBps     float64 `json:"peak_gbps"`
	AchievedGBps float64 `json:"achieved_gbps"`

	BandwidthGBps map[string]float64 `json:"bandwidth_gbps"`
	LatencyNS     map[string]float64 `json:"latency_ns"`
	AvgLatencyNS  float64            `json:"avg_latency_ns"`
	P99LatencyNS  float64            `json:"p99_latency_ns"`

	PageHitRate float64 `json:"page_hit_rate"`
	DRAMReads   int64   `json:"dram_reads"`
	DRAMWrites  int64   `json:"dram_writes"`
	Refreshes   int64   `json:"refreshes"`
}

// ToJSON converts a result into its serializable form.
func ToJSON(label string, res *sim.Result) RowJSON {
	geo := res.Cfg.Geom
	bw := map[string]float64{}
	g := res.BWGBps()
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		bw[c.String()] = g[c]
	}
	lat := map[string]float64{}
	l := res.LatNS()
	for c := stacks.LatComponent(0); c < stacks.NumLatComponents; c++ {
		lat[c.String()] = l[c]
	}
	return RowJSON{
		Label:         label,
		Channels:      res.Channels,
		MemCycles:     res.MemCycles,
		RuntimeMS:     res.RuntimeMS(),
		PeakGBps:      res.PeakGBps(),
		AchievedGBps:  res.AchievedGBps(),
		BandwidthGBps: bw,
		LatencyNS:     lat,
		AvgLatencyNS:  res.Lat.AvgTotalNS(geo),
		P99LatencyNS:  geo.CyclesToNS(res.LatHist.Quantile(0.99)),
		PageHitRate:   res.CtrlStats.PageHitRate(),
		DRAMReads:     res.CtrlStats.IssuedReads,
		DRAMWrites:    res.CtrlStats.IssuedWrites,
		Refreshes:     res.CtrlStats.Refreshes,
	}
}

// WriteRowsJSON serializes experiment rows as an indented JSON array.
func WriteRowsJSON(w io.Writer, rows []Row) error {
	out := make([]RowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, ToJSON(r.Label, r.Res))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
