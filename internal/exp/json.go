package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dramstacks/internal/dram"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
)

// RowJSON is the machine-readable form of one experiment row: the
// bandwidth and latency stacks plus the headline statistics, for
// downstream tooling (plotting, regression tracking).
type RowJSON struct {
	Label string `json:"label"`
	// SpecHash is the content address of the experiment spec that
	// produced this row (set by ResultJSON; empty for figure rows that
	// are not spec-driven).
	SpecHash string `json:"spec_hash,omitempty"`
	// Cancelled marks a partial result from a run stopped early.
	Cancelled bool `json:"cancelled,omitempty"`

	Channels     int     `json:"channels"`
	MemCycles    int64   `json:"mem_cycles"`
	RuntimeMS    float64 `json:"runtime_ms"`
	PeakGBps     float64 `json:"peak_gbps"`
	AchievedGBps float64 `json:"achieved_gbps"`

	BandwidthGBps map[string]float64 `json:"bandwidth_gbps"`
	LatencyNS     map[string]float64 `json:"latency_ns"`
	AvgLatencyNS  float64            `json:"avg_latency_ns"`
	P99LatencyNS  float64            `json:"p99_latency_ns"`

	PageHitRate float64 `json:"page_hit_rate"`
	DRAMReads   int64   `json:"dram_reads"`
	DRAMWrites  int64   `json:"dram_writes"`
	Refreshes   int64   `json:"refreshes"`

	// PerSource splits the stacks by QoS source. Present only when the
	// spec configured a QoS policy, so legacy documents are unchanged.
	PerSource []SourceJSON `json:"per_source,omitempty"`
}

// SourceJSON is one tenant's slice of a row's stacks: its share of the
// bandwidth stack (the rows sum to the aggregate) and the latency stack
// of its own reads.
type SourceJSON struct {
	// Source is the QoS source index (core), or -1 for cycles and reads
	// not attributable to a single source (refresh, constraints, idle,
	// and requests enqueued without a source identity).
	Source        int                `json:"source"`
	BandwidthGBps map[string]float64 `json:"bandwidth_gbps"`
	LatencyNS     map[string]float64 `json:"latency_ns"`
	AvgLatencyNS  float64            `json:"avg_latency_ns"`
	Reads         int64              `json:"reads"`
}

// sourceJSON renders the per-source split of a result (nil without QoS).
func sourceJSON(res *sim.Result) []SourceJSON {
	if res.PerSourceBW == nil {
		return nil
	}
	geo := res.Cfg.Geom
	peak := geo.PeakBandwidthGBs() * float64(res.Channels)
	total := float64(res.BW.TotalCycles)
	out := make([]SourceJSON, 0, len(res.PerSourceBW))
	for i, row := range res.PerSourceBW {
		bw := map[string]float64{}
		cyc := row.Cycles(res.BW.Banks)
		for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
			var v float64
			if total > 0 {
				v = cyc[c] / total * peak
			}
			if elideZeroComponent(c == stacks.BWRegulation, v) {
				continue
			}
			bw[c.String()] = v
		}
		ls := res.PerSourceLat[i]
		lat := map[string]float64{}
		l := ls.AvgNS(geo)
		for c := stacks.LatComponent(0); c < stacks.NumLatComponents; c++ {
			if elideZeroComponent(c == stacks.LatRegulated, l[c]) {
				continue
			}
			lat[c.String()] = l[c]
		}
		out = append(out, SourceJSON{
			Source:        row.Source,
			BandwidthGBps: bw,
			LatencyNS:     lat,
			AvgLatencyNS:  ls.AvgTotalNS(geo),
			Reads:         ls.Reads,
		})
	}
	return out
}

// ToJSON converts a result into its serializable form.
func ToJSON(label string, res *sim.Result) RowJSON {
	geo := res.Cfg.Geom
	bw := map[string]float64{}
	g := res.BWGBps()
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		if elideZeroComponent(c == stacks.BWRegulation, g[c]) {
			continue
		}
		bw[c.String()] = g[c]
	}
	lat := map[string]float64{}
	l := res.LatNS()
	for c := stacks.LatComponent(0); c < stacks.NumLatComponents; c++ {
		if elideZeroComponent(c == stacks.LatRegulated, l[c]) {
			continue
		}
		lat[c.String()] = l[c]
	}
	return RowJSON{
		Label:         label,
		Channels:      res.Channels,
		MemCycles:     res.MemCycles,
		RuntimeMS:     res.RuntimeMS(),
		PeakGBps:      res.PeakGBps(),
		AchievedGBps:  res.AchievedGBps(),
		BandwidthGBps: bw,
		LatencyNS:     lat,
		AvgLatencyNS:  res.Lat.AvgTotalNS(geo),
		P99LatencyNS:  geo.CyclesToNS(res.LatHist.Quantile(0.99)),
		PageHitRate:   res.CtrlStats.PageHitRate(),
		DRAMReads:     res.CtrlStats.IssuedReads,
		DRAMWrites:    res.CtrlStats.IssuedWrites,
		Refreshes:     res.CtrlStats.Refreshes,
		PerSource:     sourceJSON(res),
	}
}

// elideZeroComponent reports whether a QoS-only stack component should
// be dropped from a JSON document. Runs without a QoS policy have these
// components at exactly 0.0 (never merely rounded to it), so eliding
// the zero keeps every legacy document — and therefore every golden
// oracle, cached result and downstream diff — byte-identical.
func elideZeroComponent(isQoSComponent bool, v float64) bool {
	return isQoSComponent && v == 0
}

// ResultJSON renders one spec-driven result as indented JSON with the
// spec hash stamped in, the exact document the dramstacksd service
// serves and cmd/dramstacks -json prints (byte-identical for identical
// specs, since the simulator is deterministic).
func ResultJSON(spec Spec, res *sim.Result) ([]byte, error) {
	h, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	row := ToJSON(spec.Label(), res)
	row.SpecHash = h
	return encodeRow(row, res)
}

// ResultJSONRow renders a result without spec provenance (used by
// cmd/dramstacks for trace replays, which have no portable spec).
func ResultJSONRow(label string, res *sim.Result) ([]byte, error) {
	return encodeRow(ToJSON(label, res), res)
}

func encodeRow(row RowJSON, res *sim.Result) ([]byte, error) {
	row.Cancelled = res.Cancelled
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(row); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ResultSpecHash extracts the spec_hash stamped into a result document
// by ResultJSON, without decoding the rest. The dramstacksd durability
// layer uses it to validate recovered results: a journaled result whose
// embedded hash disagrees with its record is corrupt and must be
// re-simulated rather than served.
func ResultSpecHash(result []byte) (string, error) {
	var doc struct {
		SpecHash string `json:"spec_hash"`
	}
	if err := json.Unmarshal(result, &doc); err != nil {
		return "", fmt.Errorf("exp: undecodable result document: %w", err)
	}
	if doc.SpecHash == "" {
		return "", errors.New("exp: result document carries no spec_hash")
	}
	return doc.SpecHash, nil
}

// SampleJSON is the machine-readable form of one through-time sample
// (one NDJSON line of the service's /samples stream).
type SampleJSON struct {
	StartCycle    int64              `json:"start_cycle"`
	EndCycle      int64              `json:"end_cycle"`
	TimeMS        float64            `json:"time_ms"`
	BandwidthGBps map[string]float64 `json:"bandwidth_gbps"`
	LatencyNS     map[string]float64 `json:"latency_ns"`
}

// SampleToJSON converts one through-time sample using the geometry's
// cycle-to-time conversions.
func SampleToJSON(s stacks.Sample, geo dram.Geometry) SampleJSON {
	bw := map[string]float64{}
	g := s.BW.GBps(geo)
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		if elideZeroComponent(c == stacks.BWRegulation, g[c]) {
			continue
		}
		bw[c.String()] = g[c]
	}
	lat := map[string]float64{}
	l := s.Lat.AvgNS(geo)
	for c := stacks.LatComponent(0); c < stacks.NumLatComponents; c++ {
		if elideZeroComponent(c == stacks.LatRegulated, l[c]) {
			continue
		}
		lat[c.String()] = l[c]
	}
	return SampleJSON{
		StartCycle:    s.Start,
		EndCycle:      s.End,
		TimeMS:        geo.CyclesToNS(s.End) / 1e6,
		BandwidthGBps: bw,
		LatencyNS:     lat,
	}
}

// WriteRowsJSON serializes experiment rows as an indented JSON array.
func WriteRowsJSON(w io.Writer, rows []Row) error {
	out := make([]RowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, ToJSON(r.Label, r.Res))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
