package exp

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// TestRunSweepOrderedAndMatchesSingle runs a small sweep and checks the
// results arrive index-aligned with the expansion and identical to
// standalone RunSpec runs of the same specs.
func TestRunSweepOrderedAndMatchesSingle(t *testing.T) {
	sw := Sweep{
		Base: Spec{Workload: "seq", Budget: 20_000},
		Axes: map[string][]any{"cores": {1, 2}, "workload": {"seq", "random"}},
	}
	res, err := RunSweep(context.Background(), sw, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for i, pr := range res.Points {
		if pr.Err != nil {
			t.Fatalf("point %d (%s): %v", i, pr.Point.Label(), pr.Err)
		}
		if pr.Point.Index != i {
			t.Errorf("point %d has Index %d", i, pr.Point.Index)
		}
		want, err := RunSpec(context.Background(), pr.Point.Spec, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if pr.Res.MemCycles != want.MemCycles || pr.Res.BW != want.BW {
			t.Errorf("point %d (%s): sweep result differs from standalone run", i, pr.Point.Label())
		}
	}
}

// TestRunSweepCancelPoint cancels one long point mid-sweep via the
// per-point context; the others complete normally.
func TestRunSweepCancelPoint(t *testing.T) {
	sw := Sweep{
		Base: Spec{Workload: "seq,random", Cores: 2},
		// The cycles axis makes point 2 effectively unbounded: the test
		// only terminates if CancelPoint reaches it.
		Axes: map[string][]any{"cycles": {10_000, 20_000, 4_000_000_000}},
	}
	r, err := NewRunner(sw, SweepOptions{
		Workers: 1,
		OnPoint: func(pr PointResult, done, total int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With one worker points run in index order; cancel the unbounded
	// one as soon as the first finishes.
	r.opt.OnPoint = func(pr PointResult, done, total int) {
		if done == 1 {
			r.CancelPoint(2)
		}
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res.Points[i].Err != nil || res.Points[i].Res == nil || res.Points[i].Res.Cancelled {
			t.Errorf("point %d should have completed normally: err=%v", i, res.Points[i].Err)
		}
	}
	last := res.Points[2]
	if last.Err != nil {
		t.Fatalf("cancelled point errored: %v", last.Err)
	}
	if last.Res == nil || !last.Res.Cancelled {
		t.Error("cancelled point should carry a partial result with Cancelled set")
	}
	if last.Res != nil && last.Res.MemCycles >= 4_000_000_000 {
		t.Error("cancelled point ran to its full budget")
	}
}

// TestRunSweepCancelAllMidSweep cancels the whole run from a progress
// callback; unstarted points are skipped with a context error.
func TestRunSweepCancelAllMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := Sweep{
		Base: Spec{Workload: "seq,random", Cores: 2},
		Axes: map[string][]any{"cycles": {10_000, 4_000_000_000, 4_000_000_001, 4_000_000_002}},
	}
	opt := SweepOptions{Workers: 1, OnPoint: func(pr PointResult, done, total int) {
		if done == 1 {
			cancel()
		}
	}}
	start := time.Now()
	res, err := RunSweep(ctx, sw, opt)
	if err != nil {
		t.Fatalf("cancellation should not surface as a sweep error, got %v", err)
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Errorf("cancelled sweep took %v", wall)
	}
	if res.Points[0].Err != nil {
		t.Errorf("first point: %v", res.Points[0].Err)
	}
	for i := 1; i < len(res.Points); i++ {
		pr := res.Points[i]
		skipped := pr.Err != nil && pr.Res == nil
		partial := pr.Err == nil && pr.Res != nil && pr.Res.Cancelled
		if !skipped && !partial {
			t.Errorf("point %d should be skipped or partial after cancel-all (err=%v)", i, pr.Err)
		}
	}
}

// TestRunSweepKeepGoingWithCancelledPoint checks the keep-going policy:
// one point cancelled up front, the rest still run to completion.
func TestRunSweepKeepGoingWithCancelledPoint(t *testing.T) {
	sw := Sweep{
		Base: Spec{Workload: "seq", Budget: 10_000},
		Axes: map[string][]any{"cores": {1, 2, 4}},
	}
	r, err := NewRunner(sw, SweepOptions{Workers: 1, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	r.CancelPoint(1) // before Run: the point starts pre-cancelled
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[1].Res == nil || !res.Points[1].Res.Cancelled {
		t.Error("pre-cancelled point should yield a Cancelled partial result")
	}
	for _, i := range []int{0, 2} {
		if res.Points[i].Err != nil || res.Points[i].Res == nil || res.Points[i].Res.Cancelled {
			t.Errorf("point %d should have completed (err=%v)", i, res.Points[i].Err)
		}
	}
}

// TestSweepResultJSONDeterministic runs the same sweep twice and pins
// byte-identical aggregate documents (the simulator is deterministic
// and the aggregate holds no wall-clock fields).
func TestSweepResultJSONDeterministic(t *testing.T) {
	sw := Sweep{
		Base: Spec{Workload: "seq", Budget: 30_000, Sample: 10_000},
		Axes: map[string][]any{"cores": {1, 2}},
	}
	var docs [][]byte
	for i := 0; i < 2; i++ {
		res, err := RunSweep(context.Background(), sw, SweepOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		j, err := res.ToJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, b)
	}
	if string(docs[0]) != string(docs[1]) {
		t.Error("aggregate sweep JSON differs between identical runs")
	}
	var doc SweepJSON
	if err := json.Unmarshal(docs[0], &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SweepHash == "" || len(doc.Points) != 2 || doc.Points[0].Result == nil {
		t.Errorf("aggregate document malformed: %s", docs[0])
	}
	// cores is an axis and the base is sampled: the 1-core run must
	// predict the 2-core bandwidth (paper Fig. 9 method).
	if len(doc.Extrapolations) != 1 || doc.Extrapolations[0].Name != "cores=2" {
		t.Errorf("extrapolations = %+v, want one cores=2 prediction", doc.Extrapolations)
	}
	if e := doc.Extrapolations[0]; e.MeasuredGBps <= 0 || e.StackGBps <= 0 {
		t.Errorf("degenerate extrapolation %+v", doc.Extrapolations[0])
	}
}

// sweep8 is the acceptance-criterion sweep: 8 points of equal cost.
func sweep8(cycles int64) Sweep {
	return Sweep{
		Base: Spec{Workload: "seq", Budget: cycles},
		Axes: map[string][]any{"cores": {1, 2, 4, 8}, "workload": {"seq", "random"}},
	}
}

// TestSweepParallelFasterThanSerial demonstrates the tentpole speedup:
// on a multi-core machine an 8-point sweep across the pool beats the
// same 8 points run one after another. Skipped where there is no
// parallel hardware to demonstrate it on.
func TestSweepParallelFasterThanSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: need >= 4 cores for a robust speedup measurement", runtime.GOMAXPROCS(0))
	}
	sw := sweep8(100_000)
	measure := func(workers int) time.Duration {
		start := time.Now()
		if _, err := RunSweep(context.Background(), sw, SweepOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure(1) // warm the allocator and caches once
	serial := measure(1)
	parallel := measure(runtime.GOMAXPROCS(0))
	t.Logf("8-point sweep: serial %v, parallel %v (%.1fx)", serial, parallel, float64(serial)/float64(parallel))
	if parallel >= serial*3/4 {
		t.Errorf("parallel sweep %v not measurably faster than serial %v", parallel, serial)
	}
}

// BenchmarkSweep8PointSerial and ...Parallel are the benchmark form of
// the same comparison (`go test -bench Sweep8Point -benchtime 1x ./internal/exp`).
func BenchmarkSweep8PointSerial(b *testing.B)   { benchSweep8(b, 1) }
func BenchmarkSweep8PointParallel(b *testing.B) { benchSweep8(b, runtime.GOMAXPROCS(0)) }

func benchSweep8(b *testing.B, workers int) {
	sw := sweep8(100_000)
	for i := 0; i < b.N; i++ {
		if _, err := RunSweep(context.Background(), sw, SweepOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}
