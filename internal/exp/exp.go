// Package exp defines the paper's experiments (every figure of the
// evaluation) on top of the simulator, shared by cmd/paperfigs, the
// benchmark harness in the repository root, and the examples.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"dramstacks/internal/dram"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/extrapolate"
	"dramstacks/internal/gap"
	"dramstacks/internal/graph"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

// Row is one labeled experiment result (one bar group in a figure).
type Row struct {
	Label string
	Res   *sim.Result
}

// SynthSpec describes a synthetic-stream experiment.
type SynthSpec struct {
	Pattern   workload.Pattern
	Cores     int
	Channels  int // memory channels (0 = 1)
	StoreFrac float64
	Map       sim.Mapping
	Policy    memctrl.PagePolicy
	Budget    int64 // memory cycles
	Prewarm   int64 // functional warmup memory ops per core
	Sample    int64 // through-time sample interval (0 = off)
	// Trace, if non-nil, receives every DRAM command.
	Trace func(cycle int64, cmd dram.Command)
}

// RunSynth runs one synthetic experiment.
func RunSynth(spec SynthSpec) (*sim.Result, error) {
	sys, err := sim.New(standard.Default(),
		sim.WithSources(sim.SyntheticSources(spec.Pattern, spec.Cores, spec.StoreFrac)...),
		sim.WithChannels(spec.Channels),
		sim.WithMapping(spec.Map),
		sim.WithCtrl(func(c *memctrl.Config) { c.Policy = spec.Policy }),
		sim.WithMaxMemCycles(spec.Budget),
		sim.WithPrewarmOps(spec.Prewarm),
		sim.WithSampleInterval(spec.Sample),
		sim.WithTrace(spec.Trace))
	if err != nil {
		return nil, err
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		return nil, fmt.Errorf("exp: DRAM timing violation: %v", res.Violations[0])
	}
	return res, nil
}

// StreamSpec describes a STREAM kernel experiment.
type StreamSpec struct {
	Kind     workload.StreamKind
	Cores    int
	Channels int
	Map      sim.Mapping
	Policy   memctrl.PagePolicy
	Budget   int64
	Prewarm  int64
	Sample   int64
}

// RunStream runs one STREAM kernel experiment.
func RunStream(spec StreamSpec) (*sim.Result, error) {
	sys, err := sim.New(standard.Default(),
		sim.WithSources(workload.StreamSources(spec.Kind, spec.Cores)...),
		sim.WithChannels(spec.Channels),
		sim.WithMapping(spec.Map),
		sim.WithCtrl(func(c *memctrl.Config) { c.Policy = spec.Policy }),
		sim.WithMaxMemCycles(spec.Budget),
		sim.WithPrewarmOps(spec.Prewarm),
		sim.WithSampleInterval(spec.Sample))
	if err != nil {
		return nil, err
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		return nil, fmt.Errorf("exp: DRAM timing violation: %v", res.Violations[0])
	}
	return res, nil
}

// GapSpec describes a GAP benchmark experiment.
type GapSpec struct {
	Bench  string
	Cores  int
	Scale  int // Kronecker scale (2^Scale vertices)
	Degree int // edges per vertex before symmetrization
	Seed   int64
	Map    sim.Mapping
	Policy memctrl.PagePolicy
	// WriteQueue overrides the write buffer capacity when positive
	// (the paper's wq128 variant).
	WriteQueue int
	Budget     int64
	Sample     int64
	// Trace, if non-nil, receives every DRAM command.
	Trace func(cycle int64, cmd dram.Command)
}

// DefaultGap returns the benchmark at the scale used by the paper-figure
// harness: a Kronecker graph whose CSR comfortably exceeds the 11 MB LLC.
// The paper runs GAP with the closed page policy (better for the
// irregular kernels), except tc, which favors open.
func DefaultGap(bench string, cores int) GapSpec {
	spec := GapSpec{
		Bench:  bench,
		Cores:  cores,
		Scale:  17,
		Degree: 16,
		Seed:   42,
		Policy: memctrl.ClosedPage,
		Budget: 1_500_000,
	}
	if bench == "tc" {
		spec.Policy = memctrl.OpenPage
	}
	return spec
}

// graphCache shares generated, kernel-prepared graphs across
// experiments (generation dominates setup time at scale 17). Prepared
// graphs are read-only afterwards, so concurrent experiments may share
// them.
var (
	graphMu    sync.Mutex
	graphCache = map[string]*graph.Graph{}
)

func buildGraph(spec GapSpec) (*graph.Graph, error) {
	key := fmt.Sprintf("%d/%d/%d/%s", spec.Scale, spec.Degree, spec.Seed, spec.Bench)
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g, nil
	}
	g := graph.Kronecker(spec.Scale, spec.Degree, spec.Seed)
	if err := gap.Prepare(spec.Bench, g); err != nil {
		return nil, err
	}
	graphCache[key] = g
	return g, nil
}

// RunGap runs one GAP benchmark experiment.
func RunGap(spec GapSpec) (*sim.Result, error) {
	g, err := buildGraph(spec)
	if err != nil {
		return nil, err
	}
	runner, _, err := gap.Build(spec.Bench, g, spec.Cores)
	if err != nil {
		return nil, err
	}
	sys, err := sim.New(standard.Default(),
		sim.WithSources(runner.Sources()...),
		sim.WithMapping(spec.Map),
		sim.WithCtrl(func(c *memctrl.Config) {
			c.Policy = spec.Policy
			if spec.WriteQueue > 0 {
				c.WriteQueueCap = spec.WriteQueue
				c.WriteHi = spec.WriteQueue * 3 / 4
				c.WriteLo = spec.WriteQueue / 4
			}
		}),
		sim.WithMaxMemCycles(spec.Budget),
		sim.WithSampleInterval(spec.Sample),
		sim.WithTrace(spec.Trace))
	if err != nil {
		return nil, err
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		return nil, fmt.Errorf("exp: DRAM timing violation: %v", res.Violations[0])
	}
	return res, nil
}

// runRows runs n labeled experiments concurrently (bounded by the CPU
// count; each simulation is single-threaded) and returns them in order.
func runRows(n int, run func(i int) (Row, error)) ([]Row, error) {
	rows := make([]Row, n)
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = run(i)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig2 reproduces the read-only core-count sweep: sequential and random,
// 1 to 8 cores (paper Fig. 2).
func Fig2(budget int64) ([]Row, error) {
	type cfg struct {
		pat   workload.Pattern
		cores int
	}
	var cfgs []cfg
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, cores := range []int{1, 2, 4, 8} {
			cfgs = append(cfgs, cfg{pat, cores})
		}
	}
	return runRows(len(cfgs), func(i int) (Row, error) {
		c := cfgs[i]
		res, err := RunSynth(SynthSpec{
			Pattern: c.pat, Cores: c.cores, Budget: budget, Prewarm: 1 << 20,
		})
		return Row{fmt.Sprintf("%s %dc", c.pat, c.cores), res}, err
	})
}

// Fig3 reproduces the store-fraction sweep on one core (paper Fig. 3).
func Fig3(budget int64) ([]Row, error) {
	type cfg struct {
		pat workload.Pattern
		w   float64
	}
	var cfgs []cfg
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, w := range []float64{0, 0.1, 0.2, 0.5} {
			cfgs = append(cfgs, cfg{pat, w})
		}
	}
	return runRows(len(cfgs), func(i int) (Row, error) {
		c := cfgs[i]
		res, err := RunSynth(SynthSpec{
			Pattern: c.pat, Cores: 1, StoreFrac: c.w, Budget: budget, Prewarm: 1 << 20,
		})
		return Row{fmt.Sprintf("%s w%d", c.pat, int(c.w*100)), res}, err
	})
}

// Fig4 reproduces the page-policy comparison on two cores (paper Fig. 4).
func Fig4(budget int64) ([]Row, error) {
	type cfg struct {
		pat workload.Pattern
		pol memctrl.PagePolicy
	}
	var cfgs []cfg
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, pol := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.ClosedPage} {
			cfgs = append(cfgs, cfg{pat, pol})
		}
	}
	return runRows(len(cfgs), func(i int) (Row, error) {
		c := cfgs[i]
		res, err := RunSynth(SynthSpec{
			Pattern: c.pat, Cores: 2, Policy: c.pol, Budget: budget, Prewarm: 1 << 20,
		})
		return Row{fmt.Sprintf("%s %s", c.pat, c.pol), res}, err
	})
}

// Fig6 reproduces the bank-indexing comparison for the two conflict
// cases (paper Fig. 6): sequential with 50% stores on one core (open
// pages), and the read-only sequential pattern on two cores with closed
// pages.
func Fig6(budget int64) ([]Row, error) {
	specs := []struct {
		label string
		spec  SynthSpec
	}{
		{"seq w50 1c open def", SynthSpec{Pattern: workload.Sequential, Cores: 1, StoreFrac: 0.5, Map: sim.MapDefault, Budget: budget, Prewarm: 1 << 20}},
		{"seq w50 1c open int", SynthSpec{Pattern: workload.Sequential, Cores: 1, StoreFrac: 0.5, Map: sim.MapInterleaved, Budget: budget, Prewarm: 1 << 20}},
		{"seq w0 2c closed def", SynthSpec{Pattern: workload.Sequential, Cores: 2, Policy: memctrl.ClosedPage, Map: sim.MapDefault, Budget: budget, Prewarm: 1 << 20}},
		{"seq w0 2c closed int", SynthSpec{Pattern: workload.Sequential, Cores: 2, Policy: memctrl.ClosedPage, Map: sim.MapInterleaved, Budget: budget, Prewarm: 1 << 20}},
	}
	return runRows(len(specs), func(i int) (Row, error) {
		res, err := RunSynth(specs[i].spec)
		return Row{specs[i].label, res}, err
	})
}

// Fig7 reproduces the through-time cycle / bandwidth / latency stacks
// for bfs on 8 cores (paper Fig. 7). The result carries BWSamples and
// CycleSamples.
func Fig7(budget, sampleInterval int64) (*sim.Result, error) {
	spec := DefaultGap("bfs", 8)
	spec.Budget = budget
	spec.Sample = sampleInterval
	return RunGap(spec)
}

// Fig8 reproduces the latency-stack variants (paper Fig. 8): bfs on 8
// cores with the default mapping, cache-line interleaving, and a
// 128-entry write queue; tc on one core with default and interleaved
// mapping.
func Fig8(budget int64) ([]Row, error) {
	variants := []struct {
		label string
		mod   func(*GapSpec)
	}{
		{"bfs 8c def", func(*GapSpec) {}},
		{"bfs 8c int", func(s *GapSpec) { s.Map = sim.MapInterleaved }},
		{"bfs 8c wq128", func(s *GapSpec) { s.WriteQueue = 128 }},
	}
	type job struct {
		label string
		spec  GapSpec
	}
	var jobs []job
	for _, v := range variants {
		spec := DefaultGap("bfs", 8)
		spec.Budget = budget
		v.mod(&spec)
		jobs = append(jobs, job{v.label, spec})
	}
	for _, m := range []sim.Mapping{sim.MapDefault, sim.MapInterleaved} {
		spec := DefaultGap("tc", 1)
		spec.Budget = budget
		spec.Map = m
		spec.Policy = memctrl.ClosedPage // the paper's Fig. 8 tc case
		jobs = append(jobs, job{fmt.Sprintf("tc 1c %s", m), spec})
	}
	// Prepare shared graphs before the parallel fan-out.
	for _, j := range jobs {
		if _, err := buildGraph(j.spec); err != nil {
			return nil, err
		}
	}
	return runRows(len(jobs), func(i int) (Row, error) {
		res, err := RunGap(jobs[i].spec)
		return Row{jobs[i].label, res}, err
	})
}

// Fig9 reproduces the bandwidth extrapolation study (paper Fig. 9):
// for each GAP benchmark, measure 1-core and 8-core bandwidth, then
// predict the 8-core value from the 1-core through-time samples with the
// naive and the stack-based method.
func Fig9(budget, sampleInterval int64) ([]extrapolate.Prediction, error) {
	benches := gap.Benchmarks()
	rows, err := runRows(2*len(benches), func(i int) (Row, error) {
		bench := benches[i/2]
		spec := DefaultGap(bench, 1)
		spec.Budget = budget * 4 // one core needs longer to cover phases
		spec.Sample = sampleInterval
		if i%2 == 1 {
			spec = DefaultGap(bench, 8)
			spec.Budget = budget
		}
		res, err := RunGap(spec)
		return Row{bench, res}, err
	})
	if err != nil {
		return nil, err
	}
	var preds []extrapolate.Prediction
	for i, bench := range benches {
		r1 := rows[2*i].Res
		r8 := rows[2*i+1].Res
		geo := r1.Cfg.Geom
		preds = append(preds, extrapolate.Prediction{
			Name:     bench,
			Measured: r8.AchievedGBps(),
			Naive:    extrapolate.NaiveSamples(r1.BWSamples, 8, geo),
			Stack:    extrapolate.StackSamples(r1.BWSamples, 8, geo),
		})
	}
	return preds, nil
}

// Stacks extracts the bandwidth and latency stacks of rows for plotting.
func Stacks(rows []Row) (labels []string, bw []stacks.BandwidthStack, lat []stacks.LatencyStack) {
	for _, r := range rows {
		labels = append(labels, r.Label)
		bw = append(bw, r.Res.BW)
		lat = append(lat, r.Res.Lat)
	}
	return
}
