package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"dramstacks/internal/cpu"
	"dramstacks/internal/dram"
	"dramstacks/internal/dram/standard"
	"dramstacks/internal/gap"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/qos"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

// DefaultBudget is the memory-cycle budget a spec gets when none is
// given (mirrors the cmd/dramstacks -cycles flag default).
const DefaultBudget = 500_000

// BudgetUnlimited requests running the workload to completion instead of
// stopping on a cycle budget (only meaningful for finite workloads such
// as GAP kernels and traces).
const BudgetUnlimited = -1

// SpecVersion is the current experiment-schema version. Specs and
// sweeps carry an explicit "version" field; 0 (elided) means the
// current version, anything else is rejected so that a future v2 can
// change field semantics without silently misreading old documents.
const SpecVersion = 1

// Spec is a portable, JSON-serializable experiment description shared by
// cmd/dramstacks (one flag per field) and the dramstacksd service (POST
// /v1/jobs body). The zero value of every field means "default"; see
// Normalized for the resolution rules.
type Spec struct {
	// Version is the spec-schema version (0 or SpecVersion).
	Version int `json:"version,omitempty"`
	// Workload is a synthetic pattern (seq, random, strided), a STREAM
	// kernel (copy, scale, add, triad), a GAP kernel (bc, bfs, cc, pr,
	// sssp, tc), or a comma mix of synthetic/STREAM kinds assigned to
	// cores round-robin (e.g. "seq,random").
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`    // default 1
	Channels int    `json:"channels"` // default 1
	// Stores is the store fraction for synthetic workloads (0..1).
	Stores float64 `json:"stores"`
	// Policy is the page policy: "open" or "closed" (default: open;
	// GAP kernels default closed, tc open).
	Policy string `json:"policy"`
	// Mapping is the address mapping: "def", "int" or "xor".
	Mapping string `json:"map"`
	// Standard names the DRAM standard preset the machine is built from
	// (see internal/dram/standard); "" means ddr4-2400, the paper's
	// configuration. The default is elided from the canonical encoding so
	// pre-standard specs keep their hashes.
	Standard string `json:"standard,omitempty"`
	// Budget is the memory-cycle budget. 0 means DefaultBudget;
	// BudgetUnlimited (-1) runs the workload to completion.
	Budget int64 `json:"cycles"`
	// Sample is the through-time sample interval in memory cycles
	// (0 = sampling off).
	Sample int64 `json:"sample"`
	// Scale is the Kronecker graph scale for GAP kernels (default 17).
	Scale int `json:"scale"`
	// WriteQueue overrides the write-queue capacity for GAP kernels when
	// positive (the paper's wq128 variant).
	WriteQueue int `json:"wq"`
	// QoS is the multi-tenant policy in the internal/qos grammar
	// ("win=2048,cap=1:16,rt=0"): per-core bandwidth budgets over a
	// regulation window and a real-time priority tier, with per-source
	// stack attribution. Empty (the default) disables QoS and is elided
	// from the canonical encoding, so pre-QoS specs keep their hashes.
	QoS string `json:"qos,omitempty"`
}

func isSynthWorkload(w string) bool {
	switch w {
	case "seq", "random", "strided", "latcrit", "bwhog":
		return true
	}
	return false
}

func isStreamWorkload(w string) bool {
	switch w {
	case "copy", "scale", "add", "triad":
		return true
	}
	return false
}

func isGapWorkload(w string) bool {
	for _, b := range gap.Benchmarks() {
		if b == w {
			return true
		}
	}
	return false
}

func isMixWorkload(w string) bool { return strings.Contains(w, ",") }

// Normalized resolves every defaulted field to its explicit value and
// zeroes fields that do not apply to the workload (Scale and WriteQueue
// outside GAP, Stores outside pure synthetic patterns), so that two
// specs describing the same experiment normalize identically. It is the
// basis of the canonical encoding and therefore of the spec hash.
func (s Spec) Normalized() Spec {
	n := s
	if n.Version == 0 {
		n.Version = SpecVersion
	}
	n.Workload = strings.TrimSpace(n.Workload)
	if n.Workload == "" {
		n.Workload = "seq"
	}
	if isMixWorkload(n.Workload) {
		parts := strings.Split(n.Workload, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		n.Workload = strings.Join(parts, ",")
	}
	if n.Cores == 0 {
		n.Cores = 1
	}
	// A parseable policy is rewritten in the grammar's canonical
	// directive order so equivalent spellings hash identically; an
	// unparseable one is left as-is for Validate to report.
	n.QoS = strings.TrimSpace(n.QoS)
	if q, err := qos.Parse(n.QoS, n.Cores); err == nil {
		n.QoS = q.String()
	}
	if n.Channels == 0 {
		n.Channels = 1
	}
	if n.Mapping == "" {
		n.Mapping = "def"
	}
	n.Standard = strings.ToLower(strings.TrimSpace(n.Standard))
	if n.Standard == "" {
		n.Standard = standard.DefaultName
	}
	if n.Budget == 0 {
		n.Budget = DefaultBudget
	} else if n.Budget < 0 {
		n.Budget = BudgetUnlimited
	}
	if n.Policy == "" {
		n.Policy = "open"
		if isGapWorkload(n.Workload) && n.Workload != "tc" {
			n.Policy = "closed"
		}
	}
	if isGapWorkload(n.Workload) {
		if n.Scale == 0 {
			n.Scale = 17
		}
		n.Stores = 0
	} else {
		n.Scale = 0
		n.WriteQueue = 0
		if !isSynthWorkload(n.Workload) {
			n.Stores = 0
		}
	}
	return n
}

// Validate reports a descriptive error for unusable specs. It expects a
// normalized spec; Canonical, Hash and RunSpec normalize first.
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("exp: unsupported spec version %d (this build speaks version %d)", s.Version, SpecVersion)
	}
	switch {
	case isMixWorkload(s.Workload):
		for _, kind := range strings.Split(s.Workload, ",") {
			if !isSynthWorkload(kind) && !isStreamWorkload(kind) {
				return fmt.Errorf("exp: unknown mix component %q (synthetic and STREAM kinds only)", kind)
			}
		}
	case isSynthWorkload(s.Workload), isStreamWorkload(s.Workload), isGapWorkload(s.Workload):
	default:
		return fmt.Errorf("exp: unknown workload %q (want seq, random, strided, a STREAM kernel, one of %v, or a comma mix)",
			s.Workload, gap.Benchmarks())
	}
	if s.Cores < 1 || s.Cores > 8 {
		return fmt.Errorf("exp: cores must be in 1..8, got %d", s.Cores)
	}
	if s.Channels < 1 || s.Channels > 8 {
		return fmt.Errorf("exp: channels must be in 1..8, got %d", s.Channels)
	}
	if s.Stores < 0 || s.Stores > 1 {
		return fmt.Errorf("exp: store fraction must be in 0..1, got %g", s.Stores)
	}
	switch s.Policy {
	case "open", "closed":
	default:
		return fmt.Errorf("exp: unknown policy %q (want open or closed)", s.Policy)
	}
	switch s.Mapping {
	case "def", "int", "xor":
	default:
		return fmt.Errorf("exp: unknown mapping %q (want def, int or xor)", s.Mapping)
	}
	if _, err := standard.Lookup(s.Standard); err != nil {
		return err
	}
	if s.Budget < BudgetUnlimited {
		return fmt.Errorf("exp: budget must be positive, 0 (default) or -1 (unlimited), got %d", s.Budget)
	}
	if s.Sample < 0 {
		return fmt.Errorf("exp: sample interval must be non-negative, got %d", s.Sample)
	}
	if s.WriteQueue < 0 {
		return fmt.Errorf("exp: write queue override must be non-negative, got %d", s.WriteQueue)
	}
	if isGapWorkload(s.Workload) && (s.Scale < 4 || s.Scale > 24) {
		return fmt.Errorf("exp: GAP graph scale must be in 4..24, got %d", s.Scale)
	}
	if _, err := qos.Parse(s.QoS, s.Cores); err != nil {
		return err
	}
	return nil
}

// Canonical returns the deterministic canonical JSON encoding of the
// spec: defaults made explicit, irrelevant fields zeroed, keys sorted,
// no insignificant whitespace. Two specs describing the same experiment
// — whatever the field order or elided defaults of their original JSON —
// canonicalize to the same bytes.
func (s Spec) Canonical() ([]byte, error) {
	n := s.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	// encoding/json sorts map keys, giving the deterministic ordering.
	m := map[string]any{
		"version":  n.Version,
		"workload": n.Workload,
		"cores":    n.Cores,
		"channels": n.Channels,
		"stores":   n.Stores,
		"policy":   n.Policy,
		"map":      n.Mapping,
		"cycles":   n.Budget,
		"sample":   n.Sample,
		"scale":    n.Scale,
		"wq":       n.WriteQueue,
	}
	// The default standard is elided so every spec written before the
	// standard field existed keeps its canonical bytes — and therefore
	// its spec hash, cache entries and journaled results.
	if n.Standard != standard.DefaultName {
		m["standard"] = n.Standard
	}
	// Likewise the empty (disabled) QoS policy, so pre-QoS specs keep
	// their hashes too.
	if n.QoS != "" {
		m["qos"] = n.QoS
	}
	return json.Marshal(m)
}

// Hash returns the content address of the spec: the hex SHA-256 of its
// canonical encoding. It keys the service result cache and is stamped
// into result JSON as spec_hash.
func (s Spec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// Label returns the human-readable experiment label used in charts and
// result JSON, in the style of the paper figures ("sequential 4c"). A
// non-default DRAM standard is appended ("sequential 4c ddr5-4800").
func (s Spec) Label() string {
	n := s.Normalized()
	var lbl string
	switch {
	case isMixWorkload(n.Workload):
		lbl = fmt.Sprintf("mix(%s) %dc", n.Workload, n.Cores)
	case n.Workload == "latcrit", n.Workload == "bwhog":
		lbl = fmt.Sprintf("%s %dc", n.Workload, n.Cores)
	case isSynthWorkload(n.Workload):
		lbl = fmt.Sprintf("%s %dc", synthPattern(n.Workload), n.Cores)
	case isStreamWorkload(n.Workload):
		lbl = fmt.Sprintf("stream-%s %dc", n.Workload, n.Cores)
	default:
		lbl = fmt.Sprintf("%s %dc", n.Workload, n.Cores)
	}
	if n.Standard != standard.DefaultName {
		lbl += " " + n.Standard
	}
	if n.QoS != "" {
		lbl += " qos(" + n.QoS + ")"
	}
	return lbl
}

func synthPattern(w string) workload.Pattern {
	switch w {
	case "random":
		return workload.Random
	case "strided":
		return workload.Strided
	default:
		return workload.Sequential
	}
}

func streamKind(w string) workload.StreamKind {
	switch w {
	case "scale":
		return workload.StreamScale
	case "add":
		return workload.StreamAdd
	case "triad":
		return workload.StreamTriad
	default:
		return workload.StreamCopy
	}
}

// SpecStandard resolves the DRAM standard a spec runs on (the default
// standard for pre-standard specs). Callers that need per-spec geometry
// — e.g. the service's sample conversion — go through this so their view
// matches what RunSpec simulates.
func SpecStandard(s Spec) (standard.Standard, error) {
	return standard.Lookup(s.Normalized().Standard)
}

// RunOptions carries the side-channel hooks of a spec run.
type RunOptions struct {
	// Trace, if non-nil, receives every issued DRAM command.
	Trace func(cycle int64, cmd dram.Command)
	// OnSample, if non-nil, receives each through-time sample as soon as
	// it is cut (requires Spec.Sample > 0).
	OnSample func(s stacks.Sample)
}

// RunSpec normalizes and validates the spec, assembles the machine and
// runs it under ctx. Cancelling ctx stops the simulation promptly; the
// partial result is returned with Cancelled set rather than an error.
// This is the single spec→simulation path shared by cmd/dramstacks and
// the dramstacksd service, so their results are byte-identical for
// identical specs.
func RunSpec(ctx context.Context, spec Spec, opt RunOptions) (*sim.Result, error) {
	n := spec.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}

	budget := n.Budget
	if budget == BudgetUnlimited {
		budget = 0 // sim.Config: 0 = run to completion
	}
	std, err := standard.Lookup(n.Standard)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultFor(std, n.Cores)
	cfg.Channels = n.Channels
	switch n.Mapping {
	case "int":
		cfg.Map = sim.MapInterleaved
	case "xor":
		cfg.Map = sim.MapXOR
	}
	cfg.Ctrl.Policy = memctrl.OpenPage
	if n.Policy == "closed" {
		cfg.Ctrl.Policy = memctrl.ClosedPage
	}
	if n.QoS != "" {
		q, err := qos.Parse(n.QoS, n.Cores)
		if err != nil {
			return nil, err
		}
		cfg.Ctrl.QoS = q
	}
	cfg.MaxMemCycles = budget
	cfg.SampleInterval = n.Sample
	cfg.Trace = opt.Trace

	var sources []cpu.Source
	switch {
	case isMixWorkload(n.Workload):
		var err error
		if sources, err = mixSources(n.Workload, n.Cores); err != nil {
			return nil, err
		}
	case n.Workload == "latcrit" || n.Workload == "bwhog":
		cfg.PrewarmOps = 1 << 20
		sources = tenantSources(n.Workload, n.Cores, n.Stores)
	case isSynthWorkload(n.Workload):
		cfg.PrewarmOps = 1 << 20
		sources = sim.SyntheticSources(synthPattern(n.Workload), n.Cores, n.Stores)
	case isStreamWorkload(n.Workload):
		cfg.PrewarmOps = 1 << 20
		sources = workload.StreamSources(streamKind(n.Workload), n.Cores)
	default: // GAP kernel
		gs := DefaultGap(n.Workload, n.Cores)
		gs.Scale = n.Scale
		g, err := buildGraph(gs)
		if err != nil {
			return nil, err
		}
		runner, _, err := gap.Build(n.Workload, g, n.Cores)
		if err != nil {
			return nil, err
		}
		if n.WriteQueue > 0 {
			cfg.Ctrl.WriteQueueCap = n.WriteQueue
			cfg.Ctrl.WriteHi = n.WriteQueue * 3 / 4
			cfg.Ctrl.WriteLo = n.WriteQueue / 4
		}
		sources = runner.Sources()
	}

	opts := []sim.Option{sim.WithConfig(cfg), sim.WithSources(sources...)}
	if opt.OnSample != nil {
		opts = append(opts, sim.WithSampleFunc(opt.OnSample))
	}
	sys, err := sim.New(std, opts...)
	if err != nil {
		return nil, err
	}
	res := sys.RunContext(ctx)
	if len(res.Violations) > 0 {
		return nil, fmt.Errorf("exp: DRAM timing violation: %v", res.Violations[0])
	}
	return res, nil
}

// tenantSources builds the QoS tenant streams ("latcrit" / "bwhog") for
// every core, each with a private region staggered by one DRAM page.
func tenantSources(kind string, cores int, stores float64) []cpu.Source {
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		wc := workload.DefaultLatCrit()
		if kind == "bwhog" {
			wc = workload.DefaultBWHog()
		}
		wc.StoreFrac = stores
		wc.BaseAddr = uint64(i)*(256<<20) + uint64(i)*8192
		wc.Seed = int64(i + 1)
		sources = append(sources, workload.MustSynthetic(wc))
	}
	return sources
}

// mixSources assigns the comma-separated workload kinds to cores
// round-robin, each with a private region staggered by one DRAM page.
func mixSources(mix string, cores int) ([]cpu.Source, error) {
	kinds := strings.Split(mix, ",")
	var sources []cpu.Source
	for i := 0; i < cores; i++ {
		kind := kinds[i%len(kinds)]
		base := uint64(i)*(512<<20) + uint64(i)*8192
		switch {
		case isSynthWorkload(kind):
			var wc workload.SyntheticConfig
			switch kind {
			case "seq":
				wc = workload.DefaultSequential()
			case "random":
				wc = workload.DefaultRandom()
			case "latcrit":
				wc = workload.DefaultLatCrit()
			case "bwhog":
				wc = workload.DefaultBWHog()
			default:
				wc = workload.DefaultStrided()
			}
			wc.BaseAddr = base
			wc.Seed = int64(i + 1)
			sources = append(sources, workload.MustSynthetic(wc))
		case isStreamWorkload(kind):
			sc := workload.DefaultStream(streamKind(kind))
			sc.BaseAddr = base
			sources = append(sources, workload.MustStream(sc))
		default:
			return nil, fmt.Errorf("exp: unknown mix component %q (synthetic and STREAM kinds only)", kind)
		}
	}
	return sources, nil
}
