package exp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// specFields is the set of accepted top-level spec JSON fields. Strict
// decoding checks incoming documents against it so that a misspelled
// field ("core" for "cores") is a named error instead of a silently
// ignored knob.
var specFields = map[string]bool{
	"version":  true,
	"workload": true,
	"cores":    true,
	"channels": true,
	"stores":   true,
	"policy":   true,
	"map":      true,
	"standard": true,
	"cycles":   true,
	"sample":   true,
	"scale":    true,
	"wq":       true,
	"qos":      true,
}

// knownFieldList renders a sorted, comma-separated field list for error
// messages.
func knownFieldList(fields map[string]bool) string {
	names := make([]string, 0, len(fields))
	for f := range fields {
		names = append(names, f)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// unknownFieldError names the offending field, suggests the closest
// accepted one when the typo is small, and lists the full schema.
func unknownFieldError(kind, field string, fields map[string]bool) error {
	if near := closestField(field, fields); near != "" {
		return fmt.Errorf("exp: unknown %s field %q (did you mean %q? known fields: %s)",
			kind, field, near, knownFieldList(fields))
	}
	return fmt.Errorf("exp: unknown %s field %q (known fields: %s)",
		kind, field, knownFieldList(fields))
}

// closestField returns the accepted field within Levenshtein distance 2
// of name, or "" when nothing is close enough to suggest.
func closestField(name string, fields map[string]bool) string {
	best, bestDist := "", 3
	lower := strings.ToLower(name)
	//dramvet:allow detrange(min over (distance, name) with a total tiebreak; result is independent of iteration order)
	for f := range fields {
		if d := editDistance(lower, f); d < bestDist || (d == bestDist && f < best) {
			best, bestDist = f, d
		}
	}
	if bestDist > 2 {
		return ""
	}
	return best
}

func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// checkFields rejects any top-level key of doc outside fields.
func checkFields(kind string, doc map[string]json.RawMessage, fields map[string]bool) error {
	var unknown []string
	for k := range doc {
		if !fields[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown) // deterministic error for multi-typo documents
	return unknownFieldError(kind, unknown[0], fields)
}

// DecodeSpec strictly decodes one experiment spec document: unknown
// top-level fields are rejected with a field-naming error, and the
// embedded version (elided = current) must be one this build speaks.
// The returned spec is not yet normalized or validated.
func DecodeSpec(data []byte) (Spec, error) {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return Spec{}, fmt.Errorf("exp: invalid spec JSON: %v", err)
	}
	if err := checkFields("spec", doc, specFields); err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("exp: invalid spec JSON: %v", err)
	}
	return s, nil
}
