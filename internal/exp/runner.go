package exp

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"text/tabwriter"

	"dramstacks/internal/extrapolate"
	"dramstacks/internal/sim"
)

// SweepOptions tunes a sweep run.
type SweepOptions struct {
	// Workers bounds the goroutine pool (each simulation is
	// single-threaded). 0 or negative means GOMAXPROCS.
	Workers int
	// KeepGoing keeps running the remaining points after a point fails;
	// the default policy cancels every outstanding point on the first
	// failure.
	KeepGoing bool
	// OnPoint, if non-nil, is called once per finished point, serialized,
	// in completion order, with the number of finished points so far and
	// the total.
	OnPoint func(pr PointResult, done, total int)
}

// PointResult is the outcome of one sweep point.
type PointResult struct {
	Point Point
	// Res is the simulation result; nil when the point errored or was
	// skipped by the fail-fast policy. Res.Cancelled marks a partial run
	// of a cancelled point.
	Res *sim.Result
	Err error
}

// SweepResult collects every point of a sweep run in expansion order.
type SweepResult struct {
	// AxisNames are the varying axes, sorted (the expansion order).
	AxisNames []string
	// Hash is the sweep's content address (SweepHash of the points).
	Hash string
	// Points holds one result per expanded point, index-aligned with the
	// expansion.
	Points []PointResult
}

// Runner executes an expanded sweep on a bounded worker pool. Each
// point runs under its own context: CancelPoint stops one point,
// cancelling the Run context stops them all, and SweepOptions.KeepGoing
// picks the on-error policy.
type Runner struct {
	opt    SweepOptions
	points []Point

	mu      sync.Mutex
	cancels []context.CancelFunc // nil until Run wires the contexts
	pre     map[int]bool         // CancelPoint calls that beat Run
}

// NewRunner expands the sweep and prepares a runner for it.
func NewRunner(sw Sweep, opt SweepOptions) (*Runner, error) {
	points, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("exp: sweep expands to no points")
	}
	return &Runner{
		opt:     opt,
		points:  points,
		cancels: make([]context.CancelFunc, len(points)),
		pre:     make(map[int]bool),
	}, nil
}

// Points returns the expanded points in their deterministic order.
func (r *Runner) Points() []Point { return r.points }

// CancelPoint cancels the point at index i (a no-op for out-of-range
// indices). Safe to call before, during, or after Run; a point
// cancelled before it starts yields a Cancelled partial result of ~0
// cycles.
func (r *Runner) CancelPoint(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.points) {
		return
	}
	if r.cancels[i] != nil {
		r.cancels[i]()
	} else {
		r.pre[i] = true
	}
}

// Run executes every point, sharding them across the worker pool, and
// returns the ordered results. Under the default fail-fast policy the
// first point error cancels all outstanding points and is returned with
// the partial result; with KeepGoing the error stays per-point and the
// returned error is nil. Cancelling ctx cancels every point.
func (r *Runner) Run(ctx context.Context) (*SweepResult, error) {
	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	r.mu.Lock()
	ctxs := make([]context.Context, len(r.points))
	for i := range r.points {
		pctx, cancel := context.WithCancel(runCtx)
		ctxs[i], r.cancels[i] = pctx, cancel
		if r.pre[i] {
			cancel()
		}
	}
	r.mu.Unlock()

	workers := r.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.points) {
		workers = len(r.points)
	}

	idx := make(chan int, len(r.points))
	for i := range r.points {
		idx <- i
	}
	close(idx)

	results := make([]PointResult, len(r.points))
	var (
		doneMu   sync.Mutex
		done     int
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pr := PointResult{Point: r.points[i]}
				if err := runCtx.Err(); err != nil {
					// The whole sweep was cancelled (or failed fast)
					// before this point started: skip it.
					pr.Err = err
				} else {
					pr.Res, pr.Err = RunSpec(ctxs[i], r.points[i].Spec, RunOptions{})
				}
				r.cancels[i]() // release the point context
				doneMu.Lock()
				results[i] = pr
				done++
				if pr.Err != nil && !errors.Is(pr.Err, context.Canceled) && firstErr == nil {
					firstErr = fmt.Errorf("exp: sweep point %s: %w", pr.Point.Label(), pr.Err)
					if !r.opt.KeepGoing {
						cancelAll()
					}
				}
				if r.opt.OnPoint != nil {
					r.opt.OnPoint(pr, done, len(r.points))
				}
				doneMu.Unlock()
			}
		}()
	}
	wg.Wait()

	res := &SweepResult{
		AxisNames: axisNamesOf(r.points),
		Hash:      SweepHash(r.points),
		Points:    results,
	}
	if r.opt.KeepGoing {
		return res, nil
	}
	return res, firstErr
}

// RunSweep expands and runs a sweep in one call.
func RunSweep(ctx context.Context, sw Sweep, opt SweepOptions) (*SweepResult, error) {
	r, err := NewRunner(sw, opt)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx)
}

// axisNamesOf recovers the sorted axis names from expanded points.
func axisNamesOf(points []Point) []string {
	if len(points) == 0 {
		return nil
	}
	names := make([]string, 0, len(points[0].Axes))
	for n := range points[0].Axes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resultRow renders one point result exactly as the single-run document
// (same label, spec hash and cancelled marker as ResultJSON), so a
// sweep point and an equivalent standalone run are interchangeable.
func resultRow(spec Spec, res *sim.Result) (RowJSON, error) {
	h, err := spec.Hash()
	if err != nil {
		return RowJSON{}, err
	}
	row := ToJSON(spec.Label(), res)
	row.SpecHash = h
	row.Cancelled = res.Cancelled
	return row, nil
}

// SweepPointJSON is the wire form of one sweep point in the aggregate
// document.
type SweepPointJSON struct {
	Index    int               `json:"index"`
	Axes     map[string]string `json:"axes"`
	Label    string            `json:"label"`
	SpecHash string            `json:"spec_hash"`
	Error    string            `json:"error,omitempty"`
	// Result is the point's single-run document (exp.RowJSON); nil when
	// the point errored or was skipped.
	Result *RowJSON `json:"result,omitempty"`
}

// ExtrapolationJSON is one paper-Fig.9-style prediction row of the
// aggregate document.
type ExtrapolationJSON struct {
	Name         string  `json:"name"`
	MeasuredGBps float64 `json:"measured_gbps"`
	NaiveGBps    float64 `json:"naive_gbps"`
	StackGBps    float64 `json:"stack_gbps"`
	NaiveErr     float64 `json:"naive_err"`
	StackErr     float64 `json:"stack_err"`
}

// SweepJSON is the aggregate sweep document: per-point stacks plus the
// extrapolation table when the sweep varies cores. It is deterministic
// (no wall-clock fields), so identical sweeps serialize identically.
type SweepJSON struct {
	Version        int                 `json:"version"`
	SweepHash      string              `json:"sweep_hash"`
	AxisNames      []string            `json:"axis_names"`
	Points         []SweepPointJSON    `json:"points"`
	Extrapolations []ExtrapolationJSON `json:"extrapolations,omitempty"`
}

// ToJSON converts the sweep result into its aggregate wire form.
func (sr *SweepResult) ToJSON() (SweepJSON, error) {
	out := SweepJSON{
		Version:   SpecVersion,
		SweepHash: sr.Hash,
		AxisNames: sr.AxisNames,
		Points:    make([]SweepPointJSON, 0, len(sr.Points)),
	}
	for _, pr := range sr.Points {
		pj := SweepPointJSON{
			Index:    pr.Point.Index,
			Axes:     pr.Point.Axes,
			Label:    pr.Point.Label(),
			SpecHash: pr.Point.Hash,
		}
		if pr.Err != nil {
			pj.Error = pr.Err.Error()
		}
		if pr.Res != nil {
			row, err := resultRow(pr.Point.Spec, pr.Res)
			if err != nil {
				return SweepJSON{}, err
			}
			pj.Result = &row
		}
		out.Points = append(out.Points, pj)
	}
	for _, p := range sr.Extrapolations() {
		out.Extrapolations = append(out.Extrapolations, ExtrapolationJSON{
			Name:         p.Name,
			MeasuredGBps: p.Measured,
			NaiveGBps:    p.Naive,
			StackGBps:    p.Stack,
			NaiveErr:     p.NaiveErr(),
			StackErr:     p.StackErr(),
		})
	}
	return out, nil
}

// Extrapolations derives bandwidth predictions in the style of the
// paper's Fig. 9 when the sweep varies cores: within each group of
// points that agree on every other axis, the lowest-core-count sampled
// run predicts the bandwidth of every higher core count, paired with
// the measured value. Returns nil when cores is not an axis or no group
// has a sampled base run.
func (sr *SweepResult) Extrapolations() []extrapolate.Prediction {
	hasCores := false
	for _, n := range sr.AxisNames {
		if n == "cores" {
			hasCores = true
		}
	}
	if !hasCores {
		return nil
	}
	groupKey := func(p Point) string {
		key := ""
		for _, n := range sr.AxisNames {
			if n != "cores" {
				key += n + "=" + p.Axes[n] + " "
			}
		}
		return key
	}
	groups := make(map[string][]PointResult)
	var order []string
	for _, pr := range sr.Points {
		if pr.Res == nil || pr.Res.Cancelled {
			continue
		}
		k := groupKey(pr.Point)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], pr)
	}
	var preds []extrapolate.Prediction
	for _, k := range order {
		g := groups[k]
		base := PointResult{}
		for _, pr := range g {
			if len(pr.Res.BWSamples) == 0 {
				continue
			}
			if base.Res == nil || pr.Point.Spec.Cores < base.Point.Spec.Cores {
				base = pr
			}
		}
		if base.Res == nil {
			continue
		}
		for _, pr := range g {
			if pr.Point.Spec.Cores <= base.Point.Spec.Cores {
				continue
			}
			factor := float64(pr.Point.Spec.Cores) / float64(base.Point.Spec.Cores)
			preds = append(preds, extrapolate.Predict(
				pr.Point.Label(), base.Res.BWSamples, factor,
				base.Res.Cfg.Geom, pr.Res.AchievedGBps()))
		}
	}
	return preds
}

// WriteCSV writes the aggregate table: one row per point, keyed by the
// varying axes, with the headline metrics.
func (sr *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{}, sr.AxisNames...)
	header = append(header, "spec_hash", "error", "cancelled",
		"mem_cycles", "achieved_gbps", "peak_gbps", "avg_latency_ns", "p99_latency_ns", "page_hit_rate")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pr := range sr.Points {
		rec := make([]string, 0, len(header))
		for _, n := range sr.AxisNames {
			rec = append(rec, pr.Point.Axes[n])
		}
		rec = append(rec, pr.Point.Hash)
		if pr.Err != nil {
			rec = append(rec, pr.Err.Error())
		} else {
			rec = append(rec, "")
		}
		if pr.Res == nil {
			rec = append(rec, "", "", "", "", "", "", "")
		} else {
			row, err := resultRow(pr.Point.Spec, pr.Res)
			if err != nil {
				return err
			}
			rec = append(rec,
				strconv.FormatBool(row.Cancelled),
				strconv.FormatInt(row.MemCycles, 10),
				formatG(row.AchievedGBps),
				formatG(row.PeakGBps),
				formatG(row.AvgLatencyNS),
				formatG(row.P99LatencyNS),
				formatG(row.PageHitRate))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTable renders the aggregate as an aligned human-readable table,
// followed by the extrapolation comparison when present.
func (sr *SweepResult) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "point\tGB/s\tof peak\tavg lat ns\tp99 ns\tpage hit\tmem cycles\tstatus\n")
	for _, pr := range sr.Points {
		status := "ok"
		switch {
		case pr.Err != nil:
			status = "error: " + pr.Err.Error()
		case pr.Res == nil:
			status = "skipped"
		case pr.Res.Cancelled:
			status = "cancelled (partial)"
		}
		if pr.Res == nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t-\t%s\n", pr.Point.Label(), status)
			continue
		}
		row, err := resultRow(pr.Point.Spec, pr.Res)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.0f%%\t%.1f\t%.1f\t%.1f%%\t%d\t%s\n",
			pr.Point.Label(), row.AchievedGBps, 100*row.AchievedGBps/row.PeakGBps,
			row.AvgLatencyNS, row.P99LatencyNS, 100*row.PageHitRate, row.MemCycles, status)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	preds := sr.Extrapolations()
	if len(preds) == 0 {
		return nil
	}
	fmt.Fprintf(w, "\nbandwidth extrapolation (paper Fig. 9 method, from the lowest sampled core count):\n")
	tw = tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "target\tmeasured GB/s\tnaive GB/s\tstack GB/s\tnaive err\tstack err\n")
	for _, p := range preds {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.1f%%\t%.1f%%\n",
			p.Name, p.Measured, p.Naive, p.Stack, 100*p.NaiveErr(), 100*p.StackErr())
	}
	return tw.Flush()
}
