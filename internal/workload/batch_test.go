package workload

import (
	"math/rand"
	"testing"

	"dramstacks/internal/cpu"
)

// drainMixed consumes src through an adversarial mix of NextBatch sizes
// and single Next calls, returning the full instruction sequence. The
// mix exercises 1-instr buffers, coprime batch lengths and refills that
// straddle branch interleaves and the Ops cliff.
func drainMixed(t *testing.T, src cpu.BatchSource, rng *rand.Rand, max int) []cpu.Instr {
	t.Helper()
	var out []cpu.Instr
	sizes := []int{1, 2, 3, 7, 63, 64, 65, 97}
	zeroes := 0
	for len(out) < max {
		if rng.Intn(4) == 0 {
			ins, ok := src.Next()
			if !ok {
				// End of stream: NextBatch must agree forever after.
				if n := src.NextBatch(make([]cpu.Instr, 8)); n != 0 {
					t.Fatalf("Next reported end but NextBatch returned %d", n)
				}
				return out
			}
			out = append(out, ins)
			continue
		}
		buf := make([]cpu.Instr, sizes[rng.Intn(len(sizes))])
		n := src.NextBatch(buf)
		if n < 0 || n > len(buf) {
			t.Fatalf("NextBatch returned %d for buffer of %d", n, len(buf))
		}
		if n == 0 {
			zeroes++
			if zeroes > 2 {
				return out
			}
			continue
		}
		zeroes = 0
		out = append(out, buf[:n]...)
	}
	return out
}

// drainNext consumes src one instruction at a time.
func drainNext(src cpu.Source, max int) []cpu.Instr {
	var out []cpu.Instr
	for len(out) < max {
		ins, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, ins)
	}
	return out
}

func compareSeqs(t *testing.T, got, want []cpu.Instr) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sequence length: batched %d, plain %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("instr %d: batched %+v, plain %+v", i, got[i], want[i])
		}
	}
}

// TestSyntheticBatchMatchesNext drives two identically-seeded
// generators, one through Next and one through a randomized mix of
// NextBatch sizes, across randomized configurations. The sequences must
// be identical draw for draw — the golden suite cannot catch a
// divergence here because both simulation loops share the batched core.
func TestSyntheticBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(0xba7c4))
	for trial := 0; trial < 60; trial++ {
		cfg := SyntheticConfig{
			Pattern:        Pattern(rng.Intn(3)),
			StoreFrac:      float64(rng.Intn(6)) / 10,
			WorkPerOp:      rng.Intn(20),
			FootprintBytes: 64 * uint64(1+rng.Intn(300)),
			BaseAddr:       uint64(rng.Intn(4)) << 28,
			StrideBytes:    64 * uint64(1+rng.Intn(5)),
			Chains:         1 + rng.Intn(4),
			Seed:           rng.Int63n(1 << 20),
		}
		if rng.Intn(2) == 0 {
			cfg.BranchEvery = 1 + rng.Intn(9)
			cfg.MispredictRate = float64(rng.Intn(11)) / 10
		}
		// Bias toward Ops values hostile to a 64-instr buffer: tails of
		// one instruction, exact multiples, off-by-one straddles.
		switch rng.Intn(3) {
		case 0:
			cfg.Ops = [...]int64{1, 2, 63, 64, 65, 127, 128, 129, 191}[rng.Intn(9)]
		case 1:
			cfg.Ops = 1 + rng.Int63n(2000)
		}
		max := 2500
		plain := drainNext(MustSynthetic(cfg), max)
		batched := drainMixed(t, MustSynthetic(cfg), rng, max)
		if len(batched) > max {
			batched = batched[:max]
		}
		if len(plain) > len(batched) {
			plain = plain[:len(batched)]
		}
		if cfg.Ops > 0 && int64(len(plain)) > cfg.Ops && len(plain) < max {
			// Finite streams must have ended at the same point.
			if len(plain) != len(batched) {
				t.Fatalf("trial %d (%+v): plain ended at %d, batched at %d",
					trial, cfg, len(plain), len(batched))
			}
		}
		compareSeqs(t, batched, plain)
		if t.Failed() {
			t.Fatalf("trial %d config: %+v", trial, cfg)
		}
	}
}

// TestSliceBatch covers the bulk-copy fast path, including short tails
// and post-end calls.
func TestSliceBatch(t *testing.T) {
	instrs := make([]cpu.Instr, 150)
	for i := range instrs {
		instrs[i] = cpu.Instr{Addr: uint64(i) * 64, Work: i % 7, Kind: cpu.KindLoad}
	}
	plain := drainNext(&Slice{Instrs: instrs}, 1000)
	batched := drainMixed(t, &Slice{Instrs: instrs}, rand.New(rand.NewSource(3)), 1000)
	compareSeqs(t, batched, plain)
	s := &Slice{Instrs: instrs[:5]}
	if n := s.NextBatch(make([]cpu.Instr, 64)); n != 5 {
		t.Fatalf("short slice: got %d, want 5", n)
	}
	if n := s.NextBatch(make([]cpu.Instr, 64)); n != 0 {
		t.Fatalf("exhausted slice: got %d, want 0", n)
	}
}

// TestFillBatchAdapter covers the generic adapter through Player and
// Stream, whose per-instruction state machines stay in Next.
func TestFillBatchAdapter(t *testing.T) {
	mkPlayer := func() cpu.BatchSource {
		items := make([]cpu.Instr, 41)
		for i := range items {
			items[i] = cpu.Instr{Addr: uint64(i) * 64, Kind: cpu.KindLoad}
		}
		return &Player{items: items, Loop: true, MaxOps: 500}
	}
	mkStream := func() cpu.BatchSource {
		return MustStream(StreamConfig{
			Kind:        StreamTriad,
			ArrayBytes:  1 << 16,
			WorkPerElem: 3,
			Ops:         450,
		})
	}
	//dramvet:allow detrange(independent subtests; t.Run order is irrelevant)
	for name, mk := range map[string]func() cpu.BatchSource{"player": mkPlayer, "stream": mkStream} {
		t.Run(name, func(t *testing.T) {
			plain := drainNext(mk(), 700)
			batched := drainMixed(t, mk(), rand.New(rand.NewSource(11)), 700)
			if len(batched) > len(plain) {
				batched = batched[:len(plain)]
			}
			if len(plain) > len(batched) {
				plain = plain[:len(batched)]
			}
			compareSeqs(t, batched, plain)
		})
	}
}
