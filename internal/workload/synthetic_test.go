package workload

import (
	"testing"

	"dramstacks/internal/cpu"
)

func TestSequentialAddresses(t *testing.T) {
	cfg := DefaultSequential()
	cfg.FootprintBytes = 4 * 64
	cfg.BaseAddr = 1 << 20
	cfg.Ops = 10
	s := MustSynthetic(cfg)
	var addrs []uint64
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		if ins.Kind != cpu.KindLoad {
			t.Fatalf("unexpected kind %v", ins.Kind)
		}
		addrs = append(addrs, ins.Addr)
	}
	if len(addrs) != 10 {
		t.Fatalf("emitted %d ops, want 10", len(addrs))
	}
	for i, a := range addrs {
		want := uint64(1<<20) + uint64(i%4)*64 // wraps at the footprint
		if a != want {
			t.Errorf("op %d addr = %#x, want %#x", i, a, want)
		}
	}
}

func TestStoreFraction(t *testing.T) {
	cfg := DefaultSequential()
	cfg.StoreFrac = 0.3
	cfg.Ops = 20000
	s := MustSynthetic(cfg)
	stores := 0
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		if ins.Kind == cpu.KindStore {
			stores++
		}
	}
	frac := float64(stores) / 20000
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("store fraction = %v, want about 0.3", frac)
	}
}

func TestRandomStaysInFootprintAndDeterministic(t *testing.T) {
	cfg := DefaultRandom()
	cfg.FootprintBytes = 1 << 16
	cfg.BaseAddr = 4 << 20
	cfg.Ops = 5000
	a := MustSynthetic(cfg)
	b := MustSynthetic(cfg)
	for i := 0; i < 5000; i++ {
		x, okA := a.Next()
		y, okB := b.Next()
		if !okA || !okB {
			t.Fatalf("stream ended early at %d", i)
		}
		if x != y {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, x, y)
		}
		if x.Addr < 4<<20 || x.Addr >= (4<<20)+(1<<16) {
			t.Fatalf("address %#x outside footprint", x.Addr)
		}
	}
}

func TestRandomChainDependencies(t *testing.T) {
	cfg := DefaultRandom()
	cfg.Chains = 2
	cfg.Ops = 100
	s := MustSynthetic(cfg)
	loads := 0
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		if ins.Kind != cpu.KindLoad {
			continue
		}
		loads++
		if loads <= 2 {
			if ins.LoadDep != 0 {
				t.Errorf("load %d has dep %d, want 0 (chain head)", loads, ins.LoadDep)
			}
			continue
		}
		if ins.LoadDep != 2 {
			t.Errorf("load %d has dep %d, want 2 (round-robin over 2 chains)", loads, ins.LoadDep)
		}
	}
}

func TestBranchesInterleaved(t *testing.T) {
	cfg := DefaultSequential()
	cfg.BranchEvery = 3
	cfg.MispredictRate = 1.0
	cfg.Ops = 9
	s := MustSynthetic(cfg)
	branches, mem := 0, 0
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		if ins.Kind == cpu.KindBranch {
			branches++
			if !ins.Mispredict {
				t.Error("mispredict rate 1.0 produced a predicted branch")
			}
		} else {
			mem++
		}
	}
	if mem != 9 || branches != 3 {
		t.Errorf("mem=%d branches=%d, want 9/3", mem, branches)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.StoreFrac = -0.1 },
		func(c *SyntheticConfig) { c.StoreFrac = 1.1 },
		func(c *SyntheticConfig) { c.WorkPerOp = -1 },
		func(c *SyntheticConfig) { c.FootprintBytes = 0 },
		func(c *SyntheticConfig) { c.Pattern = Random; c.Chains = 0 },
		func(c *SyntheticConfig) { c.MispredictRate = 2 },
	}
	for i, mutate := range bad {
		cfg := DefaultSequential()
		mutate(&cfg)
		if _, err := NewSynthetic(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSliceSource(t *testing.T) {
	s := &Slice{Instrs: []cpu.Instr{{Work: 1}, {Work: 2}}}
	a, ok := s.Next()
	if !ok || a.Work != 1 {
		t.Fatalf("first = %+v, %v", a, ok)
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Error("exhausted slice still produced items")
	}
}

func TestStridedAddresses(t *testing.T) {
	cfg := DefaultStrided()
	cfg.FootprintBytes = 1024
	cfg.Ops = 6
	s := MustSynthetic(cfg)
	var addrs []uint64
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		addrs = append(addrs, ins.Addr)
	}
	want := []uint64{0, 256, 512, 768, 0, 256} // wraps at the footprint
	if len(addrs) != len(want) {
		t.Fatalf("got %d addrs", len(addrs))
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("op %d addr = %d, want %d", i, addrs[i], want[i])
		}
	}
	if Strided.String() != "strided" {
		t.Errorf("pattern name = %q", Strided.String())
	}
}
