package workload

import (
	"testing"

	"dramstacks/internal/cpu"
)

func TestStreamTriadAccessPlan(t *testing.T) {
	cfg := DefaultStream(StreamTriad)
	cfg.ArrayBytes = 4096
	cfg.BaseAddr = 0
	cfg.Ops = 2
	s := MustStream(cfg)
	var got []cpu.Instr
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, ins)
	}
	// Per line: load b, load c, store a; two lines.
	if len(got) != 6 {
		t.Fatalf("items = %d, want 6", len(got))
	}
	span := uint64(4096)
	want := []struct {
		kind cpu.Kind
		addr uint64
	}{
		{cpu.KindLoad, span},      // b[0]
		{cpu.KindLoad, 2 * span},  // c[0]
		{cpu.KindStore, 0},        // a[0]
		{cpu.KindLoad, span + 64}, // b[1]
		{cpu.KindLoad, 2*span + 64},
		{cpu.KindStore, 64},
	}
	for i, w := range want {
		if got[i].Kind != w.kind || got[i].Addr != w.addr {
			t.Errorf("item %d = %v@%#x, want %v@%#x", i, got[i].Kind, got[i].Addr, w.kind, w.addr)
		}
	}
	// Work attaches to the first access of each element group only.
	if got[0].Work == 0 || got[1].Work != 0 || got[2].Work != 0 {
		t.Errorf("work placement wrong: %v", got[:3])
	}
}

func TestStreamKindsReadWriteCounts(t *testing.T) {
	counts := map[StreamKind][2]int{ // reads, writes per element
		StreamCopy:  {1, 1},
		StreamScale: {1, 1},
		StreamAdd:   {2, 1},
		StreamTriad: {2, 1},
	}
	//dramvet:allow detrange(each kind is checked independently; order cannot matter)
	for kind, want := range counts {
		cfg := DefaultStream(kind)
		cfg.Ops = 10
		s := MustStream(cfg)
		loads, stores := 0, 0
		for {
			ins, ok := s.Next()
			if !ok {
				break
			}
			switch ins.Kind {
			case cpu.KindLoad:
				loads++
			case cpu.KindStore:
				stores++
			}
		}
		if loads != want[0]*10 || stores != want[1]*10 {
			t.Errorf("%v: %d loads / %d stores, want %d/%d",
				kind, loads, stores, want[0]*10, want[1]*10)
		}
	}
}

func TestStreamWrapsAndValidates(t *testing.T) {
	cfg := DefaultStream(StreamCopy)
	cfg.ArrayBytes = 128 // two lines
	cfg.Ops = 3
	s := MustStream(cfg)
	var addrs []uint64
	for {
		ins, ok := s.Next()
		if !ok {
			break
		}
		if ins.Kind == cpu.KindLoad {
			addrs = append(addrs, ins.Addr)
		}
	}
	if len(addrs) != 3 || addrs[0] != 0 || addrs[1] != 64 || addrs[2] != 0 {
		t.Errorf("load addresses = %v, want wrap [0 64 0]", addrs)
	}

	bad := DefaultStream(StreamCopy)
	bad.ArrayBytes = 32
	if _, err := NewStream(bad); err == nil {
		t.Error("tiny array accepted")
	}
	bad = DefaultStream(StreamCopy)
	bad.WorkPerElem = -1
	if _, err := NewStream(bad); err == nil {
		t.Error("negative work accepted")
	}
	bad = DefaultStream(StreamKind(9))
	if _, err := NewStream(bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestStreamSources(t *testing.T) {
	srcs := StreamSources(StreamTriad, 3)
	if len(srcs) != 3 {
		t.Fatalf("sources = %d", len(srcs))
	}
	a, _ := srcs[0].Next()
	b, _ := srcs[1].Next()
	if a.Addr == b.Addr {
		t.Error("cores share arrays")
	}
	for _, k := range []StreamKind{StreamCopy, StreamScale, StreamAdd, StreamTriad} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}
