package workload

import (
	"strings"
	"testing"

	"dramstacks/internal/cpu"
)

func TestPlayerParsesAndReplays(t *testing.T) {
	trace := `
# a tiny trace
R 0x1000 4
W 4160
B 1
R 64
`
	p, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("items = %d, want 4", p.Len())
	}
	want := []cpu.Instr{
		{Work: 4, Kind: cpu.KindLoad, Addr: 0x1000},
		{Kind: cpu.KindStore, Addr: 4160},
		{Kind: cpu.KindBranch, Mispredict: true},
		{Kind: cpu.KindLoad, Addr: 64},
	}
	for i, w := range want {
		got, ok := p.Next()
		if !ok || got != w {
			t.Errorf("item %d = %+v (%v), want %+v", i, got, ok, w)
		}
	}
	if _, ok := p.Next(); ok {
		t.Error("non-looping player did not end")
	}
}

func TestPlayerLoopAndMaxOps(t *testing.T) {
	p, err := ParseTrace(strings.NewReader("R 0\nR 64\n"))
	if err != nil {
		t.Fatal(err)
	}
	p.Loop = true
	p.MaxOps = 5
	count := 0
	for {
		_, ok := p.Next()
		if !ok {
			break
		}
		count++
		if count > 10 {
			t.Fatal("player did not respect MaxOps")
		}
	}
	if count != 5 {
		t.Errorf("emitted %d items, want 5", count)
	}
}

func TestPlayerRejectsGarbage(t *testing.T) {
	bad := []string{
		"",            // empty
		"X 100\n",     // unknown record
		"R\n",         // missing address
		"R zzz\n",     // bad address
		"R 0x10 -1\n", // bad work
		"B 2\n",       // bad branch flag
		"R 1 2 3 4\n", // too many fields
	}
	for _, trace := range bad {
		if _, err := ParseTrace(strings.NewReader(trace)); err == nil {
			t.Errorf("trace %q accepted", trace)
		}
	}
}
