package workload

import "dramstacks/internal/cpu"

// FillBatch lifts any pure cpu.Source into the cpu.BatchSource contract
// by looping its Next: buf is filled until it is full or the stream
// ends. The purity requirement — the k-th instruction is a function of
// the consumption count alone — is the source's responsibility; every
// generator in this package satisfies it.
func FillBatch(src cpu.Source, buf []cpu.Instr) int {
	for i := range buf {
		ins, ok := src.Next()
		if !ok {
			return i
		}
		buf[i] = ins
	}
	return len(buf)
}

var (
	_ cpu.BatchSource = (*Synthetic)(nil)
	_ cpu.BatchSource = (*Slice)(nil)
	_ cpu.BatchSource = (*Player)(nil)
	_ cpu.BatchSource = (*Stream)(nil)
)

// NextBatch implements cpu.BatchSource natively: it produces exactly
// the sequence repeated Next calls would (same RNG draw order, same
// chain bookkeeping), but hoists the hot generator state into locals
// for the duration of the block so the per-instruction cost is a few
// register operations instead of a pointer-chasing method call.
func (s *Synthetic) NextBatch(buf []cpu.Instr) int {
	var (
		cfg       = &s.cfg
		rng       = s.rng
		sinceBr   = s.sinceBr
		emitted   = s.emitted
		seqOffset = s.seqOffset
	)
	n := 0
	for n < len(buf) {
		// Mirrors Next: a due branch is emitted even when the op budget
		// has just run out.
		if cfg.BranchEvery > 0 && sinceBr >= cfg.BranchEvery {
			sinceBr = 0
			buf[n] = cpu.Instr{
				Kind:       cpu.KindBranch,
				Mispredict: rng.Float64() < cfg.MispredictRate,
			}
			n++
			continue
		}
		if cfg.Ops > 0 && emitted >= cfg.Ops {
			break
		}
		sinceBr++
		emitted++

		var isStore bool
		if s.drawStore {
			isStore = rng.Float64() < cfg.StoreFrac
		}
		ins := cpu.Instr{Work: cfg.WorkPerOp, Kind: cpu.KindLoad}
		if isStore {
			ins.Kind = cpu.KindStore
		}

		switch cfg.Pattern {
		case Sequential, Strided:
			ins.Addr = cfg.BaseAddr + seqOffset
			seqOffset += cfg.StrideBytes
			if seqOffset >= cfg.FootprintBytes {
				seqOffset = 0
			}
		case Random:
			lines := cfg.FootprintBytes / 64
			ins.Addr = cfg.BaseAddr + uint64(rng.Int63n(int64(lines)))*64
			if !isStore {
				chain := s.nextChain
				s.nextChain = (s.nextChain + 1) % cfg.Chains
				if last := s.loadsSince[chain]; last >= 0 {
					if dep := s.loadCount - last; dep >= 1 && dep <= 32 {
						ins.LoadDep = int(dep)
					}
				}
				s.loadCount++
				s.loadsSince[chain] = s.loadCount - 1
			}
		}
		buf[n] = ins
		n++
	}
	s.sinceBr = sinceBr
	s.emitted = emitted
	s.seqOffset = seqOffset
	return n
}

// NextBatch implements cpu.BatchSource with a bulk copy.
func (s *Slice) NextBatch(buf []cpu.Instr) int {
	n := copy(buf, s.Instrs[s.pos:])
	s.pos += n
	return n
}

// NextBatch implements cpu.BatchSource via the generic adapter; the
// player's per-instruction work (looping, op budgets) stays in Next.
func (p *Player) NextBatch(buf []cpu.Instr) int { return FillBatch(p, buf) }

// NextBatch implements cpu.BatchSource via the generic adapter.
func (s *Stream) NextBatch(buf []cpu.Instr) int { return FillBatch(s, buf) }
