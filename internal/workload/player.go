package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dramstacks/internal/cpu"
)

// Player replays a recorded application memory trace as an instruction
// stream, so real program traces (e.g. from a binary-instrumentation
// tool) can be pushed through the simulator and get their stacks. The
// text format is one access per line:
//
//	R <addr> [work]     # load, with optional plain uops before it
//	W <addr> [work]     # store
//	B [0|1]             # branch (1 = mispredicted)
//	# comment
//
// Addresses accept decimal or 0x-prefixed hex. The trace can be looped
// to extend short recordings.
type Player struct {
	items []cpu.Instr
	pos   int
	// Loop replays the trace from the start when it ends.
	Loop bool
	// MaxOps bounds total emitted items when looping (0 = unbounded).
	MaxOps  int64
	emitted int64
}

var _ cpu.Source = (*Player)(nil)

// ParseTrace reads a memory trace.
func ParseTrace(r io.Reader) (*Player, error) {
	p := &Player{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		ins, err := parseTraceLine(fields)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
		}
		p.items = append(p.items, ins)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace read: %w", err)
	}
	if len(p.items) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return p, nil
}

func parseTraceLine(fields []string) (cpu.Instr, error) {
	switch strings.ToUpper(fields[0]) {
	case "R", "W":
		if len(fields) < 2 || len(fields) > 3 {
			return cpu.Instr{}, fmt.Errorf("want '%s <addr> [work]'", fields[0])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), addrBase(fields[1]), 64)
		if err != nil {
			return cpu.Instr{}, fmt.Errorf("bad address %q: %v", fields[1], err)
		}
		work := 0
		if len(fields) == 3 {
			work, err = strconv.Atoi(fields[2])
			if err != nil || work < 0 {
				return cpu.Instr{}, fmt.Errorf("bad work %q", fields[2])
			}
		}
		kind := cpu.KindLoad
		if strings.ToUpper(fields[0]) == "W" {
			kind = cpu.KindStore
		}
		return cpu.Instr{Work: work, Kind: kind, Addr: addr}, nil
	case "B":
		mis := false
		if len(fields) == 2 {
			switch fields[1] {
			case "0":
			case "1":
				mis = true
			default:
				return cpu.Instr{}, fmt.Errorf("bad branch flag %q", fields[1])
			}
		} else if len(fields) != 1 {
			return cpu.Instr{}, fmt.Errorf("want 'B [0|1]'")
		}
		return cpu.Instr{Kind: cpu.KindBranch, Mispredict: mis}, nil
	default:
		return cpu.Instr{}, fmt.Errorf("unknown record %q (want R, W or B)", fields[0])
	}
}

func addrBase(s string) int {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return 16
	}
	return 10
}

// Len returns the number of parsed trace items.
func (p *Player) Len() int { return len(p.items) }

// Next implements cpu.Source.
func (p *Player) Next() (cpu.Instr, bool) {
	if p.MaxOps > 0 && p.emitted >= p.MaxOps {
		return cpu.Instr{}, false
	}
	if p.pos >= len(p.items) {
		if !p.Loop {
			return cpu.Instr{}, false
		}
		p.pos = 0
	}
	ins := p.items[p.pos]
	p.pos++
	p.emitted++
	return ins, true
}
