// Package workload provides instruction-stream generators for the
// simulated cores: the paper's synthetic sequential and random patterns
// with a configurable store fraction (§VI), plus small helpers for tests.
package workload

import (
	"fmt"
	"math/rand"

	"dramstacks/internal/cpu"
)

// Pattern selects the synthetic address pattern.
type Pattern uint8

const (
	// Sequential walks the footprint line by line (prefetcher friendly,
	// ~99% DRAM page hits with the default mapping).
	Sequential Pattern = iota
	// Random touches uniformly random lines of the footprint through a
	// bounded number of dependent chains (pointer-chase style), which
	// limits memory-level parallelism the way the paper's random
	// benchmark behaves.
	Random
	// Strided walks the footprint with a fixed stride larger than a
	// cache line (StrideBytes): every access misses the line the
	// previous one fetched, the stream prefetcher cannot lock on beyond
	// its stride table, and page hits depend on how many strides fit in
	// a DRAM row.
	Strided
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Random:
		return "random"
	case Strided:
		return "strided"
	default:
		return "sequential"
	}
}

// SyntheticConfig parameterizes a synthetic stream.
type SyntheticConfig struct {
	Pattern Pattern
	// StoreFrac is the fraction of memory operations that are stores
	// (the paper's 0%..50% sweep). A store to an uncached line causes
	// both a DRAM read (write-allocate) and, later, a writeback.
	StoreFrac float64
	// WorkPerOp is the number of plain uops between memory operations.
	WorkPerOp int
	// FootprintBytes is the working set per core; it should exceed the
	// LLC to exercise DRAM.
	FootprintBytes uint64
	// BaseAddr is the start of this core's region.
	BaseAddr uint64
	// StrideBytes is the sequential step (one cache line by default).
	StrideBytes uint64
	// Chains is the number of independent dependent-load chains for the
	// random pattern (bounds MLP; 2 matches the paper's random curve).
	Chains int
	// BranchEvery inserts a conditional branch every so many memory
	// operations (0 disables).
	BranchEvery int
	// MispredictRate is the fraction of those branches mispredicted.
	MispredictRate float64
	// Ops is the number of memory operations to emit; 0 means unbounded
	// (the simulation's cycle limit stops the run).
	Ops int64
	// Seed makes the stream deterministic.
	Seed int64
}

// Validate reports a descriptive error for unusable configurations.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.StoreFrac < 0 || c.StoreFrac > 1:
		return fmt.Errorf("workload: store fraction %v out of [0,1]", c.StoreFrac)
	case c.WorkPerOp < 0:
		return fmt.Errorf("workload: work per op %d negative", c.WorkPerOp)
	case c.FootprintBytes < 64:
		return fmt.Errorf("workload: footprint %d too small", c.FootprintBytes)
	case c.Pattern == Random && c.Chains <= 0:
		return fmt.Errorf("workload: random pattern needs at least one chain, got %d", c.Chains)
	case c.MispredictRate < 0 || c.MispredictRate > 1:
		return fmt.Errorf("workload: mispredict rate %v out of [0,1]", c.MispredictRate)
	}
	return nil
}

// DefaultSequential returns the sequential pattern configuration used by
// the paper-figure experiments for one core.
func DefaultSequential() SyntheticConfig {
	return SyntheticConfig{
		Pattern:        Sequential,
		WorkPerOp:      140,
		FootprintBytes: 64 << 20,
		StrideBytes:    64,
		Seed:           1,
	}
}

// DefaultStrided returns a strided pattern configuration (4 lines
// apart: every access is a new cache line, four per DRAM page-walk
// step).
func DefaultStrided() SyntheticConfig {
	return SyntheticConfig{
		Pattern:        Strided,
		WorkPerOp:      40,
		FootprintBytes: 64 << 20,
		StrideBytes:    256,
		Seed:           1,
	}
}

// DefaultLatCrit returns the latency-critical tenant of the QoS
// experiments: a single dependent pointer-chase with compute between
// loads, so it demands little bandwidth but every access sits on the
// critical path — the tenant a real-time priority tier protects.
func DefaultLatCrit() SyntheticConfig {
	return SyntheticConfig{
		Pattern:        Random,
		WorkPerOp:      60,
		FootprintBytes: 64 << 20,
		StrideBytes:    64,
		Chains:         1,
		Seed:           1,
	}
}

// DefaultBWHog returns the bandwidth-hog tenant of the QoS experiments:
// back-to-back sequential streaming with no compute between accesses,
// saturating the channel — the tenant a bandwidth budget reins in.
func DefaultBWHog() SyntheticConfig {
	return SyntheticConfig{
		Pattern:        Sequential,
		FootprintBytes: 64 << 20,
		StrideBytes:    64,
		Seed:           1,
	}
}

// DefaultRandom returns the random pattern configuration.
func DefaultRandom() SyntheticConfig {
	return SyntheticConfig{
		Pattern:        Random,
		WorkPerOp:      10,
		FootprintBytes: 64 << 20,
		StrideBytes:    64,
		Chains:         2,
		Seed:           1,
	}
}

// Synthetic generates the stream; it implements cpu.Source.
type Synthetic struct {
	cfg SyntheticConfig
	//dramvet:allow nowallclock(seeded explicitly from SyntheticConfig.Seed; the stream is a pure function of the spec)
	rng *rand.Rand

	// drawStore records whether the per-op store draw must consume the
	// RNG. With StoreFrac 0 the draw can only matter by advancing the
	// stream for a later consumer, so it is kept whenever any other
	// draw exists (random addresses, branch outcomes) and skipped only
	// when the generator is otherwise fully deterministic — where the
	// RNG state is unobservable and the emitted stream is identical.
	drawStore bool

	emitted    int64
	seqOffset  uint64
	sinceBr    int
	loadsSince []int64 // per chain: loads emitted since that chain's last load
	loadCount  int64
	nextChain  int
}

var _ cpu.Source = (*Synthetic)(nil)

// NewSynthetic returns a generator; configuration errors surface here.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StrideBytes == 0 {
		cfg.StrideBytes = 64
	}
	s := &Synthetic{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	s.drawStore = cfg.StoreFrac > 0 || cfg.Pattern == Random || cfg.BranchEvery > 0
	if cfg.Pattern == Random {
		s.loadsSince = make([]int64, cfg.Chains)
		for i := range s.loadsSince {
			s.loadsSince[i] = -1
		}
	}
	return s, nil
}

// MustSynthetic is NewSynthetic for known-good configurations.
func MustSynthetic(cfg SyntheticConfig) *Synthetic {
	s, err := NewSynthetic(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Next implements cpu.Source.
func (s *Synthetic) Next() (cpu.Instr, bool) {
	// Interleave branches between memory operations (a due branch is
	// emitted even when the op budget has just run out).
	if s.cfg.BranchEvery > 0 && s.sinceBr >= s.cfg.BranchEvery {
		s.sinceBr = 0
		return cpu.Instr{
			Kind:       cpu.KindBranch,
			Mispredict: s.rng.Float64() < s.cfg.MispredictRate,
		}, true
	}
	if s.cfg.Ops > 0 && s.emitted >= s.cfg.Ops {
		return cpu.Instr{}, false
	}
	s.sinceBr++
	s.emitted++

	var isStore bool
	if s.drawStore {
		isStore = s.rng.Float64() < s.cfg.StoreFrac
	}
	ins := cpu.Instr{Work: s.cfg.WorkPerOp, Kind: cpu.KindLoad}
	if isStore {
		ins.Kind = cpu.KindStore
	}

	switch s.cfg.Pattern {
	case Sequential, Strided:
		ins.Addr = s.cfg.BaseAddr + s.seqOffset
		s.seqOffset += s.cfg.StrideBytes
		if s.seqOffset >= s.cfg.FootprintBytes {
			s.seqOffset = 0
		}
	case Random:
		lines := s.cfg.FootprintBytes / 64
		ins.Addr = s.cfg.BaseAddr + uint64(s.rng.Int63n(int64(lines)))*64
		if !isStore {
			chain := s.nextChain
			s.nextChain = (s.nextChain + 1) % s.cfg.Chains
			// Depend on this chain's previous load if it is close
			// enough to be tracked by the core's load history.
			if last := s.loadsSince[chain]; last >= 0 {
				if dep := s.loadCount - last; dep >= 1 && dep <= 32 {
					ins.LoadDep = int(dep)
				}
			}
			s.loadCount++
			s.loadsSince[chain] = s.loadCount - 1
		}
	}
	return ins, true
}

// Emitted returns how many memory operations have been produced.
func (s *Synthetic) Emitted() int64 { return s.emitted }

// Slice is a fixed instruction list implementing cpu.Source, for tests.
type Slice struct {
	Instrs []cpu.Instr
	pos    int
}

// Next implements cpu.Source.
func (s *Slice) Next() (cpu.Instr, bool) {
	if s.pos >= len(s.Instrs) {
		return cpu.Instr{}, false
	}
	ins := s.Instrs[s.pos]
	s.pos++
	return ins, true
}
