package workload

import (
	"fmt"

	"dramstacks/internal/cpu"
)

// StreamKind selects one of the STREAM benchmark kernels (McCalpin):
// the canonical user-level bandwidth tests, each a different mix of
// concurrent sequential read streams and a write stream.
type StreamKind uint8

const (
	// StreamCopy is c[i] = a[i]: one read stream, one write stream.
	StreamCopy StreamKind = iota
	// StreamScale is b[i] = s*c[i]: one read, one write, one multiply.
	StreamScale
	// StreamAdd is c[i] = a[i] + b[i]: two reads, one write.
	StreamAdd
	// StreamTriad is a[i] = b[i] + s*c[i]: two reads, one write, one FMA.
	StreamTriad
)

// String returns the STREAM kernel name.
func (k StreamKind) String() string {
	switch k {
	case StreamCopy:
		return "copy"
	case StreamScale:
		return "scale"
	case StreamAdd:
		return "add"
	case StreamTriad:
		return "triad"
	default:
		return fmt.Sprintf("StreamKind(%d)", uint8(k))
	}
}

// StreamConfig parameterizes a STREAM kernel stream.
type StreamConfig struct {
	Kind StreamKind
	// ArrayBytes is the size of each array (a, b, c); like STREAM's
	// rule, it should be much larger than the LLC.
	ArrayBytes uint64
	// BaseAddr is where this core's arrays start (they are laid out
	// back to back, page aligned).
	BaseAddr uint64
	// WorkPerElem is the number of plain uops per element beyond the
	// loads/stores (the arithmetic).
	WorkPerElem int
	// Ops bounds the number of elements processed (0 = unbounded).
	Ops int64
}

// DefaultStream returns a STREAM kernel configuration sized like the
// synthetic patterns (64 MB arrays).
func DefaultStream(kind StreamKind) StreamConfig {
	return StreamConfig{
		Kind:        kind,
		ArrayBytes:  64 << 20,
		WorkPerElem: 30,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c StreamConfig) Validate() error {
	if c.ArrayBytes < 64 {
		return fmt.Errorf("workload: stream array %d bytes too small", c.ArrayBytes)
	}
	if c.WorkPerElem < 0 {
		return fmt.Errorf("workload: negative work per element")
	}
	if c.Kind > StreamTriad {
		return fmt.Errorf("workload: unknown stream kind %d", c.Kind)
	}
	return nil
}

// Stream generates a STREAM kernel's access stream; it implements
// cpu.Source. Each "element" step touches one cache line of each
// involved array (the model's cores access line-granular data; the
// per-element arithmetic is folded into WorkPerElem × the 8 elements a
// 64-byte line holds).
type Stream struct {
	cfg     StreamConfig
	a, b, c uint64 // array base addresses
	offset  uint64
	emitted int64
	phase   int // which access of the current element group is next
}

var _ cpu.Source = (*Stream)(nil)

// NewStream returns a generator; configuration errors surface here.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	span := (cfg.ArrayBytes + 4095) &^ 4095
	return &Stream{
		cfg: cfg,
		a:   cfg.BaseAddr,
		b:   cfg.BaseAddr + span,
		c:   cfg.BaseAddr + 2*span,
	}, nil
}

// MustStream is NewStream for known-good configurations.
func MustStream(cfg StreamConfig) *Stream {
	s, err := NewStream(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// accesses returns the per-line access plan: the read arrays and the
// written array of the kernel.
func (s *Stream) accesses() (reads []uint64, write uint64) {
	switch s.cfg.Kind {
	case StreamCopy:
		return []uint64{s.a}, s.c
	case StreamScale:
		return []uint64{s.c}, s.b
	case StreamAdd:
		return []uint64{s.a, s.b}, s.c
	default: // StreamTriad
		return []uint64{s.b, s.c}, s.a
	}
}

// Next implements cpu.Source.
func (s *Stream) Next() (cpu.Instr, bool) {
	if s.cfg.Ops > 0 && s.emitted >= s.cfg.Ops {
		return cpu.Instr{}, false
	}
	reads, write := s.accesses()
	work := 0
	if s.phase == 0 {
		work = s.cfg.WorkPerElem
	}
	var ins cpu.Instr
	if s.phase < len(reads) {
		ins = cpu.Instr{Work: work, Kind: cpu.KindLoad, Addr: reads[s.phase] + s.offset}
		s.phase++
	} else {
		ins = cpu.Instr{Work: work, Kind: cpu.KindStore, Addr: write + s.offset}
		s.phase = 0
		s.offset += 64
		if s.offset >= s.cfg.ArrayBytes {
			s.offset = 0
		}
		s.emitted++
	}
	return ins, true
}

// Emitted returns how many element groups (lines) have been completed.
func (s *Stream) Emitted() int64 { return s.emitted }

// StreamSources builds per-core STREAM sources with disjoint arrays.
func StreamSources(kind StreamKind, cores int) []cpu.Source {
	var out []cpu.Source
	for i := 0; i < cores; i++ {
		cfg := DefaultStream(kind)
		cfg.BaseAddr = uint64(i)*(512<<20) + uint64(i)*8192
		out = append(out, MustStream(cfg))
	}
	return out
}
