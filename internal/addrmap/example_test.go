package addrmap_test

import (
	"fmt"

	"dramstacks/internal/addrmap"
	"dramstacks/internal/dram"
)

// Example shows how the two Fig. 5 schemes place consecutive cache lines:
// the default scheme keeps a whole 8 KB page in one bank, the interleaved
// scheme rotates lines over the bank groups and banks.
func Example() {
	geo, _ := dram.DDR4_2400()
	def := addrmap.MustDefault(geo, 1)
	inter := addrmap.MustInterleaved(geo, 1)

	for _, addr := range []uint64{0, 64, 128} {
		d := def.Decode(addr)
		i := inter.Decode(addr)
		fmt.Printf("line %d: default -> group %d bank %d col %d | interleaved -> group %d bank %d col %d\n",
			addr/64, d.Group, d.Bank, d.Col, i.Group, i.Bank, i.Col)
	}
	// Output:
	// line 0: default -> group 0 bank 0 col 0 | interleaved -> group 0 bank 0 col 0
	// line 1: default -> group 0 bank 0 col 1 | interleaved -> group 1 bank 0 col 0
	// line 2: default -> group 0 bank 0 col 2 | interleaved -> group 2 bank 0 col 0
}

// ExampleScheme_Encode shows the round trip between addresses and DRAM
// coordinates.
func ExampleScheme_Encode() {
	geo, _ := dram.DDR4_2400()
	m := addrmap.MustDefault(geo, 1)
	loc := dram.Loc{Group: 2, Bank: 1, Row: 7, Col: 5}
	addr := m.Encode(loc)
	back := m.Decode(addr)
	fmt.Printf("addr %#x -> row %d group %d bank %d col %d\n",
		addr, back.Row, back.Group, back.Bank, back.Col)
	// Output:
	// addr 0xec140 -> row 7 group 2 bank 1 col 5
}
