package addrmap

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dramstacks/internal/dram"
)

func geo() dram.Geometry {
	g, _ := dram.DDR4_2400()
	return g
}

// TestDefaultScheme checks the exact Fig. 5(a) bit layout:
// row[15] bank[2] group[2] column[7] offset[6] for DDR4-2400 with one
// channel and one rank (zero-width fields).
func TestDefaultScheme(t *testing.T) {
	s := MustDefault(geo(), 1)
	if got := s.Bits(); got != 32 {
		t.Fatalf("address bits = %d, want 32 (4 GB)", got)
	}
	cases := []struct {
		addr uint64
		want dram.Loc
	}{
		{0x0, dram.Loc{}},
		{64, dram.Loc{Col: 1}},
		{8192 - 64, dram.Loc{Col: 127}}, // last line of the page
		{8192, dram.Loc{Group: 1}},      // next page: next group
		{4 * 8192, dram.Loc{Bank: 1}},   // groups wrap into bank
		{16 * 8192, dram.Loc{Row: 1}},   // banks wrap into row
		{16*8192 + 3*8192 + 2*64, dram.Loc{Row: 1, Group: 3, Col: 2}},
	}
	for _, tc := range cases {
		if got := s.Decode(tc.addr); got != tc.want {
			t.Errorf("Decode(%#x) = %+v, want %+v", tc.addr, got, tc.want)
		}
	}
	// 128 consecutive lines stay in one bank and row (page locality).
	base := uint64(123) * 8192 * 16
	first := s.Decode(base)
	for i := 1; i < 128; i++ {
		l := s.Decode(base + uint64(i)*64)
		if l.Bank != first.Bank || l.Group != first.Group || l.Row != first.Row {
			t.Fatalf("line %d left the page: %+v vs %+v", i, l, first)
		}
	}
}

// TestInterleavedScheme checks the Fig. 5(b) layout: consecutive cache
// lines rotate over bank groups first, then banks.
func TestInterleavedScheme(t *testing.T) {
	s := MustInterleaved(geo(), 1)
	for i := 0; i < 32; i++ {
		l := s.Decode(uint64(i) * 64)
		wantGroup := i % 4
		wantBank := (i / 4) % 4
		wantCol := i / 16
		if l.Group != wantGroup || l.Bank != wantBank || l.Col != wantCol || l.Row != 0 {
			t.Errorf("line %d -> %+v, want group %d bank %d col %d",
				i, l, wantGroup, wantBank, wantCol)
		}
	}
	// 16 consecutive lines touch all 16 banks.
	seen := map[[2]int]bool{}
	for i := 0; i < 16; i++ {
		l := s.Decode(uint64(i) * 64)
		seen[[2]int{l.Group, l.Bank}] = true
	}
	if len(seen) != 16 {
		t.Errorf("16 consecutive lines touched %d banks, want 16", len(seen))
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, mk := range []func(dram.Geometry, int) *Scheme{MustDefault, MustInterleaved} {
		s := mk(geo(), 1)
		f := func(raw uint64) bool {
			addr := (raw &^ 63) & ((1 << s.Bits()) - 1) // line-aligned, in range
			return s.Encode(s.Decode(addr)) == addr
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: round trip failed: %v", s.Name(), err)
		}
	}
}

func TestDecodeInRangeProperty(t *testing.T) {
	g := geo()
	s := MustDefault(g, 1)
	f := func(addr uint64) bool {
		l := s.Decode(addr)
		return l.Channel == 0 && l.Rank == 0 &&
			l.Group >= 0 && l.Group < g.Groups &&
			l.Bank >= 0 && l.Bank < g.Banks &&
			l.Row >= 0 && l.Row < g.Rows &&
			l.Col >= 0 && l.Col < g.Cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("decode out of range: %v", err)
	}
}

func TestDistinctLinesDistinctLocs(t *testing.T) {
	s := MustInterleaved(geo(), 1)
	rng := rand.New(rand.NewSource(42))
	seen := map[dram.Loc]uint64{}
	for i := 0; i < 5000; i++ {
		addr := (rng.Uint64() &^ 63) & ((1 << s.Bits()) - 1)
		l := s.Decode(addr)
		if prev, dup := seen[l]; dup && prev != addr {
			t.Fatalf("addresses %#x and %#x map to the same location %+v", prev, addr, l)
		}
		seen[l] = addr
	}
}

func TestMultiChannel(t *testing.T) {
	g := geo()
	s, err := NewScheme("ch-interleaved", g, 2,
		[]Field{FieldChannel, FieldColumn, FieldGroup, FieldBank, FieldRank, FieldRow})
	if err != nil {
		t.Fatal(err)
	}
	if s.Channels() != 2 {
		t.Fatalf("channels = %d", s.Channels())
	}
	a := s.Decode(0)
	b := s.Decode(64)
	if a.Channel != 0 || b.Channel != 1 {
		t.Errorf("consecutive lines on channels %d,%d, want 0,1", a.Channel, b.Channel)
	}
}

func TestNewSchemeErrors(t *testing.T) {
	g := geo()
	if _, err := NewScheme("dup", g, 1,
		[]Field{FieldColumn, FieldColumn, FieldGroup, FieldBank, FieldRank, FieldChannel, FieldRow}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewScheme("missing", g, 1, []Field{FieldColumn}); err == nil {
		t.Error("missing fields accepted")
	}
	if _, err := NewScheme("chan", g, 0, nil); err == nil {
		t.Error("zero channels accepted")
	}
	bad := g
	bad.Cols = 100 // not a power of two
	if _, err := NewDefault(bad, 1); err == nil {
		t.Error("non-power-of-two geometry accepted")
	}
}

func TestSchemeString(t *testing.T) {
	s := MustDefault(geo(), 1)
	str := s.String()
	for _, want := range []string{"default", "row[15]", "column[7]", "offset[6]", "group[2]", "bank[2]"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}

func TestXORSchemeRoundTrip(t *testing.T) {
	base := MustDefault(geo(), 1)
	x := NewXOR(base)
	if x.Name() != "default+xor" || x.Channels() != 1 {
		t.Errorf("name/channels = %q/%d", x.Name(), x.Channels())
	}
	f := func(raw uint64) bool {
		addr := (raw &^ 63) & ((1 << base.Bits()) - 1)
		return x.Encode(x.Decode(addr)) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestXORSchemeSpreadsSameBankRows(t *testing.T) {
	g := geo()
	base := MustDefault(g, 1)
	x := NewXOR(base)
	// Addresses 128 KB apart land on the same bank under the default
	// scheme (consecutive rows of bank 0); the XOR hash spreads them.
	banksBase := map[[2]int]bool{}
	banksXOR := map[[2]int]bool{}
	for i := 0; i < 16; i++ {
		addr := uint64(i) * 128 * 1024
		b := base.Decode(addr)
		h := x.Decode(addr)
		banksBase[[2]int{b.Group, b.Bank}] = true
		banksXOR[[2]int{h.Group, h.Bank}] = true
	}
	if len(banksBase) != 1 {
		t.Fatalf("default scheme spread rows over %d banks, want 1", len(banksBase))
	}
	if len(banksXOR) != 16 {
		t.Errorf("xor scheme spread 16 rows over %d banks, want 16", len(banksXOR))
	}
	// Page locality preserved: lines within a page stay together.
	l0 := x.Decode(0)
	for i := 1; i < 128; i++ {
		l := x.Decode(uint64(i) * 64)
		if l.Group != l0.Group || l.Bank != l0.Bank || l.Row != l0.Row {
			t.Fatalf("line %d left the page under xor: %+v vs %+v", i, l, l0)
		}
	}
}

func TestXORDistinctAddressesDistinctLocs(t *testing.T) {
	x := NewXOR(MustDefault(geo(), 1))
	seen := map[dram.Loc]uint64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		addr := (rng.Uint64() &^ 63) & ((1 << 32) - 1)
		l := x.Decode(addr)
		if prev, dup := seen[l]; dup && prev != addr {
			t.Fatalf("collision: %#x and %#x -> %+v", prev, addr, l)
		}
		seen[l] = addr
	}
}
