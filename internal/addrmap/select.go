package addrmap

import (
	"fmt"

	"dramstacks/internal/dram"
	"dramstacks/internal/dram/standard"
)

// Select builds the mapper for a machine of `channels` addressed
// channels with `subChannels` independently timed sub-devices (HBM
// pseudo-channels) behind each, using the named scheme kind ("def",
// "int" or "xor", as sim.Mapping prints them; "" means "def").
//
// Sub-channels are address-mapped exactly like extra channels: the
// mapper distributes lines over channels × subChannels devices, and for
// any multi-device layout the device-select bits sit directly above the
// cache-line offset. For HBM that places the pseudo-channel bit in its
// architectural position (low address bits), so consecutive lines
// alternate pseudo-channels.
//
// For subChannels == 1 the selection is byte-identical to the historical
// single-standard behavior: "def" picks the paper's Fig. 5(a) scheme
// (channel-interleaved when channels > 1), "int" the Fig. 5(b)
// cache-line-interleaved scheme (with the channel bits lowest when
// channels > 1), and "xor" the permutation-based bank hash over the
// "def" layout.
func Select(geo dram.Geometry, subChannels, channels int, kind string) (Mapper, error) {
	if subChannels <= 0 {
		subChannels = 1
	}
	if channels <= 0 {
		channels = 1
	}
	devices := channels * subChannels
	switch kind {
	case "int":
		if devices == 1 {
			return NewInterleaved(geo, 1)
		}
		return NewScheme("interleaved-multichannel", geo, devices,
			[]Field{FieldChannel, FieldGroup, FieldBank, FieldColumn, FieldRank, FieldRow})
	case "xor":
		var base *Scheme
		var err error
		if devices == 1 {
			base, err = NewDefault(geo, 1)
		} else {
			base, err = NewChannelInterleaved(geo, devices)
		}
		if err != nil {
			return nil, err
		}
		return NewXOR(base), nil
	case "def", "":
		if devices == 1 {
			return NewDefault(geo, 1)
		}
		return NewChannelInterleaved(geo, devices)
	default:
		return nil, fmt.Errorf("addrmap: unknown mapping kind %q (want def, int or xor)", kind)
	}
}

// ForStandard builds the mapper for `channels` addressed channels of the
// given DRAM standard, including its pseudo-channel topology.
func ForStandard(std standard.Standard, channels int, kind string) (Mapper, error) {
	return Select(std.Geometry, std.SubChannels, channels, kind)
}
