// Package addrmap maps physical addresses onto DRAM coordinates
// (channel, rank, bank group, bank, row, column).
//
// The paper's Fig. 5 shows two schemes for the evaluated single-channel,
// single-rank module:
//
//	(a) default:     row[15] | bank[2] | group[2] | column[7] | offset[6]
//	(b) interleaved: row[15] | column[7] | bank[2] | group[2] | offset[6]
//
// The default scheme keeps 128 consecutive cache lines in the same bank
// (one full 8 KB page), maximizing page hits for sequential streams. The
// cache-line-interleaved scheme spreads consecutive lines over the bank
// groups and banks, trading page locality for bank-level parallelism.
//
// Schemes are expressed as an ordered list of fields placed above the
// cache-line offset, from least-significant upward, so other layouts
// (e.g. channel interleaving) can be constructed with NewScheme.
package addrmap

import (
	"fmt"
	"math/bits"
	"strings"

	"dramstacks/internal/dram"
)

// Field names one component of the DRAM coordinate extracted from an
// address.
type Field uint8

const (
	// FieldColumn selects the column (cache line within a row).
	FieldColumn Field = iota
	// FieldGroup selects the bank group.
	FieldGroup
	// FieldBank selects the bank within its group.
	FieldBank
	// FieldRank selects the rank.
	FieldRank
	// FieldChannel selects the channel.
	FieldChannel
	// FieldRow selects the row.
	FieldRow

	numFields
)

// String returns the lower-case field name.
func (f Field) String() string {
	switch f {
	case FieldColumn:
		return "column"
	case FieldGroup:
		return "group"
	case FieldBank:
		return "bank"
	case FieldRank:
		return "rank"
	case FieldChannel:
		return "channel"
	case FieldRow:
		return "row"
	default:
		return fmt.Sprintf("Field(%d)", uint8(f))
	}
}

// Mapper converts between physical addresses and DRAM locations.
type Mapper interface {
	// Decode maps a physical byte address to its DRAM location.
	Decode(addr uint64) dram.Loc
	// Encode maps a DRAM location back to the base address of its
	// cache line (the line-offset bits are zero).
	Encode(loc dram.Loc) uint64
	// Channels returns the number of channels the mapper distributes
	// addresses over.
	Channels() int
	// Name identifies the scheme (for reports).
	Name() string
}

// Scheme is a bit-sliced address mapping: fields are packed above the
// cache-line offset in Order, least-significant first.
type Scheme struct {
	name     string
	geo      dram.Geometry
	channels int

	order  []Field
	shift  [numFields]uint // bit position of each field
	width  [numFields]uint // bit width of each field
	offset uint            // cache-line offset bits
}

var _ Mapper = (*Scheme)(nil)

func log2(v int) (uint, error) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, fmt.Errorf("addrmap: %d is not a positive power of two", v)
	}
	return uint(bits.TrailingZeros(uint(v))), nil
}

// NewScheme builds a mapping for the given geometry and channel count with
// the given field order (least-significant first, above the line offset).
// Every field must appear exactly once; all geometry dimensions must be
// powers of two.
func NewScheme(name string, geo dram.Geometry, channels int, order []Field) (*Scheme, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if channels <= 0 {
		return nil, fmt.Errorf("addrmap: channels must be positive, got %d", channels)
	}
	s := &Scheme{name: name, geo: geo, channels: channels, order: append([]Field(nil), order...)}

	sizes := map[Field]int{
		FieldColumn:  geo.Cols,
		FieldGroup:   geo.Groups,
		FieldBank:    geo.Banks,
		FieldRank:    geo.Ranks,
		FieldChannel: channels,
		FieldRow:     geo.Rows,
	}
	var err error
	if s.offset, err = log2(geo.LineBytes); err != nil {
		return nil, fmt.Errorf("addrmap: line bytes: %w", err)
	}

	seen := map[Field]bool{}
	pos := s.offset
	for _, f := range order {
		if f >= numFields {
			return nil, fmt.Errorf("addrmap: unknown field %d", f)
		}
		if seen[f] {
			return nil, fmt.Errorf("addrmap: field %v appears twice", f)
		}
		seen[f] = true
		w, err := log2(sizes[f])
		if err != nil {
			return nil, fmt.Errorf("addrmap: %v size: %w", f, err)
		}
		s.shift[f] = pos
		s.width[f] = w
		pos += w
	}
	if len(seen) != int(numFields) {
		missing := []string{}
		for f := Field(0); f < numFields; f++ {
			if !seen[f] {
				missing = append(missing, f.String())
			}
		}
		return nil, fmt.Errorf("addrmap: fields missing from order: %s", strings.Join(missing, ", "))
	}
	if pos > 63 {
		return nil, fmt.Errorf("addrmap: scheme needs %d address bits, max 63", pos)
	}
	return s, nil
}

// Name returns the scheme name.
func (s *Scheme) Name() string { return s.name }

// Channels returns the number of channels addresses are spread over.
func (s *Scheme) Channels() int { return s.channels }

// Bits returns the number of significant address bits.
func (s *Scheme) Bits() uint {
	f := s.order[len(s.order)-1]
	return s.shift[f] + s.width[f]
}

func (s *Scheme) field(addr uint64, f Field) int {
	return int((addr >> s.shift[f]) & ((1 << s.width[f]) - 1))
}

// Decode maps a physical byte address to its DRAM location. Address bits
// above the scheme's range wrap (they are masked off), so any 64-bit
// address is usable.
func (s *Scheme) Decode(addr uint64) dram.Loc {
	return dram.Loc{
		Channel: s.field(addr, FieldChannel),
		Rank:    s.field(addr, FieldRank),
		Group:   s.field(addr, FieldGroup),
		Bank:    s.field(addr, FieldBank),
		Row:     s.field(addr, FieldRow),
		Col:     s.field(addr, FieldColumn),
	}
}

// Encode maps a DRAM location back to the base address of its cache line.
func (s *Scheme) Encode(loc dram.Loc) uint64 {
	var addr uint64
	put := func(f Field, v int) {
		addr |= (uint64(v) & ((1 << s.width[f]) - 1)) << s.shift[f]
	}
	put(FieldChannel, loc.Channel)
	put(FieldRank, loc.Rank)
	put(FieldGroup, loc.Group)
	put(FieldBank, loc.Bank)
	put(FieldRow, loc.Row)
	put(FieldColumn, loc.Col)
	return addr
}

// String describes the bit layout, most-significant field first.
func (s *Scheme) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.name)
	for i := len(s.order) - 1; i >= 0; i-- {
		f := s.order[i]
		fmt.Fprintf(&b, " %s[%d]", f, s.width[f])
	}
	fmt.Fprintf(&b, " offset[%d]", s.offset)
	return b.String()
}

// NewDefault returns the paper's default scheme (Fig. 5a): from the LSB
// upward column, bank group, bank, rank, channel, row. Sequential lines
// stay on one page; the bank-group bits sit just above the column so
// streams longer than one page move to the next group.
func NewDefault(geo dram.Geometry, channels int) (*Scheme, error) {
	return NewScheme("default", geo, channels,
		[]Field{FieldColumn, FieldGroup, FieldBank, FieldRank, FieldChannel, FieldRow})
}

// NewInterleaved returns the paper's cache-line-interleaved scheme
// (Fig. 5b): the bank-group and bank bits sit directly above the line
// offset, so consecutive cache lines rotate over all 16 banks; the column
// bits move above them (but stay below the row bits to retain page
// locality once the stream wraps around the banks).
func NewInterleaved(geo dram.Geometry, channels int) (*Scheme, error) {
	return NewScheme("interleaved", geo, channels,
		[]Field{FieldGroup, FieldBank, FieldColumn, FieldRank, FieldChannel, FieldRow})
}

// NewChannelInterleaved returns a multi-channel variant of the default
// scheme with the channel bits directly above the cache-line offset, so
// consecutive lines alternate channels (the standard way to aggregate
// channel bandwidth).
func NewChannelInterleaved(geo dram.Geometry, channels int) (*Scheme, error) {
	return NewScheme("channel-interleaved", geo, channels,
		[]Field{FieldChannel, FieldColumn, FieldGroup, FieldBank, FieldRank, FieldRow})
}

// XORScheme wraps another scheme and XOR-hashes the bank and bank-group
// indices with low row bits (permutation-based page interleaving, Zhang
// et al.): addresses that would collide on a bank with the base scheme
// are spread over the banks without sacrificing the page locality of
// sequential streams, a standard controller trick for row-conflict-heavy
// workloads.
type XORScheme struct {
	base *Scheme
}

var _ Mapper = (*XORScheme)(nil)

// NewXOR returns the XOR-hashed variant of base.
func NewXOR(base *Scheme) *XORScheme { return &XORScheme{base: base} }

// Name identifies the scheme.
func (x *XORScheme) Name() string { return x.base.Name() + "+xor" }

// Channels returns the channel count of the base scheme.
func (x *XORScheme) Channels() int { return x.base.Channels() }

// Decode maps an address, hashing bank/group with the low row bits.
func (x *XORScheme) Decode(addr uint64) dram.Loc {
	l := x.base.Decode(addr)
	l.Group ^= l.Row & (x.base.geo.Groups - 1)
	l.Bank ^= (l.Row >> uint(bits.TrailingZeros(uint(x.base.geo.Groups)))) & (x.base.geo.Banks - 1)
	return l
}

// Encode inverts Decode (XOR is its own inverse).
func (x *XORScheme) Encode(loc dram.Loc) uint64 {
	loc.Group ^= loc.Row & (x.base.geo.Groups - 1)
	loc.Bank ^= (loc.Row >> uint(bits.TrailingZeros(uint(x.base.geo.Groups)))) & (x.base.geo.Banks - 1)
	return x.base.Encode(loc)
}

// MustDefault is NewDefault for known-good geometries; it panics on error.
func MustDefault(geo dram.Geometry, channels int) *Scheme {
	s, err := NewDefault(geo, channels)
	if err != nil {
		panic(err)
	}
	return s
}

// MustInterleaved is NewInterleaved for known-good geometries; it panics
// on error.
func MustInterleaved(geo dram.Geometry, channels int) *Scheme {
	s, err := NewInterleaved(geo, channels)
	if err != nil {
		panic(err)
	}
	return s
}
