// Package extrapolate implements the paper's §VIII-B bandwidth-usage
// extrapolation: predicting the bandwidth an application will achieve at
// a higher core count from a low-core-count run.
//
// The naive method scales achieved bandwidth linearly and saturates at
// the peak (minus refresh). The stack-based method scales every non-idle
// bandwidth-stack component except refresh — if traffic grows, time spent
// precharging/activating and blocked on constraints grows with it — and,
// when the scaled total exceeds the peak, renormalizes the whole stack
// back to the peak, which shrinks the achieved read+write share. The
// paper reports a 27% mean error for the naive method versus 8% for the
// stack-based method on the GAP benchmarks (Fig. 9).
package extrapolate

import (
	"fmt"

	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// Naive scales the achieved bandwidth by factor, saturating at the peak
// bandwidth minus the refresh share. Inputs and output are GB/s.
func Naive(achievedGBs float64, factor float64, geo dram.Geometry, refreshGBs float64) float64 {
	cap := geo.PeakBandwidthGBs() - refreshGBs
	if v := achievedGBs * factor; v < cap {
		return v
	}
	return cap
}

// Stack extrapolates a bandwidth stack to factor × the traffic and
// returns the predicted achieved (read+write) bandwidth in GB/s,
// together with the scaled stack (renormalized to the peak when the
// non-idle components overflow it).
func Stack(s stacks.BandwidthStack, factor float64, geo dram.Geometry) (float64, [stacks.NumBWComponents]float64) {
	g := s.GBps(geo)
	peak := geo.PeakBandwidthGBs()

	var scaled [stacks.NumBWComponents]float64
	var busy float64
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		switch c {
		case stacks.BWIdle, stacks.BWBankIdle:
			scaled[c] = 0 // idleness shrinks as traffic grows
		case stacks.BWRefresh:
			scaled[c] = g[c] // refresh rate is constant
			busy += scaled[c]
		default:
			scaled[c] = g[c] * factor
			busy += scaled[c]
		}
	}
	if busy > peak {
		// Bandwidth bound: refresh stays physically constant; shrink the
		// scaled components proportionally into the remaining headroom
		// so the stack sums to the peak again.
		ref := scaled[stacks.BWRefresh]
		ratio := (peak - ref) / (busy - ref)
		for c := range scaled {
			if stacks.BWComponent(c) != stacks.BWRefresh {
				scaled[c] *= ratio
			}
		}
	} else {
		// Whatever headroom remains is idle time at the new core count.
		scaled[stacks.BWIdle] = peak - busy
	}
	return scaled[stacks.BWRead] + scaled[stacks.BWWrite], scaled
}

// StackSamples applies the stack method per through-time sample and
// aggregates, which the paper does because bandwidth (and therefore
// scaling headroom) varies across phases. Samples are weighted by their
// cycle counts.
func StackSamples(samples []stacks.Sample, factor float64, geo dram.Geometry) float64 {
	var sum, cycles float64
	for _, sm := range samples {
		if sm.BW.TotalCycles <= 0 {
			continue
		}
		pred, _ := Stack(sm.BW, factor, geo)
		sum += pred * float64(sm.BW.TotalCycles)
		cycles += float64(sm.BW.TotalCycles)
	}
	if cycles == 0 {
		return 0
	}
	return sum / cycles
}

// NaiveSamples applies the naive method per sample and aggregates.
func NaiveSamples(samples []stacks.Sample, factor float64, geo dram.Geometry) float64 {
	var sum, cycles float64
	for _, sm := range samples {
		if sm.BW.TotalCycles <= 0 {
			continue
		}
		g := sm.BW.GBps(geo)
		pred := Naive(g[stacks.BWRead]+g[stacks.BWWrite], factor, geo, g[stacks.BWRefresh])
		sum += pred * float64(sm.BW.TotalCycles)
		cycles += float64(sm.BW.TotalCycles)
	}
	if cycles == 0 {
		return 0
	}
	return sum / cycles
}

// Predict applies both methods to the sampled base run at the given
// traffic factor and pairs the predictions with a measured value — one
// row of the paper's Fig. 9, used by the sweep engine when a sweep
// varies core counts.
func Predict(name string, baseSamples []stacks.Sample, factor float64, geo dram.Geometry, measured float64) Prediction {
	return Prediction{
		Name:     name,
		Measured: measured,
		Naive:    NaiveSamples(baseSamples, factor, geo),
		Stack:    StackSamples(baseSamples, factor, geo),
	}
}

// Prediction compares both methods against a measured value.
type Prediction struct {
	Name     string
	Measured float64
	Naive    float64
	Stack    float64
}

// NaiveErr returns the naive method's relative error.
func (p Prediction) NaiveErr() float64 { return relErr(p.Naive, p.Measured) }

// StackErr returns the stack method's relative error.
func (p Prediction) StackErr() float64 { return relErr(p.Stack, p.Measured) }

func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	e := (pred - meas) / meas
	if e < 0 {
		return -e
	}
	return e
}

// MeanErrors returns the mean relative errors of both methods over a set
// of predictions (the paper's 27% vs 8% summary numbers).
func MeanErrors(ps []Prediction) (naive, stack float64, err error) {
	if len(ps) == 0 {
		return 0, 0, fmt.Errorf("extrapolate: no predictions")
	}
	for _, p := range ps {
		naive += p.NaiveErr()
		stack += p.StackErr()
	}
	n := float64(len(ps))
	return naive / n, stack / n, nil
}
