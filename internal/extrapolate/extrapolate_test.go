package extrapolate

import (
	"math"
	"testing"
	"testing/quick"

	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

func geo() dram.Geometry {
	g, _ := dram.DDR4_2400()
	return g
}

// mkStack builds a bandwidth stack from GB/s component values.
func mkStack(t *testing.T, gbps map[stacks.BWComponent]float64) stacks.BandwidthStack {
	t.Helper()
	g := geo()
	total := int64(1_000_000)
	s := stacks.BandwidthStack{Banks: g.TotalBanks(), TotalCycles: total}
	var sum float64
	for c, v := range gbps {
		s.Cycles[c] = v / g.PeakBandwidthGBs() * float64(total)
		sum += v
	}
	s.Cycles[stacks.BWIdle] += (g.PeakBandwidthGBs() - sum) / g.PeakBandwidthGBs() * float64(total)
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNaiveSaturates(t *testing.T) {
	g := geo()
	if got := Naive(2, 4, g, 0.9); math.Abs(got-8) > 1e-12 {
		t.Errorf("naive below cap = %v, want 8", got)
	}
	if got := Naive(4, 8, g, 0.9); math.Abs(got-(19.2-0.9)) > 1e-12 {
		t.Errorf("naive above cap = %v, want %v", got, 19.2-0.9)
	}
}

func TestStackUnconstrainedScalesLinearly(t *testing.T) {
	s := mkStack(t, map[stacks.BWComponent]float64{
		stacks.BWRead:    1.5,
		stacks.BWWrite:   0.5,
		stacks.BWRefresh: 0.9,
	})
	pred, scaled := Stack(s, 4, geo())
	if math.Abs(pred-8) > 1e-9 {
		t.Errorf("prediction = %v, want 8 (4× read+write)", pred)
	}
	// Stack still sums to the peak.
	var sum float64
	for _, v := range scaled {
		sum += v
	}
	if math.Abs(sum-geo().PeakBandwidthGBs()) > 1e-9 {
		t.Errorf("scaled stack sums to %v, want peak", sum)
	}
	if math.Abs(scaled[stacks.BWRefresh]-0.9) > 1e-9 {
		t.Errorf("refresh scaled to %v, want constant 0.9", scaled[stacks.BWRefresh])
	}
}

// TestStackBoundPrediction reproduces the key property: when the scaled
// non-idle components exceed the peak, the prediction falls below the
// naive saturation point because pre/act and constraints grow with
// traffic and crowd out data transfers.
func TestStackBoundPrediction(t *testing.T) {
	s := mkStack(t, map[stacks.BWComponent]float64{
		stacks.BWRead:        2.0,
		stacks.BWPrecharge:   1.0,
		stacks.BWActivate:    1.0,
		stacks.BWConstraints: 0.5,
		stacks.BWRefresh:     0.9,
	})
	pred, scaled := Stack(s, 8, geo())
	naive := Naive(2.0, 8, geo(), 0.9)
	if pred >= naive {
		t.Errorf("stack prediction %v should be below naive %v (overheads scale too)", pred, naive)
	}
	var sum float64
	for _, v := range scaled {
		sum += v
	}
	if math.Abs(sum-geo().PeakBandwidthGBs()) > 1e-9 {
		t.Errorf("bound stack sums to %v, want peak", sum)
	}
	if scaled[stacks.BWIdle] != 0 {
		t.Errorf("bound stack has idle %v, want 0", scaled[stacks.BWIdle])
	}
	// Exact value: scaled non-refresh busy = (2+1+1+0.5)*8 = 36 squeezed
	// into the 19.2-0.9 headroom left by the constant refresh share.
	want := 16.0 * (19.2 - 0.9) / 36.0
	if math.Abs(pred-want) > 1e-9 {
		t.Errorf("prediction = %v, want %v", pred, want)
	}
}

func TestStackNeverExceedsPeakProperty(t *testing.T) {
	g := geo()
	f := func(read, write, pre, act, cons uint8, factor uint8) bool {
		total := float64(read) + float64(write) + float64(pre) + float64(act) + float64(cons)
		if total == 0 {
			return true
		}
		norm := g.PeakBandwidthGBs() / total * 0.9
		s := stacks.BandwidthStack{Banks: 16, TotalCycles: 1000}
		vals := []float64{float64(read) * norm, float64(write) * norm,
			float64(pre) * norm, float64(act) * norm, float64(cons) * norm}
		comps := []stacks.BWComponent{stacks.BWRead, stacks.BWWrite,
			stacks.BWPrecharge, stacks.BWActivate, stacks.BWConstraints}
		var used float64
		for i, c := range comps {
			s.Cycles[c] = vals[i] / g.PeakBandwidthGBs() * 1000
			used += s.Cycles[c]
		}
		s.Cycles[stacks.BWIdle] = 1000 - used
		pred, scaled := Stack(s, float64(factor%16)+1, g)
		var sum float64
		for _, v := range scaled {
			if v < -1e-9 {
				return false
			}
			sum += v
		}
		return pred <= g.PeakBandwidthGBs()+1e-9 &&
			math.Abs(sum-g.PeakBandwidthGBs()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSampleAggregation(t *testing.T) {
	g := geo()
	lo := mkStack(t, map[stacks.BWComponent]float64{stacks.BWRead: 1, stacks.BWRefresh: 0.9})
	hi := mkStack(t, map[stacks.BWComponent]float64{stacks.BWRead: 10, stacks.BWRefresh: 0.9})
	samples := []stacks.Sample{{BW: lo}, {BW: hi}}
	pred := StackSamples(samples, 8, g)
	// Low phase scales 1→8 freely; high phase saturates at 18.3.
	want := (8.0 + 18.3) / 2
	if math.Abs(pred-want) > 1e-9 {
		t.Errorf("per-sample stack prediction = %v, want %v", pred, want)
	}
	nv := NaiveSamples(samples, 8, g)
	if math.Abs(nv-want) > 1e-9 { // same here: no overhead components
		t.Errorf("per-sample naive prediction = %v, want %v", nv, want)
	}
}

func TestPredictionErrors(t *testing.T) {
	p := Prediction{Measured: 10, Naive: 14, Stack: 11}
	if math.Abs(p.NaiveErr()-0.4) > 1e-12 || math.Abs(p.StackErr()-0.1) > 1e-12 {
		t.Errorf("errors = %v/%v, want 0.4/0.1", p.NaiveErr(), p.StackErr())
	}
	n, s, err := MeanErrors([]Prediction{p, {Measured: 10, Naive: 10, Stack: 10}})
	if err != nil || math.Abs(n-0.2) > 1e-12 || math.Abs(s-0.05) > 1e-12 {
		t.Errorf("mean errors = %v/%v (%v)", n, s, err)
	}
	if _, _, err := MeanErrors(nil); err == nil {
		t.Error("empty prediction set accepted")
	}
}
