package extrapolate_test

import (
	"fmt"

	"dramstacks/internal/dram"
	"dramstacks/internal/extrapolate"
	"dramstacks/internal/stacks"
)

// Example reproduces the paper's §VIII-B reasoning on a hand-built
// 1-core bandwidth stack: the naive method scales achieved bandwidth
// and saturates at the peak, while the stack method also scales the
// pre/act and constraints overheads — which crowd out data transfers
// and produce a lower (more accurate) prediction.
func Example() {
	geo, _ := dram.DDR4_2400()

	// A 1-core stack: 2 GB/s achieved, but page misses already burn
	// 2 GB/s of pre/act and 0.5 GB/s of constraints.
	total := int64(1_000_000)
	mk := func(gbs float64) float64 { return gbs / geo.PeakBandwidthGBs() * float64(total) }
	s := stacks.BandwidthStack{Banks: 16, TotalCycles: total}
	s.Cycles[stacks.BWRead] = mk(2.0)
	s.Cycles[stacks.BWPrecharge] = mk(1.0)
	s.Cycles[stacks.BWActivate] = mk(1.0)
	s.Cycles[stacks.BWConstraints] = mk(0.5)
	s.Cycles[stacks.BWRefresh] = mk(0.9)
	s.Cycles[stacks.BWIdle] = float64(total) - s.Cycles[stacks.BWRead] -
		s.Cycles[stacks.BWPrecharge] - s.Cycles[stacks.BWActivate] -
		s.Cycles[stacks.BWConstraints] - s.Cycles[stacks.BWRefresh]

	naive := extrapolate.Naive(2.0, 8, geo, 0.9)
	stackPred, _ := extrapolate.Stack(s, 8, geo)
	fmt.Printf("naive: %.2f GB/s, stack-based: %.2f GB/s\n", naive, stackPred)
	// Output:
	// naive: 16.00 GB/s, stack-based: 8.13 GB/s
}
