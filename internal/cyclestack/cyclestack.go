// Package cyclestack implements CPI / cycle stacks for the core model, in
// the style the paper builds on (Eyerman et al.): every core cycle is
// attributed to the component that kept the core from committing work.
// The paper's Fig. 7 plots these through time next to the DRAM bandwidth
// and latency stacks, with DRAM stall time split into dram-latency
// (intrinsic access time) and dram-queue (queueing-related) using the
// per-request DRAM latency stacks.
package cyclestack

import "fmt"

// Component enumerates the cycle stack components used in Fig. 7.
type Component uint8

const (
	// Base is committed work: cycles in which the core retired at least
	// one instruction.
	Base Component = iota
	// Branch is time lost refilling the pipeline after branch
	// mispredictions.
	Branch
	// Dcache is stall time on loads served by the cache hierarchy
	// (L2/LLC hits).
	Dcache
	// DramLatency is stall time on DRAM loads attributable to the
	// intrinsic access latency (base + page pre/act).
	DramLatency
	// DramQueue is stall time on DRAM loads attributable to queueing
	// (queue + write bursts + refresh interference).
	DramQueue
	// Idle is cycles with no work at all (thread finished or starved).
	Idle
	// DramRegulated is stall time on DRAM loads attributable to QoS
	// bandwidth regulation (the request was held because its source was
	// over budget). Always exactly zero without a QoS policy.
	DramRegulated

	// NumComponents is the number of cycle stack components.
	NumComponents
)

// String returns the label used in the paper's Fig. 7.
func (c Component) String() string {
	switch c {
	case Base:
		return "base"
	case Branch:
		return "branch"
	case Dcache:
		return "dcache"
	case DramLatency:
		return "dram-latency"
	case DramQueue:
		return "dram-queue"
	case Idle:
		return "idle"
	case DramRegulated:
		return "dram-regulated"
	default:
		return fmt.Sprintf("Component(%d)", uint8(c))
	}
}

// Accountant accumulates one core's cycle stack. Whole cycles are added
// with AddCycle; deferred DRAM stall redistributions use Add with
// fractional amounts (the total stays consistent because the fractions of
// one stall sum to the stalled cycles).
type Accountant struct {
	cycles [NumComponents]float64
	total  int64
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant { return &Accountant{} }

// AddCycle attributes one full cycle to component c.
func (a *Accountant) AddCycle(c Component) {
	a.cycles[c]++
	a.total++
}

// AddCycles attributes n full cycles to component c in closed form.
// Component totals are whole-valued float64s well below 2^53, so this is
// bit-identical to n AddCycle calls — required for fast-forwarded runs
// to reproduce per-cycle results byte-for-byte.
func (a *Accountant) AddCycles(c Component, n int64) {
	a.cycles[c] += float64(n)
	a.total += n
}

// Add attributes a fractional number of cycles to c without advancing the
// total; use in pairs that sum to previously counted whole cycles.
func (a *Accountant) Add(c Component, cycles float64) {
	a.cycles[c] += cycles
}

// AddTotal advances the total cycle count by n without attributing; used
// with Add when a stall's split is known only later.
func (a *Accountant) AddTotal(n int64) { a.total += n }

// Stack returns the accumulated stack.
func (a *Accountant) Stack() Stack {
	return Stack{Cycles: a.cycles, Total: a.total}
}

// Stack is a completed cycle stack: per-component CPU cycles.
type Stack struct {
	Cycles [NumComponents]float64
	Total  int64
}

// Sub returns the stack covering the interval between snapshot old and s.
func (s Stack) Sub(old Stack) Stack {
	d := Stack{Total: s.Total - old.Total}
	for c := range s.Cycles {
		d.Cycles[c] = s.Cycles[c] - old.Cycles[c]
	}
	return d
}

// Add accumulates another core's stack into s.
func (s *Stack) Add(o Stack) {
	s.Total += o.Total
	for c := range s.Cycles {
		s.Cycles[c] += o.Cycles[c]
	}
}

// Fractions returns each component as a fraction of total cycles.
func (s Stack) Fractions() [NumComponents]float64 {
	var out [NumComponents]float64
	if s.Total == 0 {
		return out
	}
	for c := range s.Cycles {
		out[c] = s.Cycles[c] / float64(s.Total)
	}
	return out
}

// CheckSum verifies that components sum to the total cycle count.
func (s Stack) CheckSum() error {
	var sum float64
	for _, v := range s.Cycles {
		if v < -1e-6 {
			return fmt.Errorf("cyclestack: negative component in %+v", s.Cycles)
		}
		sum += v
	}
	tol := 1e-6*float64(s.Total) + 1e-6
	if d := sum - float64(s.Total); d > tol || d < -tol {
		return fmt.Errorf("cyclestack: components sum to %.3f, want %d", sum, s.Total)
	}
	return nil
}
