package cyclestack

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddCycleAndSum(t *testing.T) {
	a := NewAccountant()
	a.AddCycle(Base)
	a.AddCycle(Base)
	a.AddCycle(Dcache)
	a.AddCycle(Idle)
	s := a.Stack()
	if s.Total != 4 {
		t.Fatalf("total = %d", s.Total)
	}
	if s.Cycles[Base] != 2 || s.Cycles[Dcache] != 1 || s.Cycles[Idle] != 1 {
		t.Errorf("cycles = %+v", s.Cycles)
	}
	if err := s.CheckSum(); err != nil {
		t.Error(err)
	}
}

func TestDeferredDramSplit(t *testing.T) {
	a := NewAccountant()
	// 10 stall cycles attributed later with a 30% queue fraction.
	for i := 0; i < 10; i++ {
		a.AddTotal(1)
	}
	a.Add(DramQueue, 3)
	a.Add(DramLatency, 7)
	s := a.Stack()
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if s.Cycles[DramQueue] != 3 || s.Cycles[DramLatency] != 7 {
		t.Errorf("split = %v/%v", s.Cycles[DramQueue], s.Cycles[DramLatency])
	}
}

func TestFractions(t *testing.T) {
	a := NewAccountant()
	for i := 0; i < 3; i++ {
		a.AddCycle(Base)
	}
	a.AddCycle(Branch)
	f := a.Stack().Fractions()
	if math.Abs(f[Base]-0.75) > 1e-12 || math.Abs(f[Branch]-0.25) > 1e-12 {
		t.Errorf("fractions = %+v", f)
	}
	var empty Stack
	if f := empty.Fractions(); f[Base] != 0 {
		t.Error("empty stack fractions not zero")
	}
}

func TestSubAndAdd(t *testing.T) {
	a := NewAccountant()
	a.AddCycle(Base)
	snap := a.Stack()
	a.AddCycle(Idle)
	a.AddCycle(Idle)
	d := a.Stack().Sub(snap)
	if d.Total != 2 || d.Cycles[Idle] != 2 || d.Cycles[Base] != 0 {
		t.Errorf("delta = %+v", d)
	}
	agg := snap
	agg.Add(d)
	if agg.Total != 3 || agg.Cycles[Base] != 1 {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestCheckSumRejectsBad(t *testing.T) {
	s := Stack{Total: 5}
	s.Cycles[Base] = 4
	if err := s.CheckSum(); err == nil {
		t.Error("undercounted stack accepted")
	}
	s.Cycles[Base] = 6
	if err := s.CheckSum(); err == nil {
		t.Error("overcounted stack accepted")
	}
	s.Cycles[Base] = 6
	s.Cycles[Idle] = -1
	if err := s.CheckSum(); err == nil {
		t.Error("negative component accepted")
	}
}

func TestSumPropertyUnderRandomSplits(t *testing.T) {
	f := func(parts []uint8, frac float64) bool {
		if frac < 0 || frac > 1 || math.IsNaN(frac) {
			frac = 0.5
		}
		a := NewAccountant()
		for _, p := range parts {
			c := Component(p) % NumComponents
			if c == DramQueue || c == DramLatency {
				// Deferred split path.
				a.AddTotal(1)
				a.Add(DramQueue, frac)
				a.Add(DramLatency, 1-frac)
				continue
			}
			a.AddCycle(c)
		}
		return a.Stack().CheckSum() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestComponentStrings(t *testing.T) {
	want := []string{"base", "branch", "dcache", "dram-latency", "dram-queue", "idle", "dram-regulated"}
	for c := Component(0); c < NumComponents; c++ {
		if got := c.String(); got != want[c] {
			t.Errorf("component %d = %q, want %q", c, got, want[c])
		}
	}
}
