// Package benchfmt is the shared schema of the repository's benchmark
// result files (BENCH_*.json, see doc/PERF.md) and their comparison
// logic: cmd/simbench writes them, cmd/benchdiff gates CI on them.
// Both commands are package main, so the schema and the write → load →
// compare round-trip live here, where they can be imported and tested
// in one place.
package benchfmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
)

// Version is the on-disk schema version; Decode rejects files that
// disagree.
const Version = 1

// Benchmark is one measured case. NsPerOp and the allocation figures
// are per simulation run; CyclesPerSec is simulated memory cycles per
// wall-clock second, the throughput number the CI gate compares.
type Benchmark struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"` // "fast" or "slow"
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	MemCycles    int64   `json:"mem_cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	BytesPerOp   uint64  `json:"bytes_per_op"`
	// SpeedupVsSlow is fast-mode throughput over slow-mode throughput
	// for cases measured in both modes (fast entries only).
	SpeedupVsSlow float64 `json:"speedup_vs_slow,omitempty"`
}

// Key identifies a case across files: cases are matched by name and
// mode.
func (b Benchmark) Key() string { return b.Name + "/" + b.Mode }

// File is the schema of BENCH_*.json.
type File struct {
	Version             int         `json:"version"`
	Go                  string      `json:"go"`
	GOOS                string      `json:"goos"`
	GOARCH              string      `json:"goarch"`
	Count               int         `json:"count"`
	Benchtime           int         `json:"benchtime"`
	Benchmarks          []Benchmark `json:"benchmarks"`
	GeomeanCyclesPerSec float64     `json:"geomean_cycles_per_sec"`
}

// Index maps every case by its Key.
func (f File) Index() map[string]Benchmark {
	out := make(map[string]Benchmark, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Key()] = b
	}
	return out
}

// Encode renders a file in the canonical committed form: indented,
// trailing newline.
func Encode(f File) ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a benchmark file and enforces the schema version.
func Decode(data []byte) (File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, err
	}
	if f.Version != Version {
		return File{}, fmt.Errorf("unsupported benchmark file version %d (this build speaks version %d)", f.Version, Version)
	}
	return f, nil
}

// Load reads and decodes path.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	f, err := Decode(data)
	if err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Status classifies one comparison row.
type Status string

const (
	// Compared rows have a finite throughput ratio and enter the geomean.
	Compared Status = "compared"
	// Skipped rows exist in both files but have a non-finite ratio (a
	// zero, negative or NaN reading on either side — typically a corrupt
	// or hand-edited baseline). They are excluded from the geomean: one
	// bad reading must not poison the gate with ±Inf or NaN.
	Skipped Status = "skipped"
	// OldOnly / NewOnly rows exist in just one file; they are reported
	// but never gate.
	OldOnly Status = "old-only"
	NewOnly Status = "new-only"
)

// Row is one case of a comparison. Old and New are cycles/sec (NaN on
// the missing side); Ratio is New/Old for Compared rows and NaN
// otherwise. The Alloc fields carry the allocs_per_op ratchet, judged
// independently of throughput: a row can enter one gate and be skipped
// by the other (e.g. a baseline that predates allocation tracking
// records zero allocs but a sound throughput).
type Row struct {
	Key      string
	Old, New float64
	Ratio    float64
	Status   Status

	OldAllocs, NewAllocs uint64
	AllocRatio           float64 // NewAllocs/OldAllocs, NaN unless AllocStatus is Compared
	AllocStatus          Status

	// OldSpeedup/NewSpeedup carry speedup_vs_slow through for reporting.
	// The field is informational and never gates; a zero value means the
	// file omitted it (a slow-mode row, or a harness that could not
	// measure a fast/slow pair — e.g. a -tags=slowtick build), and the
	// pair is then simply not comparable.
	OldSpeedup, NewSpeedup float64
}

// SpeedupComparable reports whether both sides of the row carry a
// sound speedup_vs_slow reading.
func (r Row) SpeedupComparable() bool {
	return finitePositive(r.OldSpeedup) && finitePositive(r.NewSpeedup)
}

// Comparison is the outcome of Compare: rows in key order, matched
// (old-and-new) rows first, then new-only rows.
type Comparison struct {
	Rows    []Row
	Matched int     // rows with Status Compared
	Skipped int     // rows with Status Skipped
	Geomean float64 // geomean of New/Old over Compared rows

	AllocMatched int     // rows with AllocStatus Compared
	AllocSkipped int     // common rows with AllocStatus Skipped
	AllocGeomean float64 // geomean of NewAllocs/OldAllocs over alloc-compared rows (0 when none)
}

// Compare matches two files case-by-case and computes the geomean
// throughput ratio. It errors when the files share no cases, or when
// every shared case was skipped for a non-finite ratio — in either
// situation there is nothing sound to gate on, and passing silently
// would disarm the CI gate.
func Compare(oldF, newF File) (Comparison, error) {
	oldIdx, newIdx := oldF.Index(), newF.Index()
	keys := make([]string, 0, len(oldIdx))
	for k := range oldIdx {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var cmp Comparison
	var logSum, allocLogSum float64
	common := 0
	for _, k := range keys {
		o := oldIdx[k]
		n, ok := newIdx[k]
		if !ok {
			cmp.Rows = append(cmp.Rows, Row{Key: k, Old: o.CyclesPerSec,
				New: math.NaN(), Ratio: math.NaN(), Status: OldOnly,
				AllocRatio: math.NaN(), AllocStatus: OldOnly})
			continue
		}
		common++
		row := Row{Key: k, Old: o.CyclesPerSec, New: n.CyclesPerSec,
			OldAllocs: o.AllocsPerOp, NewAllocs: n.AllocsPerOp,
			OldSpeedup: o.SpeedupVsSlow, NewSpeedup: n.SpeedupVsSlow}

		ratio := n.CyclesPerSec / o.CyclesPerSec
		if !finitePositive(o.CyclesPerSec) || !finitePositive(n.CyclesPerSec) || !finitePositive(ratio) {
			row.Ratio, row.Status = math.NaN(), Skipped
			cmp.Skipped++
		} else {
			row.Ratio, row.Status = ratio, Compared
			logSum += math.Log(ratio)
			cmp.Matched++
		}

		// Allocation ratchet: a zero reading on either side means the
		// figure was never recorded (a real run always allocates at
		// least the result), so skip rather than divide by zero.
		if o.AllocsPerOp == 0 || n.AllocsPerOp == 0 {
			row.AllocRatio, row.AllocStatus = math.NaN(), Skipped
			cmp.AllocSkipped++
		} else {
			row.AllocRatio = float64(n.AllocsPerOp) / float64(o.AllocsPerOp)
			row.AllocStatus = Compared
			allocLogSum += math.Log(row.AllocRatio)
			cmp.AllocMatched++
		}
		cmp.Rows = append(cmp.Rows, row)
	}

	newKeys := make([]string, 0, len(newIdx))
	for k := range newIdx {
		if _, ok := oldIdx[k]; !ok {
			newKeys = append(newKeys, k)
		}
	}
	sort.Strings(newKeys)
	for _, k := range newKeys {
		cmp.Rows = append(cmp.Rows, Row{Key: k, Old: math.NaN(),
			New: newIdx[k].CyclesPerSec, Ratio: math.NaN(), Status: NewOnly,
			NewAllocs: newIdx[k].AllocsPerOp, AllocRatio: math.NaN(), AllocStatus: NewOnly})
	}

	if common == 0 {
		return cmp, errors.New("no cases in common; nothing to gate on")
	}
	if cmp.Matched == 0 {
		return cmp, fmt.Errorf("all %d common cases skipped (non-finite ratios); nothing sound to gate on", common)
	}
	cmp.Geomean = math.Exp(logSum / float64(cmp.Matched))
	if cmp.AllocMatched > 0 {
		cmp.AllocGeomean = math.Exp(allocLogSum / float64(cmp.AllocMatched))
	}
	return cmp, nil
}

// Geomean is the geometric mean of vals (0 when empty), shared by the
// simbench summary line and its tests.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}
