package benchfmt

import (
	"math"
	"strings"
	"testing"
)

func file(benchmarks ...Benchmark) File {
	return File{Version: Version, Benchmarks: benchmarks}
}

func bench(name, mode string, rate float64) Benchmark {
	return Benchmark{Name: name, Mode: mode, CyclesPerSec: rate}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := File{
		Version: Version, Go: "go1.22", GOOS: "linux", GOARCH: "amd64",
		Count: 3, Benchtime: 1,
		Benchmarks: []Benchmark{
			{Name: "synth/seq-1c", Mode: "fast", Iters: 1, NsPerOp: 1000,
				MemCycles: 20000, CyclesPerSec: 2e7, AllocsPerOp: 5, BytesPerOp: 640,
				SpeedupVsSlow: 3.5},
		},
		GeomeanCyclesPerSec: 2e7,
	}
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("Encode output lacks trailing newline")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0] != f.Benchmarks[0] {
		t.Fatalf("round trip changed the case: %+v", got.Benchmarks[0])
	}
	if got.GeomeanCyclesPerSec != f.GeomeanCyclesPerSec || got.Count != f.Count {
		t.Fatalf("round trip changed the header: %+v", got)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	if _, err := Decode([]byte(`{"version": 2, "benchmarks": []}`)); err == nil {
		t.Fatal("Decode accepted version 2")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

func TestIndexKeysByNameAndMode(t *testing.T) {
	f := file(bench("a", "fast", 1), bench("a", "slow", 2))
	idx := f.Index()
	if len(idx) != 2 || idx["a/fast"].CyclesPerSec != 1 || idx["a/slow"].CyclesPerSec != 2 {
		t.Fatalf("Index = %v", idx)
	}
}

func TestCompareGeomean(t *testing.T) {
	oldF := file(bench("a", "fast", 100), bench("b", "fast", 100))
	newF := file(bench("a", "fast", 200), bench("b", "fast", 50))
	cmp, err := Compare(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	// ratios 2.0 and 0.5: geomean exactly 1.
	if cmp.Matched != 2 || math.Abs(cmp.Geomean-1) > 1e-12 {
		t.Fatalf("matched %d geomean %v, want 2 and 1.0", cmp.Matched, cmp.Geomean)
	}
}

func TestCompareSkipsNonFiniteRatios(t *testing.T) {
	oldF := file(
		bench("zero-base", "fast", 0),         // new/0 → +Inf
		bench("both-zero", "fast", 0),         // 0/0 → NaN
		bench("nan-base", "fast", math.NaN()), // NaN baseline
		bench("good", "fast", 100),
	)
	newF := file(
		bench("zero-base", "fast", 100),
		bench("both-zero", "fast", 0),
		bench("nan-base", "fast", 100),
		bench("good", "fast", 90),
	)
	cmp, err := Compare(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Matched != 1 || cmp.Skipped != 3 {
		t.Fatalf("matched %d skipped %d, want 1 and 3", cmp.Matched, cmp.Skipped)
	}
	if math.Abs(cmp.Geomean-0.9) > 1e-12 {
		t.Fatalf("geomean %v poisoned by skipped cases, want 0.9", cmp.Geomean)
	}
	for _, r := range cmp.Rows {
		if r.Status == Skipped && !math.IsNaN(r.Ratio) {
			t.Errorf("skipped row %s has ratio %v, want NaN", r.Key, r.Ratio)
		}
	}
}

func TestCompareErrorsWhenAllSkipped(t *testing.T) {
	oldF := file(bench("a", "fast", 0), bench("b", "fast", 0))
	newF := file(bench("a", "fast", 100), bench("b", "fast", 100))
	if _, err := Compare(oldF, newF); err == nil {
		t.Fatal("Compare passed with every common case skipped")
	}
}

func TestCompareErrorsWithNoCommonCases(t *testing.T) {
	oldF := file(bench("a", "fast", 100))
	newF := file(bench("b", "fast", 100))
	cmp, err := Compare(oldF, newF)
	if err == nil {
		t.Fatal("Compare passed with no common cases")
	}
	// Disjoint cases still show up in the report.
	if len(cmp.Rows) != 2 || cmp.Rows[0].Status != OldOnly || cmp.Rows[1].Status != NewOnly {
		t.Fatalf("rows = %+v", cmp.Rows)
	}
}

func TestCompareReportsOneSidedCases(t *testing.T) {
	oldF := file(bench("common", "fast", 100), bench("gone", "fast", 100))
	newF := file(bench("common", "fast", 100), bench("added", "fast", 100))
	cmp, err := Compare(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Status{}
	for _, r := range cmp.Rows {
		byKey[r.Key] = r.Status
	}
	if byKey["common/fast"] != Compared || byKey["gone/fast"] != OldOnly || byKey["added/fast"] != NewOnly {
		t.Fatalf("statuses = %v", byKey)
	}
	if cmp.Matched != 1 {
		t.Fatalf("matched = %d, want 1 (one-sided cases must not gate)", cmp.Matched)
	}
}

func allocBench(name string, rate float64, allocs uint64) Benchmark {
	return Benchmark{Name: name, Mode: "fast", CyclesPerSec: rate, AllocsPerOp: allocs}
}

func TestCompareAllocGeomean(t *testing.T) {
	oldF := file(allocBench("a", 100, 100), allocBench("b", 100, 100))
	newF := file(allocBench("a", 100, 200), allocBench("b", 100, 50))
	cmp, err := Compare(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	// alloc ratios 2.0 and 0.5: geomean exactly 1.
	if cmp.AllocMatched != 2 || math.Abs(cmp.AllocGeomean-1) > 1e-12 {
		t.Fatalf("alloc matched %d geomean %v, want 2 and 1.0", cmp.AllocMatched, cmp.AllocGeomean)
	}
}

func TestCompareAllocSkipIsIndependentOfThroughput(t *testing.T) {
	oldF := file(
		allocBench("no-allocs", 100, 0), // alloc-skipped, throughput sound
		allocBench("no-rate", 0, 100),   // throughput-skipped, allocs sound
		allocBench("good", 100, 100),
	)
	newF := file(
		allocBench("no-allocs", 100, 50),
		allocBench("no-rate", 100, 120),
		allocBench("good", 100, 110),
	)
	cmp, err := Compare(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Matched != 2 || cmp.Skipped != 1 {
		t.Fatalf("throughput matched %d skipped %d, want 2 and 1", cmp.Matched, cmp.Skipped)
	}
	if cmp.AllocMatched != 2 || cmp.AllocSkipped != 1 {
		t.Fatalf("alloc matched %d skipped %d, want 2 and 1", cmp.AllocMatched, cmp.AllocSkipped)
	}
	// geomean of 1.2 and 1.1 over the two alloc-sound rows.
	want := math.Sqrt(1.2 * 1.1)
	if math.Abs(cmp.AllocGeomean-want) > 1e-12 {
		t.Fatalf("alloc geomean %v, want %v", cmp.AllocGeomean, want)
	}
	for _, r := range cmp.Rows {
		if r.AllocStatus == Skipped && !math.IsNaN(r.AllocRatio) {
			t.Errorf("alloc-skipped row %s has ratio %v, want NaN", r.Key, r.AllocRatio)
		}
	}
}

func TestCompareAllocAllSkipped(t *testing.T) {
	oldF := file(allocBench("a", 100, 0), allocBench("b", 100, 0))
	newF := file(allocBench("a", 100, 10), allocBench("b", 100, 10))
	cmp, err := Compare(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput still gates; the ratchet reports no sound input.
	if cmp.AllocMatched != 0 || cmp.AllocGeomean != 0 {
		t.Fatalf("alloc matched %d geomean %v, want 0 and 0", cmp.AllocMatched, cmp.AllocGeomean)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
	if g := Geomean([]float64{4}); g != 4 {
		t.Errorf("Geomean([4]) = %v", g)
	}
	if g := Geomean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("Geomean([1,100]) = %v, want 10", g)
	}
}

// TestEncodeOmitsAbsentSpeedup pins the on-disk shape of
// speedup_vs_slow: a case without a fast/slow pair (a slow-mode row, or
// a harness built with -tags=slowtick that cannot measure one) must not
// serialize a misleading 0, and the absence must round-trip to the zero
// value.
func TestEncodeOmitsAbsentSpeedup(t *testing.T) {
	f := file(
		Benchmark{Name: "a", Mode: "fast", CyclesPerSec: 100, SpeedupVsSlow: 2.5},
		Benchmark{Name: "a", Mode: "slow", CyclesPerSec: 40},
	)
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "speedup_vs_slow"); n != 1 {
		t.Fatalf("speedup_vs_slow appears %d times, want 1 (omitted when absent):\n%s", n, data)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].SpeedupVsSlow != 2.5 || got.Benchmarks[1].SpeedupVsSlow != 0 {
		t.Fatalf("round trip changed speedups: %+v", got.Benchmarks)
	}
}

// TestCompareSpeedupNotComparable: the speedup figure is informational —
// a row where either side omitted it is "not comparable", never a
// regression, and it must not affect matching or the geomean.
func TestCompareSpeedupNotComparable(t *testing.T) {
	oldF := file(
		Benchmark{Name: "pair", Mode: "fast", CyclesPerSec: 100, SpeedupVsSlow: 3},
		Benchmark{Name: "lost", Mode: "fast", CyclesPerSec: 100, SpeedupVsSlow: 3},
		Benchmark{Name: "never", Mode: "fast", CyclesPerSec: 100},
	)
	newF := file(
		Benchmark{Name: "pair", Mode: "fast", CyclesPerSec: 100, SpeedupVsSlow: 4},
		Benchmark{Name: "lost", Mode: "fast", CyclesPerSec: 100}, // e.g. slowtick build
		Benchmark{Name: "never", Mode: "fast", CyclesPerSec: 100},
	)
	cmp, err := Compare(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Matched != 3 {
		t.Fatalf("matched %d, want 3 (speedup must not affect the gate)", cmp.Matched)
	}
	comparable := map[string]bool{}
	for _, r := range cmp.Rows {
		comparable[r.Key] = r.SpeedupComparable()
	}
	want := map[string]bool{"pair/fast": true, "lost/fast": false, "never/fast": false}
	for k, v := range want {
		if comparable[k] != v {
			t.Errorf("SpeedupComparable(%s) = %v, want %v", k, comparable[k], v)
		}
	}
}
