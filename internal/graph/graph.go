// Package graph provides the compressed-sparse-row graph substrate for
// the GAP benchmark kernels (package gap): CSR construction, synthetic
// uniform and Kronecker (R-MAT) generators as used by the GAP suite, and
// utilities (transpose, neighbor sorting, weights).
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in CSR form. For undirected graphs every
// edge appears in both directions (symmetric CSR), which is how the GAP
// suite stores them.
type Graph struct {
	N         int     // number of vertices
	Offsets   []int64 // len N+1; neighbors of v are Neighbors[Offsets[v]:Offsets[v+1]]
	Neighbors []int32
	Weights   []int32 // nil for unweighted graphs; parallel to Neighbors
}

// Edges returns the number of stored (directed) edges.
func (g *Graph) Edges() int64 { return int64(len(g.Neighbors)) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int32) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Neigh returns v's adjacency slice.
func (g *Graph) Neigh(v int32) []int32 {
	return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighW returns v's adjacency and weight slices.
func (g *Graph) NeighW(v int32) ([]int32, []int32) {
	return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]], g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Validate reports a descriptive error if the CSR arrays are inconsistent.
func (g *Graph) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.N)
	}
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.N > 0 && (g.Offsets[0] != 0 || g.Offsets[g.N] != int64(len(g.Neighbors))) {
		return fmt.Errorf("graph: offsets endpoints [%d,%d], want [0,%d]",
			g.Offsets[0], g.Offsets[g.N], len(g.Neighbors))
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
	}
	for _, n := range g.Neighbors {
		if n < 0 || int(n) >= g.N {
			return fmt.Errorf("graph: neighbor %d out of range", n)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Neighbors) {
		return fmt.Errorf("graph: %d weights for %d edges", len(g.Weights), len(g.Neighbors))
	}
	return nil
}

// FromEdges builds a CSR graph from an edge list. When symmetric is true
// every edge is inserted in both directions (undirected semantics).
// Self-loops are dropped; duplicate edges are kept (like the GAP loader's
// default).
func FromEdges(n int, edges [][2]int32, symmetric bool) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: vertex count must be positive, got %d", n)
	}
	deg := make([]int64, n+1)
	add := func(u, v int32) error {
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		deg[u+1]++
		return nil
	}
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		if err := add(e[0], e[1]); err != nil {
			return nil, err
		}
		if symmetric {
			if err := add(e[1], e[0]); err != nil {
				return nil, err
			}
		}
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	g := &Graph{N: n, Offsets: deg, Neighbors: make([]int32, deg[n])}
	fill := make([]int64, n)
	copy(fill, deg[:n])
	put := func(u, v int32) {
		g.Neighbors[fill[u]] = v
		fill[u]++
	}
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		put(e[0], e[1])
		if symmetric {
			put(e[1], e[0])
		}
	}
	return g, nil
}

// Uniform generates an Erdős–Rényi-style graph: n vertices, n×degree
// edges with uniformly random endpoints, symmetrized.
func Uniform(n, degree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, 0, n*degree)
	for i := 0; i < n*degree; i++ {
		edges = append(edges, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic(err) // unreachable: generated edges are in range
	}
	return g
}

// Kronecker generates an R-MAT / Kronecker graph with 2^scale vertices
// and edgeFactor × 2^scale edges, using the Graph500/GAP parameters
// (A, B, C) = (0.57, 0.19, 0.19), symmetrized. The skewed degree
// distribution is what gives graph workloads their irregularity.
func Kronecker(scale, edgeFactor int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([][2]int32, 0, n*edgeFactor)
	for i := 0; i < n*edgeFactor; i++ {
		var u, v int32
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, [2]int32{u, v})
	}
	// Permute vertex labels so degree does not correlate with index.
	perm := rng.Perm(n)
	for i := range edges {
		edges[i][0] = int32(perm[edges[i][0]])
		edges[i][1] = int32(perm[edges[i][1]])
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic(err)
	}
	return g
}

// AddUniformWeights attaches uniformly random integer weights in
// [1, maxW] to every edge (for sssp). Symmetric edge pairs may get
// different weights, which sssp tolerates.
func (g *Graph) AddUniformWeights(maxW int32, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	g.Weights = make([]int32, len(g.Neighbors))
	for i := range g.Weights {
		g.Weights[i] = 1 + int32(rng.Int63n(int64(maxW)))
	}
}

// SortNeighbors sorts every adjacency list ascending (required by the
// merge-based triangle count).
func (g *Graph) SortNeighbors() {
	for v := 0; v < g.N; v++ {
		nb := g.Neigh(int32(v))
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
}

// Dedup sorts every adjacency list and removes duplicate neighbors,
// rebuilding the CSR arrays (weights, if present, keep the first copy).
// Triangle counting requires a simple graph.
func (g *Graph) Dedup() {
	newOff := make([]int64, g.N+1)
	newNbr := g.Neighbors[:0]
	var newWgt []int32
	if g.Weights != nil {
		newWgt = g.Weights[:0]
	}
	// In-place compaction is safe: the write cursor never passes the
	// read cursor because deduplication only removes entries.
	pos := int64(0)
	for v := 0; v < g.N; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		nb := g.Neighbors[lo:hi]
		var wt []int32
		if g.Weights != nil {
			wt = g.Weights[lo:hi]
		}
		sort.Sort(&nbrSorter{nb, wt})
		newOff[v] = pos
		var prev int32 = -1
		for i, u := range nb {
			if u == prev {
				continue
			}
			prev = u
			newNbr = append(newNbr, u)
			if wt != nil {
				newWgt = append(newWgt, wt[i])
			}
			pos++
		}
	}
	newOff[g.N] = pos
	g.Offsets = newOff
	g.Neighbors = newNbr[:pos:pos]
	if g.Weights != nil {
		g.Weights = newWgt[:pos:pos]
	}
}

// nbrSorter sorts an adjacency slice and its parallel weights together.
type nbrSorter struct {
	nb []int32
	wt []int32
}

func (s *nbrSorter) Len() int           { return len(s.nb) }
func (s *nbrSorter) Less(i, j int) bool { return s.nb[i] < s.nb[j] }
func (s *nbrSorter) Swap(i, j int) {
	s.nb[i], s.nb[j] = s.nb[j], s.nb[i]
	if s.wt != nil {
		s.wt[i], s.wt[j] = s.wt[j], s.wt[i]
	}
}

// Transpose returns the reverse graph (for pull-based kernels on
// directed graphs; symmetric graphs are their own transpose).
func (g *Graph) Transpose() *Graph {
	deg := make([]int64, g.N+1)
	for _, v := range g.Neighbors {
		deg[v+1]++
	}
	for v := 0; v < g.N; v++ {
		deg[v+1] += deg[v]
	}
	t := &Graph{N: g.N, Offsets: deg, Neighbors: make([]int32, len(g.Neighbors))}
	if g.Weights != nil {
		t.Weights = make([]int32, len(g.Weights))
	}
	fill := make([]int64, g.N)
	copy(fill, deg[:g.N])
	for u := 0; u < g.N; u++ {
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			v := g.Neighbors[i]
			t.Neighbors[fill[v]] = int32(u)
			if g.Weights != nil {
				t.Weights[fill[v]] = g.Weights[i]
			}
			fill[v]++
		}
	}
	return t
}
