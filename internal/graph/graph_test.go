package graph

import (
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {0, 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 4 {
		t.Errorf("edges = %d, want 4", g.Edges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees wrong: %d, %d", g.Degree(0), g.Degree(3))
	}
	nb := g.Neigh(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Errorf("neighbors of 0 = %v", nb)
	}
}

func TestFromEdgesSymmetric(t *testing.T) {
	g, err := FromEdges(3, [][2]int32{{0, 1}, {1, 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 4 {
		t.Errorf("edges = %d, want 4 (symmetrized)", g.Edges())
	}
	if g.Degree(1) != 2 {
		t.Errorf("degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestFromEdgesDropsSelfLoopsRejectsBad(t *testing.T) {
	g, err := FromEdges(3, [][2]int32{{1, 1}, {0, 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 1 {
		t.Errorf("edges = %d, want 1 (self loop dropped)", g.Edges())
	}
	if _, err := FromEdges(3, [][2]int32{{0, 5}}, false); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(0, nil, false); err == nil {
		t.Error("zero vertices accepted")
	}
}

func TestUniformProperties(t *testing.T) {
	g := Uniform(256, 8, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 256 {
		t.Fatalf("n = %d", g.N)
	}
	// Symmetric and roughly 2 × n × degree edges (minus self loops).
	if g.Edges() < 2*256*8*9/10 || g.Edges() > 2*256*8 {
		t.Errorf("edges = %d, want near %d", g.Edges(), 2*256*8)
	}
	// Determinism.
	h := Uniform(256, 8, 42)
	if h.Edges() != g.Edges() || h.Neighbors[0] != g.Neighbors[0] {
		t.Error("generator not deterministic")
	}
}

func TestKroneckerSkew(t *testing.T) {
	g := Kronecker(10, 8, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var max int64
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > max {
			max = d
		}
	}
	avg := float64(g.Edges()) / float64(g.N)
	if float64(max) < 5*avg {
		t.Errorf("max degree %d not skewed vs avg %.1f (R-MAT should be heavy-tailed)", max, avg)
	}
}

func TestSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := Uniform(64, 4, seed)
		// Every edge (u,v) has a matching (v,u).
		count := map[[2]int32]int{}
		for u := 0; u < g.N; u++ {
			for _, v := range g.Neigh(int32(u)) {
				count[[2]int32{int32(u), v}]++
			}
		}
		for e, c := range count {
			if count[[2]int32{e[1], e[0]}] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTranspose(t *testing.T) {
	g, _ := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {3, 0}}, false)
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Degree(0) != 1 || tr.Neigh(0)[0] != 3 {
		t.Errorf("transpose wrong: deg(0)=%d neigh=%v", tr.Degree(0), tr.Neigh(0))
	}
	if tr.Degree(1) != 1 || tr.Neigh(1)[0] != 0 {
		t.Errorf("transpose wrong at 1: %v", tr.Neigh(1))
	}
	// Transposing twice restores the degree sequence.
	back := tr.Transpose()
	for v := 0; v < g.N; v++ {
		if back.Degree(int32(v)) != g.Degree(int32(v)) {
			t.Fatalf("double transpose changed degree of %d", v)
		}
	}
}

func TestSortNeighborsAndWeights(t *testing.T) {
	g := Uniform(128, 6, 3)
	g.SortNeighbors()
	for v := 0; v < g.N; v++ {
		nb := g.Neigh(int32(v))
		for i := 1; i < len(nb); i++ {
			if nb[i-1] > nb[i] {
				t.Fatalf("neighbors of %d not sorted: %v", v, nb)
			}
		}
	}
	g.AddUniformWeights(10, 9)
	if len(g.Weights) != len(g.Neighbors) {
		t.Fatal("weights length mismatch")
	}
	for _, w := range g.Weights {
		if w < 1 || w > 10 {
			t.Fatalf("weight %d out of [1,10]", w)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Uniform(32, 2, 1)
	g.Neighbors[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("out-of-range neighbor not caught")
	}
	h := Uniform(32, 2, 1)
	h.Offsets[5] = h.Offsets[6] + 1
	if err := h.Validate(); err == nil {
		t.Error("decreasing offsets not caught")
	}
}

func TestDedupRemovesDuplicates(t *testing.T) {
	g, err := FromEdges(4, [][2]int32{{0, 1}, {0, 1}, {0, 2}, {1, 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 8 {
		t.Fatalf("pre-dedup edges = %d, want 8", g.Edges())
	}
	g.Dedup()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 6 {
		t.Errorf("post-dedup edges = %d, want 6", g.Edges())
	}
	nb := g.Neigh(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Errorf("neighbors of 0 = %v, want [1 2]", nb)
	}
	// Sorted after dedup.
	for v := 0; v < g.N; v++ {
		list := g.Neigh(int32(v))
		for i := 1; i < len(list); i++ {
			if list[i-1] >= list[i] {
				t.Fatalf("vertex %d list not strictly sorted: %v", v, list)
			}
		}
	}
}

func TestDedupKeepsWeights(t *testing.T) {
	g, _ := FromEdges(3, [][2]int32{{0, 2}, {0, 1}, {0, 1}}, false)
	g.Weights = []int32{7, 5, 9} // parallel to [2 1 1]
	g.Dedup()
	nb, w := g.NeighW(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors = %v", nb)
	}
	// Sorted order is [1 2]; the kept weight for 1 is the first of the
	// sorted duplicates, and 2 keeps its 7.
	if w[1] != 7 {
		t.Errorf("weight of edge to 2 = %d, want 7", w[1])
	}
	if len(g.Weights) != 2 {
		t.Errorf("weights length = %d, want 2", len(g.Weights))
	}
}

func TestTransposeWithWeights(t *testing.T) {
	g, _ := FromEdges(3, [][2]int32{{0, 1}, {1, 2}}, false)
	g.Weights = []int32{3, 4}
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	nb, w := tr.NeighW(1)
	if len(nb) != 1 || nb[0] != 0 || w[0] != 3 {
		t.Errorf("transpose(1) = %v %v, want [0] [3]", nb, w)
	}
	nb, w = tr.NeighW(2)
	if len(nb) != 1 || nb[0] != 1 || w[0] != 4 {
		t.Errorf("transpose(2) = %v %v, want [1] [4]", nb, w)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := Kronecker(8, 4, 99)
	b := Kronecker(8, 4, 99)
	if a.Edges() != b.Edges() {
		t.Fatal("kronecker not deterministic")
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatal("kronecker neighbors differ")
		}
	}
}
