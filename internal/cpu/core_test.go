package cpu

import (
	"math"
	"testing"

	"dramstacks/internal/cache"
	"dramstacks/internal/cyclestack"
)

// scriptMem is a controllable cpu.Mem for tests.
type scriptMem struct {
	outcome  cache.Outcome
	latency  int64 // completion delay for Pending accesses
	qf       float64
	pending  []func()
	started  []uint64
	retries  int
	maxInFly int
}

func (m *scriptMem) Access(now int64, core int, addr uint64, write bool,
	w cache.Waiter) cache.Outcome {
	if m.outcome.Status == cache.Retry {
		m.retries++
		return m.outcome
	}
	m.started = append(m.started, addr)
	if m.outcome.Status == cache.Pending {
		done := now + m.latency
		m.pending = append(m.pending, func() { w.MemDone(done, m.qf, 0) })
		if len(m.pending) > m.maxInFly {
			m.maxInFly = len(m.pending)
		}
	}
	return m.outcome
}

// deliverAll completes every pending access.
func (m *scriptMem) deliverAll() {
	for _, f := range m.pending {
		f()
	}
	m.pending = nil
}

type sliceSource struct {
	items []Instr
	pos   int
}

func (s *sliceSource) Next() (Instr, bool) {
	if s.pos >= len(s.items) {
		return Instr{}, false
	}
	s.pos++
	return s.items[s.pos-1], true
}

func run(c *Core, from *int64, cycles int64) {
	for i := int64(0); i < cycles; i++ {
		c.CPUCycle(*from)
		*from++
	}
}

func TestPureComputeRetiresAtWidth(t *testing.T) {
	mem := &scriptMem{}
	src := &sliceSource{items: []Instr{{Work: 400}}}
	c := New(0, DefaultConfig(), mem, src)
	now := int64(0)
	run(c, &now, 1000)
	if !c.Done() {
		t.Fatal("core not done")
	}
	if got := c.Stats().Retired; got != 400 {
		t.Fatalf("retired = %d, want 400", got)
	}
	// 400 uops at width 4 is ~100 base cycles; the rest idle.
	s := c.Stack()
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if s.Cycles[cyclestack.Base] < 100 || s.Cycles[cyclestack.Base] > 105 {
		t.Errorf("base cycles = %v, want about 100", s.Cycles[cyclestack.Base])
	}
}

func TestLoadHitDoesNotStallLong(t *testing.T) {
	mem := &scriptMem{outcome: cache.Outcome{Status: cache.Hit, Latency: 4, Level: 1}}
	src := &sliceSource{items: []Instr{{Kind: KindLoad, Addr: 64}}}
	c := New(0, DefaultConfig(), mem, src)
	now := int64(0)
	run(c, &now, 50)
	if !c.Done() {
		t.Fatal("core not done")
	}
	if c.Stats().Loads != 1 {
		t.Fatalf("loads = %d", c.Stats().Loads)
	}
	if c.Stats().DramLoads != 0 {
		t.Error("hit counted as DRAM load")
	}
}

func TestDramLoadStallSplit(t *testing.T) {
	mem := &scriptMem{
		outcome: cache.Outcome{Status: cache.Pending},
		latency: 100,
		qf:      0.25,
	}
	src := &sliceSource{items: []Instr{{Kind: KindLoad, Addr: 64}}}
	c := New(0, DefaultConfig(), mem, src)
	now := int64(0)
	for i := 0; i < 40; i++ {
		c.CPUCycle(now)
		now++
	}
	mem.deliverAll() // completes at cycle ~100
	run(c, &now, 120)
	if !c.Done() {
		t.Fatal("core not done")
	}
	s := c.Stack()
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	stall := s.Cycles[cyclestack.DramLatency] + s.Cycles[cyclestack.DramQueue]
	if stall < 90 || stall > 105 {
		t.Fatalf("dram stall = %v cycles, want about 100", stall)
	}
	ratio := s.Cycles[cyclestack.DramQueue] / stall
	if math.Abs(ratio-0.25) > 1e-9 {
		t.Errorf("queue share = %v, want 0.25", ratio)
	}
	if c.Stats().DramLoads != 1 {
		t.Errorf("dram loads = %d", c.Stats().DramLoads)
	}
}

func TestStoreDoesNotBlockRetirement(t *testing.T) {
	mem := &scriptMem{outcome: cache.Outcome{Status: cache.Pending}, latency: 1000}
	src := &sliceSource{items: []Instr{
		{Kind: KindStore, Addr: 64},
		{Work: 40},
	}}
	c := New(0, DefaultConfig(), mem, src)
	now := int64(0)
	run(c, &now, 60)
	// The store's RFO is still outstanding, yet all uops retired.
	if got := c.Stats().Retired; got != 41 {
		t.Errorf("retired = %d, want 41 despite pending RFO", got)
	}
	if c.Done() {
		t.Error("core done while RFO outstanding")
	}
	mem.deliverAll()
	run(c, &now, 5)
	if !c.Done() {
		t.Error("core not done after RFO completes")
	}
}

func TestMispredictCreatesBranchBubble(t *testing.T) {
	mem := &scriptMem{}
	src := &sliceSource{items: []Instr{
		{Kind: KindBranch, Mispredict: true},
		{Work: 100},
	}}
	cfg := DefaultConfig()
	c := New(0, cfg, mem, src)
	now := int64(0)
	run(c, &now, 200)
	s := c.Stack()
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if s.Cycles[cyclestack.Branch] < float64(cfg.BranchPenalty)-2 {
		t.Errorf("branch cycles = %v, want about %d", s.Cycles[cyclestack.Branch], cfg.BranchPenalty)
	}
	if c.Stats().Mispredicts != 1 {
		t.Errorf("mispredicts = %d", c.Stats().Mispredicts)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// Two chains of dependent loads: at most 2 in flight at once.
	var items []Instr
	for i := 0; i < 20; i++ {
		dep := 0
		if i >= 2 {
			dep = 2 // previous load of the same chain
		}
		items = append(items, Instr{Kind: KindLoad, Addr: uint64(i * 64), LoadDep: dep})
	}
	mem := &scriptMem{outcome: cache.Outcome{Status: cache.Pending}, latency: 30}
	src := &sliceSource{items: items}
	c := New(0, DefaultConfig(), mem, src)
	now := int64(0)
	for i := 0; i < 2000 && !c.Done(); i++ {
		c.CPUCycle(now)
		now++
		// Deliver completions as their time arrives.
		for _, f := range mem.pending {
			f()
		}
		mem.pending = nil
	}
	if !c.Done() {
		t.Fatal("core not done")
	}
	if mem.maxInFly > 2 {
		t.Errorf("max in-flight dependent loads = %d, want <= 2", mem.maxInFly)
	}
	if c.Stats().Loads != 20 {
		t.Errorf("loads = %d", c.Stats().Loads)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	var items []Instr
	for i := 0; i < 16; i++ {
		items = append(items, Instr{Kind: KindLoad, Addr: uint64(i * 64)})
	}
	mem := &scriptMem{outcome: cache.Outcome{Status: cache.Pending}, latency: 500}
	src := &sliceSource{items: items}
	c := New(0, DefaultConfig(), mem, src)
	now := int64(0)
	run(c, &now, 20)
	if mem.maxInFly < 10 {
		t.Errorf("max in-flight independent loads = %d, want >= 10", mem.maxInFly)
	}
}

func TestRetryKeepsOpQueued(t *testing.T) {
	mem := &scriptMem{outcome: cache.Outcome{Status: cache.Retry}}
	src := &sliceSource{items: []Instr{{Kind: KindLoad, Addr: 64}}}
	c := New(0, DefaultConfig(), mem, src)
	now := int64(0)
	run(c, &now, 10)
	if mem.retries < 5 {
		t.Errorf("retries = %d, want repeated attempts", mem.retries)
	}
	// Unblock and finish.
	mem.outcome = cache.Outcome{Status: cache.Hit, Latency: 4, Level: 1}
	run(c, &now, 20)
	if !c.Done() {
		t.Error("core not done after hazard cleared")
	}
	// Retry stall cycles count as dram-queue pressure.
	if c.Stack().Cycles[cyclestack.DramQueue] == 0 {
		t.Error("retry stalls not attributed to dram-queue")
	}
}

func TestROBLimitsOutstanding(t *testing.T) {
	// With a tiny ROB, a blocked head load limits how far the core runs
	// ahead.
	var items []Instr
	for i := 0; i < 50; i++ {
		items = append(items, Instr{Work: 3, Kind: KindLoad, Addr: uint64(i * 64)})
	}
	cfg := DefaultConfig()
	cfg.ROBSize = 8
	mem := &scriptMem{outcome: cache.Outcome{Status: cache.Pending}, latency: 10000}
	c := New(0, cfg, mem, &sliceSource{items: items})
	now := int64(0)
	run(c, &now, 100)
	// ROB of 8 with items of 4 uops: at most 2 loads dispatched.
	if mem.maxInFly > 2 {
		t.Errorf("in-flight = %d, want <= 2 with an 8-entry ROB", mem.maxInFly)
	}
}

func TestCycleStackAlwaysSums(t *testing.T) {
	mem := &scriptMem{outcome: cache.Outcome{Status: cache.Pending}, latency: 37, qf: 0.4}
	var items []Instr
	for i := 0; i < 30; i++ {
		items = append(items,
			Instr{Work: 5, Kind: KindLoad, Addr: uint64(i * 64)},
			Instr{Kind: KindBranch, Mispredict: i%7 == 0},
			Instr{Work: 2, Kind: KindStore, Addr: uint64(i * 64)},
		)
	}
	c := New(0, DefaultConfig(), mem, &sliceSource{items: items})
	now := int64(0)
	for i := 0; i < 5000 && !c.Done(); i++ {
		c.CPUCycle(now)
		now++
		if i%25 == 0 {
			mem.deliverAll()
		}
	}
	mem.deliverAll()
	run(c, &now, 50)
	if !c.Done() {
		t.Fatal("core not done")
	}
	if err := c.Stack().CheckSum(); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Width: 0, ROBSize: 1, BranchPenalty: 1, StartsPerCycle: 1},
		{Width: 1, ROBSize: 0, BranchPenalty: 1, StartsPerCycle: 1},
		{Width: 1, ROBSize: 1, BranchPenalty: -1, StartsPerCycle: 1},
		{Width: 1, ROBSize: 1, BranchPenalty: 1, StartsPerCycle: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestStallItemsIdleTheCore(t *testing.T) {
	// A source that stalls for a while before delivering work, like a
	// thread waiting at a barrier.
	stalls := 20
	src := sourceFunc(func() (Instr, bool) {
		if stalls > 0 {
			stalls--
			return Instr{Kind: KindStall}, true
		}
		return Instr{}, false
	})
	c := New(0, DefaultConfig(), &scriptMem{}, src)
	now := int64(0)
	run(c, &now, 40)
	if !c.Done() {
		t.Fatal("core not done after stalls drained")
	}
	s := c.Stack()
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if s.Cycles[cyclestack.Idle] < 20 {
		t.Errorf("idle cycles = %v, want >= 20 (barrier stalls)", s.Cycles[cyclestack.Idle])
	}
	if c.Stats().Retired != 0 {
		t.Errorf("retired = %d, want 0", c.Stats().Retired)
	}
}

// sourceFunc adapts a closure to the Source interface.
type sourceFunc func() (Instr, bool)

func (f sourceFunc) Next() (Instr, bool) { return f() }

func TestStallThenWorkResumes(t *testing.T) {
	phase := 0
	src := sourceFunc(func() (Instr, bool) {
		phase++
		switch {
		case phase <= 5:
			return Instr{Kind: KindStall}, true
		case phase == 6:
			return Instr{Work: 8}, true
		default:
			return Instr{}, false
		}
	})
	c := New(0, DefaultConfig(), &scriptMem{}, src)
	now := int64(0)
	run(c, &now, 30)
	if got := c.Stats().Retired; got != 8 {
		t.Errorf("retired = %d, want 8 after stall phase", got)
	}
}
