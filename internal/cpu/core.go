// Package cpu implements the core model: a 4-wide out-of-order core with
// a 224-entry reorder buffer, in-order retirement, loads that block
// retirement at the ROB head, stores that retire without waiting for
// their read-for-ownership, and a branch-misprediction fetch bubble.
//
// The paper (§VI) uses Skylake-like cores in the Sniper interval
// simulator; what the DRAM stacks need from the core is the closed-loop
// behavior — the rate and parallelism of the memory requests it can keep
// in flight given the latencies it observes — which this model reproduces
// with ROB occupancy, per-core MSHR limits (in package cache) and
// explicit load-to-load dependencies for pointer-chasing patterns.
//
// While running, the core attributes every CPU cycle to a cycle-stack
// component (package cyclestack): base, branch, dcache, dram-latency,
// dram-queue or idle, with DRAM stalls split using the per-request DRAM
// latency stack (queue fraction) exactly as Fig. 7 requires.
//
// The hot loop is allocation-free in steady state: load tickets are
// reference-counted and pooled, and memory completions arrive through
// the cache.Waiter interface (a pooled ticket is its own completion
// waiter) instead of per-access closures. Three provably repetitive
// states let the system replay stretches of cycles in closed form
// instead of ticking them: a finished core (idle), an empty core inside
// a branch-misprediction bubble (branch), and a core dispatching a pure
// ALU run (base) — see NextEventCycle/FastForward. A core stalled on an
// in-flight DRAM load can additionally go to sleep entirely and have
// its stall cycles replayed when the completion wakes it — see
// TrySleep/MemDone.
package cpu

import (
	"fmt"
	"math"

	"dramstacks/internal/cache"
	"dramstacks/internal/cyclestack"
)

// Kind classifies an instruction item from a Source.
type Kind uint8

const (
	// KindALU is plain computation (also used for internal chunks).
	KindALU Kind = iota
	// KindLoad reads memory and can block retirement.
	KindLoad
	// KindStore writes memory (write-allocate: triggers a
	// read-for-ownership) but does not block retirement.
	KindStore
	// KindBranch is a conditional branch, possibly mispredicted.
	KindBranch
	// KindStall means the source has no work this cycle (e.g. the thread
	// waits at a barrier): the core dispatches nothing and polls the
	// source again next cycle. The stalled time shows up as the cycle
	// stack's idle component, as in the paper's Fig. 7 bfs dip.
	KindStall
)

// Instr is one macro item emitted by a workload: Work plain uops followed
// by one memory/branch operation (Kind). A pure-compute item has
// Kind == KindALU and only Work uops.
type Instr struct {
	// Work is the number of plain uops preceding the operation.
	Work int
	// Kind selects the trailing operation (KindALU for none).
	Kind Kind
	// Addr is the byte address for KindLoad / KindStore.
	Addr uint64
	// Mispredict marks a mispredicted KindBranch.
	Mispredict bool
	// LoadDep, for KindLoad, makes this load's address depend on the
	// k-th most recent earlier load (1 = previous load): the access
	// cannot start before that load's data returns. Zero means
	// independent. This is how pointer-chasing workloads bound their
	// memory-level parallelism.
	LoadDep int
}

// Source produces a core's instruction stream.
type Source interface {
	// Next returns the next item, or ok == false when the stream ends.
	Next() (ins Instr, ok bool)
}

// BatchSource is an optional Source fast path: NextBatch fills buf with
// the next instructions of the stream and returns how many it produced.
// Zero means end of stream, and every later call must also return zero.
//
// The contract is strict so the core may pull ahead: across any mix of
// Next and NextBatch calls, the k-th instruction handed out must be the
// k-th of the stream. Only pure sources — whose items are a function of
// consumption count alone — may implement BatchSource; a source whose
// result depends on when it is polled (a KindStall barrier tied to
// external simulation state, say) must stay a plain Source, and the
// core then polls it one instruction at a time exactly as before.
type BatchSource interface {
	Source
	NextBatch(buf []Instr) int
}

// batchLen is the core's pull-buffer size: big enough to amortize the
// per-call generator overhead, small enough to stay cache resident.
const batchLen = 64

// Mem is the core's port into the cache hierarchy. Completions are
// delivered through the cache.Waiter the core passes in (a pooled load
// ticket, or the core itself for store read-for-ownerships).
type Mem interface {
	Access(now int64, core int, addr uint64, write bool, w cache.Waiter) cache.Outcome
}

// Config parameterizes a core.
type Config struct {
	Width         int // superscalar width (4)
	ROBSize       int // reorder buffer entries (224)
	BranchPenalty int // fetch bubble after a misprediction, CPU cycles
	// StartsPerCycle caps how many memory accesses may begin per cycle.
	StartsPerCycle int
}

// DefaultConfig returns the paper's Skylake-like core parameters.
func DefaultConfig() Config {
	return Config{Width: 4, ROBSize: 224, BranchPenalty: 15, StartsPerCycle: 4}
}

// InOrderConfig returns a small in-order-like core (2-wide, a 16-entry
// window, one memory access start per cycle): an ablation showing how
// much the stacks depend on the core's ability to overlap misses.
func InOrderConfig() Config {
	return Config{Width: 2, ROBSize: 16, BranchPenalty: 8, StartsPerCycle: 1}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROBSize <= 0 || c.BranchPenalty < 0 || c.StartsPerCycle <= 0 {
		return fmt.Errorf("cpu: invalid config %+v", c)
	}
	return nil
}

// ticket tracks one load's completion state; dependent loads hold a
// pointer to their producer's ticket. Tickets are pooled by their core:
// refs counts the load-history slot and any dependent operations still
// pointing at the ticket, and a retired ticket returns to the pool when
// the last reference drops (see release). A ticket doubles as the
// cache.Waiter for its own in-flight fill.
type ticket struct {
	c         *Core
	started   bool
	retired   bool
	refs      int32 // load-history slot + dependent startQ entries
	done      int64 // completion CPU cycle, -1 while unknown
	level     int   // cache level of a hit; 0 = DRAM
	queueFrac float64
	regFrac   float64 // share of DRAM latency spent QoS-regulated
	stall     int64   // head-of-ROB stall cycles charged to this load
}

// MemDone implements cache.Waiter: the DRAM fill for this load is
// complete. It also wakes the owning core if the core slept through the
// stall (see TrySleep).
func (tk *ticket) MemDone(doneCPU int64, queueFrac, regFrac float64) {
	tk.done = doneCPU
	tk.queueFrac = queueFrac
	tk.regFrac = regFrac
	tk.c.wake(doneCPU)
}

type robItem struct {
	kind    Kind
	count   int   // uops in an ALU chunk (1 for others)
	readyAt int64 // ALU/branch/store readiness
	tk      *ticket
}

type memOp struct {
	addr  uint64
	write bool
	dep   *ticket // must be done before the access can start
	tk    *ticket // load's own ticket (nil for stores)
}

// Stats counts a core's committed work.
type Stats struct {
	Retired     int64 // committed uops
	Loads       int64
	Stores      int64
	Branches    int64
	Mispredicts int64
	DramLoads   int64 // loads served by DRAM
}

// Core is one out-of-order core.
type Core struct {
	id   int
	cfg  Config
	mem  Mem
	src  Source
	acct *cyclestack.Accountant

	rob   []robItem // ring buffer
	head  int
	tail  int
	items int
	occ   int // occupied uop slots
	loads int // KindLoad items currently in the ROB

	startQ []memOp

	// Batched source pull: when src implements BatchSource, dispatch
	// refills batch only when it runs dry, consuming one buffered
	// instruction per poll — the source sees the same consumption
	// sequence, batchLen at a time.
	bsrc     BatchSource
	batch    []Instr
	batchPos int
	batchN   int

	pendingWork int
	pendingOp   *Instr
	pendingBuf  Instr
	srcDone     bool

	fetchBlockedUntil int64

	loadHist  [32]*ticket
	loadHistN int
	outStores int // store RFOs in flight in the memory system

	tkFree []*ticket // ticket pool

	// DRAM-stall sleep state: while asleep, the system stops ticking
	// the core and the first CPU cycle not yet simulated is sleepFrom.
	// A memory completion only marks the core wakePending — the skipped
	// stall cycles are replayed in closed form when the system resumes
	// the core at the next CPU cycle it would tick (Resume), because
	// completions fire mid-memory-cycle, before the sleeping core's
	// remaining subcycles of that same memory cycle.
	asleep      bool
	wakePending bool
	sleepFrom   int64

	stats Stats
}

// New returns a core. It panics on invalid configuration.
func New(id int, cfg Config, mem Mem, src Source) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		id:   id,
		cfg:  cfg,
		mem:  mem,
		src:  src,
		acct: cyclestack.NewAccountant(),
		rob:  make([]robItem, cfg.ROBSize+1),
	}
	if bs, ok := src.(BatchSource); ok {
		c.bsrc = bs
		c.batch = make([]Instr, batchLen)
	}
	return c
}

// Stats returns the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Stack returns the core's cycle stack so far.
func (c *Core) Stack() cyclestack.Stack { return c.acct.Stack() }

// Accountant exposes the cycle-stack accountant (for through-time
// sampling by the system).
func (c *Core) Accountant() *cyclestack.Accountant { return c.acct }

// Done reports whether the core has committed its whole stream and has
// no outstanding memory operations.
func (c *Core) Done() bool {
	return c.srcDone && c.pendingOp == nil && c.pendingWork == 0 &&
		c.items == 0 && len(c.startQ) == 0 && c.outStores == 0
}

func (c *Core) robFree() int { return c.cfg.ROBSize - c.occ }

func (c *Core) push(it robItem) {
	c.rob[c.tail] = it
	c.tail = (c.tail + 1) % len(c.rob)
	c.items++
	c.occ += it.count
	if it.kind == KindLoad {
		c.loads++
	}
}

// newTicket takes a ticket from the pool (or allocates one) reset for a
// fresh load.
func (c *Core) newTicket() *ticket {
	if n := len(c.tkFree); n > 0 {
		tk := c.tkFree[n-1]
		c.tkFree = c.tkFree[:n-1]
		tk.started, tk.retired = false, false
		tk.done, tk.level, tk.queueFrac, tk.regFrac, tk.stall = -1, 0, 0, 0, 0
		return tk
	}
	return &ticket{c: c, done: -1}
}

// release drops one reference and recycles the ticket once it is
// retired and unreferenced. A retired DRAM load has already had its
// completion delivered (retirement requires done >= 0), so no callback
// can reach a pooled ticket.
func (c *Core) release(tk *ticket) {
	if tk.refs == 0 && tk.retired {
		c.tkFree = append(c.tkFree, tk)
	}
}

// unref drops one counted reference (history slot or dependent op).
func (c *Core) unref(tk *ticket) {
	tk.refs--
	c.release(tk)
}

// streakLen returns how many cycles of an ALU dispatch streak start at
// CPU cycle now, or 0. During a streak every cycle provably repeats the
// same step — retire Width ready uops, dispatch one Width-uop ALU
// chunk, attribute base — so FastForward can replay it in closed form:
//
//   - every ROB item ahead of the retire head's reach is an ALU, branch
//     or store chunk pushed before now, so its readyAt is at most now
//     and retirement never blocks (retire treats the three kinds
//     identically); with occ >= Width, exactly Width uops retire per
//     cycle;
//   - pendingWork >= Width per remaining cycle keeps dispatch from
//     consulting the source, and robFree >= Width keeps the push whole
//     (occupancy is constant: Width in, Width out);
//   - an empty start queue means no memory access can begin, so no
//     external state is touched (in-flight store RFOs only decrement
//     outStores on completion, which no streak cycle reads).
//
// A core whose ROB holds a load is handled by windowLen instead.
func (c *Core) streakLen(now int64) int64 {
	if c.asleep || c.items == 0 || c.loads != 0 || len(c.startQ) != 0 ||
		c.pendingWork < c.cfg.Width || c.fetchBlockedUntil > now ||
		c.occ < c.cfg.Width || c.robFree() < c.cfg.Width {
		return 0
	}
	return int64(c.pendingWork / c.cfg.Width)
}

// windowLen returns how many cycles of a single-load window start at
// CPU cycle now, or 0. The window covers a core whose ROB holds exactly
// one load with a known completion (a cache hit, or a DRAM fill whose
// timestamp has been delivered): retirement drains the uops ahead of
// the load at Width per cycle, stalls at the load until its completion,
// retires it, and drains on — every cycle of which is determined by the
// load's position and completion alone, so replayWindow can replay the
// whole stretch in closed form. Dispatch must be replayable for the
// window's length, which selects one of:
//
//   - regular dispatch — a full Width of buffered ALU uops pushed every
//     cycle: the window may run through the load's retirement and ends
//     when the source would be consulted (or a push would be partial),
//     min(pendingWork, robFree)/Width cycles out;
//   - a fetch bubble or provably inert dispatch (full ROB with work
//     buffered, or an exhausted source) — no pushes: the window must
//     end by the load's completion, before retirement would change
//     what dispatch sees.
//
// An empty start queue (kept empty by ALU-only dispatch) means no
// memory access can begin, so no external state is touched.
func (c *Core) windowLen(now int64) int64 {
	if c.asleep || c.loads != 1 || len(c.startQ) != 0 {
		return 0
	}
	idx := c.head
	a := 0
	for c.rob[idx].kind != KindLoad {
		a += c.rob[idx].count
		idx = (idx + 1) % len(c.rob)
	}
	tk := c.rob[idx].tk
	if !tk.started || tk.done < 0 {
		return 0 // completion unknown: sleep handles in-flight DRAM
	}
	w := c.cfg.Width
	switch {
	case c.fetchBlockedUntil > now:
		k := tk.done - now
		if b := c.fetchBlockedUntil - now; b < k {
			k = b
		}
		return k
	case c.pendingWork >= w && c.robFree() >= w:
		if a < w && tk.done <= now && c.occ-1 < w {
			// The load retires on the window's first cycle (jR = 0) with
			// fewer than Width uops in the ROB: the first cycle's retire
			// budget would outrun the ROB content (this cycle's dispatch
			// is not retirable yet), which the closed form does not
			// model. Take a real cycle.
			return 0
		}
		avail := c.pendingWork
		if f := c.robFree(); f < avail {
			avail = f
		}
		return int64(avail / w)
	case c.robFree() == 0 && (c.pendingWork > 0 || c.pendingOp != nil || c.srcDone):
		return tk.done - now
	case c.srcDone && c.pendingWork == 0 && c.pendingOp == nil:
		return tk.done - now
	default:
		return 0 // dispatch would consult the source or dispatch an op
	}
}

// NextEventCycle returns the first CPU cycle at or after now at which
// the core might do anything other than repeat its current steady-state
// cycle, assuming no external event (memory completion) arrives in
// between. Four states are provably repetitive:
//
//   - a finished core (Done) idles forever: math.MaxInt64;
//   - an empty core inside a branch-misprediction fetch bubble with no
//     memory operations outstanding repeats a pure branch-penalty cycle
//     until the bubble ends: fetchBlockedUntil;
//   - a core whose ROB holds exactly one load with a known completion
//     replays the whole drain/stall/retire window around it (see
//     windowLen): now + windowLen;
//   - a core in a pure ALU dispatch streak (see streakLen) repeats a
//     retire-and-dispatch base cycle until the source must be
//     consulted: now + streakLen.
//
// Everything else returns now (no skip): the core consumes its source,
// starts memory accesses, or waits on in-flight memory whose completion
// time this side does not know. FastForward may only cover cycles
// strictly before the returned cycle.
func (c *Core) NextEventCycle(now int64) int64 {
	if c.asleep {
		return now
	}
	if c.Done() {
		return math.MaxInt64
	}
	if c.items == 0 && len(c.startQ) == 0 && c.outStores == 0 &&
		c.pendingWork == 0 && c.pendingOp == nil && !c.srcDone &&
		c.fetchBlockedUntil > now {
		return c.fetchBlockedUntil
	}
	if c.loads == 1 {
		if k := c.windowLen(now); k > 0 {
			return now + k
		}
		return now
	}
	if k := c.streakLen(now); k > 0 {
		return now + k
	}
	return now
}

// FastForward charges the n CPU cycles starting at from in closed form,
// bit-identical to n CPUCycle calls in the steady state NextEventCycle
// proved: idle cycles for a finished core, branch cycles inside a fetch
// bubble, a replayed single-load window, or a replayed ALU dispatch
// streak.
func (c *Core) FastForward(from, n int64) {
	if c.Done() {
		c.acct.AddCycles(cyclestack.Idle, n)
		return
	}
	if c.items == 0 {
		c.acct.AddCycles(cyclestack.Branch, n)
		return
	}
	if c.loads == 1 {
		c.replayWindow(from, n)
		return
	}
	c.replayStreak(from, n)
}

// consume retires k plain uops FIFO from the ROB head, the ring-level
// half of a replay. Chunk kinds and readiness are inert here (see
// replayStreak); occupancy and statistics are the caller's business.
func (c *Core) consume(k int64) {
	size := len(c.rob)
	for k > 0 {
		if c.items == 0 {
			panic("cpu: replay drained the ROB")
		}
		it := &c.rob[c.head]
		if it.kind == KindLoad {
			panic("cpu: replay reached an in-flight load")
		}
		m := int64(it.count)
		if m > k {
			m = k
		}
		it.count -= int(m)
		k -= m
		if it.count == 0 {
			c.head = (c.head + 1) % size
			c.items--
		}
	}
}

// replayWindow replays n cycles of the single-load window starting at
// CPU cycle from, bit-identical to n CPUCycle calls in the state
// windowLen proved. With the load `a` uops behind the retire head,
// completing at D, and a retire budget of Width per cycle, the slow
// loop's behavior is fully determined (cycle indices j = 0..n-1
// relative to from):
//
//   - drain: cycles j < ceil(a/Width) retire pre-load uops (base);
//   - stall: cycles from ceil(a/Width) up to jR classify against the
//     load by its level (DRAM total / Dcache / L1-shadow base), where
//     jR = max(floor(a/Width), D-from) is the cycle the retire budget
//     reaches the load AND its completion has passed;
//   - retire: if n > jR (regular dispatch only — inert modes end by D),
//     cycle jR retires the load (releasing its ticket and settling the
//     DRAM queue/latency split) plus the rest of that cycle's budget
//     from the uops behind it, and later cycles drain Width each.
//
// Dispatch meanwhile pushes either nothing (bubble / inert modes) or
// exactly Width ALU uops per cycle; the n chunks collapse into one
// ready at from+n, pushed before the drain so post-load retirement can
// consume into it exactly as the slow loop consumes earlier pushes.
// Every consumed uop was ready when the budget reached it, and every
// survivor is first reachable at or after from+n — the same inertness
// argument as replayStreak.
func (c *Core) replayWindow(from, n int64) {
	idx := c.head
	a := int64(0)
	for c.rob[idx].kind != KindLoad {
		a += int64(c.rob[idx].count)
		idx = (idx + 1) % len(c.rob)
	}
	tk := c.rob[idx].tk
	if len(c.startQ) != 0 || !tk.started || tk.done < 0 {
		panic("cpu: FastForward outside a provable steady state")
	}
	w := int64(c.cfg.Width)
	jR := a / w
	if d := tk.done - from; d > jR {
		jR = d
	}
	// Dispatch, mirroring the mode windowLen proved (checked before any
	// state moves).
	pushes := int64(0)
	switch {
	case c.fetchBlockedUntil > from:
		if c.fetchBlockedUntil < from+n || tk.done < from+n {
			panic("cpu: window replay crosses the end of a fetch bubble")
		}
	case c.pendingWork >= c.cfg.Width && c.robFree() >= c.cfg.Width:
		pushes = n * w
		if int64(c.pendingWork) < pushes || int64(c.robFree()) < pushes {
			panic("cpu: window replay outruns the buffered work")
		}
	default:
		inert := (c.robFree() == 0 && (c.pendingWork > 0 || c.pendingOp != nil || c.srcDone)) ||
			(c.srcDone && c.pendingWork == 0 && c.pendingOp == nil)
		if !inert || tk.done < from+n {
			panic("cpu: FastForward outside a provable steady state")
		}
	}
	// Attribution: stall cycles classify against the load, the rest
	// retire something and attribute base.
	s := jR
	if n < s {
		s = n
	}
	s -= (a + w - 1) / w
	if s < 0 {
		s = 0
	}
	base := n - s
	switch {
	case tk.level == 0:
		// DRAM stall: totals now, split at retirement (see retire).
		tk.stall += s
		c.acct.AddTotal(s)
	case tk.level >= 2:
		c.acct.AddCycles(cyclestack.Dcache, s)
	default:
		base = n // L1 hit shadow classifies base too
	}
	if base > 0 {
		c.acct.AddCycles(cyclestack.Base, base)
	}
	if pushes > 0 {
		c.pushALU(int(pushes), from+n)
		c.pendingWork -= int(pushes)
	}
	// Retirement. counted tracks what the slow loop's retire() adds to
	// stats.Retired, which is less than the uops actually drained when a
	// cycle ends blocked: retire() returns early at a not-yet-done load
	// and skips its stats update, dropping that cycle's partial drain
	// (a%Width pre-load uops) from the count. That happens exactly when
	// the pre-load drain empties mid-cycle before the load's completion
	// (jR past the drain); when the load retires the same cycle, the
	// cycle runs its full budget and everything is counted.
	retired := a
	counted := retired
	if m := n * w; m < retired {
		retired, counted = m, m
	} else if rem := a % w; rem > 0 && jR > a/w {
		counted -= rem
	}
	c.consume(retired)
	if n > jR {
		// The load retires at cycle jR with the ticket bookkeeping the
		// slow retire arm performs, and the rest of the window drains the
		// uops (and collapsed pushes) behind it.
		it := &c.rob[c.head]
		if it.kind != KindLoad || retired != a {
			panic("cpu: window replay lost track of its load")
		}
		if tk.level == 0 && tk.stall > 0 {
			// Split this load's head-of-ROB stall using its DRAM
			// latency stack (see retire).
			c.addDramStall(tk)
		}
		it.tk = nil
		tk.retired = true
		c.release(tk)
		c.head = (c.head + 1) % len(c.rob)
		c.items--
		c.loads--
		remPre := a - jR*w
		if remPre < 0 {
			remPre = 0
		}
		post := (w - remPre - 1) + (n-1-jR)*w
		c.consume(post)
		retired += 1 + post
		counted += 1 + post
	}
	c.occ -= int(retired) // pushALU already counted the pushes
	c.stats.Retired += counted
}

// replayStreak replays n cycles of an ALU dispatch streak starting
// at CPU cycle from, bit-identical to n CPUCycle calls: per cycle,
// Width uops retire FIFO from the head (all ready, as streakLen
// proved — ALU, branch and store chunks retire identically once their
// readyAt has passed) and one Width-uop chunk ready next cycle is
// pushed; the cycle attributes base. Occupancy is unchanged (Width in,
// Width out), so the net effect is consuming the first n*Width uops of
// the stream "current content, then the n pushed chunks" and keeping
// the rest.
//
// The survivors' chunk boundaries, kinds (ALU/branch/store retire and
// classify identically) and readiness are all inert: a surviving chunk
// is first reachable by the retire head at or after from+n, and every
// survivor is ready by then. That licenses two collapses, making the
// replay O(chunks consumed) instead of O(n): the n pushed chunks
// become one chunk ready at from+n, and when the streak consumes the
// entire prior content (no load rides along and occ <= n*Width uops,
// so the slow loop would start consuming its own pushes) the final ROB
// is exactly one such chunk holding the unchanged occupancy.
//
// streakLen sized n so the replay never consumes an in-flight load;
// the panic below enforces that invariant.
func (c *Core) replayStreak(from, n int64) {
	w := c.cfg.Width
	total := int(n) * w
	if len(c.startQ) != 0 || c.pendingWork < total {
		panic("cpu: FastForward outside a provable steady state")
	}
	size := len(c.rob)
	if c.loads == 0 && c.occ <= total {
		// Everything currently buffered retires inside the window; what
		// remains is the tail of the replayed pushes, occ uops in one
		// collapsed chunk.
		c.head, c.tail, c.items = 0, 1, 1
		c.rob[0] = robItem{kind: KindALU, count: c.occ, readyAt: from + n}
	} else {
		need := total
		for need > 0 {
			it := &c.rob[c.head]
			if it.kind == KindLoad {
				panic("cpu: streak replay reached an in-flight load")
			}
			m := it.count
			if m > need {
				m = need
			}
			it.count -= m
			need -= m
			if it.count == 0 {
				c.head = (c.head + 1) % size
				c.items--
			}
		}
		c.rob[c.tail] = robItem{kind: KindALU, count: total, readyAt: from + n}
		c.tail = (c.tail + 1) % size
		c.items++
	}
	c.pendingWork -= total
	c.stats.Retired += n * int64(w)
	c.acct.AddCycles(cyclestack.Base, n)
}

// CPUCycle advances the core by one CPU cycle: retire, dispatch, start
// eligible memory accesses, then attribute the cycle.
func (c *Core) CPUCycle(now int64) {
	if c.Done() {
		c.acct.AddCycle(cyclestack.Idle)
		return
	}
	retired := c.retire(now)
	c.dispatch(now)
	c.startAccesses(now)
	c.classify(now, retired)
}

// startAccesses begins memory accesses whose dependencies have resolved.
func (c *Core) startAccesses(now int64) {
	started := 0
	for i := 0; i < len(c.startQ) && started < c.cfg.StartsPerCycle; i++ {
		op := &c.startQ[i]
		if op.dep != nil && !(op.dep.done >= 0 && op.dep.done <= now) {
			continue // producer not finished: address unknown
		}
		tk := op.tk
		var w cache.Waiter
		if tk != nil {
			w = tk
		} else {
			w = c // store RFO: completion only drops outStores
		}
		out := c.mem.Access(now, c.id, op.addr, op.write, w)
		switch out.Status {
		case cache.Retry:
			// Structural hazard: leave the op queued; later ops would
			// hit the same hazard, so stop trying this cycle.
			return
		case cache.Hit:
			if tk != nil {
				tk.started = true
				tk.done = now + int64(out.Latency)
				tk.level = out.Level
			}
		case cache.Pending:
			if tk != nil {
				tk.started = true
				tk.done = -1
				tk.level = 0
				c.stats.DramLoads++
			}
			if op.write {
				c.outStores++
			}
		}
		started++
		if op.dep != nil {
			c.unref(op.dep)
		}
		c.startQ = append(c.startQ[:i], c.startQ[i+1:]...)
		i--
	}
}

// MemDone implements cache.Waiter for store read-for-ownerships: the
// line arrived, the store's writeback obligation is met.
func (c *Core) MemDone(doneCPU int64, queueFrac, regFrac float64) {
	c.outStores--
	c.wake(doneCPU)
}

// addDramStall charges a DRAM load's head-of-ROB stall to the cycle
// stack, split by the load's own DRAM latency stack: regulated cycles
// to dram-regulated, queueing cycles to dram-queue, the rest to
// dram-latency. regFrac is exactly 0 without a QoS policy, so the
// legacy two-way split is unchanged byte for byte.
func (c *Core) addDramStall(tk *ticket) {
	stall := float64(tk.stall)
	if tk.regFrac > 0 {
		c.acct.Add(cyclestack.DramRegulated, stall*tk.regFrac)
	}
	c.acct.Add(cyclestack.DramQueue, stall*tk.queueFrac)
	c.acct.Add(cyclestack.DramLatency, stall*(1-tk.queueFrac-tk.regFrac))
}

// retire commits up to Width ready uops from the ROB head and returns how
// many it committed.
func (c *Core) retire(now int64) int {
	budget := c.cfg.Width
	retired := 0
	for budget > 0 && c.items > 0 {
		it := &c.rob[c.head]
		switch it.kind {
		case KindALU, KindBranch, KindStore:
			if it.readyAt > now {
				return retired
			}
			n := it.count
			if n > budget {
				n = budget
			}
			it.count -= n
			c.occ -= n
			budget -= n
			retired += n
		case KindLoad:
			tk := it.tk
			if !tk.started || tk.done < 0 || tk.done > now {
				return retired
			}
			if tk.level == 0 && tk.stall > 0 {
				// Split this load's head-of-ROB stall using its DRAM
				// latency stack.
				c.addDramStall(tk)
			}
			it.count = 0
			c.occ--
			budget--
			retired++
			it.tk = nil
			tk.retired = true
			c.release(tk)
		}
		if it.count == 0 {
			if it.kind == KindLoad {
				c.loads--
			}
			c.head = (c.head + 1) % len(c.rob)
			c.items--
		}
	}
	c.stats.Retired += int64(retired)
	return retired
}

// dispatch fills the ROB with up to Width uops from the source.
func (c *Core) dispatch(now int64) {
	if c.fetchBlockedUntil > now {
		return
	}
	budget := c.cfg.Width
	for budget > 0 {
		if c.pendingWork == 0 && c.pendingOp == nil {
			if c.srcDone {
				return
			}
			ins, ok := c.nextIns()
			if !ok {
				c.srcDone = true
				return
			}
			if ins.Kind == KindStall {
				return // barrier: no dispatch this cycle
			}
			c.pendingWork = ins.Work
			if ins.Kind != KindALU {
				c.pendingBuf = ins
				c.pendingOp = &c.pendingBuf
			}
		}
		if c.pendingWork > 0 {
			n := c.pendingWork
			if n > budget {
				n = budget
			}
			if free := c.robFree(); n > free {
				n = free
			}
			if n == 0 {
				return // ROB full
			}
			c.pushALU(n, now+1)
			c.pendingWork -= n
			budget -= n
			continue
		}
		// A single operation uop.
		if c.robFree() == 0 {
			return
		}
		op := c.pendingOp
		c.pendingOp = nil
		budget--
		switch op.Kind {
		case KindLoad:
			tk := c.newTicket()
			c.push(robItem{kind: KindLoad, count: 1, tk: tk})
			dep := c.depTicket(op.LoadDep)
			if dep != nil {
				dep.refs++
			}
			c.startQ = append(c.startQ, memOp{addr: op.Addr, write: false, dep: dep, tk: tk})
			slot := c.loadHistN % len(c.loadHist)
			if old := c.loadHist[slot]; old != nil {
				c.unref(old)
			}
			tk.refs++
			c.loadHist[slot] = tk
			c.loadHistN++
			c.stats.Loads++
		case KindStore:
			c.push(robItem{kind: KindStore, count: 1, readyAt: now + 1})
			c.startQ = append(c.startQ, memOp{addr: op.Addr, write: true})
			c.stats.Stores++
		case KindBranch:
			c.push(robItem{kind: KindBranch, count: 1, readyAt: now + 1})
			c.stats.Branches++
			if op.Mispredict {
				c.stats.Mispredicts++
				c.fetchBlockedUntil = now + int64(c.cfg.BranchPenalty)
				return // no dispatch past a mispredicted branch
			}
		}
	}
}

// nextIns returns the next source instruction, pulling batchLen at a
// time from BatchSource implementations. The buffer refills only when
// it runs dry, so end-of-stream is discovered at exactly the poll index
// the unbatched path would discover it, and a buffered KindStall is
// consumed by the poll that returns it — identical to Source.Next for
// any source honoring the BatchSource purity contract.
func (c *Core) nextIns() (Instr, bool) {
	if c.batchPos < c.batchN {
		ins := c.batch[c.batchPos]
		c.batchPos++
		return ins, true
	}
	if c.bsrc == nil {
		return c.src.Next()
	}
	c.batchN = c.bsrc.NextBatch(c.batch)
	if c.batchN == 0 {
		return Instr{}, false
	}
	c.batchPos = 1
	return c.batch[0], true
}

// pushALU appends an ALU chunk, merging with the tail chunk when the
// readiness matches (bounds ROB ring usage).
func (c *Core) pushALU(n int, readyAt int64) {
	if c.items > 0 {
		last := (c.tail + len(c.rob) - 1) % len(c.rob)
		it := &c.rob[last]
		if it.kind == KindALU && it.readyAt == readyAt {
			it.count += n
			c.occ += n
			return
		}
	}
	c.push(robItem{kind: KindALU, count: n, readyAt: readyAt})
}

// depTicket resolves "the k-th most recent load" into its ticket.
func (c *Core) depTicket(k int) *ticket {
	if k <= 0 || k > len(c.loadHist) || k > c.loadHistN {
		return nil
	}
	return c.loadHist[(c.loadHistN-k)%len(c.loadHist)]
}

// classify attributes this cycle to a cycle-stack component.
func (c *Core) classify(now int64, retired int) {
	switch {
	case retired > 0:
		c.acct.AddCycle(cyclestack.Base)
	case c.items == 0:
		if !c.srcDone && c.fetchBlockedUntil > now {
			c.acct.AddCycle(cyclestack.Branch)
		} else {
			c.acct.AddCycle(cyclestack.Idle)
		}
	default:
		it := &c.rob[c.head]
		if it.kind == KindLoad {
			tk := it.tk
			switch {
			case tk.started && tk.level == 0:
				// DRAM stall: total added now, split at retirement.
				tk.stall++
				c.acct.AddTotal(1)
			case tk.started && tk.level >= 2:
				c.acct.AddCycle(cyclestack.Dcache)
			case tk.started:
				c.acct.AddCycle(cyclestack.Base) // L1 hit shadow
			default:
				// Not started: blocked on a structural hazard (MSHRs
				// full — memory pressure) or an address dependency.
				c.acct.AddCycle(cyclestack.DramQueue)
			}
			return
		}
		c.acct.AddCycle(cyclestack.Base)
	}
}

// TrySleep puts the core to sleep after it simulated CPU cycle now, if
// this cycle was a DRAM stall that provably repeats until a memory
// completion arrives: the head-of-ROB load is in flight (started, no
// completion yet), dispatch is inert on its own (the ROB is full with
// buffered work, or the source is exhausted with nothing buffered) and
// not inside a fetch bubble that would end by itself, and every queued
// memory operation waits on an address dependency that is itself in
// flight. Under those conditions every subsequent cycle repeats exactly
// "stall++, total++" until some completion for this core fires, so the
// system can stop ticking the core and wake replays the skipped cycles
// in closed form. Reports whether the core went to sleep.
func (c *Core) TrySleep(now int64) bool {
	if c.asleep || c.items == 0 || c.fetchBlockedUntil > now+1 {
		return false
	}
	head := &c.rob[c.head]
	if head.kind != KindLoad {
		return false
	}
	tk := head.tk
	if !tk.started || tk.done >= 0 || tk.level != 0 {
		return false
	}
	if c.pendingWork > 0 || c.pendingOp != nil {
		if c.robFree() != 0 {
			return false // dispatch would push buffered work
		}
	} else if !c.srcDone {
		return false // dispatch would consult the source
	}
	for i := range c.startQ {
		dep := c.startQ[i].dep
		if dep == nil || dep.done >= 0 {
			return false // could start (or become startable) on its own
		}
	}
	c.asleep = true
	c.wakePending = false
	c.sleepFrom = now + 1
	return true
}

// Asleep reports whether the core is sleeping through a DRAM stall.
func (c *Core) Asleep() bool { return c.asleep }

// NeedsWake reports whether a memory completion has arrived for a
// sleeping core, so the system must Resume it at the next CPU cycle it
// would tick.
func (c *Core) NeedsWake() bool { return c.asleep && c.wakePending }

// wake marks a sleeping core for resumption. It deliberately does not
// end the sleep: the completion fires during the controller phase of
// memory cycle m with a CPU-domain timestamp that precedes the core's
// not-yet-simulated subcycles of that same memory cycle, all of which
// are still stall cycles (the load retires no earlier than the next
// subcycle). Resume replays them in closed form.
func (c *Core) wake(int64) {
	if c.asleep {
		c.wakePending = true
	}
}

// Resume ends a sleep at CPU cycle at (exclusive), replaying the
// skipped cycles: each was a head-of-ROB DRAM stall, so the whole
// stretch is stall += n on the head load and total += n —
// bit-identical to ticking them (both counters are integers). at is
// the first cycle the resumed per-cycle loop will simulate.
func (c *Core) Resume(at int64) {
	c.SyncSleep(at)
	c.asleep = false
	c.wakePending = false
}

// SyncSleep replays a sleeping core's skipped stall cycles up to CPU
// cycle upto (exclusive) without waking it, so its cycle stack can be
// read mid-sleep (sample cuts, early stops, final results).
func (c *Core) SyncSleep(upto int64) {
	if !c.asleep || upto <= c.sleepFrom {
		return
	}
	tk := c.rob[c.head].tk
	tk.stall += upto - c.sleepFrom
	c.acct.AddTotal(upto - c.sleepFrom)
	c.sleepFrom = upto
}
