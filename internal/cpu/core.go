// Package cpu implements the core model: a 4-wide out-of-order core with
// a 224-entry reorder buffer, in-order retirement, loads that block
// retirement at the ROB head, stores that retire without waiting for
// their read-for-ownership, and a branch-misprediction fetch bubble.
//
// The paper (§VI) uses Skylake-like cores in the Sniper interval
// simulator; what the DRAM stacks need from the core is the closed-loop
// behavior — the rate and parallelism of the memory requests it can keep
// in flight given the latencies it observes — which this model reproduces
// with ROB occupancy, per-core MSHR limits (in package cache) and
// explicit load-to-load dependencies for pointer-chasing patterns.
//
// While running, the core attributes every CPU cycle to a cycle-stack
// component (package cyclestack): base, branch, dcache, dram-latency,
// dram-queue or idle, with DRAM stalls split using the per-request DRAM
// latency stack (queue fraction) exactly as Fig. 7 requires.
package cpu

import (
	"fmt"
	"math"

	"dramstacks/internal/cache"
	"dramstacks/internal/cyclestack"
)

// Kind classifies an instruction item from a Source.
type Kind uint8

const (
	// KindALU is plain computation (also used for internal chunks).
	KindALU Kind = iota
	// KindLoad reads memory and can block retirement.
	KindLoad
	// KindStore writes memory (write-allocate: triggers a
	// read-for-ownership) but does not block retirement.
	KindStore
	// KindBranch is a conditional branch, possibly mispredicted.
	KindBranch
	// KindStall means the source has no work this cycle (e.g. the thread
	// waits at a barrier): the core dispatches nothing and polls the
	// source again next cycle. The stalled time shows up as the cycle
	// stack's idle component, as in the paper's Fig. 7 bfs dip.
	KindStall
)

// Instr is one macro item emitted by a workload: Work plain uops followed
// by one memory/branch operation (Kind). A pure-compute item has
// Kind == KindALU and only Work uops.
type Instr struct {
	// Work is the number of plain uops preceding the operation.
	Work int
	// Kind selects the trailing operation (KindALU for none).
	Kind Kind
	// Addr is the byte address for KindLoad / KindStore.
	Addr uint64
	// Mispredict marks a mispredicted KindBranch.
	Mispredict bool
	// LoadDep, for KindLoad, makes this load's address depend on the
	// k-th most recent earlier load (1 = previous load): the access
	// cannot start before that load's data returns. Zero means
	// independent. This is how pointer-chasing workloads bound their
	// memory-level parallelism.
	LoadDep int
}

// Source produces a core's instruction stream.
type Source interface {
	// Next returns the next item, or ok == false when the stream ends.
	Next() (ins Instr, ok bool)
}

// Mem is the core's port into the cache hierarchy.
type Mem interface {
	Access(now int64, core int, addr uint64, write bool,
		onDone func(doneCPU int64, queueFrac float64)) cache.Outcome
}

// Config parameterizes a core.
type Config struct {
	Width         int // superscalar width (4)
	ROBSize       int // reorder buffer entries (224)
	BranchPenalty int // fetch bubble after a misprediction, CPU cycles
	// StartsPerCycle caps how many memory accesses may begin per cycle.
	StartsPerCycle int
}

// DefaultConfig returns the paper's Skylake-like core parameters.
func DefaultConfig() Config {
	return Config{Width: 4, ROBSize: 224, BranchPenalty: 15, StartsPerCycle: 4}
}

// InOrderConfig returns a small in-order-like core (2-wide, a 16-entry
// window, one memory access start per cycle): an ablation showing how
// much the stacks depend on the core's ability to overlap misses.
func InOrderConfig() Config {
	return Config{Width: 2, ROBSize: 16, BranchPenalty: 8, StartsPerCycle: 1}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROBSize <= 0 || c.BranchPenalty < 0 || c.StartsPerCycle <= 0 {
		return fmt.Errorf("cpu: invalid config %+v", c)
	}
	return nil
}

// ticket tracks one load's completion state; dependent loads hold a
// pointer to their producer's ticket.
type ticket struct {
	started   bool
	done      int64 // completion CPU cycle, -1 while unknown
	level     int   // cache level of a hit; 0 = DRAM
	queueFrac float64
	stall     int64 // head-of-ROB stall cycles charged to this load
}

type robItem struct {
	kind    Kind
	count   int   // uops in an ALU chunk (1 for others)
	readyAt int64 // ALU/branch/store readiness
	tk      *ticket
}

type memOp struct {
	addr  uint64
	write bool
	dep   *ticket // must be done before the access can start
	tk    *ticket // load's own ticket (nil for stores)
}

// Stats counts a core's committed work.
type Stats struct {
	Retired     int64 // committed uops
	Loads       int64
	Stores      int64
	Branches    int64
	Mispredicts int64
	DramLoads   int64 // loads served by DRAM
}

// Core is one out-of-order core.
type Core struct {
	id   int
	cfg  Config
	mem  Mem
	src  Source
	acct *cyclestack.Accountant

	rob   []robItem // ring buffer
	head  int
	tail  int
	items int
	occ   int // occupied uop slots

	startQ []memOp

	pendingWork int
	pendingOp   *Instr
	pendingBuf  Instr
	srcDone     bool

	fetchBlockedUntil int64

	loadHist  [32]*ticket
	loadHistN int
	outStores int // store RFOs in flight in the memory system

	stats Stats
}

// New returns a core. It panics on invalid configuration.
func New(id int, cfg Config, mem Mem, src Source) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{
		id:   id,
		cfg:  cfg,
		mem:  mem,
		src:  src,
		acct: cyclestack.NewAccountant(),
		rob:  make([]robItem, cfg.ROBSize+1),
	}
}

// Stats returns the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Stack returns the core's cycle stack so far.
func (c *Core) Stack() cyclestack.Stack { return c.acct.Stack() }

// Accountant exposes the cycle-stack accountant (for through-time
// sampling by the system).
func (c *Core) Accountant() *cyclestack.Accountant { return c.acct }

// Done reports whether the core has committed its whole stream and has
// no outstanding memory operations.
func (c *Core) Done() bool {
	return c.srcDone && c.pendingOp == nil && c.pendingWork == 0 &&
		c.items == 0 && len(c.startQ) == 0 && c.outStores == 0
}

func (c *Core) robFree() int { return c.cfg.ROBSize - c.occ }

func (c *Core) push(it robItem) {
	c.rob[c.tail] = it
	c.tail = (c.tail + 1) % len(c.rob)
	c.items++
	c.occ += it.count
}

// NextEventCycle returns the first CPU cycle at or after now at which
// the core might do anything other than repeat its current steady-state
// cycle, assuming no external event (memory completion) arrives in
// between. Two states are provably repetitive:
//
//   - a finished core (Done) idles forever: math.MaxInt64;
//   - an empty core inside a branch-misprediction fetch bubble with no
//     memory operations outstanding repeats a pure branch-penalty cycle
//     until the bubble ends: fetchBlockedUntil.
//
// Everything else returns now (no skip): the core consumes its source,
// retires, or waits on in-flight memory whose completion time this side
// does not know. FastForward may only cover cycles strictly before the
// returned cycle.
func (c *Core) NextEventCycle(now int64) int64 {
	if c.Done() {
		return math.MaxInt64
	}
	if c.items == 0 && len(c.startQ) == 0 && c.outStores == 0 &&
		c.pendingWork == 0 && c.pendingOp == nil && !c.srcDone &&
		c.fetchBlockedUntil > now {
		return c.fetchBlockedUntil
	}
	return now
}

// FastForward charges n CPU cycles in closed form, bit-identical to n
// CPUCycle calls in the steady state NextEventCycle proved: idle cycles
// for a finished core, branch cycles inside a fetch bubble.
func (c *Core) FastForward(n int64) {
	if c.Done() {
		c.acct.AddCycles(cyclestack.Idle, n)
		return
	}
	c.acct.AddCycles(cyclestack.Branch, n)
}

// CPUCycle advances the core by one CPU cycle: start eligible memory
// accesses, retire, dispatch, then attribute the cycle.
func (c *Core) CPUCycle(now int64) {
	if c.Done() {
		c.acct.AddCycle(cyclestack.Idle)
		return
	}
	retired := c.retire(now)
	c.dispatch(now)
	c.startAccesses(now)
	c.classify(now, retired)
}

// startAccesses begins memory accesses whose dependencies have resolved.
func (c *Core) startAccesses(now int64) {
	started := 0
	for i := 0; i < len(c.startQ) && started < c.cfg.StartsPerCycle; i++ {
		op := &c.startQ[i]
		if op.dep != nil && !(op.dep.done >= 0 && op.dep.done <= now) {
			continue // producer not finished: address unknown
		}
		tk := op.tk
		write := op.write
		out := c.mem.Access(now, c.id, op.addr, op.write, func(doneCPU int64, qf float64) {
			if tk != nil {
				tk.done = doneCPU
				tk.queueFrac = qf
			}
			if write {
				c.outStores--
			}
		})
		switch out.Status {
		case cache.Retry:
			// Structural hazard: leave the op queued; later ops would
			// hit the same hazard, so stop trying this cycle.
			return
		case cache.Hit:
			if tk != nil {
				tk.started = true
				tk.done = now + int64(out.Latency)
				tk.level = out.Level
			}
		case cache.Pending:
			if tk != nil {
				tk.started = true
				tk.done = -1
				tk.level = 0
				c.stats.DramLoads++
			}
			if op.write {
				c.outStores++
			}
		}
		started++
		c.startQ = append(c.startQ[:i], c.startQ[i+1:]...)
		i--
	}
}

// retire commits up to Width ready uops from the ROB head and returns how
// many it committed.
func (c *Core) retire(now int64) int {
	budget := c.cfg.Width
	retired := 0
	for budget > 0 && c.items > 0 {
		it := &c.rob[c.head]
		switch it.kind {
		case KindALU, KindBranch, KindStore:
			if it.readyAt > now {
				return retired
			}
			n := it.count
			if n > budget {
				n = budget
			}
			it.count -= n
			c.occ -= n
			budget -= n
			retired += n
		case KindLoad:
			tk := it.tk
			if !tk.started || tk.done < 0 || tk.done > now {
				return retired
			}
			if tk.level == 0 && tk.stall > 0 {
				// Split this load's head-of-ROB stall using its DRAM
				// latency stack.
				c.acct.Add(cyclestack.DramQueue, float64(tk.stall)*tk.queueFrac)
				c.acct.Add(cyclestack.DramLatency, float64(tk.stall)*(1-tk.queueFrac))
			}
			it.count = 0
			c.occ--
			budget--
			retired++
		}
		if it.count == 0 {
			c.head = (c.head + 1) % len(c.rob)
			c.items--
		}
	}
	c.stats.Retired += int64(retired)
	return retired
}

// dispatch fills the ROB with up to Width uops from the source.
func (c *Core) dispatch(now int64) {
	if c.fetchBlockedUntil > now {
		return
	}
	budget := c.cfg.Width
	for budget > 0 {
		if c.pendingWork == 0 && c.pendingOp == nil {
			if c.srcDone {
				return
			}
			ins, ok := c.src.Next()
			if !ok {
				c.srcDone = true
				return
			}
			if ins.Kind == KindStall {
				return // barrier: no dispatch this cycle
			}
			c.pendingWork = ins.Work
			if ins.Kind != KindALU {
				c.pendingBuf = ins
				c.pendingOp = &c.pendingBuf
			}
		}
		if c.pendingWork > 0 {
			n := c.pendingWork
			if n > budget {
				n = budget
			}
			if free := c.robFree(); n > free {
				n = free
			}
			if n == 0 {
				return // ROB full
			}
			c.pushALU(n, now+1)
			c.pendingWork -= n
			budget -= n
			continue
		}
		// A single operation uop.
		if c.robFree() == 0 {
			return
		}
		op := c.pendingOp
		c.pendingOp = nil
		budget--
		switch op.Kind {
		case KindLoad:
			tk := &ticket{done: -1}
			c.push(robItem{kind: KindLoad, count: 1, tk: tk})
			c.startQ = append(c.startQ, memOp{addr: op.Addr, write: false, dep: c.depTicket(op.LoadDep), tk: tk})
			c.loadHist[c.loadHistN%len(c.loadHist)] = tk
			c.loadHistN++
			c.stats.Loads++
		case KindStore:
			c.push(robItem{kind: KindStore, count: 1, readyAt: now + 1})
			c.startQ = append(c.startQ, memOp{addr: op.Addr, write: true})
			c.stats.Stores++
		case KindBranch:
			c.push(robItem{kind: KindBranch, count: 1, readyAt: now + 1})
			c.stats.Branches++
			if op.Mispredict {
				c.stats.Mispredicts++
				c.fetchBlockedUntil = now + int64(c.cfg.BranchPenalty)
				return // no dispatch past a mispredicted branch
			}
		}
	}
}

// pushALU appends an ALU chunk, merging with the tail chunk when the
// readiness matches (bounds ROB ring usage).
func (c *Core) pushALU(n int, readyAt int64) {
	if c.items > 0 {
		last := (c.tail + len(c.rob) - 1) % len(c.rob)
		it := &c.rob[last]
		if it.kind == KindALU && it.readyAt == readyAt {
			it.count += n
			c.occ += n
			return
		}
	}
	c.push(robItem{kind: KindALU, count: n, readyAt: readyAt})
}

// depTicket resolves "the k-th most recent load" into its ticket.
func (c *Core) depTicket(k int) *ticket {
	if k <= 0 || k > len(c.loadHist) || k > c.loadHistN {
		return nil
	}
	return c.loadHist[(c.loadHistN-k)%len(c.loadHist)]
}

// classify attributes this cycle to a cycle-stack component.
func (c *Core) classify(now int64, retired int) {
	switch {
	case retired > 0:
		c.acct.AddCycle(cyclestack.Base)
	case c.items == 0:
		if !c.srcDone && c.fetchBlockedUntil > now {
			c.acct.AddCycle(cyclestack.Branch)
		} else {
			c.acct.AddCycle(cyclestack.Idle)
		}
	default:
		it := &c.rob[c.head]
		if it.kind == KindLoad {
			tk := it.tk
			switch {
			case tk.started && tk.level == 0:
				// DRAM stall: total added now, split at retirement.
				tk.stall++
				c.acct.AddTotal(1)
			case tk.started && tk.level >= 2:
				c.acct.AddCycle(cyclestack.Dcache)
			case tk.started:
				c.acct.AddCycle(cyclestack.Base) // L1 hit shadow
			default:
				// Not started: blocked on a structural hazard (MSHRs
				// full — memory pressure) or an address dependency.
				c.acct.AddCycle(cyclestack.DramQueue)
			}
			return
		}
		c.acct.AddCycle(cyclestack.Base)
	}
}
