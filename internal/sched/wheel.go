// Package sched implements the hierarchical timing wheel that drives
// the simulator's event-driven main loop: every component with a
// schedulable next event — memory controllers (including their refresh
// deadlines), sleeping cores, the through-time sampler and the
// warmup/budget boundaries — registers the cycle of its next event as
// an actor in the wheel, and the main loop jumps from event to event
// instead of interrogating every component every cycle.
//
// The wheel is the classic hierarchical design (Varghese & Lauck):
// four levels of 64 slots each, where level l buckets events at a
// granularity of 64^l cycles, so the structure spans 64^4 ≈ 16.7M
// cycles before events overflow into a far set. Each slot holds a
// bitmask of actor IDs and each level keeps an occupancy bitmask of its
// non-empty slots, so finding the earliest pending event is a handful
// of bit scans. Advancing the wheel cascades events from outer levels
// into inner ones exactly when their frame comes into range.
//
// Determinism: the wheel never iterates a map and PopDue returns a
// bitmask the caller walks in ascending actor-ID order, so the order in
// which same-cycle events fire is a pure function of actor numbering.
// The package is part of the repository's deterministic core (see
// internal/analysis/passes/detpkg).
package sched

import (
	"math"
	"math/bits"
)

const (
	// MaxActors is the number of distinct actor IDs a wheel tracks.
	// 64 keeps every slot a single uint64 bitmask; the simulator needs
	// well under that (≤16 controllers + cores + boundary actors).
	MaxActors = 64

	levelBits = 6 // 64 slots per level
	slotCount = 1 << levelBits
	slotMask  = slotCount - 1
	numLevels = 4

	// None is returned by Earliest and At when nothing is scheduled.
	None = math.MaxInt64
)

// level is one ring of the wheel: 64 slots of actor bitmasks plus an
// occupancy bitmask of the non-empty slots.
type level struct {
	slots [slotCount]uint64
	occ   uint64
}

// position records where a scheduled actor currently sits, so Cancel
// and reschedules clear the right bit even after the wheel advanced.
type position struct {
	level int8 // 0..numLevels-1, farLevel for the far set
	slot  uint8
}

const farLevel = int8(numLevels)

// Wheel is a hierarchical timing wheel over int64 cycles. The zero
// value is not ready; use New.
type Wheel struct {
	now    int64
	levels [numLevels]level
	far    uint64 // actors beyond the top level's frame
	sched  uint64 // bitmask of scheduled actors
	next   [MaxActors]int64
	pos    [MaxActors]position
}

// New returns a wheel positioned at cycle 0 with no events.
func New() *Wheel {
	return &Wheel{}
}

// Now returns the wheel's current cycle.
func (w *Wheel) Now() int64 { return w.now }

// Scheduled reports whether actor a has a pending event.
func (w *Wheel) Scheduled(a int) bool { return w.sched&(1<<uint(a)) != 0 }

// At returns actor a's pending event cycle, or None.
func (w *Wheel) At(a int) int64 {
	if !w.Scheduled(a) {
		return None
	}
	return w.next[a]
}

// Schedule sets actor a's next event to cycle at (at >= Now),
// replacing any pending event. Scheduling is O(1).
func (w *Wheel) Schedule(a int, at int64) {
	if at < w.now {
		panic("sched: scheduling into the past")
	}
	if w.Scheduled(a) {
		w.remove(a)
	}
	w.sched |= 1 << uint(a)
	w.next[a] = at
	w.place(a, at)
}

// Cancel removes actor a's pending event, if any.
func (w *Wheel) Cancel(a int) {
	if !w.Scheduled(a) {
		return
	}
	w.remove(a)
	w.sched &^= 1 << uint(a)
}

// remove clears a's slot bit (a must be scheduled).
func (w *Wheel) remove(a int) {
	p := w.pos[a]
	if p.level == farLevel {
		w.far &^= 1 << uint(a)
		return
	}
	l := &w.levels[p.level]
	l.slots[p.slot] &^= 1 << uint(a)
	if l.slots[p.slot] == 0 {
		l.occ &^= 1 << p.slot
	}
}

// place files actor a under the innermost level whose current frame
// contains cycle at. Level l holds events sharing the wheel's frame at
// level l+1; everything beyond the top frame goes to the far set.
func (w *Wheel) place(a int, at int64) {
	for l := 0; l < numLevels; l++ {
		frameShift := uint(levelBits * (l + 1))
		if at>>frameShift == w.now>>frameShift {
			slot := uint8(at >> uint(levelBits*l) & slotMask)
			w.pos[a] = position{level: int8(l), slot: slot}
			lv := &w.levels[l]
			lv.slots[slot] |= 1 << uint(a)
			lv.occ |= 1 << slot
			return
		}
	}
	w.pos[a] = position{level: farLevel}
	w.far |= 1 << uint(a)
}

// Advance moves the wheel's clock to cycle to, cascading events whose
// frame came into range down toward level 0. Events strictly before to
// must have been popped already: jumping over a pending event panics,
// because the simulator skipping past a due event is a lost wakeup.
func (w *Wheel) Advance(to int64) {
	if to < w.now {
		panic("sched: advancing into the past")
	}
	if to == w.now {
		return
	}
	old := w.now
	w.now = to
	// An event sits at level l because its cycle is outside the wheel's
	// current level-(l-1) frame; when now's level-l sub-frame pointer
	// (now >> 6l) changes, events at level l may have come into range
	// and are re-placed against the new now (place() moves them down as
	// far as they can go). Level 0 is pulled too purely as validation:
	// anything still there was jumped over, which replaceAll panics on.
	// If a shift-6l prefix is unchanged, all coarser prefixes are too,
	// so the loop stops at the first quiet level.
	for l := 1; l <= numLevels; l++ {
		shift := uint(levelBits * l)
		if old>>shift == to>>shift {
			break
		}
		if l == 1 {
			w.pullLevel(0)
		}
		if l < numLevels {
			w.pullLevel(l)
		} else {
			mask := w.far
			w.far = 0
			w.replaceAll(mask)
		}
	}
}

// pullLevel empties level l and re-places its actors. The level is
// snapshotted first: place() may legitimately file an actor back into
// the very slot being drained (its frame did not change), which must
// not be pulled again.
func (w *Wheel) pullLevel(l int) {
	lv := &w.levels[l]
	var all uint64
	for lv.occ != 0 {
		slot := trailingZeros(lv.occ)
		all |= lv.slots[slot]
		lv.slots[slot] = 0
		lv.occ &^= 1 << uint(slot)
	}
	w.replaceAll(all)
}

// replaceAll re-places every actor in mask against the current now.
func (w *Wheel) replaceAll(mask uint64) {
	for mask != 0 {
		a := trailingZeros(mask)
		mask &^= 1 << uint(a)
		if w.next[a] < w.now {
			panic("sched: advanced past a pending event")
		}
		w.place(a, w.next[a])
	}
}

// PopDue returns the bitmask of actors whose event cycle is exactly
// now, removing them from the wheel. The caller iterates the mask in
// ascending actor-ID order for deterministic same-cycle firing.
func (w *Wheel) PopDue() uint64 {
	lv := &w.levels[0]
	slot := uint8(w.now & slotMask)
	if lv.occ&(1<<slot) == 0 {
		return 0
	}
	// Level 0 holds only events inside the current 64-cycle frame, so
	// everything in this slot is due at exactly now.
	mask := lv.slots[slot]
	lv.slots[slot] = 0
	lv.occ &^= 1 << slot
	w.sched &^= mask
	return mask
}

// Earliest returns the earliest pending event cycle, or None. It never
// modifies the wheel.
func (w *Wheel) Earliest() int64 {
	if w.sched == 0 {
		return None
	}
	// Level 0: slots at or after now within the current frame fire at
	// frame_base | slot exactly.
	if occ := w.levels[0].occ &^ (1<<uint(w.now&slotMask) - 1); occ != 0 {
		return w.now&^slotMask | int64(trailingZeros(occ))
	}
	// Outer levels bucket at coarser granularity: the lowest occupied
	// slot is the earliest bucket (no wrap: a level only holds events
	// inside the current frame of the level above, which are all ahead
	// of now), but the earliest event inside it needs an exact scan.
	for l := 1; l < numLevels; l++ {
		if occ := w.levels[l].occ; occ != 0 {
			return w.minNext(w.levels[l].slots[trailingZeros(occ)])
		}
	}
	return w.minNext(w.far)
}

// minNext returns the minimum next[] cycle over the actors in mask.
func (w *Wheel) minNext(mask uint64) int64 {
	min := int64(None)
	for mask != 0 {
		a := trailingZeros(mask)
		mask &^= 1 << uint(a)
		if w.next[a] < min {
			min = w.next[a]
		}
	}
	return min
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
