package sched

import (
	"math/rand"
	"testing"
)

// popAll drains the due mask into a slice of actor IDs (ascending).
func popAll(w *Wheel) []int {
	var out []int
	mask := w.PopDue()
	for mask != 0 {
		a := trailingZeros(mask)
		mask &^= 1 << uint(a)
		out = append(out, a)
	}
	return out
}

func TestScheduleAndPopSameCycleOrder(t *testing.T) {
	w := New()
	w.Schedule(5, 10)
	w.Schedule(2, 10)
	w.Schedule(63, 10)
	if got := w.Earliest(); got != 10 {
		t.Fatalf("Earliest = %d, want 10", got)
	}
	w.Advance(10)
	got := popAll(w)
	want := []int{2, 5, 63}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v (ascending actor IDs)", got, want)
		}
	}
	if w.Earliest() != None {
		t.Fatalf("Earliest after drain = %d, want None", w.Earliest())
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	w := New()
	w.Schedule(1, 100)
	w.Schedule(1, 7) // earlier
	if got := w.Earliest(); got != 7 {
		t.Fatalf("Earliest = %d, want 7", got)
	}
	if got := w.At(1); got != 7 {
		t.Fatalf("At(1) = %d, want 7", got)
	}
	w.Schedule(1, 5000) // later again
	if got := w.Earliest(); got != 5000 {
		t.Fatalf("Earliest = %d, want 5000", got)
	}
	w.Advance(5000)
	if got := popAll(w); len(got) != 1 || got[0] != 1 {
		t.Fatalf("popped %v, want [1]", got)
	}
}

func TestCancel(t *testing.T) {
	w := New()
	w.Schedule(3, 42)
	w.Cancel(3)
	if w.Scheduled(3) {
		t.Fatal("actor still scheduled after Cancel")
	}
	if w.Earliest() != None {
		t.Fatalf("Earliest = %d, want None", w.Earliest())
	}
	w.Cancel(3) // idempotent
}

// TestCascade schedules events at every level of the hierarchy and far
// beyond it, then advances cycle ranges that force cascading.
func TestCascade(t *testing.T) {
	w := New()
	at := []int64{3, 70, 64 * 64 * 3, 64 * 64 * 64 * 5, int64(1) << 40}
	for a, c := range at {
		w.Schedule(a, c)
	}
	for i, c := range at {
		if got := w.Earliest(); got != c {
			t.Fatalf("step %d: Earliest = %d, want %d", i, got, c)
		}
		w.Advance(c)
		got := popAll(w)
		if len(got) != 1 || got[0] != i {
			t.Fatalf("at cycle %d popped %v, want [%d]", c, got, i)
		}
	}
}

func TestEarliestAcrossFrameBoundary(t *testing.T) {
	w := New()
	w.Advance(63)
	w.Schedule(0, 64) // next level-0 frame: must live at level 1 until advance
	if got := w.Earliest(); got != 64 {
		t.Fatalf("Earliest = %d, want 64", got)
	}
	w.Advance(64)
	if got := popAll(w); len(got) != 1 || got[0] != 0 {
		t.Fatalf("popped %v, want [0]", got)
	}
}

func TestAdvancePastPendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("advancing past a pending event did not panic")
		}
	}()
	w := New()
	w.Schedule(0, 5)
	w.Advance(200) // crosses frames, forcing a re-place that detects the miss
}

// TestRandomizedAgainstModel drives the wheel with random schedules,
// cancels and advances and checks Earliest/PopDue against a naive
// reference model at every step.
func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := New()
	model := map[int]int64{} // actor -> cycle
	now := int64(0)

	modelEarliest := func() int64 {
		min := int64(None)
		//dramvet:allow detrange(min over values is order-insensitive)
		for _, c := range model {
			if c < min {
				min = c
			}
		}
		return min
	}

	for step := 0; step < 20000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // schedule
			a := rng.Intn(MaxActors)
			// Mix near, mid, far and very far horizons.
			var d int64
			switch rng.Intn(4) {
			case 0:
				d = int64(rng.Intn(4))
			case 1:
				d = int64(rng.Intn(200))
			case 2:
				d = int64(rng.Intn(100_000))
			case 3:
				d = int64(rng.Intn(1 << 30))
			}
			w.Schedule(a, now+d)
			model[a] = now + d
		case 2: // cancel
			a := rng.Intn(MaxActors)
			w.Cancel(a)
			delete(model, a)
		case 3: // advance to the next event (or a bit into the void)
			e := modelEarliest()
			if e == None {
				now += int64(rng.Intn(1000))
				w.Advance(now)
				continue
			}
			now = e
			w.Advance(now)
			got := popAll(w)
			var want []int
			//dramvet:allow detrange(want is compared as a set: length + membership checks below)
			for a, c := range model {
				if c == now {
					want = append(want, a)
				}
			}
			for _, a := range want {
				delete(model, a)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d cycle %d: popped %d actors, want %d", step, now, len(got), len(want))
			}
			for _, a := range got {
				if _, ok := model[a]; ok {
					t.Fatalf("step %d: actor %d popped but still due in model", step, a)
				}
			}
		}
		if got, want := w.Earliest(), modelEarliest(); got != want {
			t.Fatalf("step %d (now %d): Earliest = %d, model %d", step, now, got, want)
		}
	}
}

func BenchmarkScheduleAdvancePop(b *testing.B) {
	w := New()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		w.Schedule(i&15, now+int64(i&1023)+1)
		if e := w.Earliest(); e != None {
			now = e
			w.Advance(now)
			w.PopDue()
		}
	}
}
