package memctrl

import (
	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// Request is one cache-line-sized memory operation presented to the
// controller by the cache hierarchy (an LLC miss or a dirty writeback).
type Request struct {
	// Addr is the physical byte address (line aligned by the caller).
	Addr uint64
	// Write marks a DRAM write (dirty writeback); otherwise a read.
	Write bool
	// OnComplete, if non-nil, is invoked once with the completion cycle:
	// for reads when the data has traversed the controller pipeline, for
	// writes when the write command has issued.
	OnComplete func(r *Request, at int64)

	// Meta is free for the caller (e.g. the requesting core id).
	Meta any

	loc    dram.Loc
	arrive int64
	src    int // request source (core index), or stacks.SourceShared

	// Latency bookkeeping (reads).
	ownPre    int64 // precharge cycles this request itself incurred
	ownAct    int64 // activate cycles this request itself incurred
	refSnap   int64 // cumRefresh at arrival
	drainSnap int64 // cumDrainOnly at arrival
	regSnap   int64 // source's cumReg at arrival (QoS regulation)
	forwarded bool
	lat       stacks.ReadLatency
}

// Latency returns the read's latency decomposition (valid inside and
// after the OnComplete callback; zero for forwarded reads and writes).
func (r *Request) Latency() stacks.ReadLatency { return r.lat }

// QueueFraction returns the share of the read's latency that was
// queueing-related (queue + write burst + refresh): the part the cycle
// stacks report as dram-queue.
func (r *Request) QueueFraction() float64 {
	if r.lat.Total == 0 {
		return 0
	}
	q := r.lat.Components[stacks.LatQueue] +
		r.lat.Components[stacks.LatWriteBurst] +
		r.lat.Components[stacks.LatRefresh]
	return q / float64(r.lat.Total)
}

// RegFraction returns the share of the read's latency spent held by QoS
// bandwidth regulation: the part the cycle stacks report as
// dram-regulated. Exactly 0 without a QoS policy.
func (r *Request) RegFraction() float64 {
	if r.lat.Total == 0 {
		return 0
	}
	return r.lat.Components[stacks.LatRegulated] / float64(r.lat.Total)
}

// Source returns the request's source identity (core index), or
// stacks.SourceShared for unattributed requests.
func (r *Request) Source() int { return r.src }

// Arrive returns the memory cycle the request entered the controller.
func (r *Request) Arrive() int64 { return r.arrive }

// Loc returns the DRAM coordinates the request was mapped to.
func (r *Request) Loc() dram.Loc { return r.loc }

// Forwarded reports whether a read was served from the write buffer
// instead of DRAM.
func (r *Request) Forwarded() bool { return r.forwarded }
