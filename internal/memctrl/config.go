// Package memctrl implements a DDR4 memory controller: per-channel read
// and write queues, FR-FCFS scheduling, a write buffer drained in bursts
// between high and low watermarks, open- and closed-page policies, and
// refresh management. While scheduling, it feeds the bandwidth- and
// latency-stack accountants of package stacks with the per-cycle channel
// state and per-read latency decompositions the paper's accounting
// mechanism requires (paper §IV, §V).
package memctrl

import (
	"fmt"

	"dramstacks/internal/qos"
)

// PagePolicy selects when the controller closes DRAM pages.
type PagePolicy uint8

const (
	// OpenPage keeps a row open until a conflicting request needs the
	// bank (maximizes page hits for local streams).
	OpenPage PagePolicy = iota
	// ClosedPage precharges a page as soon as no queued request targets
	// it anymore, using auto-precharge column commands (avoids the
	// precharge latency on the next, likely conflicting, access).
	ClosedPage
)

// String names the policy.
func (p PagePolicy) String() string {
	if p == ClosedPage {
		return "closed"
	}
	return "open"
}

// Scheduler selects the request scheduling policy.
type Scheduler uint8

const (
	// FRFCFS is first-ready, first-come-first-served (the paper's
	// policy). The full tie-break order, audited for the QoS priority
	// tier, is:
	//
	//  1. Priority tier (only with a QoS policy that has real-time
	//     sources): requests from RT sources — plus any request older
	//     than the aging bound, whatever its source — are scheduled
	//     before every other request, running the complete
	//     column/activate/precharge ladder below among themselves first.
	//     The aging promotion is the starvation fix: without it a
	//     low-priority ready row hit can be deferred indefinitely by an
	//     unbroken stream of high-priority misses, because every RT
	//     activate/precharge outranks the waiting column command. Once
	//     the hit's age crosses qos.Config.AgingBound it joins the top
	//     tier and wins by arrival order.
	//  2. Ready column commands (row hits) before activates before
	//     precharges — "first ready": a young row hit overtakes an older
	//     request that still needs its page opened.
	//  3. Oldest arrival within each class.
	//
	// Two standing exceptions: a precharge never closes a row that still
	// has queued same-direction hits in its own tier or above (a held or
	// lower-tier hit does not preserve a row against the priority tier),
	// and requests held by QoS bandwidth regulation are invisible to the
	// scheduler entirely — they take no part in any tie-break and cannot
	// block a bank.
	FRFCFS Scheduler = iota
	// FCFS serves strictly in arrival order; the scheduler only works
	// on the oldest request per bank. Exposed as a scheduling ablation
	// (row hits lose their priority, page hit rates drop under mixes).
	FCFS
)

// String names the policy.
func (s Scheduler) String() string {
	if s == FCFS {
		return "fcfs"
	}
	return "fr-fcfs"
}

// Config parameterizes a Controller.
type Config struct {
	// Policy is the page policy (default open, per the paper's §VII).
	Policy PagePolicy

	// Sched is the scheduling policy (default FR-FCFS, as in the paper).
	Sched Scheduler

	// ReadQueueCap bounds the read queue; Enqueue fails when full,
	// providing back pressure to the cache hierarchy.
	ReadQueueCap int

	// WriteQueueCap bounds the write buffer (paper default 32; the
	// Fig. 8 "wq128" variant uses 128).
	WriteQueueCap int

	// WriteHi and WriteLo are the drain watermarks: when the write
	// buffer reaches WriteHi entries the controller bursts writes until
	// it falls to WriteLo.
	WriteHi, WriteLo int

	// ClosedKeepOpen is the number of other queued same-row requests
	// required for the closed page policy to keep a page open instead of
	// auto-precharging (paper: a page closes "as soon as there are no
	// pending accesses to that page anymore"). 1 is the literal paper
	// rule; higher values close pages more eagerly, which matches the
	// behavior the paper's own controller exhibits on bursty prefetched
	// streams.
	ClosedKeepOpen int

	// FlatConstraints disables the scope widening of the bandwidth
	// stack's constraints attribution: normally a bank blocked by a
	// bank-group constraint (tCCD_L) charges its whole group and a rank
	// constraint (tFAW, turnaround) its whole rank; with FlatConstraints
	// only the blocked bank itself is charged and the sibling banks
	// count as bank-idle. Exposed as an accounting ablation.
	FlatConstraints bool

	// CtrlLatency is the fixed pipeline latency, in memory cycles, the
	// controller adds to every request (request path + response path).
	// It is the latency stack's base-cntlr component.
	CtrlLatency int

	// SampleInterval, when positive, cuts a through-time stack sample
	// every so many memory cycles.
	SampleInterval int64

	// Recycle, when true, returns completed *Request objects to an
	// internal freelist so steady-state operation allocates nothing per
	// request. A caller that opts in must not retain a *Request after
	// its OnComplete callback returns (the object may be reused for a
	// later request). The simulator's hot loop opts in; external users
	// of the package API get stable requests by default.
	Recycle bool

	// QoS, when enabled, activates multi-tenant quality of service:
	// per-source bandwidth budgets over a regulation window (reads from
	// an over-budget source are held, not scheduled; column commands of
	// both directions consume budget) and a real-time priority tier
	// layered on FR-FCFS with an aging bound against starvation. The
	// zero value leaves scheduling and accounting byte-identical to a
	// controller without the feature. Budgets are enforced per channel:
	// each controller meters its own window independently.
	QoS qos.Config
}

// DefaultConfig returns the paper's controller configuration: FR-FCFS,
// open page, a 32-entry write buffer.
func DefaultConfig() Config {
	return Config{
		Policy:         OpenPage,
		ReadQueueCap:   64,
		WriteQueueCap:  32,
		WriteHi:        24,
		WriteLo:        8,
		ClosedKeepOpen: 5,
		CtrlLatency:    30,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.ReadQueueCap <= 0:
		return fmt.Errorf("memctrl: read queue capacity must be positive, got %d", c.ReadQueueCap)
	case c.WriteQueueCap <= 0:
		return fmt.Errorf("memctrl: write queue capacity must be positive, got %d", c.WriteQueueCap)
	case c.WriteHi <= c.WriteLo:
		return fmt.Errorf("memctrl: write high watermark %d must exceed low watermark %d", c.WriteHi, c.WriteLo)
	case c.WriteHi > c.WriteQueueCap:
		return fmt.Errorf("memctrl: write high watermark %d exceeds capacity %d", c.WriteHi, c.WriteQueueCap)
	case c.WriteLo < 0:
		return fmt.Errorf("memctrl: write low watermark %d must be non-negative", c.WriteLo)
	case c.CtrlLatency < 0:
		return fmt.Errorf("memctrl: controller latency %d must be non-negative", c.CtrlLatency)
	case c.ClosedKeepOpen < 1:
		return fmt.Errorf("memctrl: ClosedKeepOpen must be at least 1, got %d", c.ClosedKeepOpen)
	}
	return c.QoS.Validate()
}
