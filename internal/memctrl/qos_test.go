package memctrl

import (
	"testing"

	"dramstacks/internal/qos"
	"dramstacks/internal/stacks"
)

// checkSourceConservation asserts that the per-source bandwidth and
// latency splits sum to the aggregate stacks cycle-exactly. Every
// accounted cycle lands in exactly one source row, so the reconstruction
// below is bit-identical to the aggregate, not merely close.
func checkSourceConservation(t *testing.T, c *Controller) {
	t.Helper()
	agg := c.BandwidthStack()
	rows := c.SourceStacks()
	if rows == nil {
		t.Fatal("SourceStacks = nil with QoS configured")
	}
	var sumFull, sumShared [stacks.NumBWComponents]int64
	for _, r := range rows {
		for comp := range sumFull {
			sumFull[comp] += r.Full[comp]
			sumShared[comp] += r.Shared[comp]
		}
	}
	banks := float64(agg.Banks)
	for comp := range sumFull {
		got := float64(sumFull[comp]) + float64(sumShared[comp])/banks
		if got != agg.Cycles[comp] {
			t.Errorf("component %v: source rows sum to %v, aggregate %v",
				stacks.BWComponent(comp), got, agg.Cycles[comp])
		}
	}

	latRows := c.SourceLatencyStacks()
	if latRows == nil {
		t.Fatal("SourceLatencyStacks = nil with QoS configured")
	}
	var sum stacks.LatencyStack
	for _, l := range latRows {
		sum.Add(l)
	}
	if sum != c.LatencyStack() {
		t.Errorf("per-source latency stacks sum to %+v, aggregate %+v",
			sum, c.LatencyStack())
	}
}

// feed keeps up to depth reads outstanding for one source, enqueuing
// sequential hits within a row. It returns the completion count pointer.
type feeder struct {
	r     *rig
	src   int
	bank  int
	row   int
	depth int
	next  int
	out   int
	done  int
}

func (f *feeder) pump(now int64) {
	for f.out < f.depth {
		a := f.r.addr(0, f.bank, f.row, f.next%64)
		_, ok := f.r.ctrl.EnqueueReadFrom(now, a, f.src,
			func(*Request, int64) { f.out--; f.done++ }, nil)
		if !ok {
			return
		}
		f.next++
		f.out++
	}
}

func TestQoSTrackingOnlyConservation(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.QoS = qos.Config{Sources: 2}
	})
	f0 := &feeder{r: r, src: 0, bank: 0, row: 3, depth: 4}
	f1 := &feeder{r: r, src: 1, bank: 1, row: 7, depth: 4}
	for ; r.now < 20000; r.now++ {
		f0.pump(r.now)
		f1.pump(r.now)
		r.ctrl.Tick(r.now)
	}
	r.runUntil(5000, func() bool { return !r.ctrl.Pending() })

	if f0.done == 0 || f1.done == 0 {
		t.Fatalf("completions = %d/%d, want both positive", f0.done, f1.done)
	}
	agg := r.ctrl.BandwidthStack()
	if agg.Cycles[stacks.BWRegulation] != 0 {
		t.Errorf("regulation cycles = %v without budgets, want 0",
			agg.Cycles[stacks.BWRegulation])
	}
	rows := r.ctrl.SourceStacks()
	if len(rows) != 3 || rows[2].Source != stacks.SourceShared {
		t.Fatalf("source rows = %d (last %d), want 3 with shared tail",
			len(rows), rows[len(rows)-1].Source)
	}
	if rows[0].Full[stacks.BWRead] == 0 || rows[1].Full[stacks.BWRead] == 0 {
		t.Errorf("read cycles by source = %d/%d, want both positive",
			rows[0].Full[stacks.BWRead], rows[1].Full[stacks.BWRead])
	}
	checkSourceConservation(t, r.ctrl)
}

func TestQoSBudgetThrottlesAndAttributes(t *testing.T) {
	const (
		window  = 600
		budget  = 2
		horizon = 24000
	)
	r := newRig(t, func(c *Config) {
		c.QoS = qos.Config{
			Sources: 2,
			Window:  window,
			Budget:  []int{budget, 0},
		}
	})
	f0 := &feeder{r: r, src: 0, bank: 0, row: 3, depth: 4}
	f1 := &feeder{r: r, src: 1, bank: 1, row: 7, depth: 4}
	for ; r.now < horizon; r.now++ {
		f0.pump(r.now)
		f1.pump(r.now)
		r.ctrl.Tick(r.now)
	}
	// Stop feeding and drain; held reads are released as windows refill.
	r.runUntil(10*window, func() bool { return !r.ctrl.Pending() })

	// The budget meters column commands per window, so the regulated
	// source cannot complete more reads than windows*budget.
	windows := (r.now + window - 1) / window
	if int64(f0.done) > windows*budget {
		t.Errorf("regulated source completed %d reads in %d windows, budget %d/window",
			f0.done, windows, budget)
	}
	if f0.done == 0 {
		t.Error("regulated source starved outright: budget should still admit reads")
	}
	if f1.done < 4*f0.done {
		t.Errorf("unbudgeted source completed %d vs regulated %d: throttle ineffective",
			f1.done, f0.done)
	}

	agg := r.ctrl.BandwidthStack()
	if agg.Cycles[stacks.BWRegulation] == 0 {
		t.Error("regulation component = 0 with a saturated budget, want positive")
	}
	latRows := r.ctrl.SourceLatencyStacks()
	if latRows[0].SumCycles[stacks.LatRegulated] == 0 {
		t.Error("regulated source has no LatRegulated cycles, want positive")
	}
	if latRows[1].SumCycles[stacks.LatRegulated] != 0 {
		t.Errorf("unbudgeted source has %v LatRegulated cycles, want 0",
			latRows[1].SumCycles[stacks.LatRegulated])
	}
	checkSourceConservation(t, r.ctrl)
}

func TestQoSHeldSourceWritesStillDrain(t *testing.T) {
	const window = 4096
	r := newRig(t, func(c *Config) {
		c.QoS = qos.Config{Sources: 1, Window: window, Budget: []int{1}}
	})
	// First read consumes the whole window budget.
	var first int64 = -1
	r.ctrl.EnqueueReadFrom(r.now, r.addr(0, 0, 1, 0), 0,
		func(_ *Request, at int64) { first = at }, nil)
	r.runUntil(2000, func() bool { return first >= 0 })

	// The second read is held until the window refills; the write is
	// posted and must drain while the read queue is effectively empty.
	var heldReq *Request
	var heldAt int64 = -1
	r.ctrl.EnqueueReadFrom(r.now, r.addr(0, 0, 2, 0), 0,
		func(req *Request, at int64) { heldReq, heldAt = req, at }, nil)
	var wrote int64 = -1
	r.ctrl.EnqueueWriteFrom(r.now, r.addr(0, 0, 3, 0), 0,
		func(_ *Request, at int64) { wrote = at }, nil)

	r.runUntil(2*window, func() bool { return wrote >= 0 })
	if heldAt >= 0 && heldAt <= wrote {
		t.Errorf("held read completed at %d before write at %d", heldAt, wrote)
	}
	r.runUntil(2*window, func() bool { return heldAt >= 0 })
	if heldAt < window {
		t.Errorf("held read completed at %d, before the window refill at %d",
			heldAt, int64(window))
	}
	if reg := heldReq.Latency().Components[stacks.LatRegulated]; reg <= 0 {
		t.Errorf("held read regulated latency = %v, want positive", reg)
	}
	if frac := heldReq.RegFraction(); frac <= 0 || frac >= 1 {
		t.Errorf("RegFraction = %v, want in (0,1)", frac)
	}
}

func TestQoSRTPriorityOverridesFCFS(t *testing.T) {
	run := func(rt bool) (normalAt, rtAt int64) {
		r := newRig(t, func(c *Config) {
			if rt {
				c.QoS = qos.Config{Sources: 2, RT: []bool{false, true}}
			}
		})
		// Two row misses to the same closed bank, normal source strictly
		// first: plain FR-FCFS serves in arrival order, the priority
		// tier reorders the RT request ahead.
		normalAt, rtAt = -1, -1
		r.ctrl.EnqueueReadFrom(r.now, r.addr(0, 0, 10, 0), 0,
			func(_ *Request, at int64) { normalAt = at }, nil)
		r.ctrl.EnqueueReadFrom(r.now, r.addr(0, 0, 20, 0), 1,
			func(_ *Request, at int64) { rtAt = at }, nil)
		r.runUntil(4000, func() bool { return normalAt >= 0 && rtAt >= 0 })
		return normalAt, rtAt
	}
	if normalAt, rtAt := run(false); rtAt < normalAt {
		t.Errorf("without QoS the later request finished first (%d < %d)", rtAt, normalAt)
	}
	if normalAt, rtAt := run(true); rtAt > normalAt {
		t.Errorf("RT request finished at %d after normal at %d, want RT first", rtAt, normalAt)
	}
}

// rtStorm keeps depth row-miss reads outstanding from an RT source, all
// to the same bank with strictly increasing rows, so the priority tier
// always has work for that bank.
type rtStorm struct {
	r     *rig
	bank  int
	depth int
	row   int
	out   int
	done  int
}

func (s *rtStorm) pump(now int64) {
	for s.out < s.depth {
		a := s.r.addr(0, s.bank, 100+s.row%400, 0)
		_, ok := s.r.ctrl.EnqueueReadFrom(now, a, 1,
			func(*Request, int64) { s.out--; s.done++ }, nil)
		if !ok {
			return
		}
		s.row++
		s.out++
	}
}

// TestQoSAgingBoundsStarvation is the regression test for the priority
// tier's starvation edge: a low-priority row hit can be deferred
// indefinitely by a stream of high-priority misses to the same bank
// (the prio precharge pass may close a row that only normal-tier hits
// are waiting on, and every subsequent bank slot is won by the prio
// tier). The aging bound promotes the waiting request into the priority
// tier, bounding its service delay.
func TestQoSAgingBoundsStarvation(t *testing.T) {
	victimLatency := func(aging int64, horizon int64) int64 {
		r := newRig(t, func(c *Config) {
			c.QoS = qos.Config{Sources: 2, RT: []bool{false, true}, Aging: aging}
		})
		// Open row 500 on bank 0 so the victim arrives as a row hit.
		warm := false
		r.ctrl.EnqueueReadFrom(r.now, r.addr(0, 0, 500, 0), 0,
			func(*Request, int64) { warm = true }, nil)
		r.runUntil(2000, func() bool { return warm })

		var victimArrive = r.now
		var victimAt int64 = -1
		r.ctrl.EnqueueReadFrom(r.now, r.addr(0, 0, 500, 1), 0,
			func(_ *Request, at int64) { victimAt = at }, nil)
		storm := &rtStorm{r: r, bank: 0, depth: 4}
		for end := r.now + horizon; r.now < end && victimAt < 0; r.now++ {
			storm.pump(r.now)
			r.ctrl.Tick(r.now)
		}
		if storm.done == 0 {
			t.Fatal("RT storm made no progress")
		}
		if victimAt < 0 {
			return -1
		}
		return victimAt - victimArrive
	}

	const aging = 1000
	lat := victimLatency(aging, 30000)
	if lat < 0 {
		t.Fatal("victim read never completed despite the aging bound")
	}
	// Promotion happens at age aging; allow slack for the in-flight RT
	// request chain and a refresh to finish first.
	if lat > aging+2000 {
		t.Errorf("victim latency = %d cycles, want <= aging bound %d plus slack", lat, aging)
	}

	// With an unreachable aging bound the same scenario starves the
	// victim for the whole horizon — the bug this test pins down.
	if lat := victimLatency(1<<40, 30000); lat >= 0 && lat < 10000 {
		t.Errorf("victim latency = %d cycles with no effective aging: starvation edge gone, "+
			"has the scheduler changed?", lat)
	}
}
