package memctrl

import (
	"math"

	"dramstacks/internal/dram"
)

// schedule attempts to issue at most one DRAM command this cycle,
// following FR-FCFS: ready column commands first (row hits), then
// activates, then precharges, oldest request first within each class.
// Refresh management preempts normal scheduling for its rank.
//
// The per-bank candidate scan is memoized across cycles (steady-state
// replay): its inputs — queue contents and order, open-row state, the
// write/read direction, per-source held state and priority-tier
// membership — change only at identified points, each of which calls
// dirtyCand. Between those points the previous scan's candidates are
// replayed as-is, and issueNormal may additionally prove (via
// dram.Device.EarliestIssue) that no candidate can legally issue before
// a future cycle, skipping the issue passes entirely until then. Both
// shortcuts bail out conservatively: any enqueue, any issued command,
// a write-mode flip, a QoS window/held change, an aging-bound crossing
// or a due refresh invalidates them, so the observable schedule is
// byte-identical to rescanning every cycle. Under the closed-page
// policy auto-precharges alter open-row state asynchronously (at Sync
// time, with no dirtyCand hook), so memoization is disabled there and
// the scan runs every cycle as before.
func (c *Controller) schedule(now int64) {
	c.lastIssuedBank = -1

	refIssued := c.scheduleRefresh(now)
	if refIssued {
		// A REF or refresh-preparing PRE changed device state under the
		// memoized candidates.
		c.dirtyCand()
	}
	if c.qosPrio && c.candValid && now >= c.candAge {
		// A queued request crossed the aging bound: its tier changed.
		c.dirtyCand()
	}
	if !c.candValid {
		c.scan(now)
		c.candValid = c.replayOK
	}
	if !refIssued {
		c.issueNormal(now)
	}
}

// dirtyCand invalidates the memoized scheduling scan and the
// no-issue-before bound. The cand array itself is left intact: the
// lazy markBlocked call in account still reads this cycle's candidates
// after an issue invalidates them for the next cycle.
func (c *Controller) dirtyCand() {
	c.candValid = false
	c.skipUntil = 0
}

// scheduleRefresh progresses refresh for pending ranks: it issues the REF
// when possible, otherwise precharges open banks of the rank. It reports
// whether it consumed the command slot.
func (c *Controller) scheduleRefresh(now int64) bool {
	for r := range c.refPending {
		if !c.refPending[r] {
			continue
		}
		ref := dram.Command{Kind: dram.CmdREF, Loc: dram.Loc{Rank: r}}
		if c.dev.CanIssue(ref, now) {
			c.dev.Issue(ref, now)
			c.stats.Refreshes++
			c.nextRefresh[r] += int64(c.tim.REFI)
			c.refPending[r] = false
			c.issuedCycle = now
			return true
		}
		// Close open banks so the refresh can proceed.
		for g := 0; g < c.geo.Groups; g++ {
			for b := 0; b < c.geo.Banks; b++ {
				loc := dram.Loc{Rank: r, Group: g, Bank: b}
				row := c.dev.OpenRow(loc, now)
				if row < 0 {
					continue
				}
				loc.Row = row
				pre := dram.Command{Kind: dram.CmdPRE, Loc: loc}
				if c.dev.CanIssue(pre, now) {
					c.dev.Issue(pre, now)
					c.issuedCycle = now
					c.lastIssuedBank = c.bankIndex(loc)
					return true
				}
			}
		}
	}
	return false
}

// scan classifies the active-direction queue into per-bank candidates and
// counts open-row hits from both queues (for page-policy decisions).
// Requests held by QoS regulation are invisible: they become no
// candidate, preserve no row, and mark no bank blocked. With a priority
// tier, the per-bank prio slots additionally track the oldest
// priority-tier request per class.
func (c *Controller) scan(now int64) {
	for i := range c.cand {
		c.cand[i] = bankCand{}
	}
	c.candAge = math.MaxInt64
	active, other := c.readQ, c.writeQ
	if c.writeMode {
		active, other = c.writeQ, c.readQ
	}
	for _, req := range active {
		if c.qosReg && !req.Write && c.heldReq(req) {
			continue
		}
		b := c.bankIndex(req.loc)
		cd := &c.cand[b]
		openRow := c.dev.OpenRow(req.loc, now)
		hit := openRow == req.loc.Row
		if c.qosPrio {
			if !c.reqPrio(req, now) {
				// Not yet in the priority tier: record when aging will
				// promote it, so the memoized scan is invalidated at
				// exactly that cycle.
				if cross := req.arrive + c.qosAging; cross < c.candAge {
					c.candAge = cross
				}
			} else {
				if hit {
					cd.hasHitPrio = true
				}
				// The FCFS oldest-only rule applies per tier: the first
				// priority-tier request of a bank claims its prio slot.
				if c.cfg.Sched != FCFS ||
					(cd.colPrio == nil && cd.actPrio == nil && cd.prePrio == nil) {
					switch {
					case hit:
						if cd.colPrio == nil {
							cd.colPrio = req
						}
					case openRow < 0:
						if cd.actPrio == nil {
							cd.actPrio = req
						}
					default:
						if cd.prePrio == nil {
							cd.prePrio = req
						}
					}
				}
			}
		}
		if c.cfg.Sched == FCFS && (cd.col != nil || cd.act != nil || cd.pre != nil) {
			// Strict order: only the oldest request per bank is a
			// candidate; younger row hits may not overtake it. Same-row
			// counting below still needs every request.
			if hit {
				cd.hasHitActive = true
				cd.sameRowCount++
			}
			continue
		}
		switch {
		case hit:
			if cd.col == nil {
				cd.col = req
			}
			cd.hasHitActive = true
			cd.sameRowCount++
		case openRow < 0:
			if cd.act == nil {
				cd.act = req
			}
		default:
			if cd.pre == nil {
				cd.pre = req
			}
		}
	}
	for _, req := range other {
		if c.qosReg && !req.Write && c.heldReq(req) {
			continue
		}
		b := c.bankIndex(req.loc)
		if c.dev.OpenRow(req.loc, now) == req.loc.Row {
			c.cand[b].hasHitOther = true
			c.cand[b].sameRowCount++
		}
	}
}

// reqPrio reports whether req is in the priority tier: a real-time
// source, or any request older than the aging bound (the starvation
// backstop — see the FRFCFS tie-break documentation in config.go).
func (c *Controller) reqPrio(req *Request, now int64) bool {
	return c.cfg.QoS.SourceRT(req.src) || now-req.arrive >= c.qosAging
}

// issueNormal picks and issues at most one command from the scanned
// candidates. With a QoS priority tier, the whole FR-FCFS ladder runs
// over the priority-tier candidates first; the normal slots only get
// the cycle when no priority command could issue.
//
// When the memoized candidates are valid and a previous cycle proved no
// candidate can legally issue before skipUntil, the passes are skipped:
// they would evaluate CanIssue to false for every candidate and issue
// nothing, exactly as the skip does. The bound is recomputed whenever
// the passes run and issue nothing, and reset by every dirtyCand.
func (c *Controller) issueNormal(now int64) {
	if c.candValid && c.skipUntil > now {
		return
	}
	if c.qosPrio && c.issuePasses(now, true) {
		return
	}
	if c.issuePasses(now, false) {
		return
	}
	if c.candValid {
		c.skipUntil = c.nextIssueBound(now)
	}
}

// nextIssueBound returns the earliest future cycle at which some
// candidate could legally issue, assuming no state change in between
// (any state change calls dirtyCand, which resets the bound). It
// mirrors issuePasses' eligibility guards exactly; candidates whose
// command needs a prior state change (EarliestIssue ok == false) are
// excluded, since that state change dirties the memo anyway. With no
// eligible candidate the bound is MaxInt64: nothing can issue until a
// dirtying event. Only called under the open-page policy (replayOK),
// where no auto-precharge can be pending, so EarliestIssue cannot
// observe an unapplied precharge.
func (c *Controller) nextIssueBound(now int64) int64 {
	bound := int64(math.MaxInt64)
	consider := func(cmd dram.Command) {
		if at, ok := c.dev.EarliestIssue(cmd, now); ok && at < bound {
			bound = at
		}
	}
	for tier := 0; tier < 2; tier++ {
		prio := tier == 0
		if prio && !c.qosPrio {
			continue
		}
		for b := range c.cand {
			cd := &c.cand[b]
			col, act, pre, hitGuard := cd.col, cd.act, cd.pre, cd.hasHitActive
			if prio {
				col, act, pre, hitGuard = cd.colPrio, cd.actPrio, cd.prePrio, cd.hasHitPrio
			}
			if col != nil && !c.refPending[col.loc.Rank] {
				consider(dram.Command{Kind: c.columnKind(col, cd), Loc: col.loc})
			}
			if act != nil && !c.refPending[act.loc.Rank] {
				consider(dram.Command{Kind: dram.CmdACT, Loc: act.loc})
			}
			if pre != nil && !c.refPending[pre.loc.Rank] &&
				!(hitGuard && c.cfg.Sched != FCFS) {
				loc := pre.loc
				if loc.Row = c.dev.OpenRow(pre.loc, now); loc.Row >= 0 {
					consider(dram.Command{Kind: dram.CmdPRE, Loc: loc})
				}
			}
		}
	}
	return bound
}

// issuePasses runs the three FR-FCFS passes (ready columns, activates,
// precharges; oldest first within each) over one candidate tier and
// reports whether a command was issued.
func (c *Controller) issuePasses(now int64, prio bool) bool {
	// Pass 1: ready column commands, oldest first.
	var best *Request
	var bestKind dram.CommandKind
	for b := range c.cand {
		cd := &c.cand[b]
		req := cd.col
		if prio {
			req = cd.colPrio
		}
		if req == nil || c.refPending[req.loc.Rank] {
			continue
		}
		kind := c.columnKind(req, cd)
		if c.dev.CanIssue(dram.Command{Kind: kind, Loc: req.loc}, now) {
			if best == nil || req.arrive < best.arrive {
				best, bestKind = req, kind
			}
		}
	}
	if best != nil {
		c.issueColumn(now, best, bestKind)
		return true
	}

	// Pass 2: activates, oldest first.
	best = nil
	for b := range c.cand {
		req := c.cand[b].act
		if prio {
			req = c.cand[b].actPrio
		}
		if req == nil || c.refPending[req.loc.Rank] {
			continue
		}
		if c.dev.CanIssue(dram.Command{Kind: dram.CmdACT, Loc: req.loc}, now) {
			if best == nil || req.arrive < best.arrive {
				best = req
			}
		}
	}
	if best != nil {
		c.dev.Issue(dram.Command{Kind: dram.CmdACT, Loc: best.loc}, now)
		best.ownAct += int64(c.tim.RCD)
		c.issuedCycle = now
		c.lastIssuedBank = c.bankIndex(best.loc)
		c.dirtyCand()
		return true
	}

	// Pass 3: precharges for row conflicts, oldest first — but never
	// close a row that still has queued hits in the same tier or above
	// (first-ready semantics; strict FCFS closes regardless). A
	// priority-tier precharge ignores normal-tier hits — preserving the
	// row for them would invert the tiers — while a normal precharge
	// respects hits from both tiers. Hits waiting in the other
	// direction do not preserve the row: a deferred write must not
	// starve a read.
	best = nil
	for b := range c.cand {
		cd := &c.cand[b]
		req := cd.pre
		hitGuard := cd.hasHitActive
		if prio {
			req = cd.prePrio
			hitGuard = cd.hasHitPrio
		}
		if req == nil || c.refPending[req.loc.Rank] ||
			(hitGuard && c.cfg.Sched != FCFS) {
			continue
		}
		loc := req.loc
		loc.Row = c.dev.OpenRow(req.loc, now)
		if loc.Row < 0 {
			continue // raced with an auto-precharge
		}
		if c.dev.CanIssue(dram.Command{Kind: dram.CmdPRE, Loc: loc}, now) {
			if best == nil || req.arrive < best.arrive {
				best = req
			}
		}
	}
	if best != nil {
		loc := best.loc
		loc.Row = c.dev.OpenRow(best.loc, now)
		c.dev.Issue(dram.Command{Kind: dram.CmdPRE, Loc: loc}, now)
		best.ownPre += int64(c.tim.RP)
		c.issuedCycle = now
		c.lastIssuedBank = c.bankIndex(best.loc)
		c.dirtyCand()
		return true
	}
	return false
}

// columnKind selects the column command for req: with the closed-page
// policy the row auto-precharges when no other queued request targets it.
func (c *Controller) columnKind(req *Request, cd *bankCand) dram.CommandKind {
	auto := c.cfg.Policy == ClosedPage && cd.sameRowCount-1 < c.cfg.ClosedKeepOpen
	switch {
	case req.Write && auto:
		return dram.CmdWRA
	case req.Write:
		return dram.CmdWR
	case auto:
		return dram.CmdRDA
	default:
		return dram.CmdRD
	}
}

func (c *Controller) issueColumn(now int64, req *Request, kind dram.CommandKind) {
	c.dev.Issue(dram.Command{Kind: kind, Loc: req.loc}, now)
	c.issuedCycle = now
	c.lastIssuedBank = c.bankIndex(req.loc)
	c.dirtyCand()
	c.stats.BankAccesses[c.lastIssuedBank]++
	c.classifyPage(req)
	if c.qosReg && req.src >= 0 && req.src < len(c.qosUsed) {
		// Column commands of both directions consume the source budget.
		c.qosUsed[req.src]++
	}
	if c.qosTrack {
		start, end := c.dev.DataWindow(kind, now)
		c.busOwner = append(c.busOwner, busWindow{start, end, req.src})
	}
	if req.Write {
		c.writeQ = removeReq(c.writeQ, req)
		if c.wbuf[req.Addr] == req {
			delete(c.wbuf, req.Addr)
		}
		c.stats.IssuedWrites++
		if req.OnComplete != nil {
			req.OnComplete(req, now)
		}
		c.recycle(req)
		return
	}
	c.readQ = removeReq(c.readQ, req)
	if c.qosReg && req.src >= 0 && req.src < len(c.readsBySrc) {
		c.readsBySrc[req.src]--
	}
	c.stats.IssuedReads++
	c.readDone(req, now)
}

// markBlocked records which banks had a pending candidate that made no
// progress this cycle. The accountant turns these into 1/n "constraints"
// shares (busy banks take precedence there, so double marking is safe).
//
// The mark is widened to the scope of the binding timing constraint: a
// bank delayed by a bank-group restriction (e.g. tCCD_L) marks its whole
// group, and a rank restriction (tFAW, bus turnaround, ...) marks the
// whole rank — those constraints are what keeps the *other* banks of that
// scope from transferring data, so the lost cycle belongs to them too.
//
// It is called lazily, from account, and only on cycles whose channel
// state can actually consume the mask (bus idle, no refresh): on every
// other cycle the mask is dead and computing it — including the
// dev.Blocking scope queries — would be wasted work. Device state does
// not change between schedule and account, so the lazy call sees
// exactly what an eager one at the end of schedule would have seen.
func (c *Controller) markBlocked(now int64) {
	c.blockedMask = 0
	for b := range c.cand {
		cd := &c.cand[b]
		var req *Request
		var kind dram.CommandKind
		switch {
		case cd.col != nil:
			req = cd.col
			kind = c.columnKind(req, cd)
		case cd.act != nil:
			req = cd.act
			kind = dram.CmdACT
		case cd.pre != nil:
			req = cd.pre
			kind = dram.CmdPRE
		default:
			continue
		}
		c.blockedMask |= 1 << b
		if c.cfg.FlatConstraints {
			continue
		}
		loc := req.loc
		if kind == dram.CmdPRE {
			if open := c.dev.OpenRow(req.loc, now); open >= 0 {
				loc.Row = open
			}
		}
		switch c.dev.Blocking(dram.Command{Kind: kind, Loc: loc}, now) {
		case dram.ScopeGroup:
			c.blockedMask |= c.groupMask(req.loc)
		case dram.ScopeRank:
			c.blockedMask |= c.rankMask(req.loc.Rank)
		}
	}
	// The bank a command was issued to made progress this cycle.
	if c.issuedCycle == now && c.lastIssuedBank >= 0 {
		c.blockedMask &^= 1 << c.lastIssuedBank
	}
}

// groupMask returns the bank bitmask of loc's whole bank group.
func (c *Controller) groupMask(loc dram.Loc) uint64 {
	base := uint((loc.Rank*c.geo.Groups + loc.Group) * c.geo.Banks)
	return ((uint64(1) << c.geo.Banks) - 1) << base
}

// rankMask returns the bank bitmask of the whole rank.
func (c *Controller) rankMask(rank int) uint64 {
	per := uint(c.geo.BanksPerRank())
	return ((uint64(1) << per) - 1) << (uint(rank) * per)
}
