package memctrl

import (
	"fmt"

	"dramstacks/internal/addrmap"
	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// Stats aggregates controller activity counters.
type Stats struct {
	EnqueuedReads   int64
	EnqueuedWrites  int64
	ForwardedReads  int64 // reads served from the write buffer
	CoalescedWrites int64

	IssuedReads  int64 // column read commands issued to DRAM
	IssuedWrites int64
	Refreshes    int64

	PageHits  int64 // column command to an already-open row
	PageEmpty int64 // required an activate only
	PageMiss  int64 // required a precharge and an activate

	DrainEntries int64 // write-burst drains started

	// Queue occupancy telemetry, integrated per cycle.
	ReadQueueCycles  int64 // sum of read-queue length over all cycles
	WriteQueueCycles int64
	MaxReadQueue     int
	MaxWriteQueue    int
	Cycles           int64 // cycles observed (for the averages)

	// BankAccesses counts column commands per bank (channel-local
	// index), for bank-distribution analysis.
	BankAccesses [64]int64
}

// BankImbalance returns the ratio of the busiest bank's accesses to the
// mean over banks that could have been used (1 = perfectly uniform);
// 0 when there was no traffic. banks is the channel's bank count.
func (s Stats) BankImbalance(banks int) float64 {
	if banks <= 0 {
		return 0
	}
	var total, max int64
	for b := 0; b < banks && b < len(s.BankAccesses); b++ {
		v := s.BankAccesses[b]
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(banks) / float64(total)
}

// AvgReadQueueDepth returns the time-averaged read queue occupancy.
func (s Stats) AvgReadQueueDepth() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ReadQueueCycles) / float64(s.Cycles)
}

// AvgWriteQueueDepth returns the time-averaged write queue occupancy.
func (s Stats) AvgWriteQueueDepth() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.WriteQueueCycles) / float64(s.Cycles)
}

// PageHitRate returns the fraction of DRAM column accesses that hit an
// open row.
func (s Stats) PageHitRate() float64 {
	total := s.PageHits + s.PageEmpty + s.PageMiss
	if total == 0 {
		return 0
	}
	return float64(s.PageHits) / float64(total)
}

// Controller schedules requests onto one DRAM channel.
type Controller struct {
	geo    dram.Geometry
	tim    dram.Timing
	cfg    Config
	dev    *dram.Device
	mapper addrmap.Mapper

	now   int64
	banks int

	readQ  []*Request
	writeQ []*Request
	wbuf   map[uint64]*Request // line address -> queued write (forwarding/coalescing)

	drain     bool // between watermarks of a write burst
	writeMode bool // issuing writes this cycle (drain or opportunistic)

	nextRefresh []int64 // per rank
	refPending  []bool

	// Completion FIFOs (each is ordered by completion cycle).
	inflight []pendingDone // reads in DRAM, done = data end + CtrlLatency
	fwdDone  []pendingDone // forwarded reads, done = arrive + CtrlLatency

	// Cumulative cycle counters for O(1) latency wait attribution.
	cumRefresh   int64
	cumDrainOnly int64

	bw      *stacks.BandwidthAccountant
	lat     *stacks.LatencyAccountant
	hist    stacks.LatencyHistogram
	sampler *stacks.Sampler

	// Request freelist, used only when cfg.Recycle is set.
	reqFree []*Request

	// Per-tick scheduling scratch, reused across cycles.
	cand           []bankCand
	blockedMask    uint64
	issuedCycle    int64 // cycle of the last issued command
	lastIssuedBank int   // bank index of the last issued command, -1 if none

	// Steady-state replay state (see schedule's doc comment). replayOK
	// admits scan memoization at all (open-page policy only); candValid
	// marks the cand array as reusable next cycle; candAge is the
	// earliest future cycle at which aging promotes a scanned request
	// into the priority tier; skipUntil is a proven lower bound on the
	// next cycle any candidate could issue (0 = unknown).
	replayOK  bool
	candValid bool
	candAge   int64
	skipUntil int64

	// QoS state (all zero/nil when cfg.QoS is disabled; the booleans
	// gate every QoS code path so a policy-less controller runs the
	// legacy logic byte-identically).
	qosTrack bool  // per-source stack attribution enabled
	qosReg   bool  // some source has a bandwidth budget
	qosPrio  bool  // some source is in the real-time tier
	qosAging int64 // effective starvation bound (priority tier)

	qosWindow  int64   // current regulation window index (now / Window)
	qosUsed    []int64 // column commands issued per source this window
	qosHeld    []bool  // per-source held state, recomputed each tick
	readsBySrc []int   // queued (unissued) reads per source
	heldReads  int     // queued reads belonging to held sources
	cumReg     []int64 // cumulative held cycles per source (latency attribution)

	// busOwner tracks which source's data occupies the bus, for
	// per-source read/write cycle attribution. Windows never overlap
	// (the device serializes the data bus), so a FIFO suffices.
	busOwner []busWindow

	// latSrc holds per-source latency accountants (rows 0..Sources-1,
	// row Sources = shared), nil unless per-source tracking is enabled.
	latSrc []*stacks.LatencyAccountant

	stats Stats
}

// busWindow is one claimed [start, end) data-bus interval and the source
// whose request claimed it.
type busWindow struct {
	start, end int64
	src        int
}

type pendingDone struct {
	req  *Request
	done int64
}

// bankCand is the per-bank candidate state built by the scheduling scan.
// The prio slots are populated only under a QoS policy with a priority
// tier; they hold the oldest priority-tier (real-time or aged) request
// per class, which the tiered scheduler serves before any normal slot.
type bankCand struct {
	col          *Request // oldest request whose row is open (column command ready-ish)
	act          *Request // oldest request needing an activate (bank precharged)
	pre          *Request // oldest request needing a precharge (row conflict)
	colPrio      *Request // oldest priority-tier row hit
	actPrio      *Request // oldest priority-tier activate candidate
	prePrio      *Request // oldest priority-tier precharge candidate
	hasHitActive bool     // some active-direction request hits the open row
	hasHitPrio   bool     // some priority-tier active-direction request hits the open row
	hasHitOther  bool     // some other-direction request hits the open row
	sameRowCount int      // queued requests (both queues) targeting the open row
}

// New returns a controller for one channel of the given device, with the
// given address mapper (used to decode request addresses).
func New(dev *dram.Device, mapper addrmap.Mapper, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo := dev.Geometry()
	c := &Controller{
		geo:         geo,
		tim:         dev.Timing(),
		cfg:         cfg,
		dev:         dev,
		mapper:      mapper,
		banks:       geo.TotalBanks(),
		wbuf:        make(map[uint64]*Request),
		cand:        make([]bankCand, geo.TotalBanks()),
		bw:          stacks.NewBandwidthAccountant(geo.TotalBanks()),
		lat:         stacks.NewLatencyAccountant(),
		nextRefresh: make([]int64, geo.Ranks),
		refPending:  make([]bool, geo.Ranks),
		issuedCycle: -1,
		replayOK:    cfg.Policy == OpenPage,
	}
	for r := range c.nextRefresh {
		// Stagger rank refreshes across the interval.
		c.nextRefresh[r] = int64(c.tim.REFI) * int64(r+1) / int64(geo.Ranks)
	}
	c.sampler = stacks.NewSampler(cfg.SampleInterval, c.bw, c.lat)
	if q := cfg.QoS; q.Enabled() {
		n := q.Sources
		c.qosTrack = true
		c.qosReg = q.Regulates()
		c.qosPrio = q.Prioritizes()
		c.qosAging = q.AgingBound()
		c.qosUsed = make([]int64, n)
		c.qosHeld = make([]bool, n)
		c.readsBySrc = make([]int, n)
		c.cumReg = make([]int64, n)
		c.bw.EnableSourceTracking(n)
		c.latSrc = make([]*stacks.LatencyAccountant, n+1)
		for i := range c.latSrc {
			c.latSrc[i] = stacks.NewLatencyAccountant()
		}
	}
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(dev *dram.Device, mapper addrmap.Mapper, cfg Config) *Controller {
	c, err := New(dev, mapper, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// BandwidthStack returns the bandwidth stack accumulated so far.
func (c *Controller) BandwidthStack() stacks.BandwidthStack { return c.bw.Stack() }

// LatencyStack returns the latency stack accumulated so far.
func (c *Controller) LatencyStack() stacks.LatencyStack { return c.lat.Stack() }

// LatencyHistogram returns the distribution of total read latencies.
func (c *Controller) LatencyHistogram() stacks.LatencyHistogram { return c.hist }

// SourceStacks returns the per-source bandwidth split (rows 0..n-1 for
// the QoS sources, last row stacks.SourceShared), or nil when no QoS
// policy is configured. The rows sum to BandwidthStack cycle-exactly.
func (c *Controller) SourceStacks() []stacks.SourceStack { return c.bw.SourceStacks() }

// SourceLatencyStacks returns per-source latency stacks (index
// 0..n-1 for the QoS sources, index n for unattributed reads), or nil
// when no QoS policy is configured. Summed, they equal LatencyStack.
func (c *Controller) SourceLatencyStacks() []stacks.LatencyStack {
	if c.latSrc == nil {
		return nil
	}
	out := make([]stacks.LatencyStack, len(c.latSrc))
	for i, a := range c.latSrc {
		out[i] = a.Stack()
	}
	return out
}

// srcRow maps a request source to a latSrc row (out-of-range sources to
// the shared row).
func (c *Controller) srcRow(src int) int {
	if src < 0 || src >= len(c.latSrc)-1 {
		return len(c.latSrc) - 1
	}
	return src
}

// Samples returns the through-time samples cut so far (empty unless
// Config.SampleInterval is positive).
func (c *Controller) Samples() []stacks.Sample { return c.sampler.Samples() }

// FinishSampling cuts the final partial through-time sample.
func (c *Controller) FinishSampling() { c.sampler.Finish(c.now + 1) }

// Device returns the underlying DRAM device (for verification hooks).
func (c *Controller) Device() *dram.Device { return c.dev }

// QueueLens returns the current read and write queue occupancy.
func (c *Controller) QueueLens() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// Pending reports whether the controller still has queued or in-flight
// work (used to drain simulations).
func (c *Controller) Pending() bool {
	return len(c.readQ)+len(c.writeQ)+len(c.inflight)+len(c.fwdDone) > 0
}

// newRequest allocates a request, reusing a recycled one when the
// freelist is enabled and non-empty.
func (c *Controller) newRequest(addr uint64, write bool, src int, onComplete func(*Request, int64), meta any, now int64) *Request {
	if n := len(c.reqFree); n > 0 {
		req := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		*req = Request{Addr: addr, Write: write, OnComplete: onComplete, Meta: meta, arrive: now, src: src}
		return req
	}
	return &Request{Addr: addr, Write: write, OnComplete: onComplete, Meta: meta, arrive: now, src: src}
}

// recycle returns a completed request to the freelist when cfg.Recycle
// is set. Callers guarantee the request's OnComplete has already run.
func (c *Controller) recycle(req *Request) {
	if !c.cfg.Recycle {
		return
	}
	req.OnComplete, req.Meta = nil, nil
	c.reqFree = append(c.reqFree, req)
}

// EnqueueRead presents a cache-line read at cycle now. It reports false
// (and does nothing) when the read queue is full. If the line is present
// in the write buffer the read is served by store forwarding and never
// reaches DRAM.
//
// The returned *Request is owned by the controller: the caller may
// inspect it until onComplete fires and must not retain it afterwards,
// when it returns to the free list.
//
//dramvet:allow poolescape(caller may inspect the request until onComplete fires; recycle happens at completion)
func (c *Controller) EnqueueRead(now int64, addr uint64, onComplete func(*Request, int64), meta any) (*Request, bool) {
	return c.EnqueueReadFrom(now, addr, stacks.SourceShared, onComplete, meta)
}

// EnqueueReadFrom is EnqueueRead with an explicit source identity (the
// requesting core's index, or stacks.SourceShared for unattributed
// reads). Under a QoS policy the source selects the request's bandwidth
// budget, priority tier and per-source stack row.
//
//dramvet:allow poolescape(caller may inspect the request until onComplete fires; recycle happens at completion)
func (c *Controller) EnqueueReadFrom(now int64, addr uint64, src int, onComplete func(*Request, int64), meta any) (*Request, bool) {
	addr &^= uint64(c.geo.LineBytes - 1)
	if _, hit := c.wbuf[addr]; hit {
		req := c.newRequest(addr, false, src, onComplete, meta, now)
		req.forwarded = true
		c.stats.ForwardedReads++
		c.stats.EnqueuedReads++
		c.fwdDone = append(c.fwdDone, pendingDone{req, now + int64(c.cfg.CtrlLatency)})
		return req, true
	}
	if len(c.readQ) >= c.cfg.ReadQueueCap {
		return nil, false
	}
	req := c.newRequest(addr, false, src, onComplete, meta, now)
	req.loc = c.mapper.Decode(addr)
	req.refSnap = c.cumRefresh
	req.drainSnap = c.cumDrainOnly
	if c.qosReg {
		if s := req.src; s >= 0 && s < len(c.readsBySrc) {
			c.readsBySrc[s]++
			req.regSnap = c.cumReg[s]
		}
	}
	c.readQ = append(c.readQ, req)
	c.stats.EnqueuedReads++
	c.dirtyCand()
	return req, true
}

// EnqueueWrite presents a dirty-line writeback at cycle now. It reports
// false when the write buffer is full. Writes to a line already buffered
// coalesce into the existing entry (the new request completes immediately).
//
// Like EnqueueRead, the returned *Request stays owned by the controller
// and must not be retained after onComplete fires.
//
//dramvet:allow poolescape(caller may inspect the request until onComplete fires; recycle happens at completion)
func (c *Controller) EnqueueWrite(now int64, addr uint64, onComplete func(*Request, int64), meta any) (*Request, bool) {
	return c.EnqueueWriteFrom(now, addr, stacks.SourceShared, onComplete, meta)
}

// EnqueueWriteFrom is EnqueueWrite with an explicit source identity.
// Writes are posted and never held by regulation, but their column
// commands consume the source's budget and their data-bus cycles are
// attributed to the source's stack row.
//
//dramvet:allow poolescape(caller may inspect the request until onComplete fires; recycle happens at completion)
func (c *Controller) EnqueueWriteFrom(now int64, addr uint64, src int, onComplete func(*Request, int64), meta any) (*Request, bool) {
	addr &^= uint64(c.geo.LineBytes - 1)
	if _, dup := c.wbuf[addr]; dup {
		c.stats.CoalescedWrites++
		c.stats.EnqueuedWrites++
		req := c.newRequest(addr, true, src, nil, meta, now)
		if onComplete != nil {
			onComplete(req, now)
		}
		c.recycle(req)
		return req, true
	}
	if len(c.writeQ) >= c.cfg.WriteQueueCap {
		return nil, false
	}
	req := c.newRequest(addr, true, src, onComplete, meta, now)
	req.loc = c.mapper.Decode(addr)
	c.writeQ = append(c.writeQ, req)
	c.wbuf[addr] = req
	c.stats.EnqueuedWrites++
	c.dirtyCand()
	return req, true
}

// Tick advances the controller by one memory cycle. Call with
// consecutive cycle numbers; enqueue requests for cycle n before Tick(n).
func (c *Controller) Tick(now int64) {
	c.now = now
	c.dev.Sync(now)

	c.completeFinished(now)
	c.qosTick(now)
	c.updateRefresh(now)
	c.updateDrain()
	c.schedule(now)
	c.account(now)
}

// qosTick maintains the regulation window: budgets refill at absolute
// window boundaries (cycle N*Window, independent of traffic history, so
// fast-forwarded and per-cycle runs agree), and the per-source held
// state is recomputed for this cycle. No-op without bandwidth budgets.
func (c *Controller) qosTick(now int64) {
	if !c.qosReg {
		return
	}
	if w := now / c.cfg.QoS.Window; w != c.qosWindow {
		c.qosWindow = w
		for s := range c.qosUsed {
			c.qosUsed[s] = 0
		}
	}
	c.heldReads = 0
	for s := range c.qosHeld {
		b := c.cfg.QoS.SourceBudget(s)
		held := b > 0 && c.qosUsed[s] >= int64(b)
		if held != c.qosHeld[s] {
			// Held requests are invisible to the scheduling scan; a
			// source (un)holding changes its inputs.
			c.dirtyCand()
		}
		c.qosHeld[s] = held
		if held {
			c.heldReads += c.readsBySrc[s]
		}
	}
}

// heldReq reports whether req is currently held by regulation.
func (c *Controller) heldReq(req *Request) bool {
	return c.qosReg && req.src >= 0 && req.src < len(c.qosHeld) && c.qosHeld[req.src]
}

// NextEventCycle returns the next cycle at which Tick must run for real,
// assuming no new requests are enqueued in between. Call it immediately
// after Tick(now). For a controller with queued or in-flight work, or
// with a pending refresh, or whose device still has observable activity
// beyond a pure refresh wait (banks opening/closing, data on the bus),
// it returns now+1: every cycle must be simulated. Otherwise the
// controller is provably quiet and the only future events are the end
// of an in-flight refresh (tRFC) and the earliest refresh deadline:
// every cycle before the sooner of the two is a pure refresh or idle
// cycle that FastForwardQuiet can account in closed form.
func (c *Controller) NextEventCycle(now int64) int64 {
	if len(c.readQ) > 0 || len(c.writeQ) > 0 || len(c.inflight) > 0 || len(c.fwdDone) > 0 {
		return now + 1
	}
	for r := range c.refPending {
		if c.refPending[r] {
			return now + 1
		}
	}
	next := c.nextRefresh[0]
	for _, t := range c.nextRefresh[1:] {
		if t < next {
			next = t
		}
	}
	if c.dev.QuietAt() > now+1 && c.dev.RefreshOnlyUntil(now+1) <= now+1 {
		// Device activity beyond a bare refresh wait: tick every cycle.
		// (A pure refresh wait runs out by itself at a known cycle, so
		// the whole gap to the next refresh deadline replays in closed
		// form as refresh-then-idle; see FastForwardQuiet.)
		return now + 1
	}
	if next <= now {
		return now + 1 // defensive: a due refresh is already pending
	}
	return next
}

// FastForwardIdle replays the ticks for cycles from..to (inclusive) in
// closed form. It is valid only across a gap NextEventCycle proved idle:
// every skipped cycle accounts as a whole idle cycle, queue-occupancy
// integrals gain zero, and through-time samples are cut at exactly the
// boundaries the per-cycle loop would have cut them. The result is
// byte-identical to calling Tick for every cycle of the gap.
func (c *Controller) FastForwardIdle(from, to int64) {
	if to < from {
		return
	}
	t := from
	for t <= to {
		end := to
		if next := c.sampler.NextCut(); next > 0 && next-1 < end {
			end = next - 1
		}
		n := end - t + 1
		c.bw.AccountIdle(n)
		c.stats.Cycles += n
		t = end + 1
		c.sampler.MaybeCut(t)
	}
	c.now = to
}

// FastForwardQuiet replays the ticks for cycles from..to (inclusive) in
// closed form across a gap NextEventCycle proved quiet: first the tail
// of an in-flight refresh wait (every cycle observes "refreshing,
// nothing else" — see dram.Device.RefreshOnlyUntil), then pure idle
// cycles. Byte-identical to calling Tick for every cycle of the gap.
func (c *Controller) FastForwardQuiet(from, to int64) {
	if to < from {
		return
	}
	if refEnd := c.dev.RefreshOnlyUntil(from) - 1; refEnd >= from {
		if refEnd > to {
			refEnd = to
		}
		t := from
		for t <= refEnd {
			end := refEnd
			if next := c.sampler.NextCut(); next > 0 && next-1 < end {
				end = next - 1
			}
			n := end - t + 1
			c.bw.AccountRefreshing(n)
			c.cumRefresh += n
			c.stats.Cycles += n
			t = end + 1
			c.sampler.MaybeCut(t)
		}
		c.now = refEnd
		from = refEnd + 1
	}
	c.FastForwardIdle(from, to)
}

func (c *Controller) completeFinished(now int64) {
	for len(c.inflight) > 0 && c.inflight[0].done <= now {
		pd := c.inflight[0]
		c.inflight = c.inflight[1:]
		if pd.req.OnComplete != nil {
			pd.req.OnComplete(pd.req, pd.done)
		}
		c.recycle(pd.req)
	}
	for len(c.fwdDone) > 0 && c.fwdDone[0].done <= now {
		pd := c.fwdDone[0]
		c.fwdDone = c.fwdDone[1:]
		if pd.req.OnComplete != nil {
			pd.req.OnComplete(pd.req, pd.done)
		}
		c.recycle(pd.req)
	}
}

func (c *Controller) updateRefresh(now int64) {
	for r := range c.nextRefresh {
		if !c.refPending[r] && now >= c.nextRefresh[r] {
			c.refPending[r] = true
		}
	}
}

func (c *Controller) updateDrain() {
	if !c.drain && len(c.writeQ) >= c.cfg.WriteHi {
		c.drain = true
		c.stats.DrainEntries++
	}
	if c.drain && len(c.writeQ) <= c.cfg.WriteLo {
		c.drain = false
	}
	// A read queue whose every entry is held by regulation is effectively
	// empty: let buffered writes use the otherwise-forfeited cycles.
	wm := c.drain || (len(c.readQ)-c.heldReads == 0 && len(c.writeQ) > 0)
	if wm != c.writeMode {
		c.writeMode = wm
		// Direction flip: the scan's active queue changed.
		c.dirtyCand()
	}
}

// account feeds the bandwidth-stack accountant with this cycle's channel
// state and maintains the cumulative wait counters for latency stacks.
func (c *Controller) account(now int64) {
	view := stacks.CycleView{
		Data:       c.dev.ConsumeBusKind(now),
		Refreshing: c.dev.AnyRefreshing(now),
		DataSource: stacks.SourceShared,
		RegSource:  stacks.SourceShared,
	}
	if c.qosTrack && view.Data != dram.DataNone {
		view.DataSource = c.busOwnerAt(now)
	}
	if view.Data == dram.DataNone && !view.Refreshing {
		c.markBlocked(now)
		var preMask, actMask uint64
		for b := 0; b < c.banks; b++ {
			pre, act := c.dev.BankBusy(b, now)
			if pre {
				preMask |= 1 << b
			}
			if act {
				actMask |= 1 << b
			}
		}
		view.PreMask = preMask
		view.ActMask = actMask
		view.BlockedMask = c.blockedMask
		if c.writeMode {
			view.Pending = len(c.writeQ) > 0
		} else {
			// Held reads are not pending: a cycle lost because every
			// waiting read was over budget is regulation, not constraints.
			view.Pending = len(c.readQ)-c.heldReads > 0
		}
		if preMask|actMask|c.blockedMask == 0 && view.Pending && c.issuedCycle != now {
			// Nothing bank-attributable, yet a pending request did not
			// progress: a channel-level condition is in the way.
			view.ChannelBlocked = true
		}
		if preMask|actMask|c.blockedMask == 0 && !view.Pending &&
			c.heldReads > 0 && c.issuedCycle != now {
			// The channel sat unused only because every waiting read was
			// held by its source's budget: a regulation cycle, charged to
			// the oldest held read's source.
			view.Regulated = true
			view.RegSource = c.oldestHeldSource()
		}
	}
	c.bw.Account(view)

	if c.qosReg && c.heldReads > 0 {
		// A held source with queued reads pays one regulation cycle: the
		// basis of the latency stacks' "regulated" component.
		for s := range c.qosHeld {
			if c.qosHeld[s] && c.readsBySrc[s] > 0 {
				c.cumReg[s]++
			}
		}
	}

	if view.Refreshing {
		c.cumRefresh++
	} else if c.writeMode {
		c.cumDrainOnly++
	}
	c.stats.Cycles++
	c.stats.ReadQueueCycles += int64(len(c.readQ))
	c.stats.WriteQueueCycles += int64(len(c.writeQ))
	if len(c.readQ) > c.stats.MaxReadQueue {
		c.stats.MaxReadQueue = len(c.readQ)
	}
	if len(c.writeQ) > c.stats.MaxWriteQueue {
		c.stats.MaxWriteQueue = len(c.writeQ)
	}
	c.sampler.MaybeCut(now + 1)
}

// busOwnerAt returns the source whose data occupies the bus at cycle
// now, dropping expired windows from the FIFO.
func (c *Controller) busOwnerAt(now int64) int {
	for len(c.busOwner) > 0 && c.busOwner[0].end <= now {
		c.busOwner = c.busOwner[1:]
	}
	if len(c.busOwner) > 0 && c.busOwner[0].start <= now {
		return c.busOwner[0].src
	}
	return stacks.SourceShared
}

// oldestHeldSource returns the source of the oldest held read (the
// queue is in arrival order), or stacks.SourceShared if none is found.
func (c *Controller) oldestHeldSource() int {
	for _, req := range c.readQ {
		if c.heldReq(req) {
			return req.src
		}
	}
	return stacks.SourceShared
}

// readDone computes a finished read's latency decomposition and records
// it in the latency stack. Called at column-command issue, when the data
// timing is fully determined.
func (c *Controller) readDone(req *Request, colAt int64) {
	_, dataEnd := c.dev.DataWindow(dram.CmdRD, colAt)
	done := dataEnd + int64(c.cfg.CtrlLatency)
	c.inflight = append(c.inflight, pendingDone{req, done})

	var r stacks.ReadLatency
	r.Total = done - req.arrive
	r.Components[stacks.LatBaseCtrl] = float64(c.cfg.CtrlLatency)
	r.Components[stacks.LatBaseDRAM] = float64(c.tim.CL + c.tim.BL2)
	preact := float64(req.ownPre + req.ownAct)
	refresh := float64(c.cumRefresh - req.refSnap)
	burst := float64(c.cumDrainOnly - req.drainSnap)
	var regulated float64
	if c.qosReg && req.src >= 0 && req.src < len(c.cumReg) {
		regulated = float64(c.cumReg[req.src] - req.regSnap)
	}
	queue := float64(colAt-req.arrive) - preact - refresh - burst - regulated
	// The wait components can overlap in corner cases (e.g. a drain
	// begins while this request's activate is in flight); shave the
	// overlap so the components still sum to the total. Regulated comes
	// last: a cycle that was both held and waiting stays regulated.
	for _, comp := range []*float64{&burst, &refresh, &preact, &regulated} {
		if queue >= 0 {
			break
		}
		take := -queue
		if take > *comp {
			take = *comp
		}
		*comp -= take
		queue += take
	}
	if queue < 0 {
		queue = 0
	}
	r.Components[stacks.LatPreAct] = preact
	r.Components[stacks.LatRefresh] = refresh
	r.Components[stacks.LatWriteBurst] = burst
	r.Components[stacks.LatQueue] = queue
	r.Components[stacks.LatRegulated] = regulated
	req.lat = r
	c.lat.AddRead(r)
	if c.latSrc != nil {
		c.latSrc[c.srcRow(req.src)].AddRead(r)
	}
	c.hist.Add(r.Total)
}

func (c *Controller) classifyPage(req *Request) {
	switch {
	case req.ownPre > 0:
		c.stats.PageMiss++
	case req.ownAct > 0:
		c.stats.PageEmpty++
	default:
		c.stats.PageHits++
	}
}

func (c *Controller) bankIndex(l dram.Loc) int {
	return (l.Rank*c.geo.Groups+l.Group)*c.geo.Banks + l.Bank
}

func removeReq(q []*Request, req *Request) []*Request {
	for i, r := range q {
		if r == req {
			return append(q[:i], q[i+1:]...)
		}
	}
	panic(fmt.Sprintf("memctrl: request %p not in queue", req))
}
