package memctrl

import (
	"math/rand"
	"testing"

	"dramstacks/internal/addrmap"
	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// rig bundles a controller with a verifier-checked device for tests.
type rig struct {
	t    *testing.T
	geo  dram.Geometry
	tim  dram.Timing
	dev  *dram.Device
	ctrl *Controller
	ver  *dram.Verifier
	now  int64
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	geo, tim := dram.DDR4_2400()
	dev := dram.NewDevice(geo, tim)
	ver := dram.NewVerifier(geo, tim)
	dev.Trace = func(cycle int64, cmd dram.Command) {
		if vs := ver.Check(cycle, cmd); vs != nil {
			t.Fatalf("timing violation: %v", vs[0])
		}
	}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	ctrl, err := New(dev, addrmap.MustDefault(geo, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, geo: geo, tim: tim, dev: dev, ctrl: ctrl, ver: ver}
}

func (r *rig) run(cycles int64) {
	for end := r.now + cycles; r.now < end; r.now++ {
		r.ctrl.Tick(r.now)
	}
}

// runUntil ticks until cond returns true, failing the test after limit.
func (r *rig) runUntil(limit int64, cond func() bool) {
	for end := r.now + limit; r.now < end; r.now++ {
		if cond() {
			return
		}
		r.ctrl.Tick(r.now)
	}
	if !cond() {
		r.t.Fatalf("condition not reached within %d cycles", limit)
	}
}

// addr builds a physical address from DRAM coordinates via the default map.
func (r *rig) addr(group, bank, row, col int) uint64 {
	m := addrmap.MustDefault(r.geo, 1)
	return m.Encode(dram.Loc{Group: group, Bank: bank, Row: row, Col: col})
}

func TestSingleReadLatency(t *testing.T) {
	r := newRig(t, nil)
	var done int64 = -1
	_, ok := r.ctrl.EnqueueRead(0, r.addr(0, 0, 3, 5), func(_ *Request, at int64) { done = at }, nil)
	if !ok {
		t.Fatal("enqueue failed")
	}
	r.runUntil(1000, func() bool { return done >= 0 })

	// Cold access: ACT at ~0, RD at tRCD, data end at +CL+BL2, plus the
	// controller pipeline.
	want := int64(r.tim.RCD+r.tim.CL+r.tim.BL2) + int64(r.ctrl.cfg.CtrlLatency)
	if done != want {
		t.Errorf("read completed at %d, want %d", done, want)
	}

	ls := r.ctrl.LatencyStack()
	if ls.Reads != 1 {
		t.Fatalf("latency stack reads = %d", ls.Reads)
	}
	comp := ls.SumCycles
	if comp[stacks.LatBaseCtrl] != float64(r.ctrl.cfg.CtrlLatency) {
		t.Errorf("base-cntlr = %v", comp[stacks.LatBaseCtrl])
	}
	if comp[stacks.LatBaseDRAM] != float64(r.tim.CL+r.tim.BL2) {
		t.Errorf("base-dram = %v", comp[stacks.LatBaseDRAM])
	}
	if comp[stacks.LatPreAct] != float64(r.tim.RCD) {
		t.Errorf("act/pre = %v, want %v (one activate)", comp[stacks.LatPreAct], r.tim.RCD)
	}
	if comp[stacks.LatQueue] != 0 {
		t.Errorf("queue = %v, want 0 for an uncontended read", comp[stacks.LatQueue])
	}
}

func TestPageHitVsMissClassification(t *testing.T) {
	r := newRig(t, nil)
	fire := func(a uint64) {
		ok := false
		r.ctrl.EnqueueRead(r.now, a, func(*Request, int64) { ok = true }, nil)
		r.runUntil(2000, func() bool { return ok })
	}
	fire(r.addr(0, 0, 1, 0)) // empty (bank closed)
	fire(r.addr(0, 0, 1, 1)) // hit (same row)
	fire(r.addr(0, 0, 2, 0)) // miss (conflict: row 1 open)
	s := r.ctrl.Stats()
	if s.PageEmpty != 1 || s.PageHits != 1 || s.PageMiss != 1 {
		t.Errorf("classification = hits %d empty %d miss %d, want 1/1/1",
			s.PageHits, s.PageEmpty, s.PageMiss)
	}
}

func TestRowHitsServedBeforeOlderConflict(t *testing.T) {
	r := newRig(t, nil)
	// Open row 1.
	warm := false
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 1, 0), func(*Request, int64) { warm = true }, nil)
	r.runUntil(2000, func() bool { return warm })

	// Enqueue a conflict (row 2) then a hit (row 1) in the same cycle:
	// FR-FCFS serves the hit first.
	var conflictAt, hitAt int64 = -1, -1
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 2, 0), func(_ *Request, at int64) { conflictAt = at }, nil)
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 1, 7), func(_ *Request, at int64) { hitAt = at }, nil)
	r.runUntil(4000, func() bool { return conflictAt >= 0 && hitAt >= 0 })
	if hitAt >= conflictAt {
		t.Errorf("row hit finished at %d, conflict at %d: want hit first", hitAt, conflictAt)
	}
}

func TestStoreForwarding(t *testing.T) {
	r := newRig(t, nil)
	a := r.addr(1, 2, 3, 4)
	if _, ok := r.ctrl.EnqueueWrite(0, a, nil, nil); !ok {
		t.Fatal("write enqueue failed")
	}
	var req *Request
	done := false
	req, _ = r.ctrl.EnqueueRead(0, a, func(*Request, int64) { done = true }, nil)
	if !req.Forwarded() {
		t.Error("read to buffered line not forwarded")
	}
	r.runUntil(1000, func() bool { return done })
	if got := r.ctrl.Stats().ForwardedReads; got != 1 {
		t.Errorf("forwarded reads = %d, want 1", got)
	}
	// A forwarded read never issues a DRAM read command.
	r.runUntil(5000, func() bool { return r.ctrl.Stats().IssuedWrites == 1 })
	if got := r.ctrl.Stats().IssuedReads; got != 0 {
		t.Errorf("issued DRAM reads = %d, want 0", got)
	}
}

func TestWriteCoalescing(t *testing.T) {
	r := newRig(t, nil)
	a := r.addr(0, 0, 1, 1)
	r.ctrl.EnqueueWrite(0, a, nil, nil)
	merged := false
	r.ctrl.EnqueueWrite(0, a, func(*Request, int64) { merged = true }, nil)
	if !merged {
		t.Error("coalesced write did not complete immediately")
	}
	if got := r.ctrl.Stats().CoalescedWrites; got != 1 {
		t.Errorf("coalesced = %d, want 1", got)
	}
	if _, w := r.ctrl.QueueLens(); w != 1 {
		t.Errorf("write queue holds %d entries, want 1", w)
	}
}

func TestWriteBurstDrain(t *testing.T) {
	r := newRig(t, nil)
	cfg := r.ctrl.cfg
	// Fill the write buffer to the high watermark with distinct rows so
	// the drain does real work.
	for i := 0; i < cfg.WriteHi; i++ {
		if _, ok := r.ctrl.EnqueueWrite(0, r.addr(i%4, (i/4)%4, i, 0), nil, nil); !ok {
			t.Fatalf("write %d rejected", i)
		}
	}
	r.runUntil(200000, func() bool { _, w := r.ctrl.QueueLens(); return w <= cfg.WriteLo })
	s := r.ctrl.Stats()
	if s.DrainEntries != 1 {
		t.Errorf("drain entries = %d, want 1", s.DrainEntries)
	}
	if s.IssuedWrites < int64(cfg.WriteHi-cfg.WriteLo) {
		t.Errorf("issued writes = %d, want >= %d", s.IssuedWrites, cfg.WriteHi-cfg.WriteLo)
	}
}

func TestReadDelayedByWriteBurstGetsWriteburstComponent(t *testing.T) {
	r := newRig(t, nil)
	for i := 0; i < r.ctrl.cfg.WriteHi; i++ {
		r.ctrl.EnqueueWrite(0, r.addr(i%4, (i/4)%4, i, 0), nil, nil)
	}
	r.ctrl.Tick(r.now) // enter drain mode
	r.now++
	done := false
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 999, 0), func(*Request, int64) { done = true }, nil)
	r.runUntil(200000, func() bool { return done })
	ls := r.ctrl.LatencyStack()
	if ls.SumCycles[stacks.LatWriteBurst] <= 0 {
		t.Errorf("writeburst component = %v, want > 0 for a read behind a drain",
			ls.SumCycles[stacks.LatWriteBurst])
	}
}

func TestRefreshHappensEveryREFI(t *testing.T) {
	r := newRig(t, nil)
	cycles := int64(10 * r.tim.REFI)
	r.run(cycles)
	want := cycles / int64(r.tim.REFI)
	got := r.ctrl.Stats().Refreshes
	if got < want-1 || got > want+1 {
		t.Errorf("refreshes = %d over %d cycles, want about %d", got, cycles, want)
	}
	bw := r.ctrl.BandwidthStack()
	frac := bw.Fraction(stacks.BWRefresh)
	wantFrac := float64(r.tim.RFC) / float64(r.tim.REFI)
	if frac < wantFrac*0.8 || frac > wantFrac*1.2 {
		t.Errorf("refresh fraction = %v, want about %v", frac, wantFrac)
	}
	// An otherwise idle channel: everything else is idle.
	if idle := bw.Fraction(stacks.BWIdle); idle < 0.9-wantFrac {
		t.Errorf("idle fraction = %v, want about %v", idle, 1-wantFrac)
	}
}

func TestRefreshDelaysReadAndIsAttributed(t *testing.T) {
	r := newRig(t, nil)
	// Get right up to the refresh deadline, then enqueue a read during
	// the refresh.
	r.run(int64(r.tim.REFI) + 2)
	if !r.dev.AnyRefreshing(r.now) {
		t.Fatal("expected an in-flight refresh just after tREFI")
	}
	done := false
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 1, 0), func(*Request, int64) { done = true }, nil)
	r.runUntil(int64(r.tim.RFC)+2000, func() bool { return done })
	ls := r.ctrl.LatencyStack()
	if ls.SumCycles[stacks.LatRefresh] <= 0 {
		t.Errorf("refresh latency component = %v, want > 0", ls.SumCycles[stacks.LatRefresh])
	}
}

func TestClosedPagePolicyAutoPrecharges(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Policy = ClosedPage })
	done := false
	r.ctrl.EnqueueRead(0, r.addr(0, 0, 1, 0), func(*Request, int64) { done = true }, nil)
	r.runUntil(2000, func() bool { return done })
	r.run(100) // let the auto-precharge land
	// Second access to the same row: the page was closed, so it is an
	// "empty" access again, not a hit.
	done = false
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 1, 1), func(*Request, int64) { done = true }, nil)
	r.runUntil(2000, func() bool { return done })
	s := r.ctrl.Stats()
	if s.PageEmpty != 2 || s.PageHits != 0 {
		t.Errorf("closed policy: empty %d hits %d, want 2/0", s.PageEmpty, s.PageHits)
	}
	if r.dev.Stats().PRE != 0 {
		t.Errorf("explicit PRE count = %d, want 0 (auto-precharge only)", r.dev.Stats().PRE)
	}
}

func TestOpenPageKeepsRowOpen(t *testing.T) {
	r := newRig(t, nil)
	done := false
	r.ctrl.EnqueueRead(0, r.addr(0, 0, 1, 0), func(*Request, int64) { done = true }, nil)
	r.runUntil(2000, func() bool { return done })
	r.run(100)
	done = false
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 1, 1), func(*Request, int64) { done = true }, nil)
	r.runUntil(2000, func() bool { return done })
	s := r.ctrl.Stats()
	if s.PageHits != 1 {
		t.Errorf("open policy: hits = %d, want 1", s.PageHits)
	}
}

func TestReadQueueBackpressure(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReadQueueCap = 4 })
	for i := 0; i < 4; i++ {
		if _, ok := r.ctrl.EnqueueRead(0, r.addr(0, 0, i, 0), nil, nil); !ok {
			t.Fatalf("read %d rejected below capacity", i)
		}
	}
	if _, ok := r.ctrl.EnqueueRead(0, r.addr(0, 0, 9, 0), nil, nil); ok {
		t.Error("read accepted beyond capacity")
	}
	if _, ok := r.ctrl.EnqueueWrite(0, r.addr(0, 0, 1, 1), nil, nil); !ok {
		t.Error("write rejected while write queue empty")
	}
}

func TestBandwidthStackSumInvariantUnderRandomLoad(t *testing.T) {
	r := newRig(t, nil)
	rng := rand.New(rand.NewSource(7))
	outstanding := 0
	cycles := int64(120000)
	for ; r.now < cycles; r.now++ {
		if rng.Intn(3) == 0 && outstanding < 48 {
			a := uint64(rng.Intn(1<<26)) &^ 63
			if rng.Intn(4) == 0 {
				r.ctrl.EnqueueWrite(r.now, a, nil, nil)
			} else if _, ok := r.ctrl.EnqueueRead(r.now, a, func(*Request, int64) { outstanding-- }, nil); ok {
				outstanding++
			}
		}
		r.ctrl.Tick(r.now)
	}
	bw := r.ctrl.BandwidthStack()
	if bw.TotalCycles != cycles {
		t.Errorf("accounted cycles = %d, want %d", bw.TotalCycles, cycles)
	}
	if err := bw.CheckSum(); err != nil {
		t.Error(err)
	}
	ls := r.ctrl.LatencyStack()
	if ls.Reads == 0 {
		t.Fatal("no reads completed")
	}
	// All components non-negative.
	for c, v := range ls.SumCycles {
		if v < 0 {
			t.Errorf("latency component %v negative: %v", stacks.LatComponent(c), v)
		}
	}
	if r.ver.Checked() == 0 {
		t.Fatal("verifier saw no commands")
	}
}

func TestThroughTimeSampling(t *testing.T) {
	r := newRig(t, func(c *Config) { c.SampleInterval = 10000 })
	done := 0
	for i := 0; i < 20; i++ {
		r.ctrl.EnqueueRead(0, r.addr(i%4, 0, i, 0), func(*Request, int64) { done++ }, nil)
	}
	r.run(45000)
	r.ctrl.FinishSampling()
	samples := r.ctrl.Samples()
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5 (4 full + final partial)", len(samples))
	}
	var total int64
	for _, s := range samples {
		if err := s.BW.CheckSum(); err != nil {
			t.Errorf("sample [%d,%d): %v", s.Start, s.End, err)
		}
		total += s.BW.TotalCycles
	}
	if total != 45000 {
		t.Errorf("samples cover %d cycles, want 45000", total)
	}
}

func TestSequentialStreamPageHitRate(t *testing.T) {
	// A back-pressured sequential stream: page hit rate should be very
	// high (the paper reports 99% for the sequential pattern).
	r := newRig(t, nil)
	next := uint64(0)
	inflight := 0
	for ; r.now < 200000; r.now++ {
		for inflight < 16 {
			if _, ok := r.ctrl.EnqueueRead(r.now, next, func(*Request, int64) { inflight-- }, nil); !ok {
				break
			}
			inflight++
			next += 64
		}
		r.ctrl.Tick(r.now)
	}
	s := r.ctrl.Stats()
	if hr := s.PageHitRate(); hr < 0.97 {
		t.Errorf("sequential page hit rate = %v, want > 0.97", hr)
	}
	bw := r.ctrl.BandwidthStack()
	if err := bw.CheckSum(); err != nil {
		t.Error(err)
	}
	// Saturated single stream: most lost bandwidth is constraints +
	// bank-idle (tCCD_L limits one bank group), with essentially no idle.
	if idle := bw.Fraction(stacks.BWIdle); idle > 0.05 {
		t.Errorf("idle fraction = %v, want < 0.05 under backpressure", idle)
	}
	read := bw.Fraction(stacks.BWRead)
	if read < 0.5 || read > 0.72 {
		t.Errorf("read fraction = %v, want about 2/3 (tCCD_L=6 vs BL/2=4)", read)
	}
}

func TestConfigValidation(t *testing.T) {
	geo, tim := dram.DDR4_2400()
	dev := dram.NewDevice(geo, tim)
	m := addrmap.MustDefault(geo, 1)
	bad := []func(*Config){
		func(c *Config) { c.ReadQueueCap = 0 },
		func(c *Config) { c.WriteQueueCap = 0 },
		func(c *Config) { c.WriteHi = c.WriteLo },
		func(c *Config) { c.WriteHi = c.WriteQueueCap + 1 },
		func(c *Config) { c.WriteLo = -1; c.WriteHi = 0 },
		func(c *Config) { c.CtrlLatency = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(dev, m, cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}
