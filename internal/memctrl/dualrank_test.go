package memctrl

import (
	"math/rand"
	"testing"

	"dramstacks/internal/addrmap"
	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// newDualRig builds a dual-rank controller with a verifying device.
func newDualRig(t *testing.T) *rig {
	t.Helper()
	geo, tim := dram.DDR4_2400_DualRank()
	dev := dram.NewDevice(geo, tim)
	ver := dram.NewVerifier(geo, tim)
	dev.Trace = func(cycle int64, cmd dram.Command) {
		if vs := ver.Check(cycle, cmd); vs != nil {
			t.Fatalf("timing violation: %v", vs[0])
		}
	}
	ctrl, err := New(dev, addrmap.MustDefault(geo, 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, geo: geo, tim: tim, dev: dev, ctrl: ctrl, ver: ver}
}

func TestDualRankControllerServesBothRanks(t *testing.T) {
	r := newDualRig(t)
	m := addrmap.MustDefault(r.geo, 1)
	done := 0
	for rank := 0; rank < 2; rank++ {
		for i := 0; i < 8; i++ {
			addr := m.Encode(dram.Loc{Rank: rank, Group: i % 4, Row: i, Col: i})
			if _, ok := r.ctrl.EnqueueRead(0, addr, func(*Request, int64) { done++ }, nil); !ok {
				t.Fatalf("rank %d read %d rejected", rank, i)
			}
		}
	}
	r.runUntil(50_000, func() bool { return done == 16 })
	if got := r.ctrl.Stats().IssuedReads; got != 16 {
		t.Errorf("issued reads = %d, want 16", got)
	}
}

func TestDualRankRefreshesBothRanksIndependently(t *testing.T) {
	r := newDualRig(t)
	r.run(int64(r.tim.REFI) * 4)
	// Two ranks, staggered: about 2 refreshes per tREFI window in total.
	got := r.ctrl.Stats().Refreshes
	if got < 6 || got > 10 {
		t.Errorf("refreshes = %d over 4 tREFI with 2 ranks, want about 8", got)
	}
	if err := r.ctrl.BandwidthStack().CheckSum(); err != nil {
		t.Error(err)
	}
}

func TestDualRankRandomLoadVerified(t *testing.T) {
	r := newDualRig(t)
	rng := rand.New(rand.NewSource(3))
	outstanding := 0
	for ; r.now < 80_000; r.now++ {
		if rng.Intn(2) == 0 && outstanding < 48 {
			a := uint64(rng.Intn(1<<28)) &^ 63 // spans both ranks
			if rng.Intn(4) == 0 {
				r.ctrl.EnqueueWrite(r.now, a, nil, nil)
			} else if _, ok := r.ctrl.EnqueueRead(r.now, a, func(*Request, int64) { outstanding-- }, nil); ok {
				outstanding++
			}
		}
		r.ctrl.Tick(r.now)
	}
	if r.ver.Checked() == 0 {
		t.Fatal("no commands verified")
	}
	s := r.ctrl.BandwidthStack()
	if err := s.CheckSum(); err != nil {
		t.Error(err)
	}
	if s.Banks != 32 {
		t.Errorf("stack banks = %d, want 32", s.Banks)
	}
}

func TestFlatConstraintsStillSums(t *testing.T) {
	geo, tim := dram.DDR4_2400()
	dev := dram.NewDevice(geo, tim)
	cfg := DefaultConfig()
	cfg.FlatConstraints = true
	ctrl := MustNew(dev, addrmap.MustDefault(geo, 1), cfg)
	next := uint64(0)
	inflight := 0
	for now := int64(0); now < 60_000; now++ {
		for inflight < 16 {
			if _, ok := ctrl.EnqueueRead(now, next, func(*Request, int64) { inflight-- }, nil); !ok {
				break
			}
			inflight++
			next += 64
		}
		ctrl.Tick(now)
	}
	s := ctrl.BandwidthStack()
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	// Flat attribution keeps constraints tiny: the single blocked bank's
	// 1/16 share.
	if c := s.Fraction(stacks.BWConstraints); c > 0.05 {
		t.Errorf("flat constraints fraction = %v, want small", c)
	}
}

func TestClosedKeepOpenValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClosedKeepOpen = 0
	if err := cfg.Validate(); err == nil {
		t.Error("ClosedKeepOpen=0 accepted")
	}
}
