package memctrl

import (
	"testing"
)

// TestFCFSServesInArrivalOrder: under strict FCFS, a younger row hit may
// not overtake an older row conflict on the same bank.
func TestFCFSServesInArrivalOrder(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Sched = FCFS })
	// Open row 1.
	warm := false
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 1, 0), func(*Request, int64) { warm = true }, nil)
	r.runUntil(2000, func() bool { return warm })

	var conflictAt, hitAt int64 = -1, -1
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 2, 0), func(_ *Request, at int64) { conflictAt = at }, nil)
	r.ctrl.EnqueueRead(r.now, r.addr(0, 0, 1, 7), func(_ *Request, at int64) { hitAt = at }, nil)
	r.runUntil(4000, func() bool { return conflictAt >= 0 && hitAt >= 0 })
	if conflictAt >= hitAt {
		t.Errorf("FCFS: older conflict finished at %d, younger hit at %d: want conflict first",
			conflictAt, hitAt)
	}
}

// TestFRFCFSBeatsFCFSOnMixedStreams: with interleaved streams to two
// rows of one bank, first-ready scheduling preserves far more page hits.
func TestFRFCFSBeatsFCFSOnMixedStreams(t *testing.T) {
	run := func(sched Scheduler) (hitRate float64, cycles int64) {
		r := newRig(t, func(c *Config) { c.Sched = sched })
		done := 0
		// Alternate two sequential streams in different rows of the
		// same bank: FR-FCFS batches each row's hits, FCFS ping-pongs.
		n := 0
		for ; r.now < 120_000; r.now++ {
			for pending, _ := r.ctrl.QueueLens(); pending < 16 && n < 512; pending++ {
				row := 1 + n%2
				col := (n / 2) % 128
				r.ctrl.EnqueueRead(r.now, r.addr(0, 0, row, col), func(*Request, int64) { done++ }, nil)
				n++
			}
			r.ctrl.Tick(r.now)
			if done == 512 {
				break
			}
		}
		if done != 512 {
			t.Fatalf("%v: only %d reads completed", sched, done)
		}
		return r.ctrl.Stats().PageHitRate(), r.now
	}
	frHit, frCycles := run(FRFCFS)
	fcHit, fcCycles := run(FCFS)
	if frHit <= fcHit {
		t.Errorf("page hit rate: fr-fcfs %.2f not above fcfs %.2f", frHit, fcHit)
	}
	if frCycles >= fcCycles {
		t.Errorf("runtime: fr-fcfs %d cycles not below fcfs %d", frCycles, fcCycles)
	}
}

func TestSchedulerString(t *testing.T) {
	if FRFCFS.String() != "fr-fcfs" || FCFS.String() != "fcfs" {
		t.Errorf("scheduler names wrong: %q %q", FRFCFS.String(), FCFS.String())
	}
}

func TestQueueDepthStats(t *testing.T) {
	r := newRig(t, nil)
	for i := 0; i < 8; i++ {
		r.ctrl.EnqueueRead(0, r.addr(i%4, 0, i, 0), nil, nil)
	}
	r.run(2000)
	s := r.ctrl.Stats()
	if s.Cycles != 2000 {
		t.Fatalf("cycles = %d", s.Cycles)
	}
	if s.MaxReadQueue < 8 {
		t.Errorf("max read queue = %d, want >= 8", s.MaxReadQueue)
	}
	if s.AvgReadQueueDepth() <= 0 {
		t.Error("avg read queue depth not positive")
	}
	if s.AvgWriteQueueDepth() != 0 {
		t.Errorf("avg write queue depth = %v, want 0", s.AvgWriteQueueDepth())
	}
}

func TestBankAccessStatsAndImbalance(t *testing.T) {
	r := newRig(t, nil)
	done := 0
	// 12 reads to one bank, none elsewhere: maximal imbalance.
	for i := 0; i < 12; i++ {
		r.ctrl.EnqueueRead(0, r.addr(0, 0, i, 0), func(*Request, int64) { done++ }, nil)
	}
	r.runUntil(50_000, func() bool { return done == 12 })
	s := r.ctrl.Stats()
	if s.BankAccesses[0] != 12 {
		t.Errorf("bank 0 accesses = %d, want 12", s.BankAccesses[0])
	}
	if got := s.BankImbalance(16); got != 16 {
		t.Errorf("imbalance = %v, want 16 (all traffic on one of 16 banks)", got)
	}
	if got := (Stats{}).BankImbalance(16); got != 0 {
		t.Errorf("empty imbalance = %v, want 0", got)
	}
}

// TestRefreshNotStarvedUnderSaturation: a saturating row-hit stream must
// not postpone refreshes — the controller blocks new work on the rank
// once a refresh is due and fires it as soon as tRAS/tRTP allow.
func TestRefreshNotStarvedUnderSaturation(t *testing.T) {
	r := newRig(t, nil)
	next := uint64(0)
	inflight := 0
	cycles := int64(4 * r.tim.REFI)
	for ; r.now < cycles; r.now++ {
		for inflight < 32 {
			if _, ok := r.ctrl.EnqueueRead(r.now, next, func(*Request, int64) { inflight-- }, nil); !ok {
				break
			}
			inflight++
			next += 64
		}
		r.ctrl.Tick(r.now)
	}
	got := r.ctrl.Stats().Refreshes
	if got < 3 || got > 5 {
		t.Errorf("refreshes = %d over 4 tREFI under saturation, want about 4", got)
	}
}
