package qos

import (
	"strings"
	"testing"
)

func TestParseEmpty(t *testing.T) {
	cfg, err := Parse("", 4)
	if err != nil {
		t.Fatalf("Parse empty: %v", err)
	}
	if cfg.Enabled() {
		t.Fatalf("empty policy must be disabled, got %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	if got := cfg.String(); got != "" {
		t.Fatalf("zero config String = %q, want empty", got)
	}
}

func TestParseFull(t *testing.T) {
	cfg, err := Parse("win=1024,cap=1:16,cap=3:8,rt=0,aging=4096", 4)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !cfg.Enabled() || cfg.Sources != 4 {
		t.Fatalf("Sources = %d, want 4", cfg.Sources)
	}
	if cfg.Window != 1024 {
		t.Fatalf("Window = %d, want 1024", cfg.Window)
	}
	if cfg.SourceBudget(1) != 16 || cfg.SourceBudget(3) != 8 {
		t.Fatalf("budgets = %v", cfg.Budget)
	}
	if cfg.SourceBudget(0) != 0 || cfg.SourceBudget(2) != 0 {
		t.Fatalf("unset budgets must be 0, got %v", cfg.Budget)
	}
	if !cfg.SourceRT(0) || cfg.SourceRT(1) {
		t.Fatalf("RT = %v", cfg.RT)
	}
	if cfg.Aging != 4096 || cfg.AgingBound() != 4096 {
		t.Fatalf("Aging = %d", cfg.Aging)
	}
	if !cfg.Regulates() || !cfg.Prioritizes() {
		t.Fatalf("Regulates/Prioritizes: %+v", cfg)
	}
}

func TestParseDefaultWindow(t *testing.T) {
	cfg, err := Parse("cap=0:32", 2)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Window != DefaultWindow {
		t.Fatalf("Window = %d, want DefaultWindow %d", cfg.Window, DefaultWindow)
	}
	if cfg.AgingBound() != DefaultAging {
		t.Fatalf("AgingBound = %d, want DefaultAging %d", cfg.AgingBound(), DefaultAging)
	}
}

func TestParseRTOnlyNoWindow(t *testing.T) {
	cfg, err := Parse("rt=1", 2)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Window != 0 {
		t.Fatalf("rt-only policy must not force a window, got %d", cfg.Window)
	}
	if cfg.Regulates() {
		t.Fatalf("rt-only policy must not regulate")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		sources int
		wantSub string
	}{
		{"cap=0:8", 0, "source count"},
		{"bogus=1", 4, "unknown directive"},
		{"win", 4, "malformed"},
		{"win=", 4, "malformed"},
		{"win=-5", 4, "positive"},
		{"win=0", 4, "positive"},
		{"aging=0", 4, "positive"},
		{"cap=8", 4, "source:budget"},
		{"cap=4:8", 4, "out of range"},
		{"cap=-1:8", 4, "non-negative"},
		{"cap=0:0", 4, "positive"},
		{"cap=0:x", 4, "positive"},
		{"cap=0:8,cap=0:4", 4, "duplicate cap"},
		{"rt=4", 4, "out of range"},
		{"rt=0,rt=0", 4, "duplicate rt"},
		{"rt=a", 4, "non-negative"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.in, tc.sources); err == nil {
			t.Errorf("Parse(%q, %d): expected error", tc.in, tc.sources)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q, %d): error %q missing %q", tc.in, tc.sources, err, tc.wantSub)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"win=1024,cap=1:16,cap=3:8,rt=0,aging=4096",
		"cap=0:32",
		"rt=1",
		"win=512,cap=0:4",
		"rt=0,rt=2,aging=100",
	} {
		cfg, err := Parse(in, 4)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		s := cfg.String()
		cfg2, err := Parse(s, 4)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s, err)
		}
		if cfg2.String() != s {
			t.Errorf("String not a fixed point: %q -> %q -> %q", in, s, cfg2.String())
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Window: 5},                          // window without sources
		{Sources: 65},                        // too many sources
		{Sources: 2, Budget: []int{1, 1, 1}}, // more budgets than sources
		{Sources: 2, RT: []bool{true, false, false}}, // more RT flags than sources
		{Sources: 2, Budget: []int{-1}},              // negative budget
		{Sources: 2, Budget: []int{4}},               // budget without window
		{Sources: 2, Window: -1},                     // negative window
		{Sources: 2, Aging: -1},                      // negative aging
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) accepted a bad config", i, c)
		}
	}
	good := Config{Sources: 2, Window: 100, Budget: []int{0, 8}, RT: []bool{true}, Aging: 50}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v): %v", good, err)
	}
}
