// Package qos defines the multi-tenant quality-of-service policy the
// memory controller enforces: per-source bandwidth budgets over a
// regulation window (requests from an over-budget source are held, not
// scheduled — per-bank/per-source bandwidth regulation in the spirit of
// Sullivan et al.), and a real-time priority tier layered on FR-FCFS
// with an aging bound so low-priority requests cannot starve.
//
// A "source" is the tenant identity a request carries through the whole
// stack — in the simulator it is the requesting core's index. The
// package also owns the compact textual form of a policy (the `qos`
// experiment-spec field, e.g. "win=2048,cap=1:16,rt=0"), so the CLI,
// the sweep engine and the service all speak the same grammar.
package qos

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultWindow is the regulation window, in memory cycles, used when a
// policy sets budgets without naming a window. 2048 memory cycles is
// ~1.7 µs at DDR4-2400: long enough to average over refresh and drain
// bursts, short enough to bound a held request's extra latency.
const DefaultWindow = 2048

// DefaultAging is the starvation bound, in memory cycles, used when a
// policy enables the priority tier without naming one: any request that
// has waited this long is treated as top priority regardless of its
// source, so a stream of real-time misses cannot defer a low-priority
// request indefinitely.
const DefaultAging = 8192

// Config is a complete QoS policy for one memory channel. The zero
// value disables QoS entirely: the controller's scheduling and
// accounting are byte-identical to a build without the feature.
type Config struct {
	// Sources is the number of distinct request sources (cores).
	// 0 disables QoS. Requests without a source identity (external
	// callers, unattributed writebacks) are never regulated or
	// prioritized and account to the shared bucket.
	Sources int

	// Window is the regulation window length in memory cycles. Budgets
	// refill at every absolute window boundary (cycle N*Window), so the
	// refill schedule is independent of traffic history.
	Window int64

	// Budget is the per-source budget of column commands (data bursts)
	// per window, indexed by source; 0 or missing means unregulated.
	// Once a source has issued its budget within the current window its
	// remaining requests are held until the next boundary.
	Budget []int

	// RT marks real-time sources, indexed by source: their requests are
	// scheduled in a priority tier above every non-RT request (FR-FCFS
	// order within each tier).
	RT []bool

	// Aging is the starvation bound in memory cycles (DefaultAging when
	// 0 and the priority tier is in use): a request older than this is
	// promoted into the priority tier whatever its source.
	Aging int64
}

// Enabled reports whether the policy does anything at all.
func (c Config) Enabled() bool { return c.Sources > 0 }

// Regulates reports whether any source has a bandwidth budget.
func (c Config) Regulates() bool {
	for _, b := range c.Budget {
		if b > 0 {
			return true
		}
	}
	return false
}

// Prioritizes reports whether any source is in the real-time tier.
func (c Config) Prioritizes() bool {
	for _, rt := range c.RT {
		if rt {
			return true
		}
	}
	return false
}

// SourceBudget returns src's per-window budget (0 = unregulated).
func (c Config) SourceBudget(src int) int {
	if src < 0 || src >= len(c.Budget) {
		return 0
	}
	return c.Budget[src]
}

// SourceRT reports whether src is in the real-time tier.
func (c Config) SourceRT(src int) bool {
	return src >= 0 && src < len(c.RT) && c.RT[src]
}

// AgingBound returns the effective starvation bound.
func (c Config) AgingBound() int64 {
	if c.Aging > 0 {
		return c.Aging
	}
	return DefaultAging
}

// Validate reports a descriptive error for unusable policies.
func (c Config) Validate() error {
	if !c.Enabled() {
		if c.Window != 0 || len(c.Budget) != 0 || len(c.RT) != 0 || c.Aging != 0 {
			return fmt.Errorf("qos: policy with no sources must be entirely zero")
		}
		return nil
	}
	if c.Sources > 64 {
		return fmt.Errorf("qos: at most 64 sources, got %d", c.Sources)
	}
	if len(c.Budget) > c.Sources {
		return fmt.Errorf("qos: %d budgets for %d sources", len(c.Budget), c.Sources)
	}
	if len(c.RT) > c.Sources {
		return fmt.Errorf("qos: %d RT flags for %d sources", len(c.RT), c.Sources)
	}
	for s, b := range c.Budget {
		if b < 0 {
			return fmt.Errorf("qos: negative budget %d for source %d", b, s)
		}
	}
	if c.Regulates() && c.Window <= 0 {
		return fmt.Errorf("qos: budgets need a positive regulation window, got %d", c.Window)
	}
	if c.Window < 0 || c.Aging < 0 {
		return fmt.Errorf("qos: window and aging must be non-negative")
	}
	return nil
}

// Parse decodes the compact policy grammar into a Config for the given
// number of sources. The grammar is a comma-separated directive list:
//
//	win=N      regulation window in memory cycles (DefaultWindow if
//	           budgets are set without it)
//	cap=S:N    budget of N column commands per window for source S
//	           (repeatable, one source per directive)
//	rt=S       real-time priority for source S (repeatable)
//	aging=N    starvation bound in memory cycles (DefaultAging if the
//	           priority tier is used without it)
//
// "win=2048,cap=1:16,rt=0" regulates source 1 to 16 bursts per 2048
// cycles and serves source 0 in the priority tier. The empty string
// parses to the zero (disabled) Config.
func Parse(s string, sources int) (Config, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Config{}, nil
	}
	if sources <= 0 {
		return Config{}, fmt.Errorf("qos: policy %q needs a positive source count, got %d", s, sources)
	}
	cfg := Config{Sources: sources}
	for _, dir := range strings.Split(s, ",") {
		dir = strings.TrimSpace(dir)
		key, val, ok := strings.Cut(dir, "=")
		if !ok || val == "" {
			return Config{}, fmt.Errorf("qos: malformed directive %q (want key=value)", dir)
		}
		switch key {
		case "win":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("qos: window %q must be a positive integer", val)
			}
			cfg.Window = n
		case "aging":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("qos: aging %q must be a positive integer", val)
			}
			cfg.Aging = n
		case "cap":
			srcStr, capStr, ok := strings.Cut(val, ":")
			if !ok {
				return Config{}, fmt.Errorf("qos: cap %q wants source:budget", val)
			}
			src, err := parseSource(srcStr, sources)
			if err != nil {
				return Config{}, err
			}
			n, err := strconv.Atoi(capStr)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("qos: budget %q must be a positive integer", capStr)
			}
			if len(cfg.Budget) <= src {
				cfg.Budget = append(cfg.Budget, make([]int, src+1-len(cfg.Budget))...)
			}
			if cfg.Budget[src] != 0 {
				return Config{}, fmt.Errorf("qos: duplicate cap for source %d", src)
			}
			cfg.Budget[src] = n
		case "rt":
			src, err := parseSource(val, sources)
			if err != nil {
				return Config{}, err
			}
			if len(cfg.RT) <= src {
				cfg.RT = append(cfg.RT, make([]bool, src+1-len(cfg.RT))...)
			}
			if cfg.RT[src] {
				return Config{}, fmt.Errorf("qos: duplicate rt for source %d", src)
			}
			cfg.RT[src] = true
		default:
			return Config{}, fmt.Errorf("qos: unknown directive %q (want win, cap, rt or aging)", key)
		}
	}
	if cfg.Regulates() && cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func parseSource(s string, sources int) (int, error) {
	src, err := strconv.Atoi(s)
	if err != nil || src < 0 {
		return 0, fmt.Errorf("qos: source %q must be a non-negative integer", s)
	}
	if src >= sources {
		return 0, fmt.Errorf("qos: source %d out of range (have %d sources)", src, sources)
	}
	return src, nil
}

// String renders the policy in the canonical directive order (win,
// caps by source, rts by source, aging — each only when set), so that
// Parse(c.String(), c.Sources) round-trips. The zero Config renders "".
func (c Config) String() string {
	if !c.Enabled() {
		return ""
	}
	var parts []string
	if c.Window > 0 {
		parts = append(parts, "win="+strconv.FormatInt(c.Window, 10))
	}
	for s, b := range c.Budget {
		if b > 0 {
			parts = append(parts, fmt.Sprintf("cap=%d:%d", s, b))
		}
	}
	for s, rt := range c.RT {
		if rt {
			parts = append(parts, "rt="+strconv.Itoa(s))
		}
	}
	if c.Aging > 0 {
		parts = append(parts, "aging="+strconv.FormatInt(c.Aging, 10))
	}
	return strings.Join(parts, ",")
}
