package service

import (
	"container/list"
	"sync"
)

// Cache is a content-addressed result cache: canonical-spec SHA-256 hash
// → marshaled result JSON, evicting least-recently-used entries once the
// stored bytes exceed a budget. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	index    map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
	// complete marks a finished run. A cancelled run's partial result is
	// stored marked incomplete so it is retrievable but never served in
	// place of a full simulation.
	complete bool
}

// NewCache returns a cache holding at most maxBytes of values. A
// non-positive budget disables caching (every Get misses, Put is a
// no-op).
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
}

// Get returns the cached value of a *complete* run for key and marks it
// most recently used. Entries stored incomplete (cancelled partial
// results) never satisfy a Get: serving one in place of a full
// simulation would silently truncate the requested experiment.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.complete {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.val, true
}

// Put stores val under key, marked complete or not. Values larger than
// the whole budget are not cached, and an incomplete value never
// overwrites a complete one (a cancelled rerun must not shadow a full
// result). The caller must not modify val afterwards.
func (c *Cache) Put(key string, val []byte, complete bool) {
	if int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.complete && !complete {
			return
		}
		c.ll.MoveToFront(el)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		e.complete = complete
	} else {
		c.index[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, complete: complete})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.maxBytes {
		c.evictOldest()
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= int64(len(e.val))
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the stored value bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
