package service

import (
	"container/list"
	"sync"
)

// Cache is a content-addressed result cache: canonical-spec SHA-256 hash
// → marshaled result JSON, evicting least-recently-used entries once the
// stored bytes exceed a budget. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	index    map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache holding at most maxBytes of values. A
// non-positive budget disables caching (every Get misses, Put is a
// no-op).
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key. Values larger than the whole budget are not
// cached. The caller must not modify val afterwards.
func (c *Cache) Put(key string, val []byte) {
	if int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
	} else {
		c.index[key] = c.ll.PushFront(&cacheEntry{key, val})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.maxBytes {
		c.evictOldest()
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= int64(len(e.val))
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the stored value bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
