package service

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the store as a pre-crash
// journal and checks the recovery contract: corruption is never fatal,
// a torn tail is sealed so subsequent appends survive, and records
// appended after recovery are themselves recovered on the next open.
func FuzzJournalReplay(f *testing.F) {
	valid := `{"op":"job","job":{"id":"j1","spec_hash":"h1","state":"queued"}}` + "\n"
	result := `{"op":"result","result":{"id":"j1","state":"done","result":"{}"}}` + "\n"
	sweep := `{"op":"sweep","sweep":{"id":"s1","sweep_hash":"sh","axis_names":["cores"],"points":[]}}` + "\n"
	seeds := []string{
		"",
		valid,
		valid + result,
		valid + result + sweep,
		valid + `{"op":"job","job":{"id":"j2"`, /* torn tail, no newline */
		"not json at all\n" + valid,
		`{"op":"nonsense"}` + "\n" + valid,
		"\n\n" + valid + "\n\n",
		valid[:len(valid)/2],
		string([]byte{0xff, 0xfe, 0x00}) + "\n" + valid,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, journal []byte) {
		if len(journal) > 1<<20 {
			t.Skip("journal lines beyond the replay scanner budget")
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenStore(dir, nil)
		if err != nil {
			t.Fatalf("recovery must never fail on journal corruption: %v", err)
		}
		jobs, _, _ := st.Recovered()
		for _, rec := range jobs {
			if rec.ID == "" {
				t.Fatal("recovered a job with no id")
			}
		}

		// Appends after recovery must survive the next open: sealTornTail
		// has to protect the new record from any torn final line above.
		rec := &jobRecord{ID: "fuzz-post-crash", SpecHash: "fh", State: StateQueued}
		if err := st.AppendJob(rec); err != nil {
			t.Fatalf("appending after recovery: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("closing store: %v", err)
		}

		st2, err := OpenStore(dir, nil)
		if err != nil {
			t.Fatalf("reopening after append: %v", err)
		}
		defer st2.Close()
		jobs2, _, _ := st2.Recovered()
		found := false
		for _, r := range jobs2 {
			if r.ID == "fuzz-post-crash" {
				found = true
			}
		}
		if !found {
			t.Fatalf("record appended after recovery was lost on reopen (recovered %d jobs)", len(jobs2))
		}
		if len(jobs2) < len(jobs) {
			t.Fatalf("reopen recovered fewer jobs (%d) than the first open (%d)", len(jobs2), len(jobs))
		}
	})
}
