package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dramstacks/internal/exp"
)

// maxSweepPoints bounds one sweep's expansion so a typo'd axis cannot
// flood the queue.
const maxSweepPoints = 512

// SweepJob is one submitted experiment family: an expanded sweep whose
// points are ordinary jobs sharing the server's queue, worker pool and
// result cache — a point identical to a cached result is served
// instantly, and one identical to a queued/running job (from another
// sweep or a single submission) coalesces onto it.
type SweepJob struct {
	ID        string
	Hash      string // exp.SweepHash of the expanded points
	AxisNames []string
	Points    []exp.Point
	jobs      []*Job // index-aligned with Points

	mu        sync.Mutex
	cancelled bool     // DELETE received
	lines     [][]byte // NDJSON point-result lines, appended in point order
	updated   chan struct{}
	submitted time.Time
	finished  time.Time
}

func (sw *SweepJob) notifyLocked() {
	close(sw.updated)
	sw.updated = make(chan struct{})
}

// appendLine records one rendered point-result line and wakes streamers.
func (sw *SweepJob) appendLine(line []byte) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.lines = append(sw.lines, line)
	if len(sw.lines) == len(sw.Points) {
		sw.finished = time.Now()
	}
	sw.notifyLocked()
}

// snapshotLines returns the rendered lines at index >= from, the current
// count, a channel that closes on the next change, and whether the
// sweep has rendered every point.
func (sw *SweepJob) snapshotLines(from int) (batch [][]byte, n int, changed <-chan struct{}, terminal bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if from < len(sw.lines) {
		batch = sw.lines[from:len(sw.lines):len(sw.lines)]
	}
	return batch, len(sw.lines), sw.updated, len(sw.lines) == len(sw.Points)
}

// SweepPointStatusJSON is one point row of a sweep status.
type SweepPointStatusJSON struct {
	Index    int               `json:"index"`
	JobID    string            `json:"job"`
	SpecHash string            `json:"spec_hash"`
	Axes     map[string]string `json:"axes"`
	Label    string            `json:"label"`
	State    State             `json:"state"`
	Cached   bool              `json:"cached,omitempty"`
}

// SweepStatusJSON is the wire form of a sweep's status.
type SweepStatusJSON struct {
	ID        string                 `json:"id"`
	SweepHash string                 `json:"sweep_hash"`
	State     string                 `json:"state"`
	AxisNames []string               `json:"axis_names"`
	Total     int                    `json:"points"`
	Completed int                    `json:"completed"`
	Counts    map[string]int         `json:"counts"`
	Submitted string                 `json:"submitted"`
	Jobs      []SweepPointStatusJSON `json:"jobs"`
}

// status renders the sweep: per-point job states plus the derived sweep
// state (running until every point is terminal; then cancelled if any
// point was cancelled, failed if any failed, done otherwise).
func (sw *SweepJob) status() SweepStatusJSON {
	sw.mu.Lock()
	submitted := sw.submitted
	sw.mu.Unlock()

	st := SweepStatusJSON{
		ID:        sw.ID,
		SweepHash: sw.Hash,
		AxisNames: sw.AxisNames,
		Total:     len(sw.Points),
		Counts:    make(map[string]int),
		Submitted: submitted.UTC().Format(time.RFC3339Nano),
		Jobs:      make([]SweepPointStatusJSON, 0, len(sw.Points)),
	}
	terminal := 0
	anyCancelled, anyFailed := false, false
	for i, p := range sw.Points {
		js := sw.jobs[i].status()
		st.Counts[string(js.State)]++
		if js.State.Terminal() {
			terminal++
			anyCancelled = anyCancelled || js.State == StateCancelled
			anyFailed = anyFailed || js.State == StateFailed
		}
		st.Jobs = append(st.Jobs, SweepPointStatusJSON{
			Index:    i,
			JobID:    js.ID,
			SpecHash: p.Hash,
			Axes:     p.Axes,
			Label:    p.Label(),
			State:    js.State,
			Cached:   js.Cached,
		})
	}
	st.Completed = terminal
	switch {
	case terminal < len(sw.Points):
		st.State = "running"
	case anyCancelled:
		st.State = "cancelled"
	case anyFailed:
		st.State = "failed"
	default:
		st.State = "done"
	}
	return st
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSweep, "reading sweep: %v", err)
		return
	}
	sweep, err := exp.ParseSweep(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSweep, "%v", err)
		return
	}
	points, err := sweep.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSweep, "%v", err)
		return
	}
	if len(points) == 0 {
		writeError(w, http.StatusBadRequest, ErrInvalidSweep, "sweep expands to no points")
		return
	}
	if len(points) > maxSweepPoints {
		writeError(w, http.StatusBadRequest, ErrInvalidSweep,
			"sweep expands to %d points, limit %d", len(points), maxSweepPoints)
		return
	}

	sw := &SweepJob{
		Hash:      exp.SweepHash(points),
		AxisNames: sweep.AxisNames(),
		Points:    points,
		jobs:      make([]*Job, len(points)),
		updated:   make(chan struct{}),
		submitted: time.Now(),
	}

	// Resolve every point: instant cache hit, coalesce onto an identical
	// in-flight job, or register a fresh job for the queue feeder.
	var toEnqueue, newJobs []*Job
	for i, p := range points {
		s.metrics.JobsSubmitted.Add(1)
		if result, ok := s.cache.Get(p.Hash); ok {
			s.metrics.CacheHits.Add(1)
			job := s.registerJob(p.Spec, p.Hash)
			job.finishCached(result)
			s.metrics.JobsDone.Add(1)
			sw.jobs[i] = job
			newJobs = append(newJobs, job)
			continue
		}
		s.metrics.CacheMisses.Add(1)
		s.mu.Lock()
		if dup, ok := s.active[p.Hash]; ok && !dup.State().Terminal() {
			sw.jobs[i] = dup
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		job := s.registerJob(p.Spec, p.Hash)
		// Mark in-flight right away so overlapping sweeps and single
		// submissions coalesce onto this point while it waits to enter
		// the queue.
		s.mu.Lock()
		s.active[p.Hash] = job
		s.mu.Unlock()
		sw.jobs[i] = job
		toEnqueue = append(toEnqueue, job)
		newJobs = append(newJobs, job)
	}

	s.mu.Lock()
	s.nextSweepID++
	sw.ID = fmt.Sprintf("sweep-%06d", s.nextSweepID)
	s.sweeps[sw.ID] = sw
	s.sweepOrder = append(s.sweepOrder, sw.ID)
	s.mu.Unlock()
	// Write-ahead: journal the fresh/cache-served point jobs, then the
	// sweep that references them, before acknowledging the submission.
	// Coalesced points reference jobs journaled by their own submission.
	for _, job := range newJobs {
		s.persistJob(job)
		if job.State().Terminal() {
			s.persistResult(job)
		}
	}
	s.persistSweep(sw)
	s.metrics.SweepsSubmitted.Add(1)
	s.metrics.SweepPoints.Add(int64(len(points)))

	// Feed fresh jobs into the shared FIFO without overflowing it:
	// unlike single submissions, a sweep blocks for queue space instead
	// of taking a 429 per point.
	go s.feedSweep(sw, toEnqueue)
	go s.collectSweep(sw)

	s.log.Info("sweep queued", "sweep", sw.ID, "sweep_hash", sw.Hash,
		"points", len(points), "fresh", len(toEnqueue))
	writeJSON(w, http.StatusAccepted, sw.status())
}

// feedSweep enqueues a sweep's fresh jobs in point order, waiting for
// queue space, and giving up on jobs cancelled while they wait (or on
// server shutdown).
func (s *Server) feedSweep(sw *SweepJob, jobs []*Job) {
	for _, job := range jobs {
		select {
		case s.queue <- job:
		case <-job.ctx.Done():
			// Cancelled before it entered the queue; requestCancel has
			// already moved it to a terminal state.
		case <-s.baseCtx.Done():
			return
		}
	}
}

// collectSweep waits for each point in order and renders its NDJSON
// result line, so /v1/sweeps/{id}/results streams points deterministically
// ordered even though they complete out of order across the pool.
func (s *Server) collectSweep(sw *SweepJob) {
	for i := range sw.jobs {
		for {
			state, changed := sw.jobs[i].stateAndChanged()
			if state.Terminal() {
				break
			}
			select {
			case <-changed:
			case <-s.baseCtx.Done():
				return
			}
		}
		sw.appendLine(s.renderPointLine(sw, i))
	}
	s.metrics.SweepsDone.Add(1)
	st := sw.status()
	s.log.Info("sweep finished", "sweep", sw.ID, "state", st.State, "points", st.Total)
}

// SweepResultLine is one NDJSON line of /v1/sweeps/{id}/results. Result
// is the point's single-job document (byte-identical to the job's
// /stacks body, compacted onto one line).
type SweepResultLine struct {
	Index    int               `json:"index"`
	Axes     map[string]string `json:"axes"`
	Label    string            `json:"label"`
	SpecHash string            `json:"spec_hash"`
	JobID    string            `json:"job"`
	State    State             `json:"state"`
	Cached   bool              `json:"cached,omitempty"`
	Error    string            `json:"error,omitempty"`
	Result   json.RawMessage   `json:"result,omitempty"`
}

func (s *Server) renderPointLine(sw *SweepJob, i int) []byte {
	job := sw.jobs[i]
	js := job.status()
	line := SweepResultLine{
		Index:    i,
		Axes:     sw.Points[i].Axes,
		Label:    sw.Points[i].Label(),
		SpecHash: sw.Points[i].Hash,
		JobID:    js.ID,
		State:    js.State,
		Cached:   js.Cached,
		Error:    js.Error,
	}
	if result, _ := job.resultBytes(); result != nil {
		var buf bytes.Buffer
		if err := json.Compact(&buf, result); err == nil {
			line.Result = buf.Bytes()
		}
	}
	b, err := json.Marshal(line)
	if err != nil {
		b, _ = json.Marshal(SweepResultLine{Index: i, State: StateFailed, Error: err.Error()})
	}
	return b
}

func (s *Server) lookupSweep(r *http.Request) (*SweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[r.PathValue("id")]
	return sw, ok
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.sweepOrder...)
	sweeps := make([]*SweepJob, 0, len(ids))
	for _, id := range ids {
		sweeps = append(sweeps, s.sweeps[id])
	}
	s.mu.Unlock()
	out := make([]SweepStatusJSON, 0, len(sweeps))
	for _, sw := range sweeps {
		out = append(out, sw.status())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSweepCancel cancels every non-terminal point of the sweep. Note
// that a point coalesced onto another submission's identical job cancels
// that shared job too — the same semantics as DELETE on a deduped job id.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	sw.mu.Lock()
	sw.cancelled = true
	sw.mu.Unlock()
	cancelled := 0
	for _, job := range sw.jobs {
		if !job.requestCancel() {
			continue // already terminal
		}
		cancelled++
		if job.State() == StateCancelled { // was still queued
			s.clearActive(job)
			s.persistResult(job)
			s.metrics.JobsCancelled.Add(1)
		}
	}
	if cancelled == 0 {
		writeError(w, http.StatusConflict, ErrConflict, "sweep %s already %s", sw.ID, sw.status().State)
		return
	}
	s.log.Info("sweep cancel requested", "sweep", sw.ID, "points_cancelled", cancelled)
	writeJSON(w, http.StatusAccepted, sw.status())
}

// handleSweepResults streams the per-point result lines as NDJSON in
// point order, live while the sweep runs, until every point is rendered
// or the client goes away. ?from=N resumes at point index N, so a
// client can ride out a server bounce without re-reading earlier points.
func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	from, err := parseFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSweep, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := from
	for {
		batch, n, changed, terminal := sw.snapshotLines(sent)
		for _, line := range batch {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		sent = n
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
