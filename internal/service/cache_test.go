package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheHitMissAndUpdate(t *testing.T) {
	c := NewCache(1024)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("hello"), true)
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("a", []byte("goodbye"), true)
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("goodbye")) {
		t.Fatalf("updated Get(a) = %q", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if c.Bytes() != int64(len("goodbye")) {
		t.Errorf("Bytes = %d, want %d", c.Bytes(), len("goodbye"))
	}
}

func TestCacheEvictsLRUWithinByteBudget(t *testing.T) {
	c := NewCache(30)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 10), true) // 40 bytes total
	}
	if c.Bytes() > 30 {
		t.Errorf("cache holds %d bytes, budget 30", c.Bytes())
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 should have been evicted (oldest)")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Error("k3 should survive (newest)")
	}
	// Touching k1 makes k2 the eviction victim.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 should still be cached")
	}
	c.Put("k4", make([]byte, 10), true)
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 should have been evicted (least recently used)")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("recently touched k1 should survive")
	}
}

func TestCacheRejectsOversizedValue(t *testing.T) {
	c := NewCache(8)
	c.Put("big", make([]byte, 9), true)
	if _, ok := c.Get("big"); ok {
		t.Error("value larger than the whole budget must not be cached")
	}
	if c.Bytes() != 0 {
		t.Errorf("Bytes = %d, want 0", c.Bytes())
	}
}

// TestCachePartialEntriesNeverServedAsComplete pins the cancelled-run
// rule: an incomplete (partial) entry misses on Get, a complete result
// may overwrite it, and a later partial must not shadow the complete
// one.
func TestCachePartialEntriesNeverServedAsComplete(t *testing.T) {
	c := NewCache(1024)
	c.Put("spec", []byte("partial"), false)
	if _, ok := c.Get("spec"); ok {
		t.Fatal("partial entry served as complete")
	}
	if c.Len() != 1 {
		t.Errorf("partial entry not stored: Len = %d", c.Len())
	}
	c.Put("spec", []byte("full"), true)
	if v, ok := c.Get("spec"); !ok || !bytes.Equal(v, []byte("full")) {
		t.Fatalf("complete overwrite: Get = %q, %v", v, ok)
	}
	c.Put("spec", []byte("partial-again"), false)
	if v, ok := c.Get("spec"); !ok || !bytes.Equal(v, []byte("full")) {
		t.Errorf("partial shadowed a complete entry: Get = %q, %v", v, ok)
	}
}
