package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testJobRecord(id, hash string) *jobRecord {
	return &jobRecord{
		ID:        id,
		SpecHash:  hash,
		Spec:      json.RawMessage(`{"version":1,"workload":"seq"}`),
		Submitted: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		State:     StateQueued,
	}
}

func TestStoreJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJob(testJobRecord("job-000001", "aaa")); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJob(testJobRecord("job-000002", "bbb")); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResult(&jobRecord{
		ID: "job-000001", State: StateDone,
		Result: `{"spec_hash":"aaa"}`, MemCycles: 42,
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSweep(&sweepRecord{
		ID: "sweep-000001", Hash: "s1", AxisNames: []string{"cores"},
		Points: []sweepPointRecord{{Hash: "aaa", JobID: "job-000001",
			Spec: json.RawMessage(`{"version":1,"workload":"seq"}`),
			Axes: map[string]string{"cores": "1"}}},
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jobs, sweeps, skipped := st2.Recovered()
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "job-000001" || jobs[0].State != StateDone || jobs[0].MemCycles != 42 {
		t.Errorf("job 1 = %+v, want done with result", jobs[0])
	}
	if string(jobs[0].Result) != `{"spec_hash":"aaa"}` {
		t.Errorf("job 1 result = %s", jobs[0].Result)
	}
	if jobs[1].ID != "job-000002" || jobs[1].State != StateQueued {
		t.Errorf("job 2 = %+v, want queued", jobs[1])
	}
	if len(sweeps) != 1 || sweeps[0].ID != "sweep-000001" || len(sweeps[0].Points) != 1 {
		t.Fatalf("sweeps = %+v", sweeps)
	}
}

func TestStoreReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.AppendJob(testJobRecord("job-000001", "aaa"))
	st.AppendJob(testJobRecord("job-000001", "aaa")) // duplicate submission
	st.AppendResult(&jobRecord{ID: "job-000001", State: StateDone,
		Result: `{"spec_hash":"aaa"}`})
	st.AppendResult(&jobRecord{ID: "job-000001", State: StateCancelled}) // post-terminal: ignored
	st.AppendResult(&jobRecord{ID: "job-999999", State: StateDone})      // unknown id: ignored
	st.Close()

	st2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jobs, _, _ := st2.Recovered()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	if jobs[0].State != StateDone || len(jobs[0].Result) == 0 {
		t.Fatalf("job = %+v, want done with result intact", jobs[0])
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.compactEvery = 3
	st.AppendJob(testJobRecord("job-000001", "aaa"))
	st.AppendJob(testJobRecord("job-000002", "bbb"))
	st.AppendResult(&jobRecord{ID: "job-000001", State: StateDone,
		Result: `{"spec_hash":"aaa"}`}) // 3rd record triggers compaction
	st.Close()

	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after compaction: size=%v err=%v, want empty", fi.Size(), err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}

	st2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jobs, _, _ := st2.Recovered()
	if len(jobs) != 2 || jobs[0].State != StateDone || jobs[1].State != StateQueued {
		t.Fatalf("post-compaction recovery = %+v", jobs)
	}
}

func TestStoreTornTailIsSkippedAndSealed(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.AppendJob(testJobRecord("job-000001", "aaa"))
	st.Close()

	// Simulate a crash mid-append: a torn, newline-less record.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"job","job":{"id":"job-0000`)
	f.Close()

	st2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _, skipped := st2.Recovered()
	if len(jobs) != 1 || skipped != 1 {
		t.Fatalf("recovered %d jobs, %d skipped; want 1 job, 1 skipped", len(jobs), skipped)
	}
	// The sealed journal must accept appends that the next replay sees.
	if err := st2.AppendJob(testJobRecord("job-000002", "bbb")); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	jobs, _, _ = st3.Recovered()
	if len(jobs) != 2 || jobs[1].ID != "job-000002" {
		t.Fatalf("post-seal recovery = %+v, want 2 jobs", jobs)
	}
}

func TestStoreRejectsUnsupportedSnapshotVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName),
		[]byte(`{"version":99,"jobs":[],"sweeps":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, nil); err == nil {
		t.Fatal("OpenStore accepted snapshot version 99")
	}
}
