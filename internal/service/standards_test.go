package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"

	"dramstacks/internal/dram/standard"
	"dramstacks/internal/exp"
)

// GET /v1/standards serves the registry in deterministic name order with
// the derived parameters a client needs to pick a preset.
func TestStandardsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, err := http.Get(ts.URL + "/v1/standards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/standards status %d", resp.StatusCode)
	}
	var infos []standard.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	names := standard.Names()
	if len(infos) != len(names) {
		t.Fatalf("%d standards served, registry has %d", len(infos), len(names))
	}
	byName := map[string]standard.Info{}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("standards[%d] = %q, want sorted order %q", i, info.Name, names[i])
		}
		byName[info.Name] = info
	}
	if got := byName["ddr4-2400"].PeakGBs; got != 19.2 {
		t.Errorf("ddr4-2400 peak = %g, want 19.2", got)
	}
	if got := byName["hbm2-2000"]; got.SubChannels != 2 || got.PeakGBs != 32.0 {
		t.Errorf("hbm2-2000 = %+v, want 2 sub-channels at 32 GB/s", got)
	}
}

// A "standard"-axis sweep runs end-to-end through /v1: each point is
// simulated on its own standard's machine, and the legacy (ddr4-2400)
// point keeps the spec hash it had before the standard field existed.
func TestStandardAxisSweepEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})

	st, code := postSweep(t, ts, `{
		"base": {"workload": "seq", "cycles": 20000},
		"axes": {"standard": ["ddr4-2400", "lpddr5-6400"]}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps status %d", code)
	}
	if st.Total != 2 {
		t.Fatalf("sweep has %d points, want 2", st.Total)
	}
	if len(st.AxisNames) != 1 || st.AxisNames[0] != "standard" {
		t.Errorf("axis_names = %v", st.AxisNames)
	}

	final := waitSweepTerminal(t, ts, st.ID)
	if final.State != "done" || final.Completed != 2 {
		t.Fatalf("sweep ended %s with %d/%d points", final.State, final.Completed, final.Total)
	}

	// The ddr4 point's hash must equal the standard-free spec's hash:
	// unchanged spec hashes for legacy specs is the compatibility gate.
	legacy, err := (exp.Spec{Workload: "seq", Budget: 20_000}).Hash()
	if err != nil {
		t.Fatal(err)
	}

	lines := readSweepResults(t, ts, st.ID)
	if len(lines) != 2 {
		t.Fatalf("results stream has %d lines, want 2", len(lines))
	}
	wantPeak := map[string]float64{"ddr4-2400": 19.2, "lpddr5-6400": 12.8}
	for _, line := range lines {
		name := line.Axes["standard"]
		if line.State != StateDone || line.Result == nil {
			t.Fatalf("point %s ended %s without result", name, line.State)
		}
		var row struct {
			Label    string  `json:"label"`
			SpecHash string  `json:"spec_hash"`
			PeakGBps float64 `json:"peak_gbps"`
		}
		if err := json.Unmarshal(line.Result, &row); err != nil {
			t.Fatal(err)
		}
		if row.PeakGBps != wantPeak[name] {
			t.Errorf("%s peak = %g GB/s, want %g (wrong machine?)", name, row.PeakGBps, wantPeak[name])
		}
		if row.SpecHash != line.SpecHash {
			t.Errorf("%s: embedded hash %s != point hash %s", name, row.SpecHash, line.SpecHash)
		}
		if name == "ddr4-2400" && line.SpecHash != legacy {
			t.Errorf("ddr4 point hash %s != legacy standard-free hash %s", line.SpecHash, legacy)
		}
		if name == "lpddr5-6400" && line.SpecHash == legacy {
			t.Error("lpddr5 point collided with the legacy hash")
		}
	}
}

// A non-default-standard job's sample stream converts cycles to time
// with the job's own clock, not the server-wide DDR4 one.
func TestSampleTimesUsePerJobStandard(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	sub, code := postJob(t, ts, `{"workload": "seq", "cycles": 20000, "sample": 10000, "standard": "lpddr5-6400"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs status %d", code)
	}
	waitState(t, ts, sub.ID, StateDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/samples")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no sample lines: %v", sc.Err())
	}
	var sample exp.SampleJSON
	if err := json.Unmarshal(sc.Bytes(), &sample); err != nil {
		t.Fatal(err)
	}
	// lpddr5-6400 runs a 1600 MHz clock: 10000 cycles = 6.25 µs.
	want := standard.MustLookup("lpddr5-6400").Geometry.CyclesToNS(sample.EndCycle) / 1e6
	if sample.TimeMS != want {
		t.Errorf("sample time = %v ms at cycle %d, want %v (lpddr5 clock)", sample.TimeMS, sample.EndCycle, want)
	}
	ddr4 := standard.Default().Geometry.CyclesToNS(sample.EndCycle) / 1e6
	if sample.TimeMS == ddr4 {
		t.Error("sample time used the DDR4 clock")
	}
}
