package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func postSweep(t *testing.T, ts *httptest.Server, body string) (SweepStatusJSON, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SweepStatusJSON
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getSweepStatus(t *testing.T, ts *httptest.Server, id string) SweepStatusJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SweepStatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitSweepTerminal(t *testing.T, ts *httptest.Server, id string) SweepStatusJSON {
	t.Helper()
	// Generous: the big concurrent sweep sits just above 120s under
	// -race, and a too-tight deadline here fails runs that are merely
	// slow, not wrong.
	deadline := time.Now().Add(300 * time.Second)
	for time.Now().Before(deadline) {
		st := getSweepStatus(t, ts, id)
		if st.State != "running" {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish in time", id)
	return SweepStatusJSON{}
}

func readSweepResults(t *testing.T, ts *httptest.Server, id string) []SweepResultLine {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("results Content-Type %q", got)
	}
	var lines []SweepResultLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line SweepResultLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSweepEndToEndByteIdentity is the acceptance criterion: every point
// of POST /v1/sweeps must produce a result byte-identical to submitting
// the same spec through POST /v1/jobs (here on a second, fresh server so
// nothing is shared).
func TestSweepEndToEndByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	_, single := newTestServer(t, Config{Workers: 1, QueueDepth: 16})

	st, code := postSweep(t, ts, `{
		"base": {"workload": "seq", "cycles": 20000},
		"axes": {"cores": [1, 2], "workload": ["seq", "random"]}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps status %d", code)
	}
	if st.Total != 4 || len(st.Jobs) != 4 {
		t.Fatalf("sweep has %d points (%d rows), want 4", st.Total, len(st.Jobs))
	}
	if len(st.AxisNames) != 2 || st.AxisNames[0] != "cores" || st.AxisNames[1] != "workload" {
		t.Errorf("axis_names = %v", st.AxisNames)
	}

	final := waitSweepTerminal(t, ts, st.ID)
	if final.State != "done" || final.Completed != 4 {
		t.Fatalf("sweep ended %s with %d/%d points", final.State, final.Completed, final.Total)
	}

	lines := readSweepResults(t, ts, st.ID)
	if len(lines) != 4 {
		t.Fatalf("got %d result lines, want 4", len(lines))
	}
	for i, line := range lines {
		if line.Index != i {
			t.Errorf("line %d has index %d: stream must be in point order", i, line.Index)
		}
		if line.State != StateDone || line.Result == nil {
			t.Fatalf("point %d: state %s, result present %v", i, line.State, line.Result != nil)
		}

		// The sweep point's job serves stacks byte-identical to a
		// single-job run of the same spec on an unrelated server.
		fromSweep, code := getBody(t, ts, "/v1/jobs/"+line.JobID+"/stacks")
		if code != http.StatusOK {
			t.Fatalf("point %d stacks status %d", i, code)
		}
		sub, code := postJob(t, single, fmt.Sprintf(
			`{"workload":%q,"cores":%s,"cycles":20000}`,
			line.Axes["workload"], line.Axes["cores"]))
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("single POST status %d", code)
		}
		if sub.SpecHash != line.SpecHash {
			t.Errorf("point %d: sweep spec hash %s != single-job hash %s", i, line.SpecHash, sub.SpecHash)
		}
		waitState(t, single, sub.ID, StateDone)
		fromSingle, _ := getBody(t, single, "/v1/jobs/"+sub.ID+"/stacks")
		if !bytes.Equal(fromSweep, fromSingle) {
			t.Errorf("point %d (%s): sweep stacks differ from single-job stacks", i, line.Label)
		}

		// The embedded NDJSON result is the same document, compacted.
		var compact bytes.Buffer
		if err := json.Compact(&compact, fromSingle); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line.Result, compact.Bytes()) {
			t.Errorf("point %d: embedded result differs from compacted single-job stacks", i)
		}
	}
}

// TestSweepSharesCacheWithSingles submits one spec as a plain job, then a
// sweep covering it: the overlapping point must be served from the cache
// without re-simulating, and a later identical sweep is entirely cached.
func TestSweepSharesCacheWithSingles(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})

	sub, _ := postJob(t, ts, `{"workload":"seq","cores":1,"cycles":20000}`)
	waitState(t, ts, sub.ID, StateDone)

	sweepBody := `{"base": {"workload": "seq", "cycles": 20000}, "axes": {"cores": [1, 2]}}`
	st, code := postSweep(t, ts, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps status %d", code)
	}
	if !st.Jobs[0].Cached {
		t.Error("point cores=1 should be a cache hit from the earlier single job")
	}
	if st.Jobs[1].Cached {
		t.Error("point cores=2 cannot be cached yet")
	}
	waitSweepTerminal(t, ts, st.ID)

	st2, _ := postSweep(t, ts, sweepBody)
	for i, row := range st2.Jobs {
		if !row.Cached {
			t.Errorf("re-run point %d not served from cache", i)
		}
	}
	final := getSweepStatus(t, ts, st2.ID)
	if final.State != "done" {
		t.Errorf("fully cached sweep state %s, want done", final.State)
	}
	if hits := s.Metrics().CacheHits.Load(); hits < 3 {
		t.Errorf("cache hits = %d, want >= 3 (1 overlap + 2 re-run)", hits)
	}
}

// TestSweepCancel cancels a running sweep: queued points go terminal
// immediately, the running one stops with a partial result, and the
// sweep state lands on "cancelled". A second DELETE conflicts.
func TestSweepCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})

	st, code := postSweep(t, ts, `{
		"base": {"workload": "seq,random", "cores": 2},
		"axes": {"cycles": [4000000000, 4000000001, 4000000002]}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps status %d", code)
	}
	// Wait until the first point is actually simulating.
	waitState(t, ts, st.Jobs[0].JobID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d, want 202", resp.StatusCode)
	}

	final := waitSweepTerminal(t, ts, st.ID)
	if final.State != "cancelled" {
		t.Fatalf("sweep state %s, want cancelled", final.State)
	}
	for _, row := range final.Jobs {
		if row.State != StateCancelled {
			t.Errorf("point %d state %s, want cancelled", row.Index, row.State)
		}
	}

	// The results stream still serves every point, in order, with the
	// partial result of the interrupted one.
	lines := readSweepResults(t, ts, st.ID)
	if len(lines) != 3 {
		t.Fatalf("got %d result lines, want 3", len(lines))
	}
	if lines[0].Result == nil {
		t.Error("interrupted point should carry its partial result")
	}

	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE status %d, want 409", resp2.StatusCode)
	}
}

// TestSweepBadRequests exercises the validation and error envelope of
// the sweep endpoints.
func TestSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	cases := []struct {
		name string
		body string
	}{
		{"not json", `nope`},
		{"unknown top-level field", `{"bases": {"workload": "seq"}}`},
		{"unknown axis", `{"base": {"workload": "seq"}, "axes": {"core": [1, 2]}}`},
		{"bad version", `{"version": 2, "base": {"workload": "seq"}, "axes": {"cores": [1]}}`},
		{"empty axis", `{"base": {"workload": "seq"}, "axes": {"cores": []}}`},
		{"invalid point", `{"base": {"workload": "seq"}, "axes": {"cores": [99]}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var envelope errorJSON
		err = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		if err != nil || envelope.Error.Code != ErrInvalidSweep || envelope.Error.Message == "" {
			t.Errorf("%s: envelope %+v (decode err %v), want code %q", tc.name, envelope, err, ErrInvalidSweep)
		}
	}

	if _, code := getBody(t, ts, "/v1/sweeps/sweep-999999"); code != http.StatusNotFound {
		t.Errorf("unknown sweep status %d, want 404", code)
	}
}

// TestSweepConcurrentWithSingles runs an 8-point sweep while single-job
// submissions of overlapping specs hammer the service — under -race this
// exercises sweep registration, in-flight dedup across entry points, the
// shared cache and the collector for data races.
func TestSweepConcurrentWithSingles(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	st, code := postSweep(t, ts, `{
		"base": {"workload": "seq", "cycles": 20000},
		"axes": {"cores": [1, 2, 4, 8], "workload": ["seq", "random"]}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps status %d", code)
	}
	if st.Total != 8 {
		t.Fatalf("sweep has %d points, want 8", st.Total)
	}

	var wg sync.WaitGroup
	singleIDs := make([]string, 6)
	for i := range singleIDs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Overlap the sweep's specs so dedup and cache sharing race
			// with the sweep's own registration.
			spec := fmt.Sprintf(`{"workload":"seq","cores":%d,"cycles":20000}`, 1<<(i%4))
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var out SubmitResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			singleIDs[i] = out.ID
		}(i)
	}
	wg.Wait()

	final := waitSweepTerminal(t, ts, st.ID)
	if final.State != "done" {
		t.Fatalf("sweep ended %s", final.State)
	}
	lines := readSweepResults(t, ts, st.ID)
	if len(lines) != 8 {
		t.Fatalf("got %d result lines, want 8", len(lines))
	}
	for i, line := range lines {
		if line.State != StateDone || line.Result == nil {
			t.Errorf("point %d: state %s", i, line.State)
		}
	}
	for i, id := range singleIDs {
		if id == "" {
			continue
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			jst := getStatus(t, ts, id)
			if jst.State == StateDone {
				break
			}
			if jst.State.Terminal() {
				t.Fatalf("single job %d ended %s: %s", i, jst.State, jst.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("single job %d stuck in %s", i, jst.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestSweepList lists sweeps in submission order.
func TestSweepList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})

	first, _ := postSweep(t, ts, `{"base": {"workload": "seq", "cycles": 10000}, "axes": {"cores": [1, 2]}}`)
	second, _ := postSweep(t, ts, `{"base": {"workload": "random", "cycles": 10000}, "axes": {"cores": [1, 2]}}`)
	waitSweepTerminal(t, ts, first.ID)
	waitSweepTerminal(t, ts, second.ID)

	body, code := getBody(t, ts, "/v1/sweeps")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/sweeps status %d", code)
	}
	var list []SweepStatusJSON
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != first.ID || list[1].ID != second.ID {
		t.Errorf("list = %+v, want [%s %s] in order", list, first.ID, second.ID)
	}
	if list[0].SweepHash == list[1].SweepHash {
		t.Error("distinct sweeps share a sweep hash")
	}
}
