package service

import (
	"context"
	"sync"
	"time"

	"dramstacks/internal/exp"
)

// State is a job's lifecycle state. Transitions: queued → running →
// done | failed; queued or running → cancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transitions are possible.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one submitted experiment.
type Job struct {
	ID   string
	Spec exp.Spec // normalized
	Hash string

	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	state      State
	errMsg     string
	result     []byte // marshaled result JSON, set when done
	cached     bool   // served from the result cache without simulating
	userCancel bool   // cancel requested by a client (vs. server shutdown)
	samples    []exp.SampleJSON
	updated    chan struct{} // closed and replaced on every state/sample change
	submitted  time.Time
	started    time.Time
	finished   time.Time
	simWall    time.Duration
	memCycles  int64
}

func newJob(parent context.Context, id string, spec exp.Spec, hash string) *Job {
	ctx, cancel := context.WithCancel(parent)
	return &Job{
		ID:        id,
		Spec:      spec,
		Hash:      hash,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		updated:   make(chan struct{}),
		submitted: time.Now(),
	}
}

// notifyLocked wakes every waiter; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// start moves queued → running; it fails if the job was cancelled while
// waiting in the queue.
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.notifyLocked()
	return true
}

// finish records the terminal state of a simulated job.
func (j *Job) finish(state State, result []byte, errMsg string, simWall time.Duration, memCycles int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.simWall = simWall
	j.memCycles = memCycles
	j.finished = time.Now()
	j.cancel() // release the context's resources
	j.notifyLocked()
}

// finishCached marks a job served from the result cache: it is born done.
func (j *Job) finishCached(result []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.result = result
	j.cached = true
	j.started = j.submitted
	j.finished = time.Now()
	j.cancel()
	j.notifyLocked()
}

// requestCancel cancels a queued or running job. A queued job transitions
// immediately; a running one transitions when the simulator notices the
// cancelled context. Returns false if the job is already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.userCancel = true
	if j.state == StateQueued {
		j.state = StateCancelled
		j.finished = time.Now()
		j.notifyLocked()
	}
	j.cancel()
	return true
}

// userCancelled reports whether a client requested the cancellation, as
// opposed to the context cancel of a server shutdown. The distinction
// decides whether a cancelled run is journaled terminal (client intent)
// or left queued for re-enqueue on restart (interrupted by shutdown).
func (j *Job) userCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancel
}

// restoreTerminal rebuilds a terminal job from its durable record during
// recovery.
func (j *Job) restoreTerminal(state State, result []byte, errMsg string, simWallMS float64, memCycles int64, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.simWall = time.Duration(simWallMS * float64(time.Millisecond))
	j.memCycles = memCycles
	j.cached = cached
	j.finished = j.submitted
	j.cancel()
	j.notifyLocked()
}

// record renders the job's durable submission record (state queued: the
// write-ahead entry precedes execution).
func (j *Job) record() *jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	canon, err := j.Spec.Canonical()
	if err != nil {
		canon = nil // unreachable for a registered (validated) spec
	}
	return &jobRecord{
		ID:        j.ID,
		SpecHash:  j.Hash,
		Spec:      canon,
		Submitted: j.submitted,
		State:     StateQueued,
	}
}

// terminalRecord renders the job's durable terminal record. Results of
// cache-served jobs are elided (recovery resolves them by spec hash).
func (j *Job) terminalRecord() *jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := &jobRecord{
		ID:        j.ID,
		State:     j.state,
		Error:     j.errMsg,
		Cached:    j.cached,
		SimWallMS: float64(j.simWall) / float64(time.Millisecond),
		MemCycles: j.memCycles,
	}
	if !j.cached {
		rec.Result = string(j.result)
	}
	return rec
}

// appendSample records one live through-time sample and wakes streamers.
func (j *Job) appendSample(s exp.SampleJSON) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.samples = append(j.samples, s)
	j.notifyLocked()
}

// snapshotSamples returns the samples at index ≥ from, the current total
// count, a channel that closes on the next change, and whether the job
// is terminal (no more samples will arrive).
func (j *Job) snapshotSamples(from int) (new []exp.SampleJSON, n int, changed <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.samples) {
		new = j.samples[from:len(j.samples):len(j.samples)]
	}
	return new, len(j.samples), j.updated, j.state.Terminal()
}

// stateAndChanged returns the current state together with a channel
// that closes on the job's next state or sample change, for waiters
// (the sweep collector).
func (j *Job) stateAndChanged() (State, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.updated
}

// StatusJSON is the wire form of a job's status.
type StatusJSON struct {
	ID        string   `json:"id"`
	SpecHash  string   `json:"spec_hash"`
	State     State    `json:"state"`
	Spec      exp.Spec `json:"spec"`
	Cached    bool     `json:"cached"`
	Error     string   `json:"error,omitempty"`
	Submitted string   `json:"submitted"`
	StartedMS float64  `json:"queue_wait_ms"`
	SimWallMS float64  `json:"sim_wall_ms"`
	MemCycles int64    `json:"mem_cycles"`
	Samples   int      `json:"samples"`
}

// status renders the job for GET /v1/jobs/{id}.
func (j *Job) status() StatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := StatusJSON{
		ID:        j.ID,
		SpecHash:  j.Hash,
		State:     j.state,
		Spec:      j.Spec,
		Cached:    j.cached,
		Error:     j.errMsg,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		SimWallMS: float64(j.simWall) / float64(time.Millisecond),
		MemCycles: j.memCycles,
		Samples:   len(j.samples),
	}
	if !j.started.IsZero() {
		st.StartedMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	}
	return st
}

// resultBytes returns the result JSON once the job is done.
func (j *Job) resultBytes() ([]byte, State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state
}
