package service

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// wallBuckets are the upper bounds (seconds) of the per-job simulation
// wall-time histogram, chosen around the typical 0.5M-cycle run.
var wallBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120}

// Metrics is the service's observability state, exported in Prometheus
// text format on /metrics. All fields are updated atomically; gauges
// that mirror live structures (queue depth, cache size) are sampled at
// scrape time by the server.
type Metrics struct {
	JobsSubmitted atomic.Int64
	JobsDone      atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	JobsRejected  atomic.Int64 // queue-full 429s

	CacheHits   atomic.Int64
	CacheMisses atomic.Int64

	SweepsSubmitted atomic.Int64
	SweepsDone      atomic.Int64
	SweepPoints     atomic.Int64 // expanded points across all sweeps

	WorkersBusy atomic.Int64

	SimMemCycles atomic.Int64 // total simulated memory cycles

	// Durability-layer counters (all zero when no data dir is set).
	JobsRecovered   atomic.Int64 // jobs rebuilt from the journal at start
	SweepsRecovered atomic.Int64 // sweeps rebuilt from the journal at start
	JournalRecords  atomic.Int64 // records appended to the journal
	Snapshots       atomic.Int64 // compacted snapshots written

	// wall-time histogram: bucket counts + sum (float64 bits) + count
	wallCounts  [8]atomic.Int64 // len(wallBuckets)+1, last is +Inf
	wallSumBits atomic.Uint64
	wallCount   atomic.Int64
}

// ObserveSimWall records one job's simulation wall time in seconds.
func (m *Metrics) ObserveSimWall(seconds float64) {
	i := 0
	for i < len(wallBuckets) && seconds > wallBuckets[i] {
		i++
	}
	m.wallCounts[i].Add(1)
	m.wallCount.Add(1)
	for {
		old := m.wallSumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if m.wallSumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Gauges carries the point-in-time values the server samples at scrape
// time.
type Gauges struct {
	Queued     int
	Running    int
	Workers    int
	QueueCap   int
	CacheBytes int64
	CacheItems int
}

// WritePrometheus renders the metrics in Prometheus text exposition
// format.
func (m *Metrics) WritePrometheus(w io.Writer, g Gauges) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP dramstacksd_jobs_total Jobs by terminal state.\n# TYPE dramstacksd_jobs_total counter\n")
	fmt.Fprintf(w, "dramstacksd_jobs_total{state=\"done\"} %d\n", m.JobsDone.Load())
	fmt.Fprintf(w, "dramstacksd_jobs_total{state=\"failed\"} %d\n", m.JobsFailed.Load())
	fmt.Fprintf(w, "dramstacksd_jobs_total{state=\"cancelled\"} %d\n", m.JobsCancelled.Load())

	counter("dramstacksd_jobs_submitted_total", "Accepted job submissions (cache hits included).", m.JobsSubmitted.Load())
	counter("dramstacksd_jobs_rejected_total", "Submissions rejected with 429 because the queue was full.", m.JobsRejected.Load())
	gauge("dramstacksd_jobs_queued", "Jobs waiting in the FIFO queue.", int64(g.Queued))
	gauge("dramstacksd_jobs_running", "Jobs currently simulating.", int64(g.Running))
	gauge("dramstacksd_queue_capacity", "FIFO queue capacity.", int64(g.QueueCap))

	counter("dramstacksd_sweeps_submitted_total", "Accepted sweep submissions.", m.SweepsSubmitted.Load())
	counter("dramstacksd_sweeps_done_total", "Sweeps whose every point reached a terminal state.", m.SweepsDone.Load())
	counter("dramstacksd_sweep_points_total", "Expanded sweep points across all sweeps.", m.SweepPoints.Load())

	counter("dramstacksd_cache_hits_total", "Result-cache hits.", m.CacheHits.Load())
	counter("dramstacksd_cache_misses_total", "Result-cache misses.", m.CacheMisses.Load())
	gauge("dramstacksd_cache_bytes", "Bytes of result JSON held by the cache.", g.CacheBytes)
	gauge("dramstacksd_cache_entries", "Entries held by the cache.", int64(g.CacheItems))

	gauge("dramstacksd_workers", "Size of the worker pool.", int64(g.Workers))
	gauge("dramstacksd_workers_busy", "Workers currently running a job.", m.WorkersBusy.Load())

	counter("dramstacksd_sim_mem_cycles_total", "Total simulated memory cycles across all jobs.", m.SimMemCycles.Load())

	counter("dramstacksd_recovered_jobs_total", "Jobs rebuilt from the durable journal at start.", m.JobsRecovered.Load())
	counter("dramstacksd_recovered_sweeps_total", "Sweeps rebuilt from the durable journal at start.", m.SweepsRecovered.Load())
	counter("dramstacksd_journal_records_total", "Records appended to the write-ahead journal.", m.JournalRecords.Load())
	counter("dramstacksd_snapshots_total", "Compacted snapshots written.", m.Snapshots.Load())

	fmt.Fprintf(w, "# HELP dramstacksd_sim_wall_seconds Per-job simulation wall time.\n# TYPE dramstacksd_sim_wall_seconds histogram\n")
	var cum int64
	for i, ub := range wallBuckets {
		cum += m.wallCounts[i].Load()
		fmt.Fprintf(w, "dramstacksd_sim_wall_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.wallCounts[len(wallBuckets)].Load()
	fmt.Fprintf(w, "dramstacksd_sim_wall_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "dramstacksd_sim_wall_seconds_sum %g\n", math.Float64frombits(m.wallSumBits.Load()))
	fmt.Fprintf(w, "dramstacksd_sim_wall_seconds_count %d\n", m.wallCount.Load())
}
