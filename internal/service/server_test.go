package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dramstacks/internal/exp"
)

// newTestServer starts a service with a quiet logger and small pool.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (SubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) StatusJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State) StatusJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach state %s in time", id, want)
	return StatusJSON{}
}

func getBody(t *testing.T, ts *httptest.Server, path string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b, resp.StatusCode
}

// TestSubmitPollStacks is the end-to-end round trip: the stacks the
// service serves are byte-identical to a direct run of the same spec.
func TestSubmitPollStacks(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	spec := exp.Spec{Workload: "seq", Cores: 1, Budget: 20_000}
	sub, code := postJob(t, ts, `{"workload":"seq","cores":1,"cycles":20000}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d, want 202", code)
	}
	wantHash, _ := spec.Hash()
	if sub.SpecHash != wantHash {
		t.Errorf("spec_hash %s, want %s", sub.SpecHash, wantHash)
	}

	waitState(t, ts, sub.ID, StateDone)
	got, code := getBody(t, ts, "/v1/jobs/"+sub.ID+"/stacks")
	if code != http.StatusOK {
		t.Fatalf("GET stacks status %d: %s", code, got)
	}

	res, err := exp.RunSpec(context.Background(), spec, exp.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.ResultJSON(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("service stacks differ from direct run:\n service: %s\n direct:  %s", got, want)
	}
}

// TestDuplicateSubmissionIsCacheHit resubmits an identical spec (in a
// different field order) and expects an instant cached answer plus a
// cache-hit counter tick on /metrics.
func TestDuplicateSubmissionIsCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	first, code := postJob(t, ts, `{"workload":"seq","cores":1,"cycles":20000}`)
	if code != http.StatusAccepted {
		t.Fatalf("first POST status %d", code)
	}
	waitState(t, ts, first.ID, StateDone)

	second, code := postJob(t, ts, `{"cycles":20000,"cores":1,"workload":"seq","map":"def"}`)
	if code != http.StatusOK {
		t.Fatalf("second POST status %d, want 200", code)
	}
	if !second.Cached || second.State != StateDone {
		t.Errorf("second submission: %+v, want cached done", second)
	}
	if second.ID == first.ID {
		t.Error("cached submission should get its own job id")
	}

	a, _ := getBody(t, ts, "/v1/jobs/"+first.ID+"/stacks")
	b, _ := getBody(t, ts, "/v1/jobs/"+second.ID+"/stacks")
	if !bytes.Equal(a, b) {
		t.Error("cached stacks differ from original")
	}

	metrics, _ := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "dramstacksd_cache_hits_total 1") {
		t.Errorf("metrics missing cache hit:\n%s", metrics)
	}
}

// longSpec is a mix workload (no prewarm, starts instantly) with an
// effectively unbounded budget; it only ends by cancellation.
const longSpec = `{"workload":"seq,random","cores":2,"cycles":4000000000}`

// TestQueueOverflowReturns429 fills the single-worker, depth-1 queue and
// expects backpressure with Retry-After.
func TestQueueOverflowReturns429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	running, code := postJob(t, ts, longSpec)
	if code != http.StatusAccepted {
		t.Fatalf("first POST status %d", code)
	}
	waitState(t, ts, running.ID, StateRunning)

	queued, code := postJob(t, ts, `{"workload":"random,seq","cores":2,"cycles":4000000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("second POST status %d, want 202 (queued)", code)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"strided,seq","cores":2,"cycles":4000000000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third POST status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	metrics, _ := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "dramstacksd_jobs_rejected_total 1") {
		t.Error("metrics missing rejected counter")
	}

	// Cancel both so Cleanup's Close returns quickly.
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCancelRunningJob checks DELETE stops a running simulation promptly
// and partial stacks remain retrievable.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	sub, _ := postJob(t, ts, longSpec)
	waitState(t, ts, sub.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d, want 202", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	var st StatusJSON
	for time.Now().Before(deadline) {
		st = getStatus(t, ts, sub.ID)
		if st.State == StateCancelled {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != StateCancelled {
		t.Fatalf("job state %s, want cancelled", st.State)
	}
	if st.MemCycles <= 0 || st.MemCycles >= 4_000_000_000 {
		t.Errorf("cancelled job simulated %d cycles, want a partial run", st.MemCycles)
	}

	body, code := getBody(t, ts, "/v1/jobs/"+sub.ID+"/stacks")
	if code != http.StatusOK {
		t.Fatalf("partial stacks status %d", code)
	}
	var row exp.RowJSON
	if err := json.Unmarshal(body, &row); err != nil {
		t.Fatal(err)
	}
	if !row.Cancelled {
		t.Error("partial result not marked cancelled")
	}

	// A second DELETE conflicts.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE status %d, want 409", resp2.StatusCode)
	}
}

// TestSamplesNDJSONStream submits a sampled run and reads the NDJSON
// stream to completion.
func TestSamplesNDJSONStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	sub, code := postJob(t, ts, `{"workload":"seq,random","cores":2,"cycles":100000,"sample":10000}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/samples")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type %q", got)
	}
	var lines []exp.SampleJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var s exp.SampleJSON
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 5 {
		t.Fatalf("got %d samples, want >= 5 for 100k cycles at 10k interval", len(lines))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i].EndCycle <= lines[i-1].EndCycle {
			t.Errorf("samples out of order: %d then %d", lines[i-1].EndCycle, lines[i].EndCycle)
		}
	}

	// Sampling-off jobs refuse the stream.
	plain, _ := postJob(t, ts, `{"workload":"seq,random","cores":1,"cycles":10000}`)
	if _, code := getBody(t, ts, "/v1/jobs/"+plain.ID+"/samples"); code != http.StatusConflict {
		t.Errorf("samples on unsampled job: status %d, want 409", code)
	}
}

// TestInFlightDedup coalesces an identical submission onto the running
// job instead of queueing a second simulation.
func TestInFlightDedup(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	first, _ := postJob(t, ts, longSpec)
	waitState(t, ts, first.ID, StateRunning)
	second, code := postJob(t, ts, longSpec)
	if code != http.StatusOK {
		t.Fatalf("duplicate POST status %d, want 200", code)
	}
	if !second.Deduped || second.ID != first.ID {
		t.Errorf("duplicate submission %+v, want dedup onto %s", second, first.ID)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSubmissions hammers the service from several goroutines;
// run under -race this exercises the queue, pool, cache and job state
// machine for data races.
func TestConcurrentSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	const n = 12
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A few distinct specs plus repeats to exercise dedup/cache.
			spec := fmt.Sprintf(`{"workload":"seq,random","cores":%d,"cycles":%d}`, 1+i%3, 10_000+1000*(i%4))
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out SubmitResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = fmt.Errorf("decode: %v", err)
				return
			}
			ids[i] = out.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for _, id := range ids {
		deadline := time.Now().Add(60 * time.Second)
		for {
			st := getStatus(t, ts, id)
			if st.State == StateDone {
				break
			}
			if st.State.Terminal() {
				t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if _, code := getBody(t, ts, "/v1/jobs/"+id+"/stacks"); code != http.StatusOK {
			t.Errorf("job %s stacks status %d", id, code)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	cases := []struct {
		body string
		want int
	}{
		{`{"workload":"nope"}`, http.StatusBadRequest},
		{`{"workload":"seq","cores":99}`, http.StatusBadRequest},
		{`{"bogus_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if _, code := postJob(t, ts, tc.body); code != tc.want {
			t.Errorf("POST %q: status %d, want %d", tc.body, code, tc.want)
		}
	}

	if _, code := getBody(t, ts, "/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", code)
	}
	if body, code := getBody(t, ts, "/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
}

// TestErrorEnvelope asserts every /v1 error response carries the unified
// {"error": {"code", "message"}} envelope with the documented code.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	check := func(name string, resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
			return
		}
		var envelope errorJSON
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Errorf("%s: body is not the error envelope: %v", name, err)
			return
		}
		if envelope.Error.Code != wantCode || envelope.Error.Message == "" {
			t.Errorf("%s: envelope %+v, want code %q and a message", name, envelope.Error, wantCode)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"workload":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	check("invalid spec", resp, http.StatusBadRequest, ErrInvalidSpec)

	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(`{"axes":{"cores":[]}}`))
	if err != nil {
		t.Fatal(err)
	}
	check("invalid sweep", resp, http.StatusBadRequest, ErrInvalidSweep)

	resp, err = http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	check("job not found", resp, http.StatusNotFound, ErrNotFound)

	resp, err = http.Get(ts.URL + "/v1/sweeps/sweep-999999")
	if err != nil {
		t.Fatal(err)
	}
	check("sweep not found", resp, http.StatusNotFound, ErrNotFound)

	// Fill the queue for a queue_full envelope.
	running, _ := postJob(t, ts, longSpec)
	waitState(t, ts, running.ID, StateRunning)
	queued, _ := postJob(t, ts, `{"workload":"random,seq","cores":2,"cycles":4000000000}`)
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"strided,seq","cores":2,"cycles":4000000000}`))
	if err != nil {
		t.Fatal(err)
	}
	check("queue full", resp, http.StatusTooManyRequests, ErrQueueFull)

	// Stacks on a queued job conflicts.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/stacks")
	if err != nil {
		t.Fatal(err)
	}
	check("stacks before done", resp, http.StatusConflict, ErrConflict)

	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}

	// Cancelling an already-cancelled job conflicts — still enveloped.
	deadline := time.Now().Add(60 * time.Second)
	for getStatus(t, ts, running.ID).State != StateCancelled && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	check("double cancel", resp, http.StatusConflict, ErrConflict)
}

// TestCancelledResultNotServedFromCache is the regression test for the
// partial-result cache bug: after a job is cancelled mid-run, submitting
// the identical spec again must re-simulate, not serve the truncated
// stacks as if the full run had happened.
func TestCancelledResultNotServedFromCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	first, _ := postJob(t, ts, longSpec)
	waitState(t, ts, first.ID, StateRunning)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for getStatus(t, ts, first.ID).State != StateCancelled && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// The partial stacks stay retrievable on the cancelled job itself...
	if body, code := getBody(t, ts, "/v1/jobs/"+first.ID+"/stacks"); code != http.StatusOK {
		t.Fatalf("partial stacks status %d: %s", code, body)
	}

	// ...but an identical resubmission must not be answered from cache.
	second, code := postJob(t, ts, longSpec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit status %d, want 202 (fresh run)", code)
	}
	if second.Cached {
		t.Fatal("cancelled partial result was served from the cache as complete")
	}
	waitState(t, ts, second.ID, StateRunning)
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+second.ID, nil)
	if _, err := http.DefaultClient.Do(req2); err != nil {
		t.Fatal(err)
	}
}
