// Package service implements dramstacksd: simulation-as-a-service over
// the deterministic machine in internal/sim. Experiment specs are
// submitted as JSON jobs, run on a bounded worker pool behind a FIFO
// queue with backpressure, deduplicated through a content-addressed
// result cache, and observable via structured logs and Prometheus-style
// metrics. Everything is stdlib-only.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dramstacks/internal/dram/standard"
	"dramstacks/internal/exp"
	"dramstacks/internal/stacks"
)

// Config tunes the service.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS-1,
	// at least 1). Each simulation is single-threaded.
	Workers int
	// QueueDepth bounds the FIFO job queue (default 64). Submissions
	// beyond it are rejected with HTTP 429 + Retry-After.
	QueueDepth int
	// CacheBytes is the result-cache byte budget (default 64 MiB).
	CacheBytes int64
	// DataDir, when non-empty, enables the durability layer: every job
	// and sweep submission and every terminal result is journaled there
	// (write-ahead NDJSON + compacted snapshot), and on start the state
	// is recovered — completed results re-populate the cache
	// byte-identically, and jobs that were queued or running at crash
	// time are re-enqueued. Empty keeps today's pure in-memory behavior.
	DataDir string
	// Logger receives structured request and job logs (default
	// slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) - 1
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the dramstacksd HTTP service.
type Server struct {
	cfg     Config
	log     *slog.Logger
	queue   chan *Job
	cache   *Cache
	metrics *Metrics
	handler http.Handler
	store   *Store // nil without Config.DataDir

	baseCtx   context.Context
	stop      context.CancelFunc
	workersWG sync.WaitGroup
	draining  atomic.Bool // graceful shutdown in progress

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string        // submission order, for GET /v1/jobs
	active      map[string]*Job // spec hash → queued/running job (in-flight dedup)
	nextID      int64
	running     int
	sweeps      map[string]*SweepJob
	sweepOrder  []string // submission order, for GET /v1/sweeps
	nextSweepID int64
}

// New assembles a server, recovers durable state when Config.DataDir is
// set, and starts its worker pool; call Close to stop.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		queue:   make(chan *Job, cfg.QueueDepth),
		cache:   NewCache(cfg.CacheBytes),
		metrics: &Metrics{},
		jobs:    make(map[string]*Job),
		active:  make(map[string]*Job),
		sweeps:  make(map[string]*SweepJob),
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.handler = s.logMiddleware(s.routes())
	if cfg.DataDir != "" {
		store, err := OpenStore(cfg.DataDir, s.metrics)
		if err != nil {
			s.stop()
			return nil, err
		}
		s.store = store
		s.recover()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close shuts down gracefully: workers stop picking up queued jobs,
// running simulations are cancelled cooperatively (and treated as
// interrupted, not client-cancelled), and with a data dir the full
// non-terminal state is checkpointed so a subsequent start re-enqueues
// it.
func (s *Server) Close() {
	s.draining.Store(true)
	s.stop()
	s.workersWG.Wait()
	if s.store != nil {
		if err := s.store.Checkpoint(); err != nil {
			s.log.Error("shutdown checkpoint failed", "err", err)
		}
		if err := s.store.Close(); err != nil {
			s.log.Error("closing journal failed", "err", err)
		}
	}
}

// Handler returns the HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the counters for tests.
func (s *Server) Metrics() *Metrics { return s.metrics }

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stacks", s.handleStacks)
	mux.HandleFunc("GET /v1/jobs/{id}/samples", s.handleSamples)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleSweepResults)
	mux.HandleFunc("GET /v1/standards", s.handleStandards)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (NDJSON samples) to the client.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.code,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond),
			"remote", r.RemoteAddr,
		)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Error codes of the unified /v1 error envelope. Every non-2xx JSON
// body is {"error": {"code": "...", "message": "..."}}.
const (
	ErrInvalidSpec  = "invalid_spec"
	ErrInvalidSweep = "invalid_sweep"
	ErrNotFound     = "not_found"
	ErrQueueFull    = "queue_full"
	ErrConflict     = "conflict"
	ErrJobFailed    = "job_failed"
)

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorJSON struct {
	Error errorBody `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: errorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// SubmitResponse is the POST /v1/jobs reply.
type SubmitResponse struct {
	ID       string `json:"id"`
	SpecHash string `json:"spec_hash"`
	State    State  `json:"state"`
	Cached   bool   `json:"cached"`
	// Deduped marks a submission coalesced onto an identical job already
	// queued or running.
	Deduped bool `json:"deduped,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSpec, "reading spec: %v", err)
		return
	}
	spec, err := exp.DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSpec, "%v", err)
		return
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSpec, "%v", err)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSpec, "%v", err)
		return
	}

	// Served instantly when an identical spec already completed.
	if result, ok := s.cache.Get(hash); ok {
		s.metrics.CacheHits.Add(1)
		s.metrics.JobsSubmitted.Add(1)
		job := s.registerJob(spec, hash)
		job.finishCached(result)
		s.persistJob(job)
		s.persistResult(job)
		s.metrics.JobsDone.Add(1)
		s.log.Info("job served from cache", "job", job.ID, "spec_hash", hash)
		writeJSON(w, http.StatusOK, SubmitResponse{
			ID: job.ID, SpecHash: hash, State: StateDone, Cached: true,
		})
		return
	}
	s.metrics.CacheMisses.Add(1)

	// Coalesce onto an identical queued/running job.
	s.mu.Lock()
	if dup, ok := s.active[hash]; ok && !dup.State().Terminal() {
		s.mu.Unlock()
		s.metrics.JobsSubmitted.Add(1)
		writeJSON(w, http.StatusOK, SubmitResponse{
			ID: dup.ID, SpecHash: hash, State: dup.State(), Deduped: true,
		})
		return
	}
	s.mu.Unlock()

	job := s.registerJob(spec, hash)
	select {
	case s.queue <- job:
	default:
		// Backpressure: the queue is full.
		s.unregisterJob(job)
		s.metrics.JobsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, ErrQueueFull, "job queue full (%d deep); retry later", s.cfg.QueueDepth)
		return
	}
	s.mu.Lock()
	s.active[hash] = job
	s.mu.Unlock()
	s.persistJob(job)
	s.metrics.JobsSubmitted.Add(1)
	s.log.Info("job queued", "job", job.ID, "spec_hash", hash, "workload", spec.Workload)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: job.ID, SpecHash: hash, State: StateQueued,
	})
}

func (s *Server) registerJob(spec exp.Spec, hash string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	job := newJob(s.baseCtx, id, spec, hash)
	s.jobs[id] = job
	s.order = append(s.order, id)
	return job
}

func (s *Server) unregisterJob(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, job.ID)
	if n := len(s.order); n > 0 && s.order[n-1] == job.ID {
		s.order = s.order[:n-1]
	}
}

func (s *Server) lookup(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[r.PathValue("id")]
	return job, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]StatusJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if !job.requestCancel() {
		writeError(w, http.StatusConflict, ErrConflict, "job %s already %s", job.ID, job.State())
		return
	}
	if job.State() == StateCancelled { // was still queued
		s.clearActive(job)
		s.persistResult(job)
		s.metrics.JobsCancelled.Add(1)
	}
	s.log.Info("job cancel requested", "job", job.ID, "state", job.State())
	writeJSON(w, http.StatusAccepted, job.status())
}

func (s *Server) handleStacks(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	result, state := job.resultBytes()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, ErrJobFailed, "job %s failed: %s", job.ID, job.status().Error)
	case StateCancelled:
		if result != nil {
			// Partial stacks of a cancelled run are still well-formed.
			w.Header().Set("Content-Type", "application/json")
			w.Write(result)
			return
		}
		writeError(w, http.StatusConflict, ErrConflict, "job %s was cancelled before producing stacks", job.ID)
	default:
		writeError(w, http.StatusConflict, ErrConflict, "job %s is %s; poll until done", job.ID, state)
	}
}

// parseFrom reads the optional ?from=N resume offset of the NDJSON
// streaming endpoints: the response starts at line index N, so a client
// that lost its connection resumes where it left off instead of
// re-reading (and re-counting) everything.
func parseFrom(r *http.Request) (int, error) {
	q := r.URL.Query().Get("from")
	if q == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid from offset %q (want a non-negative integer)", q)
	}
	return n, nil
}

// handleSamples streams through-time samples as NDJSON, following the
// run live until the job reaches a terminal state or the client goes
// away. ?from=N resumes at sample index N.
func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if job.Spec.Sample <= 0 {
		writeError(w, http.StatusConflict, ErrConflict, "job %s has sampling off (submit with \"sample\" > 0)", job.ID)
		return
	}
	from, err := parseFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrInvalidSpec, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := from
	for {
		batch, n, changed, terminal := job.snapshotSamples(sent)
		for _, sample := range batch {
			if err := enc.Encode(sample); err != nil {
				return
			}
		}
		sent = n
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running := s.running
	s.mu.Unlock()
	g := Gauges{
		Queued:     len(s.queue),
		Running:    running,
		Workers:    s.cfg.Workers,
		QueueCap:   s.cfg.QueueDepth,
		CacheBytes: s.cache.Bytes(),
		CacheItems: s.cache.Len(),
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, g)
}

// worker consumes the FIFO queue until the server closes.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

func (s *Server) runJob(job *Job) {
	defer s.clearActive(job)
	if !job.start() {
		// Cancelled while queued; already counted.
		return
	}
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	s.metrics.WorkersBusy.Add(1)
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		s.metrics.WorkersBusy.Add(-1)
	}()

	start := time.Now()
	res, err := exp.RunSpec(job.ctx, job.Spec, exp.RunOptions{
		OnSample: s.sampleHook(job),
	})
	wall := time.Since(start)

	switch {
	case err != nil:
		job.finish(StateFailed, nil, err.Error(), wall, 0)
		s.persistResult(job)
		s.metrics.JobsFailed.Add(1)
		s.metrics.ObserveSimWall(wall.Seconds())
		s.log.Error("job failed", "job", job.ID, "err", err)
	case res.Cancelled:
		result, jerr := exp.ResultJSON(job.Spec, res)
		if jerr != nil {
			result = nil
		}
		job.finish(StateCancelled, result, "", wall, res.MemCycles)
		if result != nil {
			// Keep the partial retrievable but marked incomplete: it must
			// never be served as if the full run had happened.
			s.cache.Put(job.Hash, result, false)
		}
		// A run interrupted by graceful shutdown (as opposed to a client
		// cancel) is not journaled terminal: the final checkpoint leaves
		// it queued, so the next start re-enqueues it.
		if job.userCancelled() || !s.draining.Load() {
			s.persistResult(job)
		}
		s.metrics.JobsCancelled.Add(1)
		s.metrics.SimMemCycles.Add(res.MemCycles)
		s.metrics.ObserveSimWall(wall.Seconds())
		s.log.Info("job cancelled", "job", job.ID, "mem_cycles", res.MemCycles)
	default:
		result, jerr := exp.ResultJSON(job.Spec, res)
		if jerr != nil {
			job.finish(StateFailed, nil, jerr.Error(), wall, res.MemCycles)
			s.persistResult(job)
			s.metrics.JobsFailed.Add(1)
			return
		}
		job.finish(StateDone, result, "", wall, res.MemCycles)
		s.cache.Put(job.Hash, result, true)
		s.persistResult(job)
		s.metrics.JobsDone.Add(1)
		s.metrics.SimMemCycles.Add(res.MemCycles)
		s.metrics.ObserveSimWall(wall.Seconds())
		s.log.Info("job done", "job", job.ID,
			"mem_cycles", res.MemCycles, "sim_wall_ms", wall.Milliseconds())
	}
}

// handleStandards lists the registered DRAM standards with their derived
// parameters (GET /v1/standards), in deterministic name order.
func (s *Server) handleStandards(w http.ResponseWriter, r *http.Request) {
	all := standard.All()
	out := make([]standard.Info, 0, len(all))
	for _, std := range all {
		out = append(out, std.Info())
	}
	writeJSON(w, http.StatusOK, out)
}

// sampleHook feeds live through-time samples into the job for the
// NDJSON streaming endpoint; nil when sampling is off. Cycle-to-time
// conversions use the geometry of the job's own DRAM standard, not a
// server-wide one.
func (s *Server) sampleHook(job *Job) func(stacks.Sample) {
	if job.Spec.Sample <= 0 {
		return nil
	}
	std, err := exp.SpecStandard(job.Spec)
	if err != nil {
		// Specs are validated at submission; an unresolvable standard here
		// means a corrupted recovery record — fall back to the default so
		// the run itself (which will fail in RunSpec) stays observable.
		std = standard.Default()
	}
	geo := std.Geometry
	return func(sm stacks.Sample) {
		job.appendSample(exp.SampleToJSON(sm, geo))
	}
}

func (s *Server) clearActive(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active[job.Hash] == job {
		delete(s.active, job.Hash)
	}
}
