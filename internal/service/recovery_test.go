package service

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// startDurable starts a server over a data dir WITHOUT registering
// cleanup, so tests control the shutdown order themselves (graceful
// Close vs. simulated crash vs. restart over the same dir).
func startDurable(t *testing.T, dir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Workers: workers,
		DataDir: dir,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// crash simulates abrupt process death: the listener vanishes and the
// journal is abandoned with no shutdown checkpoint. draining is set so
// interrupted runs skip their terminal journal record — exactly the
// state a SIGKILLed process leaves behind (no terminal record at all).
func crash(s *Server, ts *httptest.Server) {
	ts.Close()
	s.draining.Store(true)
	s.stop()
	s.workersWG.Wait()
	s.store.Close()
}

func shutdown(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	s.Close()
}

const fastSpec = `{"workload":"seq","cores":1,"cycles":20000}`
const fastSpec2 = `{"workload":"random","cores":1,"cycles":20000}`

func TestRecoveryGracefulRestartByteIdentity(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := startDurable(t, dir, 2)
	sub, code := postJob(t, ts1, fastSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitState(t, ts1, sub.ID, StateDone)
	want, _ := getBody(t, ts1, "/v1/jobs/"+sub.ID+"/stacks")
	shutdown(t, s1, ts1)

	s2, ts2 := startDurable(t, dir, 2)
	defer shutdown(t, s2, ts2)

	if n := s2.Metrics().JobsRecovered.Load(); n != 1 {
		t.Errorf("JobsRecovered = %d, want 1", n)
	}
	if st := getStatus(t, ts2, sub.ID); st.State != StateDone {
		t.Fatalf("recovered job state %s, want done", st.State)
	}
	got, code := getBody(t, ts2, "/v1/jobs/"+sub.ID+"/stacks")
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("recovered stacks differ (status %d):\npre  %s\npost %s", code, want, got)
	}

	// The recovered result must be back in the content-addressed cache…
	resub, code := postJob(t, ts2, fastSpec)
	if code != http.StatusOK || !resub.Cached {
		t.Fatalf("resubmit = %+v status %d, want cache hit", resub, code)
	}
	// …and the id counter must resume past every recovered id.
	if resub.ID != "job-000002" {
		t.Errorf("post-restart id %s, want job-000002", resub.ID)
	}
}

func TestRecoveryCrashPreservesDoneAndRequeuesPending(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := startDurable(t, dir, 1)
	done, _ := postJob(t, ts1, fastSpec)
	waitState(t, ts1, done.ID, StateDone)
	want, _ := getBody(t, ts1, "/v1/jobs/"+done.ID+"/stacks")

	// One job running at crash time, one still queued behind it.
	running, _ := postJob(t, ts1, longSpec)
	waitState(t, ts1, running.ID, StateRunning)
	queued, _ := postJob(t, ts1, fastSpec2)
	crash(s1, ts1)

	s2, ts2 := startDurable(t, dir, 1)
	defer shutdown(t, s2, ts2)

	if n := s2.Metrics().JobsRecovered.Load(); n != 3 {
		t.Errorf("JobsRecovered = %d, want 3", n)
	}
	// Completed before the crash: restored byte-identically.
	if st := getStatus(t, ts2, done.ID); st.State != StateDone {
		t.Fatalf("done job recovered as %s", st.State)
	}
	if got, _ := getBody(t, ts2, "/v1/jobs/"+done.ID+"/stacks"); !bytes.Equal(got, want) {
		t.Fatalf("recovered stacks differ:\npre  %s\npost %s", want, got)
	}
	// Running at crash: re-enqueued, not lost and not terminal.
	st := getStatus(t, ts2, running.ID)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("interrupted job recovered as %s, want queued/running", st.State)
	}
	// Unblock the single worker, then the queued job must complete.
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/jobs/"+running.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	waitState(t, ts2, running.ID, StateCancelled)
	waitState(t, ts2, queued.ID, StateDone)
}

func TestRecoveryUserCancelStaysCancelled(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := startDurable(t, dir, 1)
	sub, _ := postJob(t, ts1, longSpec)
	waitState(t, ts1, sub.ID, StateRunning)
	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts1, sub.ID, StateCancelled)
	shutdown(t, s1, ts1)

	// A client's cancel is intent, not interruption: it must survive the
	// restart rather than being re-enqueued.
	s2, ts2 := startDurable(t, dir, 1)
	defer shutdown(t, s2, ts2)
	if st := getStatus(t, ts2, sub.ID); st.State != StateCancelled {
		t.Fatalf("user-cancelled job recovered as %s, want cancelled", st.State)
	}
	// …and stays that way (a re-enqueued job would flip to running).
	time.Sleep(200 * time.Millisecond)
	if st := getStatus(t, ts2, sub.ID); st.State != StateCancelled {
		t.Fatalf("user-cancelled job became %s after recovery", st.State)
	}
}

func TestRecoverySweepGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	const sweepDoc = `{"base": {"workload": "seq", "cycles": 20000}, "axes": {"cores": [1, 2]}}`

	s1, ts1 := startDurable(t, dir, 2)
	st, code := postSweep(t, ts1, sweepDoc)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit status %d", code)
	}
	if final := waitSweepTerminal(t, ts1, st.ID); final.State != "done" {
		t.Fatalf("sweep finished %s", final.State)
	}
	want, _ := getBody(t, ts1, "/v1/sweeps/"+st.ID+"/results")
	shutdown(t, s1, ts1)

	s2, ts2 := startDurable(t, dir, 2)
	defer shutdown(t, s2, ts2)

	if n := s2.Metrics().SweepsRecovered.Load(); n != 1 {
		t.Errorf("SweepsRecovered = %d, want 1", n)
	}
	if rec := getSweepStatus(t, ts2, st.ID); rec.State != "done" || rec.Completed != 2 {
		t.Fatalf("recovered sweep = %+v, want done with 2 points", rec)
	}
	got, code := getBody(t, ts2, "/v1/sweeps/"+st.ID+"/results")
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("recovered sweep results differ (status %d):\npre  %s\npost %s", code, want, got)
	}
}

func TestRecoveryCrashMidSweep(t *testing.T) {
	dir := t.TempDir()
	// Point 1 completes instantly; point 2 runs until cancelled.
	const sweepDoc = `{"base": {"workload": "seq,random", "cores": 2}, "axes": {"cycles": [20000, 4000000000]}}`

	s1, ts1 := startDurable(t, dir, 1)
	st, code := postSweep(t, ts1, sweepDoc)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit status %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	var firstJob string
	for {
		if time.Now().After(deadline) {
			t.Fatal("first sweep point did not complete in time")
		}
		cur := getSweepStatus(t, ts1, st.ID)
		if cur.Completed >= 1 {
			firstJob = cur.Jobs[0].JobID
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	want, _ := getBody(t, ts1, "/v1/jobs/"+firstJob+"/stacks")
	crash(s1, ts1)

	s2, ts2 := startDurable(t, dir, 1)
	defer shutdown(t, s2, ts2)

	rec := getSweepStatus(t, ts2, st.ID)
	if rec.State != "running" || rec.Completed != 1 {
		t.Fatalf("recovered sweep = state %s completed %d, want running/1", rec.State, rec.Completed)
	}
	if got, _ := getBody(t, ts2, "/v1/jobs/"+firstJob+"/stacks"); !bytes.Equal(got, want) {
		t.Fatalf("recovered point stacks differ:\npre  %s\npost %s", want, got)
	}
	// The interrupted point was re-enqueued: cancelling the sweep must
	// reach it and drive the sweep terminal.
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final := waitSweepTerminal(t, ts2, st.ID); final.State != "cancelled" {
		t.Fatalf("sweep after cancel = %s, want cancelled", final.State)
	}
}

func TestNoDataDirStaysInMemory(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	if s.store != nil {
		t.Fatal("store opened without DataDir")
	}
	sub, _ := postJob(t, ts, fastSpec)
	waitState(t, ts, sub.ID, StateDone)
	if n := s.Metrics().JobsRecovered.Load(); n != 0 {
		t.Errorf("JobsRecovered = %d without a data dir", n)
	}
}
