package service

import (
	"fmt"

	"dramstacks/internal/exp"
)

// recover rebuilds the server's in-memory state from the store's
// replayed records, called from New before the worker pool starts.
//
//   - Jobs with a terminal record come back terminal; done results
//     re-populate the content-addressed cache byte-identically (spec
//     hashes make this exact), cancelled partials re-enter it marked
//     incomplete.
//   - Jobs that were queued or running at crash/shutdown time come back
//     queued and are re-enqueued in submission order.
//   - Sweeps come back with their point jobs re-attached by id; a
//     collector goroutine re-renders the result stream, so points that
//     completed before the crash stream immediately and interrupted ones
//     follow as they re-simulate.
//
// Records that fail validation (corrupt spec, result whose embedded
// spec_hash disagrees with the record) are not trusted: the job is
// re-enqueued instead of served, which at worst re-runs a simulation.
func (s *Server) recover() {
	jobs, sweeps, skipped := s.store.Recovered()

	// Results of completed records by spec hash, for resolving
	// cache-served jobs whose records elide the bytes.
	byHash := make(map[string][]byte)
	for _, rec := range jobs {
		if rec.State == StateDone && len(rec.Result) > 0 {
			byHash[rec.SpecHash] = []byte(rec.Result)
		}
	}

	var pending []*Job
	recovered := 0
	for _, rec := range jobs {
		spec, err := exp.DecodeSpec(rec.Spec)
		if err != nil {
			s.log.Error("recovery: dropping job with undecodable spec", "job", rec.ID, "err", err)
			continue
		}
		spec = spec.Normalized()
		job := newJob(s.baseCtx, rec.ID, spec, rec.SpecHash)
		job.submitted = rec.Submitted
		s.jobs[rec.ID] = job
		s.order = append(s.order, rec.ID)
		if n := idNumber(rec.ID, "job-%d"); n > s.nextID {
			s.nextID = n
		}
		recovered++

		switch rec.State {
		case StateDone:
			result := []byte(rec.Result)
			if len(result) == 0 {
				result = byHash[rec.SpecHash]
			}
			if !trustedResult(result, rec.SpecHash) {
				s.log.Warn("recovery: done record failed validation; re-enqueueing", "job", rec.ID)
				pending = s.requeue(job, pending)
				continue
			}
			job.restoreTerminal(StateDone, result, "", rec.SimWallMS, rec.MemCycles, rec.Cached)
			s.cache.Put(rec.SpecHash, result, true)
		case StateFailed:
			job.restoreTerminal(StateFailed, nil, rec.Error, rec.SimWallMS, rec.MemCycles, false)
		case StateCancelled:
			var partial []byte
			if trustedResult([]byte(rec.Result), rec.SpecHash) {
				partial = []byte(rec.Result)
				s.cache.Put(rec.SpecHash, partial, false)
			}
			job.restoreTerminal(StateCancelled, partial, rec.Error, rec.SimWallMS, rec.MemCycles, false)
		default: // queued or running at crash time
			pending = s.requeue(job, pending)
		}
	}

	recoveredSweeps := 0
	for _, rec := range sweeps {
		sw, err := s.rebuildSweep(rec)
		if err != nil {
			s.log.Error("recovery: dropping sweep", "sweep", rec.ID, "err", err)
			continue
		}
		s.sweeps[rec.ID] = sw
		s.sweepOrder = append(s.sweepOrder, rec.ID)
		if n := idNumber(rec.ID, "sweep-%d"); n > s.nextSweepID {
			s.nextSweepID = n
		}
		recoveredSweeps++
		go s.collectSweep(sw)
	}

	s.metrics.JobsRecovered.Add(int64(recovered))
	s.metrics.SweepsRecovered.Add(int64(recoveredSweeps))
	if recovered > 0 || recoveredSweeps > 0 || skipped > 0 {
		s.log.Info("state recovered",
			"jobs", recovered, "requeued", len(pending),
			"sweeps", recoveredSweeps, "journal_lines_skipped", skipped)
	}
	if len(pending) > 0 {
		go s.feedRecovered(pending)
	}
}

// requeue resets a recovered job to queued and registers it for
// in-flight dedup.
func (s *Server) requeue(job *Job, pending []*Job) []*Job {
	s.active[job.Hash] = job
	return append(pending, job)
}

// feedRecovered feeds re-enqueued jobs into the FIFO in submission
// order, waiting for queue space like a sweep feeder does.
func (s *Server) feedRecovered(jobs []*Job) {
	for _, job := range jobs {
		select {
		case s.queue <- job:
		case <-job.ctx.Done():
		case <-s.baseCtx.Done():
			return
		}
	}
}

// rebuildSweep reconstructs a SweepJob from its durable record,
// re-attaching point jobs by id.
func (s *Server) rebuildSweep(rec *sweepRecord) (*SweepJob, error) {
	sw := &SweepJob{
		ID:        rec.ID,
		Hash:      rec.Hash,
		AxisNames: rec.AxisNames,
		Points:    make([]exp.Point, len(rec.Points)),
		jobs:      make([]*Job, len(rec.Points)),
		updated:   make(chan struct{}),
		submitted: rec.Submitted,
	}
	for i, p := range rec.Points {
		spec, err := exp.DecodeSpec(p.Spec)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		sw.Points[i] = exp.Point{Index: i, Spec: spec.Normalized(), Hash: p.Hash, Axes: p.Axes}
		job, ok := s.jobs[p.JobID]
		if !ok {
			return nil, fmt.Errorf("point %d references unknown job %s", i, p.JobID)
		}
		sw.jobs[i] = job
	}
	return sw, nil
}

// trustedResult reports whether a durable result document is usable:
// non-empty and stamped with the spec hash its record claims.
func trustedResult(result []byte, wantHash string) bool {
	if len(result) == 0 {
		return false
	}
	h, err := exp.ResultSpecHash(result)
	return err == nil && h == wantHash
}

// idNumber parses the numeric suffix of a "job-%06d"-style id, so the
// id counters resume past every recovered id.
func idNumber(id, format string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, format, &n); err != nil {
		return 0
	}
	return n
}

// persistJob journals a job submission; storage errors degrade
// durability, not availability, so they are logged rather than failing
// the request.
func (s *Server) persistJob(job *Job) {
	if s.store == nil {
		return
	}
	if err := s.store.AppendJob(job.record()); err != nil {
		s.log.Error("journal append failed", "job", job.ID, "err", err)
	}
}

// persistResult journals a job's terminal state.
func (s *Server) persistResult(job *Job) {
	if s.store == nil {
		return
	}
	if err := s.store.AppendResult(job.terminalRecord()); err != nil {
		s.log.Error("journal append failed", "job", job.ID, "err", err)
	}
}

// persistSweep journals a sweep submission (after its point jobs).
func (s *Server) persistSweep(sw *SweepJob) {
	if s.store == nil {
		return
	}
	rec := &sweepRecord{
		ID:        sw.ID,
		Hash:      sw.Hash,
		AxisNames: sw.AxisNames,
		Points:    make([]sweepPointRecord, len(sw.Points)),
		Submitted: sw.submitted,
	}
	for i, p := range sw.Points {
		canon, err := p.Spec.Canonical()
		if err != nil {
			s.log.Error("journal append failed", "sweep", sw.ID, "err", err)
			return
		}
		rec.Points[i] = sweepPointRecord{
			Spec:  canon,
			Hash:  p.Hash,
			Axes:  p.Axes,
			JobID: sw.jobs[i].ID,
		}
	}
	if err := s.store.AppendSweep(rec); err != nil {
		s.log.Error("journal append failed", "sweep", sw.ID, "err", err)
	}
}
