package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The durable layout under the -data directory:
//
//	<data>/snapshot.json    periodically compacted full state
//	<data>/journal.ndjson   append-only write-ahead journal since the snapshot
//
// Every mutation (job submission, terminal result, sweep submission) is
// appended to the journal and fsynced before the server acknowledges it.
// Recovery replays the snapshot, then the journal, in order; both are
// idempotent per job/sweep id, so a crash between snapshot rename and
// journal truncation only re-applies records that are already reflected.
const (
	journalName  = "journal.ndjson"
	snapshotName = "snapshot.json"

	// snapshotVersion guards the on-disk schema the way SpecVersion
	// guards the wire schema.
	snapshotVersion = 1

	// defaultCompactEvery is the journal-record count that triggers
	// folding journal + snapshot into a fresh snapshot.
	defaultCompactEvery = 1024
)

// jobRecord is the durable form of one job. A "job" journal entry
// carries the full record in state queued; a "result" entry carries the
// same shape with only the id and the terminal fields set, and is merged
// onto the submission record during replay. Done results of cache-served
// jobs elide the result bytes (Cached is set instead) — recovery resolves
// them through the completed record with the same spec hash.
type jobRecord struct {
	ID        string          `json:"id"`
	SpecHash  string          `json:"spec_hash,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"` // canonical encoding
	Submitted time.Time       `json:"submitted,omitempty"`
	State     State           `json:"state"`
	Error     string          `json:"error,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	// Result holds the terminal result document as a JSON *string*, not
	// an embedded object: encoding/json compacts embedded RawMessage
	// bytes, and recovered results must be byte-identical to what the
	// service originally served (indentation included).
	Result    string  `json:"result,omitempty"`
	SimWallMS float64 `json:"sim_wall_ms,omitempty"`
	MemCycles int64   `json:"mem_cycles,omitempty"`
}

// sweepPointRecord is the durable form of one expanded sweep point.
type sweepPointRecord struct {
	Spec  json.RawMessage   `json:"spec"` // canonical encoding
	Hash  string            `json:"spec_hash"`
	Axes  map[string]string `json:"axes"`
	JobID string            `json:"job"`
}

// sweepRecord is the durable form of one sweep submission. Point jobs
// are journaled individually before the sweep entry, so replay resolves
// JobID references against already-applied job records.
type sweepRecord struct {
	ID        string             `json:"id"`
	Hash      string             `json:"sweep_hash"`
	AxisNames []string           `json:"axis_names"`
	Points    []sweepPointRecord `json:"points"`
	Submitted time.Time          `json:"submitted"`
}

// journalEntry is one NDJSON line of the write-ahead journal.
type journalEntry struct {
	Op     string       `json:"op"` // "job", "result" or "sweep"
	Job    *jobRecord   `json:"job,omitempty"`
	Result *jobRecord   `json:"result,omitempty"`
	Sweep  *sweepRecord `json:"sweep,omitempty"`
}

// snapshotDoc is the compacted on-disk state.
type snapshotDoc struct {
	Version int            `json:"version"`
	Jobs    []*jobRecord   `json:"jobs"`
	Sweeps  []*sweepRecord `json:"sweeps"`
}

// Store is the service's durability layer: a write-ahead journal plus a
// periodically compacted snapshot, mirrored in memory so compaction and
// recovery never consult the live server. It is safe for concurrent use.
type Store struct {
	dir string

	mu           sync.Mutex
	journal      *os.File
	appends      int // journal records since the last snapshot
	compactEvery int

	// In-memory mirror of snapshot+journal, in submission order.
	jobs   []*jobRecord
	jobIdx map[string]*jobRecord
	sweeps []*sweepRecord

	// skipped counts journal lines dropped during recovery (torn final
	// write after a crash, or corruption).
	skipped int

	metrics *Metrics // may be nil
}

// OpenStore opens (creating if needed) the durable state under dir and
// replays snapshot + journal into the in-memory mirror. Unparseable
// journal lines — e.g. a torn final write from a crash mid-append — are
// skipped and counted, never fatal.
func OpenStore(dir string, metrics *Metrics) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	st := &Store{
		dir:          dir,
		compactEvery: defaultCompactEvery,
		jobIdx:       make(map[string]*jobRecord),
		metrics:      metrics,
	}
	if err := st.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := st.replayJournal(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	st.journal = f
	if err := st.sealTornTail(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

func (st *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(st.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	var doc snapshotDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("store: corrupt snapshot %s: %w", snapshotName, err)
	}
	if doc.Version != snapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d (this build speaks version %d)", doc.Version, snapshotVersion)
	}
	for _, rec := range doc.Jobs {
		st.applyJob(rec)
	}
	st.sweeps = append(st.sweeps, doc.Sweeps...)
	return nil
}

func (st *Store) replayJournal() error {
	f, err := os.Open(filepath.Join(st.dir, journalName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			st.skipped++
			continue
		}
		st.apply(e)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: reading journal: %w", err)
	}
	return nil
}

// sealTornTail makes the journal safe to append to after a crash that
// tore the final line: if the file does not end in a newline, one is
// added so the torn record (already skipped by replay) cannot corrupt
// the next append.
func (st *Store) sealTornTail() error {
	info, err := st.journal.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		return nil
	}
	r, err := os.Open(filepath.Join(st.dir, journalName))
	if err != nil {
		return err
	}
	defer r.Close()
	buf := make([]byte, 1)
	if _, err := r.ReadAt(buf, info.Size()-1); err != nil {
		return err
	}
	if buf[0] != '\n' {
		if _, err := st.journal.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// apply folds one journal entry into the mirror. Application is
// idempotent: duplicate submissions and terminal records for
// already-terminal jobs are ignored.
func (st *Store) apply(e journalEntry) {
	switch e.Op {
	case "job":
		if e.Job != nil {
			st.applyJob(e.Job)
		}
	case "result":
		if e.Result == nil {
			return
		}
		rec, ok := st.jobIdx[e.Result.ID]
		if !ok || rec.State.Terminal() {
			return
		}
		rec.State = e.Result.State
		rec.Error = e.Result.Error
		rec.Cached = e.Result.Cached
		rec.Result = e.Result.Result
		rec.SimWallMS = e.Result.SimWallMS
		rec.MemCycles = e.Result.MemCycles
	case "sweep":
		if e.Sweep == nil {
			return
		}
		for _, sw := range st.sweeps {
			if sw.ID == e.Sweep.ID {
				return
			}
		}
		st.sweeps = append(st.sweeps, e.Sweep)
	}
}

func (st *Store) applyJob(rec *jobRecord) {
	if _, ok := st.jobIdx[rec.ID]; ok {
		return
	}
	st.jobs = append(st.jobs, rec)
	st.jobIdx[rec.ID] = rec
}

// append writes one entry to the journal (fsynced, so an acknowledged
// mutation survives a crash), folds it into the mirror, and compacts
// once enough records accumulated.
//
//dramvet:allow lockhold(st.mu exists to serialize journal appends with the mirror; this is the one critical section where I/O under the lock is the design, and callers never hold Server.mu across it)
func (st *Store) append(e journalEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding journal entry: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return fmt.Errorf("store: closed")
	}
	if _, err := st.journal.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: appending journal entry: %w", err)
	}
	if err := st.journal.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal: %w", err)
	}
	st.apply(e)
	st.appends++
	if st.metrics != nil {
		st.metrics.JournalRecords.Add(1)
	}
	if st.appends >= st.compactEvery {
		return st.compactLocked()
	}
	return nil
}

// AppendJob journals a job submission.
func (st *Store) AppendJob(rec *jobRecord) error {
	return st.append(journalEntry{Op: "job", Job: rec})
}

// AppendResult journals a job's terminal state.
func (st *Store) AppendResult(rec *jobRecord) error {
	return st.append(journalEntry{Op: "result", Result: rec})
}

// AppendSweep journals a sweep submission.
func (st *Store) AppendSweep(rec *sweepRecord) error {
	return st.append(journalEntry{Op: "sweep", Sweep: rec})
}

// Checkpoint compacts unconditionally: the graceful-shutdown path calls
// it after the workers stopped so queued and interrupted jobs are
// persisted as queued and re-enqueued on the next start.
func (st *Store) Checkpoint() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.compactLocked()
}

// compactLocked folds the mirror into a fresh snapshot (written
// atomically: tmp + fsync + rename) and truncates the journal. Callers
// hold st.mu.
func (st *Store) compactLocked() error {
	doc := snapshotDoc{Version: snapshotVersion, Jobs: st.jobs, Sweeps: st.sweeps}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(st.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if st.journal != nil {
		if err := st.journal.Truncate(0); err != nil {
			return fmt.Errorf("store: truncating journal: %w", err)
		}
		if _, err := st.journal.Seek(0, 0); err != nil {
			return fmt.Errorf("store: rewinding journal: %w", err)
		}
	}
	st.appends = 0
	if st.metrics != nil {
		st.metrics.Snapshots.Add(1)
	}
	return nil
}

// Close closes the journal. It does not checkpoint; the server's
// graceful-shutdown path checkpoints first, and a crash simply leaves
// the journal to be replayed.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return nil
	}
	err := st.journal.Close()
	st.journal = nil
	return err
}

// Recovered returns the replayed jobs and sweeps in submission order,
// plus the count of skipped (torn/corrupt) journal lines.
func (st *Store) Recovered() (jobs []*jobRecord, sweeps []*sweepRecord, skipped int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs, st.sweeps, st.skipped
}
