package dram

import "fmt"

// Geometry describes the organization of one memory channel.
type Geometry struct {
	Ranks  int // ranks per channel
	Groups int // bank groups per rank
	Banks  int // banks per bank group
	Rows   int // rows per bank
	Cols   int // columns (cache lines) per row

	LineBytes int // bytes per column access (a cache line)
	BusBytes  int // data bus width in bytes
	DataRate  int // transfers per clock cycle (2 for DDR)

	ClockMHz int // memory clock in MHz
}

// BanksPerRank returns the total number of banks in one rank.
func (g Geometry) BanksPerRank() int { return g.Groups * g.Banks }

// TotalBanks returns the number of banks in the channel.
func (g Geometry) TotalBanks() int { return g.Ranks * g.Groups * g.Banks }

// RowBytes returns the size of one DRAM page (row) in bytes.
func (g Geometry) RowBytes() int { return g.Cols * g.LineBytes }

// CapacityBytes returns the addressable capacity of the channel in bytes.
func (g Geometry) CapacityBytes() uint64 {
	return uint64(g.Ranks) * uint64(g.Groups) * uint64(g.Banks) *
		uint64(g.Rows) * uint64(g.RowBytes())
}

// BytesPerCycle returns how many bytes the channel transfers per memory
// clock cycle at full utilization (bus width × data rate).
func (g Geometry) BytesPerCycle() int { return g.BusBytes * g.DataRate }

// PeakBandwidthGBs returns the theoretical peak bandwidth in GB/s
// (decimal GB, matching DRAM marketing and the paper's 19.2 GB/s).
func (g Geometry) PeakBandwidthGBs() float64 {
	return float64(g.BytesPerCycle()) * float64(g.ClockMHz) * 1e6 / 1e9
}

// CyclesToNS converts memory-clock cycles to nanoseconds.
func (g Geometry) CyclesToNS(cycles int64) float64 {
	return float64(cycles) * 1e3 / float64(g.ClockMHz)
}

// Validate reports a descriptive error if the geometry is unusable.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks <= 0 || g.Groups <= 0 || g.Banks <= 0:
		return fmt.Errorf("dram: geometry needs positive ranks/groups/banks, got %d/%d/%d",
			g.Ranks, g.Groups, g.Banks)
	case g.Rows <= 0 || g.Cols <= 0:
		return fmt.Errorf("dram: geometry needs positive rows/cols, got %d/%d", g.Rows, g.Cols)
	case g.LineBytes <= 0 || g.BusBytes <= 0 || g.DataRate <= 0:
		return fmt.Errorf("dram: geometry needs positive line/bus/rate, got %d/%d/%d",
			g.LineBytes, g.BusBytes, g.DataRate)
	case g.ClockMHz <= 0:
		return fmt.Errorf("dram: geometry needs positive clock, got %d MHz", g.ClockMHz)
	case g.TotalBanks() > 64:
		return fmt.Errorf("dram: at most 64 banks per channel supported, got %d", g.TotalBanks())
	}
	return nil
}

// Timing holds the DRAM timing parameters, all in memory-clock cycles.
// Field names follow the JEDEC parameter names without the "t" prefix.
type Timing struct {
	CL  int // CAS latency: read command to first data
	CWL int // CAS write latency: write command to first data
	BL2 int // burst length / 2: data bus cycles per column access

	RCD int // ACT to column command, same bank
	RP  int // PRE to ACT, same bank
	RAS int // ACT to PRE, same bank
	RC  int // ACT to ACT, same bank
	RTP int // RD to PRE, same bank
	WR  int // end of write data to PRE, same bank (write recovery)

	CCDS int // column command to column command, different bank group
	CCDL int // column command to column command, same bank group
	RRDS int // ACT to ACT, different bank group
	RRDL int // ACT to ACT, same bank group
	FAW  int // window in which at most four ACTs may issue per rank

	WTRS int // end of write data to read command, different bank group
	WTRL int // end of write data to read command, same bank group
	RTW  int // read command to write command, same rank (bus turnaround)

	RTRS int // rank-to-rank data bus switch gap

	RFC  int // refresh cycle time: REF blocks the rank this long
	REFI int // average refresh interval: one REF is due every REFI
}

// Validate reports a descriptive error if any parameter is non-positive or
// mutually inconsistent in a way that would deadlock the device model.
func (t Timing) Validate() error {
	type field struct {
		name string
		v    int
	}
	for _, f := range []field{
		{"CL", t.CL}, {"CWL", t.CWL}, {"BL2", t.BL2}, {"RCD", t.RCD},
		{"RP", t.RP}, {"RAS", t.RAS}, {"RC", t.RC}, {"RTP", t.RTP},
		{"WR", t.WR}, {"CCDS", t.CCDS}, {"CCDL", t.CCDL}, {"RRDS", t.RRDS},
		{"RRDL", t.RRDL}, {"FAW", t.FAW}, {"WTRS", t.WTRS}, {"WTRL", t.WTRL},
		{"RTW", t.RTW}, {"RFC", t.RFC}, {"REFI", t.REFI},
	} {
		if f.v <= 0 {
			return fmt.Errorf("dram: timing parameter %s must be positive, got %d", f.name, f.v)
		}
	}
	if t.RC < t.RAS+t.RP {
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.RC, t.RAS+t.RP)
	}
	if t.CCDL < t.CCDS {
		return fmt.Errorf("dram: tCCD_L (%d) < tCCD_S (%d)", t.CCDL, t.CCDS)
	}
	if t.REFI <= t.RFC {
		return fmt.Errorf("dram: tREFI (%d) must exceed tRFC (%d)", t.REFI, t.RFC)
	}
	return nil
}

// WriteToPre returns the minimum write command to precharge distance:
// the write data must appear (CWL), transfer (BL2) and be recovered (WR).
func (t Timing) WriteToPre() int { return t.CWL + t.BL2 + t.WR }

// WriteToRead returns the minimum write command to read command distance
// for the given locality (same bank group or not).
func (t Timing) WriteToRead(sameGroup bool) int {
	if sameGroup {
		return t.CWL + t.BL2 + t.WTRL
	}
	return t.CWL + t.BL2 + t.WTRS
}

// DDR4_3200 returns a DDR4-3200 module (1.6 GHz clock, 25.6 GB/s peak):
// the same architecture at a faster clock, so the analog timings occupy
// more cycles (CL22 class). Useful for speed-grade ablations — the
// bandwidth stack shows which components scale with frequency
// (transfers, tCCD_L gaps) and which do not (tRFC, tRCD in nanoseconds).
func DDR4_3200() (Geometry, Timing) {
	g, t := DDR4_2400()
	g.ClockMHz = 1600
	t.CL = 22
	t.CWL = 16
	t.RCD = 22
	t.RP = 22
	t.RAS = 52
	t.RC = 74
	t.RTP = 12
	t.WR = 24
	t.CCDS = 4
	t.CCDL = 8
	t.RRDS = 5
	t.RRDL = 8
	t.FAW = 34
	t.WTRS = 4
	t.WTRL = 12
	t.RTW = 22 + 4 + 2 - 16
	t.RFC = 560 // 350 ns at 1.6 GHz
	t.REFI = 12480
	return g, t
}

// DDR5_4800 returns one 32-bit subchannel of a DDR5-4800 DIMM: a 2.4 GHz
// clock on a 4-byte bus (19.2 GB/s peak, like DDR4-2400, but reached
// with BL16 bursts from 32 banks in 8 bank groups and 2 KB pages).
// Useful for generational comparisons: the same peak with very different
// stack shapes — longer bursts, more banks, smaller pages.
func DDR5_4800() (Geometry, Timing) {
	g := Geometry{
		Ranks:     1,
		Groups:    8,
		Banks:     4,
		Rows:      64 * 1024,
		Cols:      32, // 32 × 64 B = 2 KB page
		LineBytes: 64,
		BusBytes:  4,
		DataRate:  2,
		ClockMHz:  2400,
	}
	t := Timing{
		CL:   40,
		CWL:  38,
		BL2:  8, // BL16 on the half-width bus
		RCD:  39,
		RP:   39,
		RAS:  77,
		RC:   116,
		RTP:  18,
		WR:   72,
		CCDS: 8,
		CCDL: 12,
		RRDS: 8,
		RRDL: 12,
		FAW:  32,
		WTRS: 12,
		WTRL: 24,
		RTW:  40 + 8 + 2 - 38,
		RTRS: 3,
		RFC:  984, // 410 ns for a 16 Gb device
		REFI: 9360,
	}
	return g, t
}

// LPDDR5_6400 returns one 16-bit LPDDR5-6400 channel in bank-group mode:
// a 1600 MHz command clock with four data transfers per clock (WCK 2:1
// signalling folded into the data rate), for 12.8 GB/s peak on a 2-byte
// bus. Mobile DRAM trades bus width for efficiency: the same cache line
// occupies the bus four times longer than on DDR4-2400 (BL32), pages are
// a quarter the size, and refresh is comparatively cheap.
func LPDDR5_6400() (Geometry, Timing) {
	g := Geometry{
		Ranks:     1,
		Groups:    4,
		Banks:     4,
		Rows:      64 * 1024,
		Cols:      32, // 32 × 64 B = 2 KB page
		LineBytes: 64,
		BusBytes:  2,
		DataRate:  4,
		ClockMHz:  1600,
	}
	t := Timing{
		CL:   27, // RL ≈ 17 ns
		CWL:  14,
		BL2:  8, // BL32 on the x16 bus: 8 bus-clock cycles of data
		RCD:  29,
		RP:   29,
		RAS:  68,
		RC:   97,
		RTP:  12,
		WR:   28,
		CCDS: 8, // seamless across bank groups (= BL2)
		CCDL: 12,
		RRDS: 8,
		RRDL: 10,
		FAW:  32, // 20 ns
		WTRS: 12,
		WTRL: 18,
		RTW:  27 + 8 + 2 - 14, // CL + BL/2 + 2 - CWL
		RTRS: 4,
		RFC:  448,  // 280 ns all-bank refresh, 16 Gb die
		REFI: 6250, // 3.9 µs
	}
	return g, t
}

// HBM2_2000 returns one pseudo-channel of an HBM2-2000 stack: a 1 GHz
// clock on an 8-byte bus (16 GB/s peak per pseudo-channel; a full
// 8-channel stack is 16 pseudo-channels, 256 GB/s). Bandwidth comes from
// width, not speed: short BL4 bursts, small 1 KB pages, a tight 16 ns
// tFAW and low absolute latencies.
func HBM2_2000() (Geometry, Timing) {
	g := Geometry{
		Ranks:     1,
		Groups:    4,
		Banks:     4,
		Rows:      16 * 1024,
		Cols:      16, // 16 × 64 B = 1 KB page per pseudo-channel
		LineBytes: 64,
		BusBytes:  8,
		DataRate:  2,
		ClockMHz:  1000,
	}
	t := Timing{
		CL:   14,
		CWL:  7,
		BL2:  4, // two back-to-back BL4 bursts move one 64 B line
		RCD:  14,
		RP:   14,
		RAS:  33,
		RC:   47,
		RTP:  6,
		WR:   16,
		CCDS: 4, // seamless across bank groups (= BL2)
		CCDL: 6,
		RRDS: 4,
		RRDL: 6,
		FAW:  16, // 16 ns
		WTRS: 4,
		WTRL: 8,
		RTW:  14 + 4 + 2 - 7, // CL + BL/2 + 2 - CWL
		RTRS: 2,
		RFC:  260,  // 260 ns, 8 Gb channel
		REFI: 3900, // 3.9 µs
	}
	return g, t
}

// DDR4_2400_DualRank returns the same module as DDR4_2400 with two ranks
// per channel (32 banks, 8 GB): more bank parallelism for the same peak
// bandwidth, at the cost of rank-to-rank bus switch gaps (tRTRS).
func DDR4_2400_DualRank() (Geometry, Timing) {
	g, t := DDR4_2400()
	g.Ranks = 2
	return g, t
}

// DDR4_2400 returns the geometry and timing of the configuration evaluated
// in the paper: a single-channel, single-rank DDR4-2400 module with 4 bank
// groups × 4 banks, 8 KB pages, a 1.2 GHz clock and an 8-byte data bus,
// for a peak bandwidth of 19.2 GB/s.
func DDR4_2400() (Geometry, Timing) {
	g := Geometry{
		Ranks:     1,
		Groups:    4,
		Banks:     4,
		Rows:      32 * 1024,
		Cols:      128, // 128 × 64 B = 8 KB page
		LineBytes: 64,
		BusBytes:  8,
		DataRate:  2,
		ClockMHz:  1200,
	}
	t := Timing{
		CL:  16,
		CWL: 12,
		BL2: 4,
		RCD: 16,
		RP:  16,
		RAS: 39,
		RC:  55,
		RTP: 9,
		WR:  18,
		// tCCD_L = 6 > BL/2 = 4: a single bank group sustains one line
		// per 6 cycles while the channel could move one per 4 — the
		// source of the Fig. 2 "constraints" component.
		CCDS: 4,
		CCDL: 6,
		RRDS: 4,
		RRDL: 6,
		FAW:  26,
		WTRS: 3,
		WTRL: 9,
		RTW:  16 + 4 + 2 - 12, // CL + BL/2 + 2 - CWL
		RTRS: 2,
		RFC:  420,  // 350 ns for an 8 Gb device
		REFI: 9360, // 7.8 µs
	}
	return g, t
}
