// Package standard is a registry of DRAM standards: named presets that
// bundle a channel Geometry, a Timing set and the bus/topology knobs
// (bank groups, ranks, pseudo-channels, burst length, data rate) that
// distinguish one JEDEC standard from another.
//
// The constraint core in internal/dram is standard-agnostic — it only
// evaluates next-allowed-time rules over whatever Geometry and Timing it
// is given. A Standard is therefore pure data: DDR5, LPDDR5 and HBM2 are
// parameter presets over the same engine, in the spirit of Ramulator's
// composable device model. Every preset is validated on registration
// (Geometry.Validate + Timing.Validate), so an ill-formed standard is a
// startup panic, not a silent mis-simulation.
//
// HBM pseudo-channels are modeled with SubChannels: each pseudo-channel
// is an independently timed device with its own bus, so a Standard with
// SubChannels=2 contributes two constraint-core instances per addressed
// channel, and the pseudo-channel select bit sits directly above the
// cache-line offset in the address map.
package standard

import (
	"fmt"
	"sort"
	"strings"

	"dramstacks/internal/dram"
)

// DefaultName is the standard assumed when a spec or config names none:
// the DDR4-2400 configuration evaluated in the paper.
const DefaultName = "ddr4-2400"

// Standard is one registered DRAM standard: a Geometry + Timing preset
// plus the topology knobs the rest of the stack needs to instantiate it.
type Standard struct {
	// Name is the registry key, e.g. "ddr4-2400". Lower-case, stable,
	// and used verbatim in exp.Spec's "standard" field.
	Name string
	// Family groups speed grades of one JEDEC standard, e.g. "DDR4".
	Family string
	// Description is a one-line human summary for listings.
	Description string

	// Geometry describes one independently timed device: a channel for
	// DDR-class parts, a pseudo-channel for HBM.
	Geometry dram.Geometry
	// Timing holds the standard's timing parameters in memory-clock
	// cycles of Geometry.ClockMHz.
	Timing dram.Timing
	// SubChannels is the number of independently timed sub-devices
	// behind each addressed channel: 1 for DDR-class standards, 2 for
	// HBM2 pseudo-channel mode.
	SubChannels int
}

// Validate reports a descriptive error if the preset is unusable.
func (s Standard) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("standard: preset needs a name")
	}
	if s.Name != strings.ToLower(s.Name) {
		return fmt.Errorf("standard: name %q must be lower-case", s.Name)
	}
	if s.SubChannels <= 0 {
		return fmt.Errorf("standard: %s: sub-channels must be positive, got %d", s.Name, s.SubChannels)
	}
	if err := s.Geometry.Validate(); err != nil {
		return fmt.Errorf("standard: %s: %w", s.Name, err)
	}
	if err := s.Timing.Validate(); err != nil {
		return fmt.Errorf("standard: %s: %w", s.Name, err)
	}
	return nil
}

// PeakBandwidthGBs returns the peak bandwidth of one addressed channel
// in GB/s: the per-device peak times the number of sub-channels.
func (s Standard) PeakBandwidthGBs() float64 {
	return s.Geometry.PeakBandwidthGBs() * float64(s.SubChannels)
}

// BanksPerChannel returns the total banks behind one addressed channel.
func (s Standard) BanksPerChannel() int {
	return s.Geometry.TotalBanks() * s.SubChannels
}

// Info is the wire/report form of a Standard: the derived numbers a
// listing wants, with stable JSON field names (used by -list-standards
// and GET /v1/standards).
type Info struct {
	Name        string `json:"name"`
	Family      string `json:"family"`
	Description string `json:"description"`

	ClockMHz    int `json:"clock_mhz"`
	DataRate    int `json:"data_rate"`
	BusBytes    int `json:"bus_bytes"`
	SubChannels int `json:"sub_channels"`

	Ranks           int `json:"ranks"`
	Groups          int `json:"groups"`
	Banks           int `json:"banks"`
	Rows            int `json:"rows"`
	Cols            int `json:"cols"`
	PageBytes       int `json:"page_bytes"`
	BanksPerChannel int `json:"banks_per_channel"`

	PeakGBs float64 `json:"peak_gbps_per_channel"`

	CL   int `json:"cl"`
	CWL  int `json:"cwl"`
	BL2  int `json:"bl2"`
	RCD  int `json:"rcd"`
	RP   int `json:"rp"`
	RAS  int `json:"ras"`
	RC   int `json:"rc"`
	CCDS int `json:"ccd_s"`
	CCDL int `json:"ccd_l"`
	FAW  int `json:"faw"`
	RFC  int `json:"rfc"`
	REFI int `json:"refi"`
}

// Info returns the derived listing form of the standard.
func (s Standard) Info() Info {
	return Info{
		Name:        s.Name,
		Family:      s.Family,
		Description: s.Description,

		ClockMHz:    s.Geometry.ClockMHz,
		DataRate:    s.Geometry.DataRate,
		BusBytes:    s.Geometry.BusBytes,
		SubChannels: s.SubChannels,

		Ranks:           s.Geometry.Ranks,
		Groups:          s.Geometry.Groups,
		Banks:           s.Geometry.Banks,
		Rows:            s.Geometry.Rows,
		Cols:            s.Geometry.Cols,
		PageBytes:       s.Geometry.RowBytes(),
		BanksPerChannel: s.BanksPerChannel(),

		PeakGBs: s.PeakBandwidthGBs(),

		CL:   s.Timing.CL,
		CWL:  s.Timing.CWL,
		BL2:  s.Timing.BL2,
		RCD:  s.Timing.RCD,
		RP:   s.Timing.RP,
		RAS:  s.Timing.RAS,
		RC:   s.Timing.RC,
		CCDS: s.Timing.CCDS,
		CCDL: s.Timing.CCDL,
		FAW:  s.Timing.FAW,
		RFC:  s.Timing.RFC,
		REFI: s.Timing.REFI,
	}
}

// The registry. Iteration must be deterministic (this package is in
// dramvet's deterministic-core list), so lookups go through a map but
// every enumeration walks the sorted name slice.
var (
	registry = map[string]Standard{}
	names    []string // sorted registry keys
)

// register validates and adds a preset; it panics on duplicates or
// invalid presets so a bad registration fails at init, not mid-run.
func register(s Standard) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("standard: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
	names = append(names, s.Name)
	sort.Strings(names)
}

func preset(name, family, desc string, gt func() (dram.Geometry, dram.Timing), subChannels int) {
	g, t := gt()
	register(Standard{
		Name:        name,
		Family:      family,
		Description: desc,
		Geometry:    g,
		Timing:      t,
		SubChannels: subChannels,
	})
}

func init() {
	preset("ddr4-2400", "DDR4",
		"the paper's baseline: 1 rank, 4 groups x 4 banks, 8 KB pages, 19.2 GB/s",
		dram.DDR4_2400, 1)
	preset("ddr4-2400-2r", "DDR4",
		"DDR4-2400 with two ranks: 32 banks for the same peak, plus tRTRS gaps",
		dram.DDR4_2400_DualRank, 1)
	preset("ddr4-3200", "DDR4",
		"same architecture at 1.6 GHz (25.6 GB/s): timings occupy more cycles",
		dram.DDR4_3200, 1)
	preset("ddr5-4800", "DDR5",
		"one 32-bit subchannel: DDR4-2400's peak via BL16, 32 banks, 2 KB pages",
		dram.DDR5_4800, 1)
	preset("lpddr5-6400", "LPDDR5",
		"one 16-bit channel, WCK 4x data rate: 12.8 GB/s with BL32 and cheap refresh",
		dram.LPDDR5_6400, 1)
	preset("hbm2-2000", "HBM2",
		"one channel in pseudo-channel mode: 2 x 16 GB/s devices with BL4, 1 KB pages",
		dram.HBM2_2000, 2)
}

// Names returns the registered standard names in sorted order.
func Names() []string {
	return append([]string(nil), names...)
}

// All returns every registered standard in sorted name order.
func All() []Standard {
	out := make([]Standard, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Default returns the default standard (DefaultName). It is the exact
// DDR4-2400 configuration evaluated in the paper.
func Default() Standard { return registry[DefaultName] }

// Lookup returns the standard registered under name (case-insensitive,
// surrounding space ignored; empty means DefaultName). Unknown names get
// a did-you-mean error listing the registry.
func Lookup(name string) (Standard, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		key = DefaultName
	}
	if s, ok := registry[key]; ok {
		return s, nil
	}
	msg := fmt.Sprintf("standard: unknown DRAM standard %q", name)
	if near := closest(key); near != "" {
		msg += fmt.Sprintf(" (did you mean %q?)", near)
	}
	return Standard{}, fmt.Errorf("%s; known standards: %s", msg, strings.Join(names, ", "))
}

// MustLookup is Lookup for known-good names; it panics on error.
func MustLookup(name string) Standard {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// closest returns the registered name within edit distance 2 of key, or
// "" if none is close enough.
func closest(key string) string {
	best, bestDist := "", 3
	for _, n := range names {
		if d := editDistance(key, n); d < bestDist {
			best, bestDist = n, d
		}
	}
	return best
}

// editDistance returns the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
