package standard

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dramstacks/internal/dram"
)

// The default standard must be the exact DDR4-2400 configuration the
// paper evaluates — the whole stack treats it as the byte-identity
// oracle for pre-standard behavior.
func TestDefaultIsPaperDDR4(t *testing.T) {
	def := Default()
	if def.Name != DefaultName || DefaultName != "ddr4-2400" {
		t.Fatalf("default standard is %q, want ddr4-2400", def.Name)
	}
	g, tim := dram.DDR4_2400()
	if def.Geometry != g {
		t.Errorf("default geometry diverged from dram.DDR4_2400:\n got %+v\nwant %+v", def.Geometry, g)
	}
	if def.Timing != tim {
		t.Errorf("default timing diverged from dram.DDR4_2400:\n got %+v\nwant %+v", def.Timing, tim)
	}
	if def.SubChannels != 1 {
		t.Errorf("default sub-channels = %d, want 1", def.SubChannels)
	}
}

// Every registered preset must be machine-validated (Ramulator's 2.0
// re-evaluation lesson: presets are assumed correct until checked).
func TestEveryPresetValidates(t *testing.T) {
	if len(All()) < 6 {
		t.Fatalf("registry has %d presets, want at least 6", len(All()))
	}
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if err := s.Geometry.Validate(); err != nil {
			t.Errorf("%s geometry: %v", s.Name, err)
		}
		if err := s.Timing.Validate(); err != nil {
			t.Errorf("%s timing: %v", s.Name, err)
		}
		if s.PeakBandwidthGBs() <= 0 {
			t.Errorf("%s: non-positive peak bandwidth", s.Name)
		}
		if s.Family == "" || s.Description == "" {
			t.Errorf("%s: missing family or description", s.Name)
		}
	}
}

func TestNamesSortedAndMatchRegistry(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	want := []string{"ddr4-2400", "ddr4-2400-2r", "ddr4-3200", "ddr5-4800", "hbm2-2000", "lpddr5-6400"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Names() = %v, want %v", names, want)
	}
	all := All()
	for i, s := range all {
		if s.Name != names[i] {
			t.Errorf("All()[%d] = %q, want %q", i, s.Name, names[i])
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"ddr5-4800", " DDR5-4800 ", "Ddr5-4800"} {
		s, err := Lookup(name)
		if err != nil || s.Name != "ddr5-4800" {
			t.Errorf("Lookup(%q) = %q, %v; want ddr5-4800", name, s.Name, err)
		}
	}
	if s, err := Lookup(""); err != nil || s.Name != DefaultName {
		t.Errorf("Lookup(\"\") = %q, %v; want the default standard", s.Name, err)
	}

	_, err := Lookup("dd5-4800")
	if err == nil {
		t.Fatal("Lookup of a typo succeeded")
	}
	if !strings.Contains(err.Error(), `did you mean "ddr5-4800"?`) {
		t.Errorf("typo error lacks suggestion: %v", err)
	}
	if !strings.Contains(err.Error(), "known standards: "+strings.Join(Names(), ", ")) {
		t.Errorf("typo error lacks registry listing: %v", err)
	}

	_, err = Lookup("zzzzzzzz")
	if err == nil {
		t.Fatal("Lookup of gibberish succeeded")
	}
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("gibberish error suggests a name: %v", err)
	}
}

func TestPeakBandwidthDerivation(t *testing.T) {
	cases := []struct {
		name string
		want float64
	}{
		{"ddr4-2400", 19.2}, // the paper's peak
		{"ddr4-3200", 25.6},
		{"ddr5-4800", 19.2}, // one 32-bit subchannel
		{"lpddr5-6400", 12.8},
		{"hbm2-2000", 32.0}, // 2 pseudo-channels x 16 GB/s
	}
	for _, tc := range cases {
		s := MustLookup(tc.name)
		if got := s.PeakBandwidthGBs(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s peak = %g GB/s, want %g", tc.name, got, tc.want)
		}
	}
}

func TestHBMTopology(t *testing.T) {
	h := MustLookup("hbm2-2000")
	if h.SubChannels != 2 {
		t.Fatalf("hbm2-2000 sub-channels = %d, want 2", h.SubChannels)
	}
	if got := h.BanksPerChannel(); got != 32 {
		t.Errorf("hbm2-2000 banks per channel = %d, want 32 (16 per pseudo-channel)", got)
	}
	info := h.Info()
	if info.SubChannels != 2 || info.PeakGBs != 32.0 || info.PageBytes != 1024 {
		t.Errorf("hbm2-2000 Info = %+v; want sub_channels 2, peak 32, 1 KB pages", info)
	}
}

func TestInfoRoundTrip(t *testing.T) {
	for _, s := range All() {
		info := s.Info()
		if info.Name != s.Name || info.ClockMHz != s.Geometry.ClockMHz ||
			info.CL != s.Timing.CL || info.RFC != s.Timing.RFC {
			t.Errorf("%s: Info() lost fields: %+v", s.Name, info)
		}
		if info.BanksPerChannel != s.Geometry.TotalBanks()*s.SubChannels {
			t.Errorf("%s: banks per channel %d", s.Name, info.BanksPerChannel)
		}
	}
}
