package dram

import "fmt"

// Violation describes one timing or protocol violation found by a Verifier.
type Violation struct {
	Cycle int64
	Cmd   Command
	Rule  string
}

// Error formats the violation; Violation satisfies the error interface so a
// single violation can be returned directly.
func (v Violation) Error() string {
	return fmt.Sprintf("cycle %d: %v violates %s", v.Cycle, v.Cmd, v.Rule)
}

// Verifier independently re-checks a DRAM command trace against a pairwise
// formulation of the JEDEC-style constraints. It deliberately does not share
// code with Device: the Device derives legality incrementally from
// "next-allowed" tables, while the Verifier compares each new command
// against the history of previously issued commands, so a bug in one
// formulation is caught by the other.
//
// Feed commands in non-decreasing cycle order via Check; violations are
// accumulated and also returned per call.
type Verifier struct {
	geo Geometry
	tim Timing

	last   int64
	vs     []Violation
	checks int64

	// Channel data-bus history.
	lastDataEnd  int64
	lastDataRank int

	// Per-bank history.
	bank []vbank
	// Per-group history: last ACT / RD / WR / (write data end).
	grp []vscope
	// Per-rank history.
	rnk []vrank
}

type vbank struct {
	open       bool
	row        int
	lastACT    int64
	lastPRE    int64
	lastRD     int64
	lastWR     int64
	apReleases int64 // cycle when a pending auto-precharge completes (tRP included)
	apPending  bool
	apStart    int64 // when the auto-precharge begins
}

type vscope struct {
	lastACT int64
	lastRD  int64
	lastWR  int64
}

type vrank struct {
	vscope
	acts     []int64 // ACT issue times for the tFAW window
	refUntil int64
	lastREF  int64
}

const farPast = -1 << 60

// NewVerifier returns a Verifier for the given configuration.
func NewVerifier(geo Geometry, tim Timing) *Verifier {
	v := &Verifier{
		geo:         geo,
		tim:         tim,
		bank:        make([]vbank, geo.TotalBanks()),
		grp:         make([]vscope, geo.Ranks*geo.Groups),
		rnk:         make([]vrank, geo.Ranks),
		last:        farPast,
		lastDataEnd: farPast,
	}
	for i := range v.bank {
		b := &v.bank[i]
		b.lastACT, b.lastPRE, b.lastRD, b.lastWR = farPast, farPast, farPast, farPast
	}
	for i := range v.grp {
		g := &v.grp[i]
		g.lastACT, g.lastRD, g.lastWR = farPast, farPast, farPast
	}
	for i := range v.rnk {
		r := &v.rnk[i]
		r.lastACT, r.lastRD, r.lastWR, r.refUntil, r.lastREF = farPast, farPast, farPast, farPast, farPast
	}
	return v
}

// Violations returns all violations found so far.
func (v *Verifier) Violations() []Violation { return v.vs }

// Checked returns how many commands have been verified.
func (v *Verifier) Checked() int64 { return v.checks }

func (v *Verifier) fail(cycle int64, cmd Command, rule string, args ...any) {
	v.vs = append(v.vs, Violation{cycle, cmd, fmt.Sprintf(rule, args...)})
}

func (v *Verifier) require(cycle int64, cmd Command, since int64, gap int, rule string) {
	if since == farPast {
		return
	}
	if cycle < since+int64(gap) {
		v.fail(cycle, cmd, "%s: need %d cycles after %d, got %d", rule, gap, since, cycle-since)
	}
}

// applyAP materializes a bank's pending auto-precharge if it has begun.
func (v *Verifier) applyAP(b *vbank, at int64) {
	if b.apPending && b.apStart <= at {
		b.open = false
		b.lastPRE = b.apStart
		b.apPending = false
	}
}

// checkBus verifies the data bus is free for a new burst starting at
// dataStart, including the rank-to-rank switch gap, and claims it.
func (v *Verifier) checkBus(cycle int64, cmd Command, dataStart int64) {
	need := v.lastDataEnd
	if need != farPast && cmd.Loc.Rank != v.lastDataRank {
		need += int64(v.tim.RTRS)
	}
	if v.lastDataEnd != farPast && dataStart < need {
		v.fail(cycle, cmd, "data bus: burst at %d overlaps previous (free at %d)", dataStart, need)
	}
	v.lastDataEnd = dataStart + int64(v.tim.BL2)
	v.lastDataRank = cmd.Loc.Rank
}

// Check verifies one command at the given cycle. It returns the violations
// this command introduced (nil if legal).
func (v *Verifier) Check(cycle int64, cmd Command) []Violation {
	before := len(v.vs)
	v.checks++
	if cycle < v.last {
		v.fail(cycle, cmd, "trace order: cycle %d before previous %d", cycle, v.last)
	}
	v.last = cycle

	tm := v.tim
	bi := (cmd.Loc.Rank*v.geo.Groups+cmd.Loc.Group)*v.geo.Banks + cmd.Loc.Bank
	b := &v.bank[bi]
	g := &v.grp[cmd.Loc.Rank*v.geo.Groups+cmd.Loc.Group]
	r := &v.rnk[cmd.Loc.Rank]
	v.applyAP(b, cycle)

	if cycle < r.refUntil && cmd.Kind != CmdREF {
		v.fail(cycle, cmd, "tRFC: rank refreshing until %d", r.refUntil)
	}

	switch cmd.Kind {
	case CmdACT:
		if b.open {
			v.fail(cycle, cmd, "protocol: ACT on bank with open row %d", b.row)
		}
		v.require(cycle, cmd, b.lastACT, tm.RC, "tRC(same bank)")
		v.require(cycle, cmd, b.lastPRE, tm.RP, "tRP(same bank)")
		v.require(cycle, cmd, g.lastACT, tm.RRDL, "tRRD_L(same group)")
		v.require(cycle, cmd, r.lastACT, tm.RRDS, "tRRD_S(same rank)")
		if n := len(r.acts); n >= 4 {
			if fourth := r.acts[n-4]; cycle < fourth+int64(tm.FAW) {
				v.fail(cycle, cmd, "tFAW: 5th ACT %d cycles after %d", cycle-fourth, fourth)
			}
		}
		b.open, b.row = true, cmd.Loc.Row
		b.lastACT = cycle
		g.lastACT, r.lastACT = cycle, cycle
		r.acts = append(r.acts, cycle)
		if len(r.acts) > 8 {
			r.acts = r.acts[len(r.acts)-8:]
		}

	case CmdPRE, CmdPREA:
		banks := []int{bi}
		if cmd.Kind == CmdPREA {
			banks = banks[:0]
			base := cmd.Loc.Rank * v.geo.BanksPerRank()
			for i := 0; i < v.geo.BanksPerRank(); i++ {
				banks = append(banks, base+i)
			}
		}
		for _, idx := range banks {
			bb := &v.bank[idx]
			v.applyAP(bb, cycle)
			if bb.apPending {
				if cmd.Kind == CmdPRE {
					v.fail(cycle, cmd, "protocol: PRE on auto-precharging bank")
				}
				continue // PREA leaves self-closing banks alone
			}
			if !bb.open {
				if cmd.Kind == CmdPRE {
					v.fail(cycle, cmd, "protocol: PRE on precharged bank")
				}
				continue
			}
			v.require(cycle, cmd, bb.lastACT, tm.RAS, "tRAS(ACT->PRE)")
			v.require(cycle, cmd, bb.lastRD, tm.RTP, "tRTP(RD->PRE)")
			v.require(cycle, cmd, bb.lastWR, tm.WriteToPre(), "tWR(WR->PRE)")
			bb.open = false
			bb.lastPRE = cycle
		}

	case CmdRD, CmdRDA:
		if !b.open || b.row != cmd.Loc.Row {
			v.fail(cycle, cmd, "protocol: RD needs row %d open (open=%v row=%d)",
				cmd.Loc.Row, b.open, b.row)
		}
		v.require(cycle, cmd, b.lastACT, tm.RCD, "tRCD(ACT->RD)")
		v.require(cycle, cmd, g.lastRD, tm.CCDL, "tCCD_L(RD->RD same group)")
		v.require(cycle, cmd, g.lastWR, tm.CCDL, "tCCD_L(WR->RD same group)")
		v.require(cycle, cmd, g.lastWR, tm.WriteToRead(true), "tWTR_L(WR->RD same group)")
		v.require(cycle, cmd, r.lastRD, tm.CCDS, "tCCD_S(RD->RD same rank)")
		v.require(cycle, cmd, r.lastWR, tm.WriteToRead(false), "tWTR_S(WR->RD same rank)")
		v.checkBus(cycle, cmd, cycle+int64(tm.CL))
		b.lastRD = cycle
		g.lastRD, r.lastRD = cycle, cycle
		if cmd.Kind == CmdRDA {
			b.apPending = true
			b.apStart = cycle + int64(tm.RTP)
		}

	case CmdWR, CmdWRA:
		if !b.open || b.row != cmd.Loc.Row {
			v.fail(cycle, cmd, "protocol: WR needs row %d open (open=%v row=%d)",
				cmd.Loc.Row, b.open, b.row)
		}
		v.require(cycle, cmd, b.lastACT, tm.RCD, "tRCD(ACT->WR)")
		v.require(cycle, cmd, g.lastRD, tm.CCDL, "tCCD_L(RD->WR same group)")
		v.require(cycle, cmd, g.lastWR, tm.CCDL, "tCCD_L(WR->WR same group)")
		v.require(cycle, cmd, r.lastWR, tm.CCDS, "tCCD_S(WR->WR same rank)")
		v.require(cycle, cmd, r.lastRD, tm.RTW, "tRTW(RD->WR turnaround)")
		v.checkBus(cycle, cmd, cycle+int64(tm.CWL))
		b.lastWR = cycle
		g.lastWR, r.lastWR = cycle, cycle
		if cmd.Kind == CmdWRA {
			b.apPending = true
			b.apStart = cycle + int64(tm.WriteToPre())
		}

	case CmdREF:
		base := cmd.Loc.Rank * v.geo.BanksPerRank()
		for i := 0; i < v.geo.BanksPerRank(); i++ {
			bb := &v.bank[base+i]
			v.applyAP(bb, cycle)
			if bb.open {
				v.fail(cycle, cmd, "protocol: REF with bank %d open", i)
			}
			v.require(cycle, cmd, bb.lastPRE, tm.RP, "tRP(PRE->REF)")
		}
		v.require(cycle, cmd, r.lastREF, tm.RFC, "tRFC(REF->REF)")
		r.refUntil = cycle + int64(tm.RFC)
		r.lastREF = cycle

	default:
		v.fail(cycle, cmd, "protocol: unknown command kind %d", cmd.Kind)
	}

	if len(v.vs) == before {
		return nil
	}
	return v.vs[before:]
}
