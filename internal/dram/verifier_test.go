package dram

import (
	"strings"
	"testing"
)

func TestVerifierAcceptsLegalSequence(t *testing.T) {
	g, tm := testConfig()
	v := NewVerifier(g, tm)
	loc := Loc{Row: 3}
	steps := []struct {
		cycle int64
		kind  CommandKind
	}{
		{0, CmdACT},
		{int64(tm.RCD), CmdRD},
		{int64(tm.RCD + tm.CCDL), CmdRD},
		{maxi64(int64(tm.RAS), int64(tm.RCD+tm.CCDL+tm.RTP)), CmdPRE},
	}
	for _, s := range steps {
		if vs := v.Check(s.cycle, Command{s.kind, loc}); vs != nil {
			t.Fatalf("legal %v at %d rejected: %v", s.kind, s.cycle, vs[0])
		}
	}
	if len(v.Violations()) != 0 {
		t.Errorf("violations = %v, want none", v.Violations())
	}
}

func TestVerifierCatchesViolations(t *testing.T) {
	g, tm := testConfig()
	loc := Loc{Row: 3}
	other := Loc{Row: 4}
	cases := []struct {
		name  string
		setup []struct {
			cycle int64
			cmd   Command
		}
		bad  Command
		at   int64
		rule string
	}{
		{
			name: "read before tRCD",
			setup: []struct {
				cycle int64
				cmd   Command
			}{{0, Command{CmdACT, loc}}},
			bad: Command{CmdRD, loc}, at: int64(tm.RCD) - 1, rule: "tRCD",
		},
		{
			name: "precharge before tRAS",
			setup: []struct {
				cycle int64
				cmd   Command
			}{{0, Command{CmdACT, loc}}},
			bad: Command{CmdPRE, loc}, at: int64(tm.RAS) - 1, rule: "tRAS",
		},
		{
			name: "read on closed bank",
			bad:  Command{CmdRD, loc}, at: 0, rule: "protocol",
		},
		{
			name: "activate on open bank",
			setup: []struct {
				cycle int64
				cmd   Command
			}{{0, Command{CmdACT, loc}}},
			bad: Command{CmdACT, other}, at: int64(tm.RC), rule: "protocol",
		},
		{
			name: "same-group reads closer than tCCD_L",
			setup: []struct {
				cycle int64
				cmd   Command
			}{
				{0, Command{CmdACT, loc}},
				{int64(tm.RCD), Command{CmdRD, loc}},
			},
			bad: Command{CmdRD, loc}, at: int64(tm.RCD + tm.CCDL - 1), rule: "tCCD_L",
		},
		{
			name: "write to read too fast",
			setup: []struct {
				cycle int64
				cmd   Command
			}{
				{0, Command{CmdACT, loc}},
				{int64(tm.RCD), Command{CmdWR, loc}},
			},
			bad: Command{CmdRD, loc}, at: int64(tm.RCD + tm.WriteToRead(true) - 1), rule: "tWTR_L",
		},
		{
			name: "refresh with open bank",
			setup: []struct {
				cycle int64
				cmd   Command
			}{{0, Command{CmdACT, loc}}},
			bad: Command{CmdREF, Loc{}}, at: 100, rule: "protocol",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewVerifier(g, tm)
			for _, s := range tc.setup {
				if vs := v.Check(s.cycle, s.cmd); vs != nil {
					t.Fatalf("setup command rejected: %v", vs[0])
				}
			}
			vs := v.Check(tc.at, tc.bad)
			if vs == nil {
				t.Fatalf("violation not detected")
			}
			found := false
			for _, viol := range vs {
				if strings.Contains(viol.Rule, tc.rule) {
					found = true
				}
			}
			if !found {
				t.Errorf("violations %v do not mention %q", vs, tc.rule)
			}
		})
	}
}

func TestVerifierFAW(t *testing.T) {
	g, tm := testConfig()
	v := NewVerifier(g, tm)
	// Four ACTs spaced tRRD_S apart, then a fifth inside the FAW window.
	cycle := int64(0)
	for i := 0; i < 4; i++ {
		loc := Loc{Group: i, Bank: 0, Row: 1}
		if vs := v.Check(cycle, Command{CmdACT, loc}); vs != nil {
			t.Fatalf("ACT %d rejected: %v", i, vs[0])
		}
		cycle += int64(tm.RRDS)
	}
	fifth := Loc{Group: 0, Bank: 1, Row: 1}
	at := int64(tm.FAW) - 1
	vs := v.Check(at, Command{CmdACT, fifth})
	if vs == nil {
		t.Fatal("5th ACT inside tFAW not detected")
	}
	if !strings.Contains(vs[0].Rule, "tFAW") {
		t.Errorf("violation %v does not mention tFAW", vs[0])
	}
}

func TestVerifierAutoPrecharge(t *testing.T) {
	g, tm := testConfig()
	v := NewVerifier(g, tm)
	loc := Loc{Row: 3}
	rd := maxi64(int64(tm.RCD), int64(tm.RAS-tm.RTP))
	if vs := v.Check(0, Command{CmdACT, loc}); vs != nil {
		t.Fatal(vs[0])
	}
	if vs := v.Check(rd, Command{CmdRDA, loc}); vs != nil {
		t.Fatal(vs[0])
	}
	// After the auto-precharge completes, a new ACT is legal; before tRP
	// from the precharge start it is not.
	apStart := rd + int64(tm.RTP)
	bad := v.Check(apStart+int64(tm.RP)-1, Command{CmdACT, Loc{Row: 9}})
	if bad == nil {
		t.Fatal("ACT inside auto-precharge tRP not detected")
	}
	v2 := NewVerifier(g, tm)
	v2.Check(0, Command{CmdACT, loc})
	v2.Check(rd, Command{CmdRDA, loc})
	// tRC from the first ACT may dominate; take the later of the two.
	ok := maxi64(apStart+int64(tm.RP), int64(tm.RC))
	if vs := v2.Check(ok, Command{CmdACT, Loc{Row: 9}}); vs != nil {
		t.Fatalf("legal ACT after auto-precharge rejected: %v", vs[0])
	}
}

func TestVerifierTraceOrder(t *testing.T) {
	g, tm := testConfig()
	v := NewVerifier(g, tm)
	v.Check(100, Command{CmdACT, Loc{Row: 1}})
	vs := v.Check(99, Command{CmdPRE, Loc{Row: 1}})
	if vs == nil {
		t.Fatal("out-of-order trace not detected")
	}
	if !strings.Contains(vs[0].Rule, "order") {
		t.Errorf("violation %v does not mention trace order", vs[0])
	}
}

func TestViolationError(t *testing.T) {
	viol := Violation{Cycle: 7, Cmd: Command{CmdRD, Loc{Row: 2}}, Rule: "tRCD"}
	msg := viol.Error()
	for _, want := range []string{"7", "RD", "tRCD"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
