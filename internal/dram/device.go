package dram

import "fmt"

// bankState tracks one bank's row buffer and its per-bank next-allowed times.
type bankState struct {
	open bool
	row  int

	// Windows during which the bank is executing an activate or precharge,
	// used both for legality (row not usable before actDone) and for the
	// bandwidth-stack "busy bank" classification.
	actStart, actDone int64
	preStart, preDone int64

	// Pending auto-precharge: at apAt the bank starts precharging itself.
	apPending bool
	apAt      int64

	nextACT int64
	nextPRE int64
	nextCol int64 // earliest column command (from tRCD)
}

// groupState holds the bank-group-level next-allowed times.
type groupState struct {
	nextACT int64 // tRRD_L
	nextRD  int64 // tCCD_L, tWTR_L
	nextWR  int64 // tCCD_L
}

// rankState holds the rank-level next-allowed times and refresh state.
type rankState struct {
	nextACT int64 // tRRD_S
	nextRD  int64 // tCCD_S, tWTR_S, tRFC
	nextWR  int64 // tCCD_S, tRTW, tRFC

	faw    [4]int64 // issue times of the last four ACTs
	fawIdx int

	refUntil int64 // rank blocked by an in-flight REF until this cycle
}

// busRing records which kind of data occupies the channel data bus on each
// cycle, for the bandwidth stack's read/write classification. The ring must
// be longer than CL+BL2 so entries are consumed before being overwritten.
const busRingSize = 512

// DataKind classifies what the data bus carries on a given cycle.
type DataKind uint8

const (
	// DataNone means the bus is idle this cycle.
	DataNone DataKind = iota
	// DataRead means read data occupies the bus this cycle.
	DataRead
	// DataWrite means write data occupies the bus this cycle.
	DataWrite
)

// Device models one DRAM channel: its banks, bank groups, ranks, data bus
// and every timing constraint between commands. A memory controller asks
// CanIssue before placing a command with Issue; issuing an illegal command
// panics, because it indicates a controller bug, not a runtime condition.
//
// The controller is expected to call Sync(now) once per cycle (in
// non-decreasing time order) before querying or issuing, so that pending
// auto-precharges are applied.
type Device struct {
	geo Geometry
	tim Timing

	banks  []bankState // [rank][group][bank] flattened
	groups []groupState
	ranks  []rankState

	busBusyUntil int64
	busRank      int // rank owning the last data transfer
	busKind      [busRingSize]DataKind

	apCount int // number of banks with a pending auto-precharge

	// quietAt is the earliest cycle at which, absent further commands,
	// the device is observably idle: no bank is inside an activate or
	// precharge window (including pending auto-precharges), no rank is
	// inside tRFC, and the data bus carries nothing. It is maintained in
	// O(1) on every Issue so the controller can prove channel idleness
	// without scanning the banks (the basis of idle-cycle
	// fast-forwarding). Row-buffer state and next-allowed times may
	// extend past quietAt; they only matter once a new command arrives.
	quietAt int64

	now int64

	// Trace, if non-nil, receives every issued command with its cycle.
	Trace func(cycle int64, cmd Command)

	// Counters.
	stats Stats
}

// Stats counts the commands a Device has executed. PRE counts explicit
// precharges (including those from PREA); AutoPRE counts auto-precharges
// triggered by RDA/WRA commands.
type Stats struct {
	ACT, PRE, AutoPRE, RD, WR, REF int64
}

// NewDevice returns a Device for the given geometry and timing.
// It panics if either is invalid (configuration error).
func NewDevice(geo Geometry, tim Timing) *Device {
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	if err := tim.Validate(); err != nil {
		panic(err)
	}
	d := &Device{
		geo:    geo,
		tim:    tim,
		banks:  make([]bankState, geo.TotalBanks()),
		groups: make([]groupState, geo.Ranks*geo.Groups),
		ranks:  make([]rankState, geo.Ranks),
	}
	for r := range d.ranks {
		for i := range d.ranks[r].faw {
			d.ranks[r].faw[i] = -1 << 62
		}
	}
	return d
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Timing returns the device timing parameters.
func (d *Device) Timing() Timing { return d.tim }

// Stats returns the command counters accumulated so far.
func (d *Device) Stats() Stats { return d.stats }

func (d *Device) bankIndex(l Loc) int {
	return (l.Rank*d.geo.Groups+l.Group)*d.geo.Banks + l.Bank
}

func (d *Device) groupIndex(l Loc) int { return l.Rank*d.geo.Groups + l.Group }

func (d *Device) checkLoc(l Loc) {
	if l.Rank < 0 || l.Rank >= d.geo.Ranks ||
		l.Group < 0 || l.Group >= d.geo.Groups ||
		l.Bank < 0 || l.Bank >= d.geo.Banks ||
		l.Row < 0 || l.Row >= d.geo.Rows ||
		l.Col < 0 || l.Col >= d.geo.Cols {
		panic(fmt.Sprintf("dram: location out of range: %v", l))
	}
}

// Sync advances the device's notion of time to now, applying any
// auto-precharges that have come due. It must be called with
// non-decreasing now values.
func (d *Device) Sync(now int64) {
	if now < d.now {
		panic(fmt.Sprintf("dram: Sync time went backwards: %d -> %d", d.now, now))
	}
	d.now = now
	if d.apCount == 0 {
		return
	}
	for i := range d.banks {
		b := &d.banks[i]
		if b.apPending && b.apAt <= now {
			d.applyPrecharge(b, b.apAt)
			b.apPending = false
			d.apCount--
		}
	}
}

func (d *Device) applyPrecharge(b *bankState, at int64) {
	b.open = false
	b.preStart = at
	b.preDone = at + int64(d.tim.RP)
	if n := b.preDone; n > b.nextACT {
		b.nextACT = n
	}
	d.bumpQuiet(b.preDone)
}

// bumpQuiet extends the observable-activity horizon.
func (d *Device) bumpQuiet(t int64) {
	if t > d.quietAt {
		d.quietAt = t
	}
}

// QuietAt returns the earliest cycle from which the device is observably
// idle if no further commands are issued: BankBusy is (false, false) for
// every bank, AnyRefreshing is false and the data bus is free at every
// cycle ≥ QuietAt(). Open row buffers and residual next-allowed times do
// not count as activity.
func (d *Device) QuietAt() int64 { return d.quietAt }

// RowOpen reports whether the bank at l has row l.Row open and usable
// (activation complete) at cycle "at".
func (d *Device) RowOpen(l Loc, at int64) bool {
	b := &d.banks[d.bankIndex(l)]
	if b.apPending && b.apAt <= at {
		return false
	}
	return b.open && b.row == l.Row && at >= b.actDone
}

// OpenRow returns the currently open row of the bank at l, or -1 if the
// bank is precharged (or will be, due to a due auto-precharge).
func (d *Device) OpenRow(l Loc, at int64) int {
	b := &d.banks[d.bankIndex(l)]
	if !b.open || (b.apPending && b.apAt <= at) {
		return -1
	}
	return b.row
}

// Refreshing reports whether the rank is inside a refresh (tRFC) at cycle at.
func (d *Device) Refreshing(rank int, at int64) bool {
	return at < d.ranks[rank].refUntil
}

// AnyRefreshing reports whether any rank of the channel is refreshing at at.
func (d *Device) AnyRefreshing(at int64) bool {
	for r := range d.ranks {
		if at < d.ranks[r].refUntil {
			return true
		}
	}
	return false
}

// BusKindAt returns what the data bus carries at cycle at. Only cycles in
// the recent past or near future (within the bus ring) are meaningful.
func (d *Device) BusKindAt(at int64) DataKind {
	return d.busKind[at&(busRingSize-1)]
}

// RefreshOnlyUntil returns the cycle through which the device's only
// observable activity is in-flight rank refreshes, assuming no further
// commands are issued: when at cycle at the data bus is clear, no bank
// is precharging or activating, no auto-precharge is pending, and at
// least one rank is inside tRFC, it returns the latest refUntil — every
// cycle in [at, result) then observes exactly "refreshing, nothing
// else" (ranks refreshing at at cover that whole span, since each
// covers [at, its refUntil)). Otherwise it returns at.
func (d *Device) RefreshOnlyUntil(at int64) int64 {
	end := at
	for r := range d.ranks {
		if u := d.ranks[r].refUntil; u > end {
			end = u
		}
	}
	if end == at || d.apCount > 0 || d.busBusyUntil > at {
		return at
	}
	for i := range d.banks {
		b := &d.banks[i]
		if b.preDone > at || b.actDone > at {
			return at
		}
	}
	return end
}

// BankBusy classifies the bank's activity at cycle at for the bandwidth
// stack: precharging, activating, or neither.
func (d *Device) BankBusy(bank int, at int64) (precharging, activating bool) {
	b := &d.banks[bank]
	pre := at >= b.preStart && at < b.preDone
	if b.apPending && at >= b.apAt && at < b.apAt+int64(d.tim.RP) {
		pre = true
	}
	act := at >= b.actStart && at < b.actDone
	return pre, act
}

// fawOK reports whether a new ACT at cycle at respects the tFAW window.
func (r *rankState) fawOK(at int64, faw int) bool {
	return at >= r.faw[r.fawIdx]+int64(faw)
}

// EarliestIssue returns the earliest cycle ≥ at when cmd could legally
// issue given the current device state, and whether it is possible at all
// without further state changes (e.g. RD to a bank whose open row differs
// needs a PRE first and reports ok == false).
//
// The returned time accounts for bank, group, rank and data-bus timing but
// assumes no further commands are issued in between.
func (d *Device) EarliestIssue(cmd Command, at int64) (cycle int64, ok bool) {
	d.checkLoc(cmd.Loc)
	b := &d.banks[d.bankIndex(cmd.Loc)]
	g := &d.groups[d.groupIndex(cmd.Loc)]
	r := &d.ranks[cmd.Loc.Rank]

	// A due-but-unapplied auto-precharge makes bank state ambiguous;
	// callers must Sync first.
	if b.apPending && b.apAt <= at {
		panic("dram: EarliestIssue called before Sync applied a due auto-precharge")
	}

	t := at
	if r.refUntil > t {
		t = r.refUntil
	}
	switch cmd.Kind {
	case CmdACT:
		if b.open && !b.apPending {
			return 0, false // must precharge first
		}
		if b.apPending {
			t = maxi64(t, b.apAt+int64(d.tim.RP))
		}
		t = maxi64(t, b.nextACT, g.nextACT, r.nextACT)
		if !r.fawOK(t, d.tim.FAW) {
			t = r.faw[r.fawIdx] + int64(d.tim.FAW)
		}
		return t, true
	case CmdPRE:
		if !b.open || b.apPending {
			return 0, false // closed, or already closing itself
		}
		return maxi64(t, b.nextPRE), true
	case CmdPREA:
		for i := 0; i < d.geo.BanksPerRank(); i++ {
			bb := &d.banks[cmd.Loc.Rank*d.geo.BanksPerRank()+i]
			if bb.open && !bb.apPending {
				t = maxi64(t, bb.nextPRE)
			}
		}
		return t, true
	case CmdRD, CmdRDA:
		if !b.open || b.row != cmd.Loc.Row || b.apPending {
			return 0, false
		}
		t = maxi64(t, b.nextCol, g.nextRD, r.nextRD)
		// Data bus must be free for [t+CL, t+CL+BL2), plus the
		// rank-to-rank switch gap when the bus owner changes.
		if need := d.busFreeFor(cmd.Loc.Rank) - int64(d.tim.CL); t < need {
			t = need
		}
		return t, true
	case CmdWR, CmdWRA:
		if !b.open || b.row != cmd.Loc.Row || b.apPending {
			return 0, false
		}
		t = maxi64(t, b.nextCol, g.nextWR, r.nextWR)
		if need := d.busFreeFor(cmd.Loc.Rank) - int64(d.tim.CWL); t < need {
			t = need
		}
		return t, true
	case CmdREF:
		for i := 0; i < d.geo.BanksPerRank(); i++ {
			bb := &d.banks[cmd.Loc.Rank*d.geo.BanksPerRank()+i]
			if bb.open && !bb.apPending {
				return 0, false // all banks must be precharged
			}
			if bb.apPending {
				t = maxi64(t, bb.apAt+int64(d.tim.RP))
			}
			t = maxi64(t, bb.nextACT) // tRP from the last PRE
		}
		return t, true
	default:
		panic(fmt.Sprintf("dram: unknown command kind %v", cmd.Kind))
	}
}

// CanIssue reports whether cmd may legally issue exactly at cycle at.
func (d *Device) CanIssue(cmd Command, at int64) bool {
	t, ok := d.EarliestIssue(cmd, at)
	return ok && t <= at
}

// Issue places cmd on the command bus at cycle at, updating all timing
// state. It panics if the command is illegal at that cycle — the memory
// controller must gate every issue with CanIssue.
func (d *Device) Issue(cmd Command, at int64) {
	if !d.CanIssue(cmd, at) {
		panic(fmt.Sprintf("dram: illegal command %v at cycle %d", cmd, at))
	}
	b := &d.banks[d.bankIndex(cmd.Loc)]
	g := &d.groups[d.groupIndex(cmd.Loc)]
	r := &d.ranks[cmd.Loc.Rank]
	tm := d.tim

	switch cmd.Kind {
	case CmdACT:
		b.open = true
		b.row = cmd.Loc.Row
		b.actStart = at
		b.actDone = at + int64(tm.RCD)
		d.bumpQuiet(b.actDone)
		b.nextCol = at + int64(tm.RCD)
		b.nextPRE = maxi64(b.nextPRE, at+int64(tm.RAS))
		b.nextACT = maxi64(b.nextACT, at+int64(tm.RC))
		g.nextACT = maxi64(g.nextACT, at+int64(tm.RRDL))
		r.nextACT = maxi64(r.nextACT, at+int64(tm.RRDS))
		r.faw[r.fawIdx] = at
		r.fawIdx = (r.fawIdx + 1) % len(r.faw)
		d.stats.ACT++

	case CmdPRE:
		d.applyPrecharge(b, at)
		d.stats.PRE++

	case CmdPREA:
		for i := 0; i < d.geo.BanksPerRank(); i++ {
			bb := &d.banks[cmd.Loc.Rank*d.geo.BanksPerRank()+i]
			if bb.open && !bb.apPending {
				d.applyPrecharge(bb, at)
				d.stats.PRE++
			}
		}

	case CmdRD, CmdRDA:
		dataStart := at + int64(tm.CL)
		d.claimBus(dataStart, DataRead, cmd.Loc.Rank)
		// Same-group and same-rank column spacing.
		g.nextRD = maxi64(g.nextRD, at+int64(tm.CCDL))
		g.nextWR = maxi64(g.nextWR, at+int64(tm.CCDL))
		r.nextRD = maxi64(r.nextRD, at+int64(tm.CCDS))
		// Read-to-write bus turnaround (rank level).
		r.nextWR = maxi64(r.nextWR, at+int64(tm.CCDS), at+int64(tm.RTW))
		b.nextPRE = maxi64(b.nextPRE, at+int64(tm.RTP))
		if cmd.Kind == CmdRDA {
			d.scheduleAutoPrecharge(b, maxi64(at+int64(tm.RTP), b.nextPRE))
		}
		d.stats.RD++

	case CmdWR, CmdWRA:
		dataStart := at + int64(tm.CWL)
		d.claimBus(dataStart, DataWrite, cmd.Loc.Rank)
		g.nextWR = maxi64(g.nextWR, at+int64(tm.CCDL))
		g.nextRD = maxi64(g.nextRD, at+int64(tm.WriteToRead(true)))
		r.nextWR = maxi64(r.nextWR, at+int64(tm.CCDS))
		r.nextRD = maxi64(r.nextRD, at+int64(tm.WriteToRead(false)))
		b.nextPRE = maxi64(b.nextPRE, at+int64(tm.WriteToPre()))
		if cmd.Kind == CmdWRA {
			d.scheduleAutoPrecharge(b, maxi64(at+int64(tm.WriteToPre()), b.nextPRE))
		}
		d.stats.WR++

	case CmdREF:
		r.refUntil = at + int64(tm.RFC)
		d.bumpQuiet(r.refUntil)
		r.nextACT = maxi64(r.nextACT, r.refUntil)
		r.nextRD = maxi64(r.nextRD, r.refUntil)
		r.nextWR = maxi64(r.nextWR, r.refUntil)
		d.stats.REF++
	}

	if d.Trace != nil {
		d.Trace(at, cmd)
	}
}

func (d *Device) scheduleAutoPrecharge(b *bankState, at int64) {
	b.apPending = true
	b.apAt = at
	d.apCount++
	d.stats.AutoPRE++
	// The pending auto-precharge shows as a busy bank in BankBusy for
	// [apAt, apAt+RP) even before Sync applies it.
	d.bumpQuiet(at + int64(d.tim.RP))
}

// busFreeFor returns the first cycle rank may start a data transfer,
// including the rank-to-rank switch gap.
func (d *Device) busFreeFor(rank int) int64 {
	if d.busBusyUntil > 0 && rank != d.busRank {
		return d.busBusyUntil + int64(d.tim.RTRS)
	}
	return d.busBusyUntil
}

func (d *Device) claimBus(start int64, kind DataKind, rank int) {
	if start < d.busFreeFor(rank) {
		panic(fmt.Sprintf("dram: data bus conflict: new data at %d, bus busy until %d (rank switch %d->%d)",
			start, d.busBusyUntil, d.busRank, rank))
	}
	for c := start; c < start+int64(d.tim.BL2); c++ {
		d.busKind[c&(busRingSize-1)] = kind
	}
	d.busBusyUntil = start + int64(d.tim.BL2)
	d.busRank = rank
	d.bumpQuiet(d.busBusyUntil)
}

// DataWindow returns the [start, end) data-bus interval for a column
// command issued at cycle at.
func (d *Device) DataWindow(kind CommandKind, at int64) (start, end int64) {
	if kind.IsRead() {
		return at + int64(d.tim.CL), at + int64(d.tim.CL) + int64(d.tim.BL2)
	}
	if kind.IsWrite() {
		return at + int64(d.tim.CWL), at + int64(d.tim.CWL) + int64(d.tim.BL2)
	}
	panic("dram: DataWindow on non-column command")
}

// BlockScope names the level of the DRAM hierarchy whose timing
// constraint is the binding reason a command cannot issue yet. The
// bandwidth-stack accountant widens its per-bank "constraints"
// attribution to this scope: a tCCD_L-bound read charges its whole bank
// group, a tFAW-bound activate its whole rank (paper §IV: bank-group and
// rank level timing restrictions).
type BlockScope uint8

const (
	// ScopeNone means the command is issuable now (or blocked only by
	// protocol state, e.g. a row that must be opened first).
	ScopeNone BlockScope = iota
	// ScopeBank is a same-bank timing (tRCD residual, tRC, tRAS, tRTP,
	// tWR, a pending auto-precharge).
	ScopeBank
	// ScopeGroup is a bank-group timing (tCCD_L, tRRD_L, tWTR_L).
	ScopeGroup
	// ScopeRank is a rank timing (tCCD_S, tRRD_S, tFAW, tWTR_S, tRTW,
	// tRFC).
	ScopeRank
	// ScopeBus means the channel data bus is claimed too far ahead.
	ScopeBus
)

// Blocking returns the binding block scope for cmd at cycle at: the scope
// whose constraint releases last. Ties resolve to the narrowest scope.
func (d *Device) Blocking(cmd Command, at int64) BlockScope {
	d.checkLoc(cmd.Loc)
	b := &d.banks[d.bankIndex(cmd.Loc)]
	g := &d.groups[d.groupIndex(cmd.Loc)]
	r := &d.ranks[cmd.Loc.Rank]

	tBank, tGroup, tRank, tBus := at, at, at, at
	tRank = maxi64(tRank, r.refUntil)
	switch cmd.Kind {
	case CmdACT:
		tBank = maxi64(tBank, b.nextACT)
		if b.apPending {
			tBank = maxi64(tBank, b.apAt+int64(d.tim.RP))
		}
		tGroup = maxi64(tGroup, g.nextACT)
		tRank = maxi64(tRank, r.nextACT)
		if !r.fawOK(at, d.tim.FAW) {
			tRank = maxi64(tRank, r.faw[r.fawIdx]+int64(d.tim.FAW))
		}
	case CmdPRE, CmdPREA:
		tBank = maxi64(tBank, b.nextPRE)
	case CmdRD, CmdRDA:
		tBank = maxi64(tBank, b.nextCol)
		tGroup = maxi64(tGroup, g.nextRD)
		tRank = maxi64(tRank, r.nextRD)
		tBus = maxi64(tBus, d.busFreeFor(cmd.Loc.Rank)-int64(d.tim.CL))
	case CmdWR, CmdWRA:
		tBank = maxi64(tBank, b.nextCol)
		tGroup = maxi64(tGroup, g.nextWR)
		tRank = maxi64(tRank, r.nextWR)
		tBus = maxi64(tBus, d.busFreeFor(cmd.Loc.Rank)-int64(d.tim.CWL))
	}

	scope, latest := ScopeNone, at
	for _, c := range []struct {
		s BlockScope
		t int64
	}{{ScopeBank, tBank}, {ScopeGroup, tGroup}, {ScopeRank, tRank}, {ScopeBus, tBus}} {
		if c.t > latest {
			scope, latest = c.s, c.t
		}
	}
	return scope
}

// ConsumeBusKind returns what the data bus carries at cycle at and clears
// the ring entry, so stale values cannot be observed when the ring wraps.
// The bandwidth-stack accountant calls this exactly once per cycle, in
// cycle order.
func (d *Device) ConsumeBusKind(at int64) DataKind {
	k := d.busKind[at&(busRingSize-1)]
	d.busKind[at&(busRingSize-1)] = DataNone
	return k
}

func maxi64(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
