// Package dram models a DDR4-style SDRAM device at command granularity.
//
// The model follows the architecture of trace-driven DRAM simulators such as
// Ramulator: the device keeps, for every bank, bank group and rank, the
// earliest cycle at which each command kind may legally issue, and updates
// those "next-allowed" times as commands are issued. A separate Verifier
// re-checks command traces against an independent pairwise formulation of the
// same JEDEC-style constraints, so scheduler and device bugs cannot hide each
// other.
//
// All times are in memory-clock cycles (1.2 GHz for the default DDR4-2400
// configuration, i.e. one cycle = 0.8333 ns). The data bus transfers
// BusBytes × DataRate bytes per cycle (16 B for DDR4 ×64), so one 64-byte
// cache line occupies the bus for BL/2 = 4 cycles.
package dram

import "fmt"

// CommandKind enumerates the DRAM commands the memory controller can issue.
type CommandKind uint8

const (
	// CmdACT activates (opens) a row into a bank's row buffer.
	CmdACT CommandKind = iota
	// CmdPRE precharges (closes) the currently open row of one bank.
	CmdPRE
	// CmdPREA precharges all banks of a rank (used before refresh).
	CmdPREA
	// CmdRD reads one column (a cache line) from the open row.
	CmdRD
	// CmdRDA is a read with auto-precharge: the bank precharges itself
	// tRTP after the read command. Used by the closed-page policy.
	CmdRDA
	// CmdWR writes one column into the open row.
	CmdWR
	// CmdWRA is a write with auto-precharge (precharge starts after the
	// write-recovery time has elapsed).
	CmdWRA
	// CmdREF refreshes the whole rank; the rank is unusable for tRFC.
	CmdREF

	numCommandKinds
)

// String returns the conventional mnemonic for the command kind.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdPREA:
		return "PREA"
	case CmdRD:
		return "RD"
	case CmdRDA:
		return "RDA"
	case CmdWR:
		return "WR"
	case CmdWRA:
		return "WRA"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("CommandKind(%d)", uint8(k))
	}
}

// IsRead reports whether the command places read data on the bus.
func (k CommandKind) IsRead() bool { return k == CmdRD || k == CmdRDA }

// IsWrite reports whether the command places write data on the bus.
func (k CommandKind) IsWrite() bool { return k == CmdWR || k == CmdWRA }

// IsColumn reports whether the command is a column (data) command.
func (k CommandKind) IsColumn() bool { return k.IsRead() || k.IsWrite() }

// AutoPrecharge reports whether the command carries the auto-precharge flag.
func (k CommandKind) AutoPrecharge() bool { return k == CmdRDA || k == CmdWRA }

// Loc identifies a physical location inside the memory system. Channel is
// carried for trace readability; a Device models a single channel and
// ignores it.
type Loc struct {
	Channel int
	Rank    int
	Group   int // bank group within the rank
	Bank    int // bank within the bank group
	Row     int
	Col     int // column, in cache-line units
}

// String formats the location as ch/rank/group/bank/row/col.
func (l Loc) String() string {
	return fmt.Sprintf("ch%d r%d g%d b%d row%d col%d",
		l.Channel, l.Rank, l.Group, l.Bank, l.Row, l.Col)
}

// Command is one DRAM command as placed on the command bus.
type Command struct {
	Kind CommandKind
	Loc  Loc
}

// String formats the command for traces and error messages.
func (c Command) String() string {
	return fmt.Sprintf("%-4s %s", c.Kind, c.Loc)
}
