package dram

import (
	"math/rand"
	"testing"
)

func TestDualRankConfig(t *testing.T) {
	g, tm := DDR4_2400_DualRank()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalBanks() != 32 {
		t.Errorf("banks = %d, want 32", g.TotalBanks())
	}
	if g.CapacityBytes() != 8<<30 {
		t.Errorf("capacity = %d, want 8 GiB", g.CapacityBytes())
	}
	// Same peak bandwidth: ranks share the channel.
	if g.PeakBandwidthGBs() != 19.2 {
		t.Errorf("peak = %v, want 19.2", g.PeakBandwidthGBs())
	}
}

func TestRankToRankSwitchGap(t *testing.T) {
	g, tm := DDR4_2400_DualRank()
	d := NewDevice(g, tm)
	a := Loc{Rank: 0, Row: 1}
	b := Loc{Rank: 1, Row: 1}
	d.Sync(0)
	d.Issue(Command{CmdACT, a}, 0)
	d.Sync(int64(tm.RRDS))
	d.Issue(Command{CmdACT, b}, int64(tm.RRDS))

	start := int64(60)
	d.Sync(start)
	d.Issue(Command{CmdRD, a}, start)

	// Same rank, different group: tCCD_S gates (4 == BL/2, bus back to
	// back). Other rank: the data bus needs an extra tRTRS gap.
	otherRank := start + int64(tm.BL2) + int64(tm.RTRS)
	if got, ok := d.EarliestIssue(Command{CmdRD, b}, start); !ok || got != otherRank {
		t.Errorf("cross-rank RD earliest = %d,%v want %d (BL/2 + tRTRS)", got, ok, otherRank)
	}
	// Back on the same rank there is no switch gap.
	sameRank := start + int64(tm.CCDS)
	aa := Loc{Rank: 0, Group: 1, Row: 1}
	d.Sync(start + 1)
	if _, ok := d.EarliestIssue(Command{CmdRD, aa}, start); ok {
		t.Log("same-rank other-group read needs its own ACT first (expected)")
	}
	_ = sameRank
}

func TestRefreshPerRankIndependent(t *testing.T) {
	g, tm := DDR4_2400_DualRank()
	d := NewDevice(g, tm)
	d.Sync(0)
	d.Issue(Command{CmdREF, Loc{Rank: 0}}, 0)
	if !d.Refreshing(0, 10) {
		t.Error("rank 0 not refreshing")
	}
	if d.Refreshing(1, 10) {
		t.Error("rank 1 refreshing without a REF")
	}
	// Rank 1 can activate while rank 0 refreshes.
	if !d.CanIssue(Command{CmdACT, Loc{Rank: 1, Row: 5}}, 10) {
		t.Error("rank 1 blocked by rank 0's refresh")
	}
	if d.CanIssue(Command{CmdACT, Loc{Rank: 0, Row: 5}}, 10) {
		t.Error("rank 0 usable during its own refresh")
	}
}

// TestDualRankRandomScheduleVerified drives a dual-rank device with a
// random legal stream and replays it through the verifier, exercising
// the cross-rank bus rule.
func TestDualRankRandomScheduleVerified(t *testing.T) {
	g, tm := DDR4_2400_DualRank()
	for seed := int64(1); seed <= 3; seed++ {
		d := NewDevice(g, tm)
		v := NewVerifier(g, tm)
		d.Trace = func(cycle int64, cmd Command) {
			if vs := v.Check(cycle, cmd); vs != nil {
				t.Fatalf("seed %d: %v", seed, vs[0])
			}
		}
		rng := rand.New(rand.NewSource(seed))
		now := int64(0)
		for issued := 0; issued < 2000; {
			d.Sync(now)
			loc := Loc{
				Rank:  rng.Intn(2),
				Group: rng.Intn(g.Groups),
				Bank:  rng.Intn(g.Banks),
				Row:   rng.Intn(32),
				Col:   rng.Intn(g.Cols),
			}
			kinds := []CommandKind{CmdACT, CmdPRE, CmdRD, CmdWR, CmdRDA, CmdWRA}
			kind := kinds[rng.Intn(len(kinds))]
			if open := d.OpenRow(loc, now); open >= 0 {
				loc.Row = open
			}
			at, ok := d.EarliestIssue(Command{kind, loc}, now)
			if !ok {
				now++
				continue
			}
			now = at
			d.Sync(now)
			d.Issue(Command{kind, loc}, now)
			issued++
			now += int64(rng.Intn(3))
		}
		if v.Checked() < 2000 {
			t.Fatalf("seed %d: only %d commands verified", seed, v.Checked())
		}
	}
}

func TestDDR43200Config(t *testing.T) {
	g, tm := DDR4_3200()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.PeakBandwidthGBs(); got != 25.6 {
		t.Errorf("peak = %v GB/s, want 25.6", got)
	}
	// Analog times stay constant in nanoseconds (within a cycle).
	g24, t24 := DDR4_2400()
	rcd24 := g24.CyclesToNS(int64(t24.RCD))
	rcd32 := g.CyclesToNS(int64(tm.RCD))
	if d := rcd32 - rcd24; d > 1.5 || d < -1.5 {
		t.Errorf("tRCD drifts: %.2f ns vs %.2f ns", rcd32, rcd24)
	}
	rfc32 := g.CyclesToNS(int64(tm.RFC))
	if d := rfc32 - 350; d > 1 || d < -1 {
		t.Errorf("tRFC = %.1f ns, want 350", rfc32)
	}
}

func TestDDR5Config(t *testing.T) {
	g, tm := DDR5_4800()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.PeakBandwidthGBs(); got != 19.2 {
		t.Errorf("peak = %v GB/s, want 19.2 (one subchannel)", got)
	}
	if g.TotalBanks() != 32 || g.RowBytes() != 2048 {
		t.Errorf("geometry: %d banks, %d B pages; want 32 banks, 2 KB pages",
			g.TotalBanks(), g.RowBytes())
	}
	if g.CapacityBytes() != 4<<30 {
		t.Errorf("capacity = %d, want 4 GiB", g.CapacityBytes())
	}
	// A legal command sequence runs and verifies.
	d := NewDevice(g, tm)
	v := NewVerifier(g, tm)
	d.Trace = func(cycle int64, cmd Command) {
		if vs := v.Check(cycle, cmd); vs != nil {
			t.Fatalf("%v", vs[0])
		}
	}
	d.Sync(0)
	d.Issue(Command{CmdACT, Loc{Row: 1}}, 0)
	rd := int64(tm.RCD)
	d.Sync(rd)
	d.Issue(Command{CmdRD, Loc{Row: 1}}, rd)
	// Back-to-back cross-group reads are bus-bound at BL2=8 > CCDS.
	loc2 := Loc{Group: 1, Row: 1}
	// Activate group 1 first.
	actAt, ok := d.EarliestIssue(Command{CmdACT, loc2}, rd)
	if !ok {
		t.Fatal("ACT blocked")
	}
	d.Sync(actAt)
	d.Issue(Command{CmdACT, loc2}, actAt)
	at, ok := d.EarliestIssue(Command{CmdRD, loc2}, actAt)
	if !ok {
		t.Fatal("RD blocked")
	}
	if at < rd+int64(tm.BL2) {
		t.Errorf("cross-group RD at %d, want bus-bound >= %d", at, rd+int64(tm.BL2))
	}
}
