package dram

import (
	"math/rand"
	"testing"
)

func testConfig() (Geometry, Timing) {
	return DDR4_2400()
}

func TestDDR4ConfigValid(t *testing.T) {
	g, tm := DDR4_2400()
	if err := g.Validate(); err != nil {
		t.Fatalf("geometry invalid: %v", err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("timing invalid: %v", err)
	}
	if got := g.PeakBandwidthGBs(); got != 19.2 {
		t.Errorf("peak bandwidth = %v GB/s, want 19.2", got)
	}
	if got := g.TotalBanks(); got != 16 {
		t.Errorf("total banks = %d, want 16", got)
	}
	if got := g.RowBytes(); got != 8192 {
		t.Errorf("row bytes = %d, want 8192", got)
	}
	if got := g.CapacityBytes(); got != 4<<30 {
		t.Errorf("capacity = %d, want 4 GiB", got)
	}
	if got := g.BytesPerCycle(); got != 16 {
		t.Errorf("bytes/cycle = %d, want 16", got)
	}
}

func TestGeometryValidateRejectsBad(t *testing.T) {
	good, _ := DDR4_2400()
	cases := []func(*Geometry){
		func(g *Geometry) { g.Ranks = 0 },
		func(g *Geometry) { g.Groups = -1 },
		func(g *Geometry) { g.Banks = 0 },
		func(g *Geometry) { g.Rows = 0 },
		func(g *Geometry) { g.Cols = 0 },
		func(g *Geometry) { g.LineBytes = 0 },
		func(g *Geometry) { g.BusBytes = 0 },
		func(g *Geometry) { g.DataRate = 0 },
		func(g *Geometry) { g.ClockMHz = 0 },
		func(g *Geometry) { g.Ranks = 8; g.Groups = 8; g.Banks = 8 },
	}
	for i, mutate := range cases {
		g := good
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad geometry %+v", i, g)
		}
	}
}

func TestTimingValidateRejectsBad(t *testing.T) {
	_, good := DDR4_2400()
	cases := []func(*Timing){
		func(tm *Timing) { tm.CL = 0 },
		func(tm *Timing) { tm.RC = tm.RAS + tm.RP - 1 },
		func(tm *Timing) { tm.CCDL = tm.CCDS - 1 },
		func(tm *Timing) { tm.REFI = tm.RFC },
		func(tm *Timing) { tm.RFC = -1 },
	}
	for i, mutate := range cases {
		tm := good
		mutate(&tm)
		if err := tm.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad timing %+v", i, tm)
		}
	}
}

func TestActivateReadPrechargeSequence(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	loc := Loc{Row: 5, Col: 3}

	d.Sync(0)
	if _, ok := d.EarliestIssue(Command{CmdRD, loc}, 0); ok {
		t.Fatal("RD should be impossible on a precharged bank")
	}
	if !d.CanIssue(Command{CmdACT, loc}, 0) {
		t.Fatal("ACT should be legal at cycle 0")
	}
	d.Issue(Command{CmdACT, loc}, 0)

	if d.CanIssue(Command{CmdRD, loc}, int64(tm.RCD)-1) {
		t.Error("RD legal before tRCD")
	}
	if !d.CanIssue(Command{CmdRD, loc}, int64(tm.RCD)) {
		t.Error("RD illegal at tRCD")
	}
	d.Sync(int64(tm.RCD))
	d.Issue(Command{CmdRD, loc}, int64(tm.RCD))

	// PRE must wait for max(tRAS from ACT, tRTP from RD).
	preOK := maxi64(int64(tm.RAS), int64(tm.RCD)+int64(tm.RTP))
	if got, ok := d.EarliestIssue(Command{CmdPRE, loc}, 0); !ok || got != preOK {
		t.Errorf("PRE earliest = %d,%v want %d", got, ok, preOK)
	}
	d.Sync(preOK)
	d.Issue(Command{CmdPRE, loc}, preOK)

	// ACT must wait max(tRP from PRE, tRC from previous ACT).
	actOK := maxi64(preOK+int64(tm.RP), int64(tm.RC))
	if got, ok := d.EarliestIssue(Command{CmdACT, loc}, 0); !ok || got != actOK {
		t.Errorf("ACT earliest = %d,%v want %d", got, ok, actOK)
	}
}

func TestReadWrongRowNotIssuable(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	d.Sync(0)
	d.Issue(Command{CmdACT, Loc{Row: 1}}, 0)
	d.Sync(int64(tm.RCD))
	if _, ok := d.EarliestIssue(Command{CmdRD, Loc{Row: 2}}, int64(tm.RCD)); ok {
		t.Error("RD to a different row than the open one must not be issuable")
	}
	if !d.RowOpen(Loc{Row: 1}, int64(tm.RCD)) {
		t.Error("row 1 should be open and usable after tRCD")
	}
	if d.RowOpen(Loc{Row: 1}, int64(tm.RCD)-1) {
		t.Error("row must not be usable before activation completes")
	}
}

func TestSameGroupCCDLSpacing(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	a := Loc{Group: 0, Bank: 0, Row: 1}
	b := Loc{Group: 0, Bank: 1, Row: 1}
	c := Loc{Group: 1, Bank: 0, Row: 1}

	d.Sync(0)
	d.Issue(Command{CmdACT, a}, 0)
	d.Sync(int64(tm.RRDL))
	d.Issue(Command{CmdACT, b}, int64(tm.RRDL))
	d.Sync(int64(tm.RRDL) + int64(tm.RRDS))
	d.Issue(Command{CmdACT, c}, int64(tm.RRDL)+int64(tm.RRDS))

	start := int64(60) // past all tRCDs
	d.Sync(start)
	d.Issue(Command{CmdRD, a}, start)

	// Same bank group: tCCD_L; different group: tCCD_S (but bus may bind).
	if got, ok := d.EarliestIssue(Command{CmdRD, b}, start); !ok || got != start+int64(tm.CCDL) {
		t.Errorf("same-group RD earliest = %d,%v want %d", got, ok, start+int64(tm.CCDL))
	}
	if got, ok := d.EarliestIssue(Command{CmdRD, c}, start); !ok || got != start+int64(tm.CCDS) {
		t.Errorf("cross-group RD earliest = %d,%v want %d", got, ok, start+int64(tm.CCDS))
	}
}

func TestRRDAndFAW(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	d.Sync(0)
	// Issue 4 ACTs to different groups as fast as tRRD_S allows.
	var last int64
	for i := 0; i < 4; i++ {
		at := int64(i * tm.RRDS)
		d.Sync(at)
		d.Issue(Command{CmdACT, Loc{Group: i, Bank: 0, Row: 1}}, at)
		last = at
	}
	// The 5th ACT (bank 1 of group 0) is FAW-bound, not RRD-bound.
	want := int64(tm.FAW) // first ACT at 0 + FAW
	if got, ok := d.EarliestIssue(Command{CmdACT, Loc{Group: 0, Bank: 1, Row: 1}}, last); !ok || got != want {
		t.Errorf("5th ACT earliest = %d,%v want %d (tFAW)", got, ok, want)
	}
}

func TestWriteReadTurnaround(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	a := Loc{Group: 0, Bank: 0, Row: 1}
	b := Loc{Group: 1, Bank: 0, Row: 1}
	d.Sync(0)
	d.Issue(Command{CmdACT, a}, 0)
	d.Sync(int64(tm.RRDS))
	d.Issue(Command{CmdACT, b}, int64(tm.RRDS))

	start := int64(60)
	d.Sync(start)
	d.Issue(Command{CmdWR, a}, start)

	wantSame := start + int64(tm.WriteToRead(true))
	if got, ok := d.EarliestIssue(Command{CmdRD, a}, start); !ok || got != wantSame {
		t.Errorf("WR->RD same group earliest = %d,%v want %d", got, ok, wantSame)
	}
	wantDiff := start + int64(tm.WriteToRead(false))
	if got, ok := d.EarliestIssue(Command{CmdRD, b}, start); !ok || got != wantDiff {
		t.Errorf("WR->RD cross group earliest = %d,%v want %d", got, ok, wantDiff)
	}

	// And read-to-write turnaround.
	d.Sync(wantDiff)
	d.Issue(Command{CmdRD, b}, wantDiff)
	wantWR := wantDiff + int64(tm.RTW)
	if got, ok := d.EarliestIssue(Command{CmdWR, a}, wantDiff); !ok || got < wantWR {
		t.Errorf("RD->WR earliest = %d,%v want >= %d", got, ok, wantWR)
	}
}

func TestRefreshBlocksRank(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	d.Sync(0)
	if !d.CanIssue(Command{CmdREF, Loc{}}, 0) {
		t.Fatal("REF should be legal with all banks precharged")
	}
	d.Issue(Command{CmdREF, Loc{}}, 0)
	if !d.Refreshing(0, 0) || !d.Refreshing(0, int64(tm.RFC)-1) {
		t.Error("rank should be refreshing during tRFC")
	}
	if d.Refreshing(0, int64(tm.RFC)) {
		t.Error("rank should stop refreshing at tRFC")
	}
	if got, ok := d.EarliestIssue(Command{CmdACT, Loc{Row: 1}}, 0); !ok || got != int64(tm.RFC) {
		t.Errorf("ACT during refresh earliest = %d,%v want %d", got, ok, tm.RFC)
	}
}

func TestRefreshRequiresPrechargedBanks(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	d.Sync(0)
	d.Issue(Command{CmdACT, Loc{Row: 1}}, 0)
	if _, ok := d.EarliestIssue(Command{CmdREF, Loc{}}, int64(tm.RCD)); ok {
		t.Error("REF must not be issuable with an open bank")
	}
}

func TestAutoPrecharge(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	loc := Loc{Row: 7}
	d.Sync(0)
	d.Issue(Command{CmdACT, loc}, 0)
	rd := maxi64(int64(tm.RCD), int64(tm.RAS)-int64(tm.RTP)) // so tRAS holds at precharge time
	d.Sync(rd)
	d.Issue(Command{CmdRDA, loc}, rd)

	apAt := rd + int64(tm.RTP)
	if d.RowOpen(loc, apAt) {
		t.Error("row must be closed once the auto-precharge begins")
	}
	d.Sync(apAt)
	// Next ACT must wait tRP after the auto-precharge began.
	want := maxi64(apAt+int64(tm.RP), int64(tm.RC))
	if got, ok := d.EarliestIssue(Command{CmdACT, Loc{Row: 9}}, apAt); !ok || got != want {
		t.Errorf("ACT after RDA earliest = %d,%v want %d", got, ok, want)
	}
	if pre, _ := d.BankBusy(0, apAt); !pre {
		t.Error("bank should report precharging during the auto-precharge window")
	}
}

func TestDataBusOccupancy(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	a := Loc{Group: 0, Bank: 0, Row: 1}
	d.Sync(0)
	d.Issue(Command{CmdACT, a}, 0)
	rd := int64(tm.RCD)
	d.Sync(rd)
	d.Issue(Command{CmdRD, a}, rd)
	start, end := d.DataWindow(CmdRD, rd)
	if start != rd+int64(tm.CL) || end != start+int64(tm.BL2) {
		t.Fatalf("data window = [%d,%d), want [%d,%d)", start, end, rd+int64(tm.CL), rd+int64(tm.CL)+int64(tm.BL2))
	}
	for c := start; c < end; c++ {
		if k := d.BusKindAt(c); k != DataRead {
			t.Errorf("bus kind at %d = %v, want read", c, k)
		}
	}
	if k := d.BusKindAt(start - 1); k != DataNone {
		t.Errorf("bus kind before window = %v, want none", k)
	}
	if k := d.ConsumeBusKind(start); k != DataRead {
		t.Errorf("consume = %v, want read", k)
	}
	if k := d.BusKindAt(start); k != DataNone {
		t.Errorf("bus kind after consume = %v, want none", k)
	}
}

func TestBankBusyClassification(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	loc := Loc{Row: 1}
	d.Sync(0)
	d.Issue(Command{CmdACT, loc}, 0)
	if _, act := d.BankBusy(0, 0); !act {
		t.Error("bank should be activating at ACT issue")
	}
	if _, act := d.BankBusy(0, int64(tm.RCD)-1); !act {
		t.Error("bank should be activating until tRCD")
	}
	if pre, act := d.BankBusy(0, int64(tm.RCD)); pre || act {
		t.Error("bank should be quiet after tRCD")
	}
	preAt := int64(tm.RAS)
	d.Sync(preAt)
	d.Issue(Command{CmdPRE, loc}, preAt)
	if pre, _ := d.BankBusy(0, preAt); !pre {
		t.Error("bank should be precharging at PRE issue")
	}
	if pre, _ := d.BankBusy(0, preAt+int64(tm.RP)); pre {
		t.Error("bank should be quiet after tRP")
	}
}

func TestIllegalIssuePanics(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	d.Sync(0)
	defer func() {
		if recover() == nil {
			t.Error("Issue of an illegal command must panic")
		}
	}()
	d.Issue(Command{CmdRD, Loc{Row: 1}}, 0) // bank precharged: illegal
}

func TestSyncBackwardsPanics(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	d.Sync(10)
	defer func() {
		if recover() == nil {
			t.Error("Sync backwards must panic")
		}
	}()
	d.Sync(9)
}

// TestRandomScheduleIsVerifiable drives the device with a random but legal
// command stream (legal by construction via EarliestIssue) and replays the
// resulting trace through the independent Verifier. Any disagreement between
// the two constraint formulations fails the test.
func TestRandomScheduleIsVerifiable(t *testing.T) {
	g, tm := testConfig()
	for seed := int64(1); seed <= 5; seed++ {
		d := NewDevice(g, tm)
		v := NewVerifier(g, tm)
		d.Trace = func(cycle int64, cmd Command) {
			if vs := v.Check(cycle, cmd); vs != nil {
				t.Fatalf("seed %d: verifier rejects device-issued command: %v", seed, vs[0])
			}
		}
		rng := rand.New(rand.NewSource(seed))
		now := int64(0)
		issued := 0
		nextREF := int64(tm.REFI)
		for issued < 3000 {
			d.Sync(now)
			if now >= nextREF {
				// Close all banks, then refresh.
				if at, ok := d.EarliestIssue(Command{CmdPREA, Loc{}}, now); ok {
					now = at
					d.Sync(now)
					d.Issue(Command{CmdPREA, Loc{}}, now)
				}
				at, ok := d.EarliestIssue(Command{CmdREF, Loc{}}, now)
				if !ok {
					t.Fatalf("seed %d: REF impossible after PREA", seed)
				}
				now = at
				d.Sync(now)
				d.Issue(Command{CmdREF, Loc{}}, now)
				nextREF += int64(tm.REFI)
				issued++
				continue
			}
			loc := Loc{
				Group: rng.Intn(g.Groups),
				Bank:  rng.Intn(g.Banks),
				Row:   rng.Intn(64),
				Col:   rng.Intn(g.Cols),
			}
			kinds := []CommandKind{CmdACT, CmdPRE, CmdRD, CmdWR, CmdRDA, CmdWRA}
			kind := kinds[rng.Intn(len(kinds))]
			if open := d.OpenRow(loc, now); open >= 0 {
				loc.Row = open // column commands must target the open row
			}
			at, ok := d.EarliestIssue(Command{kind, loc}, now)
			if !ok {
				now++ // not possible in this state; try something else
				continue
			}
			now = at
			d.Sync(now)
			d.Issue(Command{kind, loc}, now)
			issued++
			now += int64(rng.Intn(4))
		}
		if v.Checked() < 3000 {
			t.Fatalf("seed %d: verifier saw only %d commands", seed, v.Checked())
		}
	}
}

func TestStatsCount(t *testing.T) {
	g, tm := testConfig()
	d := NewDevice(g, tm)
	loc := Loc{Row: 1}
	d.Sync(0)
	d.Issue(Command{CmdACT, loc}, 0)
	d.Sync(int64(tm.RCD))
	d.Issue(Command{CmdRD, loc}, int64(tm.RCD))
	s := d.Stats()
	if s.ACT != 1 || s.RD != 1 || s.PRE != 0 || s.WR != 0 || s.REF != 0 {
		t.Errorf("stats = %+v, want 1 ACT + 1 RD", s)
	}
}

// TestEarliestIssueConsistencyProperty: whatever state the device is in,
// a command must actually be issuable at the cycle EarliestIssue names.
func TestEarliestIssueConsistencyProperty(t *testing.T) {
	g, tm := testConfig()
	for seed := int64(1); seed <= 8; seed++ {
		d := NewDevice(g, tm)
		rng := rand.New(rand.NewSource(seed))
		now := int64(0)
		for step := 0; step < 800; step++ {
			d.Sync(now)
			loc := Loc{
				Group: rng.Intn(g.Groups),
				Bank:  rng.Intn(g.Banks),
				Row:   rng.Intn(32),
				Col:   rng.Intn(g.Cols),
			}
			if open := d.OpenRow(loc, now); open >= 0 {
				loc.Row = open
			}
			kinds := []CommandKind{CmdACT, CmdPRE, CmdRD, CmdWR, CmdRDA, CmdWRA, CmdREF}
			kind := kinds[rng.Intn(len(kinds))]
			at, ok := d.EarliestIssue(Command{kind, loc}, now)
			if !ok {
				now++
				continue
			}
			if at < now {
				t.Fatalf("seed %d: EarliestIssue returned past cycle %d < %d", seed, at, now)
			}
			d.Sync(at)
			if !d.CanIssue(Command{kind, loc}, at) {
				t.Fatalf("seed %d: %v not issuable at its own earliest cycle %d", seed, kind, at)
			}
			// Only sometimes issue, so queries also hit untouched state.
			if rng.Intn(3) > 0 {
				d.Issue(Command{kind, loc}, at)
			}
			now = at + int64(rng.Intn(5))
		}
	}
}
