package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// directiveRE parses //dramvet:allow <analyzer>(<reason>). The reason
// is mandatory: an acknowledged violation without a recorded why is
// just a violation with extra steps. The reason match is greedy so it
// may itself contain parentheses; the directive ends at the final ')'.
var directiveRE = regexp.MustCompile(`^//dramvet:allow\s+([a-z][a-z0-9]*)\((.*)\)\s*$`)

// directive is one parsed //dramvet:allow comment.
type directive struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// fileDirectives extracts every dramvet directive of one file. A
// comment that starts with //dramvet: but does not parse is returned in
// malformed so the driver can surface it instead of silently ignoring a
// typo'd suppression.
func fileDirectives(fset *token.FileSet, f *ast.File) (dirs []directive, malformed []*ast.Comment) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, "//dramvet:") {
				continue
			}
			m := directiveRE.FindStringSubmatch(text)
			if m == nil || strings.TrimSpace(m[2]) == "" {
				malformed = append(malformed, c)
				continue
			}
			dirs = append(dirs, directive{
				analyzer: m[1],
				reason:   strings.TrimSpace(m[2]),
				line:     fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return dirs, malformed
}

// MalformedDirectives reports every comment that starts with
// //dramvet: but does not parse as a well-formed allow directive, so a
// typo'd suppression is surfaced instead of silently ignored. Drivers
// call it once per package (not per analyzer) to avoid duplicates.
func MalformedDirectives(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, f := range files {
		_, malformed := fileDirectives(fset, f)
		for _, c := range malformed {
			diags = append(diags, Diagnostic{
				Pos: c.Pos(),
				Message: "malformed dramvet directive: want //dramvet:allow <analyzer>(<reason>) " +
					"with a non-empty reason",
			})
		}
	}
	return diags
}

// suppress drops diagnostics acknowledged by a //dramvet:allow
// directive for this analyzer: on the same line, on the line directly
// above, or in the doc comment of the enclosing function declaration
// (which acknowledges the whole function).
func suppress(name string, fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type funcScope struct {
		lo, hi token.Pos
	}
	// Per file: line → analyzer names allowed there, plus function
	// ranges whose doc comment allows the analyzer.
	lineAllow := make(map[string]map[int]map[string]bool)
	var funcAllows []funcScope

	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		dirs, _ := fileDirectives(fset, f)
		if len(dirs) == 0 {
			continue
		}
		byLine := lineAllow[fname]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			lineAllow[fname] = byLine
		}
		for _, d := range dirs {
			if d.analyzer != name {
				continue
			}
			if byLine[d.line] == nil {
				byLine[d.line] = make(map[string]bool)
			}
			byLine[d.line][d.analyzer] = true
		}
		// Function-scoped: directive inside a FuncDecl's doc comment.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, d := range dirs {
				if d.analyzer == name && d.pos >= fd.Doc.Pos() && d.pos <= fd.Doc.End() {
					funcAllows = append(funcAllows, funcScope{fd.Pos(), fd.End()})
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		allowed := false
		if byLine := lineAllow[posn.Filename]; byLine != nil {
			if byLine[posn.Line][name] || byLine[posn.Line-1][name] {
				allowed = true
			}
		}
		for _, fs := range funcAllows {
			if d.Pos >= fs.lo && d.Pos < fs.hi {
				allowed = true
				break
			}
		}
		if !allowed {
			kept = append(kept, d)
		}
	}
	return kept
}
