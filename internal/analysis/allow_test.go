package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment  string
		analyzer string
		reason   string
		ok       bool
	}{
		{"//dramvet:allow detrange(order cannot matter)", "detrange", "order cannot matter", true},
		{"//dramvet:allow lockhold(min over (distance, name) is total)", "lockhold", "min over (distance, name) is total", true},
		{"//dramvet:allow detrange()", "", "", false},
		{"//dramvet:allow detrange(   )", "", "", false},
		{"//dramvet:allow detrange", "", "", false},
		{"//dramvet:allow DetRange(reason)", "", "", false},
		{"//dramvet:allowdetrange(reason)", "", "", false},
	}
	for _, tc := range cases {
		src := "package p\n\n" + tc.comment + "\nvar X int\n"
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
		if err != nil {
			t.Fatalf("%q: %v", tc.comment, err)
		}
		dirs, malformed := fileDirectives(fset, f)
		if tc.ok {
			if len(dirs) != 1 || len(malformed) != 0 {
				t.Errorf("%q: got %d directives, %d malformed; want 1, 0", tc.comment, len(dirs), len(malformed))
				continue
			}
			if dirs[0].analyzer != tc.analyzer || dirs[0].reason != tc.reason {
				t.Errorf("%q: parsed (%q, %q), want (%q, %q)",
					tc.comment, dirs[0].analyzer, dirs[0].reason, tc.analyzer, tc.reason)
			}
		} else if len(dirs) != 0 || len(malformed) != 1 {
			t.Errorf("%q: got %d directives, %d malformed; want 0, 1", tc.comment, len(dirs), len(malformed))
		}
	}
}
