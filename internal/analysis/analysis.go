// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package and reports Diagnostics through a Pass.
//
// It exists because this repository is dependency-free by policy; the
// API mirrors x/tools closely enough that the repo-specific analyzers
// under internal/analysis/passes could be ported to the real framework
// by changing only import paths. Two drivers consume it:
//
//   - internal/analysis/unit speaks the `go vet -vettool` protocol, so
//     `go vet -vettool=$(which dramvet) ./...` runs the suite exactly
//     like the standard vet analyzers (see cmd/dramvet).
//   - internal/analysis/analysistest runs one analyzer over fixture
//     packages under testdata/src and checks `// want` expectations.
//
// Suppression: a finding can be acknowledged in source with
//
//	//dramvet:allow <analyzer>(<reason>)
//
// on the flagged line or the line above it, or in the doc comment of
// the enclosing function to acknowledge every finding of that analyzer
// in the function. The reason is mandatory; see doc/LINTING.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //dramvet:allow directives. Lowercase letters and digits only.
	Name string
	// Doc is the help text; the first line is the summary.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report/Reportf. The returned value is ignored by the drivers
	// (kept for x/tools API shape).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Validate checks that the analyzers are well-formed and distinctly
// named (mirrors x/tools analysis.Validate).
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("analysis: nil analyzer")
		}
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q lacks a name or Run function", a.Name)
		}
		for _, r := range a.Name {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
				return fmt.Errorf("analysis: analyzer name %q must be lowercase letters and digits", a.Name)
			}
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Analyze runs one analyzer over a type-checked package, applies
// //dramvet:allow suppression, and returns the surviving diagnostics in
// position order. Both drivers route through it so suppression behaves
// identically under `go vet` and under analysistest.
func Analyze(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
	}
	return suppress(a.Name, fset, files, diags), nil
}
