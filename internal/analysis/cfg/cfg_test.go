package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of func f and returns its block.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachable returns the block indices reachable from Entry.
func reachable(g *Graph) map[int]bool {
	seen := map[int]bool{g.Entry.Index: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestEmptyBody(t *testing.T) {
	g := New(parseBody(t, ""))
	if len(g.Blocks) != 2 {
		t.Fatalf("want entry+exit, got %d blocks:\n%s", len(g.Blocks), g)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry must fall through to exit:\n%s", g)
	}
}

func TestIndexInvariant(t *testing.T) {
	g := New(parseBody(t, `
		if a {
			for b {
				switch c {
				case 1:
				default:
				}
			}
		} else {
			select {
			case <-ch:
			}
		}
		return
	`))
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("Blocks[%d].Index = %d:\n%s", i, b.Index, g)
		}
	}
	if g.Blocks[len(g.Blocks)-1] != g.Exit {
		t.Fatalf("Exit must be the last block:\n%s", g)
	}
}

func TestIfBranches(t *testing.T) {
	g := New(parseBody(t, `
		x()
		if cond {
			y()
		}
		z()
	`))
	// entry(x, cond) -> then(y) and after(z); then -> after; after -> exit.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head must have two successors:\n%s", g)
	}
	if !strings.Contains(g.String(), "if.then") || !strings.Contains(g.String(), "if.after") {
		t.Fatalf("missing if blocks:\n%s", g)
	}
}

func TestReturnEndsPath(t *testing.T) {
	g := New(parseBody(t, `
		if cond {
			return
		}
		z()
	`))
	// The then block's only successor is Exit.
	for _, b := range g.Blocks {
		if b.kind == "if.then" {
			if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
				t.Fatalf("return must edge to exit only:\n%s", g)
			}
		}
	}
}

func TestPanicEndsPath(t *testing.T) {
	g := New(parseBody(t, `
		panic("boom")
		dead()
	`))
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("panic must edge to exit:\n%s", g)
	}
	// The dead() statement lands in an unreachable block.
	r := reachable(g)
	foundDead := false
	for _, b := range g.Blocks {
		if b.kind == "unreachable" {
			foundDead = true
			if r[b.Index] {
				t.Fatalf("unreachable block is reachable:\n%s", g)
			}
			if len(b.Nodes) != 1 {
				t.Fatalf("dead statement not captured:\n%s", g)
			}
		}
	}
	if !foundDead {
		t.Fatalf("no unreachable block for dead code:\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := New(parseBody(t, `
		for i := 0; i < n; i++ {
			body()
		}
		after()
	`))
	var head, body, post *Block
	for _, b := range g.Blocks {
		switch b.kind {
		case "for.head":
			head = b
		case "for.body":
			body = b
		case "for.post":
			post = b
		}
	}
	if head == nil || body == nil || post == nil {
		t.Fatalf("missing loop blocks:\n%s", g)
	}
	if len(head.Succs) != 2 {
		t.Fatalf("conditional head needs body+after successors:\n%s", g)
	}
	if len(body.Succs) != 1 || body.Succs[0] != post {
		t.Fatalf("body must jump to post:\n%s", g)
	}
	if len(post.Succs) != 1 || post.Succs[0] != head {
		t.Fatalf("post must close the back edge to head:\n%s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := New(parseBody(t, `
		for {
			if a {
				break
			}
			if b {
				continue
			}
			c()
		}
		after()
	`))
	var head, after *Block
	for _, b := range g.Blocks {
		switch b.kind {
		case "for.head":
			head = b
		case "for.after":
			after = b
		}
	}
	brk, cont := false, false
	for _, b := range g.Blocks {
		if b.kind != "if.then" {
			continue
		}
		for _, s := range b.Succs {
			if s == after {
				brk = true
			}
			if s == head {
				cont = true
			}
		}
	}
	if !brk || !cont {
		t.Fatalf("break/continue edges missing (break=%v continue=%v):\n%s", brk, cont, g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := New(parseBody(t, `
	outer:
		for {
			for {
				break outer
			}
		}
		after()
	`))
	// The labeled break must reach the OUTER loop's after block, making
	// after() reachable from entry.
	r := reachable(g)
	if !r[g.Exit.Index] {
		t.Fatalf("labeled break must make exit reachable:\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := New(parseBody(t, `
		switch x {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		default:
			c()
		}
	`))
	var cases []*Block
	for _, b := range g.Blocks {
		if b.kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("want 3 case blocks:\n%s", g)
	}
	if len(cases[0].Succs) != 1 || cases[0].Succs[0] != cases[1] {
		t.Fatalf("fallthrough must edge case 1 -> case 2:\n%s", g)
	}
}

func TestSwitchNoDefaultSkips(t *testing.T) {
	g := New(parseBody(t, `
		switch x {
		case 1:
			a()
		}
		after()
	`))
	// Without a default, the head must also edge straight to after.
	var after *Block
	for _, b := range g.Blocks {
		if b.kind == "switch.after" {
			after = b
		}
	}
	found := false
	for _, s := range g.Entry.Succs {
		if s == after {
			found = true
		}
	}
	if !found {
		t.Fatalf("defaultless switch must edge head -> after:\n%s", g)
	}
}

func TestSelectClauses(t *testing.T) {
	g := New(parseBody(t, `
		select {
		case <-a:
			x()
		case b <- 1:
			y()
		}
	`))
	// The SelectStmt node is recorded in the entry block; the comm
	// statements are NOT re-added as nodes (blocking is attributed to the
	// select itself).
	foundSelect := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.SelectStmt); ok {
			foundSelect = true
		}
	}
	if !foundSelect {
		t.Fatalf("select node missing from its block:\n%s", g)
	}
	count := 0
	for _, b := range g.Blocks {
		if b.kind == "select.case" {
			count++
			for _, n := range b.Nodes {
				switch n.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					t.Fatalf("comm statement re-added as node:\n%s", g)
				}
			}
		}
	}
	if count != 2 {
		t.Fatalf("want 2 select.case blocks, got %d:\n%s", count, g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := New(parseBody(t, `
		for _, v := range xs {
			use(v)
		}
		after()
	`))
	var head, body *Block
	for _, b := range g.Blocks {
		switch b.kind {
		case "range.head":
			head = b
		case "range.body":
			body = b
		}
	}
	if head == nil || body == nil {
		t.Fatalf("missing range blocks:\n%s", g)
	}
	if len(body.Succs) != 1 || body.Succs[0] != head {
		t.Fatalf("range body must loop back to head:\n%s", g)
	}
	// The ranged expression evaluates once, before the head.
	if len(g.Entry.Nodes) != 1 {
		t.Fatalf("range X must land in the predecessor block:\n%s", g)
	}
}

func TestFuncLitNotDescended(t *testing.T) {
	g := New(parseBody(t, `
		h := func() {
			if nested {
				deep()
			}
		}
		h()
	`))
	// The literal's if must not contribute blocks to the outer graph.
	for _, b := range g.Blocks {
		if b.kind == "if.then" {
			t.Fatalf("descended into function literal:\n%s", g)
		}
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Blocks) != 2 || len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("nil body must yield entry->exit:\n%s", g)
	}
}
