// Package cfg builds intra-function control-flow graphs from go/ast
// function bodies, for the flow-sensitive dramvet passes (lockhold,
// lockorder). Like the rest of internal/analysis it is stdlib-only and
// mirrors the shape of golang.org/x/tools/go/cfg closely enough that a
// port would change only import paths.
//
// A Graph is a list of basic blocks. Each block holds the ast.Nodes
// that execute unconditionally once the block is entered, in order:
// simple statements, the condition expressions of if/for statements
// (placed in their own head blocks), switch case expressions, and
// marker nodes for select statements. Control-flow statements
// themselves (if/for/switch/select bodies) are decomposed into edges;
// function literals are NOT descended into — a FuncLit body is a
// different function with its own graph.
//
// Panic edges: a call to the panic builtin ends its block with an edge
// to Exit (the deferred calls run, then the function unwinds), so code
// after a panic is correctly treated as unreachable. Return statements
// likewise edge to Exit. Defer statements appear as ordinary DeferStmt
// nodes in the block where they execute; a dataflow that needs
// function-exit effects (e.g. deferred unlocks) interprets them when it
// reaches Exit.
package cfg

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks in creation order; Blocks[0] is Entry. Exit is the single
	// synthetic exit block every return/panic/fall-off edge targets.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Block is a basic block: nodes that execute in order, then a jump to
// one of Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	kind string // for String/debugging: "entry", "exit", "if.then", ...
}

// New builds the graph of one function body. body may be nil (a
// declaration without a body yields an empty entry→exit graph).
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{kind: "exit"}
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(g.Exit)
	// Exit is appended last so Blocks[i].Index == i throughout.
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

// String renders the graph for tests and debugging: one line per block
// with its kind and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		succs := make([]int, 0, len(b.Succs))
		for _, s := range b.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		fmt.Fprintf(&sb, "%d(%s) n=%d -> %v\n", b.Index, b.kind, len(b.Nodes), succs)
	}
	return sb.String()
}

// builder carries the under-construction graph and the jump targets of
// the enclosing loops and switches.
type builder struct {
	g   *Graph
	cur *Block

	// breaks/continues are stacks of enclosing targets. A label of ""
	// matches the innermost target; labeled entries match break/continue
	// with that label.
	breaks    []target
	continues []target
}

type target struct {
	label string
	block *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump ends the current block with an edge to dst and leaves the
// builder without a current block (the next statement is unreachable
// until startBlock is called).
func (b *builder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// startBlock begins a new current block (an unreachable one if nothing
// jumped to it).
func (b *builder) startBlock(blk *Block) {
	b.cur = blk
}

// add appends a node to the current block, materializing an unreachable
// block for dead code after return/break/panic so the AST is still
// covered (dataflow marks it unreachable via its lack of predecessors).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.startBlock(b.newBlock("unreachable"))
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt builds one statement. label is the label attached by an
// enclosing LabeledStmt (consumed by loops and switches so labeled
// break/continue resolve).
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call) {
			// Deferred calls run, then the function unwinds: panic edges
			// to Exit like a return, and the fallthrough path is dead.
			b.jump(b.g.Exit)
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case nil:
		// A nil statement (e.g. absent else) builds nothing.

	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: straight-line.
		b.add(s)
	}
}

// branch resolves break/continue against the enclosing target stacks.
// goto is handled conservatively: the path ends (no edge to the label),
// which over-approximates reachability of nothing and is safe for the
// may-held analyses built on top (none of the vetted packages use goto).
func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	find := func(stack []target) *Block {
		for i := len(stack) - 1; i >= 0; i-- {
			if label == "" || stack[i].label == label {
				return stack[i].block
			}
		}
		return nil
	}
	switch s.Tok.String() {
	case "break":
		if t := find(b.breaks); t != nil {
			b.add(s)
			b.jump(t)
			return
		}
	case "continue":
		if t := find(b.continues); t != nil {
			b.add(s)
			b.jump(t)
			return
		}
	case "fallthrough":
		// Handled structurally by switchBody; reaching here means a
		// malformed tree — treat as straight-line.
		b.add(s)
		return
	}
	// goto, or an unresolved label: end the path.
	b.add(s)
	b.jump(b.g.Exit)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	b.add(s.Cond)
	then := b.newBlock("if.then")
	after := b.newBlock("if.after")
	els := after
	if s.Else != nil {
		els = b.newBlock("if.else")
	}
	b.cur.Succs = append(b.cur.Succs, then, els)
	b.cur = nil

	b.startBlock(then)
	b.stmtList(s.Body.List)
	b.jump(after)

	if s.Else != nil {
		b.startBlock(els)
		b.stmt(s.Else, "")
		b.jump(after)
	}
	b.startBlock(after)
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}

	b.jump(head)
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
		head.Succs = append(head.Succs, body, after)
	} else {
		head.Succs = append(head.Succs, body)
	}
	b.cur = nil

	b.pushLoop(label, after, post)
	b.startBlock(body)
	b.stmtList(s.Body.List)
	b.jump(post)
	b.popLoop()

	if s.Post != nil {
		b.startBlock(post)
		b.stmt(s.Post, "")
		b.jump(head)
	}
	b.startBlock(after)
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")

	// The ranged expression is evaluated once, on entry; it lands in the
	// predecessor block so receives inside it are charged there.
	b.add(s.X)
	b.jump(head)
	b.startBlock(head)
	head.Succs = append(head.Succs, body, after)
	b.cur = nil

	b.pushLoop(label, after, head)
	b.startBlock(body)
	b.stmtList(s.Body.List)
	b.jump(head)
	b.popLoop()

	b.startBlock(after)
}

// switchBody builds the clauses of a switch or type switch.
// allowFallthrough distinguishes expression switches.
func (b *builder) switchBody(body *ast.BlockStmt, label string, allowFallthrough bool) {
	after := b.newBlock("switch.after")
	entry := b.cur

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("switch.case")
		if cc.List == nil {
			hasDefault = true
		}
	}

	if entry == nil {
		entry = b.newBlock("unreachable")
	}
	for _, blk := range blocks {
		entry.Succs = append(entry.Succs, blk)
	}
	if !hasDefault {
		entry.Succs = append(entry.Succs, after)
	}
	b.cur = nil

	b.breaks = append(b.breaks, target{label, after}, target{"", after})
	for i, cc := range clauses {
		b.startBlock(blocks[i])
		for _, e := range cc.List {
			b.add(e)
		}
		fell := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && allowFallthrough && br.Tok.String() == "fallthrough" {
				if i+1 < len(blocks) {
					b.jump(blocks[i+1])
					fell = true
				}
				break
			}
			b.stmt(st, "")
		}
		if !fell {
			b.jump(after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.startBlock(after)
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	// The SelectStmt node itself is recorded where the select blocks, so
	// a dataflow can ask "is this select reached with a lock held".
	b.add(s)
	after := b.newBlock("select.after")
	entry := b.cur
	b.cur = nil

	b.breaks = append(b.breaks, target{label, after}, target{"", after})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		entry.Succs = append(entry.Succs, blk)
		b.startBlock(blk)
		// The comm statement (send/receive) is not re-added as a node:
		// its blocking nature is attributed to the select itself.
		b.stmtList(cc.Body)
		b.jump(after)
	}
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.startBlock(after)
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, target{label, brk}, target{"", brk})
	b.continues = append(b.continues, target{label, cont}, target{"", cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
}

// isPanic recognizes a direct call to the panic builtin. It is purely
// syntactic (a shadowed `panic` identifier would be misread), which is
// acceptable for the conservative may-analyses built on the graph.
func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
