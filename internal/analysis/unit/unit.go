// Package unit implements the `go vet -vettool` protocol for the
// dramvet analyzers: a stdlib-only equivalent of
// golang.org/x/tools/go/analysis/unitchecker.
//
// The go command invokes the tool once per package with a JSON config
// file describing the source files and the export data of every
// dependency; the tool parses and type-checks the package (via
// go/importer reading that export data — the same mechanism the real
// unitchecker uses), runs the analyzers, and prints findings to stderr
// with a non-zero exit status. Two auxiliary invocation forms complete
// the protocol: `-V=full` prints a build-identifying version line the
// go command uses as a cache key, and `-flags` describes the tool's
// flags as JSON.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"dramstacks/internal/analysis"
)

// Config is the JSON schema of the file the go command passes as the
// sole positional argument (see cmd/go/internal/work and the x/tools
// unitchecker, which define the same contract).
type Config struct {
	ID                        string // e.g. "time [time.test]"
	Compiler                  string // gc or gccgo
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// versionFlag implements -V=full, the objabi version protocol: the go
// command keys its vet result cache on this line, so it must change
// whenever the tool binary changes (hence the content hash).
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	progname := os.Args[0]
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// Main is the entry point of a dramvet-style multichecker.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "dramvet"
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	flags := flag.NewFlagSet(progname, flag.ExitOnError)
	flags.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s: custom vet suite for the dramstacks repository.\n\n", progname)
		fmt.Fprintf(os.Stderr, "Usage: go vet -vettool=$(which %s) [-<analyzer>] packages...\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flags.Var(versionFlag{}, "V", "print version and exit")
	printFlags := flags.Bool("flags", false, "print flags as JSON and exit (go vet protocol)")
	listOnly := flags.Bool("list", false, "print the registered analyzers with their one-line docs and exit")
	jsonOut := flags.Bool("json", false, "emit diagnostics as JSON instead of text")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flags.Bool(a.Name, false, "enable only "+a.Name+" (default: all analyzers)")
	}
	flags.Parse(os.Args[1:])

	if *printFlags {
		// The go command runs `tool -flags` to learn which vet flags the
		// tool accepts; the schema is []{Name, Bool, Usage}.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		flags.VisitAll(func(f *flag.Flag) {
			// Meta flags are for humans (or the protocol itself), not for
			// the go command to pass per unit.
			if f.Name == "flags" || f.Name == "V" || f.Name == "list" {
				return
			}
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			out = append(out, jsonFlag{Name: f.Name, Bool: ok && b.IsBoolFlag(), Usage: f.Usage})
		})
		data, err := json.Marshal(out)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		os.Exit(0)
	}

	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		os.Exit(0)
	}

	// An explicit -<analyzer> flag narrows the run to the named subset.
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}

	args := flags.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flags.Usage()
		fmt.Fprintf(os.Stderr, "\ninvoking %s directly is unsupported; use go vet -vettool\n", progname)
		os.Exit(1)
	}
	run(args[0], selected, *jsonOut)
}

func run(configFile string, analyzers []*analysis.Analyzer, jsonOut bool) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	// The go command demands a facts file for every unit even though
	// this suite defines no cross-package facts; an empty one keeps the
	// protocol (and result caching) happy.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatalf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		// Facts-only run over a dependency: nothing to do.
		os.Exit(0)
	}

	fset := token.NewFileSet()
	files, pkg, info, err := typecheck(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the error; vet stays quiet.
			os.Exit(0)
		}
		log.Fatal(err)
	}

	type result struct {
		name  string
		diags []analysis.Diagnostic
	}
	results := []result{{"dramvet", analysis.MalformedDirectives(fset, files)}}
	for _, a := range analyzers {
		diags, err := analysis.Analyze(a, fset, files, pkg, info)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{a.Name, diags})
	}

	if jsonOut {
		// Shape mirrors x/tools: {pkgID: {analyzer: [{posn, message}]}}.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := make(map[string][]jsonDiag)
		for _, res := range results {
			for _, d := range res.diags {
				byAnalyzer[res.name] = append(byAnalyzer[res.name],
					jsonDiag{Posn: fset.Position(d.Pos).String(), Message: d.Message})
			}
		}
		data, err := json.MarshalIndent(map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
		os.Exit(0)
	}

	exit := 0
	for _, res := range results {
		sort.Slice(res.diags, func(i, j int) bool { return res.diags[i].Pos < res.diags[j].Pos })
		for _, d := range res.diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	os.Exit(exit)
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 && !cfg.VetxOnly {
		// The go command vets packages with no Go files (e.g. assembly
		// only); nothing for us to do there.
		os.Exit(0)
	}
	return cfg, nil
}

// typecheck parses and type-checks the unit exactly like the real
// unitchecker: dependencies are imported from the compiler export data
// files the go command names in cfg.PackageFile.
func typecheck(fset *token.FileSet, cfg *Config) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		path, ok := cfg.ImportMap[importPath] // resolves vendoring
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
