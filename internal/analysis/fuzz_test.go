package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzAllowDirective fuzzes the //dramvet: comment parser with
// arbitrary comment text and checks its invariants: no panic, every
// parsed directive has a well-formed analyzer name and a non-empty
// reason, and every comment that starts with //dramvet: is either
// parsed or reported malformed — never silently dropped (a typo'd
// suppression that vanishes is how a real violation hides).
func FuzzAllowDirective(f *testing.F) {
	seeds := []string{
		"//dramvet:allow lockhold(reason here)",
		"//dramvet:allow lockorder(shutdown path; see doc/LOCKORDER.md)",
		"//dramvet:allow goroleak(process-lifetime pump (dies with the process))",
		"//dramvet:allow detrange()",
		"//dramvet:allow detrange(   )",
		"//dramvet:allow Detrange(x)",
		"//dramvet:allow det-range(x)",
		"//dramvet:allowlockhold(x)",
		"//dramvet:",
		"//dramvet: allow lockhold(x)",
		"//dramvet:allow lockhold(unbalanced",
		"//dramvet:allow lockhold)backwards(",
		"// not a directive at all",
		"//dramvet:allow a1(x) trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, comment string) {
		src := "package p\n" + comment + "\nfunc f() {}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			return // input broke Go syntax entirely; nothing to check
		}

		dirs, malformed := fileDirectives(fset, file)
		for _, d := range dirs {
			if d.analyzer == "" {
				t.Errorf("parsed directive with empty analyzer: %+v", d)
			}
			for i, r := range d.analyzer {
				lower := r >= 'a' && r <= 'z'
				digit := r >= '0' && r <= '9'
				if !lower && !(digit && i > 0) {
					t.Errorf("analyzer name %q violates [a-z][a-z0-9]*", d.analyzer)
				}
			}
			if strings.TrimSpace(d.reason) == "" {
				t.Errorf("parsed directive with empty reason: %+v", d)
			}
			if d.line <= 0 || !d.pos.IsValid() {
				t.Errorf("directive with bogus position: %+v", d)
			}
		}

		// Conservation: dramvet-prefixed comments all land somewhere.
		prefixed := 0
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), "//dramvet:") {
					prefixed++
				}
			}
		}
		if len(dirs)+len(malformed) != prefixed {
			t.Errorf("%d dramvet comments but %d parsed + %d malformed",
				prefixed, len(dirs), len(malformed))
		}

		// The driver-facing view agrees with the parser.
		diags := MalformedDirectives(fset, []*ast.File{file})
		if len(diags) != len(malformed) {
			t.Errorf("MalformedDirectives reported %d, parser found %d", len(diags), len(malformed))
		}
	})
}
