package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// check parses and type-checks src as a single-file package and builds
// its call graph.
func check(t *testing.T, src string) (*Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build([]*ast.File{f}, pkg, info), info
}

// node finds the graph node with the given rendered name.
func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q; have %v", name, names(g.Nodes))
	return nil
}

func names(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name()
	}
	return out
}

func TestDirectCall(t *testing.T) {
	g, _ := check(t, `package p
func a() { b() }
func b() {}
`)
	a := node(t, g, "a")
	if len(a.Calls) != 1 || len(a.Calls[0].Callees) != 1 || a.Calls[0].Callees[0].Name() != "b" {
		t.Fatalf("a must call b: %+v", a.Calls)
	}
}

func TestMethodCall(t *testing.T) {
	g, _ := check(t, `package p
type S struct{}
func (s *S) m() { s.n() }
func (s *S) n() {}
`)
	m := node(t, g, "(*S).m")
	if len(m.Calls) != 1 || len(m.Calls[0].Callees) != 1 {
		t.Fatalf("m must call n: %+v", m.Calls)
	}
	if m.Calls[0].Callees[0].Name() != "(*S).n" {
		t.Fatalf("callee = %q", m.Calls[0].Callees[0].Name())
	}
}

func TestExternalCallNoEdge(t *testing.T) {
	g, _ := check(t, `package p
import "strings"
func a() { strings.TrimSpace("x") }
`)
	a := node(t, g, "a")
	if len(a.Calls) != 1 {
		t.Fatalf("call site must be recorded: %+v", a.Calls)
	}
	if len(a.Calls[0].Callees) != 0 {
		t.Fatalf("external call must have no in-package callees: %+v", a.Calls[0].Callees)
	}
}

func TestInterfaceDispatch(t *testing.T) {
	g, _ := check(t, `package p
type runner interface{ run() }
type fast struct{}
func (fast) run() {}
type slow struct{}
func (*slow) run() {}
type other struct{}
func (other) walk() {}
func drive(r runner) { r.run() }
`)
	d := node(t, g, "drive")
	if len(d.Calls) != 1 {
		t.Fatalf("drive must have one call site: %+v", d.Calls)
	}
	got := names(d.Calls[0].Callees)
	if len(got) != 2 {
		t.Fatalf("interface call must resolve to both implementers, got %v", got)
	}
}

func TestFuncLitOwnNode(t *testing.T) {
	g, _ := check(t, `package p
func a() {
	go func() { b() }()
}
func b() {}
`)
	a := node(t, g, "a")
	// a's only call site is the literal invocation; b() belongs to the
	// literal node.
	if len(a.Calls) != 1 {
		t.Fatalf("a must own exactly the literal call: %+v", names(a.Calls[0].Callees))
	}
	if len(a.Calls[0].Callees) != 1 || a.Calls[0].Callees[0].Lit == nil {
		t.Fatalf("literal call must resolve to the literal node")
	}
	lit := a.Calls[0].Callees[0]
	if len(lit.Calls) != 1 || lit.Calls[0].Callees[0].Name() != "b" {
		t.Fatalf("literal must own the b() call: %+v", lit.Calls)
	}
}

func TestReachable(t *testing.T) {
	g, _ := check(t, `package p
func a() { b() }
func b() { c() }
func c() { a() }
func d() {}
`)
	got := names(g.Reachable(node(t, g, "a")))
	want := map[string]bool{"a": true, "b": true, "c": true}
	if len(got) != 3 {
		t.Fatalf("reachable from a = %v, want a,b,c", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("unexpected reachable node %q", n)
		}
	}
}

func TestDeferredLiteralReachable(t *testing.T) {
	g, _ := check(t, `package p
func a() {
	defer func() { b() }()
}
func b() {}
`)
	got := names(g.Reachable(node(t, g, "a")))
	found := false
	for _, n := range got {
		if n == "b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("b must be reachable through the deferred literal, got %v", got)
	}
}
