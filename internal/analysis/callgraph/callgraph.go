// Package callgraph builds a conservative static call graph over one
// type-checked package, for the interprocedural dramvet passes
// (lockorder, goroleak). It is stdlib-only, like the rest of
// internal/analysis.
//
// Nodes are the package's function and method declarations (keyed by
// their *types.Func object) plus its function literals. Call edges are
// resolved through go/types:
//
//   - direct calls to package-level functions and concrete methods
//     resolve to their declaration;
//   - calls through an interface method resolve, type-based, to every
//     method declared in the package whose receiver type implements the
//     interface — the conservative over-approximation a static graph
//     needs;
//   - calls to functions outside the package have no body here and
//     produce no edge (their effects are invisible to the passes, which
//     is the documented limitation of a per-package vet unit).
//
// Function literals are nodes too, and a call site inside a literal
// belongs to the literal, not to the enclosing declaration — a
// goroutine body `go func() {...}()` is its own function.
package callgraph

import (
	"go/ast"
	"go/types"
)

// Node is one function with a body: a declaration or a literal.
type Node struct {
	// Func is the declared object; nil for a function literal.
	Func *types.Func
	// Decl / Lit locate the source; exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Calls are the call sites lexically inside this function (not
	// inside nested literals).
	Calls []*Call
}

// Name renders the node for diagnostics: "(*Server).worker",
// "trustedResult", or "func literal". Package qualifiers are dropped —
// diagnostics are always about the package under analysis.
func (n *Node) Name() string {
	if n.Func == nil {
		return "func literal"
	}
	if recv := n.Func.Signature().Recv(); recv != nil {
		unqualified := func(*types.Package) string { return "" }
		return "(" + types.TypeString(recv.Type(), unqualified) + ")." + n.Func.Name()
	}
	return n.Func.Name()
}

// Body returns the function body (may be nil for a bodyless decl).
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Call is one call site with its possible in-package targets.
type Call struct {
	Site *ast.CallExpr
	// Callees are the possible targets that have bodies in this
	// package; empty for calls that only target external code.
	Callees []*Node
}

// Graph is the package call graph.
type Graph struct {
	// Nodes in source order (declarations first, then literals), so
	// iteration is deterministic.
	Nodes []*Node

	byFunc map[*types.Func]*Node
	byLit  *litMap
}

type litMap struct{ m map[*ast.FuncLit]*Node }

// NodeOf returns the node of a declared function object, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit.m[lit] }

// Build constructs the call graph of one package.
func Build(files []*ast.File, pkg *types.Package, info *types.Info) *Graph {
	g := &Graph{
		byFunc: make(map[*types.Func]*Node),
		byLit:  &litMap{m: make(map[*ast.FuncLit]*Node)},
	}

	// Pass 1: create nodes for every declaration and literal.
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			n := &Node{Func: fn, Decl: fd}
			g.Nodes = append(g.Nodes, n)
			if fn != nil {
				g.byFunc[fn] = n
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				node := &Node{Lit: lit}
				g.Nodes = append(g.Nodes, node)
				g.byLit.m[lit] = node
			}
			return true
		})
	}

	// Pass 2: resolve call sites per owning function.
	for _, n := range g.Nodes {
		body := n.Body()
		if body == nil {
			continue
		}
		walkOwn(body, func(call *ast.CallExpr) {
			c := &Call{Site: call, Callees: g.resolve(call, pkg, info)}
			n.Calls = append(n.Calls, c)
		})
	}
	return g
}

// walkOwn visits every call expression lexically inside body, without
// descending into nested function literals (their calls belong to the
// literal's own node). The literal expression itself is still visited,
// so an immediately-invoked literal resolves at the call site.
func walkOwn(body *ast.BlockStmt, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(x)
		}
		return true
	})
}

// resolve finds the possible in-package targets of one call.
func (g *Graph) resolve(call *ast.CallExpr, pkg *types.Package, info *types.Info) []*Node {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if n := g.byFunc[fn]; n != nil {
				return []*Node{n}
			}
		}
	case *ast.SelectorExpr:
		obj := info.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			break
		}
		if n := g.byFunc[fn]; n != nil {
			// Concrete method or package-qualified function declared here.
			return []*Node{n}
		}
		// Interface dispatch: fn is the interface's method object. Edge
		// to every in-package concrete method that could be behind it.
		if recv := fn.Signature().Recv(); recv != nil && types.IsInterface(recv.Type()) {
			return g.implementers(recv.Type(), fn.Name(), pkg)
		}
	case *ast.FuncLit:
		if n := g.byLit.m[fun]; n != nil {
			return []*Node{n}
		}
	}
	return nil
}

// implementers returns the nodes of every method named name declared in
// pkg whose receiver type implements iface.
func (g *Graph) implementers(iface types.Type, name string, pkg *types.Package) []*Node {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Node
	for _, n := range g.Nodes {
		if n.Func == nil || n.Func.Name() != name {
			continue
		}
		recv := n.Func.Signature().Recv()
		if recv == nil {
			continue
		}
		rt := recv.Type()
		if types.Implements(rt, it) || types.Implements(types.NewPointer(rt), it) {
			out = append(out, n)
		}
	}
	return out
}

// Reachable returns root plus every node transitively callable from it,
// in deterministic (source) order.
func (g *Graph) Reachable(root *Node) []*Node {
	seen := map[*Node]bool{root: true}
	work := []*Node{root}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, c := range n.Calls {
			for _, callee := range c.Callees {
				if !seen[callee] {
					seen[callee] = true
					work = append(work, callee)
				}
			}
		}
	}
	var out []*Node
	for _, n := range g.Nodes {
		if seen[n] {
			out = append(out, n)
		}
	}
	return out
}
