// Package other is outside the deterministic package list: map
// iteration here is not dramvet's business.
package other

func first(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
