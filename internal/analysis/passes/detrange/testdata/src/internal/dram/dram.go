// Package dram is a detrange fixture standing in for the real
// deterministic package of the same import path.
package dram

import "sort"

// Flagged: the body observes iteration order (returns the first pair).
func first(m map[string]int) (string, int) {
	for k, v := range m { // want `range over map in deterministic package internal/dram`
		return k, v
	}
	return "", 0
}

// Flagged: appends values in iteration order with no later sort.
func values(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over map in deterministic package internal/dram`
		out = append(out, v)
	}
	return out
}

// Clean: the canonical collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clean: collect-then-sort behind a single filtering guard.
func positiveKeys(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Clean: pure accumulation cannot observe order.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Clean: writes a distinct key per iteration.
func clone(m map[string]int) map[string]int {
	dst := make(map[string]int, len(m))
	for k, v := range m {
		dst[k] = v
	}
	return dst
}

// Clean: acknowledged for the whole function via the doc comment.
//
//dramvet:allow detrange(an arbitrary element is the contract here; order cannot matter)
func anyKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Clean: acknowledged on the line above the range.
func anyValue(m map[string]int) int {
	//dramvet:allow detrange(an arbitrary element is the contract here; order cannot matter)
	for _, v := range m {
		return v
	}
	return 0
}

// A directive without a reason is itself a finding, not a silent no-op.
func unreasoned(m map[string]int) string {
	//dramvet:allow detrange() // want `malformed dramvet directive`
	for k := range m { // want `range over map in deterministic package internal/dram`
		return k
	}
	return ""
}
