package detrange_test

import (
	"testing"

	"dramstacks/internal/analysis/analysistest"
	"dramstacks/internal/analysis/passes/detrange"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrange.Analyzer, "internal/dram")
}

func TestOtherPackagesExempt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrange.Analyzer, "pkg/other")
}
