// Package detrange flags `for … range` over a map inside the
// deterministic simulator packages (see detpkg.List), where iteration
// order nondeterminism can leak into results, golden tests, or hashes.
//
// A map range is accepted without annotation in two provably
// order-insensitive shapes:
//
//   - key collection followed by a sort: the loop body is exactly
//     `s = append(s, k)` and a later statement of the same enclosing
//     block sorts s (sort.Strings/Ints/Float64s/Slice/Sort or
//     slices.Sort*).
//   - pure accumulation: every statement in the body is a commutative
//     update (x++, x--, x += v, x |= v, …), an insert keyed by the
//     range key (m2[k] = v, delete(m2, k)), a continue, or an if/block
//     composed of such statements.
//
// Anything else needs restructuring or an explicit
// //dramvet:allow detrange(reason) acknowledgment.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/passes/detpkg"
)

// Analyzer is the detrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag map iteration in deterministic packages unless provably order-insensitive\n\n" +
		"Map iteration order is randomized; in the simulator's deterministic core it must\n" +
		"never influence behavior. Sort the keys first, keep the body to pure accumulation,\n" +
		"or acknowledge with //dramvet:allow detrange(reason).",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !detpkg.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Examine every statement list so ranges nested in case
			// clauses are seen too, with access to the trailing
			// statements (for the collect-then-sort idiom).
			switch x := n.(type) {
			case *ast.BlockStmt:
				checkStmts(pass, x.List)
			case *ast.CaseClause:
				checkStmts(pass, x.Body)
			case *ast.CommClause:
				checkStmts(pass, x.Body)
			}
			return true
		})
	}
	return nil, nil
}

func checkStmts(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := pass.TypesInfo.Types[rng.X].Type
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		if collectThenSort(pass, rng, stmts[i+1:]) || orderInsensitive(rng) {
			continue
		}
		pass.Reportf(rng.Pos(),
			"range over map in deterministic package %s: iteration order is randomized; "+
				"sort the keys first, reduce the body to pure accumulation, or annotate "+
				"//dramvet:allow detrange(reason)", pass.Pkg.Path())
	}
}

// keyIdent returns the range statement's key variable, if it is a
// plain identifier (not _).
func keyIdent(rng *ast.RangeStmt) *ast.Ident {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

// collectThenSort recognizes the canonical deterministic-iteration
// idiom: the body only appends the key to a slice (possibly behind a
// single filtering if), and a later statement of the enclosing block
// sorts that slice.
func collectThenSort(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	key := keyIdent(rng)
	if key == nil || len(rng.Body.List) != 1 {
		return false
	}
	stmt := rng.Body.List[0]
	// Unwrap a filtering guard: `if cond { s = append(s, k) }`.
	if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == nil && ifs.Else == nil && len(ifs.Body.List) == 1 {
		stmt = ifs.Body.List[0]
	}
	asg, ok := stmt.(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) != 2 {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || src.Name != dst.Name {
		return false
	}
	if arg, ok := call.Args[1].(*ast.Ident); !ok || !sameObject(pass, arg, key) {
		return false
	}
	// Look for a sort of dst anywhere later in the same block.
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isSortCall(pass, call.Fun) {
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok && arg.Name == dst.Name && sameObject(pass, arg, dst) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall recognizes sort.* and slices.Sort* selector calls.
func isSortCall(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch packageOf(pass, sel) {
	case "sort", "slices":
		return true
	}
	return false
}

// orderInsensitive reports whether every statement of the loop body is
// a commutative update that cannot observe iteration order.
func orderInsensitive(rng *ast.RangeStmt) bool {
	key := keyIdent(rng)
	var ok func(ast.Stmt) bool
	ok = func(stmt ast.Stmt) bool {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			return true
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
				token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
				return true
			case token.ASSIGN:
				// m2[k] = v: writes a distinct key per iteration.
				if key == nil || len(s.Lhs) != 1 {
					return false
				}
				idx, isIdx := s.Lhs[0].(*ast.IndexExpr)
				if !isIdx {
					return false
				}
				id, isIdent := idx.Index.(*ast.Ident)
				return isIdent && id.Name == key.Name
			}
			return false
		case *ast.ExprStmt:
			// delete(m2, k): removes a distinct key per iteration.
			call, isCall := s.X.(*ast.CallExpr)
			if !isCall || len(call.Args) != 2 {
				return false
			}
			if fn, isIdent := call.Fun.(*ast.Ident); !isIdent || fn.Name != "delete" {
				return false
			}
			id, isIdent := call.Args[1].(*ast.Ident)
			return isIdent && key != nil && id.Name == key.Name
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE
		case *ast.IfStmt:
			if s.Init != nil {
				return false
			}
			for _, b := range s.Body.List {
				if !ok(b) {
					return false
				}
			}
			if s.Else != nil {
				els, isBlock := s.Else.(*ast.BlockStmt)
				if !isBlock {
					return false
				}
				for _, b := range els.List {
					if !ok(b) {
						return false
					}
				}
			}
			return true
		case *ast.BlockStmt:
			for _, b := range s.List {
				if !ok(b) {
					return false
				}
			}
			return true
		}
		return false
	}
	for _, stmt := range rng.Body.List {
		if !ok(stmt) {
			return false
		}
	}
	return true
}

// isBuiltin reports whether fun names the given builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sameObject reports whether two identifiers denote the same object.
func sameObject(pass *analysis.Pass, a, b *ast.Ident) bool {
	oa := pass.TypesInfo.ObjectOf(a)
	ob := pass.TypesInfo.ObjectOf(b)
	return oa != nil && oa == ob
}

// packageOf resolves the package an X.Sel selector refers to, returning
// its import path ("" when X is not a package name).
func packageOf(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path()
}
