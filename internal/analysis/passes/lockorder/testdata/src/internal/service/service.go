// Package service is a lockorder fixture standing in for the real
// internal/service: nesting service mutexes is allowed only in one
// consistent direction, and the pass fails on any cycle.
package service

import "sync"

type Server struct {
	mu   sync.Mutex
	jobs map[string]*Job
}

type Job struct {
	mu    sync.Mutex
	srv   *Server
	state int
}

// Isolated lock: never nested with another, participates in no edge.
type Cache struct {
	mu sync.Mutex
	m  map[string]int
}

func (c *Cache) Get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

// The established direction: Server.mu is held while Job.mu is
// acquired, through a call. This edge is fine on its own — it is
// flagged below only because badPromote closes the cycle.
func (s *Server) status(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	return j.get() // want `lock-order cycle`
}

func (j *Job) get() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// The violation: acquiring Server.mu while holding Job.mu runs against
// the direction status established, so two goroutines can deadlock.
func (j *Job) badPromote() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.srv.mu.Lock() // want `lock-order cycle`
	j.srv.mu.Unlock()
}

// Clean: the flow-sensitive dataflow sees the release, so snapshotting
// under one lock and then taking the other adds no edge.
func (j *Job) goodHandOff() int {
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	j.srv.mu.Lock()
	defer j.srv.mu.Unlock()
	return state + len(j.srv.jobs)
}

// Clean: a goroutine body starts with no locks held, whatever its
// lexical context holds when it launches.
func (j *Job) goodAsync() {
	j.mu.Lock()
	defer j.mu.Unlock()
	go func() {
		j.srv.mu.Lock()
		defer j.srv.mu.Unlock()
	}()
}

// Acknowledged inverse nesting: the directive on the function doc
// comment suppresses the interprocedural finding inside it.
//
//dramvet:allow lockorder(fixture: shutdown path, serialized by the run loop)
func (j *Job) allowedInverse() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.srv.mu.Lock()
	j.srv.mu.Unlock()
}
