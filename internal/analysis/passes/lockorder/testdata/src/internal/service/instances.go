package service

// Two instances of the same lock class nested: without a documented
// instance order, two goroutines nesting (a, b) and (b, a) deadlock —
// a self-edge in the class graph, reported as a cycle.
func transfer(a, b *Job) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle`
	b.mu.Unlock()
}
