package lockorder

import (
	"go/token"
	"strings"
	"testing"

	"dramstacks/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "internal/service")
}

func TestRenderDAG(t *testing.T) {
	classes := []string{"Cache.mu", "Job.mu", "Server.mu"}
	edges := []*edge{{
		from: "Server.mu",
		to:   "Job.mu",
		pos:  token.Pos(1),
		note: "Job.mu acquired in (*Server).status while Server.mu held",
	}}
	got := RenderDAG(classes, edges)
	for _, want := range []string{
		"Server.mu -> Job.mu",
		"Server.mu < Job.mu",
		"Never nested with another lock: Cache.mu",
		"do not edit by hand",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("RenderDAG output missing %q:\n%s", want, got)
		}
	}
}

func TestRenderDAGCycle(t *testing.T) {
	edges := []*edge{
		{from: "A.mu", to: "B.mu", pos: 1, note: "x"},
		{from: "B.mu", to: "A.mu", pos: 2, note: "y"},
	}
	got := RenderDAG([]string{"A.mu", "B.mu"}, edges)
	if !strings.Contains(got, "CYCLE") {
		t.Errorf("cyclic DAG must render CYCLE marker:\n%s", got)
	}
}

func TestRenderDAGEmpty(t *testing.T) {
	got := RenderDAG([]string{"Store.mu"}, nil)
	if !strings.Contains(got, "(none: no service mutex is ever acquired while another is held)") {
		t.Errorf("empty edge set must say so:\n%s", got)
	}
	if !strings.Contains(got, "Store.mu") {
		t.Errorf("lock classes must be listed even without edges:\n%s", got)
	}
}

func TestDescribeCycle(t *testing.T) {
	edges := []*edge{
		{from: "A.mu", to: "B.mu"},
		{from: "B.mu", to: "A.mu"},
	}
	got := describeCycle(edges, edges[0])
	if got != "A.mu → B.mu → A.mu" {
		t.Errorf("describeCycle = %q", got)
	}
	self := &edge{from: "J.mu", to: "J.mu"}
	if got := describeCycle([]*edge{self}, self); got != "J.mu → J.mu" {
		t.Errorf("self cycle = %q", got)
	}
}

func TestTopoOrder(t *testing.T) {
	edges := []*edge{
		{from: "A.mu", to: "B.mu"},
		{from: "B.mu", to: "C.mu"},
	}
	order, acyclic := topoOrder(edges)
	if !acyclic {
		t.Fatal("chain misdetected as cycle")
	}
	if strings.Join(order, "<") != "A.mu<B.mu<C.mu" {
		t.Errorf("topo order = %v", order)
	}
	if _, acyclic := topoOrder([]*edge{{from: "A.mu", to: "A.mu"}}); acyclic {
		t.Error("self edge must be cyclic")
	}
}
