// Package detpkg names the repository's deterministic core: the
// packages whose behavior must be a pure function of their inputs,
// because the golden-equivalence tests (byte-identical stacks across
// the fast and slow simulator loops) and the crash-recovery validation
// (spec-hash-addressed results served byte-identically after restart)
// both assume it. The detrange and nowallclock analyzers apply only
// inside this set.
package detpkg

import "strings"

// List is the deterministic core, as module-relative package paths.
var List = []string{
	"internal/addrmap",
	"internal/cache",
	"internal/cpu",
	"internal/cyclestack",
	"internal/dram",
	"internal/dram/standard",
	"internal/exp",
	"internal/memctrl",
	"internal/prefetch",
	"internal/qos",
	"internal/sched",
	"internal/sim",
	"internal/stacks",
	"internal/workload",
}

// Deterministic reports whether a package path — as spelled by the vet
// driver, which may be a test variant like
// "dramstacks/internal/exp [dramstacks/internal/exp.test]" or the
// external test package "dramstacks/internal/exp_test" — belongs to the
// deterministic core.
func Deterministic(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i] // strip the " [pkg.test]" variant suffix
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	for _, p := range List {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}
