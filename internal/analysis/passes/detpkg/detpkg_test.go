package detpkg

import (
	"os/exec"
	"strings"
	"testing"
)

func TestDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"internal/dram", true},
		{"dramstacks/internal/dram", true},
		{"dramstacks/internal/dram/standard", true},
		{"dramstacks/internal/dram/standard [dramstacks/internal/dram/standard.test]", true},
		{"dramstacks/internal/exp", true},
		{"dramstacks/internal/exp.test", true},
		{"dramstacks/internal/exp_test", true},
		{"dramstacks/internal/exp [dramstacks/internal/exp.test]", true},
		{"dramstacks/internal/service", false},
		{"dramstacks/cmd/dramstacks", false},
		{"internal/drama", false},
		{"time", false},
	}
	for _, tc := range cases {
		if got := Deterministic(tc.path); got != tc.want {
			t.Errorf("Deterministic(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

// TestListCoversSimDeps keeps List in sync with reality: every internal
// package the simulator core actually imports must be registered, or
// the determinism analyzers silently stop looking at it. Walks the
// import graph from internal/sim via the go tool, so adding a new
// dependency to the simulator without registering it here fails CI.
func TestListCoversSimDeps(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	out, err := exec.Command("go", "list", "-deps", "dramstacks/internal/sim").Output()
	if err != nil {
		t.Fatalf("go list -deps: %v", err)
	}
	registered := make(map[string]bool, len(List))
	for _, p := range List {
		registered[p] = true
	}
	for _, dep := range strings.Fields(string(out)) {
		rel, ok := strings.CutPrefix(dep, "dramstacks/")
		if !ok || !strings.HasPrefix(rel, "internal/") {
			continue // stdlib, or a non-internal module package
		}
		if !registered[rel] {
			t.Errorf("package %s is reachable from internal/sim but missing from detpkg.List; "+
				"register it so the determinism analyzers cover it", rel)
		}
	}
}
