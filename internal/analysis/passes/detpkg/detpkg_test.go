package detpkg

import "testing"

func TestDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"internal/dram", true},
		{"dramstacks/internal/dram", true},
		{"dramstacks/internal/dram/standard", true},
		{"dramstacks/internal/dram/standard [dramstacks/internal/dram/standard.test]", true},
		{"dramstacks/internal/exp", true},
		{"dramstacks/internal/exp.test", true},
		{"dramstacks/internal/exp_test", true},
		{"dramstacks/internal/exp [dramstacks/internal/exp.test]", true},
		{"dramstacks/internal/service", false},
		{"dramstacks/cmd/dramstacks", false},
		{"internal/drama", false},
		{"time", false},
	}
	for _, tc := range cases {
		if got := Deterministic(tc.path); got != tc.want {
			t.Errorf("Deterministic(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}
