// Package poolescape guards the hot-loop free-list discipline the
// event-wheel refactor depends on: steady-state simulation allocates
// nothing per cycle because hot objects (memctrl requests, cpu load
// tickets) are recycled through per-owner free lists. That only holds
// if every acquired object finds its way back to the list, and if
// objects handed across the package boundary have a documented owner —
// a pooled pointer retained by a caller past its recycle is a
// use-after-free in all but name.
//
// Within the deterministic hot-loop packages (detpkg.List), the
// analyzer treats any struct field of type []*T whose name contains
// "free" or "pool" as a free list for T and reports:
//
//   - a free list that is never appended to: objects are acquired
//     (or at least pooled in name) without a matching recycle/Put;
//   - an exported function or method returning *T or []*T: the pooled
//     object escapes the package that owns its lifetime. Legitimate
//     hand-offs (e.g. a request the caller may inspect until its
//     completion callback fires) are acknowledged with
//     //dramvet:allow poolescape(reason) documenting the ownership
//     rule.
package poolescape

import (
	"go/ast"
	"go/types"
	"strings"

	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/passes/detpkg"
)

// Analyzer is the poolescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "flag pooled hot-loop objects escaping their pool scope\n\n" +
		"Free-listed objects (memctrl requests, cpu tickets) must be recycled by their\n" +
		"owner and must not cross the package boundary without a documented ownership\n" +
		"hand-off (//dramvet:allow poolescape(reason)).",
	Run: run,
}

// pool is one free-list field and what we learned about it.
type pool struct {
	field *types.Var // the []*T struct field
	elem  types.Type // *T
	pos   ast.Node   // field declaration, for diagnostics
	put   bool       // saw an append to the field
}

func run(pass *analysis.Pass) (any, error) {
	if !detpkg.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}

	// Collect free-list fields: struct fields of type []*T named *free*
	// or *pool*.
	var pools []*pool
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					lower := strings.ToLower(name.Name)
					if !strings.Contains(lower, "free") && !strings.Contains(lower, "pool") {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					sl, ok := obj.Type().Underlying().(*types.Slice)
					if !ok {
						continue
					}
					if _, ok := sl.Elem().Underlying().(*types.Pointer); !ok {
						continue
					}
					pools = append(pools, &pool{field: obj, elem: sl.Elem(), pos: fld})
				}
			}
			return true
		})
	}
	if len(pools) == 0 {
		return nil, nil
	}

	// A free list is recycled if something is appended to it anywhere in
	// the package: `x.fooFree = append(x.fooFree, v)`.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
				return true
			}
			if obj := fieldOf(pass, call.Args[0]); obj != nil {
				for _, p := range pools {
					if p.field == obj {
						p.put = true
					}
				}
			}
			return true
		})
	}
	for _, p := range pools {
		if !p.put {
			pass.Reportf(p.pos.Pos(),
				"free list %s is never appended to: pooled %s objects are acquired "+
					"without a matching recycle/Put", p.field.Name(), p.elem)
		}
	}

	// Exported functions returning a pooled pointer type hand lifetime
	// management to code that cannot see the pool.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Results == nil {
				continue
			}
			for _, res := range fd.Type.Results.List {
				rt := pass.TypesInfo.Types[res.Type].Type
				if rt == nil {
					continue
				}
				for _, p := range pools {
					if types.Identical(rt, p.elem) || isSliceOf(rt, p.elem) {
						pass.Reportf(fd.Name.Pos(),
							"exported %s returns pooled type %s, which is recycled via %s: "+
								"the caller can retain it past its recycle; document the "+
								"ownership hand-off with //dramvet:allow poolescape(reason) "+
								"or return a copy", fd.Name.Name, p.elem, p.field.Name())
					}
				}
			}
		}
	}
	return nil, nil
}

// fieldOf resolves expr to the struct field it selects, if any.
func fieldOf(pass *analysis.Pass, expr ast.Expr) *types.Var {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil
	}
	return obj
}

// isSliceOf reports whether t is []elem.
func isSliceOf(t, elem types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	return ok && types.Identical(sl.Elem(), elem)
}
