package poolescape_test

import (
	"testing"

	"dramstacks/internal/analysis/analysistest"
	"dramstacks/internal/analysis/passes/poolescape"
)

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolescape.Analyzer, "internal/memctrl")
}

func TestSkipsNonDeterministicPackages(t *testing.T) {
	// The same fixture shapes outside detpkg.List must report nothing.
	analysistest.Run(t, analysistest.TestData(), poolescape.Analyzer, "outside")
}
