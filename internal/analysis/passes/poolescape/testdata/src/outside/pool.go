// Fixture: identical pool shapes outside the deterministic core are
// not poolescape's business.
package outside

type Req struct{ addr uint64 }

type ctrl struct {
	reqFree []*Req // never appended to, but this package is not gated
}

// Acquire would escape in a hot-loop package; here it is fine.
func (c *ctrl) Acquire() *Req {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		return r
	}
	return &Req{}
}
