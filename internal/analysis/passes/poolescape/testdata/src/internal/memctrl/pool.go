// Fixture for the poolescape analyzer: free-list discipline in a
// deterministic hot-loop package.
package memctrl

// Req is a pooled hot object.
type Req struct{ addr uint64 }

// Orphan is pooled but its free list is never appended to.
type Orphan struct{ n int }

type ctrl struct {
	reqFree  []*Req
	lostFree []*Orphan // want `free list lostFree is never appended to`
	queue    []*Req    // not a pool: name does not say so
}

// orphanage declares a pool with no recycle path at all.
type orphanage struct {
	orphanPool []*Orphan // want `free list orphanPool is never appended to`
}

func (c *ctrl) get() *Req {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		return r
	}
	return &Req{}
}

func (c *ctrl) put(r *Req) {
	*r = Req{}
	c.reqFree = append(c.reqFree, r)
}

// Acquire hands a pooled object across the package boundary.
func (c *ctrl) Acquire() *Req { // want `exported Acquire returns pooled type \*internal/memctrl\.Req`
	return c.get()
}

// AcquireAll leaks a whole slice of pooled objects.
func (c *ctrl) AcquireAll() []*Req { // want `exported AcquireAll returns pooled type`
	return []*Req{c.get()}
}

// Borrow is an acknowledged hand-off: the caller may inspect the
// request until its completion fires, never after.
//
//dramvet:allow poolescape(caller may inspect until completion fires; recycle happens at completion)
func (c *ctrl) Borrow() *Req {
	return c.get()
}

// Snapshot returns a copy, not the pooled object.
func (c *ctrl) Snapshot() Req {
	return *c.get()
}

func (c *ctrl) internalGet() *Req { // unexported: in-package hand-offs are fine
	return c.get()
}
