package nowallclock_test

import (
	"testing"

	"dramstacks/internal/analysis/analysistest"
	"dramstacks/internal/analysis/passes/nowallclock"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nowallclock.Analyzer, "internal/sim")
}

func TestOtherPackagesExempt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nowallclock.Analyzer, "pkg/tools")
}
