// Package nowallclock forbids wall-clock time, process environment, and
// unseeded global randomness inside the deterministic simulator
// packages (see detpkg.List): simulated time must never alias wall
// time, and a simulation's output must be a pure function of its spec.
//
// Flagged: time.Now / time.Since / time.Until, os.Getenv / os.LookupEnv
// / os.Environ, and every math/rand (and math/rand/v2) function that
// draws from the global source. Explicitly seeded generators —
// rand.New(rand.NewSource(seed)) and friends — are fine, which is how
// the workload generators get reproducible randomness.
//
// _test.go files are exempt: tests legitimately measure wall time for
// deadlines and cancellation latency, and that cannot leak into
// simulated results.
package nowallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/passes/detpkg"
)

// Analyzer is the nowallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "forbid wall-clock, environment, and unseeded randomness in deterministic packages\n\n" +
		"Simulated time must never alias wall time: results must be a pure function of the\n" +
		"experiment spec. Use cycle counts, plumb configuration through sim.Config, and seed\n" +
		"every RNG explicitly.",
	Run: run,
}

// forbidden maps package path → function names that read ambient
// process state. An empty set means "every function except the
// constructors in seededOK".
var forbidden = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
	// math/rand: the global-source functions. Handled by exclusion:
	// everything except the explicitly seeded constructors.
	"math/rand":    nil,
	"math/rand/v2": nil,
}

// seededOK are the math/rand functions that construct explicitly seeded
// generators rather than drawing from the global source.
var seededOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !detpkg.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			names, watched := forbidden[path]
			if !watched {
				return true
			}
			fn := sel.Sel.Name
			switch {
			case names != nil && !names[fn]:
				return true
			case names == nil && seededOK[fn]:
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s in deterministic package %s: simulated results must be a pure function "+
					"of the spec; use cycle counts or an explicitly seeded source, or annotate "+
					"//dramvet:allow nowallclock(reason)", path, fn, pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
