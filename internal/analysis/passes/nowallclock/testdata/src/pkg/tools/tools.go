// Package tools is outside the deterministic package list: wall-clock
// reads here are not dramvet's business.
package tools

import (
	"os"
	"time"
)

func stamp() (int64, string) {
	return time.Now().UnixNano(), os.Getenv("USER")
}
