// Package sim is a nowallclock fixture standing in for the real
// deterministic package of the same import path.
package sim

import (
	"math/rand"
	"os"
	"time"
)

func bad() {
	_ = time.Now()                     // want `time.Now in deterministic package internal/sim`
	_, _ = os.LookupEnv("HOME")        // want `os.LookupEnv in deterministic package internal/sim`
	_ = os.Getenv("HOME")              // want `os.Getenv in deterministic package internal/sim`
	_ = rand.Intn(4)                   // want `math/rand.Intn in deterministic package internal/sim`
	rand.Shuffle(1, func(i, j int) {}) // want `math/rand.Shuffle in deterministic package internal/sim`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in deterministic package internal/sim`
}

// Clean: explicitly seeded generators are how workloads get
// reproducible randomness.
func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4)
}

// Clean: time types and arithmetic are fine; only ambient clock reads
// are forbidden.
func goodDuration(cycles int64, hz int64) time.Duration {
	return time.Duration(cycles) * time.Second / time.Duration(hz)
}

// Clean: acknowledged with a recorded reason.
func allowed() int64 {
	//dramvet:allow nowallclock(log timestamp only; never flows into simulated state)
	return time.Now().UnixNano()
}
