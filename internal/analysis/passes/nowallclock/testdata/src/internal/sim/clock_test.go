// Test files are exempt: tests legitimately measure wall time for
// deadlines, and that cannot leak into simulated results.
package sim

import "time"

func elapsed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}
