// Package service is a goroleak fixture standing in for the real
// internal/service: every goroutine needs a join or cancel path —
// a context Done select, a WaitGroup, a channel close, or a range over
// a channel — somewhere it can reach.
package service

import (
	"context"
	"sync"
)

type Server struct {
	ctx  context.Context
	jobs chan string
	wg   sync.WaitGroup
}

func poll() {}

// Leak: the literal spins forever with no cancellation signal in reach.
func (s *Server) badSpin() {
	go func() { // want `goroutine func literal has no join or cancel path`
		for {
			poll()
		}
	}()
}

func (s *Server) pump() {
	for {
		poll()
	}
}

// Leak: the named method never observes shutdown either.
func (s *Server) badNamed() {
	go s.pump() // want `goroutine \(\*Server\)\.pump has no join or cancel path`
}

// Clean: selects on the server context's Done channel.
func (s *Server) goodCtx() {
	go func() {
		for {
			select {
			case <-s.ctx.Done():
				return
			case id := <-s.jobs:
				_ = id
			}
		}
	}()
}

// Clean: participates in a WaitGroup join (via a deferred literal —
// reachable through the deferred call).
func (s *Server) goodWait() {
	s.wg.Add(1)
	go func() {
		defer func() { s.wg.Done() }()
		poll()
	}()
}

// Clean: signals completion by closing a channel.
func (s *Server) goodClose() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		poll()
	}()
	return done
}

// Clean: a range over a channel terminates when the producer closes it.
func (s *Server) goodRange() {
	go func() {
		for id := range s.jobs {
			_ = id
		}
	}()
}

func (s *Server) drain() {
	for range s.jobs {
	}
}

// Clean: the signal lives in a callee, found through the call graph.
func (s *Server) goodIndirect() {
	go func() {
		s.drain()
	}()
}

// Acknowledged fire-and-forget: the directive on the containing
// function's doc comment suppresses the finding.
//
//dramvet:allow goroleak(fixture: process-lifetime telemetry pump, dies with the process)
func (s *Server) allowedForever() {
	go func() {
		for {
			poll()
		}
	}()
}
