package service

// Test files are exempt: a test helper goroutine is bounded by the test
// that spawns it. No diagnostics expected anywhere in this file.

func testHelperSpin() {
	go func() {
		for {
			poll()
		}
	}()
}
