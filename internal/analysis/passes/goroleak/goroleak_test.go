package goroleak_test

import (
	"testing"

	"dramstacks/internal/analysis/analysistest"
	"dramstacks/internal/analysis/passes/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goroleak.Analyzer, "internal/service")
}
