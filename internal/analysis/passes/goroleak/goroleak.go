// Package goroleak flags goroutines launched in internal/service whose
// bodies have no join or cancel path: nothing reachable from the
// goroutine (through the package call graph) selects on a context Done
// channel, signals a sync.WaitGroup, closes a channel, or ranges over
// one. Such a goroutine has no bound on its lifetime — it outlives the
// request that spawned it, survives server shutdown, and accumulates
// under load. In a daemon whose tests assert deterministic shutdown,
// an unjoinable goroutine is a leak even when it happens to exit.
//
// Accepted lifecycle signals, anywhere in the goroutine's body or in a
// function it may call (in-package, via internal/analysis/callgraph):
//
//   - a call to Done() on a context.Context (the select-on-ctx.Done
//     cancellation idiom);
//   - a call to Done() or Wait() on a *sync.WaitGroup (the goroutine
//     participates in a join);
//   - a close(ch) of some channel (the goroutine signals completion);
//   - a range over a channel (the goroutine terminates when the
//     producer closes it).
//
// Goroutines whose target function is not declared in the package
// (an external call, a method value from another package) are not
// flagged — the body is invisible to a per-package vet unit, and the
// pass prefers silence to a false positive. _test.go files are exempt:
// tests routinely spawn short-lived helpers bounded by the test itself.
//
// Suppress a deliberate fire-and-forget goroutine with
// //dramvet:allow goroleak(reason) at the go statement, or on the doc
// comment of the function containing it.
package goroleak

import (
	"go/ast"
	"go/types"
	"strings"

	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/astutil"
	"dramstacks/internal/analysis/callgraph"
)

// Analyzer is the goroleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "flag goroutines in internal/service with no join or cancel path\n\n" +
		"A goroutine must select on a context Done channel, signal a WaitGroup, close a\n" +
		"channel, or range over one — somewhere in its body or its in-package callees —\n" +
		"so its lifetime is bounded by shutdown or a join.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !servicePackage(pass.Pkg.Path()) {
		return nil, nil
	}

	var files []*ast.File
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	g := callgraph.Build(files, pass.Pkg, pass.TypesInfo)

	// Memoized per-node signal scan (the node's own body, not nested
	// literals — those are separate nodes, credited only if reachable).
	own := make(map[*callgraph.Node]bool)
	hasOwnSignal := func(n *callgraph.Node) bool {
		if v, ok := own[n]; ok {
			return v
		}
		v := bodyHasSignal(pass.TypesInfo, n.Body())
		own[n] = v
		return v
	}

	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			targets := goTargets(g, pass.TypesInfo, gs)
			if len(targets) == 0 {
				return true // body not in this package: can't see it, stay quiet
			}
			for _, t := range targets {
				if !hasLifecycle(g, t, hasOwnSignal) {
					pass.Reportf(gs.Pos(),
						"goroutine %s has no join or cancel path: nothing it can reach selects on a "+
							"context Done channel, signals a WaitGroup, closes a channel, or ranges over "+
							"one (or annotate //dramvet:allow goroleak(reason))", t.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// goTargets resolves the function a go statement launches to its
// in-package callgraph nodes.
func goTargets(g *callgraph.Graph, info *types.Info, gs *ast.GoStmt) []*callgraph.Node {
	switch fun := astutil.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		if n := g.LitNode(fun); n != nil {
			return []*callgraph.Node{n}
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				return []*callgraph.Node{n}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				return []*callgraph.Node{n}
			}
		}
	}
	return nil
}

// hasLifecycle reports whether any function reachable from root carries
// a lifecycle signal.
func hasLifecycle(g *callgraph.Graph, root *callgraph.Node, ownSignal func(*callgraph.Node) bool) bool {
	for _, n := range g.Reachable(root) {
		if ownSignal(n) {
			return true
		}
	}
	return false
}

// bodyHasSignal scans one function body (not nested literals) for a
// lifecycle signal.
func bodyHasSignal(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isClose(info, x) || isDoneOrJoin(info, x) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isClose matches the close builtin.
func isClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := astutil.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isDoneOrJoin matches ctx.Done(), wg.Done(), wg.Wait().
func isDoneOrJoin(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	switch sel.Sel.Name {
	case "Done":
		return isContext(tv.Type) || astutil.IsNamed(tv.Type, "sync", "WaitGroup")
	case "Wait":
		return astutil.IsNamed(tv.Type, "sync", "WaitGroup")
	}
	return false
}

// isContext matches context.Context and any named type implementing it
// (the Done() <-chan struct{} shape is what matters).
func isContext(t types.Type) bool {
	if astutil.IsNamed(t, "context", "Context") {
		return true
	}
	// Any type whose Done() returns a receive-only channel counts: a
	// fixture-local context lookalike behaves identically at runtime.
	m, _, _ := types.LookupFieldOrMethod(t, true, nil, "Done")
	fn, ok := m.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Signature()
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	ch, ok := sig.Results().At(0).Type().Underlying().(*types.Chan)
	return ok && ch.Dir() == types.RecvOnly
}

// servicePackage reports whether path (possibly a vet test-variant
// spelling) is the internal/service package or its tests.
func servicePackage(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path == "internal/service" || strings.HasSuffix(path, "/internal/service")
}
