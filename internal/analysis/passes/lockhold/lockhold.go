// Package lockhold enforces the dramstacksd store invariant in code
// instead of prose: no slow or blocking operation may run while an
// internal/service mutex is held. Holding a lock across an fsync, a
// journal append, a simulation, or a blocking channel operation would
// stall every request that touches the same lock — the exact contention
// the durable store's in-memory mirror was built to avoid.
//
// The analyzer is flow-sensitive: each function body is lowered to a
// control-flow graph (internal/analysis/cfg) and a forward may-held
// dataflow (internal/analysis/lockset) computes, per path, which
// sync.Mutex/RWMutex locks may be held at every statement. Flagged
// while any lock may be held:
//
//   - exp.RunSpec calls (a whole simulation under a lock);
//   - (*os.File).Write / Sync (journal appends and fsyncs);
//   - calls to *Store journal methods (append, AppendJob, AppendResult,
//     AppendSweep, Checkpoint);
//   - channel sends and receives, and select statements without a
//     default clause;
//   - a second Lock of a mutex that may already be held — the
//     conditional double-Lock that self-deadlocks on the path where
//     both acquisitions execute (RLock is only flagged over a held
//     write lock).
//
// Per-path tracking is what makes the pass precise: a lock released on
// one branch stays charged on the branch that still holds it, a
// deferred unlock holds to function end but not past an earlier return,
// and an unlock inside a loop or switch arm propagates out — the shapes
// the earlier statement-order walker over- or under-approximated.
//
// Goroutine bodies run without the caller's locks: a `go` statement's
// function literal is analyzed as its own function with an empty held
// set. Methods named *Locked are exempt as callees (the convention
// marks them as requiring the caller to hold the lock; their own bodies
// are analyzed like any other function). The one deliberate exception —
// the store serializing journal appends under its own mutex — is
// acknowledged with //dramvet:allow lockhold(...) at the definition.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/astutil"
	"dramstacks/internal/analysis/cfg"
	"dramstacks/internal/analysis/lockset"
)

// Analyzer is the lockhold pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "forbid blocking work (fsync, journal appends, RunSpec, channel ops) under a service mutex\n\n" +
		"internal/service locks guard in-memory state only; I/O and simulations must happen\n" +
		"outside the critical section (the durable store's mirror exists for exactly this).\n" +
		"Flow-sensitive: held-lock sets are tracked per control-flow path, including\n" +
		"conditional unlocks, deferred unlocks, and double-Lock self-deadlocks.",
	Run: run,
}

// storeMethods are the *Store journal entry points that fsync.
var storeMethods = map[string]bool{
	"append":       true,
	"AppendJob":    true,
	"AppendResult": true,
	"AppendSweep":  true,
	"Checkpoint":   true,
}

func run(pass *analysis.Pass) (any, error) {
	if !servicePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
		// Function literals are their own functions: a goroutine or
		// stored closure starts with no locks held, whatever its
		// lexical context holds.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc lowers one function body to a CFG, solves the may-held
// dataflow, and flags blocking operations on nodes where a lock may be
// held.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	res := lockset.Analyze(g, pass.TypesInfo)

	// Double-Lock: an acquisition of a lock that may already be held on
	// some path into it.
	for _, acq := range res.Acquires {
		prev, held := acq.Held[acq.Lock.ExprKey]
		if !held {
			continue
		}
		if acq.Mode == lockset.Read && prev.Mode&lockset.Write == 0 {
			continue // RLock over RLock: shared, legal
		}
		verb := "Lock"
		if acq.Mode == lockset.Read {
			verb = "RLock"
		}
		pass.Reportf(acq.Pos,
			"%s.%s while %s is already held: the path holding it deadlocks here "+
				"(or annotate //dramvet:allow lockhold(reason))",
			acq.Lock.ExprKey, verb, acq.Lock.ExprKey)
	}

	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			held, reachable := res.Before[n]
			if !reachable || held.Empty() {
				continue
			}
			checkNode(pass, n, held)
		}
	}
}

// checkNode flags blocking operations in one CFG node executed while
// locks are held.
func checkNode(pass *analysis.Pass, n ast.Node, held lockset.Set) {
	switch s := n.(type) {
	case *ast.SendStmt:
		pass.Reportf(s.Pos(),
			"channel send while %s is held: blocking operations must not run under a "+
				"service mutex (or annotate //dramvet:allow lockhold(reason))", heldName(held))
		return
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			pass.Reportf(s.Pos(),
				"blocking select while %s is held: blocking operations must not run under a "+
					"service mutex (or annotate //dramvet:allow lockhold(reason))", heldName(held))
		}
		// Clause bodies are separate CFG blocks; nothing more here.
		return
	case *ast.ExprStmt:
		if _, ok := lockset.AsLockOp(pass.TypesInfo, s.X); ok {
			return // the lock op itself; double-Lock is reported above
		}
	case *ast.GoStmt:
		// A goroutine body runs without the caller's locks, and its
		// literal is analyzed separately. The call's argument
		// expressions do evaluate here, though.
		for _, arg := range s.Call.Args {
			checkExpr(pass, arg, held)
		}
		return
	}
	checkExpr(pass, n, held)
}

// checkExpr flags blocking operations syntactically inside n: receives,
// RunSpec, file writes/fsyncs, store appends. Function literals are
// skipped (their bodies run elsewhere and are analyzed separately).
func checkExpr(pass *analysis.Pass, n ast.Node, held lockset.Set) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				pass.Reportf(e.Pos(),
					"channel receive while %s is held: blocking operations must not run under "+
						"a service mutex (or annotate //dramvet:allow lockhold(reason))", heldName(held))
			}
		case *ast.CallExpr:
			checkCall(pass, e, held)
		}
		return true
	})
}

// servicePackage reports whether path (possibly a vet test-variant
// spelling) is the internal/service package or its tests.
func servicePackage(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path == "internal/service" || strings.HasSuffix(path, "/internal/service")
}

// isRunSpec matches exp.RunSpec by resolved function object: package
// path ending in "exp" (the real tree's dramstacks/internal/exp, or a
// fixture's local exp package) and name RunSpec.
func isRunSpec(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "RunSpec" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "exp" || strings.HasSuffix(p, "/exp")
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, held lockset.Set) {
	if isRunSpec(pass, call) {
		pass.Reportf(call.Pos(),
			"exp.RunSpec while %s is held: a simulation must never run under a service mutex "+
				"(or annotate //dramvet:allow lockhold(reason))", heldName(held))
		return
	}
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvType := func() types.Type {
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return nil
		}
		return tv.Type
	}
	switch {
	case (sel.Sel.Name == "Sync" || sel.Sel.Name == "Write") && recvType() != nil && astutil.IsNamed(recvType(), "os", "File"):
		pass.Reportf(call.Pos(),
			"(*os.File).%s while %s is held: journal I/O must not run under a service mutex "+
				"(or annotate //dramvet:allow lockhold(reason))", sel.Sel.Name, heldName(held))
	case storeMethods[sel.Sel.Name] && recvType() != nil && isStore(recvType()):
		pass.Reportf(call.Pos(),
			"store %s (journal append + fsync) while %s is held: persist outside the critical "+
				"section (or annotate //dramvet:allow lockhold(reason))", sel.Sel.Name, heldName(held))
	}
}

// isStore matches the package's durable store type by name, so the
// analyzer works both on internal/service and on its test fixtures.
func isStore(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Store"
}

// heldName names one held lock for the diagnostic (sorted for
// determinism when several are held).
func heldName(held lockset.Set) string {
	names := held.Names()
	if len(names) == 0 {
		return "a lock"
	}
	return names[0]
}
